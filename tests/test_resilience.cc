// Tests for the fault-injection and resilience subsystem: schedule
// parsing (spec grammar and JSON), the retry policy's capped backoff,
// the injector's deterministic state machine, degraded-mode replay
// accounting (retry/failover stall components, timeout budget), and
// remap-on-failure work redistribution.
#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.h"
#include "resilience/fault.h"
#include "resilience/remap.h"
#include "resilience/retry.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "support/check.h"
#include "support/json.h"
#include "workloads/registry.h"

namespace mlsc::resilience {
namespace {

sim::MachineConfig tiny_machine() {
  sim::MachineConfig config;
  config.clients = 4;
  config.io_nodes = 2;
  config.storage_nodes = 1;
  config.client_cache_bytes = 8 * 64 * kKiB;
  config.io_cache_bytes = 8 * 64 * kKiB;
  config.storage_cache_bytes = 8 * 64 * kKiB;
  return config;
}

TEST(RetryPolicy, BackoffIsCappedExponential) {
  RetryPolicy policy;
  policy.initial_backoff_ns = 100;
  policy.multiplier = 2.0;
  policy.max_backoff_ns = 500;
  EXPECT_EQ(policy.backoff(0), 0u);  // first attempt has no backoff
  EXPECT_EQ(policy.backoff(1), 100u);
  EXPECT_EQ(policy.backoff(2), 200u);
  EXPECT_EQ(policy.backoff(3), 400u);
  EXPECT_EQ(policy.backoff(4), 500u);  // capped, not 800
  EXPECT_EQ(policy.backoff(40), 500u);  // stays capped far out
}

TEST(FaultSpec, ParsesEveryEventKind) {
  const auto schedule = parse_fault_spec(
      "transient@0:disk=0.01,net=0.001; fail@5ms:l2.0; "
      "degrade@8ms:l3:lat=4,cap=2; stall@10ms:2ms; recover@20ms:l2.0; "
      "seed=42");
  EXPECT_EQ(schedule.seed, 42u);
  ASSERT_EQ(schedule.events.size(), 5u);
  // Events are kept sorted by timestamp.
  EXPECT_EQ(schedule.events[0].kind, FaultKind::kTransient);
  EXPECT_DOUBLE_EQ(schedule.events[0].disk_error_rate, 0.01);
  EXPECT_DOUBLE_EQ(schedule.events[0].net_error_rate, 0.001);
  EXPECT_EQ(schedule.events[1].kind, FaultKind::kFailStop);
  EXPECT_EQ(schedule.events[1].at, 5 * kMillisecond);
  EXPECT_EQ(schedule.events[1].level, 2u);
  EXPECT_EQ(schedule.events[1].node_index, 0);
  EXPECT_EQ(schedule.events[2].kind, FaultKind::kDegrade);
  EXPECT_DOUBLE_EQ(schedule.events[2].latency_factor, 4.0);
  EXPECT_DOUBLE_EQ(schedule.events[2].capacity_divisor, 2.0);
  EXPECT_EQ(schedule.events[2].node_index, -1);  // whole level
  EXPECT_EQ(schedule.events[3].kind, FaultKind::kStall);
  EXPECT_EQ(schedule.events[3].duration, 2 * kMillisecond);
  EXPECT_EQ(schedule.events[4].kind, FaultKind::kRecover);
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_fault_spec("explode@5ms:l2.0"), Error);
  EXPECT_THROW(parse_fault_spec("fail@5ms"), Error);       // no target
  EXPECT_THROW(parse_fault_spec("fail@5ms:l9.0"), Error);  // bad level
  EXPECT_THROW(parse_fault_spec("fail@xyz:l2.0"), Error);  // bad time
  EXPECT_THROW(parse_fault_spec("transient@0:disk=oops"), Error);
  EXPECT_THROW(parse_fault_spec("seed=notanumber"), Error);
}

TEST(FaultSpec, RandomGenerationIsSeedDeterministic) {
  const auto a = parse_fault_spec("rand@7:n=6:horizon=50ms");
  const auto b = parse_fault_spec("rand@7:n=6:horizon=50ms");
  const auto c = parse_fault_spec("rand@8:n=6:horizon=50ms");
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultSchedule, ParsesJsonDocument) {
  const auto doc = parse_json(R"({"seed": 42, "events": [
      {"at_ms": 5, "kind": "fail-stop", "level": 2, "node": 0},
      {"at_ms": 0, "kind": "transient", "disk_error_rate": 0.01},
      {"at_ms": 10, "kind": "stall", "duration_ms": 2}]})");
  const auto schedule = parse_fault_schedule_json(doc);
  EXPECT_EQ(schedule.seed, 42u);
  ASSERT_EQ(schedule.events.size(), 3u);
  EXPECT_EQ(schedule.events[0].kind, FaultKind::kTransient);
  EXPECT_EQ(schedule.events[1].kind, FaultKind::kFailStop);
  EXPECT_EQ(schedule.events[2].duration, 2 * kMillisecond);
  EXPECT_THROW(parse_fault_schedule_json(parse_json(
                   R"({"events": [{"at_ms": 1, "kind": "melt"}]})")),
               Error);
}

TEST(FaultSchedule, UnrecoveredFailStopsHonorRecovery) {
  const auto schedule = parse_fault_spec(
      "fail@1ms:l2.0; fail@2ms:l2.1; recover@5ms:l2.0");
  const auto open = schedule.unrecovered_fail_stops();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].node_index, 1);
}

TEST(FaultTargets, ResolveByLevelAndIndex) {
  const auto tree = tiny_machine().build_tree();
  FaultEvent event;
  event.level = 2;  // I/O nodes
  event.node_index = -1;
  EXPECT_EQ(resolve_fault_targets(tree, event).size(), 2u);
  event.node_index = 1;
  const auto one = resolve_fault_targets(tree, event);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(tree.node(one[0]).kind, topology::NodeKind::kIo);
  event.node_index = 7;
  EXPECT_THROW(resolve_fault_targets(tree, event), Error);
  event.level = 9;
  EXPECT_THROW(resolve_fault_targets(tree, event), Error);
}

TEST(FaultInjector, AppliesEventsInTimestampOrder) {
  const auto tree = tiny_machine().build_tree();
  auto schedule = parse_fault_spec(
      "degrade@1ms:l2.0:lat=4,cap=2; transient@2ms:disk=0.5; "
      "recover@3ms:l2.0");
  FaultInjector injector(std::move(schedule), RetryPolicy{}, tree);
  FaultEvent probe;
  probe.level = 2;
  probe.node_index = 0;
  const auto target = resolve_fault_targets(tree, probe)[0];

  injector.advance_to(0, nullptr);
  EXPECT_EQ(injector.events_applied(), 0u);
  EXPECT_DOUBLE_EQ(injector.latency_factor(target), 1.0);

  injector.advance_to(1 * kMillisecond, nullptr);
  EXPECT_EQ(injector.events_applied(), 1u);
  EXPECT_DOUBLE_EQ(injector.latency_factor(target), 4.0);
  EXPECT_DOUBLE_EQ(injector.disk_error_rate(), 0.0);

  injector.advance_to(10 * kMillisecond, nullptr);  // applies the rest
  EXPECT_EQ(injector.events_applied(), 3u);
  EXPECT_DOUBLE_EQ(injector.latency_factor(target), 1.0);  // recovered
  EXPECT_DOUBLE_EQ(injector.disk_error_rate(), 0.5);
}

TEST(FaultInjector, StallChargedOncePerClient) {
  const auto tree = tiny_machine().build_tree();
  auto schedule = parse_fault_spec("stall@1ms:2ms");
  FaultInjector injector(std::move(schedule), RetryPolicy{}, tree);
  injector.advance_to(1 * kMillisecond, nullptr);
  EXPECT_EQ(injector.take_pending_stall(0), 2 * kMillisecond);
  EXPECT_EQ(injector.take_pending_stall(0), 0u);  // already charged
  EXPECT_EQ(injector.take_pending_stall(3), 2 * kMillisecond);
}

TEST(FaultInjector, ErrorDrawsAreOrderIndependent) {
  const auto tree = tiny_machine().build_tree();
  auto schedule = parse_fault_spec("seed=11");
  FaultInjector injector(std::move(schedule), RetryPolicy{}, tree);
  // The draw is a pure function of (client, op, attempt): repeating the
  // same query gives the same verdict regardless of everything drawn in
  // between, and the empirical rate tracks the requested one.
  const bool first = injector.draw_error(1, 2, 3, 0.5);
  int errors = 0;
  const int kDraws = 2000;
  for (int op = 0; op < kDraws; ++op) {
    errors += injector.draw_error(0, op, 0, 0.3) ? 1 : 0;
  }
  EXPECT_EQ(injector.draw_error(1, 2, 3, 0.5), first);
  EXPECT_NEAR(errors / static_cast<double>(kDraws), 0.3, 0.05);
  EXPECT_FALSE(injector.draw_error(1, 2, 3, 0.0));
  EXPECT_TRUE(injector.draw_error(1, 2, 3, 1.0));
}

sim::ExperimentResult run_faulted(const std::string& spec,
                                  bool remap = false,
                                  RetryPolicy retry = RetryPolicy{}) {
  const auto workload = workloads::make_workload("astro", 1.0 / 16.0);
  sim::ResilienceSpec resilience;
  resilience.schedule = parse_fault_spec(spec);
  resilience.retry = retry;
  resilience.remap.remap_on_failure = remap;
  return sim::run_experiment(workload, sim::SchemeSpec::inter(),
                             tiny_machine(), &resilience);
}

TEST(DegradedReplay, StallComponentsStillSumToIoTotal) {
  const auto r = run_faulted("fail@1ms:l2.0; transient@0:disk=0.05; seed=3");
  const auto& e = r.engine;
  EXPECT_GT(e.faults_applied, 0u);
  EXPECT_GT(e.time_failover, 0u);
  EXPECT_EQ(e.time_client_cache + e.time_shared_cache + e.time_peer_cache +
                e.time_disk + e.time_retry + e.time_failover,
            e.io_time_total);
}

TEST(DegradedReplay, TransientErrorsChargeRetries) {
  const auto clean = run_faulted("transient@0:disk=0.0; seed=3");
  const auto flaky = run_faulted("transient@0:disk=0.2; seed=3");
  EXPECT_EQ(clean.engine.transient_errors, 0u);
  EXPECT_EQ(clean.engine.time_retry, 0u);
  EXPECT_GT(flaky.engine.transient_errors, 0u);
  EXPECT_GT(flaky.engine.retries, 0u);
  EXPECT_GT(flaky.engine.time_retry, 0u);
}

TEST(DegradedReplay, TimeoutBudgetCapsPerAccessRetrying) {
  // With a certain error rate and a tiny timeout, every disk access hits
  // the budget: the engine charges exactly the timeout per access.
  RetryPolicy retry;
  retry.max_attempts = 8;
  retry.initial_backoff_ns = 40 * kMicrosecond;
  retry.access_timeout_ns = 100 * kMicrosecond;
  const auto r = run_faulted("transient@0:disk=1.0; seed=3", false, retry);
  const auto& e = r.engine;
  EXPECT_GT(e.retry_timeouts, 0u);
  EXPECT_EQ(e.time_retry, e.retry_timeouts * retry.access_timeout_ns);
}

TEST(DegradedReplay, FailStopLosesCacheContents) {
  // The failed node is skipped and its contents are gone: disk traffic
  // can only grow, and failover detections are counted and charged.
  const auto healthy = run_faulted("transient@0:disk=0; seed=1");
  const auto failed = run_faulted("fail@0:l2.0; seed=1");
  EXPECT_GT(failed.engine.failovers, 0u);
  EXPECT_GT(failed.engine.time_failover, 0u);
  EXPECT_GE(failed.engine.disk_requests, healthy.engine.disk_requests);
}

TEST(Remap, DecisionTriggersOnFailStopOnly) {
  RemapPolicy policy;
  EXPECT_FALSE(
      decide_remap(policy, parse_fault_spec("degrade@1ms:l2.0:lat=2"))
          .triggered);
  const auto decision =
      decide_remap(policy, parse_fault_spec("fail@3ms:l2.1"));
  EXPECT_TRUE(decision.triggered);
  EXPECT_EQ(decision.at, 3 * kMillisecond);
  EXPECT_NE(decision.reason.find("level 2"), std::string::npos);
  policy.remap_on_failure = false;
  EXPECT_FALSE(
      decide_remap(policy, parse_fault_spec("fail@3ms:l2.1")).triggered);
}

TEST(Remap, SurvivingTopologyDropsFailedCaches) {
  const auto tree = tiny_machine().build_tree();
  const auto schedule =
      parse_fault_spec("fail@1ms:l2.0; fail@2ms:l2.1; recover@5ms:l2.1");
  const auto surviving = surviving_topology(tree, schedule);
  FaultEvent probe;
  probe.level = 2;
  probe.node_index = 0;
  const auto dead = resolve_fault_targets(tree, probe)[0];
  probe.node_index = 1;
  const auto alive = resolve_fault_targets(tree, probe)[0];
  EXPECT_EQ(surviving.node(dead).cache_capacity_bytes, 0u);
  EXPECT_GT(surviving.node(alive).cache_capacity_bytes, 0u);  // recovered
  EXPECT_EQ(surviving.num_clients(), tree.num_clients());
}

TEST(Remap, RedistributesWorkOffAffectedClients) {
  const auto workload = workloads::make_workload("astro", 1.0 / 16.0);
  const auto config = tiny_machine();
  const auto tree = config.build_tree();
  const core::DataSpace space(workload.program, config.chunk_size_bytes);
  core::PipelineOptions options;
  options.mapper = core::MapperKind::kInterProcessor;
  const auto schedule = parse_fault_spec("fail@1ms:l2.0");
  const auto surviving = surviving_topology(tree, schedule);
  const auto mapping = remap_mapping(surviving, schedule, options,
                                     workload.program, space);

  // Clients under the failed I/O node end up with no work; the others
  // carry everything, and no iteration is lost.
  FaultEvent probe;
  probe.level = 2;
  probe.node_index = 0;
  const auto dead = resolve_fault_targets(tree, probe)[0];
  std::set<std::size_t> affected;
  for (const topology::NodeId child : tree.node(dead).children) {
    affected.insert(tree.client_rank(child));
  }
  ASSERT_FALSE(affected.empty());
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < mapping.client_work.size(); ++c) {
    if (affected.count(c) != 0) {
      EXPECT_TRUE(mapping.client_work[c].empty()) << "client " << c;
    }
    total += mapping.client_iterations(c);
  }
  EXPECT_EQ(total, workload.program.total_iterations());
  mapping.validate_partition(workload.program);
}

TEST(Remap, WholeLevelFailureKeepsMappingUsable) {
  // Every client affected: redistribution has nowhere to go and must
  // leave the mapping intact rather than emptying it.
  const auto workload = workloads::make_workload("astro", 1.0 / 16.0);
  const auto config = tiny_machine();
  const auto tree = config.build_tree();
  const core::DataSpace space(workload.program, config.chunk_size_bytes);
  core::PipelineOptions options;
  options.mapper = core::MapperKind::kInterProcessor;
  const auto schedule = parse_fault_spec("fail@1ms:l2");
  const auto surviving = surviving_topology(tree, schedule);
  const auto mapping = remap_mapping(surviving, schedule, options,
                                     workload.program, space);
  EXPECT_EQ(mapping.total_iterations(), workload.program.total_iterations());
}

TEST(Remap, ExperimentReportsRemapOutcome) {
  const auto no_remap = run_faulted("fail@1ms:l2.0; seed=5", false);
  const auto remapped = run_faulted("fail@1ms:l2.0; seed=5", true);
  EXPECT_FALSE(no_remap.remapped);
  EXPECT_TRUE(remapped.remapped);
  EXPECT_NE(remapped.remap_reason.find("fail-stop"), std::string::npos);
  EXPECT_GT(remapped.remap_pause, 0u);
  EXPECT_GT(remapped.engine.fault_stall_total, 0u);
  // The remap steers work off the degraded path, so failover detections
  // must drop.
  EXPECT_LT(remapped.engine.failovers, no_remap.engine.failovers);
}

TEST(Resilience, HealthyRunsAreUntouchedByNullInjector) {
  const auto workload = workloads::make_workload("astro", 1.0 / 16.0);
  const auto with_null = sim::run_experiment(
      workload, sim::SchemeSpec::inter(), tiny_machine(), nullptr);
  sim::ResilienceSpec empty;
  const auto with_empty = sim::run_experiment(
      workload, sim::SchemeSpec::inter(), tiny_machine(), &empty);
  EXPECT_EQ(with_null.exec_time, with_empty.exec_time);
  EXPECT_EQ(with_null.engine.io_time_total, with_empty.engine.io_time_total);
  EXPECT_EQ(with_empty.engine.faults_applied, 0u);
  EXPECT_EQ(with_empty.fault_summary, "");
}

}  // namespace
}  // namespace mlsc::resilience
