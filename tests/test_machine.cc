#include "sim/machine.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mlsc::sim {
namespace {

TEST(MachineConfig, PaperDefaultMatchesTable1) {
  const auto config = MachineConfig::paper_default();
  EXPECT_EQ(config.clients, 64u);
  EXPECT_EQ(config.io_nodes, 32u);
  EXPECT_EQ(config.storage_nodes, 16u);
  EXPECT_EQ(config.chunk_size_bytes, 64 * kKiB);
  EXPECT_EQ(config.stripe_size_bytes, 64 * kKiB);
  EXPECT_EQ(config.policy, cache::PolicyKind::kLru);
  // Per-node caches: the paper's 2 GB at 1/64 scale.
  EXPECT_EQ(config.client_cache_bytes, 2 * kGiB / 64);
  EXPECT_EQ(config.disk.rpm, 10'000u);
  EXPECT_FALSE(config.write_back);
  EXPECT_FALSE(config.cooperative_caching);
  EXPECT_EQ(config.readahead_chunks, 0u);
}

TEST(MachineConfig, BuildTreeMatchesCounts) {
  const auto config = MachineConfig::paper_default();
  const auto tree = config.build_tree();
  EXPECT_EQ(tree.num_clients(), 64u);
  // dummy root + 16 + 32 + 64 nodes.
  EXPECT_EQ(tree.num_nodes(), 1u + 16 + 32 + 64);
}

TEST(MachineConfig, ToStringListsEnabledFeatures) {
  MachineConfig config;
  EXPECT_EQ(config.to_string().find("write-back"), std::string::npos);
  config.write_back = true;
  config.cooperative_caching = true;
  config.readahead_chunks = 3;
  const auto s = config.to_string();
  EXPECT_NE(s.find("write-back"), std::string::npos);
  EXPECT_NE(s.find("cooperative"), std::string::npos);
  EXPECT_NE(s.find("readahead=3"), std::string::npos);
}

TEST(MachineConfig, InvalidTopologyThrowsOnBuild) {
  MachineConfig config;
  config.clients = 10;  // does not divide across 32 I/O nodes
  EXPECT_THROW(config.build_tree(), mlsc::Error);
}

}  // namespace
}  // namespace mlsc::sim
