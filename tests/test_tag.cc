#include "core/tag.h"

#include <gtest/gtest.h>

namespace mlsc::core {
namespace {

TEST(ChunkTag, FromBitsSortsAndDedupes) {
  const auto tag = ChunkTag::from_bits({5, 1, 5, 3});
  EXPECT_EQ(tag.bits(), (std::vector<std::uint32_t>{1, 3, 5}));
  EXPECT_EQ(tag.popcount(), 3u);
  EXPECT_TRUE(tag.test(3));
  EXPECT_FALSE(tag.test(2));
}

TEST(ChunkTag, CommonBitsMatchesFig8) {
  // γ1 = {0,2,4}, γ3 = {0,2,4,6}: weight 3 in the paper's Fig. 8.
  const auto g1 = ChunkTag::from_bits({0, 2, 4});
  const auto g3 = ChunkTag::from_bits({0, 2, 4, 6});
  EXPECT_EQ(g1.common_bits(g3), 3u);
  // γ1 and γ5 = {0,4,6,8}: weight 2.
  const auto g5 = ChunkTag::from_bits({0, 4, 6, 8});
  EXPECT_EQ(g1.common_bits(g5), 2u);
}

TEST(ChunkTag, HammingDistance) {
  const auto a = ChunkTag::from_bits({1, 2, 3});
  const auto b = ChunkTag::from_bits({2, 3, 4, 5});
  EXPECT_EQ(a.hamming_distance(b), 3u);  // {1} vs {4,5}
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(ChunkTag, MergeAndRender) {
  const auto a = ChunkTag::from_bits({0, 2});
  const auto b = ChunkTag::from_bits({2, 3});
  const auto m = a.merged_with(b);
  EXPECT_EQ(m.bits(), (std::vector<std::uint32_t>{0, 2, 3}));
  EXPECT_EQ(m.to_string(4), "1011");
  const auto bs = m.to_bitset(4);
  EXPECT_EQ(bs.count(), 3u);
}

TEST(ChunkTag, HashConsingBehaviour) {
  const auto a = ChunkTag::from_bits({7, 9});
  const auto b = ChunkTag::from_bits({9, 7});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  const auto c = ChunkTag::from_bits({7});
  EXPECT_NE(a.hash(), c.hash());
}

TEST(ClusterTag, BitwiseSumAndDot) {
  ClusterTag cluster;
  cluster.add(ChunkTag::from_bits({0, 2, 4}));       // γ1
  cluster.add(ChunkTag::from_bits({0, 2, 4, 6}));    // γ3
  EXPECT_EQ(cluster.count_at(0), 2u);
  EXPECT_EQ(cluster.count_at(6), 1u);
  EXPECT_EQ(cluster.count_at(1), 0u);
  // Dot with γ5 = {0,4,6,8}: 2 + 2 + 1 = 5 (the paper's sum-tag dot).
  EXPECT_EQ(cluster.dot(ChunkTag::from_bits({0, 4, 6, 8})), 5u);
}

TEST(ClusterTag, DotOfClusters) {
  ClusterTag a;
  a.add(ChunkTag::from_bits({0, 1}));
  a.add(ChunkTag::from_bits({0, 2}));
  ClusterTag b;
  b.add(ChunkTag::from_bits({0, 3}));
  b.add(ChunkTag::from_bits({0, 1}));
  // counts a: {0:2, 1:1, 2:1}; b: {0:2, 1:1, 3:1} -> 4 + 1 = 5.
  EXPECT_EQ(a.dot(b), 5u);
}

TEST(ClusterTag, RemoveRestoresCounts) {
  ClusterTag t;
  const auto x = ChunkTag::from_bits({1, 2});
  const auto y = ChunkTag::from_bits({2, 3});
  t.add(x);
  t.add(y);
  t.remove(x);
  EXPECT_EQ(t.count_at(1), 0u);
  EXPECT_EQ(t.count_at(2), 1u);
  EXPECT_EQ(t.distinct_chunks(), 2u);
  t.remove(y);
  EXPECT_TRUE(t.empty());
}

TEST(ClusterTag, RemoveMissingBitThrows) {
  ClusterTag t;
  t.add(ChunkTag::from_bits({1}));
  EXPECT_THROW(t.remove(ChunkTag::from_bits({2})), mlsc::Error);
}

TEST(ClusterTag, PositionsAndEntries) {
  ClusterTag t;
  t.add(ChunkTag::from_bits({4, 9}));
  t.add(ChunkTag::from_bits({4}));
  EXPECT_EQ(t.positions(), (std::vector<std::uint32_t>{4, 9}));
  ASSERT_EQ(t.entries().size(), 2u);
  EXPECT_EQ(t.entries()[0].count, 2u);
  EXPECT_EQ(t.entries()[1].count, 1u);
}

}  // namespace
}  // namespace mlsc::core
