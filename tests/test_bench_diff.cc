// Tests for the noise-aware run-record diff engine behind
// tools/mlsc_bench_diff: flattening, metric classification, verdicts,
// thresholds, and the exit-code contract the CI perf job relies on.
#include <gtest/gtest.h>

#include <string>

#include "obs/bench_diff.h"
#include "support/json.h"

namespace mlsc::obs {
namespace {

// A miniature but fully representative run record.
const char* kRecord = R"({
  "schema": "mlsc-run-record-v1",
  "binary": "bench_test",
  "metadata": {"machine": "m", "apps": ["hf"], "hardware_threads": 4,
               "build_type": "Release", "repetitions": 3, "seed": 2010},
  "phases": [
    {"name": "hf/inter", "wall_ms": 120.5}
  ],
  "tables": [
    {"title": "scaling",
     "header": ["chunks", "threads", "map_ms", "identical"],
     "rows": [
       ["1024", "1", "30.00", "yes"],
       ["1024", "2", "16.00", "yes"]
     ]}
  ],
  "metrics": {
    "counters": {"pipeline.balance_moves": 17},
    "gauges": {"g.load": 0.5},
    "histograms": {
      "engine.access_latency_ns": {
        "bounds": [100, 1000], "counts": [5, 3, 2], "count": 10,
        "sum": 4200,
        "quantiles": {"p50": 350.0, "p90": 900.0, "p99": 1000.0}}
    }
  }
})";

std::string patched(const std::string& from, const std::string& to) {
  std::string text = kRecord;
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  text.replace(pos, from.size(), to);
  return text;
}

TEST(BenchDiff, TimingClassification) {
  EXPECT_TRUE(is_timing_metric("tables.scaling[1024/2].map_ms"));
  EXPECT_TRUE(is_timing_metric("phases.hf/inter.wall_ms"));
  EXPECT_TRUE(is_timing_metric("histograms.engine.access_latency_ns.p99"));
  EXPECT_TRUE(is_timing_metric("tables.t[r].exec_time_s"));
  EXPECT_TRUE(is_timing_metric("tables.t[r].map_speedup"));
  EXPECT_FALSE(is_timing_metric("tables.cache levels[L1].misses"));
  EXPECT_FALSE(is_timing_metric("counters.pipeline.balance_moves"));
}

TEST(BenchDiff, FlattensAllSections) {
  const auto metrics = flatten_run_record(parse_json(kRecord));
  auto has = [&](const std::string& name) {
    for (const auto& m : metrics) {
      if (m.name == name) return true;
    }
    return false;
  };
  // Duplicate first-column labels are disambiguated with the second.
  EXPECT_TRUE(has("tables.scaling[1024/1].map_ms"));
  EXPECT_TRUE(has("tables.scaling[1024/2].map_ms"));
  EXPECT_TRUE(has("phases.hf/inter.wall_ms"));
  EXPECT_TRUE(has("counters.pipeline.balance_moves"));
  EXPECT_TRUE(has("gauges.g.load"));
  EXPECT_TRUE(has("histograms.engine.access_latency_ns.p50"));
  EXPECT_TRUE(has("histograms.engine.access_latency_ns.count"));
  // Non-numeric cells ("yes") flatten to nothing.
  EXPECT_FALSE(has("tables.scaling[1024/1].identical"));
  EXPECT_EQ(record_repetitions(parse_json(kRecord)), 3u);
  EXPECT_EQ(record_repetitions(parse_json("{}")), 1u);
}

TEST(BenchDiff, IdenticalRecordsExitZero) {
  const JsonValue record = parse_json(kRecord);
  const DiffResult result = diff_run_records(record, record);
  EXPECT_GT(result.compared, 0u);
  EXPECT_EQ(result.soft_regressions, 0u);
  EXPECT_EQ(result.hard_regressions, 0u);
  EXPECT_EQ(result.exit_code(), 0);
}

TEST(BenchDiff, DeterministicRegressionIsHardInBothDirections) {
  const JsonValue base = parse_json(kRecord);
  // A 20% jump in a deterministic counter: far past 2x the 0.1% band.
  const JsonValue worse =
      parse_json(patched("\"pipeline.balance_moves\": 17",
                         "\"pipeline.balance_moves\": 21"));
  EXPECT_EQ(diff_run_records(base, worse).exit_code(), 2);
  // A decrease is just as much a behaviour change.
  const JsonValue fewer =
      parse_json(patched("\"pipeline.balance_moves\": 17",
                         "\"pipeline.balance_moves\": 13"));
  EXPECT_EQ(diff_run_records(base, fewer).exit_code(), 2);
}

TEST(BenchDiff, TimingNoiseMarginScalesWithRepetitions) {
  const JsonValue base = parse_json(kRecord);
  // +20% on a timing metric sits inside the default 30%-plus-margin band.
  const JsonValue noisy =
      parse_json(patched("\"wall_ms\": 120.5", "\"wall_ms\": 144.6"));
  EXPECT_EQ(diff_run_records(base, noisy).exit_code(), 0);
  // +60% breaches the soft threshold (effective ~47% at 3 reps) but not
  // the hard one (~95%).
  const JsonValue slow =
      parse_json(patched("\"wall_ms\": 120.5", "\"wall_ms\": 192.8"));
  const DiffResult soft = diff_run_records(base, slow);
  EXPECT_EQ(soft.soft_regressions, 1u);
  EXPECT_EQ(soft.exit_code(), 1);
  // +150% is a hard regression.
  const JsonValue awful =
      parse_json(patched("\"wall_ms\": 120.5", "\"wall_ms\": 301.25"));
  EXPECT_EQ(diff_run_records(base, awful).exit_code(), 2);
  // A big decrease is an improvement, never a failure.
  const JsonValue fast =
      parse_json(patched("\"wall_ms\": 120.5", "\"wall_ms\": 40.0"));
  const DiffResult better = diff_run_records(base, fast);
  EXPECT_EQ(better.improvements, 1u);
  EXPECT_EQ(better.exit_code(), 0);
}

TEST(BenchDiff, MissingAndNewMetricsDoNotFail) {
  const JsonValue base = parse_json(kRecord);
  const JsonValue pruned =
      parse_json(patched("\"counters\": {\"pipeline.balance_moves\": 17}",
                         "\"counters\": {}"));
  const DiffResult result = diff_run_records(base, pruned);
  EXPECT_EQ(result.missing, 1u);
  EXPECT_EQ(result.exit_code(), 0);
  // Reversed: the extra metric shows up as new, also not a failure.
  const DiffResult reversed = diff_run_records(pruned, base);
  EXPECT_EQ(reversed.missing, 0u);
  EXPECT_EQ(reversed.exit_code(), 0);
}

TEST(BenchDiff, ZeroBaselineHandling) {
  const JsonValue base = parse_json(
      patched("\"pipeline.balance_moves\": 17",
              "\"pipeline.balance_moves\": 0"));
  // Zero -> zero: clean.
  EXPECT_EQ(diff_run_records(base, base).exit_code(), 0);
  // Zero -> nonzero on a deterministic metric: behaviour change, hard.
  const JsonValue nonzero = parse_json(kRecord);
  EXPECT_EQ(diff_run_records(base, nonzero).exit_code(), 2);
  // Zero baseline on a timing metric is unnormalizable: skipped.
  const JsonValue zero_time =
      parse_json(patched("\"wall_ms\": 120.5", "\"wall_ms\": 0"));
  const DiffResult result = diff_run_records(zero_time, parse_json(kRecord));
  EXPECT_EQ(result.exit_code(), 0);
}

TEST(BenchDiff, NonFiniteValuesAreSkippedNotFatal) {
  // json_number renders NaN as null; it must flatten to a skip.
  const JsonValue base = parse_json(patched("\"p50\": 350.0", "\"p50\": null"));
  const DiffResult result = diff_run_records(base, parse_json(kRecord));
  EXPECT_EQ(result.exit_code(), 0);
  for (const auto& d : result.deltas) {
    if (d.name == "histograms.engine.access_latency_ns.p50") {
      EXPECT_EQ(d.verdict, Verdict::kSkipped);
    }
  }
}

TEST(BenchDiff, GuardedMetricHasNoSoftBand) {
  EXPECT_TRUE(is_guarded_metric("tables.similarity[8192].reduction_ratio"));
  EXPECT_TRUE(is_guarded_metric("gauges.graph.REDUCTION_RATIO"));
  EXPECT_FALSE(is_guarded_metric("tables.scaling[1024/1].map_ms"));
  EXPECT_FALSE(is_guarded_metric("counters.pipeline.balance_moves"));

  // A breach between threshold and hard_factor x threshold is soft for a
  // plain deterministic metric, hard for a guarded one.
  const std::string base_text =
      patched("\"g.load\": 0.5",
              "\"g.load\": 10000, \"graph.reduction_ratio\": 10000");
  const std::string bumped_text =
      patched("\"g.load\": 0.5",
              "\"g.load\": 10015, \"graph.reduction_ratio\": 10015");
  const JsonValue base = parse_json(base_text);
  const JsonValue bumped = parse_json(bumped_text);
  const DiffResult result = diff_run_records(base, bumped);
  EXPECT_EQ(result.exit_code(), 2);
  for (const auto& d : result.deltas) {
    if (d.name == "gauges.graph.reduction_ratio") {
      EXPECT_EQ(d.verdict, Verdict::kHardRegression);
    } else if (d.name == "gauges.g.load") {
      EXPECT_EQ(d.verdict, Verdict::kSoftRegression);
    }
  }
}

TEST(BenchDiff, HeadroomAndMovementMetricsAreGuarded) {
  // The headroom observatory's columns are deterministic by
  // construction (simulated byte counts vs. an analytic bound), so any
  // drift is a hard regression — no soft band, same as reduction_ratio.
  EXPECT_TRUE(is_guarded_metric("tables.headroom[sar].l2_headroom_pct"));
  EXPECT_TRUE(is_guarded_metric("tables.headroom[hf].l1_bytes_moved"));
  EXPECT_TRUE(is_guarded_metric("tables.headroom[hf].l3_io_lower_bound"));
  EXPECT_TRUE(
      is_guarded_metric("tables.data movement[l2].io_lower_bound"));
  EXPECT_FALSE(is_guarded_metric("tables.data movement[l2].wall_ms"));
  EXPECT_FALSE(is_guarded_metric("counters.engine.bytes_prefetch"));

  const std::string base_text =
      patched("\"g.load\": 0.5",
              "\"g.load\": 0.5, \"engine.l2_headroom_pct\": 91.0");
  const std::string drifted_text =
      patched("\"g.load\": 0.5",
              "\"g.load\": 0.5, \"engine.l2_headroom_pct\": 90.8");
  const DiffResult result =
      diff_run_records(parse_json(base_text), parse_json(drifted_text));
  EXPECT_EQ(result.exit_code(), 2);
  for (const auto& d : result.deltas) {
    if (d.name == "gauges.engine.l2_headroom_pct") {
      EXPECT_EQ(d.verdict, Verdict::kHardRegression);
    }
  }
}

TEST(BenchDiff, RecordBuildIdFromMetadata) {
  const std::string text = patched(
      "\"build_type\": \"Release\"",
      "\"build_type\": \"Release\", \"git_sha\": \"abc123def456\", "
      "\"simd_level\": \"avx2\"");
  const JsonValue record = parse_json(text);
  EXPECT_EQ(record_metadata_string(record, "git_sha"), "abc123def456");
  EXPECT_EQ(record_metadata_string(record, "simd_level"), "avx2");
  EXPECT_EQ(record_metadata_string(record, "no_such_key"), "");
  EXPECT_EQ(record_build_id(record), "git abc123def456, simd avx2, Release");

  // Records that predate the stamps degrade to "?" placeholders.
  const JsonValue legacy = parse_json(kRecord);
  EXPECT_EQ(record_build_id(legacy), "git ?, simd ?, Release");
}

TEST(BenchDiff, ParseMinAssertion) {
  MinAssertion a;
  ASSERT_TRUE(parse_min_assertion("tables.scaling[1024/2].map_speedup:1.3", &a));
  EXPECT_EQ(a.metric, "tables.scaling[1024/2].map_speedup");
  EXPECT_DOUBLE_EQ(a.min, 1.3);
  // The metric name may itself contain colons; the value is everything
  // after the *last* one.
  ASSERT_TRUE(parse_min_assertion("a:b:2.5", &a));
  EXPECT_EQ(a.metric, "a:b");
  EXPECT_DOUBLE_EQ(a.min, 2.5);
  EXPECT_FALSE(parse_min_assertion("no-colon", &a));
  EXPECT_FALSE(parse_min_assertion("m:", &a));
  EXPECT_FALSE(parse_min_assertion("m:not-a-number", &a));
  EXPECT_FALSE(parse_min_assertion(":1.0", &a));
  EXPECT_FALSE(parse_min_assertion("m:1.0trailing", &a));
}

TEST(BenchDiff, CheckMinAssertions) {
  const JsonValue record = parse_json(kRecord);
  std::vector<MinAssertion> assertions{
      {"counters.pipeline.balance_moves", 10.0},  // 17 >= 10: met
      {"gauges.g.load", 0.5},                     // boundary counts as met
  };
  EXPECT_TRUE(check_min_assertions(record, assertions).empty());

  assertions.push_back({"counters.pipeline.balance_moves", 100.0});
  assertions.push_back({"no.such.metric", 1.0});
  const auto failures = check_min_assertions(record, assertions);
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_NE(failures[0].find("balance_moves"), std::string::npos);
  EXPECT_NE(failures[1].find("no.such.metric"), std::string::npos);
}

TEST(BenchDiff, ParseMaxAssertion) {
  MaxAssertion a;
  ASSERT_TRUE(
      parse_max_assertion("insight.l2.interference_miss_pct:12.5", &a));
  EXPECT_EQ(a.metric, "insight.l2.interference_miss_pct");
  EXPECT_DOUBLE_EQ(a.max, 12.5);
  EXPECT_FALSE(parse_max_assertion("no-colon", &a));
  EXPECT_FALSE(parse_max_assertion("m:", &a));
  EXPECT_FALSE(parse_max_assertion("m:nan", &a));
  EXPECT_FALSE(parse_max_assertion(":1.0", &a));
}

TEST(BenchDiff, CheckMaxAssertions) {
  const JsonValue record = parse_json(kRecord);
  std::vector<MaxAssertion> assertions{
      {"counters.pipeline.balance_moves", 20.0},  // 17 <= 20: met
      {"gauges.g.load", 0.5},                     // boundary counts as met
  };
  EXPECT_TRUE(check_max_assertions(record, assertions).empty());

  assertions.push_back({"counters.pipeline.balance_moves", 10.0});
  assertions.push_back({"no.such.metric", 1.0});
  const auto failures = check_max_assertions(record, assertions);
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_NE(failures[0].find("balance_moves"), std::string::npos);
  EXPECT_NE(failures[0].find("> allowed"), std::string::npos);
  EXPECT_NE(failures[1].find("no.such.metric"), std::string::npos);
}

TEST(BenchDiff, FlattensInsightSectionAsGuardedMetrics) {
  const std::string text = patched(
      "\"metrics\": {",
      R"("insight": {
        "num_clients": 2,
        "levels": [
          {"level": "l2", "capacity_chunks": 32, "accesses": 100,
           "hits": 60, "misses": 40, "compulsory": 30, "capacity": 6,
           "interference": 4, "interference_miss_pct": 10.0,
           "curve": [[1, 90], [32, 40]],
           "eviction_matrix": [[0, 1], [2, 0]]}
        ]
      },
      "metrics": {)");
  const auto metrics = flatten_run_record(parse_json(text));
  auto value_of = [&](const std::string& name) -> double {
    for (const auto& m : metrics) {
      if (m.name == name) return m.value;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value_of("insight.l2.misses"), 40.0);
  EXPECT_DOUBLE_EQ(value_of("insight.l2.compulsory"), 30.0);
  EXPECT_DOUBLE_EQ(value_of("insight.l2.capacity"), 6.0);
  EXPECT_DOUBLE_EQ(value_of("insight.l2.interference"), 4.0);
  EXPECT_DOUBLE_EQ(value_of("insight.l2.interference_miss_pct"), 10.0);
  // Any deterministic drift in an insight metric is a hard regression.
  EXPECT_TRUE(is_guarded_metric("insight.l2.interference_miss_pct"));
  const JsonValue base = parse_json(text);
  const JsonValue current = parse_json(
      [&] {
        std::string t = text;
        t.replace(t.find("\"interference\": 4"),
                  std::string("\"interference\": 4").size(),
                  "\"interference\": 5");
        return t;
      }());
  EXPECT_EQ(diff_run_records(base, current).exit_code(), 2);
}

TEST(BenchDiff, DiffTableListsRegressions) {
  const JsonValue base = parse_json(kRecord);
  const JsonValue worse =
      parse_json(patched("\"pipeline.balance_moves\": 17",
                         "\"pipeline.balance_moves\": 21"));
  const DiffResult result = diff_run_records(base, worse);
  const Table table = diff_table(result, /*color=*/false, /*all=*/false);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("counters.pipeline.balance_moves"),
            std::string::npos);
  EXPECT_NE(out.str().find("HARD REGRESSION"), std::string::npos);
}

}  // namespace
}  // namespace mlsc::obs
