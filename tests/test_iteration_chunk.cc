#include "core/iteration_chunk.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mlsc::core {
namespace {

IterationChunk chunk_with_ranges(std::vector<poly::LinearRange> ranges,
                                 std::vector<std::uint32_t> bits) {
  IterationChunk c;
  c.tag = ChunkTag::from_bits(std::move(bits));
  c.ranges = poly::normalize_ranges(std::move(ranges));
  c.iterations = poly::total_range_size(c.ranges);
  return c;
}

TEST(IterationChunk, FirstRank) {
  const auto c = chunk_with_ranges({{10, 20}, {5, 8}}, {1});
  EXPECT_EQ(c.first_rank(), 5u);
  IterationChunk empty;
  EXPECT_THROW(empty.first_rank(), mlsc::Error);
}

TEST(SplitChunk, SplitsSingleRange) {
  const auto c = chunk_with_ranges({{0, 10}}, {1, 2});
  const auto [head, tail] = split_chunk(c, 4);
  EXPECT_EQ(head.iterations, 4u);
  EXPECT_EQ(head.ranges, (std::vector<poly::LinearRange>{{0, 4}}));
  EXPECT_EQ(tail.iterations, 6u);
  EXPECT_EQ(tail.ranges, (std::vector<poly::LinearRange>{{4, 10}}));
  EXPECT_EQ(head.tag, c.tag);
  EXPECT_EQ(tail.tag, c.tag);
}

TEST(SplitChunk, SplitsAcrossRanges) {
  const auto c = chunk_with_ranges({{0, 3}, {10, 13}, {20, 24}}, {1});
  const auto [head, tail] = split_chunk(c, 5);
  EXPECT_EQ(head.iterations, 5u);
  EXPECT_EQ(tail.iterations, 5u);
  // Head takes the front ranges: [0,3) plus [10,12).
  EXPECT_EQ(head.ranges,
            (std::vector<poly::LinearRange>{{0, 3}, {10, 12}}));
  EXPECT_EQ(tail.ranges,
            (std::vector<poly::LinearRange>{{12, 13}, {20, 24}}));
}

TEST(SplitChunk, RejectsDegenerateSplits) {
  const auto c = chunk_with_ranges({{0, 4}}, {1});
  EXPECT_THROW(split_chunk(c, 0), mlsc::Error);
  EXPECT_THROW(split_chunk(c, 4), mlsc::Error);
  EXPECT_THROW(split_chunk(c, 9), mlsc::Error);
}

TEST(MergeChunks, UnionsTagsAndRanges) {
  const auto a = chunk_with_ranges({{0, 5}}, {1, 2});
  const auto b = chunk_with_ranges({{5, 8}}, {2, 3});
  const auto m = merge_chunks(a, b);
  EXPECT_EQ(m.iterations, 8u);
  EXPECT_EQ(m.ranges, (std::vector<poly::LinearRange>{{0, 8}}));
  EXPECT_EQ(m.tag.bits(), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(MergeChunks, RejectsOverlapsAndNestMismatch) {
  auto a = chunk_with_ranges({{0, 5}}, {1});
  auto b = chunk_with_ranges({{3, 8}}, {2});
  EXPECT_THROW(merge_chunks(a, b), mlsc::Error);  // overlapping iterations
  auto c = chunk_with_ranges({{10, 12}}, {2});
  c.nest = 1;
  EXPECT_THROW(merge_chunks(a, c), mlsc::Error);
}

}  // namespace
}  // namespace mlsc::core
