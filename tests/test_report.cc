#include "sim/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.h"
#include "workloads/registry.h"

namespace mlsc::sim {
namespace {

MachineConfig small_machine() {
  MachineConfig config;
  config.clients = 8;
  config.io_nodes = 4;
  config.storage_nodes = 2;
  config.client_cache_bytes = 2 * kMiB;
  config.io_cache_bytes = 2 * kMiB;
  config.storage_cache_bytes = 2 * kMiB;
  return config;
}

TEST(Report, SingleExperimentRendersEverySection) {
  const auto workload = workloads::make_workload("astro", 1.0 / 16.0);
  const auto config = small_machine();
  const auto result = run_experiment(workload, SchemeSpec::inter(), config);
  std::ostringstream out;
  write_report(out, result, config);
  const auto text = out.str();
  EXPECT_NE(text.find("L1 (compute)"), std::string::npos);
  EXPECT_NE(text.find("L3 (storage)"), std::string::npos);
  EXPECT_NE(text.find("disk service+queue"), std::string::npos);
  EXPECT_NE(text.find("execution time:"), std::string::npos);
}

TEST(Report, StallBreakdownSumsToIoTime) {
  const auto workload = workloads::make_workload("hf", 1.0 / 16.0);
  const auto config = small_machine();
  const auto r = run_experiment(workload, SchemeSpec::original(), config);
  const auto& e = r.engine;
  EXPECT_EQ(e.time_client_cache + e.time_shared_cache + e.time_peer_cache +
                e.time_disk + e.time_retry + e.time_failover,
            e.io_time_total);
  EXPECT_LE(e.time_disk_queue, e.time_disk);
}

TEST(Report, ComparisonNormalizesToFirst) {
  const auto workload = workloads::make_workload("astro", 1.0 / 16.0);
  const auto config = small_machine();
  std::vector<ExperimentResult> results{
      run_experiment(workload, SchemeSpec::original(), config),
      run_experiment(workload, SchemeSpec::inter(), config),
  };
  const auto table = comparison_table(results);
  EXPECT_EQ(table.num_rows(), 2u);
  std::ostringstream csv;
  write_comparison_csv(csv, results);
  // The first row normalizes to exactly 1.000.
  EXPECT_NE(csv.str().find("1.000"), std::string::npos);
}

TEST(Report, ComparisonRejectsMixedWorkloads) {
  auto a = ExperimentResult{};
  a.workload = "x";
  a.io_latency = 1;
  a.exec_time = 1;
  auto b = ExperimentResult{};
  b.workload = "y";
  EXPECT_THROW(comparison_table({a, b}), mlsc::Error);
  EXPECT_THROW(comparison_table({}), mlsc::Error);
}

TEST(Report, RunAllSchemesReturnsTheFourVersions) {
  const auto workload = workloads::make_workload("sar", 1.0 / 16.0);
  const auto results = run_all_schemes(workload, small_machine());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].scheme, "original");
  EXPECT_EQ(results[1].scheme, "intra-processor");
  EXPECT_EQ(results[2].scheme, "inter-processor");
  EXPECT_EQ(results[3].scheme, "inter-processor+sched");
}

}  // namespace
}  // namespace mlsc::sim
