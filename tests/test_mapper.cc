#include "core/mapper.h"

#include <gtest/gtest.h>

#include <set>

#include "core/tagging.h"
#include "support/check.h"

namespace mlsc::core {
namespace {

/// Fig. 6 program (A[x] modelled as the constant reference A[0]).
poly::Program fig6_program(std::int64_t d = 8) {
  poly::Program p;
  const auto a = p.add_array({"A", {12 * d}, 64});
  poly::LoopNest nest;
  nest.name = "fig6";
  nest.space = poly::IterationSpace({{0, 8 * d - 1}});
  nest.refs = {
      {a, poly::AccessMap::identity(1, {0}), true},
      {a, poly::AccessMap::from_matrix({{0}}, {0}), false},
      {a, poly::AccessMap::identity(1, {4 * d}), false},
      {a, poly::AccessMap::identity(1, {2 * d}), false},
  };
  p.add_nest(std::move(nest));
  return p;
}

/// Fig. 7 target hierarchy: 4 clients, 2 I/O nodes, 1 storage node.
topology::HierarchyTree fig7_tree() {
  return topology::make_layered_hierarchy(4, 2, 1, 1024, 1024, 1024);
}

TEST(HierarchicalMapper, Fig9EndToEnd) {
  const auto p = fig6_program();
  const auto tree = fig7_tree();
  const DataSpace space(p, 64 * 8);
  HierarchicalMapper mapper(tree);
  const std::vector<poly::NestId> nests{0};
  const auto mapping = mapper.map(p, space, nests);

  ASSERT_EQ(mapping.num_clients(), 4u);
  mapping.validate_partition(p);
  EXPECT_EQ(mapping.kind, MapperKind::kInterProcessor);

  // Fig. 9/17: each client gets one parity family pair — {γ2,γ4},
  // {γ6,γ8}, {γ1,γ3}, {γ5,γ7} (client order may differ; the invariant is
  // the grouping).  γk covers ranks [ (k-1)*8, k*8 ).
  std::set<std::set<std::uint64_t>> groups;
  for (std::size_t c = 0; c < 4; ++c) {
    std::set<std::uint64_t> firsts;
    for (const auto& item : mapping.client_work[c]) {
      firsts.insert(item.ranges.front().begin / 8 + 1);  // γ index
    }
    groups.insert(firsts);
  }
  const std::set<std::set<std::uint64_t>> expected{
      {1, 3}, {5, 7}, {2, 4}, {6, 8}};
  EXPECT_EQ(groups, expected);
}

TEST(HierarchicalMapper, PartitionInvariantOnPaperTopology) {
  const auto p = fig6_program(16);
  const auto tree = topology::make_layered_hierarchy(8, 4, 2, 1024, 1024,
                                                     1024);
  const DataSpace space(p, 64 * 16);
  HierarchicalMapper mapper(tree);
  const std::vector<poly::NestId> nests{0};
  const auto mapping = mapper.map(p, space, nests);
  mapping.validate_partition(p);
  EXPECT_EQ(mapping.total_iterations(), p.nest(0).space.size());
}

TEST(HierarchicalMapper, BalanceWithinThreshold) {
  // Large enough that integer rounding of the window is negligible.
  const auto p = fig6_program(128);
  const auto tree = topology::make_layered_hierarchy(8, 4, 2, 1024, 1024,
                                                     1024);
  const DataSpace space(p, 64 * 4);
  HierarchicalMapperOptions options;
  options.balance_threshold = 0.10;
  HierarchicalMapper mapper(tree, options);
  const std::vector<poly::NestId> nests{0};
  const auto mapping = mapper.map(p, space, nests);
  // BThres bounds the deviation of any client from the ideal.
  EXPECT_LE(mapping.imbalance(), 0.11);
}

TEST(HierarchicalMapper, EveryItemIsAnIterationChunk) {
  const auto p = fig6_program();
  const auto tree = fig7_tree();
  const DataSpace space(p, 64 * 8);
  HierarchicalMapper mapper(tree);
  const std::vector<poly::NestId> nests{0};
  const auto mapping = mapper.map(p, space, nests);
  for (const auto& work : mapping.client_work) {
    for (const auto& item : work) {
      ASSERT_GE(item.chunk, 0);
      const auto& chunk =
          mapping.chunk_table[static_cast<std::size_t>(item.chunk)];
      EXPECT_EQ(item.ranges, chunk.ranges);
      EXPECT_EQ(item.iterations, chunk.iterations);
    }
  }
}

TEST(HierarchicalMapper, RequiresChunks) {
  const auto tree = fig7_tree();
  HierarchicalMapper mapper(tree);
  EXPECT_THROW(mapper.map_chunks({}), mlsc::Error);
}

}  // namespace
}  // namespace mlsc::core
