// ThreadPool: coverage of the chunked parallel_for — every index visited
// exactly once, deterministic chunk decomposition, exception propagation,
// pool reuse, and the degenerate small-range / serial cases.
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mlsc {
namespace {

TEST(ThreadPool, ReportsTotalThreadCount) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.num_threads(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4u);
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(resolve_num_threads(1), 1u);
  EXPECT_EQ(resolve_num_threads(3), 3u);
  EXPECT_GE(resolve_num_threads(0), 1u);  // hardware concurrency
}

TEST(ThreadPool, ChunkCountMatchesDecomposition) {
  EXPECT_EQ(ThreadPool::chunk_count(0, 0, 16), 0u);
  EXPECT_EQ(ThreadPool::chunk_count(0, 15, 16), 1u);
  EXPECT_EQ(ThreadPool::chunk_count(0, 16, 16), 1u);
  EXPECT_EQ(ThreadPool::chunk_count(0, 17, 16), 2u);
  EXPECT_EQ(ThreadPool::chunk_count(10, 100, 30), 3u);
}

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(0, kN, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ChunkBoundsAreDeterministic) {
  ThreadPool pool(4);
  const std::size_t begin = 7, end = 1007, grain = 100;
  const std::size_t chunks = ThreadPool::chunk_count(begin, end, grain);
  // Per-chunk slots: each chunk writes its own entry, so the recorded
  // bounds are independent of which thread claimed which chunk.
  std::vector<std::pair<std::size_t, std::size_t>> bounds(chunks);
  std::vector<std::atomic<int>> seen(chunks);
  pool.parallel_chunks(begin, end, grain,
                       [&](std::size_t c, std::size_t lo, std::size_t hi) {
                         bounds[c] = {lo, hi};
                         seen[c].fetch_add(1);
                       });
  std::size_t expect_lo = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(seen[c].load(), 1);
    EXPECT_EQ(bounds[c].first, expect_lo);
    EXPECT_EQ(bounds[c].second, std::min(expect_lo + grain, end));
    expect_lo = bounds[c].second;
  }
  EXPECT_EQ(expect_lo, end);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 10,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 500) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives the failed job and runs the next one normally.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 100, 7, [&](std::size_t lo, std::size_t hi) {
    std::size_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 99u * 100u / 2u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(0, 257, 16, [&](std::size_t lo, std::size_t hi) {
      count.fetch_add(hi - lo);
    });
    ASSERT_EQ(count.load(), 257u);
  }
}

TEST(ThreadPool, RangeSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  pool.parallel_for(0, 3, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, 10, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> visits(100, 0);
  pool.parallel_for(0, visits.size(), 9, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++visits[i];
  });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 100);
}

TEST(ThreadPool, DefaultGrainCoversRange) {
  ThreadPool pool(4);
  for (std::size_t range : {0u, 1u, 7u, 1000u, 100000u}) {
    const std::size_t grain = pool.default_grain(range);
    EXPECT_GE(grain, 1u);
    if (range > 0) {
      std::atomic<std::size_t> count{0};
      pool.parallel_for(0, range, grain, [&](std::size_t lo, std::size_t hi) {
        count.fetch_add(hi - lo);
      });
      EXPECT_EQ(count.load(), range);
    }
  }
}

}  // namespace
}  // namespace mlsc
