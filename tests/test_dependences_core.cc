// Tests for the §5.4 dependence extension: chunk-level dependences, the
// merge-clusters strategy and sync-edge insertion.
#include <gtest/gtest.h>

#include "core/dependences.h"
#include "core/mapper.h"
#include "core/pipeline.h"
#include "core/tagging.h"
#include "support/check.h"

namespace mlsc::core {
namespace {

/// for i = 1..N-1: A[i] = A[i-1]: a chain of flow dependences.
poly::Program chain_program(std::int64_t n = 64) {
  poly::Program p;
  const auto a = p.add_array({"A", {n}, 64});
  poly::LoopNest nest;
  nest.name = "chain";
  nest.space = poly::IterationSpace({{1, n - 1}});
  nest.refs = {
      {a, poly::AccessMap::identity(1, {0}), /*is_write=*/true},
      {a, poly::AccessMap::identity(1, {-1}), false},
  };
  p.add_nest(std::move(nest));
  return p;
}

TEST(ChunkDependences, ChainLinksAdjacentChunks) {
  const auto p = chain_program();
  const DataSpace space(p, 64 * 8);  // chunks of 8 elements
  const std::vector<poly::NestId> nests{0};
  const auto tagging = compute_iteration_chunks(p, space, nests);
  const auto deps = find_chunk_dependences(p, 0, tagging.chunks);
  EXPECT_FALSE(deps.empty());
  for (const auto& dep : deps) {
    // Orientation: producer has the earlier first rank.
    EXPECT_LT(tagging.chunks[dep.src].first_rank(),
              tagging.chunks[dep.dst].first_rank());
  }
}

TEST(ChunkDependences, IndependentNestHasNone) {
  poly::Program p;
  const auto a = p.add_array({"A", {64}, 64});
  const auto b = p.add_array({"B", {64}, 64});
  poly::LoopNest nest;
  nest.space = poly::IterationSpace({{0, 63}});
  nest.refs = {
      {b, poly::AccessMap::identity(1, {0}), /*is_write=*/true},
      {a, poly::AccessMap::identity(1, {0}), false},
  };
  p.add_nest(std::move(nest));
  const DataSpace space(p, 64 * 8);
  const std::vector<poly::NestId> nests{0};
  const auto tagging = compute_iteration_chunks(p, space, nests);
  EXPECT_TRUE(find_chunk_dependences(p, 0, tagging.chunks).empty());
}

TEST(MergeDependentChunks, CollapsesConnectedComponents) {
  const auto p = chain_program();
  const DataSpace space(p, 64 * 8);
  const std::vector<poly::NestId> nests{0};
  auto tagging = compute_iteration_chunks(p, space, nests);
  const auto deps = find_chunk_dependences(p, 0, tagging.chunks);
  const std::uint64_t before = tagging.chunks.size();
  const auto merged =
      merge_dependent_chunks(std::move(tagging.chunks), deps);
  // The chain connects everything: one chunk remains ("infinite edge
  // weight" clustering, strategy 1).
  EXPECT_LT(merged.size(), before);
  EXPECT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].iterations, 63u);
}

TEST(SyncEdges, CrossClientEdgesAreFeasible) {
  const auto p = chain_program(256);
  const auto tree = topology::make_layered_hierarchy(4, 2, 1, 1024, 1024,
                                                     1024);
  const DataSpace space(p, 64 * 8);
  PipelineOptions options;
  options.dependences = DependenceStrategy::kSynchronize;
  MappingPipeline pipeline(tree, options);
  const auto m = pipeline.run_all(p, space);
  EXPECT_FALSE(m.sync_edges.empty());
  for (const auto& e : m.sync_edges) {
    EXPECT_NE(e.producer_client, e.consumer_client);
    EXPECT_LT(e.producer_client, m.num_clients());
    EXPECT_LT(e.consumer_client, m.num_clients());
    EXPECT_LT(e.producer_item, m.client_work[e.producer_client].size());
    EXPECT_LT(e.consumer_item, m.client_work[e.consumer_client].size());
  }
}

TEST(SyncEdges, MergeStrategyNeedsNoSync) {
  const auto p = chain_program(256);
  const auto tree = topology::make_layered_hierarchy(4, 2, 1, 1024, 1024,
                                                     1024);
  const DataSpace space(p, 64 * 8);
  PipelineOptions options;
  options.dependences = DependenceStrategy::kMergeClusters;
  MappingPipeline pipeline(tree, options);
  const auto m = pipeline.run_all(p, space);
  EXPECT_TRUE(m.sync_edges.empty());
  m.validate_partition(p);
}

TEST(StrategyNames, Render) {
  EXPECT_STREQ(dependence_strategy_name(DependenceStrategy::kMergeClusters),
               "merge-clusters");
  EXPECT_STREQ(dependence_strategy_name(DependenceStrategy::kSynchronize),
               "synchronize");
}

}  // namespace
}  // namespace mlsc::core
