// Replacement-policy tests: per-policy behaviour plus cross-policy
// invariants and an LRU reference-model property test.
#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

#include "cache/policy.h"
#include "support/check.h"
#include "support/rng.h"

namespace mlsc::cache {
namespace {

TEST(PolicyNames, RoundTrip) {
  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kClock,
        PolicyKind::kLfu, PolicyKind::kTwoQ, PolicyKind::kMq}) {
    EXPECT_EQ(parse_policy_kind(policy_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_policy_kind("belady"), Error);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  auto p = make_policy(PolicyKind::kLru, 2);
  EXPECT_FALSE(p->insert(1).has_value());
  EXPECT_FALSE(p->insert(2).has_value());
  EXPECT_TRUE(p->touch(1));  // 2 is now LRU
  EXPECT_EQ(p->insert(3), std::optional<ChunkId>{2});
  EXPECT_TRUE(p->contains(1));
  EXPECT_TRUE(p->contains(3));
}

TEST(Fifo, IgnoresHitsForVictimChoice) {
  auto p = make_policy(PolicyKind::kFifo, 2);
  p->insert(1);
  p->insert(2);
  EXPECT_TRUE(p->touch(1));          // does not protect 1 under FIFO
  EXPECT_EQ(p->insert(3), std::optional<ChunkId>{1});
}

TEST(Clock, SecondChanceProtectsReferenced) {
  auto p = make_policy(PolicyKind::kClock, 2);
  p->insert(1);
  p->insert(2);
  EXPECT_TRUE(p->touch(1));
  // Hand sweeps: 1 referenced (cleared, skipped), 2 unreferenced... but 2
  // was just inserted with its bit set too; both get cleared, then 1 is
  // the first unreferenced frame.  The key property: eviction succeeds
  // and size stays at capacity.
  p->insert(3);
  EXPECT_EQ(p->size(), 2u);
  EXPECT_TRUE(p->contains(3));
}

TEST(Lfu, EvictsLeastFrequent) {
  auto p = make_policy(PolicyKind::kLfu, 2);
  p->insert(1);
  p->touch(1);
  p->touch(1);
  p->insert(2);
  EXPECT_EQ(p->insert(3), std::optional<ChunkId>{2});  // freq(2)=1 < freq(1)=3
}

TEST(TwoQ, GhostHitPromotesToMain) {
  auto p = make_policy(PolicyKind::kTwoQ, 4);  // A1in capacity 1
  p->insert(1);
  p->insert(2);
  p->insert(3);
  p->insert(4);
  // Fill past capacity: A1in reclaims oldest into the ghost queue.
  p->insert(5);
  EXPECT_EQ(p->size(), 4u);
  // Re-inserting a ghosted chunk must land it in Am (still resident after
  // further A1in churn).
  const bool was_ghosted = !p->contains(1);
  if (was_ghosted) {
    p->insert(1);
    EXPECT_TRUE(p->contains(1));
  }
}

TEST(Mq, PromotesByFrequency) {
  auto p = make_policy(PolicyKind::kMq, 3);
  p->insert(1);
  for (int i = 0; i < 8; ++i) p->touch(1);  // queue ~3
  p->insert(2);
  p->insert(3);
  // 1 is in a high queue; inserting 4 should evict from the lowest
  // non-empty queue, never 1.
  const auto evicted = p->insert(4);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_NE(*evicted, 1u);
  EXPECT_TRUE(p->contains(1));
}

TEST(Arc, AdaptsAndPromotesOnSecondReference) {
  auto p = make_policy(PolicyKind::kArc, 4);
  p->insert(1);
  p->insert(2);
  EXPECT_TRUE(p->touch(1));  // 1 promoted to T2
  p->insert(3);
  p->insert(4);
  // Cache full; a scan of new chunks should not evict the re-referenced 1.
  p->insert(5);
  p->insert(6);
  EXPECT_TRUE(p->contains(1));
}

TEST(Arc, GhostHitSteersAdaptation) {
  auto p = make_policy(PolicyKind::kArc, 2);
  p->insert(1);
  p->insert(2);
  p->insert(3);  // evicts 1 into the B1 ghost list
  EXPECT_FALSE(p->contains(1));
  p->insert(1);  // ghost hit: re-enters as a frequency block
  EXPECT_TRUE(p->contains(1));
  EXPECT_LE(p->size(), 2u);
}

TEST(Policies, RejectZeroCapacity) {
  EXPECT_THROW(make_policy(PolicyKind::kLru, 0), Error);
}

/// Cross-policy invariants on a random workload: size never exceeds
/// capacity, contains() agrees with touch(), erase removes, insert of a
/// resident chunk never evicts.
class PolicyInvariantTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyInvariantTest, RandomWorkloadInvariants) {
  const std::size_t capacity = 16;
  auto p = make_policy(GetParam(), capacity);
  Rng rng(99);
  std::unordered_set<ChunkId> resident;
  for (int step = 0; step < 5000; ++step) {
    const auto chunk = static_cast<ChunkId>(rng.next_below(64));
    const auto action = rng.next_below(10);
    if (action < 6) {
      const bool hit = p->touch(chunk);
      EXPECT_EQ(hit, resident.count(chunk) > 0);
      if (!hit) {
        const auto evicted = p->insert(chunk);
        resident.insert(chunk);
        if (evicted.has_value()) {
          EXPECT_TRUE(resident.count(*evicted) > 0);
          EXPECT_NE(*evicted, chunk);
          resident.erase(*evicted);
        }
      }
    } else if (action < 8) {
      const auto evicted = p->insert(chunk);
      if (resident.count(chunk)) {
        EXPECT_FALSE(evicted.has_value()) << "resident insert must not evict";
      } else {
        resident.insert(chunk);
        if (evicted.has_value()) resident.erase(*evicted);
      }
    } else {
      const bool erased = p->erase(chunk);
      EXPECT_EQ(erased, resident.count(chunk) > 0);
      resident.erase(chunk);
    }
    EXPECT_LE(p->size(), capacity);
    EXPECT_EQ(p->size(), resident.size());
    for (ChunkId r : resident) {
      EXPECT_TRUE(p->contains(r)) << "chunk " << r << " lost";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariantTest,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kFifo,
                                           PolicyKind::kClock,
                                           PolicyKind::kLfu, PolicyKind::kTwoQ,
                                           PolicyKind::kMq, PolicyKind::kArc),
                         [](const auto& info) {
                           return std::string(policy_kind_name(info.param));
                         });

/// Property: the LRU core matches a simple deque reference model exactly.
TEST(LruProperty, MatchesReferenceModel) {
  const std::size_t capacity = 8;
  auto p = make_policy(PolicyKind::kLru, capacity);
  std::deque<ChunkId> ref;  // front = most recent
  Rng rng(5);
  for (int step = 0; step < 10000; ++step) {
    const auto chunk = static_cast<ChunkId>(rng.next_below(24));
    auto it = std::find(ref.begin(), ref.end(), chunk);
    if (it != ref.end()) {
      EXPECT_TRUE(p->touch(chunk));
      ref.erase(it);
      ref.push_front(chunk);
    } else {
      EXPECT_FALSE(p->touch(chunk));
      const auto evicted = p->insert(chunk);
      if (ref.size() == capacity) {
        ASSERT_TRUE(evicted.has_value());
        EXPECT_EQ(*evicted, ref.back());
        ref.pop_back();
      } else {
        EXPECT_FALSE(evicted.has_value());
      }
      ref.push_front(chunk);
    }
  }
}

}  // namespace
}  // namespace mlsc::cache
