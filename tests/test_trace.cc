#include "sim/trace.h"

#include <gtest/gtest.h>

#include <map>

#include "core/pipeline.h"
#include "support/check.h"
#include "workloads/registry.h"

namespace mlsc::sim {
namespace {

/// Tiny two-array program with one 2-deep nest.
poly::Program tiny_program() {
  poly::Program p;
  const auto a = p.add_array({"A", {8, 8}, 64});
  const auto b = p.add_array({"B", {8, 8}, 64});
  poly::LoopNest nest;
  nest.name = "tiny";
  nest.space = poly::IterationSpace::from_extents({8, 8});
  nest.refs = {
      {a, poly::AccessMap::identity(2, {0, 0}), false},
      {b, poly::AccessMap::identity(2, {0, 0}), /*is_write=*/true},
  };
  nest.compute_ns_per_iteration = 10;
  p.add_nest(std::move(nest));
  return p;
}

topology::HierarchyTree tiny_tree() {
  return topology::make_layered_hierarchy(4, 2, 1, 1024, 1024, 1024);
}

TEST(Trace, CoversEveryIterationOnce) {
  const auto p = tiny_program();
  const auto tree = tiny_tree();
  const core::DataSpace space(p, 128);
  core::MappingPipeline pipeline(tree);
  const auto m = pipeline.run_all(p, space);
  const auto trace = generate_trace(p, space, m);
  std::uint64_t iterations = 0;
  for (const auto& ct : trace.clients) {
    iterations += ct.total_iterations();
    // Access stream and per-iteration counts must agree.
    std::uint64_t total = 0;
    for (std::uint8_t n : ct.accesses_per_iteration) total += n;
    EXPECT_EQ(total, ct.accesses.size());
  }
  EXPECT_EQ(iterations, 64u);
}

TEST(Trace, EveryIterationEmitsPerRefAccesses) {
  const auto p = tiny_program();
  const auto tree = tiny_tree();
  const core::DataSpace space(p, 128);
  core::MappingPipeline pipeline(tree);
  const auto m = pipeline.run_all(p, space);
  const auto trace = generate_trace(p, space, m);
  // Each iteration touches A (64 B in a 128 B chunk: 1 chunk) and B (1):
  // 2 accesses per iteration, one of them a write.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (const auto& ct : trace.clients) {
    for (std::uint8_t n : ct.accesses_per_iteration) EXPECT_EQ(n, 2);
    for (const auto& access : ct.accesses) {
      (access.is_write ? writes : reads) += 1;
    }
  }
  EXPECT_EQ(reads, 64u);
  EXPECT_EQ(writes, 64u);
}

TEST(Trace, ItemsAlignWithMapping) {
  const auto p = tiny_program();
  const auto tree = tiny_tree();
  const core::DataSpace space(p, 128);
  core::MappingPipeline pipeline(tree);
  const auto m = pipeline.run_all(p, space);
  const auto trace = generate_trace(p, space, m);
  for (std::size_t c = 0; c < m.num_clients(); ++c) {
    ASSERT_EQ(trace.clients[c].items.size(), m.client_work[c].size());
    for (std::size_t k = 0; k < m.client_work[c].size(); ++k) {
      EXPECT_EQ(trace.clients[c].items[k].iterations,
                m.client_work[c][k].iterations);
    }
  }
}

TEST(Trace, TransformedOrderVisitsSameChunksAsIdentity) {
  // The intra-processor (tiled) traversal must access exactly the same
  // multiset of chunks as the original, just in a different order.
  const auto p = tiny_program();
  const auto tree = tiny_tree();
  const core::DataSpace space(p, 128);

  auto count_accesses = [&](core::MapperKind kind) {
    core::PipelineOptions options;
    options.mapper = kind;
    core::MappingPipeline pipeline(tree, options);
    const auto m = pipeline.run_all(p, space);
    const auto trace = generate_trace(p, space, m);
    std::map<core::ChunkId, std::uint64_t> counts;
    for (const auto& ct : trace.clients) {
      for (const auto& access : ct.accesses) ++counts[access.chunk];
    }
    return counts;
  };
  EXPECT_EQ(count_accesses(core::MapperKind::kOriginal),
            count_accesses(core::MapperKind::kIntraProcessor));
}

TEST(Trace, BufferRepeatsSuppressesStableRefs) {
  // With buffering on, consecutive iterations re-touching the same chunk
  // emit fewer accesses.
  const auto p = tiny_program();
  const auto tree = tiny_tree();
  const core::DataSpace space(p, 1024);  // whole rows share chunks
  core::MappingPipeline pipeline(tree);
  const auto m = pipeline.run_all(p, space);
  const auto plain = generate_trace(p, space, m);
  TraceOptions options;
  options.buffer_repeats = true;
  const auto buffered = generate_trace(p, space, m, options);
  EXPECT_LT(buffered.total_accesses(), plain.total_accesses());
}

}  // namespace
}  // namespace mlsc::sim
