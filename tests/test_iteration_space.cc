#include "poly/iteration_space.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"

namespace mlsc::poly {
namespace {

TEST(IterationSpace, SizeAndBounds) {
  const IterationSpace s({{2, 5}, {1, 3}});  // 4 x 3
  EXPECT_EQ(s.depth(), 2u);
  EXPECT_EQ(s.size(), 12u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.loop(0).extent(), 4);
}

TEST(IterationSpace, FromExtents) {
  const auto s = IterationSpace::from_extents({3, 4, 5});
  EXPECT_EQ(s.size(), 60u);
  EXPECT_EQ(s.loop(2).lower, 0);
  EXPECT_EQ(s.loop(2).upper, 4);
}

TEST(IterationSpace, EmptySpace) {
  const IterationSpace s({{5, 2}});
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(IterationSpace, Contains) {
  const IterationSpace s({{2, 5}, {1, 3}});
  EXPECT_TRUE(s.contains(std::vector<std::int64_t>{2, 1}));
  EXPECT_TRUE(s.contains(std::vector<std::int64_t>{5, 3}));
  EXPECT_FALSE(s.contains(std::vector<std::int64_t>{6, 1}));
  EXPECT_FALSE(s.contains(std::vector<std::int64_t>{2}));
}

TEST(IterationSpace, LinearizeDelinearizeRoundTrip) {
  const IterationSpace s({{2, 5}, {1, 3}, {0, 6}});
  for (std::uint64_t rank = 0; rank < s.size(); ++rank) {
    const auto iter = s.delinearize(rank);
    EXPECT_EQ(s.linearize(iter), rank);
    EXPECT_TRUE(s.contains(iter));
  }
}

TEST(IterationSpace, LexicographicOrder) {
  const IterationSpace s({{0, 1}, {0, 2}});
  Iteration iter = s.first();
  EXPECT_EQ(iter, (Iteration{0, 0}));
  std::uint64_t rank = 0;
  do {
    EXPECT_EQ(s.linearize(iter), rank);
    ++rank;
  } while (s.advance(iter));
  EXPECT_EQ(rank, s.size());
}

TEST(IterationSpace, AdvanceResetsInnerLoops) {
  const IterationSpace s({{0, 2}, {5, 6}});
  Iteration iter{0, 6};
  EXPECT_TRUE(s.advance(iter));
  EXPECT_EQ(iter, (Iteration{1, 5}));
}

TEST(LinearRanges, NormalizeMergesAndSorts) {
  auto out = normalize_ranges({{10, 20}, {0, 5}, {5, 10}, {30, 30}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (LinearRange{0, 20}));
}

TEST(LinearRanges, NormalizeKeepsGaps) {
  auto out = normalize_ranges({{5, 7}, {10, 12}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(total_range_size(out), 4u);
}

/// Property: total size preserved for disjoint random range sets.
TEST(LinearRangesProperty, NormalizePreservesDisjointSize) {
  mlsc::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<LinearRange> ranges;
    std::uint64_t pos = 0;
    std::uint64_t total = 0;
    for (int i = 0; i < 20; ++i) {
      pos += rng.next_below(5);  // gap
      const std::uint64_t len = rng.next_below(10);
      ranges.push_back({pos, pos + len});
      total += len;
      pos += len;
    }
    // Shuffle by swapping.
    for (std::size_t i = ranges.size(); i-- > 1;) {
      std::swap(ranges[i], ranges[rng.next_below(i + 1)]);
    }
    EXPECT_EQ(total_range_size(normalize_ranges(ranges)), total);
  }
}

}  // namespace
}  // namespace mlsc::poly
