// Integration tests for the MappingPipeline facade and client codegen.
#include <gtest/gtest.h>

#include "core/client_codegen.h"
#include "core/pipeline.h"
#include "support/check.h"
#include "workloads/registry.h"

namespace mlsc::core {
namespace {

topology::HierarchyTree small_tree() {
  return topology::make_layered_hierarchy(8, 4, 2, 4 * kMiB, 4 * kMiB,
                                          4 * kMiB);
}

/// Tiny workloads (size_factor shrinks elements 16x) keep these fast.
workloads::Workload tiny(const std::string& name) {
  return workloads::make_workload(name, 1.0 / 16.0);
}

class PipelineWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineWorkloadTest, AllSchemesPartitionEveryWorkload) {
  const auto workload = tiny(GetParam());
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  for (const MapperKind kind :
       {MapperKind::kOriginal, MapperKind::kIntraProcessor,
        MapperKind::kInterProcessor}) {
    PipelineOptions options;
    options.mapper = kind;
    MappingPipeline pipeline(tree, options);
    const auto m = pipeline.run_all(workload.program, space);
    m.validate_partition(workload.program);
    EXPECT_EQ(m.kind, kind) << workload.name;
    EXPECT_EQ(m.num_clients(), 8u);
  }
}

TEST_P(PipelineWorkloadTest, ScheduledMappingStillPartitions) {
  const auto workload = tiny(GetParam());
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  PipelineOptions options;
  options.schedule = true;
  MappingPipeline pipeline(tree, options);
  const auto m = pipeline.run_all(workload.program, space);
  m.validate_partition(workload.program);
  EXPECT_TRUE(m.scheduled);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PipelineWorkloadTest,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

TEST(Pipeline, InterBalancesWithinThreshold) {
  const auto workload = tiny("astro");
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  PipelineOptions options;
  options.balance_threshold = 0.10;
  MappingPipeline pipeline(tree, options);
  const auto m = pipeline.run_all(workload.program, space);
  EXPECT_LE(m.imbalance(), 0.11);
}

TEST(Pipeline, RejectsEmptyNestList) {
  const auto workload = tiny("hf");
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  MappingPipeline pipeline(tree);
  EXPECT_THROW(pipeline.run(workload.program, space, {}), mlsc::Error);
}

TEST(ClientCodegen, EmitsLoopsForEveryClient) {
  const auto workload = tiny("sar");
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  MappingPipeline pipeline(tree);
  const auto m = pipeline.run_all(workload.program, space);
  const auto source = emit_all_clients_source(workload.program, m);
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_NE(source.find("// client " + std::to_string(c)),
              std::string::npos);
  }
  EXPECT_NE(source.find("for (long i0"), std::string::npos);
  EXPECT_NE(source.find("iteration chunk"), std::string::npos);
}

TEST(ClientCodegen, BaselineBlocksRenderOrders) {
  const auto workload = tiny("sar");
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  PipelineOptions options;
  options.mapper = MapperKind::kOriginal;
  MappingPipeline pipeline(tree, options);
  const auto m = pipeline.run_all(workload.program, space);
  const auto source = emit_client_source(workload.program, m, 0);
  EXPECT_NE(source.find("block of nest"), std::string::npos);
  EXPECT_NE(source.find("perm("), std::string::npos);
}

}  // namespace
}  // namespace mlsc::core
