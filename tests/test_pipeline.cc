// Integration tests for the MappingPipeline facade and client codegen.
#include <gtest/gtest.h>

#include "core/client_codegen.h"
#include "core/clustering.h"
#include "core/pipeline.h"
#include "support/check.h"
#include "workloads/registry.h"

namespace mlsc::core {
namespace {

topology::HierarchyTree small_tree() {
  return topology::make_layered_hierarchy(8, 4, 2, 4 * kMiB, 4 * kMiB,
                                          4 * kMiB);
}

/// Tiny workloads (size_factor shrinks elements 16x) keep these fast.
workloads::Workload tiny(const std::string& name) {
  return workloads::make_workload(name, 1.0 / 16.0);
}

class PipelineWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineWorkloadTest, AllSchemesPartitionEveryWorkload) {
  const auto workload = tiny(GetParam());
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  for (const MapperKind kind :
       {MapperKind::kOriginal, MapperKind::kIntraProcessor,
        MapperKind::kInterProcessor}) {
    PipelineOptions options;
    options.mapper = kind;
    MappingPipeline pipeline(tree, options);
    const auto m = pipeline.run_all(workload.program, space);
    m.validate_partition(workload.program);
    EXPECT_EQ(m.kind, kind) << workload.name;
    EXPECT_EQ(m.num_clients(), 8u);
  }
}

TEST_P(PipelineWorkloadTest, ScheduledMappingStillPartitions) {
  const auto workload = tiny(GetParam());
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  PipelineOptions options;
  options.schedule = true;
  MappingPipeline pipeline(tree, options);
  const auto m = pipeline.run_all(workload.program, space);
  m.validate_partition(workload.program);
  EXPECT_TRUE(m.scheduled);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PipelineWorkloadTest,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

TEST(Pipeline, InterBalancesWithinThreshold) {
  const auto workload = tiny("astro");
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  PipelineOptions options;
  options.balance_threshold = 0.10;
  MappingPipeline pipeline(tree, options);
  const auto m = pipeline.run_all(workload.program, space);
  EXPECT_LE(m.imbalance(), 0.11);
}

// Oracle identity: the default pipeline (candidate-generation graph,
// kAuto clustering, no banding) must produce the same mapping as one
// with the greedy merge forced — paper-scale workloads stay on the
// oracle path, bit for bit.
TEST(Pipeline, DefaultOptionsMatchGreedyOracle) {
  const auto tree = small_tree();
  for (const auto& name : workloads::workload_names()) {
    const auto workload = tiny(name);
    const DataSpace space(workload.program, 64 * kKiB);
    PipelineOptions oracle_options;
    oracle_options.clustering.algorithm = ClusterOptions::Algorithm::kGreedy;
    const auto oracle =
        MappingPipeline(tree, oracle_options).run_all(workload.program, space);
    const auto current =
        MappingPipeline(tree).run_all(workload.program, space);
    ASSERT_EQ(oracle.client_work.size(), current.client_work.size()) << name;
    for (std::size_t c = 0; c < oracle.client_work.size(); ++c) {
      const auto& a = oracle.client_work[c];
      const auto& b = current.client_work[c];
      ASSERT_EQ(a.size(), b.size()) << name << " client " << c;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].chunk, b[i].chunk)
            << name << " client " << c << " item " << i;
        EXPECT_EQ(a[i].iterations, b[i].iterations)
            << name << " client " << c << " item " << i;
      }
    }
  }
}

TEST(Pipeline, RejectsEmptyNestList) {
  const auto workload = tiny("hf");
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  MappingPipeline pipeline(tree);
  EXPECT_THROW(pipeline.run(workload.program, space, {}), mlsc::Error);
}

TEST(ClientCodegen, EmitsLoopsForEveryClient) {
  const auto workload = tiny("sar");
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  MappingPipeline pipeline(tree);
  const auto m = pipeline.run_all(workload.program, space);
  const auto source = emit_all_clients_source(workload.program, m);
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_NE(source.find("// client " + std::to_string(c)),
              std::string::npos);
  }
  EXPECT_NE(source.find("for (long i0"), std::string::npos);
  EXPECT_NE(source.find("iteration chunk"), std::string::npos);
}

TEST(ClientCodegen, BaselineBlocksRenderOrders) {
  const auto workload = tiny("sar");
  const auto tree = small_tree();
  const DataSpace space(workload.program, 64 * kKiB);
  PipelineOptions options;
  options.mapper = MapperKind::kOriginal;
  MappingPipeline pipeline(tree, options);
  const auto m = pipeline.run_all(workload.program, space);
  const auto source = emit_client_source(workload.program, m, 0);
  EXPECT_NE(source.find("block of nest"), std::string::npos);
  EXPECT_NE(source.find("perm("), std::string::npos);
}

}  // namespace
}  // namespace mlsc::core
