#include "support/dynamic_bitset.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace mlsc {
namespace {

TEST(DynamicBitset, StartsCleared) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitset, SimdDispatchLevelIsAKnownName) {
  // The level is stamped into run-record metadata so baselines recorded
  // on different hardware are distinguishable in mlsc_bench_diff.
  const std::string level = DynamicBitset::simd_dispatch_level();
  EXPECT_TRUE(level == "avx2" || level == "neon" || level == "portable")
      << level;
}

TEST(DynamicBitset, SetAndClear) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  b.set(63, false);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
  b.reset();
  EXPECT_EQ(b.count(), 0u);
}

TEST(DynamicBitset, AndCountMatchesPaperEdgeWeight) {
  // Fig. 8: weight(γ1, γ3) = popcount(101010000000 & 101010100000) = 3.
  DynamicBitset g1(12);
  for (std::size_t i : {0u, 2u, 4u}) g1.set(i);
  DynamicBitset g3(12);
  for (std::size_t i : {0u, 2u, 4u, 6u}) g3.set(i);
  EXPECT_EQ(g1.and_count(g3), 3u);
  EXPECT_EQ(g3.and_count(g1), 3u);
}

TEST(DynamicBitset, DisjointAndHamming) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.set(10);
  b.set(90);
  EXPECT_TRUE(a.disjoint(b));
  EXPECT_EQ(a.hamming_distance(b), 2u);
  b.set(10);
  EXPECT_FALSE(a.disjoint(b));
  EXPECT_EQ(a.hamming_distance(b), 1u);
}

TEST(DynamicBitset, BitwiseOperators) {
  DynamicBitset a(66);
  DynamicBitset b(66);
  a.set(1);
  a.set(65);
  b.set(1);
  b.set(2);
  const DynamicBitset o = a | b;
  EXPECT_EQ(o.count(), 3u);
  const DynamicBitset n = a & b;
  EXPECT_EQ(n.count(), 1u);
  EXPECT_TRUE(n.test(1));
  const DynamicBitset x = a ^ b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(2));
  EXPECT_TRUE(x.test(65));
}

TEST(DynamicBitset, SetBitsRoundTrip) {
  DynamicBitset b(200);
  const std::vector<std::uint32_t> bits = {0, 5, 64, 128, 199};
  for (auto i : bits) b.set(i);
  EXPECT_EQ(b.set_bits(), bits);
}

TEST(DynamicBitset, ToStringMatchesPaperNotation) {
  DynamicBitset b(4);
  b.set(2);
  b.set(3);
  EXPECT_EQ(b.to_string(), "0011");  // the paper's example tag
}

TEST(DynamicBitset, SizeMismatchThrows) {
  DynamicBitset a(10);
  DynamicBitset b(11);
  EXPECT_THROW(a.and_count(b), Error);
  EXPECT_THROW(a |= b, Error);
}

TEST(DynamicBitset, HashDiffersOnContent) {
  DynamicBitset a(128);
  DynamicBitset b(128);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(77);
  EXPECT_NE(a.hash(), b.hash());
}

/// Property: and_count and hamming agree with a per-bit reference on
/// random bitsets.
TEST(DynamicBitsetProperty, AgreesWithReference) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t size = 1 + rng.next_below(300);
    DynamicBitset a(size);
    DynamicBitset b(size);
    for (std::size_t i = 0; i < size; ++i) {
      if (rng.next_double() < 0.3) a.set(i);
      if (rng.next_double() < 0.3) b.set(i);
    }
    std::size_t both = 0;
    std::size_t diff = 0;
    for (std::size_t i = 0; i < size; ++i) {
      both += a.test(i) && b.test(i);
      diff += a.test(i) != b.test(i);
    }
    EXPECT_EQ(a.and_count(b), both);
    EXPECT_EQ(a.hamming_distance(b), diff);
  }
}

/// Same property at widths that cross the vectorized and_count kernels'
/// entry thresholds (AVX2 needs >= 8 words, NEON >= 4) — the narrow
/// trials above never leave the scalar path.
TEST(DynamicBitsetProperty, WideWidthsHitVectorKernels) {
  Rng rng(2010);
  for (const std::size_t size :
       {256u, 511u, 512u, 513u, 2048u, 4096u, 8191u}) {
    DynamicBitset a(size);
    DynamicBitset b(size);
    for (std::size_t i = 0; i < size; ++i) {
      if (rng.next_double() < 0.3) a.set(i);
      if (rng.next_double() < 0.3) b.set(i);
    }
    std::size_t both = 0;
    std::size_t diff = 0;
    for (std::size_t i = 0; i < size; ++i) {
      both += a.test(i) && b.test(i);
      diff += a.test(i) != b.test(i);
    }
    EXPECT_EQ(a.and_count(b), both);
    EXPECT_EQ(a.hamming_distance(b), diff);
  }
}

}  // namespace
}  // namespace mlsc
