#include "poly/codegen.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"

namespace mlsc::poly {
namespace {

TEST(Codegen, FullSpaceIsOneBox) {
  const auto space = IterationSpace::from_extents({4, 5});
  const auto boxes = ranges_to_boxes(space, {{0, 20}});
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0][0], (LoopBounds{0, 3}));
  EXPECT_EQ(boxes[0][1], (LoopBounds{0, 4}));
}

TEST(Codegen, PartialRowSplits) {
  const auto space = IterationSpace::from_extents({3, 4});
  // Ranks 2..9: tail of row 0, all of row 1, head of row 2.
  const auto boxes = ranges_to_boxes(space, {{2, 10}});
  EXPECT_EQ(boxes_size(boxes), 8u);
  EXPECT_GE(boxes.size(), 2u);
  EXPECT_LE(boxes.size(), 3u);
}

TEST(Codegen, MultipleRangesStayDisjoint) {
  const auto space = IterationSpace::from_extents({4, 4});
  const auto boxes = ranges_to_boxes(space, {{1, 3}, {9, 14}});
  EXPECT_EQ(boxes_size(boxes), 7u);
}

TEST(Codegen, RangeBeyondSpaceThrows) {
  const auto space = IterationSpace::from_extents({2, 2});
  EXPECT_THROW(ranges_to_boxes(space, {{0, 5}}), mlsc::Error);
}

/// Property: boxes partition the range exactly — same iterations, no
/// duplicates — for random range sets.
TEST(CodegenProperty, BoxesPartitionRanges) {
  mlsc::Rng rng(11);
  const IterationSpace space({{1, 6}, {0, 4}, {3, 7}});
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<LinearRange> ranges;
    std::vector<bool> member(space.size(), false);
    std::uint64_t pos = rng.next_below(4);
    while (pos < space.size()) {
      const std::uint64_t len =
          std::min<std::uint64_t>(1 + rng.next_below(17), space.size() - pos);
      ranges.push_back({pos, pos + len});
      for (std::uint64_t r = pos; r < pos + len; ++r) member[r] = true;
      pos += len + 1 + rng.next_below(9);
    }
    const auto boxes = ranges_to_boxes(space, ranges);
    std::vector<int> seen(space.size(), 0);
    for (const auto& box : boxes) {
      IterationSpace box_space(box);
      if (box_space.empty()) continue;
      Iteration iter = box_space.first();
      do {
        ++seen[space.linearize(iter)];
      } while (box_space.advance(iter));
    }
    for (std::uint64_t r = 0; r < space.size(); ++r) {
      EXPECT_EQ(seen[r], member[r] ? 1 : 0) << "rank " << r;
    }
  }
}

TEST(Codegen, EmitRangeLoopsProducesSource) {
  const auto space = IterationSpace::from_extents({2, 3});
  const auto src = emit_range_loops(space, {{0, 6}}, "visit(i0, i1);");
  EXPECT_NE(src.find("for (long i0 = 0; i0 <= 1; ++i0)"), std::string::npos);
  EXPECT_NE(src.find("visit(i0, i1);"), std::string::npos);
}

TEST(Codegen, EmitNestSourceListsRefs) {
  Program p;
  const auto a = p.add_array({"A", {8, 8}, 8});
  LoopNest nest;
  nest.name = "demo";
  nest.space = IterationSpace::from_extents({8, 8});
  nest.refs = {{a, AccessMap::identity(2, {0, 0}), true}};
  p.add_nest(std::move(nest));
  const auto src = emit_nest_source(p, p.nest(0));
  EXPECT_NE(src.find("// nest demo"), std::string::npos);
  EXPECT_NE(src.find("write A"), std::string::npos);
}

}  // namespace
}  // namespace mlsc::poly
