#include "poly/affine.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mlsc::poly {
namespace {

TEST(AffineExpr, EvaluatesLinearForm) {
  const AffineExpr e({2, 0, -1}, 5);  // 2*i0 - i2 + 5
  const std::int64_t iter[] = {3, 100, 4};
  EXPECT_EQ(e.evaluate(iter), 2 * 3 - 4 + 5);
}

TEST(AffineExpr, Builders) {
  const auto c = AffineExpr::constant(3, 7);
  EXPECT_TRUE(c.is_constant());
  const std::int64_t iter[] = {1, 2, 3};
  EXPECT_EQ(c.evaluate(iter), 7);

  const auto it = AffineExpr::iterator(3, 1, -1);
  EXPECT_TRUE(it.is_single_iterator());
  EXPECT_EQ(it.single_iterator_index(), 1u);
  EXPECT_EQ(it.evaluate(iter), 1);
}

TEST(AffineExpr, Arithmetic) {
  const auto a = AffineExpr::iterator(2, 0, 3);
  const auto b = AffineExpr::iterator(2, 1, -1);
  const auto sum = a + b;
  const std::int64_t iter[] = {10, 20};
  EXPECT_EQ(sum.evaluate(iter), 10 + 3 + 20 - 1);
  const auto diff = a - b;
  EXPECT_EQ(diff.evaluate(iter), 10 + 3 - (20 - 1));
}

TEST(AffineExpr, ToString) {
  EXPECT_EQ(AffineExpr({1, 0}, 3).to_string(), "i0 + 3");
  EXPECT_EQ(AffineExpr({0, -2}, 0).to_string(), "-2*i1");
  EXPECT_EQ(AffineExpr({0, 0}, -4).to_string(), "-4");
}

TEST(AccessMap, PaperSection2Example) {
  // A[i1 + 3, i2 - 1]: Q is the identity, q = (3, -1)^T.
  const auto map = AccessMap::identity(2, {3, -1});
  const std::int64_t iter[] = {10, 20};
  EXPECT_EQ(map.apply(iter), (std::vector<std::int64_t>{13, 19}));
  EXPECT_EQ(map.apply_dim(0, iter), 13);
  EXPECT_EQ(map.apply_dim(1, iter), 19);
}

TEST(AccessMap, FromMatrix) {
  // Transposed access B[i1, i0].
  const auto map = AccessMap::from_matrix({{0, 1}, {1, 0}}, {0, 0});
  const std::int64_t iter[] = {3, 8};
  EXPECT_EQ(map.apply(iter), (std::vector<std::int64_t>{8, 3}));
}

TEST(AccessMap, SameLinearPart) {
  const auto a = AccessMap::identity(3, {0, 0});
  const auto b = AccessMap::identity(3, {1, -1});
  const auto c = AccessMap::from_matrix({{0, 0, 1}, {0, 1, 0}}, {0, 0});
  EXPECT_TRUE(a.same_linear_part(b));
  EXPECT_FALSE(a.same_linear_part(c));
}

TEST(AccessMap, RejectsMixedDepthRows) {
  std::vector<AffineExpr> rows;
  rows.push_back(AffineExpr::iterator(2, 0));
  rows.push_back(AffineExpr::iterator(3, 1));
  EXPECT_THROW(AccessMap{std::move(rows)}, Error);
}

}  // namespace
}  // namespace mlsc::poly
