#include "core/load_balance.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"

namespace mlsc::core {
namespace {

IterationChunk make_chunk(std::uint64_t begin, std::uint64_t end,
                          std::vector<std::uint32_t> bits) {
  IterationChunk c;
  c.nest = 0;
  c.tag = ChunkTag::from_bits(std::move(bits));
  c.ranges = {poly::LinearRange{begin, end}};
  c.iterations = end - begin;
  return c;
}

TEST(BalanceLimits, WindowAroundIdeal) {
  const auto limits = balance_limits(1000, 4, 0.10);
  EXPECT_EQ(limits.lower, 225u);  // 250 * 0.9
  EXPECT_EQ(limits.upper, 275u);  // 250 * 1.1
}

TEST(BalanceLimits, ZeroThresholdStillAdmitsPerfectPartition) {
  const auto limits = balance_limits(10, 3, 0.0);
  EXPECT_LE(limits.lower, 3u);   // floor(10/3)
  EXPECT_GE(limits.upper, 4u);   // ceil(10/3)
}

TEST(Balance, MovesChunkFromLargeToSmall) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, 50, {1}),
      make_chunk(50, 100, {1, 2}),
      make_chunk(100, 110, {3}),
  };
  std::vector<Cluster> clusters;
  clusters.push_back(Cluster::singleton(0, chunks[0]));
  clusters.back().add_member(1, chunks[1]);  // 100 iterations
  clusters.push_back(Cluster::singleton(2, chunks[2]));  // 10 iterations
  EXPECT_FALSE(is_balanced(clusters, {0.10}));

  const auto moves = balance_clusters(clusters, chunks, {0.10});
  EXPECT_GE(moves, 1u);
  EXPECT_TRUE(is_balanced(clusters, {0.10}));
}

TEST(Balance, SplitsWhenNoWholeChunkFits) {
  // One giant chunk vs one tiny: only a split can balance.
  std::vector<IterationChunk> chunks{
      make_chunk(0, 99, {1}),
      make_chunk(99, 100, {2}),
  };
  std::vector<Cluster> clusters;
  clusters.push_back(Cluster::singleton(0, chunks[0]));
  clusters.push_back(Cluster::singleton(1, chunks[1]));
  balance_clusters(clusters, chunks, {0.10});
  EXPECT_TRUE(is_balanced(clusters, {0.10}));
  EXPECT_GT(chunks.size(), 2u);  // a split happened
  // No iterations lost.
  std::uint64_t total = 0;
  for (const auto& c : clusters) total += c.iterations;
  EXPECT_EQ(total, 100u);
}

TEST(Balance, PrefersHighAffinityChunk) {
  // Donor has two equal-size chunks; recipient's tag matches chunk B.
  std::vector<IterationChunk> chunks{
      make_chunk(0, 40, {1}),        // A: no affinity with recipient
      make_chunk(40, 80, {7, 8}),    // B: shares {7,8} with recipient
      make_chunk(80, 90, {7, 8, 9}),
  };
  std::vector<Cluster> clusters;
  clusters.push_back(Cluster::singleton(0, chunks[0]));
  clusters.back().add_member(1, chunks[1]);
  clusters.push_back(Cluster::singleton(2, chunks[2]));
  balance_clusters(clusters, chunks, {0.10});
  // Chunk 1 (B) should have moved to the recipient, not chunk 0.
  const auto& recipient = clusters[1];
  EXPECT_NE(std::find(recipient.members.begin(), recipient.members.end(), 1u),
            recipient.members.end());
}

TEST(Balance, ExplicitLimitsOverrideLocalWindow) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, 30, {1}),
      make_chunk(30, 60, {2}),
  };
  std::vector<Cluster> clusters;
  clusters.push_back(Cluster::singleton(0, chunks[0]));
  clusters.back().add_member(1, chunks[1]);  // 60
  clusters.push_back(Cluster{});             // empty cluster
  clusters.back().members = {};
  // Wide explicit limits accept the lopsided state as-is.
  const BalanceLimits wide{0, 100};
  EXPECT_EQ(balance_clusters(clusters, chunks, {0.10}, &wide), 0u);
}

/// Property: balancing random cluster sets always terminates inside the
/// window and conserves both iterations and chunk coverage.
TEST(BalanceProperty, RandomSetsConvergeAndConserve) {
  mlsc::Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<IterationChunk> chunks;
    std::uint64_t pos = 0;
    const std::size_t num_chunks = 5 + rng.next_below(30);
    for (std::size_t i = 0; i < num_chunks; ++i) {
      const std::uint64_t len = 1 + rng.next_below(60);
      std::vector<std::uint32_t> bits;
      for (int b = 0; b < 4; ++b) {
        bits.push_back(static_cast<std::uint32_t>(rng.next_below(20)));
      }
      chunks.push_back(make_chunk(pos, pos + len, std::move(bits)));
      pos += len;
    }
    const std::uint64_t total = pos;

    const std::size_t num_clusters = 2 + rng.next_below(4);
    std::vector<Cluster> clusters(num_clusters);
    for (std::uint32_t i = 0; i < chunks.size(); ++i) {
      clusters[rng.next_below(num_clusters)].add_member(i, chunks[i]);
    }
    // Give every empty cluster one split share by pre-balancing by hand:
    // skip trials with empty clusters whose total is too small.
    bool any_empty = false;
    for (const auto& c : clusters) any_empty |= c.members.empty();
    if (any_empty) continue;

    balance_clusters(clusters, chunks, {0.10});
    EXPECT_TRUE(is_balanced(clusters, {0.10}));

    std::uint64_t covered = 0;
    std::vector<poly::LinearRange> all_ranges;
    for (const auto& c : clusters) {
      covered += c.iterations;
      for (std::uint32_t m : c.members) {
        all_ranges.insert(all_ranges.end(), chunks[m].ranges.begin(),
                          chunks[m].ranges.end());
      }
    }
    EXPECT_EQ(covered, total);
    const auto merged = poly::normalize_ranges(std::move(all_ranges));
    EXPECT_EQ(poly::total_range_size(merged), total)
        << "ranges overlap or were lost";
  }
}

}  // namespace
}  // namespace mlsc::core
