#include "poly/order.h"

#include <gtest/gtest.h>

#include <set>

#include "support/check.h"

namespace mlsc::poly {
namespace {

std::vector<Iteration> walk_all(const IterationSpace& space,
                                const IterationOrder& order) {
  std::vector<Iteration> out;
  for (OrderWalker w(space, order); !w.done(); w.next()) {
    out.push_back(w.current());
  }
  return out;
}

TEST(IterationOrder, IdentityIsIdentity) {
  const auto order = IterationOrder::identity(3);
  EXPECT_TRUE(order.is_identity());
  EXPECT_EQ(order.depth(), 3u);
}

TEST(IterationOrder, ValidateRejectsBadPermutation) {
  const auto space = IterationSpace::from_extents({2, 2});
  IterationOrder order;
  order.permutation = {0, 0};
  order.tile_sizes = {1, 1};
  EXPECT_THROW(order.validate(space), mlsc::Error);
  order.permutation = {0, 1};
  order.tile_sizes = {0, 1};
  EXPECT_THROW(order.validate(space), mlsc::Error);
}

TEST(OrderWalker, IdentityMatchesLexicographic) {
  const auto space = IterationSpace::from_extents({3, 4});
  const auto visited = walk_all(space, IterationOrder::identity(2));
  ASSERT_EQ(visited.size(), space.size());
  for (std::uint64_t rank = 0; rank < space.size(); ++rank) {
    EXPECT_EQ(visited[rank], space.delinearize(rank));
  }
}

TEST(OrderWalker, PermutationSwapsLoops) {
  const auto space = IterationSpace::from_extents({2, 3});
  IterationOrder order;
  order.permutation = {1, 0};  // i1 outer, i0 inner
  order.tile_sizes = {1, 1};
  const auto visited = walk_all(space, order);
  ASSERT_EQ(visited.size(), 6u);
  EXPECT_EQ(visited[0], (Iteration{0, 0}));
  EXPECT_EQ(visited[1], (Iteration{1, 0}));  // i0 varies fastest
  EXPECT_EQ(visited[2], (Iteration{0, 1}));
}

TEST(OrderWalker, TiledTraversalOrder) {
  const auto space = IterationSpace::from_extents({4, 4});
  IterationOrder order = IterationOrder::identity(2);
  order.tile_sizes = {2, 2};
  const auto visited = walk_all(space, order);
  ASSERT_EQ(visited.size(), 16u);
  // First tile: (0,0) (0,1) (1,0) (1,1), then tile (0, 2..3).
  EXPECT_EQ(visited[0], (Iteration{0, 0}));
  EXPECT_EQ(visited[1], (Iteration{0, 1}));
  EXPECT_EQ(visited[2], (Iteration{1, 0}));
  EXPECT_EQ(visited[3], (Iteration{1, 1}));
  EXPECT_EQ(visited[4], (Iteration{0, 2}));
}

TEST(OrderWalker, EdgeTilesCoverRemainder) {
  const auto space = IterationSpace::from_extents({5, 3});
  IterationOrder order = IterationOrder::identity(2);
  order.tile_sizes = {2, 2};
  const auto visited = walk_all(space, order);
  EXPECT_EQ(visited.size(), 15u);
}

/// Property: every order visits each iteration exactly once.
class OrderWalkerPermutationTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OrderWalkerPermutationTest, VisitsEveryIterationOnce) {
  const auto [perm_code, tile] = GetParam();
  const IterationSpace space({{1, 5}, {0, 3}, {2, 4}});
  IterationOrder order;
  switch (perm_code) {
    case 0:
      order.permutation = {0, 1, 2};
      break;
    case 1:
      order.permutation = {2, 0, 1};
      break;
    default:
      order.permutation = {1, 2, 0};
      break;
  }
  order.tile_sizes = {static_cast<std::int64_t>(tile), 1,
                      static_cast<std::int64_t>(tile)};

  std::set<std::uint64_t> ranks;
  std::uint64_t count = 0;
  for (OrderWalker w(space, order); !w.done(); w.next()) {
    EXPECT_EQ(w.position(), count);
    ranks.insert(space.linearize(w.current()));
    ++count;
  }
  EXPECT_EQ(count, space.size());
  EXPECT_EQ(ranks.size(), space.size());
}

INSTANTIATE_TEST_SUITE_P(
    PermsAndTiles, OrderWalkerPermutationTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 3, 7)));

}  // namespace
}  // namespace mlsc::poly
