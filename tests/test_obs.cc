// Tests for the observability layer: metrics registry, recording macros,
// trace sessions, thread-pool instrumentation, and the exact-match
// guarantee between cache counters and EngineResult aggregates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <cmath>
#include <map>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/run_record.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "support/stats.h"
#include "support/thread_pool.h"
#include "support/units.h"
#include "workloads/registry.h"

namespace mlsc {
namespace {

/// Turns metrics on for one test and restores the previous state.
struct ScopedMetrics {
  ScopedMetrics() : was_enabled(obs::metrics_enabled()) {
    obs::set_metrics_enabled(true);
    obs::Registry::global().reset();
  }
  ~ScopedMetrics() { obs::set_metrics_enabled(was_enabled); }
  bool was_enabled;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Metrics, CounterGaugeHistogramBasics) {
  ScopedMetrics scoped;
  auto& registry = obs::Registry::global();

  auto& counter = registry.counter("test.counter");
  counter.inc();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  EXPECT_EQ(&registry.counter("test.counter"), &counter);  // find, not create

  auto& gauge = registry.gauge("test.gauge");
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);

  auto& hist = registry.histogram("test.hist", {1.0, 10.0, 100.0});
  hist.observe(0.5);
  hist.observe(5.0);
  hist.observe(50.0);
  hist.observe(500.0);  // overflow bucket
  EXPECT_EQ(hist.total_count(), 4u);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
  EXPECT_DOUBLE_EQ(hist.sum(), 555.5);

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.total_count(), 0u);
}

TEST(Metrics, MacrosRecordOnlyWhenEnabled) {
  // Disabled: the macro body must not touch the registry.
  obs::set_metrics_enabled(false);
  MLSC_COUNTER_INC("test.macro_counter");
  {
    ScopedMetrics scoped;
    // The counter is registered lazily at the first enabled hit.
    MLSC_COUNTER_INC("test.macro_counter");
    MLSC_COUNTER_ADD("test.macro_counter", 9);
    EXPECT_EQ(obs::Registry::global().counter("test.macro_counter").value(),
              10u);
    MLSC_GAUGE_SET("test.macro_gauge", 7);
    EXPECT_DOUBLE_EQ(obs::Registry::global().gauge("test.macro_gauge").value(),
                     7.0);
    MLSC_HISTOGRAM_OBSERVE("test.macro_hist", 3.0, 1.0, 10.0);
    EXPECT_EQ(obs::Registry::global()
                  .histogram("test.macro_hist", {})
                  .total_count(),
              1u);
  }
  // Note: the function-local static in the macro keeps a reference, so a
  // later disabled call is a no-op via the enabled check alone.
  MLSC_COUNTER_INC("test.macro_counter");
}

TEST(Metrics, WriteJsonIsValidAndSorted) {
  ScopedMetrics scoped;
  auto& registry = obs::Registry::global();
  registry.counter("b.counter").add(2);
  registry.counter("a.counter").add(1);
  registry.gauge("g.gauge").set(1.5);
  registry.histogram("h.hist", {1.0, 2.0}).observe(1.5);

  std::ostringstream out;
  registry.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.counter\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"b.counter\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"g.gauge\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"h.hist\""), std::string::npos);
  // Sorted maps: a.counter precedes b.counter.
  EXPECT_LT(json.find("\"a.counter\""), json.find("\"b.counter\""));
}

TEST(Trace, SpanLifecycleWritesTraceEvents) {
  const std::string path = ::testing::TempDir() + "mlsc_trace_test.json";
  obs::start_trace(path);
  {
    obs::Span span("test.outer");
    span.arg("count", std::uint64_t{7});
    span.arg("ratio", 0.5);
    span.arg("label", std::string("x\"y"));
    obs::Span inner("test.inner");
  }
  obs::emit_complete(obs::kClientPidBase, 0, "virtual", 100, 50);
  ASSERT_TRUE(obs::stop_trace());

  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"x\\\"y\""), std::string::npos);
  EXPECT_NE(json.find("\"virtual\""), std::string::npos);
  // Stopping twice is a no-op.
  EXPECT_FALSE(obs::stop_trace());
  // Spans constructed after stop record nothing.
  { obs::Span late("test.late"); }
  std::remove(path.c_str());
}

TEST(Trace, CounterEventsCarryValueArg) {
  const std::string path = ::testing::TempDir() + "mlsc_trace_counter.json";
  obs::start_trace(path);
  obs::emit_counter(obs::kClientPidBase, "cache.l2.misses", 2'000, 17);
  obs::emit_counter(obs::kClientPidBase, "cache.l2.misses", 3'000, 23);
  ASSERT_TRUE(obs::stop_trace());

  const std::string json = slurp(path);
  // Chrome counter events: phase "C", a timestamp but no duration, and
  // the sampled value in args — two samples form a metric timeline.
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"cache.l2.misses\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"value\": 23"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 2.000"), std::string::npos);
  std::size_t counters = 0;
  for (std::size_t pos = json.find("\"ph\": \"C\""); pos != std::string::npos;
       pos = json.find("\"ph\": \"C\"", pos + 1)) {
    ++counters;
  }
  EXPECT_EQ(counters, 2u);
  std::remove(path.c_str());
}

TEST(Trace, SpanEndClosesEarly) {
  const std::string path = ::testing::TempDir() + "mlsc_trace_end.json";
  obs::start_trace(path);
  {
    obs::Span span("test.early");
    span.end();
    span.end();  // second end is a no-op
  }
  ASSERT_TRUE(obs::stop_trace());
  const std::string json = slurp(path);
  // Exactly one completed event for the span despite destructor + end().
  std::size_t count = 0;
  for (std::size_t pos = json.find("test.early"); pos != std::string::npos;
       pos = json.find("test.early", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
  std::remove(path.c_str());
}

TEST(Trace, PoolChunksAppearOnPoolThreads) {
  const std::string path = ::testing::TempDir() + "mlsc_trace_pool.json";
  obs::start_trace(path);
  {
    ThreadPool pool(2);
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(0, 1000, 100, [&](std::size_t lo, std::size_t hi) {
      std::uint64_t local = 0;
      for (std::size_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 499500u);
  }
  ASSERT_TRUE(obs::stop_trace());
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"pool chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"pool thread 0\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Metrics, PoolCountersAccumulateBusyTime) {
  ScopedMetrics scoped;
  ThreadPool pool(2);
  pool.parallel_for(0, 64, 8, [&](std::size_t, std::size_t) {});
  EXPECT_GT(obs::Registry::global().counter("pool.chunks").value(), 0u);
}

// The headline guarantee: cache.l{1,2,3}.* counters and the
// EngineResult aggregates derive from the same per-access increments,
// so they match exactly.
TEST(Metrics, CacheCountersMatchEngineResult) {
  ScopedMetrics scoped;

  sim::MachineConfig config;
  config.clients = 4;
  config.io_nodes = 2;
  config.storage_nodes = 1;
  config.client_cache_bytes = 8 * 64 * kKiB;
  config.io_cache_bytes = 8 * 64 * kKiB;
  config.storage_cache_bytes = 8 * 64 * kKiB;

  const auto workload = workloads::make_workload("hf", 0.0625);
  const auto result =
      sim::run_experiment(workload, sim::SchemeSpec::inter(), config);
  const auto& engine = result.engine;

  auto& registry = obs::Registry::global();
  EXPECT_EQ(registry.counter("cache.l1.accesses").value(),
            engine.l1.accesses);
  EXPECT_EQ(registry.counter("cache.l1.hits").value(), engine.l1.hits);
  EXPECT_EQ(registry.counter("cache.l1.misses").value(), engine.l1.misses);
  EXPECT_EQ(registry.counter("cache.l2.hits").value(), engine.l2.hits);
  EXPECT_EQ(registry.counter("cache.l2.misses").value(), engine.l2.misses);
  EXPECT_EQ(registry.counter("cache.l3.hits").value(), engine.l3.hits);
  EXPECT_EQ(registry.counter("cache.l3.misses").value(), engine.l3.misses);
  EXPECT_EQ(registry.counter("cache.l1.evictions").value(),
            engine.l1.evictions);
  EXPECT_EQ(registry.counter("engine.accesses").value(), engine.accesses);
  EXPECT_EQ(registry.counter("engine.disk_requests").value(),
            engine.disk_requests);
  EXPECT_GT(engine.l1.accesses, 0u);

  // The latency histogram saw every access.
  EXPECT_EQ(registry.histogram("engine.access_latency_ns", {}).total_count(),
            engine.accesses);

  // Byte accounting mirrors into the registry and into the per-cache
  // stats: the aggregate bytes-moved counter is the boundary sum, and
  // each level's bytes_served matches its hit count at chunk size.
  EXPECT_EQ(registry.counter("engine.bytes_moved").value(),
            engine.bytes.below_l1());
  EXPECT_EQ(registry.counter("engine.bytes_from_disk").value(),
            engine.bytes.from_disk);
  EXPECT_EQ(engine.l1.bytes_served,
            engine.l1.hits * config.chunk_size_bytes);
  EXPECT_EQ(registry.counter("cache.l2.bytes_served").value(),
            engine.l2.bytes_served);
  EXPECT_GT(engine.bytes.below_l1(), 0u);
}

TEST(RunRecordJson, CarriesBuildStampsWhenSet) {
  obs::RunRecord record;
  record.binary = "bench_test";
  record.build_type = "Release";
  record.git_sha = "abc123def456";
  record.simd_level = "portable";
  std::ostringstream out;
  record.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"git_sha\": \"abc123def456\""), std::string::npos);
  EXPECT_NE(json.find("\"simd_level\": \"portable\""), std::string::npos);

  // Unset stamps are omitted, keeping legacy records byte-identical.
  obs::RunRecord legacy;
  legacy.binary = "bench_test";
  std::ostringstream legacy_out;
  legacy.write_json(legacy_out);
  EXPECT_EQ(legacy_out.str().find("git_sha"), std::string::npos);
  EXPECT_EQ(legacy_out.str().find("simd_level"), std::string::npos);
}

TEST(HistogramQuantile, EmptyHistogramIsNaN) {
  obs::Histogram hist({1.0, 2.0});
  EXPECT_TRUE(std::isnan(hist.quantile(50.0)));
  obs::Histogram no_bounds({});
  no_bounds.observe(1.0);
  EXPECT_TRUE(std::isnan(no_bounds.quantile(50.0)));
}

TEST(HistogramQuantile, SingleBucketInterpolatesUniformly) {
  // Four observations inside [0, 10): the estimator assumes a uniform
  // spread, so it must agree with percentile_of on evenly spaced samples
  // (the two share quantile_rank + lerp).
  obs::Histogram hist({10.0});
  const std::vector<double> samples = {2.5, 5.0, 7.5, 10.0};
  for (double s : samples) hist.observe(s);
  EXPECT_DOUBLE_EQ(hist.quantile(50.0), 6.25);
  EXPECT_DOUBLE_EQ(hist.quantile(50.0), percentile_of(samples, 50.0));
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 2.5);
  EXPECT_DOUBLE_EQ(hist.quantile(100.0), 10.0);
}

TEST(HistogramQuantile, OverflowBucketClampsToLastBound) {
  obs::Histogram hist({1.0, 2.0});
  hist.observe(5.0);
  hist.observe(6.0);
  hist.observe(7.0);  // all land in the overflow bucket
  EXPECT_DOUBLE_EQ(hist.quantile(50.0), 2.0);
  EXPECT_DOUBLE_EQ(hist.quantile(99.0), 2.0);
}

TEST(HistogramQuantile, ExactBoundaryObservationReturnsBoundary) {
  // An observation equal to a bound lands in that bound's bucket
  // (le semantics), and a single such observation reports the bound.
  obs::Histogram hist({1.0, 2.0});
  hist.observe(1.0);
  EXPECT_DOUBLE_EQ(hist.quantile(50.0), 1.0);
  // A 50/50 split across two buckets: the p50 rank sits at the shared
  // edge and is clamped into the lower bucket's range.
  obs::Histogram split({10.0, 20.0});
  split.observe(5.0);
  split.observe(5.0);
  split.observe(15.0);
  split.observe(15.0);
  EXPECT_DOUBLE_EQ(split.quantile(50.0), 10.0);
  EXPECT_GT(split.quantile(90.0), 10.0);
  EXPECT_LE(split.quantile(90.0), 20.0);
}

TEST(Metrics, WriteJsonIncludesQuantiles) {
  ScopedMetrics scoped;
  auto& registry = obs::Registry::global();
  registry.histogram("q.hist", {10.0}).observe(5.0);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_NE(out.str().find("\"quantiles\""), std::string::npos);
  EXPECT_NE(out.str().find("\"p50\""), std::string::npos);
  EXPECT_NE(out.str().find("\"p99\""), std::string::npos);
}

TEST(Prometheus, SanitizeMetricName) {
  EXPECT_EQ(obs::sanitize_metric_name("pipeline.sweep_candidates"),
            "pipeline_sweep_candidates");
  EXPECT_EQ(obs::sanitize_metric_name("cache.l1.hit %"), "cache_l1_hit__");
  EXPECT_EQ(obs::sanitize_metric_name("2q.hits"), "_2q_hits");
  EXPECT_EQ(obs::sanitize_metric_name(""), "_");
  EXPECT_EQ(obs::sanitize_metric_name("already_ok:name"), "already_ok:name");
}

TEST(Prometheus, DumpRoundTripsRegistryValues) {
  ScopedMetrics scoped;
  auto& registry = obs::Registry::global();
  registry.counter("prom.counter").add(42);
  registry.gauge("prom.gauge").set(2.5);
  auto& hist = registry.histogram("prom.hist", {1.0, 2.0});
  hist.observe(0.5);
  hist.observe(1.5);
  hist.observe(5.0);

  std::ostringstream out;
  registry.dump_prometheus(out);

  // Parse the exposition text back into (sample name -> value) and check
  // it reproduces the registry exactly.
  std::map<std::string, double> samples;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
  EXPECT_DOUBLE_EQ(samples.at("prom_counter"), 42.0);
  EXPECT_DOUBLE_EQ(samples.at("prom_gauge"), 2.5);
  EXPECT_DOUBLE_EQ(samples.at("prom_hist_bucket{le=\"1\"}"), 1.0);   // 0.5
  EXPECT_DOUBLE_EQ(samples.at("prom_hist_bucket{le=\"2\"}"), 2.0);   // cumulative
  EXPECT_DOUBLE_EQ(samples.at("prom_hist_bucket{le=\"+Inf\"}"), 3.0);
  EXPECT_DOUBLE_EQ(samples.at("prom_hist_sum"), 7.0);
  EXPECT_DOUBLE_EQ(samples.at("prom_hist_count"), 3.0);
  // Type lines exist for every family.
  EXPECT_NE(out.str().find("# TYPE prom_counter counter"), std::string::npos);
  EXPECT_NE(out.str().find("# TYPE prom_gauge gauge"), std::string::npos);
  EXPECT_NE(out.str().find("# TYPE prom_hist histogram"), std::string::npos);
  // ... preceded by help lines naming the original dotted registry name.
  EXPECT_NE(out.str().find("# HELP prom_counter mlsc counter 'prom.counter'"),
            std::string::npos);
  EXPECT_NE(out.str().find("# HELP prom_gauge mlsc gauge 'prom.gauge'"),
            std::string::npos);
  EXPECT_NE(out.str().find("# HELP prom_hist mlsc histogram 'prom.hist'"),
            std::string::npos);
  EXPECT_LT(out.str().find("# HELP prom_counter"),
            out.str().find("# TYPE prom_counter"));
}

TEST(Metrics, WriteMetricsFileProducesJson) {
  ScopedMetrics scoped;
  obs::Registry::global().counter("file.counter").add(3);
  const std::string path = ::testing::TempDir() + "mlsc_metrics_test.json";
  ASSERT_TRUE(obs::write_metrics_file(path));
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"file.counter\": 3"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlsc
