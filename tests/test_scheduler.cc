#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/mapper.h"
#include "support/check.h"

namespace mlsc::core {
namespace {

/// Builds an inter-processor-shaped mapping by hand: `per_client` chunk
/// tag lists, one client per list, all in one I/O group tree.
MappingResult handmade_mapping(
    const std::vector<std::vector<std::vector<std::uint32_t>>>& per_client) {
  MappingResult m;
  m.kind = MapperKind::kInterProcessor;
  m.mapper_name = "inter-processor";
  std::uint64_t rank = 0;
  for (const auto& client : per_client) {
    m.client_work.emplace_back();
    for (const auto& bits : client) {
      IterationChunk chunk;
      chunk.nest = 0;
      chunk.tag = ChunkTag::from_bits(bits);
      chunk.ranges = {poly::LinearRange{rank, rank + 10}};
      chunk.iterations = 10;
      rank += 10;
      WorkItem item;
      item.nest = 0;
      item.ranges = chunk.ranges;
      item.iterations = 10;
      item.chunk = static_cast<std::int32_t>(m.chunk_table.size());
      m.chunk_table.push_back(std::move(chunk));
      m.client_work.back().push_back(std::move(item));
    }
  }
  return m;
}

topology::HierarchyTree two_client_tree() {
  return topology::make_layered_hierarchy(2, 1, 1, 64, 64, 64);
}

TEST(Scheduler, FirstClientStartsWithFewestBits) {
  // Client 0 chunks: {0,1,2,3} (4 bits) and {9} (1 bit): the schedule
  // must start with the 1-bit chunk (Fig. 15: "least number of 1 bits").
  auto m = handmade_mapping({
      {{0, 1, 2, 3}, {9}},
      {{5}, {6}},
  });
  schedule_mapping(m, two_client_tree());
  EXPECT_TRUE(m.scheduled);
  EXPECT_EQ(m.client_work[0][0].chunk, 1);  // the {9} chunk
}

TEST(Scheduler, VerticalReuseOrdersByCommonBits) {
  // Client 0: start {0}; then {0,1} shares 1 bit, {8,9} shares none —
  // the β term must schedule {0,1} before {8,9}.
  auto m = handmade_mapping({
      {{0}, {8, 9}, {0, 1}},
      {{5}},
  });
  schedule_mapping(m, two_client_tree(), {0.5, 0.5});
  ASSERT_EQ(m.client_work[0].size(), 3u);
  EXPECT_EQ(m.client_work[0][0].chunk, 0);  // {0}: fewest bits
  EXPECT_EQ(m.client_work[0][1].chunk, 2);  // {0,1}: max reuse with {0}
  EXPECT_EQ(m.client_work[0][2].chunk, 1);
}

TEST(Scheduler, HorizontalReuseAlignsNeighborClients) {
  // Client 1's first chunk should maximize overlap with client 0's first
  // scheduled chunk (the α term, Fig. 16's "left neighbor").
  auto m = handmade_mapping({
      {{3}},
      {{7, 8}, {3, 4}},
  });
  schedule_mapping(m, two_client_tree(), {0.5, 0.5});
  EXPECT_EQ(m.client_work[1][0].chunk, 2);  // {3,4} matches {3}
}

TEST(Scheduler, PreservesWorkSets) {
  auto m = handmade_mapping({
      {{0, 1}, {1, 2}, {2, 3}, {9}},
      {{4, 5}, {5, 6}, {0, 9}},
  });
  std::vector<std::set<std::int32_t>> before;
  for (const auto& work : m.client_work) {
    std::set<std::int32_t> ids;
    for (const auto& item : work) ids.insert(item.chunk);
    before.push_back(std::move(ids));
  }
  schedule_mapping(m, two_client_tree());
  for (std::size_t c = 0; c < m.client_work.size(); ++c) {
    std::set<std::int32_t> after;
    for (const auto& item : m.client_work[c]) after.insert(item.chunk);
    EXPECT_EQ(after, before[c]) << "scheduling must only reorder";
  }
}

TEST(Scheduler, BalancesIterationCountsCircularly) {
  // Uneven chunk counts still schedule completely (the force-progress
  // guard prevents round-robin stalls).
  auto m = handmade_mapping({
      {{0}, {1}, {2}, {3}, {4}, {5}},
      {{7}},
  });
  schedule_mapping(m, two_client_tree());
  EXPECT_EQ(m.client_work[0].size(), 6u);
  EXPECT_EQ(m.client_work[1].size(), 1u);
}

TEST(Scheduler, Fig17FinalSchedule) {
  // The paper's end-to-end example: after mapping, CN0 owns {γ2,γ4}, and
  // the schedule within each client follows the reuse chain.  With two
  // chunks per client the schedule must put the fewer-bit chunk first on
  // the group's first client.
  auto m = handmade_mapping({
      {{0, 1, 3, 5}, {0, 3, 5, 7}},    // γ2, γ4 (CN0)
      {{0, 5, 7, 9}, {0, 7, 9, 11}},   // γ6, γ8 (CN1)
  });
  schedule_mapping(m, two_client_tree());
  // γ2 and γ4 both have 4 bits; the tie breaks to the first (γ2), then
  // γ4 follows — matching Fig. 17's CN0: γ2, γ4.
  EXPECT_EQ(m.client_work[0][0].chunk, 0);
  EXPECT_EQ(m.client_work[0][1].chunk, 1);
  EXPECT_EQ(m.client_work[1][0].chunk, 2);
  EXPECT_EQ(m.client_work[1][1].chunk, 3);
}

TEST(Scheduler, RejectsBaselineMappings) {
  MappingResult m;
  m.kind = MapperKind::kOriginal;
  m.client_work.resize(2);
  EXPECT_THROW(schedule_mapping(m, two_client_tree()), mlsc::Error);
}

}  // namespace
}  // namespace mlsc::core
