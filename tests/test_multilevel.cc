#include "cache/multilevel.h"

#include <gtest/gtest.h>

#include "cache/storage_cache.h"
#include "support/check.h"

namespace mlsc::cache {
namespace {

topology::HierarchyTree small_tree() {
  // 4 clients, 2 I/O nodes, 1 storage node; 4-chunk caches everywhere.
  return topology::make_layered_hierarchy(4, 2, 1, 4 * 64, 4 * 64, 4 * 64);
}

TEST(CacheStatsUnit, PlusEqualsSumsEveryField) {
  CacheStats a;
  a.accesses = 10;
  a.hits = 6;
  a.misses = 4;
  a.insertions = 4;
  a.evictions = 2;
  a.dirty_evictions = 1;
  CacheStats b;
  b.accesses = 5;
  b.hits = 1;
  b.misses = 4;
  b.insertions = 3;
  b.evictions = 3;
  b.dirty_evictions = 2;
  a += b;
  EXPECT_EQ(a.accesses, 15u);
  EXPECT_EQ(a.hits, 7u);
  EXPECT_EQ(a.misses, 8u);
  EXPECT_EQ(a.insertions, 7u);
  EXPECT_EQ(a.evictions, 5u);
  EXPECT_EQ(a.dirty_evictions, 3u);
}

TEST(CacheStatsUnit, MissRateHandlesZeroAccesses) {
  CacheStats fresh;
  EXPECT_DOUBLE_EQ(fresh.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(fresh.hit_rate(), 0.0);
  fresh.accesses = 4;
  fresh.misses = 1;
  EXPECT_DOUBLE_EQ(fresh.miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(fresh.hit_rate(), 0.75);
}

TEST(CacheStatsUnit, ResetStatsZeroesButKeepsContents) {
  StorageCache cache("c", 2, PolicyKind::kLru);
  cache.access(1);
  cache.insert(1);
  cache.access(1);
  EXPECT_GT(cache.stats().accesses, 0u);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
  // Contents survive a stats reset.
  EXPECT_TRUE(cache.contains(1));
}

TEST(StorageCacheUnit, CountsHitsAndMisses) {
  StorageCache cache("c", 2, PolicyKind::kLru);
  EXPECT_FALSE(cache.access(1));
  cache.insert(1);
  EXPECT_TRUE(cache.access(1));
  EXPECT_EQ(cache.stats().accesses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.5);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
}

TEST(MultiLevel, ColdMissGoesToDiskAndFillsPath) {
  auto tree = small_tree();
  MultiLevelCache mlc(tree, 64, PolicyKind::kLru);
  const auto client = tree.clients()[0];
  const auto r0 = mlc.access(client, 7);
  EXPECT_TRUE(r0.from_disk());
  EXPECT_EQ(r0.caches_probed, 3u);  // L1, L2, L3 all missed
  // Second access hits the client's own (L1) cache.
  const auto r1 = mlc.access(client, 7);
  EXPECT_FALSE(r1.from_disk());
  EXPECT_EQ(r1.hit_node, client);
  EXPECT_EQ(r1.caches_probed, 1u);
}

TEST(MultiLevel, SiblingHitsSharedIoCache) {
  auto tree = small_tree();
  MultiLevelCache mlc(tree, 64, PolicyKind::kLru);
  mlc.access(tree.clients()[0], 9);  // fills CN0, IO0, SN0
  const auto r = mlc.access(tree.clients()[1], 9);
  EXPECT_FALSE(r.from_disk());
  EXPECT_EQ(tree.node(r.hit_node).kind, topology::NodeKind::kIo);
}

TEST(MultiLevel, DistantClientHitsStorageCache) {
  auto tree = small_tree();
  MultiLevelCache mlc(tree, 64, PolicyKind::kLru);
  mlc.access(tree.clients()[0], 9);
  const auto r = mlc.access(tree.clients()[3], 9);  // other IO subtree
  EXPECT_FALSE(r.from_disk());
  EXPECT_EQ(tree.node(r.hit_node).kind, topology::NodeKind::kStorage);
}

TEST(MultiLevel, AggregateStatsByKind) {
  auto tree = small_tree();
  MultiLevelCache mlc(tree, 64, PolicyKind::kLru);
  mlc.access(tree.clients()[0], 1);
  mlc.access(tree.clients()[0], 1);
  const auto l1 = mlc.aggregate_stats(topology::NodeKind::kCompute);
  EXPECT_EQ(l1.accesses, 2u);
  EXPECT_EQ(l1.hits, 1u);
  const auto l2 = mlc.aggregate_stats(topology::NodeKind::kIo);
  EXPECT_EQ(l2.accesses, 1u);  // only the first (L1-missing) access
  mlc.reset_stats();
  EXPECT_EQ(mlc.aggregate_stats(topology::NodeKind::kCompute).accesses, 0u);
}

TEST(MultiLevel, EvictionBasedPlacementFillsOnlyClient) {
  auto tree = small_tree();
  MultiLevelCache mlc(tree, 64, PolicyKind::kLru,
                      PlacementMode::kEvictionBased);
  const auto client = tree.clients()[0];
  mlc.access(client, 3);
  // The chunk must be in the client cache but NOT yet in L2/L3.
  EXPECT_TRUE(mlc.cache(client).contains(3));
  const auto io = tree.node(client).parent;
  EXPECT_FALSE(mlc.cache(io).contains(3));
  // Evicting it from L1 (by filling with 4 more chunks) demotes it to L2.
  for (ChunkId c = 10; c < 14; ++c) mlc.access(client, c);
  EXPECT_FALSE(mlc.cache(client).contains(3));
  EXPECT_TRUE(mlc.cache(io).contains(3));
}

TEST(MultiLevel, ExclusivePlacementInvalidatesOnSharedHit) {
  auto tree = small_tree();
  MultiLevelCache mlc(tree, 64, PolicyKind::kLru, PlacementMode::kExclusive);
  const auto cn0 = tree.clients()[0];
  const auto cn1 = tree.clients()[1];
  const auto io = tree.node(cn0).parent;
  // Load on CN0, push it down to IO0 by evicting from CN0.
  mlc.access(cn0, 3);
  for (ChunkId c = 10; c < 14; ++c) mlc.access(cn0, c);
  ASSERT_TRUE(mlc.cache(io).contains(3));
  // CN1 hits it at IO0; exclusivity moves it to CN1 and removes it there.
  const auto r = mlc.access(cn1, 3);
  EXPECT_EQ(r.hit_node, io);
  EXPECT_TRUE(mlc.cache(cn1).contains(3));
  EXPECT_FALSE(mlc.cache(io).contains(3));
}

TEST(MultiLevel, RejectsNonComputeOrigin) {
  auto tree = small_tree();
  MultiLevelCache mlc(tree, 64, PolicyKind::kLru);
  EXPECT_THROW(mlc.access(tree.root(), 1), Error);
}

TEST(MultiLevel, RejectsCacheSmallerThanChunk) {
  auto tree = topology::make_layered_hierarchy(2, 1, 1, 32, 64, 64);
  EXPECT_THROW(MultiLevelCache(tree, 64, PolicyKind::kLru), Error);
}

TEST(MultiLevel, UncachedDummyRootIsSkipped) {
  auto tree = topology::make_layered_hierarchy(4, 2, 2, 64, 64, 64);
  MultiLevelCache mlc(tree, 64, PolicyKind::kLru);
  EXPECT_FALSE(mlc.has_cache(tree.root()));
  const auto r = mlc.access(tree.clients()[0], 5);
  EXPECT_TRUE(r.from_disk());
  EXPECT_EQ(r.caches_probed, 3u);  // dummy root probes nothing
}

}  // namespace
}  // namespace mlsc::cache
