// Tests for the engine/cache extensions: write-back, cooperative
// caching, sequential readahead, and the irregular (indirect) workload.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "sim/experiment.h"
#include "support/check.h"
#include "workloads/irregular.h"

namespace mlsc::sim {
namespace {

poly::Program write_stream_program(std::int64_t n = 64) {
  poly::Program p;
  const auto a = p.add_array({"A", {n}, 64 * kKiB});
  poly::LoopNest nest;
  nest.name = "writer";
  nest.space = poly::IterationSpace({{0, n - 1}});
  nest.refs = {{a, poly::AccessMap::identity(1, {0}), /*is_write=*/true}};
  nest.compute_ns_per_iteration = 100;
  p.add_nest(std::move(nest));
  return p;
}

MachineConfig tiny_machine() {
  MachineConfig config;
  config.clients = 4;
  config.io_nodes = 2;
  config.storage_nodes = 1;
  config.client_cache_bytes = 4 * 64 * kKiB;
  config.io_cache_bytes = 4 * 64 * kKiB;
  config.storage_cache_bytes = 4 * 64 * kKiB;
  return config;
}

EngineResult run_program(
    const poly::Program& p, const MachineConfig& config,
    core::MapperKind mapper = core::MapperKind::kInterProcessor) {
  auto tree = config.build_tree();
  const core::DataSpace space(p, config.chunk_size_bytes);
  core::PipelineOptions options;
  options.mapper = mapper;
  core::MappingPipeline pipeline(tree, options);
  const auto m = pipeline.run_all(p, space);
  const auto trace = generate_trace(p, space, m);
  return run_engine(trace, m, config, tree);
}

TEST(WriteBack, DirtyEvictionsReachDisk) {
  const auto p = write_stream_program();
  auto config = tiny_machine();
  config.write_back = true;
  const auto r = run_program(p, config);
  // 64 chunks written streaming through 4+4+4-chunk caches: most dirty
  // chunks must eventually be flushed.
  EXPECT_GT(r.disk_writebacks, 32u);
  EXPECT_LE(r.disk_writebacks, 64u);
}

TEST(WriteBack, OffByDefault) {
  const auto p = write_stream_program();
  const auto r = run_program(p, tiny_machine());
  EXPECT_EQ(r.disk_writebacks, 0u);
}

TEST(WriteBack, CleanStreamsFlushNothing) {
  poly::Program p;
  const auto a = p.add_array({"A", {64}, 64 * kKiB});
  poly::LoopNest nest;
  nest.space = poly::IterationSpace({{0, 63}});
  nest.refs = {{a, poly::AccessMap::identity(1, {0}), false}};  // reads
  p.add_nest(std::move(nest));
  auto config = tiny_machine();
  config.write_back = true;
  EXPECT_EQ(run_program(p, config).disk_writebacks, 0u);
}

TEST(Cooperative, SiblingCacheServesPeerMisses) {
  // Two clients under one I/O node read the same chunks with the
  // original block mapping shifted: turn off the shared caches so the
  // only way to hit is the sibling's L1.
  poly::Program p;
  const auto a = p.add_array({"A", {2, 8}, 64 * kKiB});
  poly::LoopNest nest;
  // (pass, element): both passes read all 8 elements.
  nest.space = poly::IterationSpace::from_extents({2, 8});
  nest.refs = {{a, poly::AccessMap::from_matrix({{0, 0}, {0, 1}}, {0, 0}),
                false}};
  nest.compute_ns_per_iteration = 100;
  p.add_nest(std::move(nest));

  MachineConfig config = tiny_machine();
  config.clients = 2;
  config.io_nodes = 1;
  config.storage_nodes = 1;
  config.client_cache_bytes = 16 * 64 * kKiB;
  config.io_cache_bytes = 64 * kKiB;       // effectively useless (1 chunk)
  config.storage_cache_bytes = 64 * kKiB;  // likewise
  config.cooperative_caching = true;
  // The original (block) mapping leaves the two passes on different
  // clients touching the same chunks; the inter mapping would de-share
  // them (that is its whole point), so peer hits need the baseline.
  const auto r = run_program(p, config, core::MapperKind::kOriginal);
  EXPECT_GT(r.peer_hits, 0u);
}

TEST(Readahead, CutsDiskRequestsForSequentialStreams) {
  poly::Program p;
  const auto a = p.add_array({"A", {256}, 64 * kKiB});
  poly::LoopNest nest;
  nest.space = poly::IterationSpace({{0, 255}});
  nest.refs = {{a, poly::AccessMap::identity(1, {0}), false}};
  nest.compute_ns_per_iteration = 100;
  p.add_nest(std::move(nest));

  auto base = tiny_machine();
  const auto without = run_program(p, base);
  base.readahead_chunks = 4;
  const auto with = run_program(p, base);
  EXPECT_GT(with.prefetches, 0u);
  EXPECT_LT(with.disk_requests, without.disk_requests);
  // Everything still arrives: same access count.
  EXPECT_EQ(with.accesses, without.accesses);
}

TEST(Irregular, WorkloadValidatesAndMaps) {
  const auto w = workloads::make_irregular(1.0 / 16.0);
  EXPECT_EQ(w.program.index_tables.size(), 2u);
  auto config = tiny_machine();
  config.clients = 8;
  config.io_nodes = 4;
  config.storage_nodes = 2;
  config.client_cache_bytes = 2 * kMiB;
  config.io_cache_bytes = 2 * kMiB;
  config.storage_cache_bytes = 2 * kMiB;
  const auto tree = config.build_tree();
  const core::DataSpace space(w.program, config.chunk_size_bytes);
  core::MappingPipeline pipeline(tree);
  const auto m = pipeline.run_all(w.program, space);
  m.validate_partition(w.program);
}

TEST(Irregular, InterBeatsOriginalOnSharedNodes) {
  // Edge endpoints shared between edges are the sharing structure the
  // tag-based mapping can exploit and a static compiler cannot see.
  // Full data scale: at toy scale everything fits the caches and the
  // mapping has nothing to win.
  const auto w = workloads::make_irregular();
  const auto config = MachineConfig::paper_default();
  const auto orig = run_experiment(w, SchemeSpec::original(), config);
  const auto inter = run_experiment(w, SchemeSpec::inter(), config);
  EXPECT_LT(inter.engine.disk_requests, orig.engine.disk_requests);
  EXPECT_LT(inter.io_latency, orig.io_latency);
}

TEST(Irregular, ShuffleZeroIsGridOrder) {
  const auto ordered = workloads::make_irregular(1.0 / 16.0, 0.0);
  const auto& table = ordered.program.index_tables[0];
  // Grid order: source node indices are non-decreasing.
  for (std::size_t i = 1; i < table.values.size(); ++i) {
    EXPECT_LE(table.values[i - 1], table.values[i]);
  }
}

}  // namespace
}  // namespace mlsc::sim
