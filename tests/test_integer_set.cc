#include "poly/integer_set.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"

namespace mlsc::poly {
namespace {

TEST(IntegerSet, UniverseContainsSpace) {
  IntegerSet set(IterationSpace::from_extents({4, 4}));
  EXPECT_FALSE(set.is_empty());
  EXPECT_EQ(set.cardinality(), 16u);
  EXPECT_TRUE(set.contains(Iteration{0, 0}));
  EXPECT_FALSE(set.contains(Iteration{4, 0}));
}

TEST(IntegerSet, HalfPlaneConstraint) {
  // i0 >= i1  over a 4x4 box: the lower triangle (10 points).
  IntegerSet set(IterationSpace::from_extents({4, 4}));
  set.add_constraint(AffineExpr({1, -1}, 0));
  EXPECT_EQ(set.cardinality(), 10u);
  EXPECT_TRUE(set.contains(Iteration{3, 1}));
  EXPECT_FALSE(set.contains(Iteration{1, 3}));
}

TEST(IntegerSet, EmptyByContradiction) {
  // i0 >= 3 and i0 <= 1 cannot both hold.
  IntegerSet set(IterationSpace::from_extents({8}));
  set.add_constraint(AffineExpr({1}, -3));   // i0 - 3 >= 0
  set.add_constraint(AffineExpr({-1}, 1));   // 1 - i0 >= 0
  EXPECT_TRUE(set.is_empty());
  EXPECT_EQ(set.cardinality(), 0u);
}

TEST(IntegerSet, EmptyByBoxClipping) {
  // i0 >= 100 over a space with upper bound 7.
  IntegerSet set(IterationSpace::from_extents({8}));
  set.add_constraint(AffineExpr({1}, -100));
  EXPECT_TRUE(set.is_empty());
}

TEST(IntegerSet, RationalFeasibleButIntegerEmpty) {
  // 2*i0 = 5 has a rational solution (2.5) but no integer one:
  // 2 i0 - 5 >= 0 and 5 - 2 i0 >= 0.
  IntegerSet set(IterationSpace::from_extents({8}));
  set.add_constraint(AffineExpr({2}, -5));
  set.add_constraint(AffineExpr({-2}, 5));
  EXPECT_TRUE(set.is_empty());
}

TEST(IntegerSet, IntersectionNarrows) {
  IntegerSet a(IterationSpace::from_extents({6, 6}));
  a.add_constraint(AffineExpr({1, 0}, -2));  // i0 >= 2
  IntegerSet b(IterationSpace::from_extents({6, 6}));
  b.add_constraint(AffineExpr({-1, 0}, 3));  // i0 <= 3
  const auto both = a.intersect(b);
  EXPECT_EQ(both.cardinality(), 2u * 6u);
  EXPECT_FALSE(both.is_empty());
}

TEST(IntegerSet, BoundingBoxTightens) {
  IntegerSet set(IterationSpace::from_extents({10, 10}));
  set.add_bounds(AffineExpr::iterator(2, 0), 3, 5);
  set.add_bounds(AffineExpr::iterator(2, 1), 7, 9);
  const auto box = set.bounding_box();
  ASSERT_TRUE(box.has_value());
  EXPECT_EQ((*box)[0], (LoopBounds{3, 5}));
  EXPECT_EQ((*box)[1], (LoopBounds{7, 9}));
}

TEST(IntegerSet, EnumerateMatchesContains) {
  IntegerSet set(IterationSpace::from_extents({5, 5}));
  set.add_constraint(AffineExpr({1, 1}, -4));   // i0 + i1 >= 4
  set.add_constraint(AffineExpr({-1, -1}, 6));  // i0 + i1 <= 6
  const auto members = set.enumerate();
  EXPECT_FALSE(members.empty());
  std::uint64_t brute = 0;
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      brute += set.contains(Iteration{i, j}) ? 1 : 0;
    }
  }
  EXPECT_EQ(members.size(), brute);
  for (const auto& m : members) EXPECT_TRUE(set.contains(m));
}

TEST(ByteOffset, RowMajorAffineForm) {
  Program p;
  const auto a = p.add_array({"A", {4, 8}, 100});
  LoopNest nest;
  nest.space = IterationSpace::from_extents({4, 8});
  nest.refs = {{a, AccessMap::identity(2, {0, 0}), false}};
  p.add_nest(std::move(nest));
  const auto offset = byte_offset_expr(p, p.nest(0).refs[0]);
  // element (i0, i1) = i0*8 + i1; bytes = 100 * that.
  EXPECT_EQ(offset.evaluate(Iteration{0, 0}), 0);
  EXPECT_EQ(offset.evaluate(Iteration{1, 0}), 800);
  EXPECT_EQ(offset.evaluate(Iteration{2, 3}), 1900);
}

TEST(ChunkPreimage, MatchesEnumeration) {
  // The analytic preimage (the paper's γΛ membership building block)
  // must agree with brute-force footprint evaluation.
  Program p;
  const auto a = p.add_array({"A", {6, 6}, 96});  // 96 B elements
  LoopNest nest;
  nest.space = IterationSpace::from_extents({6, 6});
  nest.refs = {{a, AccessMap::identity(2, {0, 0}), false}};
  p.add_nest(std::move(nest));

  const std::uint64_t chunk_size = 256;
  const std::uint64_t total_bytes = 36 * 96;
  const std::uint64_t num_chunks = (total_bytes + chunk_size - 1) / chunk_size;
  for (std::uint64_t chunk = 0; chunk < num_chunks; ++chunk) {
    const std::uint64_t first = chunk * chunk_size;
    const std::uint64_t last = first + chunk_size - 1;
    const auto preimage =
        chunk_preimage(p, p.nest(0), p.nest(0).refs[0], chunk_size, first,
                       last);
    for (std::int64_t i = 0; i < 6; ++i) {
      for (std::int64_t j = 0; j < 6; ++j) {
        const Iteration iter{i, j};
        const std::uint64_t off =
            static_cast<std::uint64_t>((i * 6 + j) * 96);
        const bool touches = off <= last && off + 96 > first;
        EXPECT_EQ(preimage.contains(iter), touches)
            << "chunk " << chunk << " iter (" << i << "," << j << ")";
      }
    }
  }
}

TEST(ChunkPreimage, TransposedReference) {
  Program p;
  const auto a = p.add_array({"A", {4, 4}, 64});
  LoopNest nest;
  nest.space = IterationSpace::from_extents({4, 4});
  nest.refs = {{a, AccessMap::from_matrix({{0, 1}, {1, 0}}, {0, 0}), false}};
  p.add_nest(std::move(nest));
  // Chunk = first 4 elements = row 0 of A = accessed by iterations with
  // i1 == 0 (transposed).
  const auto preimage = chunk_preimage(p, p.nest(0), p.nest(0).refs[0],
                                       256, 0, 255);
  EXPECT_EQ(preimage.cardinality(), 4u);
  EXPECT_TRUE(preimage.contains(Iteration{2, 0}));
  EXPECT_FALSE(preimage.contains(Iteration{0, 2}));
}

TEST(ChunkPreimage, RejectsIndirectRefs) {
  Program p;
  const auto nodes = p.add_array({"nodes", {8}, 64});
  const auto idx = p.add_index_table({"idx", {0, 1}});
  LoopNest nest;
  nest.space = IterationSpace({{0, 1}});
  ArrayRef ref;
  ref.array = nodes;
  ref.map = AccessMap::identity(1, {0});
  ref.index_table = idx;
  nest.refs = {ref};
  p.add_nest(std::move(nest));
  EXPECT_THROW(byte_offset_expr(p, p.nest(0).refs[0]), mlsc::Error);
}

/// Property: on random small boxes with random constraints, is_empty()
/// agrees with brute-force search.
TEST(IntegerSetProperty, EmptinessMatchesBruteForce) {
  mlsc::Rng rng(23);
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t e0 = 1 + rng.next_below(6);
    const std::int64_t e1 = 1 + rng.next_below(6);
    IntegerSet set(IterationSpace::from_extents({e0, e1}));
    const int num_constraints = 1 + rng.next_below(4);
    for (int c = 0; c < num_constraints; ++c) {
      const auto coeff = [&] {
        return static_cast<std::int64_t>(rng.next_below(7)) - 3;
      };
      set.add_constraint(AffineExpr({coeff(), coeff()},
                                    static_cast<std::int64_t>(
                                        rng.next_below(9)) -
                                        4));
    }
    bool brute_nonempty = false;
    for (std::int64_t i = 0; i < e0 && !brute_nonempty; ++i) {
      for (std::int64_t j = 0; j < e1 && !brute_nonempty; ++j) {
        brute_nonempty = set.contains(Iteration{i, j});
      }
    }
    EXPECT_EQ(set.is_empty(), !brute_nonempty) << set.to_string();
  }
}

}  // namespace
}  // namespace mlsc::poly
