// The paper's two mapping rules (§3, Fig. 2), verified end to end on the
// simulator with hand-built mappings:
//
//   Rule 1: iterations that share no data should NOT be mapped to
//           clients with affinity at some storage cache (they would
//           compete for its space).
//   Rule 2: iterations that DO share data should be mapped to clients
//           with affinity at some storage cache (one fetch serves both).
#include <gtest/gtest.h>

#include "core/mapping.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "support/check.h"

namespace mlsc::sim {
namespace {

/// Four clients, two I/O nodes, one storage node; tiny caches so that
/// competition and constructive sharing are visible.
MachineConfig fig2_machine() {
  MachineConfig config;
  config.clients = 4;
  config.io_nodes = 2;
  config.storage_nodes = 1;
  config.client_cache_bytes = 2 * 64 * kKiB;   // 2 chunks
  config.io_cache_bytes = 6 * 64 * kKiB;       // 6 chunks
  config.storage_cache_bytes = 2 * 64 * kKiB;  // 2 chunks: tiny L3
  return config;
}

/// A program with two independent working sets A and B, each re-swept
/// `passes` times: chunk-level reuse exists within each set only.
poly::Program two_set_program(std::int64_t passes, std::int64_t elements) {
  poly::Program p;
  const auto a = p.add_array({"A", {passes, elements}, 64 * kKiB});
  const auto b = p.add_array({"B", {passes, elements}, 64 * kKiB});
  (void)b;
  (void)a;
  // Nest 0 sweeps A repeatedly; nest 1 sweeps B repeatedly.  The pass
  // index is folded out of the subscript so every pass re-reads the same
  // elements.
  for (int which = 0; which < 2; ++which) {
    poly::LoopNest nest;
    nest.name = which == 0 ? "sweep_a" : "sweep_b";
    nest.space = poly::IterationSpace::from_extents({passes, elements});
    nest.refs = {{static_cast<poly::ArrayId>(which),
                  poly::AccessMap::from_matrix({{0, 0}, {0, 1}}, {0, 0}),
                  false}};
    nest.compute_ns_per_iteration = 1000;
    p.add_nest(std::move(nest));
  }
  p.validate();
  return p;
}

/// Builds a mapping that gives nest 0 to clients `c0`/`c1` and nest 1 to
/// the other two, splitting each nest's iterations in half.
core::MappingResult assign_pairs(const poly::Program& p, std::size_t c0,
                                 std::size_t c1, std::size_t c2,
                                 std::size_t c3) {
  core::MappingResult m;
  m.kind = core::MapperKind::kOriginal;
  m.mapper_name = "handmade";
  m.client_work.resize(4);
  const std::size_t owners[2][2] = {{c0, c1}, {c2, c3}};
  for (poly::NestId n = 0; n < 2; ++n) {
    const std::uint64_t size = p.nest(n).space.size();
    for (int half = 0; half < 2; ++half) {
      core::WorkItem item;
      item.nest = n;
      item.order = poly::IterationOrder::identity(p.nest(n).depth());
      const std::uint64_t begin = half == 0 ? 0 : size / 2;
      const std::uint64_t end = half == 0 ? size / 2 : size;
      item.ranges = {poly::LinearRange{begin, end}};
      item.iterations = end - begin;
      m.client_work[owners[n][half]].push_back(std::move(item));
    }
  }
  return m;
}

std::uint64_t disk_requests(const poly::Program& p,
                            const core::MappingResult& m,
                            const MachineConfig& config) {
  const auto tree = config.build_tree();
  const core::DataSpace space(p, config.chunk_size_bytes);
  const auto trace = generate_trace(p, space, m);
  return run_engine(trace, m, config, tree).disk_requests;
}

TEST(PaperRules, Rule2SharersBelongUnderOneCache) {
  // Each nest's two halves share the whole array (every pass re-reads
  // it).  Putting the sharers under the SAME I/O node (clients {0,1} and
  // {2,3}) lets one fetch serve both; splitting them across I/O nodes
  // (clients {0,2} and {1,3}) replicates every chunk in both L2 caches
  // and doubles the pressure — Fig. 2(b).
  const auto p = two_set_program(6, 6);
  const auto config = fig2_machine();
  const auto affine = disk_requests(p, assign_pairs(p, 0, 1, 2, 3), config);
  const auto split = disk_requests(p, assign_pairs(p, 0, 2, 1, 3), config);
  EXPECT_LT(affine, split)
      << "mapping sharers under a common cache must reduce disk traffic";
}

TEST(PaperRules, Rule1NonSharersApartReducesCompetition) {
  // With working sets sized to exactly fit one L2 cache, pairing the two
  // NON-sharing nests under one I/O node (clients {0,2} vs {1,3} =
  // A-half and B-half under each) makes A and B compete for the same L2
  // — Fig. 2(a) — while keeping each nest's sharers together does not.
  const auto p = two_set_program(6, 6);
  const auto config = fig2_machine();
  // affine: A on IO0, B on IO1 (no competition; 6 chunks fit 6-chunk L2).
  const auto no_compete = disk_requests(p, assign_pairs(p, 0, 1, 2, 3),
                                        config);
  // mixed: each IO node serves half of A and half of B: 12 distinct
  // chunks compete for 6-chunk L2s.
  const auto compete = disk_requests(p, assign_pairs(p, 0, 2, 1, 3), config);
  EXPECT_LT(no_compete, compete)
      << "separating non-sharers must reduce shared-cache competition";
}

}  // namespace
}  // namespace mlsc::sim
