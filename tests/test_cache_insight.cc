// The cache-behavior explanation layer (obs/cache_insight.h,
// DESIGN.md §18): the Mattson reuse-distance profiler against a
// brute-force oracle, the miss-classification partition, the capacity
// curve's bit-exactness at the configured capacity, eviction
// attribution, and thread-count determinism of the whole result.
#include <algorithm>
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "cache/storage_cache.h"
#include "obs/cache_insight.h"
#include "sim/experiment.h"
#include "support/units.h"
#include "workloads/registry.h"

namespace mlsc {
namespace {

using sim::MachineConfig;
using sim::SchemeSpec;

/// Brute-force exclusive reuse distance: the number of *distinct* chunks
/// touched since the previous access to `chunk`, via an explicit LRU
/// stack (vector front = most recent).
class OracleStack {
 public:
  std::uint64_t access(std::uint32_t chunk) {
    const auto it = std::find(stack_.begin(), stack_.end(), chunk);
    std::uint64_t distance = obs::MattsonStack::kFirstTouch;
    if (it != stack_.end()) {
      distance = static_cast<std::uint64_t>(it - stack_.begin());
      stack_.erase(it);
    }
    stack_.insert(stack_.begin(), chunk);
    return distance;
  }
  void clear() { stack_.clear(); }

 private:
  std::vector<std::uint32_t> stack_;
};

TEST(MattsonStack, MatchesBruteForceOracleOnRandomTraces) {
  // Long enough to force several Fenwick slot compactions/doublings
  // (the slot array starts at 1024 and compacts when it fills).
  std::mt19937 rng(20100621);  // HPDC'10
  for (int round = 0; round < 3; ++round) {
    const std::uint32_t universe = round == 0 ? 7 : (round == 1 ? 256 : 40);
    std::uniform_int_distribution<std::uint32_t> chunk(0, universe - 1);
    obs::MattsonStack stack;
    OracleStack oracle;
    for (int i = 0; i < 20000; ++i) {
      const std::uint32_t c = chunk(rng);
      ASSERT_EQ(stack.access(c), oracle.access(c))
          << "round " << round << " access " << i << " chunk " << c;
    }
    EXPECT_LE(stack.live_chunks(), universe);
    // A cold restart forgets everything on both sides.
    stack.clear();
    oracle.clear();
    for (int i = 0; i < 2000; ++i) {
      const std::uint32_t c = chunk(rng);
      ASSERT_EQ(stack.access(c), oracle.access(c)) << "post-clear " << i;
    }
  }
}

TEST(MattsonStack, SequentialAndRepeatedPatterns) {
  obs::MattsonStack stack;
  // First touches.
  for (std::uint32_t c = 0; c < 10; ++c) {
    EXPECT_EQ(stack.access(c), obs::MattsonStack::kFirstTouch);
  }
  // Immediate re-access: distance 0.
  EXPECT_EQ(stack.access(9), 0u);
  // Re-access below one intervening distinct chunk: distance 1; touching
  // the same interloper twice still counts it once (distances are over
  // distinct chunks).
  stack.access(3);
  stack.access(3);
  EXPECT_EQ(stack.access(9), 1u);
  EXPECT_EQ(stack.live_chunks(), 10u);
}

TEST(CacheInsight, ClassifiesInterferenceAndAttributesEvictions) {
  // Two clients sharing a 2-chunk LRU cache.  Client 0 touches A=0, B=1;
  // client 1 touches C=2 (evicting A); client 0 re-touches A: alone it
  // would have hit (solo distance 1 < 2), so the miss is interference,
  // and the eviction matrix charges client 1 with evicting client 0.
  obs::HierarchyInsight hierarchy(2);
  obs::CacheInsight& insight = hierarchy.add_cache("shared.l2", 2, 2);
  cache::StorageCache cache("shared.l2", 2, cache::PolicyKind::kLru);
  cache.set_insight(&insight);

  auto touch = [&](std::uint32_t client, cache::ChunkId chunk) {
    hierarchy.set_current_client(client);
    if (!cache.access(chunk)) cache.insert(chunk);
  };
  touch(0, 0);  // A: compulsory
  touch(0, 1);  // B: compulsory
  touch(1, 2);  // C: compulsory, evicts A (owner: client 0)
  touch(0, 0);  // A again: interference (would hit alone)

  const obs::InsightResult result = hierarchy.finalize();
  ASSERT_EQ(result.levels.size(), 1u);
  const obs::LevelInsight& level = result.levels[0];
  EXPECT_EQ(level.level, 2);
  EXPECT_EQ(level.accesses, 4u);
  EXPECT_EQ(level.hits, 0u);
  EXPECT_EQ(level.misses, 4u);
  EXPECT_EQ(level.compulsory, 3u);
  EXPECT_EQ(level.capacity, 0u);
  EXPECT_EQ(level.interference, 1u);
  EXPECT_DOUBLE_EQ(level.interference_miss_pct(), 25.0);
  // Victim-major matrix: client 1's fill evicted client 0's A, and the
  // final re-fill of A self-evicted client 0's own B.
  ASSERT_EQ(level.eviction_matrix.size(), 4u);
  EXPECT_EQ(level.eviction_matrix[0 * 2 + 1], 1u);
  EXPECT_EQ(level.eviction_matrix[0 * 2 + 0], 1u);
  EXPECT_EQ(level.eviction_matrix[1 * 2 + 0], 0u);
  EXPECT_EQ(level.eviction_matrix[1 * 2 + 1], 0u);

  // Curve: at the configured capacity the prediction reproduces the
  // measured misses; one chunk more and the interference miss heals.
  EXPECT_EQ(insight.predicted_misses(2), 4u);
  EXPECT_EQ(insight.predicted_misses(3), 3u);
  bool found_configured = false;
  for (const obs::CurvePoint& point : level.curve) {
    if (point.capacity_chunks == level.capacity_chunks) {
      found_configured = true;
      EXPECT_EQ(point.predicted_misses, level.misses);
    }
  }
  EXPECT_TRUE(found_configured);
}

TEST(CacheInsight, SoloCapacityMissIsNotInterference) {
  // One client alone on a 2-chunk cache cycling through 3 chunks: every
  // re-access has solo distance 2 >= capacity, so the misses after the
  // cold ones are capacity, never interference.
  obs::HierarchyInsight hierarchy(1);
  obs::CacheInsight& insight = hierarchy.add_cache("solo.l2", 2, 2);
  cache::StorageCache cache("solo.l2", 2, cache::PolicyKind::kLru);
  cache.set_insight(&insight);
  hierarchy.set_current_client(0);
  for (int round = 0; round < 4; ++round) {
    for (cache::ChunkId c = 0; c < 3; ++c) {
      if (!cache.access(c)) cache.insert(c);
    }
  }
  const obs::InsightResult result = hierarchy.finalize();
  ASSERT_EQ(result.levels.size(), 1u);
  EXPECT_EQ(result.levels[0].misses, 12u);
  EXPECT_EQ(result.levels[0].compulsory, 3u);
  EXPECT_EQ(result.levels[0].capacity, 9u);
  EXPECT_EQ(result.levels[0].interference, 0u);
  EXPECT_EQ(insight.predicted_misses(3), 3u);  // all hits with one more chunk
}

TEST(CacheInsight, ResetPreservesCountersAndRestartsCold) {
  obs::HierarchyInsight hierarchy(1);
  obs::CacheInsight& insight = hierarchy.add_cache("l2", 2, 4);
  cache::StorageCache cache("l2", 4, cache::PolicyKind::kLru);
  cache.set_insight(&insight);
  hierarchy.set_current_client(0);
  for (cache::ChunkId c = 0; c < 4; ++c) {
    if (!cache.access(c)) cache.insert(c);
  }
  // Degraded restart (contents lost, stats survive) — mirrored to the
  // insight layer by set_capacity.
  cache.set_capacity(2);
  for (cache::ChunkId c = 0; c < 2; ++c) {
    if (!cache.access(c)) cache.insert(c);
  }
  const obs::InsightResult result = hierarchy.finalize();
  ASSERT_EQ(result.levels.size(), 1u);
  // 4 cold misses before the restart + 2 first touches after (the
  // restart forgot residency *and* history, so they count compulsory).
  EXPECT_EQ(result.levels[0].misses, cache.stats().misses);
  EXPECT_EQ(result.levels[0].misses, 6u);
  EXPECT_EQ(result.levels[0].compulsory, 6u);
}

/// The two whole-run invariants of DESIGN.md §18, checked for one
/// experiment: the classes partition the misses exactly at every level,
/// and (LRU + access-based placement, the default machine) the curve
/// point at the configured capacity reproduces the measured misses
/// bit-exactly.
void expect_insight_invariants(const sim::ExperimentResult& result) {
  const obs::InsightResult& insight = result.engine.insight;
  ASSERT_FALSE(insight.empty());
  const cache::CacheStats* stats[] = {&result.engine.l1, &result.engine.l2,
                                      &result.engine.l3};
  ASSERT_EQ(insight.levels.size(), 3u);
  for (const obs::LevelInsight& level : insight.levels) {
    SCOPED_TRACE(level.level_name());
    EXPECT_EQ(level.compulsory + level.capacity + level.interference,
              level.misses);
    // The insight layer counts the same events as CacheStats.
    ASSERT_GE(level.level, 1);
    ASSERT_LE(level.level, 3);
    EXPECT_EQ(level.accesses, stats[level.level - 1]->accesses);
    EXPECT_EQ(level.hits, stats[level.level - 1]->hits);
    EXPECT_EQ(level.misses, stats[level.level - 1]->misses);
    bool found_configured = false;
    for (const obs::CurvePoint& point : level.curve) {
      if (point.capacity_chunks == level.capacity_chunks) {
        found_configured = true;
        EXPECT_EQ(point.predicted_misses, level.misses);
      }
    }
    EXPECT_TRUE(found_configured);
    // Curves are monotone: more capacity never means more misses.
    for (std::size_t i = 1; i < level.curve.size(); ++i) {
      EXPECT_LE(level.curve[i].predicted_misses,
                level.curve[i - 1].predicted_misses);
    }
  }
}

MachineConfig small_machine() {
  MachineConfig config;
  config.clients = 8;
  config.io_nodes = 4;
  config.storage_nodes = 2;
  config.client_cache_bytes = 2 * kMiB;
  config.io_cache_bytes = 2 * kMiB;
  config.storage_cache_bytes = 2 * kMiB;
  config.explain = true;
  return config;
}

TEST(CacheInsight, PartitionAndCurveHoldForEveryRegistryWorkload) {
  const MachineConfig config = small_machine();
  for (const std::string& name : workloads::workload_names()) {
    SCOPED_TRACE(name);
    const auto workload = workloads::make_workload(name, 1.0 / 16.0);
    const auto result =
        sim::run_experiment(workload, SchemeSpec::inter(), config);
    expect_insight_invariants(result);
  }
}

TEST(CacheInsight, PartitionAndCurveHoldAtPaperTopology) {
  // The default 64/32/16 machine — the shape CI's mlsc_explain run and
  // the committed baseline use.
  MachineConfig config;
  config.explain = true;
  const auto workload = workloads::make_workload("sar", 1.0 / 16.0);
  const auto result =
      sim::run_experiment(workload, SchemeSpec::original(), config);
  expect_insight_invariants(result);
}

TEST(CacheInsight, DisabledByDefaultAndEmpty) {
  MachineConfig config = small_machine();
  config.explain = false;
  const auto workload = workloads::make_workload("hf", 1.0 / 16.0);
  const auto result =
      sim::run_experiment(workload, SchemeSpec::inter(), config);
  EXPECT_TRUE(result.engine.insight.empty());
}

// Label: concurrency (TSan gate).  The insight layer is written only
// from the serial replay loop, so the full result — curves, classes,
// matrices — must be byte-identical at any mapping thread count.
TEST(CacheInsight, ResultIsIdenticalAtAnyThreadCount) {
  const MachineConfig config = small_machine();
  const auto workload = workloads::make_workload("astro", 1.0 / 16.0);
  SchemeSpec serial = SchemeSpec::inter();
  serial.num_threads = 1;
  SchemeSpec parallel = SchemeSpec::inter();
  parallel.num_threads = 4;
  const auto a = sim::run_experiment(workload, serial, config);
  const auto b = sim::run_experiment(workload, parallel, config);
  std::ostringstream ja, jb;
  obs::write_insight_json(ja, a.engine.insight);
  obs::write_insight_json(jb, b.engine.insight);
  EXPECT_FALSE(a.engine.insight.empty());
  EXPECT_EQ(ja.str(), jb.str());
}

}  // namespace
}  // namespace mlsc
