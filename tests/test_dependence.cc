#include "poly/dependence.h"

#include <gtest/gtest.h>

namespace mlsc::poly {
namespace {

Program stencil_program() {
  // for i = 1..9: A[i] = A[i-1] + B[i]
  Program p;
  const auto a = p.add_array({"A", {16}, 8});
  const auto b = p.add_array({"B", {16}, 8});
  LoopNest nest;
  nest.name = "recurrence";
  nest.space = IterationSpace({{1, 9}});
  nest.refs = {
      {a, AccessMap::identity(1, {0}), /*is_write=*/true},
      {a, AccessMap::identity(1, {-1}), false},
      {b, AccessMap::identity(1, {0}), false},
  };
  p.add_nest(std::move(nest));
  return p;
}

TEST(Dependence, FlowDependenceDistanceOne) {
  const auto p = stencil_program();
  const auto deps = find_dependences(p.nest(0));
  // write A[i] -> read A[i-1] at distance +1 (and the anti direction).
  bool found_flow = false;
  for (const auto& d : deps) {
    ASSERT_EQ(d.distance.size(), 1u);
    if (d.distance[0].has_value() && *d.distance[0] == 1) found_flow = true;
  }
  EXPECT_TRUE(found_flow);
  EXPECT_FALSE(deps.empty());
}

TEST(Dependence, CarriedLevel) {
  Dependence d;
  d.distance = {std::optional<std::int64_t>{0},
                std::optional<std::int64_t>{2},
                std::optional<std::int64_t>{0}};
  EXPECT_EQ(d.carried_level(), std::optional<std::size_t>{1});
  d.distance = {std::optional<std::int64_t>{0},
                std::optional<std::int64_t>{0},
                std::optional<std::int64_t>{0}};
  EXPECT_FALSE(d.carried_level().has_value());
  d.distance = {std::nullopt, std::optional<std::int64_t>{0}};
  EXPECT_EQ(d.carried_level(), std::optional<std::size_t>{0});
}

TEST(Dependence, IndependentReferencesProduceNoDeps) {
  Program p;
  const auto a = p.add_array({"A", {10, 10}, 8});
  const auto b = p.add_array({"B", {10, 10}, 8});
  LoopNest nest;
  nest.space = IterationSpace::from_extents({10, 10});
  nest.refs = {
      {a, AccessMap::identity(2, {0, 0}), /*is_write=*/true},
      {b, AccessMap::identity(2, {0, 0}), false},
  };
  p.add_nest(std::move(nest));
  EXPECT_TRUE(find_dependences(p.nest(0)).empty());
}

TEST(Dependence, GcdTestDisprovesStridedPair) {
  // write A[2*i], read A[2*i+1]: even vs odd elements never meet.
  Program p;
  const auto a = p.add_array({"A", {64}, 8});
  LoopNest nest;
  nest.space = IterationSpace({{0, 20}});
  nest.refs = {
      {a, AccessMap::from_matrix({{2}}, {0}), /*is_write=*/true},
      {a, AccessMap::from_matrix({{2}}, {1}), false},
  };
  p.add_nest(std::move(nest));
  EXPECT_TRUE(find_dependences(p.nest(0)).empty());
}

TEST(Dependence, ConstantSubscriptMismatchDisproves) {
  Program p;
  const auto a = p.add_array({"A", {10, 10}, 8});
  LoopNest nest;
  nest.space = IterationSpace::from_extents({10});
  // A[3, i] written, A[4, i] read: first subscript can never match.
  nest.refs = {
      {a, AccessMap::from_matrix({{0}, {1}}, {3, 0}), /*is_write=*/true},
      {a, AccessMap::from_matrix({{0}, {1}}, {4, 0}), false},
  };
  p.add_nest(std::move(nest));
  EXPECT_TRUE(find_dependences(p.nest(0)).empty());
}

TEST(Dependence, DefaultParallelLoop) {
  // for i: for j: A[i][j] = A[i][j-1] — j carries, i is parallel.
  Program p;
  const auto a = p.add_array({"A", {8, 8}, 8});
  LoopNest nest;
  nest.space = IterationSpace({{0, 7}, {1, 7}});
  nest.refs = {
      {a, AccessMap::identity(2, {0, 0}), /*is_write=*/true},
      {a, AccessMap::identity(2, {0, -1}), false},
  };
  p.add_nest(std::move(nest));
  const auto deps = find_dependences(p.nest(0));
  EXPECT_FALSE(deps.empty());
  EXPECT_EQ(default_parallel_loop(p.nest(0), deps),
            std::optional<std::size_t>{0});
}

TEST(Dependence, SinkingPermutationMovesCarriersInner) {
  // Dependence carried by loop 0: the permutation should sink loop 0.
  Program p;
  const auto a = p.add_array({"A", {8, 8}, 8});
  LoopNest nest;
  nest.space = IterationSpace({{1, 7}, {0, 7}});
  nest.refs = {
      {a, AccessMap::identity(2, {0, 0}), /*is_write=*/true},
      {a, AccessMap::identity(2, {-1, 0}), false},
  };
  p.add_nest(std::move(nest));
  const auto deps = find_dependences(p.nest(0));
  const auto perm = dependence_sinking_permutation(p.nest(0), deps);
  ASSERT_EQ(perm.size(), 2u);
  EXPECT_EQ(perm[0], 1u);  // parallel loop out
  EXPECT_EQ(perm[1], 0u);  // carrier sunk innermost
}

TEST(Dependence, ToStringRendersStars) {
  Dependence d;
  d.src_ref = 0;
  d.dst_ref = 2;
  d.distance = {std::optional<std::int64_t>{1}, std::nullopt};
  EXPECT_EQ(d.to_string(), "ref0 -> ref2 (1, *)");
}

}  // namespace
}  // namespace mlsc::poly
