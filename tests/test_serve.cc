// Tests for the online mapping service: event-stream parsing (round
// trips, journal decoration, stream-level validation), the remap
// cost/benefit policy, incremental MappingState operations (register /
// patch / depart / scale / fault), the two acceptance oracles — journal
// determinism across thread counts and forced-full == from-scratch —
// and the run-record snapshot surface.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/event.h"
#include "serve/policy.h"
#include "serve/service.h"
#include "serve/state.h"
#include "support/check.h"
#include "support/json.h"

namespace mlsc::serve {
namespace {

sim::MachineConfig tiny_machine() {
  sim::MachineConfig config;
  config.clients = 8;
  config.io_nodes = 4;
  config.storage_nodes = 2;
  return config;
}

ServeEvent make_register(Nanoseconds at, const std::string& id,
                         const std::string& name, double size_factor,
                         std::uint32_t clients) {
  ServeEvent event;
  event.at = at;
  event.kind = EventKind::kRegister;
  event.id = id;
  event.workload = name;
  event.size_factor = size_factor;
  event.clients = clients;
  return event;
}

ServeEvent make_depart(Nanoseconds at, const std::string& id) {
  ServeEvent event;
  event.at = at;
  event.kind = EventKind::kDepart;
  event.id = id;
  return event;
}

ServiceOptions tiny_options() {
  ServiceOptions options;
  options.machine = tiny_machine();
  options.state.tagging.max_iteration_chunks = 64;
  return options;
}

/// A small churn history: three arrivals (two sharing a data key), one
/// departure, one late arrival.
std::vector<ServeEvent> churn_events() {
  std::vector<ServeEvent> events;
  events.push_back(make_register(0, "a", "astro", 1.0 / 16.0, 2));
  events.push_back(make_register(1 * kMillisecond, "b", "hf", 1.0 / 16.0, 2));
  events.push_back(
      make_register(2 * kMillisecond, "c", "astro", 1.0 / 16.0, 2));
  events.push_back(make_depart(3 * kMillisecond, "b"));
  events.push_back(make_register(4 * kMillisecond, "d", "sar", 1.0 / 16.0, 2));
  return events;
}

// --- events ----------------------------------------------------------------

TEST(ServeEvent, JsonRoundTripsEveryKind) {
  std::vector<ServeEvent> events;
  events.push_back(make_register(5, "w1", "astro", 0.25, 3));
  events.push_back(make_depart(7, "w1"));
  ServeEvent scale;
  scale.at = 9;
  scale.kind = EventKind::kScale;
  scale.id = "w2";
  scale.clients = 6;
  events.push_back(scale);
  ServeEvent fault;
  fault.at = 11;
  fault.kind = EventKind::kFault;
  fault.fault_spec = "fail@11:l1.0";
  events.push_back(fault);

  for (const auto& event : events) {
    const auto doc = parse_json(event_to_json(event));
    const ServeEvent back = parse_serve_event(doc);
    EXPECT_EQ(back.at, event.at);
    EXPECT_EQ(back.kind, event.kind);
    EXPECT_EQ(back.id, event.id);
    EXPECT_EQ(back.workload, event.workload);
    EXPECT_DOUBLE_EQ(back.size_factor, event.size_factor);
    EXPECT_EQ(back.clients, event.clients);
    EXPECT_EQ(back.fault_spec, event.fault_spec);
  }
}

TEST(ServeEvent, ParserIgnoresJournalDecoration) {
  const ServeEvent event = make_register(3, "w", "hf", 0.0625, 2);
  std::string line = event_to_json(event);
  ASSERT_EQ(line.back(), '}');
  line.pop_back();
  line += ",\"decision\":{\"scope\":\"patch\",\"reason\":\"ok\"}}";
  const ServeEvent back = parse_serve_event(parse_json(line));
  EXPECT_EQ(back.id, "w");
  EXPECT_EQ(back.clients, 2u);
}

TEST(ServeEvent, RejectsUnknownTypeAndBadClients) {
  EXPECT_THROW(
      parse_serve_event(parse_json(
          R"({"at":0,"event":"resize","id":"w"})")),
      Error);
  EXPECT_THROW(
      parse_serve_event(parse_json(
          R"({"at":0,"event":"register","id":"w","workload":"hf",)"
          R"("size_factor":1.0,"clients":-4})")),
      Error);
  EXPECT_THROW(
      parse_serve_event(parse_json(
          R"({"at":0,"event":"register","id":"w","workload":"hf",)"
          R"("size_factor":1.0,"clients":0})")),
      Error);
  // Malformed fault specs fail eagerly at parse time.
  EXPECT_THROW(
      parse_serve_event(parse_json(
          R"({"at":0,"event":"fault","spec":"explode@0:everything"})")),
      Error);
}

TEST(ServeEvent, StreamValidationNamesTheLine) {
  const std::string header = stream_header_json(7, "tiny");
  // Duplicate live register id.
  {
    std::ostringstream stream;
    stream << header << "\n"
           << event_to_json(make_register(0, "w", "hf", 0.0625, 1)) << "\n"
           << event_to_json(make_register(1, "w", "hf", 0.0625, 1)) << "\n";
    try {
      parse_event_stream(stream.str());
      FAIL() << "duplicate id accepted";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
    }
  }
  // Out-of-order timestamps.
  {
    std::ostringstream stream;
    stream << header << "\n"
           << event_to_json(make_register(5, "w", "hf", 0.0625, 1)) << "\n"
           << event_to_json(make_depart(2, "w")) << "\n";
    EXPECT_THROW(parse_event_stream(stream.str()), Error);
  }
  // Depart of an id that is not live.
  {
    std::ostringstream stream;
    stream << header << "\n" << event_to_json(make_depart(0, "ghost")) << "\n";
    EXPECT_THROW(parse_event_stream(stream.str()), Error);
  }
  // A register id may be reused once the first instance departed.
  {
    std::ostringstream stream;
    stream << header << "\n"
           << event_to_json(make_register(0, "w", "hf", 0.0625, 1)) << "\n"
           << event_to_json(make_depart(1, "w")) << "\n"
           << event_to_json(make_register(2, "w", "hf", 0.0625, 1)) << "\n";
    EXPECT_EQ(parse_event_stream(stream.str()).size(), 3u);
  }
}

// --- policy ----------------------------------------------------------------

TEST(ServePolicy, ScopePausesAreTiered) {
  ServePolicy policy;
  policy.remap.remap_pause_ns = 1600;
  EXPECT_EQ(scope_pause(policy, RemapScope::kFull), 1600u);
  EXPECT_EQ(scope_pause(policy, RemapScope::kPartial), 400u);
  EXPECT_EQ(scope_pause(policy, RemapScope::kPatch), 100u);
  EXPECT_EQ(scope_pause(policy, RemapScope::kNone), 0u);
}

TEST(ServePolicy, ForcedScopesShortCircuit) {
  ServePolicy policy;
  PolicyInputs inputs;
  inputs.imbalance_after_patch = 99.0;  // would escalate under kAuto
  policy.force = ServePolicy::Force::kPatch;
  EXPECT_EQ(decide_scope(policy, inputs).scope, RemapScope::kPatch);
  policy.force = ServePolicy::Force::kPartial;
  EXPECT_EQ(decide_scope(policy, inputs).scope, RemapScope::kPartial);
  policy.force = ServePolicy::Force::kFull;
  EXPECT_EQ(decide_scope(policy, inputs).scope, RemapScope::kFull);
}

TEST(ServePolicy, PatchWhileBalancedEscalatesWhenNot) {
  ServePolicy policy;  // patch limit 0.25, full target 0.10
  PolicyInputs inputs;
  inputs.total_iterations = 1000;
  inputs.now = 100 * kMillisecond;

  inputs.imbalance_after_patch = 0.2;
  EXPECT_EQ(decide_scope(policy, inputs).scope, RemapScope::kPatch);

  // Imbalance past the limit but the projected saving is small: the
  // excess over the full target times the run length is far below the
  // 500us full pause, so the policy settles for a partial remap.
  inputs.imbalance_after_patch = 0.4;
  EXPECT_EQ(decide_scope(policy, inputs).scope, RemapScope::kPartial);

  // A long enough projected run justifies the full pause.
  inputs.total_iterations = 10'000'000'000ull;
  EXPECT_EQ(decide_scope(policy, inputs).scope, RemapScope::kFull);

  // ... unless a full recompute just happened (hysteresis).
  inputs.any_full_yet = true;
  inputs.last_full_at = inputs.now - 1;
  EXPECT_EQ(decide_scope(policy, inputs).scope, RemapScope::kPartial);
}

TEST(ServePolicy, DriftDisqualifiesPatch) {
  ServePolicy policy;
  PolicyInputs inputs;
  inputs.imbalance_after_patch = 0.0;
  inputs.drift_exceeded = true;
  inputs.now = 100 * kMillisecond;
  const auto verdict = decide_scope(policy, inputs);
  EXPECT_NE(verdict.scope, RemapScope::kPatch);
}

// --- state -----------------------------------------------------------------

TEST(MappingState, RegisterPatchDepartKeepInvariants) {
  MappingState state(tiny_machine());
  DeltaStats stats;
  const std::size_t a =
      state.register_workload("a", "astro", 1.0 / 16.0, 2, nullptr, &stats);
  auto plan = state.build_patch(a);
  state.apply_patch(plan);
  state.check_invariants();
  EXPECT_EQ(state.num_live_workloads(), 1u);
  EXPECT_GT(state.standing_chunks(), 0u);
  EXPECT_GT(state.total_load(), 0u);

  const std::size_t b =
      state.register_workload("b", "hf", 1.0 / 16.0, 2, nullptr, &stats);
  plan = state.build_patch(b);
  // Distinct data keys never share tag bits, so b's chunks are brand-new
  // components: the plan is all new clusters, no appends.
  EXPECT_TRUE(plan.appends.empty());
  EXPECT_FALSE(plan.new_clusters.empty());
  const double predicted = state.simulate_patch(plan);
  state.apply_patch(plan);
  state.check_invariants();
  EXPECT_DOUBLE_EQ(state.imbalance(), predicted);

  const std::uint64_t load_with_b = state.total_load();
  state.depart_workload(b);
  state.check_invariants();
  EXPECT_EQ(state.num_live_workloads(), 1u);
  EXPECT_LT(state.total_load(), load_with_b);
  // Every posting and cluster member of b is gone.
  for (const auto& cluster : state.clusters()) {
    for (const auto member : cluster.members) {
      EXPECT_EQ(state.entries()[0].id, "a");
      EXPECT_LT(member, state.entries()[0].num_chunks);
    }
  }
}

TEST(MappingState, SameDataKeyInstancesShareTagRange) {
  MappingState state(tiny_machine());
  DeltaStats stats;
  const std::size_t a =
      state.register_workload("a", "astro", 1.0 / 16.0, 2, nullptr, &stats);
  const std::size_t b =
      state.register_workload("b", "astro", 1.0 / 16.0, 2, nullptr, &stats);
  EXPECT_EQ(state.entries()[a].tag_offset, state.entries()[b].tag_offset);
  // The sibling copy path must produce identical chunk counts.
  EXPECT_EQ(state.entries()[a].num_chunks, state.entries()[b].num_chunks);

  const std::size_t c =
      state.register_workload("c", "hf", 1.0 / 16.0, 2, nullptr, &stats);
  EXPECT_NE(state.entries()[c].tag_offset, state.entries()[a].tag_offset);
}

TEST(MappingState, ScaleChangesCutTarget) {
  MappingState state(tiny_machine());
  DeltaStats stats;
  const std::size_t a =
      state.register_workload("a", "astro", 1.0 / 16.0, 2, nullptr, &stats);
  state.apply_patch(state.build_patch(a));
  const std::size_t before = state.cut_target();
  state.set_requested_clients(a, 6);
  EXPECT_EQ(state.cut_target(), std::min<std::size_t>(
                                    6, state.standing_chunks()));
  EXPECT_NE(state.cut_target(), before);
  state.recut_all();
  state.check_invariants();
  EXPECT_EQ(state.clusters().size(), state.cut_target());
}

TEST(MappingState, FailStopKillsClientAndOrphansMove) {
  MappingState state(tiny_machine());
  DeltaStats stats;
  const std::size_t a =
      state.register_workload("a", "astro", 1.0 / 16.0, 4, nullptr, &stats);
  state.apply_patch(state.build_patch(a));
  const std::size_t alive_before = state.num_alive_clients();

  state.apply_faults(resilience::parse_fault_spec("fail@0:l1.0"));
  EXPECT_EQ(state.num_alive_clients(), alive_before - 1);
  EXPECT_FALSE(state.client_alive()[0]);

  const std::size_t moved = state.replace_orphans();
  state.check_invariants();
  EXPECT_EQ(state.client_load()[0], 0u);
  for (const auto& cluster : state.clusters()) {
    EXPECT_NE(cluster.client, 0u);
  }
  (void)moved;

  // Recovery squashes out of the effective fault state.
  state.apply_faults(resilience::parse_fault_spec("recover@1:l1.0"));
  EXPECT_EQ(state.num_alive_clients(), alive_before);
  const auto effective = state.effective_faults();
  for (const auto& event : effective.events) {
    EXPECT_NE(event.kind, resilience::FaultKind::kFailStop);
  }
}

TEST(MappingState, EffectiveFaultsSquashToLastState) {
  MappingState state(tiny_machine());
  state.apply_faults(
      resilience::parse_fault_spec("transient@0:disk=0.5; fail@1:l2.0"));
  state.apply_faults(
      resilience::parse_fault_spec("transient@2:disk=0.01; recover@3:l2.0"));
  const auto effective = state.effective_faults();
  double disk_rate = -1;
  for (const auto& event : effective.events) {
    EXPECT_EQ(event.at, 0u);  // everything re-stamped at t=0
    EXPECT_NE(event.kind, resilience::FaultKind::kFailStop);
    if (event.kind == resilience::FaultKind::kTransient) {
      disk_rate = event.disk_error_rate;
    }
  }
  EXPECT_DOUBLE_EQ(disk_rate, 0.01);  // later transient replaces earlier
}

// --- service oracles -------------------------------------------------------

std::string end_fingerprint(const std::vector<ServeEvent>& events,
                            std::size_t threads,
                            ServePolicy::Force force,
                            std::vector<ServeDecision>* decisions = nullptr) {
  ServiceOptions options = tiny_options();
  options.num_threads = threads;
  options.policy.force = force;
  MappingService service(options);
  for (const auto& event : events) service.process(event);
  service.state().check_invariants();
  if (decisions) *decisions = service.decisions();
  return service.state().fingerprint();
}

TEST(MappingService, EndStateIsThreadCountInvariant) {
  const auto events = churn_events();
  std::vector<ServeDecision> d1;
  std::vector<ServeDecision> d2;
  std::vector<ServeDecision> d4;
  const std::string f1 =
      end_fingerprint(events, 1, ServePolicy::Force::kAuto, &d1);
  const std::string f2 =
      end_fingerprint(events, 2, ServePolicy::Force::kAuto, &d2);
  const std::string f4 =
      end_fingerprint(events, 4, ServePolicy::Force::kAuto, &d4);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f1, f4);
  ASSERT_EQ(d1.size(), d4.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].scope, d4[i].scope) << "event " << i;
    EXPECT_EQ(d1[i].reason, d4[i].reason) << "event " << i;
  }
}

TEST(MappingService, ForcedFullMatchesFromScratchAfterChurn) {
  // History: register a,b,c; depart b; register d — then one forced full.
  auto history = churn_events();
  ServeEvent full_probe = make_register(
      5 * kMillisecond, "probe", "hf", 1.0 / 16.0, 2);
  history.push_back(full_probe);

  ServiceOptions options = tiny_options();
  MappingService churned(options);
  for (const auto& event : history) churned.process(event);
  // Force the final full recompute directly.
  ServiceOptions forced = tiny_options();
  forced.policy.force = ServePolicy::Force::kFull;
  MappingService churned_full(forced);
  for (const auto& event : history) churned_full.process(event);

  // From scratch: only the live set, registered fresh, forced full.
  std::vector<ServeEvent> fresh;
  fresh.push_back(make_register(0, "a", "astro", 1.0 / 16.0, 2));
  fresh.push_back(make_register(1, "c", "astro", 1.0 / 16.0, 2));
  fresh.push_back(make_register(2, "d", "sar", 1.0 / 16.0, 2));
  fresh.push_back(make_register(3, "probe", "hf", 1.0 / 16.0, 2));
  MappingService scratch(tiny_options());
  for (const auto& event : fresh) scratch.process(event);

  const std::string churned_fp = churned_full.state().fingerprint();
  ServiceOptions scratch_full = tiny_options();
  scratch_full.policy.force = ServePolicy::Force::kFull;
  MappingService oracle(scratch_full);
  for (const auto& event : fresh) oracle.process(event);
  EXPECT_EQ(churned_fp, oracle.state().fingerprint());
  // And the incremental (auto) churned state covers the same chunks.
  EXPECT_EQ(churned.state().standing_chunks(),
            oracle.state().standing_chunks());
}

TEST(MappingService, JournalReplaysToIdenticalState) {
  const std::string journal_path =
      testing::TempDir() + "/serve_journal_test.jsonl";
  ServiceOptions options = tiny_options();
  options.journal_path = journal_path;
  std::string direct_fp;
  {
    MappingService service(options);
    for (const auto& event : churn_events()) service.process(event);
    direct_fp = service.state().fingerprint();
  }
  // The journal (with decision decoration) replays as an event stream.
  const auto replayed = load_event_stream(journal_path);
  ASSERT_EQ(replayed.size(), churn_events().size());
  MappingService replay(tiny_options());
  for (const auto& event : replayed) replay.process(event);
  EXPECT_EQ(replay.state().fingerprint(), direct_fp);
  std::remove(journal_path.c_str());
}

TEST(MappingService, PausesAndCountersAccumulate) {
  ServiceOptions options = tiny_options();
  MappingService service(options);
  for (const auto& event : churn_events()) service.process(event);
  EXPECT_EQ(service.decisions().size(), churn_events().size());
  Nanoseconds sum = 0;
  DeltaStats work;
  for (const auto& d : service.decisions()) {
    sum += d.pause;
    work += d.delta;
  }
  EXPECT_EQ(service.total_pause(), sum);
  EXPECT_GT(work.scored_pairs + work.forest_hooks, 0u);

  const obs::RunRecord record = service.snapshot();
  bool saw_workloads = false;
  bool saw_clients = false;
  bool saw_decisions = false;
  bool saw_totals = false;
  for (const auto& [name, table] : record.tables) {
    saw_workloads |= name == "serve_workloads";
    saw_clients |= name == "serve_clients";
    saw_decisions |= name == "serve_decisions";
    saw_totals |= name == "serve_totals";
  }
  EXPECT_TRUE(saw_workloads);
  EXPECT_TRUE(saw_clients);
  EXPECT_TRUE(saw_decisions);
  EXPECT_TRUE(saw_totals);
}

TEST(MappingService, UnknownDepartIdThrows) {
  MappingService service(tiny_options());
  EXPECT_THROW(service.process(make_depart(0, "ghost")), Error);
}

}  // namespace
}  // namespace mlsc::serve
