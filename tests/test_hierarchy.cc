#include "topology/hierarchy.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mlsc::topology {
namespace {

/// The paper's Fig. 7 example: 4 clients, 2 I/O nodes, 1 storage node.
HierarchyTree fig7_tree() {
  return make_layered_hierarchy(4, 2, 1, 32, 32, 32);
}

TEST(Hierarchy, Fig7Structure) {
  const auto tree = fig7_tree();
  EXPECT_EQ(tree.num_clients(), 4u);
  EXPECT_EQ(tree.num_levels(), 3u);  // SN -> IO -> CN
  EXPECT_EQ(tree.node(tree.root()).kind, NodeKind::kStorage);
  EXPECT_EQ(tree.level_nodes(1).size(), 2u);  // IO0, IO1
  EXPECT_EQ(tree.level_nodes(2).size(), 4u);
}

TEST(Hierarchy, DummyRootForMultipleStorageNodes) {
  const auto tree = make_layered_hierarchy(8, 4, 2, 32, 32, 32);
  EXPECT_EQ(tree.node(tree.root()).kind, NodeKind::kDummyRoot);
  EXPECT_EQ(tree.node(tree.root()).cache_capacity_bytes, 0u);
  EXPECT_EQ(tree.num_levels(), 4u);
  EXPECT_EQ(tree.level_nodes(1).size(), 2u);  // storage nodes
}

TEST(Hierarchy, PaperDefaultTopology) {
  const auto tree = make_layered_hierarchy(64, 32, 16, 1, 1, 1);
  EXPECT_EQ(tree.num_clients(), 64u);
  EXPECT_EQ(tree.level_nodes(1).size(), 16u);
  EXPECT_EQ(tree.level_nodes(2).size(), 32u);
  EXPECT_EQ(tree.level_nodes(3).size(), 64u);
  // Each IO node serves 64/32 = 2 clients; each storage node 2 IO nodes.
  EXPECT_EQ(tree.node(tree.level_nodes(2)[0]).children.size(), 2u);
  EXPECT_EQ(tree.node(tree.level_nodes(1)[0]).children.size(), 2u);
}

TEST(Hierarchy, ClientRankMatchesLeafOrder) {
  const auto tree = fig7_tree();
  for (std::size_t rank = 0; rank < tree.num_clients(); ++rank) {
    EXPECT_EQ(tree.client_rank(tree.clients()[rank]), rank);
    EXPECT_EQ(tree.node(tree.clients()[rank]).name,
              "CN" + std::to_string(rank));
  }
}

TEST(Hierarchy, AffinityAtSharedCaches) {
  const auto tree = fig7_tree();
  const NodeId cn0 = tree.clients()[0];
  const NodeId cn1 = tree.clients()[1];
  const NodeId cn2 = tree.clients()[2];
  // CN0 and CN1 share IO0's cache (their LCA).
  const NodeId shared01 = tree.deepest_shared_cache(cn0, cn1);
  EXPECT_EQ(tree.node(shared01).kind, NodeKind::kIo);
  // CN0 and CN2 only share the storage node cache.
  const NodeId shared02 = tree.deepest_shared_cache(cn0, cn2);
  EXPECT_EQ(tree.node(shared02).kind, NodeKind::kStorage);
  EXPECT_TRUE(tree.have_affinity(cn0, cn2));
}

TEST(Hierarchy, SelfAffinityIsPrivateCache) {
  const auto tree = fig7_tree();
  const NodeId cn0 = tree.clients()[0];
  EXPECT_EQ(tree.deepest_shared_cache(cn0, cn0), cn0);
}

TEST(Hierarchy, NoSharedCacheWithoutCapacities) {
  // Clients with caches only at the client level share nothing.
  HierarchyTree tree(NodeKind::kStorage, 0, "SN0");
  const auto io = tree.add_child(tree.root(), NodeKind::kIo, 0, "IO0");
  const auto a = tree.add_child(io, NodeKind::kCompute, 8, "CN0");
  const auto b = tree.add_child(io, NodeKind::kCompute, 8, "CN1");
  tree.finalize();
  EXPECT_FALSE(tree.have_affinity(a, b));
}

TEST(Hierarchy, PathToRoot) {
  const auto tree = fig7_tree();
  const auto path = tree.path_to_root(tree.clients()[3]);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.back(), tree.root());
}

TEST(Hierarchy, RejectsUnevenLayers) {
  EXPECT_THROW(make_layered_hierarchy(10, 4, 2, 1, 1, 1), mlsc::Error);
  EXPECT_THROW(make_layered_hierarchy(8, 3, 2, 1, 1, 1), mlsc::Error);
  EXPECT_THROW(make_layered_hierarchy(0, 1, 1, 1, 1, 1), mlsc::Error);
}

TEST(Hierarchy, RejectsChildrenUnderCompute) {
  HierarchyTree tree(NodeKind::kStorage, 0, "SN0");
  const auto cn = tree.add_child(tree.root(), NodeKind::kCompute, 8, "CN0");
  EXPECT_THROW(tree.add_child(cn, NodeKind::kCompute, 8, "X"), mlsc::Error);
}

TEST(Hierarchy, FinalizeRejectsInteriorComputeOrNonComputeLeaf) {
  HierarchyTree tree(NodeKind::kStorage, 0, "SN0");
  tree.add_child(tree.root(), NodeKind::kIo, 0, "IO0");  // leaf IO node
  EXPECT_THROW(tree.finalize(), mlsc::Error);
}

TEST(Hierarchy, ToStringShowsStructure) {
  const auto tree = fig7_tree();
  const auto s = tree.to_string();
  EXPECT_NE(s.find("SN0"), std::string::npos);
  EXPECT_NE(s.find("IO1"), std::string::npos);
  EXPECT_NE(s.find("CN3"), std::string::npos);
}

}  // namespace
}  // namespace mlsc::topology
