// Tests for the indirect-reference IR extension (paper §7 future work).
#include <gtest/gtest.h>

#include "core/data_space.h"
#include "core/tagging.h"
#include "poly/dependence.h"
#include "poly/loop_nest.h"
#include "support/check.h"

namespace mlsc::poly {
namespace {

Program gather_program() {
  // for e in 0..3: read nodes[idx[e]], write out[e]
  Program p;
  const auto nodes = p.add_array({"nodes", {8}, 64});
  const auto out = p.add_array({"out", {4}, 64});
  const auto idx = p.add_index_table({"idx", {5, 1, 1, 7}});
  LoopNest nest;
  nest.name = "gather";
  nest.space = IterationSpace({{0, 3}});
  ArrayRef gather;
  gather.array = nodes;
  gather.map = AccessMap::identity(1, {0});
  gather.index_table = idx;
  nest.refs = {
      gather,
      {out, AccessMap::identity(1, {0}), /*is_write=*/true},
  };
  p.add_nest(std::move(nest));
  return p;
}

TEST(Indirection, ResolveElementFollowsTable) {
  const auto p = gather_program();
  const auto& ref = p.nest(0).refs[0];
  EXPECT_EQ(resolve_element(p, ref, Iteration{0}), 5u);
  EXPECT_EQ(resolve_element(p, ref, Iteration{1}), 1u);
  EXPECT_EQ(resolve_element(p, ref, Iteration{2}), 1u);
  EXPECT_EQ(resolve_element(p, ref, Iteration{3}), 7u);
}

TEST(Indirection, DirectReferencesUnchanged) {
  const auto p = gather_program();
  const auto& ref = p.nest(0).refs[1];
  EXPECT_FALSE(ref.is_indirect());
  EXPECT_EQ(resolve_element(p, ref, Iteration{2}), 2u);
}

TEST(Indirection, ValidateAcceptsInBoundsTables) {
  EXPECT_NO_THROW(gather_program().validate());
}

TEST(Indirection, ValidateRejectsOutOfBoundsEntry) {
  auto p = gather_program();
  p.index_tables[0].values[2] = 8;  // nodes has 8 elements: 0..7
  EXPECT_THROW(p.validate(), mlsc::Error);
}

TEST(Indirection, ValidateRejectsShortTable) {
  auto p = gather_program();
  p.index_tables[0].values.resize(2);  // loop runs to position 3
  EXPECT_THROW(p.validate(), mlsc::Error);
}

TEST(Indirection, TagsFollowGatheredFootprint) {
  const auto p = gather_program();
  const core::DataSpace space(p, 64);  // one element per chunk
  const std::vector<NestId> nests{0};
  const auto result = core::compute_iteration_chunks(p, space, nests);
  // Iteration 0 touches nodes[5] (chunk 5) and out[0] (chunk 8).
  bool found = false;
  for (const auto& chunk : result.chunks) {
    if (chunk.first_rank() == 0) {
      EXPECT_TRUE(chunk.tag.test(5));
      EXPECT_TRUE(chunk.tag.test(8));
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Iterations 1 and 2 share nodes[1]: their chunks' tags share bit 1.
  std::size_t sharers = 0;
  for (const auto& chunk : result.chunks) {
    if (chunk.tag.test(1)) ++sharers;
  }
  EXPECT_GE(sharers, 1u);
}

TEST(Indirection, WritesThroughTablesAreConservativeDeps) {
  // scatter: write nodes[idx[e]], read nodes[e]: must be a "*" dep.
  Program p;
  const auto nodes = p.add_array({"nodes", {8}, 64});
  const auto idx = p.add_index_table({"idx", {5, 1, 1, 7}});
  LoopNest nest;
  nest.space = IterationSpace({{0, 3}});
  ArrayRef scatter;
  scatter.array = nodes;
  scatter.map = AccessMap::identity(1, {0});
  scatter.index_table = idx;
  scatter.is_write = true;
  nest.refs = {
      scatter,
      {nodes, AccessMap::identity(1, {0}), false},
  };
  p.add_nest(std::move(nest));
  const auto deps = find_dependences(p.nest(0));
  ASSERT_FALSE(deps.empty());
  for (const auto& dep : deps) {
    for (const auto& d : dep.distance) {
      EXPECT_FALSE(d.has_value()) << "indirect deps must be unknown";
    }
  }
}

TEST(Indirection, ReadOnlyGatherHasNoDeps) {
  const auto p = gather_program();
  EXPECT_TRUE(find_dependences(p.nest(0)).empty());
}

}  // namespace
}  // namespace mlsc::poly
