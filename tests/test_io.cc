// Tests for the I/O substrate: disk model, network model, striping.
#include <gtest/gtest.h>

#include "io/disk.h"
#include "io/network.h"
#include "io/striping.h"
#include "support/check.h"

namespace mlsc::io {
namespace {

TEST(Disk, RotationalDelayFromRpm) {
  DiskParams params;
  params.rpm = 10'000;  // Table 1
  const DiskModel disk(params);
  // Half a revolution at 10k RPM = 3 ms.
  EXPECT_EQ(disk.rotational_delay(), 3 * kMillisecond);
}

TEST(Disk, SeekClassOrdering) {
  const DiskModel disk(DiskParams{});
  const auto seq = disk.service_time(64 * kKiB, SeekClass::kSequential);
  const auto near = disk.service_time(64 * kKiB, SeekClass::kNear);
  const auto far = disk.service_time(64 * kKiB, SeekClass::kFar);
  EXPECT_LT(seq, near);
  EXPECT_LT(near, far);
}

TEST(Disk, TransferScalesWithBytes) {
  const DiskModel disk(DiskParams{});
  const auto small = disk.service_time(64 * kKiB, SeekClass::kFar);
  const auto large = disk.service_time(1 * kMiB, SeekClass::kFar);
  EXPECT_GT(large, small);
}

TEST(Disk, ClassifySeekByDistance) {
  DiskParams params;
  params.near_window_chunks = 100;
  const DiskModel disk(params);
  EXPECT_EQ(disk.classify_seek(10, 11), SeekClass::kSequential);
  EXPECT_EQ(disk.classify_seek(11, 10), SeekClass::kSequential);
  EXPECT_EQ(disk.classify_seek(10, 10), SeekClass::kSequential);
  EXPECT_EQ(disk.classify_seek(10, 60), SeekClass::kNear);
  EXPECT_EQ(disk.classify_seek(10, 111), SeekClass::kFar);
}

TEST(Disk, RejectsBadParams) {
  DiskParams params;
  params.rpm = 0;
  EXPECT_THROW(DiskModel{params}, mlsc::Error);
  params = DiskParams{};
  params.sequential_discount = 1.5;
  EXPECT_THROW(DiskModel{params}, mlsc::Error);
}

TEST(Network, HopsAddLatency) {
  const NetworkModel net(NetworkParams{});
  const auto local = net.local_copy_time(64 * kKiB);
  const auto one_hop = net.transfer_time(64 * kKiB, 1);
  const auto two_hops = net.transfer_time(64 * kKiB, 2);
  EXPECT_LT(local, one_hop);
  EXPECT_LT(one_hop, two_hops);
  EXPECT_EQ(net.transfer_time(64 * kKiB, 0), local);
}

TEST(Striping, RoundRobinAcrossStorageNodes) {
  // Table 1: stripe size 64 KB across 16 storage nodes; chunk == stripe.
  const StripingLayout layout(64 * kKiB, 64 * kKiB, 16);
  for (std::uint64_t chunk = 0; chunk < 64; ++chunk) {
    EXPECT_EQ(layout.storage_node_of_chunk(chunk), chunk % 16);
  }
}

TEST(Striping, WideStripesGroupChunks) {
  // 256 KB stripes of 64 KB chunks: 4 consecutive chunks per node.
  const StripingLayout layout(256 * kKiB, 64 * kKiB, 4);
  EXPECT_EQ(layout.storage_node_of_chunk(0), 0u);
  EXPECT_EQ(layout.storage_node_of_chunk(3), 0u);
  EXPECT_EQ(layout.storage_node_of_chunk(4), 1u);
  EXPECT_TRUE(layout.sequential_on_disk(0, 1));
  EXPECT_FALSE(layout.sequential_on_disk(3, 4));  // different nodes
}

TEST(Striping, RejectsBadParams) {
  EXPECT_THROW(StripingLayout(0, 64, 4), mlsc::Error);
  EXPECT_THROW(StripingLayout(64, 64, 0), mlsc::Error);
}

}  // namespace
}  // namespace mlsc::io
