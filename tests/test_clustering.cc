#include "core/clustering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/check.h"

namespace mlsc::core {
namespace {

IterationChunk make_chunk(poly::NestId nest, std::uint64_t begin,
                          std::uint64_t end,
                          std::vector<std::uint32_t> bits) {
  IterationChunk c;
  c.nest = nest;
  c.tag = ChunkTag::from_bits(std::move(bits));
  c.ranges = {poly::LinearRange{begin, end}};
  c.iterations = end - begin;
  return c;
}

/// The paper's worked example (Fig. 6/8): 8 iteration chunks of d
/// iterations each; γ1..γ8 tags over 12 data chunks.  d = 8 here.
std::vector<IterationChunk> fig8_chunks() {
  const std::uint64_t d = 8;
  std::vector<std::vector<std::uint32_t>> tags = {
      {0, 2, 4},     // γ1  101010000000
      {0, 1, 3, 5},  // γ2  110101000000
      {0, 2, 4, 6},  // γ3  101010100000
      {0, 3, 5, 7},  // γ4  100101010000
      {0, 4, 6, 8},  // γ5  100010101000
      {0, 5, 7, 9},  // γ6  100001010100
      {0, 6, 8, 10},  // γ7 100000101010
      {0, 7, 9, 11},  // γ8 100000010101
  };
  std::vector<IterationChunk> chunks;
  for (std::size_t i = 0; i < tags.size(); ++i) {
    chunks.push_back(
        make_chunk(0, i * d, (i + 1) * d, std::move(tags[i])));
  }
  return chunks;
}

TEST(Cluster, SingletonAndAbsorb) {
  auto chunks = fig8_chunks();
  auto a = Cluster::singleton(0, chunks[0]);
  EXPECT_EQ(a.iterations, 8u);
  EXPECT_EQ(a.members, (std::vector<std::uint32_t>{0}));
  auto b = Cluster::singleton(2, chunks[2]);
  a.absorb(std::move(b));
  EXPECT_EQ(a.iterations, 16u);
  EXPECT_EQ(a.tag.count_at(0), 2u);
  EXPECT_EQ(a.tag.count_at(6), 1u);
}

TEST(Cluster, RemoveMember) {
  auto chunks = fig8_chunks();
  auto c = Cluster::singleton(0, chunks[0]);
  c.add_member(1, chunks[1]);
  c.remove_member(0, chunks[0]);
  EXPECT_EQ(c.members, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(c.iterations, 8u);
  EXPECT_THROW(c.remove_member(0, chunks[0]), mlsc::Error);
}

/// Level-1 clustering of the worked example: the paper's Fig. 9 groups
/// the odd chunks {γ1,γ3,γ5,γ7} on one I/O node and the even chunks
/// {γ2,γ4,γ6,γ8} on the other.
TEST(Clustering, PaperFig9FirstLevel) {
  auto chunks = fig8_chunks();
  std::vector<std::uint32_t> all{0, 1, 2, 3, 4, 5, 6, 7};
  auto clusters = make_singletons(all, chunks);
  cluster_to_count(clusters, 2, chunks);
  ASSERT_EQ(clusters.size(), 2u);

  std::set<std::uint32_t> a(clusters[0].members.begin(),
                            clusters[0].members.end());
  std::set<std::uint32_t> b(clusters[1].members.begin(),
                            clusters[1].members.end());
  const std::set<std::uint32_t> odd{0, 2, 4, 6};   // γ1 γ3 γ5 γ7
  const std::set<std::uint32_t> even{1, 3, 5, 7};  // γ2 γ4 γ6 γ8
  EXPECT_TRUE((a == odd && b == even) || (a == even && b == odd))
      << "clusters do not match the paper's Fig. 9 families";
}

/// Second level: each I/O cluster splits into the Fig. 9 client pairs.
TEST(Clustering, PaperFig9SecondLevel) {
  auto chunks = fig8_chunks();
  std::vector<std::uint32_t> odd{0, 2, 4, 6};
  auto clusters = make_singletons(odd, chunks);
  cluster_to_count(clusters, 2, chunks);
  ASSERT_EQ(clusters.size(), 2u);
  std::set<std::uint32_t> a(clusters[0].members.begin(),
                            clusters[0].members.end());
  const std::set<std::uint32_t> low{0, 2};   // γ1, γ3 -> one client
  const std::set<std::uint32_t> high{4, 6};  // γ5, γ7 -> the other
  EXPECT_TRUE(a == low || a == high);
}

TEST(Clustering, MergeReducesToTarget) {
  auto chunks = fig8_chunks();
  std::vector<std::uint32_t> all{0, 1, 2, 3, 4, 5, 6, 7};
  auto clusters = make_singletons(all, chunks);
  cluster_to_count(clusters, 3, chunks);
  EXPECT_EQ(clusters.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& c : clusters) total += c.iterations;
  EXPECT_EQ(total, 64u);
}

TEST(Clustering, SplitsWhenTooFewClusters) {
  // One chunk, four clients: Fig. 5's "case when the current number of
  // clusters is less than the required number" — split continually.
  std::vector<IterationChunk> chunks{make_chunk(0, 0, 100, {1, 2})};
  std::vector<std::uint32_t> all{0};
  auto clusters = make_singletons(all, chunks);
  cluster_to_count(clusters, 4, chunks);
  EXPECT_EQ(clusters.size(), 4u);
  EXPECT_GT(chunks.size(), 1u);  // chunk table grew via splits
  std::uint64_t total = 0;
  for (const auto& c : clusters) {
    total += c.iterations;
    EXPECT_GE(c.iterations, 25u - 13u);  // roughly balanced halving
  }
  EXPECT_EQ(total, 100u);
}

TEST(Clustering, ZeroSharingMergesRankAdjacent) {
  // Four disjoint-tag chunks: the fallback should merge rank neighbours,
  // keeping the sequential order (disk-sequential) grouping.
  std::vector<IterationChunk> chunks{
      make_chunk(0, 0, 10, {0}),
      make_chunk(0, 10, 20, {1}),
      make_chunk(0, 20, 30, {2}),
      make_chunk(0, 30, 40, {3}),
  };
  std::vector<std::uint32_t> all{0, 1, 2, 3};
  auto clusters = make_singletons(all, chunks);
  cluster_to_count(clusters, 2, chunks);
  ASSERT_EQ(clusters.size(), 2u);
  for (auto& c : clusters) {
    std::sort(c.members.begin(), c.members.end());
  }
  const auto& a = clusters[0].members.front() == 0 ? clusters[0] : clusters[1];
  EXPECT_EQ(a.members, (std::vector<std::uint32_t>{0, 1}));
}

TEST(Clustering, TargetOneMergesEverything) {
  auto chunks = fig8_chunks();
  std::vector<std::uint32_t> all{0, 1, 2, 3};
  auto clusters = make_singletons(all, chunks);
  cluster_to_count(clusters, 1, chunks);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 4u);
}

TEST(Clustering, RejectsEmptyInput) {
  std::vector<IterationChunk> chunks;
  std::vector<Cluster> clusters;
  EXPECT_THROW(cluster_to_count(clusters, 1, chunks), mlsc::Error);
}

ClusterOptions forest_options() {
  ClusterOptions options;
  options.algorithm = ClusterOptions::Algorithm::kForest;
  return options;
}

/// The affinity forest reproduces the paper's level-1 families on the
/// worked example: the best-neighbor forest connects the odd and even
/// chains, and the cut severs the single weakest cross edge.
TEST(Clustering, ForestMatchesFig9FirstLevel) {
  auto chunks = fig8_chunks();
  std::vector<std::uint32_t> all{0, 1, 2, 3, 4, 5, 6, 7};
  auto clusters = make_singletons(all, chunks);
  cluster_to_count(clusters, 2, chunks, nullptr, forest_options());
  ASSERT_EQ(clusters.size(), 2u);
  std::set<std::uint32_t> a(clusters[0].members.begin(),
                            clusters[0].members.end());
  std::set<std::uint32_t> b(clusters[1].members.begin(),
                            clusters[1].members.end());
  const std::set<std::uint32_t> odd{0, 2, 4, 6};
  const std::set<std::uint32_t> even{1, 3, 5, 7};
  EXPECT_TRUE((a == odd && b == even) || (a == even && b == odd));
}

TEST(Clustering, ForestReducesToTargetPreservingTotals) {
  auto chunks = fig8_chunks();
  std::vector<std::uint32_t> all{0, 1, 2, 3, 4, 5, 6, 7};
  auto clusters = make_singletons(all, chunks);
  cluster_to_count(clusters, 3, chunks, nullptr, forest_options());
  ASSERT_EQ(clusters.size(), 3u);
  std::uint64_t total = 0;
  std::set<std::uint32_t> seen;
  for (const auto& c : clusters) {
    total += c.iterations;
    seen.insert(c.members.begin(), c.members.end());
  }
  EXPECT_EQ(total, 64u);
  EXPECT_EQ(seen.size(), 8u);  // every member survives exactly once
}

TEST(Clustering, ForestZeroSharingMergesRankAdjacent) {
  // Disconnected graph: the forest has no edges at all, so the whole
  // reduction runs through the rank-adjacent fallback.
  std::vector<IterationChunk> chunks{
      make_chunk(0, 0, 10, {0}),
      make_chunk(0, 10, 20, {1}),
      make_chunk(0, 20, 30, {2}),
      make_chunk(0, 30, 40, {3}),
  };
  std::vector<std::uint32_t> all{0, 1, 2, 3};
  auto clusters = make_singletons(all, chunks);
  cluster_to_count(clusters, 2, chunks, nullptr, forest_options());
  ASSERT_EQ(clusters.size(), 2u);
  for (auto& c : clusters) std::sort(c.members.begin(), c.members.end());
  const auto& a = clusters[0].members.front() == 0 ? clusters[0] : clusters[1];
  EXPECT_EQ(a.members, (std::vector<std::uint32_t>{0, 1}));
}

TEST(Clustering, ForestBalancedCutAvoidsGiantComponent) {
  // A chain a0-a1-...-a63 (each adjacent pair shares one data chunk) is
  // single-linkage's worst case: an uncapped cut would put everything in
  // one component.  The balance-aware cut must keep both sides near
  // half.
  std::vector<IterationChunk> chunks;
  for (std::uint32_t i = 0; i < 64; ++i) {
    chunks.push_back(make_chunk(0, i * 10, (i + 1) * 10, {i, i + 1}));
  }
  std::vector<std::uint32_t> all(64);
  for (std::uint32_t i = 0; i < 64; ++i) all[i] = i;
  auto clusters = make_singletons(all, chunks);
  cluster_to_count(clusters, 2, chunks, nullptr, forest_options());
  ASSERT_EQ(clusters.size(), 2u);
  const std::uint64_t cap =
      static_cast<std::uint64_t>(640.0 / 2.0 * 1.1);
  EXPECT_LE(clusters[0].iterations, cap);
  EXPECT_LE(clusters[1].iterations, cap);
}

TEST(Clustering, AutoUsesGreedyBelowThresholdForestAbove) {
  // kAuto must route small inputs to the greedy oracle: identical result
  // to an explicit kGreedy run on the worked example.
  auto chunks_auto = fig8_chunks();
  auto chunks_greedy = fig8_chunks();
  std::vector<std::uint32_t> all{0, 1, 2, 3, 4, 5, 6, 7};
  auto auto_clusters = make_singletons(all, chunks_auto);
  auto greedy_clusters = make_singletons(all, chunks_greedy);
  ClusterOptions greedy;
  greedy.algorithm = ClusterOptions::Algorithm::kGreedy;
  cluster_to_count(auto_clusters, 3, chunks_auto);  // default: kAuto
  cluster_to_count(greedy_clusters, 3, chunks_greedy, nullptr, greedy);
  ASSERT_EQ(auto_clusters.size(), greedy_clusters.size());
  for (std::size_t i = 0; i < auto_clusters.size(); ++i) {
    EXPECT_EQ(auto_clusters[i].members, greedy_clusters[i].members);
  }

  // And a forest_threshold of 0 routes everything to the forest.
  auto chunks_forest = fig8_chunks();
  auto forest_clusters = make_singletons(all, chunks_forest);
  ClusterOptions forced_auto;
  forced_auto.forest_threshold = 0;
  cluster_to_count(forest_clusters, 2, chunks_forest, nullptr, forced_auto);
  ASSERT_EQ(forest_clusters.size(), 2u);
}

}  // namespace
}  // namespace mlsc::core
