// Tests for the small support utilities: checks, stats, strings, tables,
// units, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "support/argparse.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/string_util.h"
#include "support/table.h"
#include "support/units.h"

namespace mlsc {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    MLSC_CHECK(1 == 2, "math is broken: " << 42);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math is broken: 42"),
              std::string::npos);
  }
}

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(MLSC_CHECK(true, "never"));
}

TEST(RunningStats, ComputesMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_NEAR(geomean_of({1.0, 8.0}), 2.8284, 1e-3);
  EXPECT_THROW(geomean_of({1.0, 0.0}), Error);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile_of(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 25), 2.0);
  EXPECT_THROW(percentile_of({}, 50), Error);
}

TEST(Stats, PercentImprovement) {
  EXPECT_DOUBLE_EQ(percent_improvement(100.0, 74.0), 26.0);
  EXPECT_DOUBLE_EQ(percent_improvement(0.0, 5.0), 0.0);
}

TEST(StringUtil, JoinSplitPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(split("x,y,z", ','), (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
}

TEST(Table, PrintsAlignedAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row_numeric("beta", {2.5}, 1);
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream text;
  t.print(text);
  EXPECT_NE(text.str().find("| alpha |"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1\nbeta,2.5\n");
}

TEST(Table, QuotesCsvFields) {
  Table t({"a"});
  t.add_row({"x,y\"z"});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a\n\"x,y\"\"z\"\n");
}

TEST(Table, RejectsBadRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Json, QuoteEscapesSpecials) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_quote(std::string("nul\0byte", 8)), "\"nul\\u0000byte\"");
  EXPECT_EQ(json_quote("\x01\x1f"), "\"\\u0001\\u001f\"");
}

TEST(Json, QuoteUnquoteRoundTrips) {
  const std::string cases[] = {
      "",
      "plain",
      "quote \" backslash \\ slash /",
      "controls \b\f\n\r\t",
      std::string("embedded\0nul", 12),
      "\x01\x02\x1e\x1f",
      "mixed \"x\\\ty\n\" end",
  };
  for (const std::string& s : cases) {
    EXPECT_EQ(json_unquote(json_quote(s)), s) << json_quote(s);
  }
}

TEST(Json, NumberRendersNonFiniteAsNull) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(Json, TablePrintJsonEscapesCells) {
  Table t({"name", "value"});
  t.add_row({"weird \"cell\"\n", "1"});
  std::ostringstream out;
  t.print_json(out, "title\twith tab");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"weird \\\"cell\\\"\\n\""), std::string::npos);
  EXPECT_NE(json.find("\"title\\twith tab\""), std::string::npos);
}

TEST(Units, FormatsBytesAndTime) {
  EXPECT_EQ(format_bytes(64 * kKiB), "64 KiB");
  EXPECT_EQ(format_bytes(2 * kGiB), "2 GiB");
  EXPECT_EQ(format_bytes(500), "500 B");
  EXPECT_EQ(format_time(1500), "1.50 us");
  EXPECT_EQ(format_time(2 * kSecond), "2 s");
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(c.next_below(17), 17u);
    const double d = c.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ArgParser drives every mlsc_* tool's CLI; misuse must throw UsageError
// (mapped to kUsageExitCode by the tools), never crash or mis-parse.
ArgParser make_parser(std::vector<std::string>& storage,
                      std::vector<char*>& argv) {
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, AcceptsBothValueForms) {
  std::vector<std::string> args{"tool", "--size=16", "--reps", "3", "--csv"};
  std::vector<char*> argv;
  auto parser = make_parser(args, argv);
  ASSERT_TRUE(parser.next());
  ASSERT_TRUE(parser.value_flag("--size"));
  EXPECT_EQ(parser.value_u64(), 16u);
  ASSERT_TRUE(parser.next());
  ASSERT_TRUE(parser.value_flag("--reps"));
  EXPECT_EQ(parser.value_u64(), 3u);
  ASSERT_TRUE(parser.next());
  EXPECT_TRUE(parser.flag("--csv"));
  EXPECT_FALSE(parser.next());
}

TEST(ArgParser, ThrowsUsageErrorOnMisuse) {
  {
    std::vector<std::string> args{"tool", "--size"};
    std::vector<char*> argv;
    auto parser = make_parser(args, argv);
    ASSERT_TRUE(parser.next());
    EXPECT_THROW(parser.value_flag("--size"), UsageError);  // missing value
  }
  {
    std::vector<std::string> args{"tool", "--size=16x", "--rate=fast"};
    std::vector<char*> argv;
    auto parser = make_parser(args, argv);
    ASSERT_TRUE(parser.next());
    ASSERT_TRUE(parser.value_flag("--size"));
    EXPECT_THROW(parser.value_u64(), UsageError);  // trailing garbage
    ASSERT_TRUE(parser.next());
    ASSERT_TRUE(parser.value_flag("--rate"));
    EXPECT_THROW(parser.value_double(), UsageError);
  }
  {
    std::vector<std::string> args{"tool", "--bogus"};
    std::vector<char*> argv;
    auto parser = make_parser(args, argv);
    ASSERT_TRUE(parser.next());
    EXPECT_THROW(parser.unknown(), UsageError);
  }
}

TEST(ArgParser, ValueFlagDistinguishesPrefixes) {
  // "--size" must not swallow "--size-factor=2".
  std::vector<std::string> args{"tool", "--size-factor=2"};
  std::vector<char*> argv;
  auto parser = make_parser(args, argv);
  ASSERT_TRUE(parser.next());
  EXPECT_FALSE(parser.value_flag("--size"));
  ASSERT_TRUE(parser.value_flag("--size-factor"));
  EXPECT_DOUBLE_EQ(parser.value_double(), 2.0);
}

}  // namespace
}  // namespace mlsc
