// Tests for the self-contained HTML run report renderer behind
// tools/mlsc_report: well-formedness, section presence, the per-client
// stall breakdown built from a trace, and the no-external-assets rule.
#include <gtest/gtest.h>

#include <string>

#include "obs/report_html.h"
#include "support/json.h"

namespace mlsc::obs {
namespace {

const char* kRecord = R"json({
  "schema": "mlsc-run-record-v1",
  "binary": "bench_test",
  "metadata": {"machine": "paper default <64/32/16>", "apps": ["hf", "sar"],
               "hardware_threads": 8, "build_type": "Release",
               "repetitions": 3},
  "phases": [
    {"name": "hf/inter", "wall_ms": 120.5},
    {"name": "sar/inter", "wall_ms": 80.25}
  ],
  "tables": [
    {"title": "cache levels",
     "header": ["level", "accesses", "misses", "miss %"],
     "rows": [["L1 (compute)", "1000", "50", "5.0"],
              ["L2 (I/O)", "50", "40", "80.0"]]}
  ],
  "metrics": {
    "counters": {"pipeline.balance_moves": 17},
    "gauges": {"g.load": 0.5},
    "histograms": {
      "engine.access_latency_ns": {
        "bounds": [100, 1000], "counts": [5, 3, 2], "count": 10,
        "sum": 4200,
        "quantiles": {"p50": 350.0, "p90": 900.0, "p99": 1000.0}}
    }
  }
})json";

// Two clients with complete ('X') events on client pids; pid 0 is the
// host track and must be ignored.
const char* kTrace = R"({
  "displayTimeUnit": "ns",
  "traceEvents": [
    {"ph": "X", "pid": 0, "tid": 0, "name": "compute", "ts": 0, "dur": 9},
    {"ph": "X", "pid": 1, "tid": 0, "name": "compute", "ts": 0, "dur": 100},
    {"ph": "X", "pid": 1, "tid": 0, "name": "disk", "ts": 100, "dur": 400},
    {"ph": "X", "pid": 2, "tid": 0, "name": "l1 hit", "ts": 0, "dur": 50},
    {"ph": "X", "pid": 2, "tid": 0, "name": "sync wait", "ts": 50, "dur": 25},
    {"ph": "M", "pid": 1, "name": "process_name",
     "args": {"name": "client 0"}}
  ]
})";

/// Every <tag> has a matching </tag> (void elements excluded).
void expect_balanced(const std::string& html, const std::string& tag) {
  std::size_t opens = 0;
  for (std::size_t pos = html.find("<" + tag);
       pos != std::string::npos; pos = html.find("<" + tag, pos + 1)) {
    const char next = html[pos + tag.size() + 1];
    if (next == '>' || next == ' ' || next == '\n') ++opens;
  }
  std::size_t closes = 0;
  for (std::size_t pos = html.find("</" + tag + ">");
       pos != std::string::npos;
       pos = html.find("</" + tag + ">", pos + 1)) {
    ++closes;
  }
  EXPECT_EQ(opens, closes) << "unbalanced <" << tag << ">";
}

TEST(ReportHtml, WellFormedAndSelfContained) {
  const JsonValue record = parse_json(kRecord);
  const std::string html = render_html_report(record);
  EXPECT_EQ(html.rfind("<!doctype html>", 0), 0u);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  for (const char* tag : {"html", "head", "body", "section", "table",
                          "style", "div", "span", "h1", "h2"}) {
    expect_balanced(html, tag);
  }
  // Self-contained: no external fetches of any kind.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<script src"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("@import"), std::string::npos);
}

TEST(ReportHtml, RendersRecordSections) {
  const std::string html = render_html_report(parse_json(kRecord));
  EXPECT_NE(html.find("id=\"metadata\""), std::string::npos);
  EXPECT_NE(html.find("id=\"phases\""), std::string::npos);
  EXPECT_NE(html.find("id=\"tables\""), std::string::npos);
  EXPECT_NE(html.find("id=\"metrics\""), std::string::npos);
  // Machine metadata is escaped, not injected.
  EXPECT_NE(html.find("&lt;64/32/16&gt;"), std::string::npos);
  EXPECT_EQ(html.find("<64/32/16>"), std::string::npos);
  // Table cells and histogram quantiles make it through.
  EXPECT_NE(html.find("L1 (compute)"), std::string::npos);
  EXPECT_NE(html.find("engine.access_latency_ns"), std::string::npos);
  EXPECT_NE(html.find("hf/inter"), std::string::npos);
  // No trace given: no stall section.
  EXPECT_EQ(html.find("id=\"stall\""), std::string::npos);
}

TEST(ReportHtml, StallSectionAggregatesPerClient) {
  const JsonValue record = parse_json(kRecord);
  const JsonValue trace = parse_json(kTrace);
  const std::string html = render_html_report(record, &trace);
  EXPECT_NE(html.find("id=\"stall\""), std::string::npos);
  // One row per client pid at or above kClientPidBase.
  EXPECT_NE(html.find("client 0"), std::string::npos);
  EXPECT_NE(html.find("client 1"), std::string::npos);
  EXPECT_EQ(html.find("client 2"), std::string::npos);
  // Category legend entries present.
  for (const char* cat : {"compute", "disk", "l1 hit", "sync wait"}) {
    EXPECT_NE(html.find(cat), std::string::npos);
  }
  for (const char* tag : {"section", "div", "table"}) {
    expect_balanced(html, tag);
  }
}

TEST(ReportHtml, HeadroomPanelRendersPercentOfOptimalBars) {
  // A record carrying headroom_pct columns (bench_headroom /
  // mlsc_headroom output) gets the dedicated "% of optimal" panel with
  // one absolute-scale bar per (row, level) pair.
  const char* record_text = R"json({
    "schema": "mlsc-run-record-v1",
    "binary": "bench_headroom",
    "tables": [
      {"title": "headroom",
       "header": ["workload", "l1_bytes_moved", "l1_io_lower_bound",
                  "l1_headroom_pct", "l2_bytes_moved", "l2_io_lower_bound",
                  "l2_headroom_pct"],
       "rows": [["sar", "4096", "2048", "50.00", "2048", "2048",
                 "100.00"]]}
    ]
  })json";
  const std::string html = render_html_report(parse_json(record_text));
  EXPECT_NE(html.find("id=\"headroom\""), std::string::npos);
  EXPECT_NE(html.find("% of optimal"), std::string::npos);
  EXPECT_NE(html.find("sar l1"), std::string::npos);
  EXPECT_NE(html.find("sar l2"), std::string::npos);
  for (const char* tag : {"section", "div", "table"}) {
    expect_balanced(html, tag);
  }

  // No headroom columns anywhere: no panel.
  const std::string plain = render_html_report(parse_json(kRecord));
  EXPECT_EQ(plain.find("id=\"headroom\""), std::string::npos);
}

TEST(ReportHtml, EmptyHistogramRendersDashNotZeroBars) {
  const char* record_text = R"json({
    "schema": "mlsc-run-record-v1",
    "binary": "bench_test",
    "metrics": {
      "counters": {}, "gauges": {},
      "histograms": {
        "engine.access_latency_ns": {
          "bounds": [100, 1000], "counts": [0, 0, 0], "count": 0,
          "sum": 0,
          "quantiles": {"p50": null, "p90": null, "p99": null}}
      }
    }
  })json";
  const std::string html = render_html_report(parse_json(record_text));
  // Quantiles of an empty histogram show as an em-dash, never "0".
  EXPECT_NE(html.find("&mdash;"), std::string::npos);
  EXPECT_EQ(html.find("p50: 0"), std::string::npos);
  EXPECT_NE(html.find("no observations"), std::string::npos);
}

TEST(ReportHtml, EmptyRecordStillRenders) {
  const JsonValue record = parse_json(R"({"schema": "mlsc-run-record-v1"})");
  const std::string html = render_html_report(record);
  EXPECT_EQ(html.rfind("<!doctype html>", 0), 0u);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

}  // namespace
}  // namespace mlsc::obs
