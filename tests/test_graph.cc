#include "core/graph.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mlsc::core {
namespace {

IterationChunk make_chunk(std::uint64_t begin,
                          std::vector<std::uint32_t> bits) {
  IterationChunk c;
  c.tag = ChunkTag::from_bits(std::move(bits));
  c.ranges = {poly::LinearRange{begin, begin + 4}};
  c.iterations = 4;
  return c;
}

TEST(ChunkGraph, WeightsAreCommonBits) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0, 2, 4}),
      make_chunk(4, {0, 2, 4, 6}),
      make_chunk(8, {1, 3}),
  };
  const ChunkGraph graph(chunks);
  EXPECT_EQ(graph.num_nodes(), 3u);
  EXPECT_EQ(graph.weight(0, 1), 3u);
  EXPECT_EQ(graph.weight(0, 2), 0u);
  EXPECT_EQ(graph.weight(1, 0), 3u);  // symmetric
  EXPECT_EQ(graph.weight(0, 0), 0u);  // no self edges
}

TEST(ChunkGraph, EdgesOmitZeroWeights) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0}),
      make_chunk(4, {1}),
      make_chunk(8, {0, 1}),
  };
  const ChunkGraph graph(chunks);
  EXPECT_EQ(graph.edges().size(), 2u);  // (0,2) and (1,2) only
  EXPECT_EQ(graph.neighbors(2), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_TRUE(graph.neighbors(0).size() == 1);
}

TEST(ChunkGraph, InfiniteWeightForDependences) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0}),
      make_chunk(4, {1}),
  };
  ChunkGraph graph(chunks);
  EXPECT_EQ(graph.weight(0, 1), 0u);
  graph.set_infinite(0, 1);
  EXPECT_EQ(graph.weight(0, 1), GraphEdge::kInfiniteWeight);
  EXPECT_EQ(graph.edges().size(), 1u);
  EXPECT_EQ(graph.edges()[0].weight, GraphEdge::kInfiniteWeight);
}

TEST(ChunkGraph, DotRendering) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0, 1}),
      make_chunk(4, {1, 2}),
  };
  const ChunkGraph graph(chunks);
  const auto dot = graph.to_dot(chunks, 4);
  EXPECT_NE(dot.find("graph iteration_chunks"), std::string::npos);
  EXPECT_NE(dot.find("g0 -- g1"), std::string::npos);
  EXPECT_NE(dot.find("1100"), std::string::npos);  // γ0's tag
}

}  // namespace
}  // namespace mlsc::core
