#include "core/graph.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace mlsc::core {
namespace {

IterationChunk make_chunk(std::uint64_t begin,
                          std::vector<std::uint32_t> bits) {
  IterationChunk c;
  c.tag = ChunkTag::from_bits(std::move(bits));
  c.ranges = {poly::LinearRange{begin, begin + 4}};
  c.iterations = 4;
  return c;
}

TEST(ChunkGraph, WeightsAreCommonBits) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0, 2, 4}),
      make_chunk(4, {0, 2, 4, 6}),
      make_chunk(8, {1, 3}),
  };
  const ChunkGraph graph(chunks);
  EXPECT_EQ(graph.num_nodes(), 3u);
  EXPECT_EQ(graph.weight(0, 1), 3u);
  EXPECT_EQ(graph.weight(0, 2), 0u);
  EXPECT_EQ(graph.weight(1, 0), 3u);  // symmetric
  EXPECT_EQ(graph.weight(0, 0), 0u);  // no self edges
}

std::vector<std::uint32_t> neighbor_list(const ChunkGraph& graph,
                                         std::uint32_t node) {
  const auto span = graph.neighbors(node);
  return {span.begin(), span.end()};
}

TEST(ChunkGraph, EdgesOmitZeroWeights) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0}),
      make_chunk(4, {1}),
      make_chunk(8, {0, 1}),
  };
  const ChunkGraph graph(chunks);
  EXPECT_EQ(graph.edges().size(), 2u);  // (0,2) and (1,2) only
  EXPECT_EQ(neighbor_list(graph, 2), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(graph.degree(0), 1u);
}

TEST(ChunkGraph, InfiniteWeightForDependences) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0}),
      make_chunk(4, {1}),
  };
  ChunkGraph graph(chunks);
  EXPECT_EQ(graph.weight(0, 1), 0u);
  graph.set_infinite(0, 1);
  EXPECT_EQ(graph.weight(0, 1), GraphEdge::kInfiniteWeight);
  EXPECT_EQ(graph.weight(1, 0), GraphEdge::kInfiniteWeight);
  EXPECT_EQ(graph.edges().size(), 1u);
  EXPECT_EQ(graph.edges()[0].weight, GraphEdge::kInfiniteWeight);
  // The pinned edge shows up in both patched adjacency rows.
  EXPECT_EQ(neighbor_list(graph, 0), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(neighbor_list(graph, 1), (std::vector<std::uint32_t>{0}));
}

TEST(ChunkGraph, SetInfiniteOnExistingEdgeUpdatesInPlace) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0, 1}),
      make_chunk(4, {1, 2}),
      make_chunk(8, {2, 3}),
  };
  ChunkGraph graph(chunks);
  ASSERT_EQ(graph.weight(0, 1), 1u);
  graph.set_infinite(0, 1);
  EXPECT_EQ(graph.weight(0, 1), GraphEdge::kInfiniteWeight);
  EXPECT_EQ(graph.weight(1, 2), 1u);  // untouched edge keeps its weight
  EXPECT_EQ(graph.edges().size(), 2u);
  // Rows were updated in place, not patched.
  EXPECT_EQ(neighbor_list(graph, 1), (std::vector<std::uint32_t>{0, 2}));
}

TEST(ChunkGraph, ParallelSweepMatchesSerial) {
  Rng rng(7);
  std::vector<IterationChunk> chunks;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint32_t> bits;
    for (int k = 0; k < 6; ++k) {
      bits.push_back(static_cast<std::uint32_t>(rng.next_below(128)));
    }
    chunks.push_back(
        make_chunk(static_cast<std::uint64_t>(i) * 4, std::move(bits)));
  }
  const ChunkGraph serial(chunks);
  ThreadPool pool(4);
  GraphOptions options;
  options.pool = &pool;
  const ChunkGraph parallel(chunks, options);
  ASSERT_EQ(serial.edges().size(), parallel.edges().size());
  for (std::size_t i = 0; i < serial.edges().size(); ++i) {
    EXPECT_EQ(serial.edges()[i].a, parallel.edges()[i].a);
    EXPECT_EQ(serial.edges()[i].b, parallel.edges()[i].b);
    EXPECT_EQ(serial.edges()[i].weight, parallel.edges()[i].weight);
  }
}

TEST(ChunkGraph, LiftsOldNodeCap) {
  // >8192 nodes used to hit a hard MLSC_CHECK; the CSR build handles it.
  std::vector<IterationChunk> chunks;
  chunks.reserve(8300);
  for (std::uint32_t i = 0; i < 8300; ++i) {
    chunks.push_back(make_chunk(static_cast<std::uint64_t>(i) * 4,
                                {i % 64, (i + 1) % 64}));
  }
  const ChunkGraph graph(chunks);
  EXPECT_EQ(graph.num_nodes(), 8300u);
  EXPECT_GT(graph.num_edges(), 0u);
  GraphOptions tight;
  tight.max_nodes = 100;
  EXPECT_THROW(ChunkGraph(chunks, tight), Error);
}

std::vector<IterationChunk> random_chunks(std::size_t n, std::uint64_t seed,
                                          std::size_t width, int bits) {
  Rng rng(seed);
  std::vector<IterationChunk> chunks;
  chunks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint32_t> set;
    for (int k = 0; k < bits; ++k) {
      set.push_back(static_cast<std::uint32_t>(rng.next_below(width)));
    }
    chunks.push_back(
        make_chunk(static_cast<std::uint64_t>(i) * 4, std::move(set)));
  }
  return chunks;
}

void expect_same_graph(const ChunkGraph& a, const ChunkGraph& b) {
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].a, b.edges()[i].a);
    EXPECT_EQ(a.edges()[i].b, b.edges()[i].b);
    EXPECT_EQ(a.edges()[i].weight, b.edges()[i].weight);
  }
}

TEST(ChunkGraph, CandidateGenerationMatchesExactSweep) {
  // With every filter off, the inverted-index path must produce the
  // exact graph: a pair has nonzero weight iff it shares a data chunk,
  // which is precisely co-occurrence in a posting list.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto chunks = random_chunks(400, seed, 96, 5);
    const ChunkGraph candidate(chunks);
    GraphOptions exact_options;
    exact_options.exact = true;
    const ChunkGraph exact(chunks, exact_options);
    expect_same_graph(exact, candidate);
    EXPECT_FALSE(candidate.stats().exact);
    EXPECT_TRUE(exact.stats().exact);
    EXPECT_EQ(exact.stats().scored_pairs, exact.stats().total_pairs);
    EXPECT_LT(candidate.stats().scored_pairs,
              candidate.stats().total_pairs);
    EXPECT_EQ(candidate.stats().total_pairs, 400u * 399u / 2u);
  }
}

TEST(ChunkGraph, BandingProducesSubgraphWithExactWeights) {
  const auto chunks = random_chunks(300, 11, 64, 4);
  const ChunkGraph exact(chunks);
  GraphOptions banded_options;
  banded_options.banding.bands = 4;
  banded_options.banding.rows = 2;
  const ChunkGraph banded(chunks, banded_options);

  // Every banded edge exists in the exact graph with the same weight.
  EXPECT_LE(banded.num_edges(), exact.num_edges());
  for (const GraphEdge& e : banded.edges()) {
    EXPECT_EQ(e.weight, exact.weight(e.a, e.b));
  }
  EXPECT_GT(banded.stats().banding_pruned, 0u);
  EXPECT_EQ(banded.stats().scored_pairs + banded.stats().banding_pruned,
            exact.stats().scored_pairs);
}

TEST(ChunkGraph, HotPostingCapProducesSubgraph) {
  // One data chunk (bit 0) is shared by everyone; capping its posting
  // list prunes pairs that share only it.
  std::vector<IterationChunk> chunks;
  for (std::uint32_t i = 0; i < 40; ++i) {
    chunks.push_back(make_chunk(static_cast<std::uint64_t>(i) * 4,
                                {0u, 1u + i / 2u}));
  }
  const ChunkGraph exact(chunks);
  GraphOptions capped_options;
  capped_options.hot_posting_cap = 8;
  const ChunkGraph capped(chunks, capped_options);
  EXPECT_EQ(capped.stats().hot_postings_skipped, 1u);
  EXPECT_LT(capped.num_edges(), exact.num_edges());
  for (const GraphEdge& e : capped.edges()) {
    // Surviving pairs keep their exact weight (including the capped
    // bit's contribution — only candidate *generation* skipped it).
    EXPECT_EQ(e.weight, exact.weight(e.a, e.b));
  }
}

TEST(ChunkGraph, CandidatePathParallelMatchesSerial) {
  const auto chunks = random_chunks(500, 23, 128, 6);
  const ChunkGraph serial(chunks);
  ThreadPool pool(4);
  GraphOptions options;
  options.pool = &pool;
  const ChunkGraph parallel(chunks, options);
  expect_same_graph(serial, parallel);
  EXPECT_EQ(serial.stats().scored_pairs, parallel.stats().scored_pairs);

  // Banding keys are computed per chunk, so the pruned set is also
  // thread-count-invariant.
  GraphOptions banded;
  banded.banding.bands = 4;
  banded.banding.rows = 2;
  const ChunkGraph banded_serial(chunks, banded);
  banded.pool = &pool;
  const ChunkGraph banded_parallel(chunks, banded);
  expect_same_graph(banded_serial, banded_parallel);
  EXPECT_EQ(banded_serial.stats().banding_pruned,
            banded_parallel.stats().banding_pruned);
}

TEST(ChunkGraph, DotRendering) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0, 1}),
      make_chunk(4, {1, 2}),
  };
  const ChunkGraph graph(chunks);
  const auto dot = graph.to_dot(chunks, 4);
  EXPECT_NE(dot.find("graph iteration_chunks"), std::string::npos);
  EXPECT_NE(dot.find("g0 -- g1"), std::string::npos);
  EXPECT_NE(dot.find("1100"), std::string::npos);  // γ0's tag
}

}  // namespace
}  // namespace mlsc::core
