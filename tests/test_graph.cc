#include "core/graph.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace mlsc::core {
namespace {

IterationChunk make_chunk(std::uint64_t begin,
                          std::vector<std::uint32_t> bits) {
  IterationChunk c;
  c.tag = ChunkTag::from_bits(std::move(bits));
  c.ranges = {poly::LinearRange{begin, begin + 4}};
  c.iterations = 4;
  return c;
}

TEST(ChunkGraph, WeightsAreCommonBits) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0, 2, 4}),
      make_chunk(4, {0, 2, 4, 6}),
      make_chunk(8, {1, 3}),
  };
  const ChunkGraph graph(chunks);
  EXPECT_EQ(graph.num_nodes(), 3u);
  EXPECT_EQ(graph.weight(0, 1), 3u);
  EXPECT_EQ(graph.weight(0, 2), 0u);
  EXPECT_EQ(graph.weight(1, 0), 3u);  // symmetric
  EXPECT_EQ(graph.weight(0, 0), 0u);  // no self edges
}

std::vector<std::uint32_t> neighbor_list(const ChunkGraph& graph,
                                         std::uint32_t node) {
  const auto span = graph.neighbors(node);
  return {span.begin(), span.end()};
}

TEST(ChunkGraph, EdgesOmitZeroWeights) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0}),
      make_chunk(4, {1}),
      make_chunk(8, {0, 1}),
  };
  const ChunkGraph graph(chunks);
  EXPECT_EQ(graph.edges().size(), 2u);  // (0,2) and (1,2) only
  EXPECT_EQ(neighbor_list(graph, 2), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(graph.degree(0), 1u);
}

TEST(ChunkGraph, InfiniteWeightForDependences) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0}),
      make_chunk(4, {1}),
  };
  ChunkGraph graph(chunks);
  EXPECT_EQ(graph.weight(0, 1), 0u);
  graph.set_infinite(0, 1);
  EXPECT_EQ(graph.weight(0, 1), GraphEdge::kInfiniteWeight);
  EXPECT_EQ(graph.weight(1, 0), GraphEdge::kInfiniteWeight);
  EXPECT_EQ(graph.edges().size(), 1u);
  EXPECT_EQ(graph.edges()[0].weight, GraphEdge::kInfiniteWeight);
  // The pinned edge shows up in both patched adjacency rows.
  EXPECT_EQ(neighbor_list(graph, 0), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(neighbor_list(graph, 1), (std::vector<std::uint32_t>{0}));
}

TEST(ChunkGraph, SetInfiniteOnExistingEdgeUpdatesInPlace) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0, 1}),
      make_chunk(4, {1, 2}),
      make_chunk(8, {2, 3}),
  };
  ChunkGraph graph(chunks);
  ASSERT_EQ(graph.weight(0, 1), 1u);
  graph.set_infinite(0, 1);
  EXPECT_EQ(graph.weight(0, 1), GraphEdge::kInfiniteWeight);
  EXPECT_EQ(graph.weight(1, 2), 1u);  // untouched edge keeps its weight
  EXPECT_EQ(graph.edges().size(), 2u);
  // Rows were updated in place, not patched.
  EXPECT_EQ(neighbor_list(graph, 1), (std::vector<std::uint32_t>{0, 2}));
}

TEST(ChunkGraph, ParallelSweepMatchesSerial) {
  Rng rng(7);
  std::vector<IterationChunk> chunks;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint32_t> bits;
    for (int k = 0; k < 6; ++k) {
      bits.push_back(static_cast<std::uint32_t>(rng.next_below(128)));
    }
    chunks.push_back(
        make_chunk(static_cast<std::uint64_t>(i) * 4, std::move(bits)));
  }
  const ChunkGraph serial(chunks);
  ThreadPool pool(4);
  GraphOptions options;
  options.pool = &pool;
  const ChunkGraph parallel(chunks, options);
  ASSERT_EQ(serial.edges().size(), parallel.edges().size());
  for (std::size_t i = 0; i < serial.edges().size(); ++i) {
    EXPECT_EQ(serial.edges()[i].a, parallel.edges()[i].a);
    EXPECT_EQ(serial.edges()[i].b, parallel.edges()[i].b);
    EXPECT_EQ(serial.edges()[i].weight, parallel.edges()[i].weight);
  }
}

TEST(ChunkGraph, LiftsOldNodeCap) {
  // >8192 nodes used to hit a hard MLSC_CHECK; the CSR build handles it.
  std::vector<IterationChunk> chunks;
  chunks.reserve(8300);
  for (std::uint32_t i = 0; i < 8300; ++i) {
    chunks.push_back(make_chunk(static_cast<std::uint64_t>(i) * 4,
                                {i % 64, (i + 1) % 64}));
  }
  const ChunkGraph graph(chunks);
  EXPECT_EQ(graph.num_nodes(), 8300u);
  EXPECT_GT(graph.num_edges(), 0u);
  GraphOptions tight;
  tight.max_nodes = 100;
  EXPECT_THROW(ChunkGraph(chunks, tight), Error);
}

TEST(ChunkGraph, DotRendering) {
  std::vector<IterationChunk> chunks{
      make_chunk(0, {0, 1}),
      make_chunk(4, {1, 2}),
  };
  const ChunkGraph graph(chunks);
  const auto dot = graph.to_dot(chunks, 4);
  EXPECT_NE(dot.find("graph iteration_chunks"), std::string::npos);
  EXPECT_NE(dot.find("g0 -- g1"), std::string::npos);
  EXPECT_NE(dot.find("1100"), std::string::npos);  // γ0's tag
}

}  // namespace
}  // namespace mlsc::core
