#include "core/data_space.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mlsc::core {
namespace {

poly::Program two_array_program() {
  // Fig. 4: two disk-resident arrays partitioned separately; numbering
  // continues from the last chunk of one to the first of the next.
  poly::Program p;
  p.add_array({"A", {6}, 64});   // 384 B -> 6 chunks of 64
  p.add_array({"B", {3, 2}, 64});  // 384 B -> 6 chunks
  return p;
}

TEST(DataSpace, GlobalNumberingAcrossArrays) {
  const auto p = two_array_program();
  const DataSpace space(p, 64);
  EXPECT_EQ(space.num_chunks(), 12u);
  EXPECT_EQ(space.array_first_chunk(0), 0u);
  EXPECT_EQ(space.array_num_chunks(0), 6u);
  EXPECT_EQ(space.array_first_chunk(1), 6u);
  EXPECT_EQ(space.array_num_chunks(1), 6u);
}

TEST(DataSpace, NoChunkSharedAcrossArrays) {
  // A is 100 bytes (not a chunk multiple): it still occupies its own
  // 2 chunks and B starts on a fresh chunk.
  poly::Program p;
  p.add_array({"A", {25}, 4});  // 100 B
  p.add_array({"B", {10}, 8});  // 80 B
  const DataSpace space(p, 64);
  EXPECT_EQ(space.array_num_chunks(0), 2u);
  EXPECT_EQ(space.array_first_chunk(1), 2u);
}

TEST(DataSpace, ElementChunksWithinOneChunk) {
  const auto p = two_array_program();
  const DataSpace space(p, 64);
  const auto span = space.element_chunks(0, 2);  // bytes [128, 192)
  EXPECT_EQ(span.first, 2u);
  EXPECT_EQ(span.last, 2u);
}

TEST(DataSpace, ElementStraddlingChunks) {
  poly::Program p;
  p.add_array({"A", {4}, 96});  // each element spans 1.5 chunks of 64
  const DataSpace space(p, 64);
  const auto span0 = space.element_chunks(0, 0);  // bytes [0, 96)
  EXPECT_EQ(span0.first, 0u);
  EXPECT_EQ(span0.last, 1u);
  const auto span1 = space.element_chunks(0, 1);  // bytes [96, 192)
  EXPECT_EQ(span1.first, 1u);
  EXPECT_EQ(span1.last, 2u);
}

TEST(DataSpace, SecondArrayElementsOffset) {
  const auto p = two_array_program();
  const DataSpace space(p, 64);
  const auto span = space.element_chunks(1, 0);
  EXPECT_EQ(span.first, 6u);
  EXPECT_EQ(span.last, 6u);
}

TEST(DataSpace, ReverseLookup) {
  const auto p = two_array_program();
  const DataSpace space(p, 64);
  EXPECT_EQ(space.array_of_chunk(0), 0u);
  EXPECT_EQ(space.array_of_chunk(5), 0u);
  EXPECT_EQ(space.array_of_chunk(6), 1u);
  EXPECT_EQ(space.array_of_chunk(11), 1u);
  EXPECT_THROW(space.array_of_chunk(12), mlsc::Error);
}

TEST(DataSpace, ChunkSizeSweepChangesGranularity) {
  // Fig. 14's knob: halving the chunk size doubles the chunk count.
  const auto p = two_array_program();
  EXPECT_EQ(DataSpace(p, 64).num_chunks(), 12u);
  EXPECT_EQ(DataSpace(p, 32).num_chunks(), 24u);
  EXPECT_EQ(DataSpace(p, 128).num_chunks(), 6u);
}

}  // namespace
}  // namespace mlsc::core
