// Tests for the red-blue-pebble I/O lower bound (obs/lower_bound.h) and
// the data-movement accounting it is compared against: closed-form
// oracles on matmul- and stencil-shaped nests, monotonicity in cache
// capacity, and the core soundness contract — the bound never exceeds
// the bytes a real engine run actually moved, for every registry
// workload at every cache boundary.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cache/storage_cache.h"
#include "obs/lower_bound.h"
#include "poly/loop_nest.h"
#include "sim/experiment.h"
#include "sim/machine.h"
#include "workloads/registry.h"

namespace mlsc {
namespace {

using obs::IoLowerBound;
using obs::LevelSpec;
using obs::compute_io_lower_bound;
using poly::AccessMap;
using poly::AffineExpr;
using poly::IterationSpace;
using poly::LoopNest;
using poly::Program;

// C[i,j] += A[i,k] * B[k,j] over an N^3 space: the canonical Hong-Kung
// example.  The best fractional cover weights each of the three refs
// 1/2 (every loop is indexed by exactly two of them), so
// H(2M) = (2M/e)^{3/2}.
Program matmul_program(std::int64_t n, std::uint64_t element_bytes) {
  Program p;
  const auto c = p.add_array({"C", {n, n}, element_bytes});
  const auto a = p.add_array({"A", {n, n}, element_bytes});
  const auto b = p.add_array({"B", {n, n}, element_bytes});
  LoopNest nest;
  nest.name = "matmul";
  nest.space = IterationSpace({{0, n - 1}, {0, n - 1}, {0, n - 1}});
  const auto it = [](std::size_t k) { return AffineExpr::iterator(3, k); };
  nest.refs = {
      {c, AccessMap({it(0), it(1)}), true},   // C[i,j]
      {a, AccessMap({it(0), it(2)}), false},  // A[i,k]
      {b, AccessMap({it(2), it(1)}), false},  // B[k,j]
  };
  p.add_nest(std::move(nest));
  p.validate();
  return p;
}

TEST(IoLowerBound, MatmulClosedFormOracle) {
  // N = 64, e = 8, M = 1024 bytes: 2M/e = 256, so the 3/2-exponent
  // cover caps a segment at 256^1.5 = 4096 iterations, against the
  // alternatives N*(2M/e) = 16384 (single ref) and (2M/e)^2 = 65536
  // (two refs).  Capacity term: M * (N^3 / 4096 - 1) = 1024 * 63.
  const std::int64_t n = 64;
  const std::uint64_t e = 8;
  const Program p = matmul_program(n, e);
  const IoLowerBound bound =
      compute_io_lower_bound(p, {{"l1", 1024}});

  ASSERT_EQ(bound.levels.size(), 1u);
  // Compulsory: all three N x N arrays are touched wholesale.
  const std::uint64_t footprint = 3ull * n * n * e;
  EXPECT_EQ(bound.footprint_bytes, footprint);
  EXPECT_EQ(bound.levels[0].compulsory_bytes, footprint);
  EXPECT_NEAR(static_cast<double>(bound.levels[0].capacity_bytes),
              1024.0 * 63.0, 2.0);
  EXPECT_EQ(bound.levels[0].bound_bytes,
            std::max(bound.levels[0].compulsory_bytes,
                     bound.levels[0].capacity_bytes));

  ASSERT_EQ(bound.nests.size(), 1u);
  EXPECT_EQ(bound.nests[0].iterations,
            static_cast<std::uint64_t>(n) * n * n);
  EXPECT_NEAR(bound.nests[0].cover_exponent, 1.5, 1e-9);
}

TEST(IoLowerBound, MatmulCapacityTermDominatesWhenCacheIsTiny) {
  // Same nest, bigger problem: N = 256 with M = 1024 makes the
  // Hong-Kung term M*(N^3/4096 - 1) = 1024 * 4095 = 4193280 bytes
  // exceed the 3*N^2*e = 1572864-byte footprint, so the capacity term
  // is the reported bound.
  const Program p = matmul_program(256, 8);
  const IoLowerBound bound =
      compute_io_lower_bound(p, {{"l1", 1024}});
  ASSERT_EQ(bound.levels.size(), 1u);
  EXPECT_GT(bound.levels[0].capacity_bytes,
            bound.levels[0].compulsory_bytes);
  EXPECT_EQ(bound.levels[0].bound_bytes, bound.levels[0].capacity_bytes);
  EXPECT_NEAR(static_cast<double>(bound.levels[0].capacity_bytes),
              1024.0 * 4095.0, 4.0);
}

TEST(IoLowerBound, StencilIsCompulsoryDominated) {
  // A 2-D relaxation sweep reads a fixed-size neighborhood and writes
  // one point: every reference covers both loops on its own, so the
  // cover exponent is 1 and the capacity term M*(T/(2M/e) - 1) =
  // T*e/2 - M can never beat the T*e-per-array compulsory term.
  const std::int64_t n = 62;  // interior of a 64 x 64 grid
  const std::uint64_t e = 8;
  Program p;
  const auto a = p.add_array({"A", {64, 64}, e});
  const auto b = p.add_array({"B", {64, 64}, e});
  LoopNest nest;
  nest.name = "stencil";
  nest.space = IterationSpace({{0, n - 1}, {0, n - 1}});
  nest.refs = {
      {a, AccessMap::identity(2, {0, 0}), false},  // A[i, j]
      {a, AccessMap::identity(2, {1, 0}), false},  // A[i+1, j]
      {a, AccessMap::identity(2, {0, 1}), false},  // A[i, j+1]
      {b, AccessMap::identity(2, {0, 0}), true},   // B[i, j]
  };
  p.add_nest(std::move(nest));
  p.validate();

  const IoLowerBound bound = compute_io_lower_bound(p, {{"l1", 1024}});
  ASSERT_EQ(bound.levels.size(), 1u);
  // Footprint: each array contributes its touched n x n block.
  EXPECT_EQ(bound.footprint_bytes, 2ull * n * n * e);
  EXPECT_EQ(bound.levels[0].bound_bytes, bound.levels[0].compulsory_bytes);
  ASSERT_EQ(bound.nests.size(), 1u);
  EXPECT_NEAR(bound.nests[0].cover_exponent, 1.0, 1e-9);
}

TEST(IoLowerBound, BoundIsMonotoneNonIncreasingInCapacity) {
  const Program p = matmul_program(128, 8);
  std::vector<LevelSpec> levels;
  for (std::uint64_t m : {512ull, 1024ull, 4096ull, 65536ull,
                          1ull << 20, 1ull << 26}) {
    levels.push_back({"m" + std::to_string(m), m});
  }
  const IoLowerBound bound = compute_io_lower_bound(p, levels);
  ASSERT_EQ(bound.levels.size(), levels.size());
  for (std::size_t i = 1; i < bound.levels.size(); ++i) {
    EXPECT_LE(bound.levels[i].bound_bytes, bound.levels[i - 1].bound_bytes)
        << levels[i].name;
    EXPECT_LE(bound.levels[i].capacity_bytes,
              bound.levels[i - 1].capacity_bytes)
        << levels[i].name;
    // The compulsory term is capacity-independent.
    EXPECT_EQ(bound.levels[i].compulsory_bytes,
              bound.levels[i - 1].compulsory_bytes);
  }
}

TEST(IoLowerBound, ZeroFastMemoryYieldsCompulsoryBound) {
  const Program p = matmul_program(32, 8);
  const IoLowerBound bound = compute_io_lower_bound(p, {{"l0", 0}});
  ASSERT_EQ(bound.levels.size(), 1u);
  EXPECT_EQ(bound.levels[0].capacity_bytes, 0u);
  EXPECT_EQ(bound.levels[0].bound_bytes, bound.footprint_bytes);
}

TEST(IoLowerBound, FootprintIsCappedAtArraySize) {
  // A reference whose iteration space is larger than the array it walks
  // (modular/strided reuse collapsed to dim 0) must not claim a
  // footprint beyond the array's declared size.
  Program p;
  const auto a = p.add_array({"A", {16}, 8});
  LoopNest nest;
  nest.name = "reuse";
  nest.space = IterationSpace({{0, 15}, {0, 63}});
  nest.refs = {{a, AccessMap({AffineExpr::iterator(2, 0)}), false}};
  p.add_nest(std::move(nest));
  const IoLowerBound bound = compute_io_lower_bound(p, {{"l1", 128}});
  EXPECT_EQ(bound.footprint_bytes, p.array(a).size_bytes());
}

TEST(IoLowerBound, IndirectRefsAreSkippedConservatively) {
  // nodes[edge[e]]: the indirect ref earns no cover credit and no
  // compulsory credit — the bound stays finite and valid (possibly
  // loose), never overstated.
  Program p;
  const auto nodes = p.add_array({"nodes", {64}, 8});
  const auto table = p.add_index_table({"edge", {0, 3, 5, 7}});
  LoopNest nest;
  nest.name = "gather";
  nest.space = IterationSpace({{0, 3}});
  nest.refs = {{nodes, AccessMap::identity(1, {0}), false, table}};
  p.add_nest(std::move(nest));
  const IoLowerBound bound = compute_io_lower_bound(p, {{"l1", 256}});
  EXPECT_EQ(bound.footprint_bytes, 0u);
  EXPECT_EQ(bound.levels[0].bound_bytes, 0u);
}

// ---------------------------------------------------------------------
// Machine-level plumbing: level specs, engine accounting, and the
// bound <= measured soundness contract on the real registry.

TEST(Movement, MachineLevelSpecsAreCumulative) {
  const auto config = sim::MachineConfig::paper_default();
  const auto specs = sim::machine_level_specs(config);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "l1");
  EXPECT_EQ(specs[0].fast_memory_bytes,
            config.clients * config.client_cache_bytes);
  EXPECT_EQ(specs[1].fast_memory_bytes,
            specs[0].fast_memory_bytes +
                config.io_nodes * config.io_cache_bytes);
  EXPECT_EQ(specs[2].fast_memory_bytes,
            specs[1].fast_memory_bytes +
                config.storage_nodes * config.storage_cache_bytes);
}

TEST(Movement, HeadroomOfZeroMovedIsTriviallyOptimal) {
  EXPECT_DOUBLE_EQ(sim::LevelMovement::headroom(0, 0), 100.0);
  EXPECT_DOUBLE_EQ(sim::LevelMovement::headroom(50, 100), 50.0);
}

TEST(Movement, BoundNeverExceedsMeasuredBytesOnRegistry) {
  // The acceptance contract: for every Table 2 workload and every cache
  // boundary, the engine must move at least as many bytes as the
  // red-blue-pebble bound says any mapping must.  1/16 scale keeps the
  // sweep fast; the bound is computed on the same scaled program the
  // engine replays, so the comparison is exact.
  const auto config = sim::MachineConfig::paper_default();
  for (const auto& name : workloads::workload_names()) {
    SCOPED_TRACE(name);
    const auto workload = workloads::make_workload(name, 1.0 / 16.0);
    const auto result =
        sim::run_experiment(workload, sim::SchemeSpec::inter(), config);

    ASSERT_EQ(result.movement.size(), 3u);
    const auto& bytes = result.engine.bytes;
    const std::uint64_t moved[3] = {bytes.below_l1(), bytes.below_l2(),
                                    bytes.below_l3()};
    for (std::size_t i = 0; i < 3; ++i) {
      const auto& level = result.movement[i];
      EXPECT_EQ(level.bytes_moved, moved[i]) << level.level;
      EXPECT_LE(level.io_lower_bound, level.bytes_moved) << level.level;
      EXPECT_GT(level.headroom_pct, 0.0) << level.level;
      EXPECT_LE(level.headroom_pct, 100.0) << level.level;
    }
    // Boundaries nest: traffic below l1 includes everything below l2,
    // which includes everything below l3; the bound shrinks the same
    // way because fast memory accumulates.
    EXPECT_GE(moved[0], moved[1]);
    EXPECT_GE(moved[1], moved[2]);
    EXPECT_GE(result.movement[0].io_lower_bound,
              result.movement[1].io_lower_bound);
    EXPECT_GE(result.movement[1].io_lower_bound,
              result.movement[2].io_lower_bound);

    // Per-client demand shares must sum to the aggregate demand traffic
    // served from beyond the private caches.
    std::uint64_t demand = 0;
    for (std::uint64_t b : result.engine.client_demand_bytes) demand += b;
    EXPECT_EQ(demand, bytes.from_peer + bytes.from_l2 + bytes.from_l3 +
                          bytes.from_disk);
    // Every boundary crossing moves whole chunks.
    for (std::uint64_t m : moved) {
      EXPECT_EQ(m % config.chunk_size_bytes, 0u);
    }
  }
}

TEST(Movement, StorageCacheCountsServedAndFilledBytes) {
  cache::StorageCache c("t", 2, cache::PolicyKind::kLru, 64);
  EXPECT_FALSE(c.access(1));  // cold miss: no bytes served
  c.insert(1);
  EXPECT_TRUE(c.access(1));
  EXPECT_TRUE(c.access(1));
  c.insert(2);
  EXPECT_EQ(c.stats().bytes_filled, 2u * 64);
  EXPECT_EQ(c.stats().bytes_served, 2u * 64);

  // Without a chunk size the byte stats stay dormant.
  cache::StorageCache plain("p", 2, cache::PolicyKind::kLru);
  plain.insert(1);
  plain.access(1);
  EXPECT_EQ(plain.stats().bytes_filled, 0u);
  EXPECT_EQ(plain.stats().bytes_served, 0u);
}

}  // namespace
}  // namespace mlsc
