// Serial/parallel equivalence: the mapping pipeline must produce
// bit-identical results for every thread count (DESIGN.md threading
// model).  Runs the full pipeline serially and with 4 threads across
// several workloads and two topologies, plus a regression test for chunk
// tables larger than the old 8192-node similarity-graph cap.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/clustering.h"
#include "core/graph.h"
#include "core/mapper.h"
#include "core/pipeline.h"
#include "sim/experiment.h"
#include "support/rng.h"
#include "workloads/registry.h"

namespace mlsc::core {
namespace {

topology::HierarchyTree wide_tree() {
  return topology::make_layered_hierarchy(8, 4, 2, 4 * kMiB, 4 * kMiB,
                                          4 * kMiB);
}

topology::HierarchyTree narrow_tree() {
  return topology::make_layered_hierarchy(4, 2, 1, 1024, 1024, 1024);
}

workloads::Workload tiny(const std::string& name) {
  return workloads::make_workload(name, 1.0 / 16.0);
}

// Exact structural equality of two mappings: same work on the same
// client in the same order, down to every position range and chunk id.
void expect_identical(const MappingResult& serial, const MappingResult& par,
                      const std::string& context) {
  ASSERT_EQ(serial.client_work.size(), par.client_work.size()) << context;
  for (std::size_t c = 0; c < serial.client_work.size(); ++c) {
    const auto& ws = serial.client_work[c];
    const auto& wp = par.client_work[c];
    ASSERT_EQ(ws.size(), wp.size()) << context << " client " << c;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      SCOPED_TRACE(context + " client " + std::to_string(c) + " item " +
                   std::to_string(i));
      EXPECT_EQ(ws[i].nest, wp[i].nest);
      EXPECT_EQ(ws[i].iterations, wp[i].iterations);
      EXPECT_EQ(ws[i].chunk, wp[i].chunk);
      ASSERT_EQ(ws[i].ranges.size(), wp[i].ranges.size());
      for (std::size_t r = 0; r < ws[i].ranges.size(); ++r) {
        EXPECT_EQ(ws[i].ranges[r].begin, wp[i].ranges[r].begin);
        EXPECT_EQ(ws[i].ranges[r].end, wp[i].ranges[r].end);
      }
    }
  }
  ASSERT_EQ(serial.chunk_table.size(), par.chunk_table.size()) << context;
  for (std::size_t i = 0; i < serial.chunk_table.size(); ++i) {
    EXPECT_EQ(serial.chunk_table[i].iterations, par.chunk_table[i].iterations)
        << context << " chunk " << i;
  }
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelEquivalenceTest, FourThreadsMatchSerialOnBothTopologies) {
  const auto workload = tiny(GetParam());
  const DataSpace space(workload.program, 64 * kKiB);
  const auto trees = {wide_tree(), narrow_tree()};
  std::size_t topology_index = 0;
  for (const auto& tree : trees) {
    PipelineOptions serial_options;
    serial_options.num_threads = 1;
    PipelineOptions parallel_options;
    parallel_options.num_threads = 4;
    const auto serial =
        MappingPipeline(tree, serial_options).run_all(workload.program, space);
    const auto parallel = MappingPipeline(tree, parallel_options)
                              .run_all(workload.program, space);
    expect_identical(serial, parallel,
                     GetParam() + " topology " + std::to_string(topology_index));
    serial.validate_partition(workload.program);
    ++topology_index;
  }
}

TEST_P(ParallelEquivalenceTest, ScheduledMappingAlsoMatches) {
  const auto workload = tiny(GetParam());
  const DataSpace space(workload.program, 64 * kKiB);
  const auto tree = wide_tree();
  PipelineOptions serial_options;
  serial_options.schedule = true;
  serial_options.num_threads = 1;
  PipelineOptions parallel_options;
  parallel_options.schedule = true;
  parallel_options.num_threads = 4;
  const auto serial =
      MappingPipeline(tree, serial_options).run_all(workload.program, space);
  const auto parallel =
      MappingPipeline(tree, parallel_options).run_all(workload.program, space);
  EXPECT_TRUE(parallel.scheduled);
  expect_identical(serial, parallel, GetParam() + " scheduled");
}

INSTANTIATE_TEST_SUITE_P(Workloads, ParallelEquivalenceTest,
                         ::testing::Values("hf", "sar", "astro", "madbench2"),
                         [](const auto& info) { return info.param; });

// Synthetic chunk table with windowed tag sharing (same construction the
// scaling bench uses): nearby chunks overlap, distant ones do not.
std::vector<IterationChunk> synthetic_chunks(std::size_t n) {
  Rng rng(41);
  const std::size_t width = 2048;
  std::vector<IterationChunk> chunks;
  chunks.reserve(n);
  std::uint64_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t window_lo = i * width / n;
    std::vector<std::uint32_t> bits;
    for (int b = 0; b < 12; ++b) {
      bits.push_back(static_cast<std::uint32_t>(
          (window_lo + rng.next_below(width / 8)) % width));
    }
    IterationChunk c;
    c.tag = ChunkTag::from_bits(std::move(bits));
    const std::uint64_t len = 10 + rng.next_below(30);
    c.ranges = {poly::LinearRange{pos, pos + len}};
    c.iterations = len;
    pos += len;
    chunks.push_back(std::move(c));
  }
  return chunks;
}

TEST(ParallelEquivalence, GraphAndMapperHandleMoreThan8192Chunks) {
  // Regression: the similarity graph used to reject > 8192 nodes, which
  // capped the mapper's chunk tables.
  const std::size_t n = 8192 + 128;
  const auto chunks = synthetic_chunks(n);

  const ChunkGraph graph(chunks);
  EXPECT_EQ(graph.num_nodes(), n);
  EXPECT_GT(graph.num_edges(), 0u);

  const auto tree = narrow_tree();
  HierarchicalMapperOptions serial_options;
  serial_options.num_threads = 1;
  HierarchicalMapperOptions parallel_options;
  parallel_options.num_threads = 4;
  const auto serial =
      HierarchicalMapper(tree, serial_options).map_chunks(chunks);
  const auto parallel =
      HierarchicalMapper(tree, parallel_options).map_chunks(chunks);
  EXPECT_EQ(serial.num_clients(), 4u);
  expect_identical(serial, parallel, "synthetic >8192");
}

// Forest-kernel determinism: the parallel affinity-forest clustering
// (candidate scoring fan-out + Borůvka best-neighbor CAS races) must
// produce member-identical clusters at every thread count.  Runs under
// TSan via the concurrency label.
TEST(ParallelEquivalence, ForestClusteringIsThreadCountInvariant) {
  const std::size_t n = 3000;
  const auto base_chunks = synthetic_chunks(n);
  std::vector<std::uint32_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::uint32_t>(i);

  ClusterOptions options;
  options.algorithm = ClusterOptions::Algorithm::kForest;

  auto run = [&](std::size_t threads) {
    auto chunks = base_chunks;
    auto clusters = make_singletons(all, chunks);
    if (threads <= 1) {
      cluster_to_count(clusters, 16, chunks, nullptr, options);
    } else {
      ThreadPool pool(threads);
      cluster_to_count(clusters, 16, chunks, &pool, options);
    }
    return clusters;
  };

  const auto serial = run(1);
  ASSERT_EQ(serial.size(), 16u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " cluster " +
                   std::to_string(i));
      EXPECT_EQ(serial[i].members, parallel[i].members);
      EXPECT_EQ(serial[i].iterations, parallel[i].iterations);
    }
  }
}

// Faulted replay determinism: the engine is serial and the mapping is
// thread-count-invariant, so one seed + one fault schedule must give a
// bit-identical EngineResult for every mapping-stage thread count —
// with and without remap-on-failure.
void expect_identical_engines(const sim::EngineResult& a,
                              const sim::EngineResult& b,
                              const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.io_time_total, b.io_time_total);
  EXPECT_EQ(a.io_time_max, b.io_time_max);
  EXPECT_EQ(a.compute_time_total, b.compute_time_total);
  EXPECT_EQ(a.sync_wait_total, b.sync_wait_total);
  EXPECT_EQ(a.time_client_cache, b.time_client_cache);
  EXPECT_EQ(a.time_shared_cache, b.time_shared_cache);
  EXPECT_EQ(a.time_peer_cache, b.time_peer_cache);
  EXPECT_EQ(a.time_disk, b.time_disk);
  EXPECT_EQ(a.time_disk_queue, b.time_disk_queue);
  EXPECT_EQ(a.time_retry, b.time_retry);
  EXPECT_EQ(a.time_failover, b.time_failover);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.disk_requests, b.disk_requests);
  EXPECT_EQ(a.disk_writebacks, b.disk_writebacks);
  EXPECT_EQ(a.peer_hits, b.peer_hits);
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_EQ(a.transient_errors, b.transient_errors);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retry_timeouts, b.retry_timeouts);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.fault_stall_total, b.fault_stall_total);
  EXPECT_EQ(a.l1.hits, b.l1.hits);
  EXPECT_EQ(a.l2.hits, b.l2.hits);
  EXPECT_EQ(a.l3.hits, b.l3.hits);
}

TEST(ParallelEquivalence, FaultedReplayIsThreadCountInvariant) {
  const auto workload = tiny("astro");
  sim::MachineConfig config;
  config.clients = 8;
  config.io_nodes = 4;
  config.storage_nodes = 2;
  config.client_cache_bytes = 2 * kMiB;
  config.io_cache_bytes = 2 * kMiB;
  config.storage_cache_bytes = 2 * kMiB;

  for (const bool remap : {false, true}) {
    sim::ResilienceSpec resilience;
    resilience.schedule = resilience::parse_fault_spec(
        "fail@1ms:l2.0; transient@0:disk=0.02,net=0.001; seed=2010");
    resilience.remap.remap_on_failure = remap;

    auto scheme = sim::SchemeSpec::inter();
    scheme.num_threads = 1;
    const auto serial =
        sim::run_experiment(workload, scheme, config, &resilience);
    EXPECT_GT(serial.engine.transient_errors, 0u);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      scheme.num_threads = threads;
      const auto parallel =
          sim::run_experiment(workload, scheme, config, &resilience);
      expect_identical_engines(
          serial.engine, parallel.engine,
          std::string(remap ? "remap" : "no-remap") + " threads=" +
              std::to_string(threads));
      EXPECT_EQ(serial.fault_summary, parallel.fault_summary);
      EXPECT_EQ(serial.remapped, parallel.remapped);
    }
  }
}

}  // namespace
}  // namespace mlsc::core
