#!/bin/sh
# Feeds the malformed-input corpus through the real tool binaries and
# asserts every case exits with the usage exit code (3): a structured
# parse error, never a crash, hang, or sanitizer abort.
#
#   tests/corpus/run_corpus.sh <mlsc_report> <mlsc_map> [<mlsc_serve>]
#
# Run it against a -DMLSC_SANITIZE=address,undefined build to turn the
# corpus into a memory-safety gate for the parse paths.
set -u

if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
  echo "usage: $0 <mlsc_report-binary> <mlsc_map-binary> [<mlsc_serve-binary>]" >&2
  exit 2
fi
report=$1
map=$2
serve=${3:-}
corpus=$(dirname "$0")
fail=0

expect_usage_error() {
  # $1 = label, rest = command
  label=$1
  shift
  "$@" >/dev/null 2>&1
  rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "FAIL: $label exited $rc (want 3)" >&2
    fail=1
  else
    echo "ok: $label"
  fi
}

# Malformed JSON documents through the run-record reader.
for doc in "$corpus"/json/*.json; do
  expect_usage_error "mlsc_report $(basename "$doc")" "$report" "$doc"
done

# Deep nesting, generated here rather than committed: the parser must
# report its depth cap instead of overrunning the stack.
deep=$(mktemp)
awk 'BEGIN { for (i = 0; i < 100000; i++) printf "[" }' > "$deep"
expect_usage_error "mlsc_report deep-nesting" "$report" "$deep"
awk 'BEGIN { for (i = 0; i < 100000; i++) printf "["
             for (i = 0; i < 100000; i++) printf "]" }' > "$deep"
expect_usage_error "mlsc_report deep-nesting-balanced" "$report" "$deep"
rm -f "$deep"

# Malformed fault-schedule JSON files and spec strings through the CLI.
for doc in "$corpus"/faults/*.json; do
  expect_usage_error "mlsc_map --faults=$(basename "$doc")" \
    "$map" --workload hf --size-factor 0.0625 --faults="$doc"
done
while IFS= read -r spec; do
  [ -n "$spec" ] || continue
  expect_usage_error "mlsc_map --faults='$spec'" \
    "$map" --workload hf --size-factor 0.0625 --faults="$spec"
done < "$corpus"/faults/specs.txt

# Malformed serve event streams (unknown event types, duplicate ids,
# negative client counts, broken schema headers / JSON / fault specs).
if [ -n "$serve" ]; then
  for doc in "$corpus"/serve/*.jsonl; do
    expect_usage_error "mlsc_serve $(basename "$doc")" \
      "$serve" --events "$doc" --clients 8 --io 4 --storage 2
  done
fi

if [ "$fail" -ne 0 ]; then
  echo "corpus: FAILURES above" >&2
  exit 1
fi
echo "corpus: all inputs rejected cleanly"
