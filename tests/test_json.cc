// Tests for the minimal JSON parser the observability tools use to read
// run records, metric dumps, and trace files back.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "support/check.h"
#include "support/json.h"
#include "support/string_util.h"
#include "support/table.h"

namespace mlsc {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  // \uXXXX decodes to UTF-8.
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("é")").as_string(), "\xc3\xa9");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = parse_json(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(v.is_object());
  const auto& arr = v.find("a")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.0);
  EXPECT_TRUE(arr[2].find("b")->as_bool());
  EXPECT_TRUE(v.find("c")->find("d")->is_null());
  EXPECT_EQ(v.find("e")->as_string(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, PreservesObjectOrder) {
  const JsonValue v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = v.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, ForgivingAccessors) {
  const JsonValue v = parse_json(R"({"n": 1.5, "s": "str", "nil": null})");
  EXPECT_DOUBLE_EQ(v.find("n")->number_or(-1.0), 1.5);
  EXPECT_EQ(v.find("s")->string_or("fb"), "str");
  // null reads back as the fallback — the emitters render non-finite
  // doubles as null, and NaN fallbacks mark the metric unusable.
  EXPECT_TRUE(std::isnan(v.find("nil")->number_or(
      std::numeric_limits<double>::quiet_NaN())));
  EXPECT_DOUBLE_EQ(v.find("s")->number_or(-1.0), -1.0);  // wrong kind
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("[1, 2,]"), Error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
  EXPECT_THROW(parse_json("nul"), Error);
  EXPECT_THROW(parse_json("1 2"), Error);  // trailing garbage
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    parse_json("{\n  \"a\": 1,\n  \"a\" 2\n}");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("column"), std::string::npos) << what;
  }
}

TEST(Json, RejectsDuplicateObjectKeys) {
  EXPECT_THROW(parse_json(R"({"a": 1, "a": 2})"), Error);
  // Same key at different nesting levels is fine.
  EXPECT_NO_THROW(parse_json(R"({"a": {"a": 1}})"));
}

TEST(Json, RejectsPathologicalNesting) {
  const auto nested = [](int depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  EXPECT_NO_THROW(parse_json(nested(128)));
  EXPECT_THROW(parse_json(nested(129)), Error);
  // Deep enough input must not overflow the stack before the cap fires.
  EXPECT_THROW(parse_json(nested(100000)), Error);
}

TEST(Json, RejectsTruncatedEscapes) {
  EXPECT_THROW(parse_json(R"("\u00)"), Error);
  EXPECT_THROW(parse_json("\"\\u12\""), Error);
  EXPECT_THROW(parse_json("\"tail\\"), Error);
  EXPECT_THROW(parse_json(R"("\q")"), Error);
}

TEST(Json, EmitterSanitizesInvalidUtf8) {
  // Valid multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(json_quote("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
  // Bare continuation bytes, truncated sequences, overlong forms and
  // surrogate halves all become U+FFFD so the document stays valid JSON.
  EXPECT_EQ(json_quote("a\x80z"), R"("a\ufffdz")");
  EXPECT_EQ(json_quote("a\xc3"), R"("a\ufffd")");
  EXPECT_EQ(json_quote("\xc0\xaf"), R"("\ufffd\ufffd")");       // overlong '/'
  EXPECT_EQ(json_quote("\xed\xa0\x80"), R"("\ufffd\ufffd\ufffd")");  // D800
  EXPECT_EQ(json_quote("\xf5\x80\x80\x80"),
            R"("\ufffd\ufffd\ufffd\ufffd")");  // beyond U+10FFFF
}

TEST(Json, TablesWithArbitraryBytesRoundTrip) {
  // Run-record emission must survive hostile cell contents: raw bytes,
  // control characters, quotes.  The document must parse back.
  Table table({"name", "value"});
  table.add_row({"bad \x80\xfe bytes", "quote\"and\\slash"});
  table.add_row({std::string("nul\0byte", 8), "ctrl\x01\x1f"});
  std::ostringstream out;
  table.print_json(out, "hostile");
  const JsonValue v = parse_json(out.str());
  EXPECT_EQ(v.find("title")->as_string(), "hostile");
  const auto& rows = v.find("rows")->as_array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].as_array()[0].as_string(), "bad \xef\xbf\xbd\xef\xbf\xbd bytes");
  EXPECT_EQ(rows[0].as_array()[1].as_string(), "quote\"and\\slash");
  EXPECT_EQ(rows[1].as_array()[1].as_string(), "ctrl\x01\x1f");
}

TEST(Json, ParsesFileAndReportsMissing) {
  const std::string path = ::testing::TempDir() + "mlsc_json_test.json";
  {
    std::ofstream out(path);
    out << R"({"schema": "mlsc-run-record-v1", "phases": []})";
  }
  const JsonValue v = parse_json_file(path);
  EXPECT_EQ(v.find("schema")->as_string(), "mlsc-run-record-v1");
  std::remove(path.c_str());
  EXPECT_THROW(parse_json_file(path), Error);
}

}  // namespace
}  // namespace mlsc
