#include "workloads/registry.h"

#include <gtest/gtest.h>

#include "poly/dependence.h"
#include "support/check.h"

namespace mlsc::workloads {
namespace {

TEST(Registry, HasTheEightTable2Applications) {
  const auto names = workload_names();
  const std::vector<std::string> expected = {
      "hf", "sar", "contour", "astro", "e_elem", "apsi", "madbench2",
      "wupwise"};
  EXPECT_EQ(names, expected);
  EXPECT_THROW(make_workload("spice"), mlsc::Error);
}

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, ValidatesAndHasDiskScaleData) {
  const auto w = make_workload(GetParam());
  EXPECT_EQ(w.name, GetParam());
  EXPECT_FALSE(w.program.nests.empty());
  EXPECT_FALSE(w.program.arrays.empty());
  // §5.1: data sets vary between 189.6 GB (sar) and 422.7 GB (wupwise);
  // at the 1/64 scale that is 2.96 .. 6.6 GiB.
  const double paper_gib =
      static_cast<double>(w.simulated_data_bytes()) * 64.0 /
      static_cast<double>(kGiB);
  EXPECT_GE(paper_gib, 185.0) << w.name;
  EXPECT_LE(paper_gib, 435.0) << w.name;
  // Iteration counts stay simulation friendly.
  EXPECT_GE(w.program.total_iterations(), 50'000u) << w.name;
  EXPECT_LE(w.program.total_iterations(), 600'000u) << w.name;
}

TEST_P(WorkloadTest, SizeFactorScalesData) {
  const auto full = make_workload(GetParam(), 1.0);
  const auto half = make_workload(GetParam(), 0.5);
  EXPECT_LT(half.simulated_data_bytes(), full.simulated_data_bytes());
  EXPECT_EQ(half.program.total_iterations(),
            full.program.total_iterations());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

TEST(Workloads, SarHasTwoNests) {
  const auto w = make_workload("sar");
  EXPECT_EQ(w.program.nests.size(), 2u);
}

TEST(Workloads, SuiteBoundsMatchPaper) {
  // sar is the smallest data set and wupwise the largest (§5.1).
  std::uint64_t sar_bytes = make_workload("sar").simulated_data_bytes();
  std::uint64_t wupwise_bytes =
      make_workload("wupwise").simulated_data_bytes();
  for (const auto& name : workload_names()) {
    const auto bytes = make_workload(name).simulated_data_bytes();
    EXPECT_GE(bytes, sar_bytes * 95 / 100) << name;
    EXPECT_LE(bytes, wupwise_bytes * 105 / 100) << name;
  }
}

TEST(Workloads, ApsiAndEElemCarryTimeDependences) {
  for (const char* name : {"apsi", "e_elem"}) {
    const auto w = make_workload(name);
    const auto deps = poly::find_dependences(w.program.nest(0));
    EXPECT_FALSE(deps.empty()) << name;
    bool outer_carried = false;
    for (const auto& dep : deps) {
      const auto level = dep.carried_level();
      if (level.has_value() && *level == 0) outer_carried = true;
    }
    EXPECT_TRUE(outer_carried) << name << " must have a sweep-carried dep";
  }
}

TEST(Workloads, ParallelAppsAreDependenceFree) {
  for (const char* name : {"hf", "contour", "astro", "madbench2"}) {
    const auto w = make_workload(name);
    for (const auto& nest : w.program.nests) {
      EXPECT_TRUE(poly::find_dependences(nest).empty())
          << name << "/" << nest.name;
    }
  }
}

}  // namespace
}  // namespace mlsc::workloads
