#include "sim/engine.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "sim/experiment.h"
#include "support/check.h"
#include "workloads/registry.h"

namespace mlsc::sim {
namespace {

poly::Program streaming_program(std::int64_t n = 256) {
  poly::Program p;
  const auto a = p.add_array({"A", {n}, 64 * kKiB});
  poly::LoopNest nest;
  nest.name = "stream";
  nest.space = poly::IterationSpace({{0, n - 1}});
  nest.refs = {{a, poly::AccessMap::identity(1, {0}), false}};
  nest.compute_ns_per_iteration = 1000;
  p.add_nest(std::move(nest));
  return p;
}

MachineConfig tiny_machine() {
  MachineConfig config;
  config.clients = 4;
  config.io_nodes = 2;
  config.storage_nodes = 1;
  config.client_cache_bytes = 8 * 64 * kKiB;
  config.io_cache_bytes = 8 * 64 * kKiB;
  config.storage_cache_bytes = 8 * 64 * kKiB;
  return config;
}

struct Run {
  EngineResult engine;
  topology::HierarchyTree tree;
};

Run run_tiny(const poly::Program& p, const MachineConfig& config,
             core::MapperKind kind = core::MapperKind::kOriginal) {
  auto tree = config.build_tree();
  const core::DataSpace space(p, config.chunk_size_bytes);
  core::PipelineOptions options;
  options.mapper = kind;
  core::MappingPipeline pipeline(tree, options);
  const auto m = pipeline.run_all(p, space);
  const auto trace = generate_trace(p, space, m);
  auto engine = run_engine(trace, m, config, tree);
  return Run{engine, std::move(tree)};
}

TEST(Engine, ColdStreamMissesEverywhere) {
  const auto p = streaming_program();
  const auto run = run_tiny(p, tiny_machine());
  // One access per iteration, all cold: every level misses every access.
  EXPECT_EQ(run.engine.accesses, 256u);
  EXPECT_EQ(run.engine.disk_requests, 256u);
  EXPECT_EQ(run.engine.l1.accesses, 256u);
  EXPECT_EQ(run.engine.l1.hits, 0u);
  EXPECT_GT(run.engine.exec_time, 0u);
  EXPECT_GT(run.engine.io_time_total, run.engine.compute_time_total);
}

TEST(Engine, RereadHitsClientCache) {
  // Two passes over 4 chunks per client: the second pass hits L1.
  poly::Program p;
  const auto a = p.add_array({"A", {2, 16}, 64 * kKiB});
  poly::LoopNest nest;
  nest.space = poly::IterationSpace::from_extents({2, 16});
  nest.refs = {{a, poly::AccessMap::from_matrix({{0, 1}}, {0}), false}};
  nest.compute_ns_per_iteration = 100;
  p.add_nest(std::move(nest));

  // Map by column blocks (inter-processor groups the two passes).
  const auto run = run_tiny(p, tiny_machine(),
                            core::MapperKind::kInterProcessor);
  EXPECT_GT(run.engine.l1.hits, 0u);
  EXPECT_LT(run.engine.disk_requests, run.engine.accesses);
}

TEST(Engine, StallComponentsSumToTotalIoTime) {
  // Where-the-time-went breakdown is a partition of the I/O stall total,
  // in both a disk-dominated and a cache-dominated run.
  const poly::Program programs[] = {streaming_program(128), [] {
    poly::Program p;
    const auto a = p.add_array({"A", {2, 16}, 64 * kKiB});
    poly::LoopNest nest;
    nest.space = poly::IterationSpace::from_extents({2, 16});
    nest.refs = {{a, poly::AccessMap::from_matrix({{0, 1}}, {0}), false}};
    nest.compute_ns_per_iteration = 100;
    p.add_nest(std::move(nest));
    return p;
  }()};
  for (const auto& p : programs) {
    for (const auto kind : {core::MapperKind::kOriginal,
                            core::MapperKind::kInterProcessor}) {
      const auto run = run_tiny(p, tiny_machine(), kind);
      EXPECT_EQ(run.engine.time_client_cache + run.engine.time_shared_cache +
                    run.engine.time_peer_cache + run.engine.time_disk +
                    run.engine.time_retry + run.engine.time_failover,
                run.engine.io_time_total);
      EXPECT_LE(run.engine.time_disk_queue, run.engine.time_disk);
    }
  }
}

TEST(Engine, ComputeTimeAccountsPerIteration) {
  const auto p = streaming_program(64);
  const auto run = run_tiny(p, tiny_machine());
  EXPECT_EQ(run.engine.compute_time_total, 64u * 1000u);
}

TEST(Engine, ExecTimeIsMaxClientNotSum) {
  const auto p = streaming_program(64);
  const auto run = run_tiny(p, tiny_machine());
  EXPECT_LT(run.engine.exec_time, run.engine.io_time_total +
                                      run.engine.compute_time_total);
  EXPECT_GE(run.engine.exec_time,
            run.engine.io_time_max);
}

TEST(Engine, DiskQueueingSerializesOneSpindle) {
  // One storage node: concurrent misses from 4 clients must queue, so
  // exec time exceeds one client's service share.
  const auto p = streaming_program(64);
  auto config = tiny_machine();
  const auto run = run_tiny(p, config);
  const io::DiskModel disk(config.disk);
  const Nanoseconds min_serial =
      64 * disk.service_time(config.chunk_size_bytes, io::SeekClass::kFar) /
      4;
  EXPECT_GT(run.engine.exec_time, min_serial);
}

TEST(Engine, SyncEdgesInduceWaits) {
  // A dependence chain across clients: downstream clients must wait.
  poly::Program p;
  const auto a = p.add_array({"A", {256}, 64 * kKiB});
  poly::LoopNest nest;
  nest.space = poly::IterationSpace({{1, 255}});
  nest.refs = {
      {a, poly::AccessMap::identity(1, {0}), /*is_write=*/true},
      {a, poly::AccessMap::identity(1, {-1}), false},
  };
  nest.compute_ns_per_iteration = 1000;
  p.add_nest(std::move(nest));
  const auto run = run_tiny(p, tiny_machine(),
                            core::MapperKind::kInterProcessor);
  EXPECT_GT(run.engine.sync_wait_total, 0u);
}

TEST(Experiment, RunsEndToEndOnTinyWorkload) {
  const auto workload = workloads::make_workload("astro", 1.0 / 16.0);
  MachineConfig config;
  config.clients = 8;
  config.io_nodes = 4;
  config.storage_nodes = 2;
  config.client_cache_bytes = 2 * kMiB;
  config.io_cache_bytes = 2 * kMiB;
  config.storage_cache_bytes = 2 * kMiB;
  const auto orig = run_experiment(workload, SchemeSpec::original(), config);
  const auto inter = run_experiment(workload, SchemeSpec::inter(), config);
  EXPECT_GT(orig.exec_time, 0u);
  EXPECT_GT(orig.l1_miss_rate, 0.0);
  EXPECT_LE(orig.l1_miss_rate, 1.0);
  // The catalog-broadcast structure must favour the inter mapping.
  EXPECT_LT(inter.engine.disk_requests, orig.engine.disk_requests);
}

TEST(Experiment, SchemeNames) {
  EXPECT_EQ(SchemeSpec::original().name(), "original");
  EXPECT_EQ(SchemeSpec::intra().name(), "intra-processor");
  EXPECT_EQ(SchemeSpec::inter().name(), "inter-processor");
  EXPECT_EQ(SchemeSpec::inter_scheduled().name(), "inter-processor+sched");
}

}  // namespace
}  // namespace mlsc::sim
