#include "core/tagging.h"

#include <gtest/gtest.h>

#include "core/graph.h"

namespace mlsc::core {
namespace {

/// The paper's Fig. 6 example, expressible in the affine IR because the
/// A[x] (x = i % d) reference always lands in data chunk π0: we model it
/// as the constant reference A[0].  d = 8 elements of 64 B; A has 12
/// chunks; the loop runs i = 0 .. 8d-1.
poly::Program fig6_program(std::int64_t d = 8) {
  poly::Program p;
  const auto a = p.add_array({"A", {12 * d}, 64});
  poly::LoopNest nest;
  nest.name = "fig6";
  nest.space = poly::IterationSpace({{0, 8 * d - 1}});
  nest.refs = {
      {a, poly::AccessMap::identity(1, {0}), /*is_write=*/true},  // A[i]
      {a, poly::AccessMap::from_matrix({{0}}, {0}), false},       // A[x]
      {a, poly::AccessMap::identity(1, {4 * d}), false},          // A[i+4d]
      {a, poly::AccessMap::identity(1, {2 * d}), false},          // A[i+2d]
  };
  p.add_nest(std::move(nest));
  return p;
}

TEST(Tagging, Fig6ProducesEightChunksWithFig8Tags) {
  const auto p = fig6_program();
  const DataSpace space(p, 64 * 8);  // chunk = d elements
  EXPECT_EQ(space.num_chunks(), 12u);

  const std::vector<poly::NestId> nests{0};
  const auto result = compute_iteration_chunks(p, space, nests);
  EXPECT_FALSE(result.coarsened);
  ASSERT_EQ(result.chunks.size(), 8u);
  EXPECT_EQ(result.total_iterations, 64u);

  // Fig. 8's tags, in rank order.
  const std::vector<std::string> expected = {
      "101010000000", "110101000000", "101010100000", "100101010000",
      "100010101000", "100001010100", "100000101010", "100000010101",
  };
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(result.chunks[i].tag.to_string(12), expected[i])
        << "γ" << (i + 1);
    EXPECT_EQ(result.chunks[i].iterations, 8u);
  }
}

TEST(Tagging, Fig8GraphWeights) {
  const auto p = fig6_program();
  const DataSpace space(p, 64 * 8);
  const std::vector<poly::NestId> nests{0};
  const auto result = compute_iteration_chunks(p, space, nests);
  const ChunkGraph graph(result.chunks);
  // Fig. 8: γ1-γ3 weight 3, γ1-γ5 weight 2, γ1-γ2 weight 1 (not drawn).
  EXPECT_EQ(graph.weight(0, 2), 3u);
  EXPECT_EQ(graph.weight(0, 4), 2u);
  EXPECT_EQ(graph.weight(0, 1), 1u);
  EXPECT_EQ(graph.weight(2, 4), 3u);  // γ3-γ5
  EXPECT_EQ(graph.weight(1, 3), 3u);  // γ2-γ4
}

TEST(Tagging, RecurringTagIsOneChunkWithManyRanges) {
  // A[i % 2 == parity] style recurrence: two alternating tags.  Model:
  // 1-deep loop where footprint alternates between chunk 0 and chunk 1
  // via B[i] with element = half chunk: runs of 2 share a tag.
  poly::Program p;
  const auto b = p.add_array({"B", {8}, 32});  // 4 chunks of 64 B
  poly::LoopNest nest;
  nest.space = poly::IterationSpace({{0, 7}});
  nest.refs = {{b, poly::AccessMap::identity(1, {0}), false}};
  p.add_nest(std::move(nest));
  const DataSpace space(p, 64);
  const std::vector<poly::NestId> nests{0};
  const auto result = compute_iteration_chunks(p, space, nests);
  // Elements 0,1 -> chunk 0; 2,3 -> chunk 1; ... 4 distinct tags, each a
  // contiguous run of 2 iterations.
  ASSERT_EQ(result.chunks.size(), 4u);
  for (const auto& c : result.chunks) {
    EXPECT_EQ(c.iterations, 2u);
    EXPECT_EQ(c.ranges.size(), 1u);
  }
}

TEST(Tagging, CoarseningBoundsChunkCountAndKeepsPartition) {
  const auto p = fig6_program(32);  // 256 iterations, 8 natural chunks
  const DataSpace space(p, 64);     // fine chunks: many distinct tags
  const std::vector<poly::NestId> nests{0};
  TaggingOptions options;
  options.max_iteration_chunks = 16;
  const auto result = compute_iteration_chunks(p, space, nests, options);
  EXPECT_LE(result.chunks.size(), 16u);
  std::uint64_t covered = 0;
  for (const auto& c : result.chunks) covered += c.iterations;
  EXPECT_EQ(covered, result.total_iterations);
}

TEST(Tagging, MultiNestChunksCarryNestIds) {
  poly::Program p;
  const auto a = p.add_array({"A", {16}, 64});
  for (int n = 0; n < 2; ++n) {
    poly::LoopNest nest;
    nest.space = poly::IterationSpace({{0, 15}});
    nest.refs = {{a, poly::AccessMap::identity(1, {0}), n == 0}};
    p.add_nest(std::move(nest));
  }
  const DataSpace space(p, 256);  // 4 chunks
  const std::vector<poly::NestId> nests{0, 1};
  const auto result = compute_iteration_chunks(p, space, nests);
  EXPECT_EQ(result.total_iterations, 32u);
  bool saw_nest0 = false;
  bool saw_nest1 = false;
  for (const auto& c : result.chunks) {
    saw_nest0 |= (c.nest == 0);
    saw_nest1 |= (c.nest == 1);
  }
  EXPECT_TRUE(saw_nest0);
  EXPECT_TRUE(saw_nest1);
}

TEST(Tagging, FootprintHelperMatchesRefs) {
  const auto p = fig6_program();
  const DataSpace space(p, 64 * 8);
  std::vector<std::uint32_t> out;
  const poly::Iteration iter{0};
  iteration_footprint(p, p.nest(0), space, iter, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 2, 4}));  // γ1's tag
}

}  // namespace
}  // namespace mlsc::core
