#include "core/baselines.h"

#include <gtest/gtest.h>

#include "poly/dependence.h"
#include "support/check.h"

namespace mlsc::core {
namespace {

/// Column-major access over a row-major array: permutation fixes it.
poly::Program transposed_program() {
  poly::Program p;
  const auto a = p.add_array({"A", {64, 64}, 8 * 1024});
  poly::LoopNest nest;
  nest.name = "transposed";
  nest.space = poly::IterationSpace::from_extents({64, 64});
  nest.refs = {
      {a, poly::AccessMap::from_matrix({{0, 1}, {1, 0}}, {0, 0}), false},
  };
  p.add_nest(std::move(nest));
  return p;
}

TEST(Original, ContiguousEqualBlocks) {
  const auto p = transposed_program();
  const std::vector<poly::NestId> nests{0};
  const auto m = map_original(p, nests, 8);
  EXPECT_EQ(m.kind, MapperKind::kOriginal);
  m.validate_partition(p);
  ASSERT_EQ(m.num_clients(), 8u);
  for (std::size_t c = 0; c < 8; ++c) {
    ASSERT_EQ(m.client_work[c].size(), 1u);
    const auto& item = m.client_work[c][0];
    EXPECT_TRUE(item.order.is_identity());
    EXPECT_EQ(item.iterations, 64u * 64 / 8);
    EXPECT_EQ(item.ranges.front().begin, c * 512);
  }
}

TEST(Original, UnevenDivisionCoversEverything) {
  const auto p = transposed_program();
  const std::vector<poly::NestId> nests{0};
  const auto m = map_original(p, nests, 7);
  m.validate_partition(p);
  EXPECT_EQ(m.total_iterations(), 4096u);
}

TEST(LocalityModel, PermutationFixesTransposedAccess) {
  // The cache (8 chunks) is far smaller than one traversal column's
  // footprint (64 chunks), so the column-major identity walk thrashes
  // while the swapped (row-major) walk enjoys spatial hits.
  const auto p = transposed_program();
  const DataSpace space(p, 64 * 1024);
  const auto& nest = p.nest(0);
  const auto identity = poly::IterationOrder::identity(2);
  poly::IterationOrder swapped;
  swapped.permutation = {1, 0};
  swapped.tile_sizes = {1, 1};
  const double id_cost = chunk_locality_cost(p, space, nest, identity, 8);
  const double sw_cost = chunk_locality_cost(p, space, nest, swapped, 8);
  EXPECT_LT(sw_cost, id_cost);
}

TEST(IntraProcessor, ChoosesBetterThanIdentity) {
  const auto p = transposed_program();
  const DataSpace space(p, 64 * 1024);
  IntraProcessorOptions options;
  options.client_cache_bytes = 8 * 64 * 1024;  // 8-chunk model cache
  const auto order = choose_locality_order(p, space, p.nest(0), options);
  const double chosen = chunk_locality_cost(p, space, p.nest(0), order, 8);
  const double identity = chunk_locality_cost(
      p, space, p.nest(0), poly::IterationOrder::identity(2), 8);
  EXPECT_LT(chosen, identity);
  EXPECT_FALSE(order.is_identity());
}

TEST(IntraProcessor, MappingPartitionsTransformedSpace) {
  const auto p = transposed_program();
  const DataSpace space(p, 64 * 1024);
  const std::vector<poly::NestId> nests{0};
  const auto m = map_intra_processor(p, space, nests, 4);
  EXPECT_EQ(m.kind, MapperKind::kIntraProcessor);
  m.validate_partition(p);
}

TEST(IntraProcessor, LegalityBlocksReorderingDependentLoops) {
  // A[t][i] = A[t-1][i]: the t loop carries a flow dependence, so no
  // legal permutation may move it inward and tiling is off the table.
  poly::Program p;
  const auto a = p.add_array({"A", {8, 1024}, 8 * 1024});
  poly::LoopNest nest;
  nest.name = "timeloop";
  nest.space = poly::IterationSpace(std::vector<poly::LoopBounds>{
      {1, 7}, {0, 1023}});
  nest.refs = {
      {a, poly::AccessMap::identity(2, {0, 0}), /*is_write=*/true},
      {a, poly::AccessMap::identity(2, {-1, 0}), false},
  };
  p.add_nest(std::move(nest));
  const DataSpace space(p, 64 * 1024);
  const auto order = choose_locality_order(p, space, p.nest(0), {});
  // Identity is the only legal permutation (t must stay outer), and the
  // negative-free... the dependence (1, 0) blocks tiling too? No: all
  // components are >= 0, so tiling is allowed; the permutation moving t
  // inward is not.
  EXPECT_EQ(order.permutation, (std::vector<std::size_t>{0, 1}));
}

TEST(IntraProcessor, NegativeDistanceBlocksTiling) {
  // A[t][i] reads A[t-1][i+1]: distance (1, -1) forbids rectangular
  // tiling (a tile could run a later t before an earlier one at the
  // crossing column).
  poly::Program p;
  const auto a = p.add_array({"A", {8, 64}, 8 * 1024});
  poly::LoopNest nest;
  nest.space = poly::IterationSpace(std::vector<poly::LoopBounds>{
      {1, 7}, {0, 62}});
  nest.refs = {
      {a, poly::AccessMap::identity(2, {0, 0}), /*is_write=*/true},
      {a, poly::AccessMap::identity(2, {-1, 1}), false},
  };
  p.add_nest(std::move(nest));
  const DataSpace space(p, 64 * 1024);
  const auto order = choose_locality_order(p, space, p.nest(0), {});
  for (std::int64_t tile : order.tile_sizes) {
    EXPECT_EQ(tile, 1) << "tiling must be rejected as illegal";
  }
}

}  // namespace
}  // namespace mlsc::core
