#include "poly/loop_nest.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace mlsc::poly {
namespace {

TEST(ArrayDecl, SizesAndFlatten) {
  const ArrayDecl a{"A", {4, 8}, 1024};
  EXPECT_EQ(a.num_elements(), 32u);
  EXPECT_EQ(a.size_bytes(), 32u * 1024u);
  EXPECT_EQ(a.flatten(std::vector<std::int64_t>{0, 0}), 0u);
  EXPECT_EQ(a.flatten(std::vector<std::int64_t>{1, 0}), 8u);
  EXPECT_EQ(a.flatten(std::vector<std::int64_t>{3, 7}), 31u);
}

TEST(ArrayDecl, InBounds) {
  const ArrayDecl a{"A", {4, 8}, 8};
  EXPECT_TRUE(a.in_bounds(std::vector<std::int64_t>{0, 0}));
  EXPECT_TRUE(a.in_bounds(std::vector<std::int64_t>{3, 7}));
  EXPECT_FALSE(a.in_bounds(std::vector<std::int64_t>{4, 0}));
  EXPECT_FALSE(a.in_bounds(std::vector<std::int64_t>{0, -1}));
  EXPECT_FALSE(a.in_bounds(std::vector<std::int64_t>{0}));
}

TEST(Program, AddAndQuery) {
  Program p;
  const auto a = p.add_array({"A", {16}, 64});
  const auto b = p.add_array({"B", {16, 16}, 64});
  EXPECT_EQ(p.array(a).name, "A");
  EXPECT_EQ(p.array(b).name, "B");
  EXPECT_EQ(p.total_data_bytes(), 16u * 64 + 256u * 64);
  EXPECT_THROW(p.array(7), mlsc::Error);
  EXPECT_THROW(p.nest(0), mlsc::Error);
}

TEST(Program, ValidatePassesInBoundsNest) {
  Program p;
  const auto a = p.add_array({"A", {10, 10}, 8});
  LoopNest nest;
  nest.name = "ok";
  nest.space = IterationSpace({{0, 8}, {0, 8}});
  nest.refs = {{a, AccessMap::identity(2, {1, 1}), false}};
  p.add_nest(std::move(nest));
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.total_iterations(), 81u);
}

TEST(Program, ValidateCatchesOutOfBoundsCorner) {
  Program p;
  const auto a = p.add_array({"A", {10}, 8});
  LoopNest nest;
  nest.space = IterationSpace({{0, 9}});
  nest.refs = {{a, AccessMap::identity(1, {1}), false}};  // A[i+1]: i=9 OOB
  p.add_nest(std::move(nest));
  EXPECT_THROW(p.validate(), mlsc::Error);
}

TEST(Program, ValidateCatchesUnknownArray) {
  Program p;
  LoopNest nest;
  nest.space = IterationSpace({{0, 3}});
  nest.refs = {{7, AccessMap::identity(1, {0}), false}};
  p.add_nest(std::move(nest));
  EXPECT_THROW(p.validate(), mlsc::Error);
}

}  // namespace
}  // namespace mlsc::poly
