// mlsc_map — command-line driver for the mapping library.
//
// Maps a workload onto a configurable storage cache hierarchy with any
// of the paper's schemes and reports miss rates, latencies, the mapping
// itself, or the generated per-client code.
//
// Usage:
//   mlsc_map [--workload NAME] [--scheme original|intra|inter|sched]
//            [--clients N] [--io N] [--storage N]
//            [--chunk BYTES] [--policy lru|fifo|clock|lfu|2q|mq]
//            [--placement access|eviction|exclusive]
//            [--balance FRACTION] [--alpha A] [--beta B]
//            [--write-back] [--cooperative] [--readahead N]
//            [--size-factor F] [--threads N]
//            [--faults FILE|SPEC] [--remap] [--explain]
//            [--trace PATH] [--metrics PATH] [--json PATH]
//            [--log-level debug|info|warn|error|off]
//            [--report stats|mapping|codegen|csv]
//
// Exit status: 0 success, 1 runtime failure, 3 command-line misuse.
#include <chrono>
#include <iostream>
#include <string>
#include <thread>

#include "core/client_codegen.h"
#include "obs/metrics.h"
#include "obs/run_record.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "support/argparse.h"
#include "support/dynamic_bitset.h"
#include "support/log.h"
#include "support/string_util.h"
#include "support/table.h"
#include "workloads/irregular.h"
#include "workloads/registry.h"

#ifndef MLSC_GIT_SHA
#define MLSC_GIT_SHA "unknown"
#endif
#ifndef MLSC_BUILD_TYPE
#define MLSC_BUILD_TYPE "unknown"
#endif

namespace {

using namespace mlsc;

void print_usage(std::ostream& out, const char* argv0) {
  out
      << "usage: " << argv0 << " [options]\n"
      << "  --workload NAME     one of: " << join(workloads::workload_names(), ", ")
      << ", irregular (default hf)\n"
      << "  --scheme KIND       original | intra | inter | sched (default inter)\n"
      << "  --clients/--io/--storage N   topology (default 64/32/16)\n"
      << "  --chunk BYTES       data chunk size (default 65536)\n"
      << "  --policy NAME       lru|fifo|clock|lfu|2q|mq (default lru)\n"
      << "  --placement NAME    access|eviction|exclusive (default access)\n"
      << "  --balance F         BThres fraction (default 0.10)\n"
      << "  --alpha A --beta B  scheduler weights (default 0.5/0.5)\n"
      << "  --write-back        model dirty write-back traffic\n"
      << "  --cooperative       probe sibling client caches\n"
      << "  --readahead N       disk readahead depth (default 0)\n"
      << "  --size-factor F     workload data scale (default 1.0)\n"
      << "  --threads N         mapping-stage threads; 0 = all cores "
         "(default 1, result is identical for any value)\n"
      << "  --cluster KIND      auto | greedy | forest: clustering kernel "
         "(default auto)\n"
      << "  --forest-threshold N  auto switches to the forest kernel at N "
         "input clusters (default 8192)\n"
      << "  --bands N --rows R  minhash banding for forest candidate "
         "pruning (default off)\n"
      << "  --hot-cap N         skip posting lists longer than N during "
         "candidate generation (default 0 = off)\n"
      << "  --faults ARG        fault schedule: a JSON file or a spec "
         "string, e.g.\n"
      << "                      'fail@5ms:l2.0;transient@0:disk=0.01;"
         "seed=42'\n"
      << "  --remap             remap-on-failure: recompute the mapping "
         "over the\n"
      << "                      surviving topology when the schedule "
         "fail-stops a node\n"
      << CommonToolOptions::usage(/*with_reps=*/false, /*with_explain=*/true)
      << "  --report KIND       stats|full|compare|mapping|codegen|csv (default stats)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "hf";
  std::string scheme_name = "inter";
  std::string report = "stats";
  double size_factor = 1.0;
  sim::MachineConfig machine = sim::MachineConfig::paper_default();
  sim::SchemeSpec scheme = sim::SchemeSpec::inter();
  double alpha = 0.5;
  double beta = 0.5;
  CommonToolOptions common;
  common.accept_explain = true;
  std::string faults_arg;
  bool remap = false;
  sim::ResilienceSpec rspec;
  bool have_faults = false;

  try {
    ArgParser args(argc, argv);
    while (args.next()) {
      if (common.match(args)) {
        // --trace/--metrics/--json/--log-level handled by the shared
        // helper.
      } else if (args.value_flag("--workload")) {
        workload_name = args.value();
      } else if (args.value_flag("--scheme")) {
        scheme_name = args.value();
      } else if (args.value_flag("--clients")) {
        machine.clients = args.value_u64();
      } else if (args.value_flag("--io")) {
        machine.io_nodes = args.value_u64();
      } else if (args.value_flag("--storage")) {
        machine.storage_nodes = args.value_u64();
      } else if (args.value_flag("--chunk")) {
        machine.chunk_size_bytes = args.value_u64();
        machine.stripe_size_bytes = machine.chunk_size_bytes;
      } else if (args.value_flag("--policy")) {
        machine.policy = cache::parse_policy_kind(args.value());
      } else if (args.value_flag("--placement")) {
        const std::string mode = args.value();
        if (mode == "access") {
          machine.placement = cache::PlacementMode::kAccessBased;
        } else if (mode == "eviction") {
          machine.placement = cache::PlacementMode::kEvictionBased;
        } else if (mode == "exclusive") {
          machine.placement = cache::PlacementMode::kExclusive;
        } else {
          throw UsageError("--placement: unknown mode '" + mode + "'");
        }
      } else if (args.value_flag("--balance")) {
        scheme.balance_threshold = args.value_double();
      } else if (args.value_flag("--alpha")) {
        alpha = args.value_double();
      } else if (args.value_flag("--beta")) {
        beta = args.value_double();
      } else if (args.flag("--write-back")) {
        machine.write_back = true;
      } else if (args.flag("--cooperative")) {
        machine.cooperative_caching = true;
      } else if (args.value_flag("--readahead")) {
        machine.readahead_chunks =
            static_cast<std::uint32_t>(args.value_u64());
      } else if (args.value_flag("--size-factor")) {
        size_factor = args.value_double();
      } else if (args.value_flag("--threads")) {
        scheme.num_threads = args.value_u64();
      } else if (args.value_flag("--cluster")) {
        const std::string kind = args.value();
        if (kind == "auto") {
          scheme.clustering.algorithm = core::ClusterOptions::Algorithm::kAuto;
        } else if (kind == "greedy") {
          scheme.clustering.algorithm =
              core::ClusterOptions::Algorithm::kGreedy;
        } else if (kind == "forest") {
          scheme.clustering.algorithm =
              core::ClusterOptions::Algorithm::kForest;
        } else {
          throw UsageError("--cluster: unknown kernel '" + kind + "'");
        }
      } else if (args.value_flag("--forest-threshold")) {
        scheme.clustering.forest_threshold = args.value_u64();
      } else if (args.value_flag("--bands")) {
        scheme.clustering.banding.bands =
            static_cast<std::uint32_t>(args.value_u64());
      } else if (args.value_flag("--rows")) {
        scheme.clustering.banding.rows =
            static_cast<std::uint32_t>(args.value_u64());
      } else if (args.value_flag("--hot-cap")) {
        scheme.clustering.hot_posting_cap = args.value_u64();
      } else if (args.value_flag("--faults")) {
        faults_arg = args.value();
      } else if (args.flag("--remap")) {
        remap = true;
      } else if (args.value_flag("--report")) {
        report = args.value();
      } else {
        args.unknown();
      }
    }

    if (scheme_name == "original") {
      scheme.mapper = core::MapperKind::kOriginal;
    } else if (scheme_name == "intra") {
      scheme.mapper = core::MapperKind::kIntraProcessor;
    } else if (scheme_name == "inter") {
      scheme.mapper = core::MapperKind::kInterProcessor;
    } else if (scheme_name == "sched") {
      scheme.mapper = core::MapperKind::kInterProcessor;
      scheme.schedule = true;
      scheme.scheduler = {alpha, beta};
    } else {
      throw UsageError("--scheme: unknown scheme '" + scheme_name + "'");
    }

    if (report != "stats" && report != "full" && report != "compare" &&
        report != "mapping" && report != "codegen" && report != "csv") {
      throw UsageError("--report: unknown kind '" + report + "'");
    }

    if (!faults_arg.empty()) {
      rspec.schedule = resilience::load_fault_schedule(faults_arg);
      rspec.remap.remap_on_failure = remap;
      have_faults = true;
    } else if (remap) {
      throw UsageError("--remap requires --faults");
    }
    machine.explain = common.explain;
  } catch (const Error& e) {
    // Anything thrown while digesting the command line — unknown flags,
    // malformed values, unparseable fault schedules — is CLI misuse.
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage(std::cerr, argv[0]);
    return kUsageExitCode;
  }

  // Start trace/metrics recording; flushed on every exit path.
  obs::ObsScope obs_scope(common.trace_path, common.metrics_path);

  obs::RunRecord record;
  record.binary = "mlsc_map";
  record.machine = machine.to_string();
  record.apps = {workload_name};
  record.build_type = MLSC_BUILD_TYPE;
  record.git_sha = MLSC_GIT_SHA;
  record.simd_level = DynamicBitset::simd_dispatch_level();
  record.hardware_threads = std::thread::hardware_concurrency();
  auto write_record = [&] {
    if (common.json_path.empty()) return;
    record.include_metrics = obs::metrics_enabled();
    if (record.write_file(common.json_path)) {
      std::cerr << "[mlsc_map] wrote " << common.json_path << "\n";
    } else {
      std::cerr << "error: cannot write " << common.json_path << "\n";
    }
  };

  try {
    const auto workload =
        workload_name == "irregular"
            ? workloads::make_irregular(size_factor)
            : workloads::make_workload(workload_name, size_factor);

    if (report == "mapping" || report == "codegen") {
      const auto tree = machine.build_tree();
      const core::DataSpace space(workload.program,
                                  machine.chunk_size_bytes);
      core::PipelineOptions options;
      options.mapper = scheme.mapper;
      options.schedule = scheme.schedule;
      options.scheduler = scheme.scheduler;
      options.balance_threshold = scheme.balance_threshold;
      options.clustering = scheme.clustering;
      options.num_threads = scheme.num_threads;
      core::MappingPipeline pipeline(tree, options);
      const auto mapping = [&] {
        obs::ScopedPhase phase(record, "mapping");
        return pipeline.run_all(workload.program, space);
      }();
      write_record();
      if (report == "codegen") {
        std::cout << core::emit_all_clients_source(workload.program,
                                                   mapping);
      } else {
        std::cout << "mapper: " << mapping.mapper_name << "\n"
                  << "clients: " << mapping.num_clients() << "\n"
                  << "iteration chunks: " << mapping.chunk_table.size()
                  << "\n"
                  << "sync edges: " << mapping.sync_edges.size() << "\n"
                  << "imbalance: " << format_double(mapping.imbalance(), 4)
                  << "\n";
        for (std::size_t c = 0; c < mapping.num_clients(); ++c) {
          std::cout << "  client " << c << ": "
                    << mapping.client_work[c].size() << " items, "
                    << mapping.client_iterations(c) << " iterations\n";
        }
      }
      return 0;
    }

    if (report == "full") {
      const auto r = [&] {
        obs::ScopedPhase phase(record, "experiment");
        return sim::run_experiment(workload, scheme, machine,
                                   have_faults ? &rspec : nullptr);
      }();
      record.tables = sim::report_tables(r);
      record.insight = r.engine.insight;
      write_record();
      sim::write_report(std::cout, r, machine);
      return 0;
    }
    if (report == "compare") {
      const auto results = [&] {
        obs::ScopedPhase phase(record, "compare");
        return sim::run_all_schemes(workload, machine);
      }();
      record.tables.emplace_back("scheme comparison",
                                 sim::comparison_table(results));
      write_record();
      record.tables.back().second.print(std::cout);
      return 0;
    }
    const auto r = [&] {
      obs::ScopedPhase phase(record, "experiment");
      return sim::run_experiment(workload, scheme, machine,
                                 have_faults ? &rspec : nullptr);
    }();
    record.tables = sim::report_tables(r);
    record.insight = r.engine.insight;
    write_record();
    if (report == "csv") {
      Table table({"workload", "scheme", "l1_miss", "l2_miss", "l3_miss",
                   "disk_requests", "io_latency_ns", "exec_time_ns"});
      table.add_row({r.workload, r.scheme, format_double(r.l1_miss_rate, 4),
                     format_double(r.l2_miss_rate, 4),
                     format_double(r.l3_miss_rate, 4),
                     std::to_string(r.engine.disk_requests),
                     std::to_string(r.io_latency),
                     std::to_string(r.exec_time)});
      table.print_csv(std::cout);
    } else {
      std::cout << "machine: " << machine.to_string() << "\n";
      if (!r.fault_summary.empty()) {
        std::cout << "faults: " << r.fault_summary << "\n";
        if (r.remapped) {
          std::cout << "remap: " << r.remap_reason << " (pause "
                    << format_time(r.remap_pause) << ")\n";
        }
      }
      r.report(std::cout);
      std::cout << "disk requests: " << r.engine.disk_requests
                << ", write-backs: " << r.engine.disk_writebacks
                << ", peer hits: " << r.engine.peer_hits
                << ", prefetches: " << r.engine.prefetches
                << ", sync edges: " << r.sync_edges << "\n";
      if (r.engine.faults_applied > 0) {
        std::cout << "faults applied: " << r.engine.faults_applied
                  << ", transient errors: " << r.engine.transient_errors
                  << ", retries: " << r.engine.retries
                  << ", retry timeouts: " << r.engine.retry_timeouts
                  << ", failovers: " << r.engine.failovers << "\n";
      }
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
