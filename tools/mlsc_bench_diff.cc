// mlsc_bench_diff — compares a bench run record against a committed
// baseline and fails on performance regressions (DESIGN.md §13).
//
// Usage:
//   mlsc_bench_diff <baseline.json> <current.json>
//       [--det-threshold=F] [--time-threshold=F] [--hard-factor=F]
//       [--assert-min=METRIC:VALUE]... [--assert-max=METRIC:VALUE]...
//       [--all] [--csv]
//       [--color|--no-color]
//
// Exit codes: 0 no regression, 1 soft regression(s) or unmet
// --assert-min/--assert-max, 2 hard regression(s), 3 usage or parse
// error.
#include <unistd.h>

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "obs/bench_diff.h"
#include "support/argparse.h"
#include "support/check.h"
#include "support/json.h"
#include "support/table.h"

namespace {

using namespace mlsc;

void print_usage(std::ostream& out, const char* argv0) {
  out
      << "usage: " << argv0 << " <baseline.json> <current.json> [options]\n"
      << "  --det-threshold=F   relative tolerance for deterministic "
         "metrics (default 0.001)\n"
      << "  --time-threshold=F  relative tolerance for timing metrics, "
         "before the\n"
      << "                      (1 + 1/sqrt(reps)) noise margin (default "
         "0.30)\n"
      << "  --hard-factor=F     hard regression above F x threshold "
         "(default 2.0)\n"
      << "  --assert-min=M:V    require flattened metric M >= V in the "
         "*current*\n"
      << "                      record (repeatable; unmet = soft fail). "
         "For\n"
      << "                      environment-dependent floors like "
         "multicore\n"
      << "                      speedups that a committed baseline can't "
         "pin.\n"
      << "  --assert-max=M:V    require flattened metric M <= V in the "
         "*current*\n"
      << "                      record (repeatable; breach = soft fail). "
         "The\n"
      << "                      ceiling complement, e.g. capping an "
         "interference\n"
      << "                      share that must not creep back up.\n"
      << "  --all               list every compared metric, not just "
         "deviations\n"
      << "  --csv               CSV output (implies no color)\n"
      << "  --color/--no-color  force ANSI colors on/off (default: on "
         "when stdout is a tty)\n"
      << "exit: 0 clean, 1 soft regression, 2 hard regression, 3 error\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  obs::DiffOptions options;
  std::vector<obs::MinAssertion> min_assertions;
  std::vector<obs::MaxAssertion> max_assertions;
  bool all = false;
  bool csv = false;
  bool color = isatty(STDOUT_FILENO) != 0;

  JsonValue baseline;
  JsonValue current;
  try {
    ArgParser args(argc, argv);
    while (args.next()) {
      if (args.value_flag("--det-threshold")) {
        options.det_threshold = args.value_double();
      } else if (args.value_flag("--time-threshold")) {
        options.time_threshold = args.value_double();
      } else if (args.value_flag("--hard-factor")) {
        options.hard_factor = args.value_double();
      } else if (args.value_flag("--assert-min")) {
        obs::MinAssertion assertion;
        if (!obs::parse_min_assertion(args.value(), &assertion)) {
          throw UsageError("--assert-min: expected METRIC:VALUE, got '" +
                           args.value() + "'");
        }
        min_assertions.push_back(std::move(assertion));
      } else if (args.value_flag("--assert-max")) {
        obs::MaxAssertion assertion;
        if (!obs::parse_max_assertion(args.value(), &assertion)) {
          throw UsageError("--assert-max: expected METRIC:VALUE, got '" +
                           args.value() + "'");
        }
        max_assertions.push_back(std::move(assertion));
      } else if (args.flag("--all")) {
        all = true;
      } else if (args.flag("--csv")) {
        csv = true;
      } else if (args.flag("--color")) {
        color = true;
      } else if (args.flag("--no-color")) {
        color = false;
      } else if (args.arg().rfind("--", 0) == 0) {
        args.unknown();
      } else if (baseline_path.empty()) {
        baseline_path = args.arg();
      } else if (current_path.empty()) {
        current_path = args.arg();
      } else {
        throw UsageError("unexpected extra argument '" + args.arg() + "'");
      }
    }
    if (baseline_path.empty() || current_path.empty()) {
      throw UsageError("two run record paths are required");
    }
    // The inputs are user-supplied JSON; unreadable or malformed files
    // are usage errors (exit 3), never crashes.
    baseline = parse_json_file(baseline_path);
    current = parse_json_file(current_path);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage(std::cerr, argv[0]);
    return kUsageExitCode;
  }
  if (csv) color = false;

  try {
    const obs::DiffResult result =
        obs::diff_run_records(baseline, current, options);

    if (!csv) {
      std::cout << "baseline: " << obs::record_build_id(baseline) << "\n"
                << "current:  " << obs::record_build_id(current) << "\n";
      const std::string base_simd =
          obs::record_metadata_string(baseline, "simd_level");
      const std::string cur_simd =
          obs::record_metadata_string(current, "simd_level");
      if (!base_simd.empty() && !cur_simd.empty() &&
          base_simd != cur_simd) {
        std::cout << "note: SIMD dispatch differs (" << base_simd
                  << " vs " << cur_simd
                  << ") — timing deltas reflect hardware, not code\n";
      }
      std::cout << "\n";
    }

    const Table table = obs::diff_table(result, color, all);
    if (csv) {
      table.print_csv(std::cout);
    } else {
      if (table.num_rows() == 0) {
        std::cout << "no deviations";
      } else {
        table.print(std::cout);
      }
      std::cout << "\ncompared " << result.compared << " metrics: "
                << result.hard_regressions << " hard, "
                << result.soft_regressions << " soft regression(s), "
                << result.improvements << " improvement(s), "
                << result.missing << " missing\n";
    }

    std::vector<std::string> unmet =
        obs::check_min_assertions(current, min_assertions);
    const std::vector<std::string> over =
        obs::check_max_assertions(current, max_assertions);
    unmet.insert(unmet.end(), over.begin(), over.end());
    for (const std::string& failure : unmet) {
      std::cerr << failure << "\n";
    }
    return std::max(result.exit_code(), unmet.empty() ? 0 : 1);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }
}
