// mlsc_bench_diff — compares a bench run record against a committed
// baseline and fails on performance regressions (DESIGN.md §13).
//
// Usage:
//   mlsc_bench_diff <baseline.json> <current.json>
//       [--det-threshold=F] [--time-threshold=F] [--hard-factor=F]
//       [--all] [--csv] [--color|--no-color]
//
// Exit codes: 0 no regression, 1 soft regression(s), 2 hard
// regression(s), 3 usage or parse error.
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <string>

#include "obs/bench_diff.h"
#include "support/check.h"
#include "support/json.h"
#include "support/table.h"

namespace {

using namespace mlsc;

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <baseline.json> <current.json> [options]\n"
      << "  --det-threshold=F   relative tolerance for deterministic "
         "metrics (default 0.001)\n"
      << "  --time-threshold=F  relative tolerance for timing metrics, "
         "before the\n"
      << "                      (1 + 1/sqrt(reps)) noise margin (default "
         "0.30)\n"
      << "  --hard-factor=F     hard regression above F x threshold "
         "(default 2.0)\n"
      << "  --all               list every compared metric, not just "
         "deviations\n"
      << "  --csv               CSV output (implies no color)\n"
      << "  --color/--no-color  force ANSI colors on/off (default: on "
         "when stdout is a tty)\n"
      << "exit: 0 clean, 1 soft regression, 2 hard regression, 3 error\n";
  std::exit(3);
}

double parse_double(const char* argv0, const std::string& value) {
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    usage(argv0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  obs::DiffOptions options;
  bool all = false;
  bool csv = false;
  bool color = isatty(STDOUT_FILENO) != 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--det-threshold=", 0) == 0) {
      options.det_threshold =
          parse_double(argv[0], arg.substr(std::strlen("--det-threshold=")));
    } else if (arg.rfind("--time-threshold=", 0) == 0) {
      options.time_threshold = parse_double(
          argv[0], arg.substr(std::strlen("--time-threshold=")));
    } else if (arg.rfind("--hard-factor=", 0) == 0) {
      options.hard_factor =
          parse_double(argv[0], arg.substr(std::strlen("--hard-factor=")));
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--color") {
      color = true;
    } else if (arg == "--no-color") {
      color = false;
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (baseline_path.empty() || current_path.empty()) usage(argv[0]);
  if (csv) color = false;

  try {
    const JsonValue baseline = parse_json_file(baseline_path);
    const JsonValue current = parse_json_file(current_path);
    const obs::DiffResult result =
        obs::diff_run_records(baseline, current, options);

    const Table table = obs::diff_table(result, color, all);
    if (csv) {
      table.print_csv(std::cout);
    } else {
      if (table.num_rows() == 0) {
        std::cout << "no deviations";
      } else {
        table.print(std::cout);
      }
      std::cout << "\ncompared " << result.compared << " metrics: "
                << result.hard_regressions << " hard, "
                << result.soft_regressions << " soft regression(s), "
                << result.improvements << " improvement(s), "
                << result.missing << " missing\n";
    }
    return result.exit_code();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }
}
