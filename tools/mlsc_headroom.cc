// mlsc_headroom: one-shot data-movement headroom analysis.
//
// Runs one (workload, scheme, machine) experiment, computes the
// red-blue-pebble I/O lower bound per cache boundary (obs/lower_bound.h)
// and prints measured bytes-moved vs. the bound as a per-level table:
//
//   $ mlsc_headroom --workload sar --scheme inter
//   level  fast_memory  bytes_moved  io_lower_bound  headroom_pct
//   l1     2.0GiB       ...          ...             ...
//
// --bound-only skips the simulation and prints just the analyzer's view
// (compulsory vs. capacity term per level).  --json writes the standard
// mlsc-run-record-v1 document so the output plugs into mlsc_bench_diff
// and mlsc_report like any bench record.
#include <iostream>
#include <string>
#include <thread>

#include "obs/lower_bound.h"
#include "obs/metrics.h"
#include "obs/run_record.h"
#include "sim/experiment.h"
#include "support/argparse.h"
#include "support/dynamic_bitset.h"
#include "support/log.h"
#include "support/string_util.h"
#include "support/table.h"
#include "support/units.h"
#include "workloads/registry.h"

#ifndef MLSC_GIT_SHA
#define MLSC_GIT_SHA "unknown"
#endif
#ifndef MLSC_BUILD_TYPE
#define MLSC_BUILD_TYPE "unknown"
#endif

namespace {

using namespace mlsc;

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " --workload <name> [options]\n"
         "\n"
         "Per-level data-movement headroom: measured bytes crossing each\n"
         "cache boundary vs. the red-blue-pebble I/O lower bound.\n"
         "\n"
         "options:\n"
         "  --workload <name>     registry workload (or 'all'); required\n"
         "  --size-factor <f>     workload scale (default 1.0)\n"
         "  --scheme <s>          original|intra|inter|inter+sched "
         "(default inter)\n"
         "  --clients <n>         compute nodes (default 64)\n"
         "  --io-nodes <n>        I/O nodes (default 32)\n"
         "  --storage-nodes <n>   storage nodes (default 16)\n"
         "  --cache-mib <m>       per-node cache capacity at every level\n"
         "                        (default 32)\n"
         "  --chunk-kib <k>       chunk size (default 64)\n"
         "  --bound-only          skip the simulation; print the bound's\n"
         "                        compulsory/capacity terms per level\n"
         "  --json <path>         write an mlsc-run-record-v1 document\n"
         "  --log-level <l>       debug|info|warn|error|off\n";
}

sim::SchemeSpec parse_scheme(const std::string& name) {
  if (name == "original") return sim::SchemeSpec::original();
  if (name == "intra") return sim::SchemeSpec::intra();
  if (name == "inter") return sim::SchemeSpec::inter();
  if (name == "inter+sched") return sim::SchemeSpec::inter_scheduled();
  throw UsageError("unknown scheme '" + name +
                   "' (want original|intra|inter|inter+sched)");
}

std::string gib(std::uint64_t bytes) {
  return format_double(static_cast<double>(bytes) /
                           static_cast<double>(kGiB), 2) +
         " GiB";
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name;
  std::string scheme_name = "inter";
  std::string json_path;
  double size_factor = 1.0;
  bool bound_only = false;
  sim::MachineConfig machine;

  try {
    ArgParser args(argc, argv);
    while (args.next()) {
      if (args.flag("--help") || args.flag("-h")) {
        print_usage(std::cout, argv[0]);
        return 0;
      } else if (args.value_flag("--workload")) {
        workload_name = args.value();
      } else if (args.value_flag("--size-factor")) {
        size_factor = args.value_double();
      } else if (args.value_flag("--scheme")) {
        scheme_name = args.value();
      } else if (args.value_flag("--clients")) {
        machine.clients = args.value_u64();
      } else if (args.value_flag("--io-nodes")) {
        machine.io_nodes = args.value_u64();
      } else if (args.value_flag("--storage-nodes")) {
        machine.storage_nodes = args.value_u64();
      } else if (args.value_flag("--cache-mib")) {
        const std::uint64_t bytes = args.value_u64() * kMiB;
        machine.client_cache_bytes = bytes;
        machine.io_cache_bytes = bytes;
        machine.storage_cache_bytes = bytes;
      } else if (args.value_flag("--chunk-kib")) {
        machine.chunk_size_bytes = args.value_u64() * kKiB;
        machine.stripe_size_bytes = machine.chunk_size_bytes;
      } else if (args.flag("--bound-only")) {
        bound_only = true;
      } else if (args.value_flag("--json")) {
        json_path = args.value();
      } else if (args.value_flag("--log-level")) {
        LogLevel level;
        if (!parse_log_level(args.value(), &level)) {
          throw UsageError("bad --log-level '" + args.value() + "'");
        }
        set_log_level(level);
      } else {
        args.unknown();
      }
    }
    if (workload_name.empty()) {
      throw UsageError("--workload is required");
    }
    parse_scheme(scheme_name);  // validate before doing any work
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage(std::cerr, argv[0]);
    return kUsageExitCode;
  }

  const sim::SchemeSpec scheme = parse_scheme(scheme_name);
  std::vector<std::string> names;
  if (workload_name == "all") {
    names = workloads::workload_names();
  } else {
    names.push_back(workload_name);
  }

  obs::RunRecord record;
  record.binary = "mlsc_headroom";
  record.machine = machine.to_string();
  record.apps = names;
  record.build_type = MLSC_BUILD_TYPE;
  record.git_sha = MLSC_GIT_SHA;
  record.simd_level = DynamicBitset::simd_dispatch_level();
  record.hardware_threads = std::thread::hardware_concurrency();

  try {
    const auto specs = sim::machine_level_specs(machine);
    for (const std::string& name : names) {
      const auto workload = workloads::make_workload(name, size_factor);

      if (bound_only) {
        const auto bound =
            obs::compute_io_lower_bound(workload.program, specs);
        Table table({"level", "fast_memory", "compulsory_bytes",
                     "capacity_bytes", "io_lower_bound"});
        for (const auto& level : bound.levels) {
          table.add_row({level.level, gib(level.fast_memory_bytes),
                         std::to_string(level.compulsory_bytes),
                         std::to_string(level.capacity_bytes),
                         std::to_string(level.bound_bytes)});
        }
        std::cout << name << " (footprint >= "
                  << format_double(static_cast<double>(
                                       bound.footprint_bytes) /
                                       static_cast<double>(kMiB),
                                   2)
                  << " MiB):\n";
        table.print(std::cout);
        std::cout << "\n";
        record.tables.emplace_back(name + " bound", std::move(table));
        continue;
      }

      obs::ScopedPhase phase(record, name + "/" + scheme.name());
      const auto result = sim::run_experiment(workload, scheme, machine);
      Table table({"level", "fast_memory", "bytes_moved", "io_lower_bound",
                   "headroom_pct"});
      for (const auto& row : result.movement) {
        table.add_row({row.level, gib(row.fast_memory_bytes),
                       std::to_string(row.bytes_moved),
                       std::to_string(row.io_lower_bound),
                       format_double(row.headroom_pct, 2)});
      }
      std::cout << name << " / " << scheme.name() << ":\n";
      table.print(std::cout);
      std::cout << "\n";
      record.tables.emplace_back(name + " headroom", std::move(table));
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (!json_path.empty()) {
    record.include_metrics = obs::metrics_enabled();
    if (!record.write_file(json_path)) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    std::cerr << "[mlsc_headroom] wrote " << json_path << "\n";
  }
  return 0;
}
