// mlsc_report — renders a run record (and optionally its trace) into a
// single self-contained HTML page suitable for archiving as a CI
// artifact: per-client stall-breakdown stacked bars, per-level
// miss-rate tables, phase duration bars, and the access-latency
// histogram, with no external assets.
//
// Usage:
//   mlsc_report <run_record.json> [--trace=<trace.json>]
//               [--out=<report.html>]
//
// Default output path is the record path with a ".html" suffix; "-"
// writes to stdout.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/report_html.h"
#include "support/check.h"
#include "support/json.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <run_record.json> [--trace=<trace.json>] "
               "[--out=<report.html>]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlsc;
  std::string record_path;
  std::string trace_path;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
    } else if (record_path.empty()) {
      record_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (record_path.empty()) usage(argv[0]);
  if (out_path.empty()) out_path = record_path + ".html";

  try {
    const JsonValue record = parse_json_file(record_path);
    JsonValue trace;
    const bool have_trace = !trace_path.empty();
    if (have_trace) trace = parse_json_file(trace_path);

    const std::string html =
        obs::render_html_report(record, have_trace ? &trace : nullptr);
    if (out_path == "-") {
      std::cout << html;
      return 0;
    }
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "error: cannot open " << out_path << " for writing\n";
      return 1;
    }
    out << html;
    if (!out.good()) {
      std::cerr << "error: writing " << out_path << " failed\n";
      return 1;
    }
    std::cerr << "[report] wrote " << out_path << "\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
