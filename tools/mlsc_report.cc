// mlsc_report — renders a run record (and optionally its trace) into a
// single self-contained HTML page suitable for archiving as a CI
// artifact: per-client stall-breakdown stacked bars, per-level
// miss-rate tables, phase duration bars, and the access-latency
// histogram, with no external assets.
//
// Usage:
//   mlsc_report <run_record.json> [--trace=<trace.json>]
//               [--out=<report.html>]
//
// Default output path is the record path with a ".html" suffix; "-"
// writes to stdout.
//
// Exit status: 0 success, 1 cannot write the output, 3 command-line
// misuse or unreadable/malformed inputs.
#include <fstream>
#include <iostream>
#include <string>

#include "obs/report_html.h"
#include "support/argparse.h"
#include "support/check.h"
#include "support/json.h"

namespace {

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " <run_record.json> [--trace=<trace.json>] "
         "[--out=<report.html>]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlsc;
  std::string record_path;
  std::string trace_path;
  std::string out_path;

  JsonValue record;
  JsonValue trace;
  bool have_trace = false;
  try {
    ArgParser args(argc, argv);
    while (args.next()) {
      if (args.value_flag("--trace")) {
        trace_path = args.value();
      } else if (args.value_flag("--out")) {
        out_path = args.value();
      } else if (args.arg().rfind("--", 0) == 0) {
        args.unknown();
      } else if (record_path.empty()) {
        record_path = args.arg();
      } else {
        throw UsageError("unexpected extra argument '" + args.arg() + "'");
      }
    }
    if (record_path.empty()) {
      throw UsageError("missing run record path");
    }

    // Inputs are user-supplied; unreadable or malformed files are usage
    // errors, not crashes.
    record = parse_json_file(record_path);
    have_trace = !trace_path.empty();
    if (have_trace) trace = parse_json_file(trace_path);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage(std::cerr, argv[0]);
    return kUsageExitCode;
  }
  if (out_path.empty()) out_path = record_path + ".html";

  try {
    const std::string html =
        obs::render_html_report(record, have_trace ? &trace : nullptr);
    if (out_path == "-") {
      std::cout << html;
      return 0;
    }
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "error: cannot open " << out_path << " for writing\n";
      return 1;
    }
    out << html;
    if (!out.good()) {
      std::cerr << "error: writing " << out_path << " failed\n";
      return 1;
    }
    std::cerr << "[report] wrote " << out_path << "\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
