// mlsc_explain: one-shot cache-behavior diagnosis (DESIGN.md §18).
//
// Runs one (workload, scheme, machine) experiment with the cache-insight
// profiler attached and prints, per cache level, the miss classification
// (compulsory / capacity / inter-client interference), the interference
// share, and the heaviest eviction victim->evictor pairs:
//
//   $ mlsc_explain --workload sar --scheme inter
//   level  accesses  misses  compulsory  capacity  interference  interference_miss_pct
//   l1     ...
//
// The run record written by --json additionally carries the full
// "insight" section — miss-ratio-vs-capacity curves from one replay
// (one point per log-spaced capacity up to 4x the configured size) and
// the complete eviction-attribution matrix — which mlsc_report renders
// as the "Explain" panel and mlsc_bench_diff guards as deterministic
// insight.* metrics.
#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/cache_insight.h"
#include "obs/metrics.h"
#include "obs/run_record.h"
#include "sim/experiment.h"
#include "support/argparse.h"
#include "support/dynamic_bitset.h"
#include "support/log.h"
#include "support/string_util.h"
#include "support/table.h"
#include "support/units.h"
#include "workloads/registry.h"

#ifndef MLSC_GIT_SHA
#define MLSC_GIT_SHA "unknown"
#endif
#ifndef MLSC_BUILD_TYPE
#define MLSC_BUILD_TYPE "unknown"
#endif

namespace {

using namespace mlsc;

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " --workload <name> [options]\n"
         "\n"
         "Why does this mapping miss?  Classifies every miss at every\n"
         "cache level as compulsory, capacity, or inter-client\n"
         "interference, and attributes evictions to the client that\n"
         "caused them (DESIGN.md \xC2\xA7" "18).\n"
         "\n"
         "options:\n"
         "  --workload <name>     registry workload (or 'all'); required\n"
         "  --size-factor <f>     workload scale (default 1.0)\n"
         "  --scheme <s>          original|intra|inter|inter+sched "
         "(default inter)\n"
         "  --clients <n>         compute nodes (default 64)\n"
         "  --io-nodes <n>        I/O nodes (default 32)\n"
         "  --storage-nodes <n>   storage nodes (default 16)\n"
         "  --cache-mib <m>       per-node cache capacity at every level\n"
         "                        (default 32)\n"
         "  --chunk-kib <k>       chunk size (default 64)\n"
         "  --threads <n>         mapping-stage threads; 0 = all cores\n"
         "                        (insight is identical for any value)\n"
         "  --json <path>         write an mlsc-run-record-v1 document\n"
         "                        with the full insight section\n"
         "  --log-level <l>       debug|info|warn|error|off\n";
}

sim::SchemeSpec parse_scheme(const std::string& name) {
  if (name == "original") return sim::SchemeSpec::original();
  if (name == "intra") return sim::SchemeSpec::intra();
  if (name == "inter") return sim::SchemeSpec::inter();
  if (name == "inter+sched") return sim::SchemeSpec::inter_scheduled();
  throw UsageError("unknown scheme '" + name +
                   "' (want original|intra|inter|inter+sched)");
}

/// The heaviest cross-client victim->evictor cells of one level's
/// eviction-attribution matrix (self-evictions excluded — evicting your
/// own chunk is capacity pressure, not interference).
void print_top_evictors(const obs::LevelInsight& level,
                        std::size_t num_clients) {
  struct Cell {
    std::size_t victim, evictor;
    std::uint64_t count;
  };
  std::vector<Cell> cells;
  for (std::size_t v = 0; v < num_clients; ++v) {
    for (std::size_t e = 0; e < num_clients; ++e) {
      const std::uint64_t count =
          level.eviction_matrix[v * num_clients + e];
      if (v != e && count > 0) cells.push_back({v, e, count});
    }
  }
  if (cells.empty()) return;
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    return a.count != b.count ? a.count > b.count
                              : std::tie(a.victim, a.evictor) <
                                    std::tie(b.victim, b.evictor);
  });
  std::cout << "  " << level.level_name() << " cross-client evictions:";
  const std::size_t top = std::min<std::size_t>(cells.size(), 5);
  for (std::size_t i = 0; i < top; ++i) {
    std::cout << (i == 0 ? " " : ", ") << "client " << cells[i].evictor
              << " evicted client " << cells[i].victim << " x"
              << cells[i].count;
  }
  if (cells.size() > top) {
    std::cout << ", ... (" << cells.size() - top << " more pairs)";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name;
  std::string scheme_name = "inter";
  std::string json_path;
  double size_factor = 1.0;
  sim::MachineConfig machine;
  sim::SchemeSpec scheme = sim::SchemeSpec::inter();

  try {
    ArgParser args(argc, argv);
    while (args.next()) {
      if (args.flag("--help") || args.flag("-h")) {
        print_usage(std::cout, argv[0]);
        return 0;
      } else if (args.value_flag("--workload")) {
        workload_name = args.value();
      } else if (args.value_flag("--size-factor")) {
        size_factor = args.value_double();
      } else if (args.value_flag("--scheme")) {
        scheme_name = args.value();
      } else if (args.value_flag("--clients")) {
        machine.clients = args.value_u64();
      } else if (args.value_flag("--io-nodes")) {
        machine.io_nodes = args.value_u64();
      } else if (args.value_flag("--storage-nodes")) {
        machine.storage_nodes = args.value_u64();
      } else if (args.value_flag("--cache-mib")) {
        const std::uint64_t bytes = args.value_u64() * kMiB;
        machine.client_cache_bytes = bytes;
        machine.io_cache_bytes = bytes;
        machine.storage_cache_bytes = bytes;
      } else if (args.value_flag("--chunk-kib")) {
        machine.chunk_size_bytes = args.value_u64() * kKiB;
        machine.stripe_size_bytes = machine.chunk_size_bytes;
      } else if (args.value_flag("--threads")) {
        scheme.num_threads = args.value_u64();
      } else if (args.value_flag("--json")) {
        json_path = args.value();
      } else if (args.value_flag("--log-level")) {
        LogLevel level;
        if (!parse_log_level(args.value(), &level)) {
          throw UsageError("bad --log-level '" + args.value() + "'");
        }
        set_log_level(level);
      } else {
        args.unknown();
      }
    }
    if (workload_name.empty()) {
      throw UsageError("--workload is required");
    }
    const std::size_t threads = scheme.num_threads;
    scheme = parse_scheme(scheme_name);
    scheme.num_threads = threads;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage(std::cerr, argv[0]);
    return kUsageExitCode;
  }

  machine.explain = true;  // the whole point of this tool
  std::vector<std::string> names;
  if (workload_name == "all") {
    names = workloads::workload_names();
  } else {
    names.push_back(workload_name);
  }

  obs::RunRecord record;
  record.binary = "mlsc_explain";
  record.machine = machine.to_string();
  record.apps = names;
  record.build_type = MLSC_BUILD_TYPE;
  record.git_sha = MLSC_GIT_SHA;
  record.simd_level = DynamicBitset::simd_dispatch_level();
  record.hardware_threads = std::thread::hardware_concurrency();

  try {
    for (const std::string& name : names) {
      const auto workload = workloads::make_workload(name, size_factor);
      obs::ScopedPhase phase(record, name + "/" + scheme.name());
      const auto result = sim::run_experiment(workload, scheme, machine);
      const obs::InsightResult& insight = result.engine.insight;

      Table table({"level", "accesses", "misses", "compulsory", "capacity",
                   "interference", "interference_miss_pct"});
      for (const auto& level : insight.levels) {
        table.add_row({level.level_name(), std::to_string(level.accesses),
                       std::to_string(level.misses),
                       std::to_string(level.compulsory),
                       std::to_string(level.capacity),
                       std::to_string(level.interference),
                       format_double(level.interference_miss_pct(), 2)});
      }
      std::cout << name << " / " << scheme.name() << ":\n";
      table.print(std::cout);
      for (const auto& level : insight.levels) {
        print_top_evictors(level, insight.num_clients);
      }
      std::cout << "\n";
      record.tables.emplace_back(name + " insight", std::move(table));
      // The full curves + matrix go to the record's insight section; a
      // multi-workload run keeps the last one (diff the per-workload
      // tables instead, or run one workload per record).
      record.insight = insight;
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  if (!json_path.empty()) {
    record.include_metrics = obs::metrics_enabled();
    if (!record.write_file(json_path)) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    std::cerr << "[mlsc_explain] wrote " << json_path << "\n";
  }
  return 0;
}
