// mlsc_serve — online mapping service for workload churn.
//
// Consumes an mlsc-serve-event-v1 event stream (register / depart /
// scale / fault), keeps a live mapping (tags, posting index, standing
// affinity forest, cut, placement), and settles every event with the
// cheapest remap scope the cost/benefit policy accepts: patch the new
// work in, partially remap (recut the standing forest), or fully
// recompute.  Every decision is journaled as a JSON line; a journal
// replays as an event stream, so `--replay journal.jsonl` reproduces a
// bit-identical end state at any thread count.
//
// Usage:
//   mlsc_serve --events FILE | --replay FILE
//              [--clients N] [--io N] [--storage N] [--chunk BYTES]
//              [--threads N] [--seed S]
//              [--policy auto|patch|partial|full]
//              [--patch-imbalance F] [--balance F] [--drift F]
//              [--hysteresis-ms MS] [--drift-sample K] [--max-chunks N]
//              [--journal PATH] [--snapshot PATH] [--snapshot-every N]
//              [--prom PATH] [--check] [--print-state]
//              [--trace PATH] [--metrics PATH] [--json PATH]
//              [--log-level L]
//
// Exit status: 0 success, 1 runtime failure, 3 command-line misuse
// (including malformed event files).
#include <iostream>
#include <string>

#include "obs/metrics.h"
#include "obs/session.h"
#include "serve/event.h"
#include "serve/service.h"
#include "support/argparse.h"
#include "support/log.h"
#include "support/thread_pool.h"

namespace {

using namespace mlsc;

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0 << " --events FILE [options]\n"
      << "  --events FILE       event stream (JSON lines, "
      << serve::kServeEventSchema << ")\n"
      << "  --replay FILE       alias of --events (journals replay as "
         "streams)\n"
      << "  --clients/--io/--storage N   topology (default 64/32/16)\n"
      << "  --chunk BYTES       data chunk size (default 65536)\n"
      << "  --threads N         mapping threads; 0 = all cores (default 1,\n"
      << "                      end state is identical for any value)\n"
      << "  --seed S            journal seed stamp (default 0)\n"
      << "  --policy KIND       auto | patch | partial | full (default "
         "auto)\n"
      << "  --patch-imbalance F patch acceptable while imbalance <= F "
         "(default 0.25)\n"
      << "  --balance F         cut balance slack (default 0.10)\n"
      << "  --drift F           miss-rate drift threshold (default 0.15)\n"
      << "  --hysteresis-ms MS  min virtual time between full recomputes "
         "(default 10)\n"
      << "  --drift-sample K    drift probes replay K sampled clients "
         "(default 0 = off)\n"
      << "  --max-chunks N      iteration-chunk cap per instance (default "
         "4096)\n"
      << "  --journal PATH      write the decision journal (JSON lines)\n"
      << "  --snapshot PATH     write a run-record snapshot (see "
         "--snapshot-every)\n"
      << "  --snapshot-every N  refresh the snapshot every N events "
         "(default: end only)\n"
      << "  --prom PATH         Prometheus textfile, atomically refreshed "
         "per event\n"
      << "  --check             verify state invariants after every event\n"
      << "  --print-state       print the end-state fingerprint to stdout\n"
      << CommonToolOptions::usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::string events_path;
  bool print_state = false;
  CommonToolOptions common;
  serve::ServiceOptions options;
  options.machine = sim::MachineConfig::paper_default();
  std::vector<serve::ServeEvent> events;

  try {
    ArgParser args(argc, argv);
    while (args.next()) {
      if (common.match(args)) {
        // Shared flags handled.
      } else if (args.value_flag("--events") || args.value_flag("--replay")) {
        events_path = args.value();
      } else if (args.value_flag("--clients")) {
        options.machine.clients = args.value_u64();
      } else if (args.value_flag("--io")) {
        options.machine.io_nodes = args.value_u64();
      } else if (args.value_flag("--storage")) {
        options.machine.storage_nodes = args.value_u64();
      } else if (args.value_flag("--chunk")) {
        options.machine.chunk_size_bytes = args.value_u64();
        options.machine.stripe_size_bytes = options.machine.chunk_size_bytes;
      } else if (args.value_flag("--threads")) {
        options.num_threads = args.value_u64();
      } else if (args.value_flag("--seed")) {
        options.seed = args.value_u64();
      } else if (args.value_flag("--policy")) {
        const std::string kind = args.value();
        if (kind == "auto") {
          options.policy.force = serve::ServePolicy::Force::kAuto;
        } else if (kind == "patch") {
          options.policy.force = serve::ServePolicy::Force::kPatch;
        } else if (kind == "partial") {
          options.policy.force = serve::ServePolicy::Force::kPartial;
        } else if (kind == "full") {
          options.policy.force = serve::ServePolicy::Force::kFull;
        } else {
          throw UsageError("--policy: unknown policy '" + kind + "'");
        }
      } else if (args.value_flag("--patch-imbalance")) {
        options.policy.patch_imbalance_limit = args.value_double();
      } else if (args.value_flag("--balance")) {
        options.state.cut_balance_slack = args.value_double();
        options.policy.full_target_imbalance = options.state.cut_balance_slack;
      } else if (args.value_flag("--drift")) {
        options.policy.remap.miss_rate_drift = args.value_double();
      } else if (args.value_flag("--hysteresis-ms")) {
        options.policy.hysteresis_ns = args.value_u64() * kMillisecond;
      } else if (args.value_flag("--drift-sample")) {
        options.drift_sample = args.value_u64();
      } else if (args.value_flag("--max-chunks")) {
        options.state.tagging.max_iteration_chunks =
            static_cast<std::uint32_t>(args.value_u64());
      } else if (args.value_flag("--journal")) {
        options.journal_path = args.value();
      } else if (args.value_flag("--snapshot")) {
        options.snapshot_path = args.value();
      } else if (args.value_flag("--snapshot-every")) {
        options.snapshot_every = args.value_u64();
      } else if (args.value_flag("--prom")) {
        options.prom_path = args.value();
      } else if (args.flag("--check")) {
        options.check_invariants = true;
      } else if (args.flag("--print-state")) {
        print_state = true;
      } else {
        args.unknown();
      }
    }
    if (events_path.empty()) {
      throw UsageError("--events (or --replay) is required");
    }
    // A malformed event file is CLI misuse: the tool never started.
    events = serve::load_event_stream(events_path);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage(std::cerr, argv[0]);
    return kUsageExitCode;
  }

  // Live metrics back the Prometheus endpoint even without --metrics.
  obs::ObsScope obs_scope(common.trace_path, common.metrics_path,
                          /*force_metrics=*/!options.prom_path.empty());

  try {
    serve::MappingService service(options);
    service.run(events);
    if (!common.json_path.empty()) {
      obs::RunRecord record = service.snapshot();
      if (record.write_file(common.json_path)) {
        std::cerr << "[mlsc_serve] wrote " << common.json_path << "\n";
      } else {
        std::cerr << "error: cannot write " << common.json_path << "\n";
        return 1;
      }
    }
    const auto& decisions = service.decisions();
    std::size_t patches = 0;
    std::size_t partials = 0;
    std::size_t fulls = 0;
    for (const auto& d : decisions) {
      patches += d.scope == serve::RemapScope::kPatch ? 1 : 0;
      partials += d.scope == serve::RemapScope::kPartial ? 1 : 0;
      fulls += d.scope == serve::RemapScope::kFull ? 1 : 0;
    }
    std::cerr << "[mlsc_serve] " << decisions.size() << " events: "
              << patches << " patch, " << partials << " partial, " << fulls
              << " full; live=" << service.state().num_live_workloads()
              << " chunks=" << service.state().standing_chunks()
              << " imbalance=" << service.state().imbalance()
              << " pause=" << format_time(service.total_pause()) << "\n";
    if (print_state) std::cout << service.state().fingerprint();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
