// CLOCK (second-chance) policy core: a circular buffer of frames with
// reference bits; the hand sweeps past referenced frames, clearing them.
#include <unordered_map>
#include <vector>

#include "cache/policy.h"
#include "support/check.h"

namespace mlsc::cache {
namespace {

class ClockPolicy : public PolicyCore {
 public:
  explicit ClockPolicy(std::size_t capacity) : frames_(capacity) {
    MLSC_CHECK(capacity > 0, "cache capacity must be positive");
  }

  bool contains(ChunkId id) const override { return index_.count(id) != 0; }

  bool touch(ChunkId id) override {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    frames_[it->second].referenced = true;
    return true;
  }

  std::optional<ChunkId> insert(ChunkId id) override {
    if (touch(id)) return std::nullopt;
    if (size_ < frames_.size()) {
      // Fill an empty frame.
      for (std::size_t f = 0; f < frames_.size(); ++f) {
        if (!frames_[f].occupied) {
          place(f, id);
          ++size_;
          return std::nullopt;
        }
      }
      MLSC_CHECK(false, "size bookkeeping out of sync");
    }
    // Sweep the hand until an unreferenced frame is found.
    while (frames_[hand_].referenced) {
      frames_[hand_].referenced = false;
      hand_ = (hand_ + 1) % frames_.size();
    }
    const ChunkId victim = frames_[hand_].chunk;
    index_.erase(victim);
    place(hand_, id);
    hand_ = (hand_ + 1) % frames_.size();
    return victim;
  }

  bool erase(ChunkId id) override {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    frames_[it->second] = Frame{};
    index_.erase(it);
    --size_;
    return true;
  }

  std::size_t size() const override { return size_; }
  std::size_t capacity() const override { return frames_.size(); }
  PolicyKind kind() const override { return PolicyKind::kClock; }

 private:
  struct Frame {
    ChunkId chunk = 0;
    bool occupied = false;
    bool referenced = false;
  };

  void place(std::size_t frame, ChunkId id) {
    frames_[frame] = Frame{id, /*occupied=*/true, /*referenced=*/true};
    index_[id] = frame;
  }

  std::vector<Frame> frames_;
  std::unordered_map<ChunkId, std::size_t> index_;
  std::size_t hand_ = 0;
  std::size_t size_ = 0;
};

}  // namespace

std::unique_ptr<PolicyCore> make_clock_policy(std::size_t capacity) {
  return std::make_unique<ClockPolicy>(capacity);
}

}  // namespace mlsc::cache
