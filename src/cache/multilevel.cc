#include "cache/multilevel.h"

#include "obs/cache_insight.h"
#include "obs/metrics.h"
#include "support/check.h"

namespace mlsc::cache {

namespace {

/// Metric prefix per hierarchy level: compute-node caches are "L1",
/// I/O-node caches "L2", storage-node caches "L3" (paper §3's three
/// cache levels).  The dummy root never carries a cache.
const char* metric_prefix(topology::NodeKind kind) {
  switch (kind) {
    case topology::NodeKind::kCompute:
      return "cache.l1";
    case topology::NodeKind::kIo:
      return "cache.l2";
    case topology::NodeKind::kStorage:
      return "cache.l3";
    case topology::NodeKind::kDummyRoot:
      break;
  }
  return "cache.other";
}

}  // namespace

const char* placement_mode_name(PlacementMode mode) {
  switch (mode) {
    case PlacementMode::kAccessBased:
      return "access-based";
    case PlacementMode::kEvictionBased:
      return "eviction-based";
    case PlacementMode::kExclusive:
      return "exclusive";
  }
  return "?";
}

MultiLevelCache::MultiLevelCache(const topology::HierarchyTree& tree,
                                 std::uint64_t chunk_size_bytes,
                                 PolicyKind policy, PlacementMode placement)
    : tree_(tree), chunk_size_(chunk_size_bytes), placement_(placement) {
  MLSC_CHECK(tree_.finalized(), "hierarchy tree must be finalized");
  MLSC_CHECK(chunk_size_ > 0, "chunk size must be positive");
  caches_.resize(tree_.num_nodes());
  failed_.assign(tree_.num_nodes(), 0);
  base_chunks_.assign(tree_.num_nodes(), 0);
  for (topology::NodeId id = 0; id < tree_.num_nodes(); ++id) {
    const auto& node = tree_.node(id);
    if (node.cache_capacity_bytes == 0) continue;
    const std::size_t chunks =
        static_cast<std::size_t>(node.cache_capacity_bytes / chunk_size_);
    MLSC_CHECK(chunks > 0, "cache at " << node.name
                                       << " smaller than one chunk");
    base_chunks_[id] = chunks;
    caches_[id] = std::make_unique<StorageCache>(node.name, chunks, policy,
                                                 chunk_size_);
    if (obs::metrics_enabled()) {
      caches_[id]->bind_metrics(metric_prefix(node.kind));
    }
  }
}

const StorageCache& MultiLevelCache::cache(topology::NodeId node) const {
  MLSC_CHECK(node < caches_.size() && caches_[node] != nullptr,
             "node " << node << " has no cache");
  return *caches_[node];
}

void MultiLevelCache::set_node_failed(topology::NodeId node, bool failed) {
  MLSC_CHECK(node < caches_.size(), "node " << node << " out of range");
  if (caches_[node] == nullptr) return;
  if (failed && failed_[node] == 0) {
    caches_[node]->clear();  // fail-stop: contents (dirty data too) lost
  } else if (!failed && failed_[node] != 0) {
    caches_[node]->set_capacity(base_chunks_[node]);  // cold restart
  }
  failed_[node] = failed ? 1 : 0;
}

void MultiLevelCache::set_node_capacity_divisor(topology::NodeId node,
                                                double divisor) {
  MLSC_CHECK(node < caches_.size(), "node " << node << " out of range");
  MLSC_CHECK(divisor >= 1.0, "capacity divisor must be >= 1");
  if (caches_[node] == nullptr) return;
  const auto chunks = static_cast<std::size_t>(
      static_cast<double>(base_chunks_[node]) / divisor);
  caches_[node]->set_capacity(chunks > 0 ? chunks : 1);
}

void MultiLevelCache::fill(topology::NodeId node, ChunkId chunk, bool dirty,
                           std::uint32_t& writebacks) {
  auto evicted = caches_[node]->insert(chunk);
  if (dirty && write_back_) caches_[node]->mark_dirty(chunk);
  if (!evicted.has_value()) return;

  // Decide where the evicted chunk goes.  Under eviction-based and
  // exclusive placement every eviction demotes toward the root; under
  // the default access-based placement only *dirty* data must survive
  // (it has to reach the disk eventually).
  const bool must_demote = placement_ != PlacementMode::kAccessBased ||
                           (write_back_ && evicted->dirty);
  if (!must_demote) return;

  topology::NodeId parent = tree_.node(node).parent;
  while (parent != topology::kInvalidNode) {
    if (caches_[parent] != nullptr && failed_[parent] == 0) {
      if (placement_ != PlacementMode::kAccessBased) {
        fill(parent, evicted->chunk, evicted->dirty, writebacks);
      } else if (caches_[parent]->contains(evicted->chunk)) {
        // Inclusive copy already present: just transfer dirtiness.
        if (evicted->dirty) caches_[parent]->mark_dirty(evicted->chunk);
      } else {
        fill(parent, evicted->chunk, evicted->dirty, writebacks);
      }
      return;
    }
    parent = tree_.node(parent).parent;
  }
  // No cache above: a dirty chunk leaves the hierarchy -> disk write.
  if (evicted->dirty) ++writebacks;
}

AccessResult MultiLevelCache::access(topology::NodeId client, ChunkId chunk,
                                     bool is_write) {
  MLSC_CHECK(tree_.node(client).kind == topology::NodeKind::kCompute,
             "accesses must originate at a compute node");
  const auto path = tree_.path_to_root(client);

  AccessResult result;
  std::vector<topology::NodeId> missed;  // cached nodes probed and missed
  for (topology::NodeId node : path) {
    if (caches_[node] == nullptr) continue;
    if (failed_[node] != 0) {
      // Degraded routing: a failed cache is detected (costing a failover
      // penalty upstream), then its healthy siblings are probed before
      // the walk falls through to the next level.
      ++result.failed_probes;
      const topology::NodeId parent = tree_.node(node).parent;
      if (parent != topology::kInvalidNode) {
        for (topology::NodeId sibling : tree_.node(parent).children) {
          if (sibling == node || caches_[sibling] == nullptr ||
              failed_[sibling] != 0) {
            continue;
          }
          if (caches_[sibling]->contains(chunk)) {
            result.hit_node = sibling;
            result.peer_hit = true;
            break;
          }
        }
        if (result.peer_hit) break;
      }
      continue;
    }
    ++result.caches_probed;
    if (caches_[node]->access(chunk)) {
      result.hit_node = node;
      break;
    }
    missed.push_back(node);

    // Cooperative caching: right after the client's own cache missed,
    // probe the sibling compute nodes under the same parent.
    if (cooperative_ && node == client) {
      const topology::NodeId parent = tree_.node(client).parent;
      if (parent != topology::kInvalidNode) {
        for (topology::NodeId sibling : tree_.node(parent).children) {
          if (sibling == client || caches_[sibling] == nullptr ||
              failed_[sibling] != 0) {
            continue;
          }
          if (caches_[sibling]->contains(chunk)) {
            result.hit_node = sibling;
            result.peer_hit = true;
            break;
          }
        }
        if (result.peer_hit) break;
      }
    }
  }

  switch (placement_) {
    case PlacementMode::kAccessBased:
      // Fill every cache that missed on the way to the hit/disk.
      for (topology::NodeId node : missed) {
        fill(node, chunk, /*dirty=*/false, result.writebacks_to_disk);
      }
      break;
    case PlacementMode::kEvictionBased:
    case PlacementMode::kExclusive:
      // Fill only the cache closest to the client; evictions trickle down
      // via fill().  Exclusive placement additionally removes the chunk
      // from the shared cache that hit.
      if (!missed.empty()) {
        fill(missed.front(), chunk, /*dirty=*/false,
             result.writebacks_to_disk);
      }
      if (placement_ == PlacementMode::kExclusive &&
          result.hit_node != topology::kInvalidNode &&
          result.hit_node != client && !result.peer_hit && !missed.empty()) {
        caches_[result.hit_node]->erase(chunk);
      }
      break;
  }

  if (is_write && write_back_ && caches_[client] != nullptr &&
      failed_[client] == 0) {
    caches_[client]->mark_dirty(chunk);
  }
  return result;
}

std::uint32_t MultiLevelCache::install(topology::NodeId client,
                                       ChunkId chunk) {
  std::uint32_t writebacks = 0;
  for (topology::NodeId node : tree_.path_to_root(client)) {
    if (caches_[node] == nullptr || failed_[node] != 0) continue;
    if (!caches_[node]->contains(chunk)) {
      fill(node, chunk, /*dirty=*/false, writebacks);
    }
  }
  return writebacks;
}

bool MultiLevelCache::resident_on_path(topology::NodeId client,
                                       ChunkId chunk) const {
  for (topology::NodeId node : tree_.path_to_root(client)) {
    if (caches_[node] != nullptr && failed_[node] == 0 &&
        caches_[node]->contains(chunk)) {
      return true;
    }
  }
  return false;
}

CacheStats MultiLevelCache::aggregate_stats(topology::NodeKind kind) const {
  CacheStats total;
  for (topology::NodeId id = 0; id < tree_.num_nodes(); ++id) {
    if (caches_[id] != nullptr && tree_.node(id).kind == kind) {
      total += caches_[id]->stats();
    }
  }
  return total;
}

void MultiLevelCache::attach_insight(obs::HierarchyInsight& insight) {
  for (topology::NodeId id = 0; id < tree_.num_nodes(); ++id) {
    if (caches_[id] == nullptr) continue;
    int level = 0;
    switch (tree_.node(id).kind) {
      case topology::NodeKind::kCompute:
        level = 1;
        break;
      case topology::NodeKind::kIo:
        level = 2;
        break;
      case topology::NodeKind::kStorage:
        level = 3;
        break;
      case topology::NodeKind::kDummyRoot:
        continue;
    }
    caches_[id]->set_insight(&insight.add_cache(
        tree_.node(id).name, level,
        static_cast<std::uint64_t>(base_chunks_[id])));
  }
}

void MultiLevelCache::reset_stats() {
  for (auto& cache : caches_) {
    if (cache != nullptr) cache->reset_stats();
  }
}

}  // namespace mlsc::cache
