// Replacement policy cores for chunk-granularity storage caches.
//
// The paper manages all storage caches with LRU (§5.1) but notes the
// approach "can work with any storage caching policy"; the policy
// ablation bench exercises that claim with the alternatives studied in
// its related work (FIFO, CLOCK, LFU, 2Q, MQ — Zhou et al.'s multi-queue
// policy for second-level buffer caches).
//
// A PolicyCore owns the resident set: membership, hit recency state, and
// victim selection live together so policies with ghost state (2Q, MQ)
// fit the same interface.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace mlsc::cache {

/// Global data-chunk id (index into the DataSpace's chunk numbering).
using ChunkId = std::uint32_t;

enum class PolicyKind { kLru, kFifo, kClock, kLfu, kTwoQ, kMq, kArc };

const char* policy_kind_name(PolicyKind kind);

/// Parses "lru", "fifo", "clock", "lfu", "2q", "mq"; throws on others.
PolicyKind parse_policy_kind(const std::string& name);

class PolicyCore {
 public:
  virtual ~PolicyCore() = default;

  /// True when the chunk is resident.
  virtual bool contains(ChunkId id) const = 0;

  /// Records an access to a resident chunk; returns false when the chunk
  /// is not resident (the caller then fetches and calls insert()).
  virtual bool touch(ChunkId id) = 0;

  /// Makes the chunk resident, evicting if at capacity.  Returns the
  /// evicted chunk, if any.  Inserting a resident chunk is a no-op that
  /// returns nullopt.
  virtual std::optional<ChunkId> insert(ChunkId id) = 0;

  /// Removes a chunk (external invalidation, e.g. exclusive-caching
  /// promotion).  Returns false when it was not resident.
  virtual bool erase(ChunkId id) = 0;

  virtual std::size_t size() const = 0;
  virtual std::size_t capacity() const = 0;
  virtual PolicyKind kind() const = 0;
};

/// Creates a policy core with the given capacity in chunks (must be > 0).
std::unique_ptr<PolicyCore> make_policy(PolicyKind kind,
                                        std::size_t capacity_chunks);

}  // namespace mlsc::cache
