// A single storage cache: a named, statistics-keeping wrapper around a
// replacement policy core.  Granularity is the data chunk (paper §5.1:
// "the unit of granularity for managing these caches is a data chunk").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>

#include "cache/policy.h"

namespace mlsc::obs {
class CacheInsight;
class Counter;
}  // namespace mlsc::obs

namespace mlsc::cache {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;
  /// Exact data movement at chunk granularity (zero when the cache was
  /// built without a chunk size): bytes this cache served from residency
  /// (hits) and bytes written into it (insertions).
  std::uint64_t bytes_served = 0;
  std::uint64_t bytes_filled = 0;

  double miss_rate() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses);
  }
  double hit_rate() const { return accesses == 0 ? 0.0 : 1.0 - miss_rate(); }

  CacheStats& operator+=(const CacheStats& other);
};

class StorageCache {
 public:
  /// `chunk_size_bytes` sizes the bytes_served / bytes_filled stats;
  /// 0 (callers that never read them) leaves them at zero.
  StorageCache(std::string name, std::size_t capacity_chunks,
               PolicyKind policy, std::uint64_t chunk_size_bytes = 0);

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return core_->capacity(); }
  std::size_t size() const { return core_->size(); }
  PolicyKind policy() const { return core_->kind(); }

  bool contains(ChunkId id) const { return core_->contains(id); }

  /// Looks up a chunk, counting a hit or a miss.  Does not insert — the
  /// multi-level path decides placement separately.
  bool access(ChunkId id);

  /// An evicted chunk and whether it held unwritten (dirty) data.
  struct Evicted {
    ChunkId chunk = 0;
    bool dirty = false;
  };

  /// Makes the chunk resident; returns the evicted chunk, if any.
  std::optional<Evicted> insert(ChunkId id);

  /// Marks a resident chunk as holding unwritten data (write-back).
  void mark_dirty(ChunkId id);
  bool is_dirty(ChunkId id) const { return dirty_.count(id) != 0; }

  /// Invalidates a chunk (used by exclusive-caching placement).
  bool erase(ChunkId id);

  /// Drops every resident chunk (fail-stop: contents are lost, dirty data
  /// included).  Statistics survive; the policy core restarts cold.
  void clear();

  /// Restarts the cache cold at a new capacity (degraded mode).  Contents
  /// are dropped because the underlying device lost them; stats survive.
  void set_capacity(std::size_t capacity_chunks);

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Mirrors this cache's stat increments into the global metrics
  /// registry under `<prefix>.<measure>` (e.g. "cache.l1.hits").  No-op
  /// when metrics are disabled at call time; binding is per instance so
  /// several caches may share one prefix (their counts then sum).
  void bind_metrics(const std::string& prefix);

  /// Attaches (or detaches, with nullptr) the explanation observer
  /// (obs/cache_insight.h): every stat-counting event is mirrored to it
  /// so reuse distances, miss classes and eviction attribution stay in
  /// lockstep with `stats()`.  Costs one null test per event when off.
  void set_insight(obs::CacheInsight* insight) { insight_ = insight; }

 private:
  struct BoundCounters {
    obs::Counter* accesses = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* insertions = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* dirty_evictions = nullptr;
    obs::Counter* bytes_served = nullptr;
    obs::Counter* bytes_filled = nullptr;
  };

  std::string name_;
  std::uint64_t chunk_size_bytes_ = 0;
  std::unique_ptr<PolicyCore> core_;
  CacheStats stats_;
  std::unordered_set<ChunkId> dirty_;
  BoundCounters metrics_;
  obs::CacheInsight* insight_ = nullptr;
};

}  // namespace mlsc::cache
