// ARC (Adaptive Replacement Cache, Megiddo & Modha) policy core — the
// adaptive recency/frequency family the paper's related work samples
// with SARC [20].  Two resident LRU lists (T1: seen once, T2: seen
// again) plus two ghost lists (B1, B2) steer the adaptation target p.
#include <list>
#include <unordered_map>

#include "cache/policy.h"
#include "support/check.h"

namespace mlsc::cache {
namespace {

class ArcPolicy : public PolicyCore {
 public:
  explicit ArcPolicy(std::size_t capacity) : capacity_(capacity) {
    MLSC_CHECK(capacity_ > 0, "cache capacity must be positive");
  }

  bool contains(ChunkId id) const override {
    auto it = where_.find(id);
    return it != where_.end() &&
           (it->second.list == List::kT1 || it->second.list == List::kT2);
  }

  bool touch(ChunkId id) override {
    auto it = where_.find(id);
    if (it == where_.end()) return false;
    switch (it->second.list) {
      case List::kT1:
        // Second reference: promote to the frequency list.
        t1_.erase(it->second.pos);
        t2_.push_front(id);
        it->second = Entry{List::kT2, t2_.begin()};
        return true;
      case List::kT2:
        t2_.splice(t2_.begin(), t2_, it->second.pos);
        return true;
      case List::kB1:
      case List::kB2:
        return false;  // ghost: not resident
    }
    return false;
  }

  std::optional<ChunkId> insert(ChunkId id) override {
    if (touch(id)) return std::nullopt;
    std::optional<ChunkId> evicted;

    auto it = where_.find(id);
    if (it != where_.end() && it->second.list == List::kB1) {
      // Ghost hit in B1: favour recency (grow p), insert into T2.
      const std::size_t delta =
          std::max<std::size_t>(1, b2_.size() / std::max<std::size_t>(
                                                    1, b1_.size()));
      p_ = std::min(capacity_, p_ + delta);
      b1_.erase(it->second.pos);
      where_.erase(it);
      evicted = replace(/*in_b2=*/false);
      t2_.push_front(id);
      where_[id] = Entry{List::kT2, t2_.begin()};
      return evicted;
    }
    if (it != where_.end() && it->second.list == List::kB2) {
      // Ghost hit in B2: favour frequency (shrink p), insert into T2.
      const std::size_t delta =
          std::max<std::size_t>(1, b1_.size() / std::max<std::size_t>(
                                                    1, b2_.size()));
      p_ = p_ > delta ? p_ - delta : 0;
      b2_.erase(it->second.pos);
      where_.erase(it);
      evicted = replace(/*in_b2=*/true);
      t2_.push_front(id);
      where_[id] = Entry{List::kT2, t2_.begin()};
      return evicted;
    }

    // Brand new chunk.
    if (t1_.size() + b1_.size() == capacity_) {
      if (t1_.size() < capacity_) {
        drop_ghost(b1_);
        evicted = replace(false);
      } else {
        // B1 empty: evict the LRU of T1 directly.
        evicted = pop_lru(t1_, /*ghost=*/nullptr);
      }
    } else if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >=
               capacity_) {
      if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >=
          2 * capacity_) {
        drop_ghost(b2_);
      }
      if (size() == capacity_) evicted = replace(false);
    }
    t1_.push_front(id);
    where_[id] = Entry{List::kT1, t1_.begin()};
    return evicted;
  }

  bool erase(ChunkId id) override {
    auto it = where_.find(id);
    if (it == where_.end() || it->second.list == List::kB1 ||
        it->second.list == List::kB2) {
      return false;
    }
    (it->second.list == List::kT1 ? t1_ : t2_).erase(it->second.pos);
    where_.erase(it);
    return true;
  }

  std::size_t size() const override { return t1_.size() + t2_.size(); }
  std::size_t capacity() const override { return capacity_; }
  PolicyKind kind() const override { return PolicyKind::kArc; }

 private:
  enum class List { kT1, kT2, kB1, kB2 };
  struct Entry {
    List list;
    std::list<ChunkId>::iterator pos;
  };

  void drop_ghost(std::list<ChunkId>& ghost) {
    if (ghost.empty()) return;
    where_.erase(ghost.back());
    ghost.pop_back();
  }

  ChunkId pop_lru(std::list<ChunkId>& from, std::list<ChunkId>* ghost) {
    MLSC_CHECK(!from.empty(), "ARC replace on an empty list");
    const ChunkId victim = from.back();
    from.pop_back();
    if (ghost != nullptr) {
      ghost->push_front(victim);
      where_[victim] =
          Entry{ghost == &b1_ ? List::kB1 : List::kB2, ghost->begin()};
    } else {
      where_.erase(victim);
    }
    return victim;
  }

  /// ARC's REPLACE: evict from T1 into B1 when T1 exceeds the target p
  /// (or on a B2 hit at the boundary), else from T2 into B2.
  std::optional<ChunkId> replace(bool in_b2) {
    if (size() < capacity_) return std::nullopt;
    if (!t1_.empty() &&
        (t1_.size() > p_ || (in_b2 && t1_.size() == p_))) {
      return pop_lru(t1_, &b1_);
    }
    if (!t2_.empty()) return pop_lru(t2_, &b2_);
    return pop_lru(t1_, &b1_);
  }

  std::size_t capacity_;
  std::size_t p_ = 0;        // adaptation target for |T1|
  std::list<ChunkId> t1_;    // resident, referenced once
  std::list<ChunkId> t2_;    // resident, referenced at least twice
  std::list<ChunkId> b1_;    // ghosts of T1
  std::list<ChunkId> b2_;    // ghosts of T2
  std::unordered_map<ChunkId, Entry> where_;
};

}  // namespace

std::unique_ptr<PolicyCore> make_arc_policy(std::size_t capacity) {
  return std::make_unique<ArcPolicy>(capacity);
}

}  // namespace mlsc::cache
