// Simplified 2Q (Johnson & Shasha): new chunks enter a FIFO probation
// queue (A1in, 25% of capacity); a re-reference after eviction into the
// ghost queue (A1out, ids only, 50% of capacity) promotes the chunk to
// the main LRU queue (Am).  Hits in A1in leave the chunk in place, as in
// the original algorithm.
#include <list>
#include <unordered_map>

#include "cache/policy.h"
#include "support/check.h"

namespace mlsc::cache {
namespace {

class TwoQPolicy : public PolicyCore {
 public:
  explicit TwoQPolicy(std::size_t capacity) : capacity_(capacity) {
    MLSC_CHECK(capacity_ > 0, "cache capacity must be positive");
    a1in_capacity_ = std::max<std::size_t>(1, capacity_ / 4);
    ghost_capacity_ = std::max<std::size_t>(1, capacity_ / 2);
  }

  bool contains(ChunkId id) const override {
    auto it = where_.find(id);
    return it != where_.end() && it->second.queue != Queue::kGhost;
  }

  bool touch(ChunkId id) override {
    auto it = where_.find(id);
    if (it == where_.end() || it->second.queue == Queue::kGhost) return false;
    if (it->second.queue == Queue::kAm) {
      am_.splice(am_.begin(), am_, it->second.pos);
    }
    // Hits in A1in do not reorder (2Q's "correlated reference" rule).
    return true;
  }

  std::optional<ChunkId> insert(ChunkId id) override {
    if (touch(id)) return std::nullopt;
    auto it = where_.find(id);
    std::optional<ChunkId> evicted;
    if (it != where_.end()) {
      // Ghost hit: promote into Am.
      ghost_.erase(it->second.pos);
      where_.erase(it);
      evicted = make_room();
      am_.push_front(id);
      where_[id] = Entry{Queue::kAm, am_.begin()};
      return evicted;
    }
    evicted = make_room();
    a1in_.push_front(id);
    where_[id] = Entry{Queue::kA1in, a1in_.begin()};
    return evicted;
  }

  bool erase(ChunkId id) override {
    auto it = where_.find(id);
    if (it == where_.end() || it->second.queue == Queue::kGhost) return false;
    queue_list(it->second.queue).erase(it->second.pos);
    where_.erase(it);
    return true;
  }

  std::size_t size() const override { return a1in_.size() + am_.size(); }
  std::size_t capacity() const override { return capacity_; }
  PolicyKind kind() const override { return PolicyKind::kTwoQ; }

 private:
  enum class Queue { kA1in, kAm, kGhost };
  struct Entry {
    Queue queue;
    std::list<ChunkId>::iterator pos;
  };

  std::list<ChunkId>& queue_list(Queue q) {
    switch (q) {
      case Queue::kA1in:
        return a1in_;
      case Queue::kAm:
        return am_;
      case Queue::kGhost:
        return ghost_;
    }
    MLSC_CHECK(false, "bad queue");
    return am_;  // unreachable
  }

  /// Frees one resident slot if at capacity; returns the evicted chunk.
  std::optional<ChunkId> make_room() {
    if (size() < capacity_) return std::nullopt;
    if (a1in_.size() > a1in_capacity_ || am_.empty()) {
      // Reclaim from A1in: the victim's id is remembered in the ghost.
      const ChunkId victim = a1in_.back();
      a1in_.pop_back();
      ghost_.push_front(victim);
      where_[victim] = Entry{Queue::kGhost, ghost_.begin()};
      if (ghost_.size() > ghost_capacity_) {
        where_.erase(ghost_.back());
        ghost_.pop_back();
      }
      return victim;
    }
    const ChunkId victim = am_.back();
    am_.pop_back();
    where_.erase(victim);
    return victim;
  }

  std::size_t capacity_;
  std::size_t a1in_capacity_;
  std::size_t ghost_capacity_;
  std::list<ChunkId> a1in_;   // FIFO probation queue
  std::list<ChunkId> am_;     // main LRU queue
  std::list<ChunkId> ghost_;  // A1out: recently evicted ids, no data
  std::unordered_map<ChunkId, Entry> where_;
};

}  // namespace

std::unique_ptr<PolicyCore> make_two_q_policy(std::size_t capacity) {
  return std::make_unique<TwoQPolicy>(capacity);
}

}  // namespace mlsc::cache
