// LFU policy core with LRU tie-breaking: frequency buckets in an ordered
// map, each bucket an LRU list; the victim is the least recently used
// member of the lowest-frequency bucket.
#include <list>
#include <map>
#include <unordered_map>

#include "cache/policy.h"
#include "support/check.h"

namespace mlsc::cache {
namespace {

class LfuPolicy : public PolicyCore {
 public:
  explicit LfuPolicy(std::size_t capacity) : capacity_(capacity) {
    MLSC_CHECK(capacity_ > 0, "cache capacity must be positive");
  }

  bool contains(ChunkId id) const override { return index_.count(id) != 0; }

  bool touch(ChunkId id) override {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    bump(it);
    return true;
  }

  std::optional<ChunkId> insert(ChunkId id) override {
    if (touch(id)) return std::nullopt;
    std::optional<ChunkId> evicted;
    if (index_.size() == capacity_) {
      auto bucket_it = buckets_.begin();
      evicted = bucket_it->second.back();
      bucket_it->second.pop_back();
      if (bucket_it->second.empty()) buckets_.erase(bucket_it);
      index_.erase(*evicted);
    }
    auto& bucket = buckets_[1];
    bucket.push_front(id);
    index_[id] = Entry{1, bucket.begin()};
    return evicted;
  }

  bool erase(ChunkId id) override {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    remove_from_bucket(it->second);
    index_.erase(it);
    return true;
  }

  std::size_t size() const override { return index_.size(); }
  std::size_t capacity() const override { return capacity_; }
  PolicyKind kind() const override { return PolicyKind::kLfu; }

 private:
  struct Entry {
    std::uint64_t freq = 0;
    std::list<ChunkId>::iterator pos;
  };
  using Index = std::unordered_map<ChunkId, Entry>;

  void remove_from_bucket(const Entry& entry) {
    auto bucket_it = buckets_.find(entry.freq);
    bucket_it->second.erase(entry.pos);
    if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  }

  void bump(Index::iterator it) {
    const ChunkId id = it->first;
    Entry& entry = it->second;
    remove_from_bucket(entry);
    ++entry.freq;
    auto& bucket = buckets_[entry.freq];
    bucket.push_front(id);
    entry.pos = bucket.begin();
  }

  std::size_t capacity_;
  // freq -> LRU list (front = most recently used at that frequency).
  std::map<std::uint64_t, std::list<ChunkId>> buckets_;
  Index index_;
};

}  // namespace

std::unique_ptr<PolicyCore> make_lfu_policy(std::size_t capacity) {
  return std::make_unique<LfuPolicy>(capacity);
}

}  // namespace mlsc::cache
