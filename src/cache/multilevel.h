// The multi-level storage cache path over a hierarchy tree.
//
// Each cached tree node owns a StorageCache; a client access walks its
// path toward the root until a cache hits (or the disk is reached), then
// the placement policy decides which caches along the path receive the
// chunk.  The default is the access-based placement the paper's platform
// (OS buffer caches at every layer) implements; eviction-based placement
// (Chen et al.) and exclusive demotion (Wong & Wilkes) are provided for
// the related-work ablations.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/storage_cache.h"
#include "topology/hierarchy.h"

namespace mlsc::obs {
class HierarchyInsight;
}  // namespace mlsc::obs

namespace mlsc::cache {

enum class PlacementMode {
  /// Fill every cache on the miss path (inclusive-style).  Default.
  kAccessBased,
  /// Fill only the client cache; a chunk enters a lower-level cache when
  /// an upper-level cache evicts it.
  kEvictionBased,
  /// Eviction-based plus invalidate-on-hit at shared levels (exclusive).
  kExclusive,
};

const char* placement_mode_name(PlacementMode mode);

/// Which level an access was served from.
struct AccessResult {
  /// Tree node whose cache hit, or kInvalidNode when served from disk.
  topology::NodeId hit_node = topology::kInvalidNode;
  bool from_disk() const { return hit_node == topology::kInvalidNode; }
  /// True when hit_node is a *sibling* compute node's cache (cooperative
  /// caching) rather than a cache on the client's own path.
  bool peer_hit = false;
  /// Number of caches interrogated before the hit (>= 1 when the client
  /// node carries a cache).
  std::uint32_t caches_probed = 0;
  /// Failed caches on the path that had to be detected and skipped
  /// (each one costs a failover-detection penalty in the engine).
  std::uint32_t failed_probes = 0;
  /// Dirty chunks this access pushed out of the bottom of the hierarchy
  /// (they must be written back to disk).
  std::uint32_t writebacks_to_disk = 0;
};

class MultiLevelCache {
 public:
  /// Builds one cache per tree node with nonzero capacity.  Capacities
  /// are converted to chunks; every cached node must hold at least one.
  MultiLevelCache(const topology::HierarchyTree& tree,
                  std::uint64_t chunk_size_bytes, PolicyKind policy,
                  PlacementMode placement = PlacementMode::kAccessBased);

  /// Processes one chunk access from a client (compute) node.  Writes
  /// mark the chunk dirty in the client's cache when write-back mode is
  /// on; dirty data pushed out of the last cache level is reported in
  /// the result so the engine can charge the disk write.
  AccessResult access(topology::NodeId client, ChunkId chunk,
                      bool is_write = false);

  /// Inserts a chunk along the client's path without counting an access
  /// (used for prefetched data).  Returns disk writebacks it caused.
  std::uint32_t install(topology::NodeId client, ChunkId chunk);

  /// True when the chunk is resident in any cache on the client's path.
  bool resident_on_path(topology::NodeId client, ChunkId chunk) const;

  /// Write-back mode: writes dirty their chunk; dirty evictions cascade
  /// toward the root and finally to disk.  Off by default (the paper
  /// does not model write traffic separately).
  void set_write_back(bool on) { write_back_ = on; }

  /// Cooperative caching: after a client-cache miss, the caches of
  /// sibling compute nodes under the same parent are probed before the
  /// shared levels (Dahlin et al., the paper's [14]).  Off by default.
  void set_cooperative(bool on) { cooperative_ = on; }

  bool has_cache(topology::NodeId node) const {
    return caches_[node] != nullptr;
  }
  const StorageCache& cache(topology::NodeId node) const;

  /// Fail-stop / recovery of one node's cache (fault injection).  Failing
  /// drops the cache's contents (dirty data included — the device lost
  /// it); while failed the cache serves nothing and accepts nothing, and
  /// path walks skip it, counting a failed probe.  Recovery restarts it
  /// cold at its healthy capacity.  No-op on uncached nodes.
  void set_node_failed(topology::NodeId node, bool failed);
  bool node_failed(topology::NodeId node) const {
    return failed_[node] != 0;
  }

  /// Degraded capacity: restarts the node's cache cold at
  /// base_capacity / divisor chunks (at least one).  divisor 1 restores
  /// the healthy capacity.  No-op on uncached nodes.
  void set_node_capacity_divisor(topology::NodeId node, double divisor);

  /// Sums the stats of every cache of the given node kind; with the
  /// layered topology this yields the paper's L1 (compute), L2 (I/O) and
  /// L3 (storage) rows.
  CacheStats aggregate_stats(topology::NodeKind kind) const;

  void reset_stats();

  /// Creates one explanation observer per cached node inside `insight`
  /// (level 1/2/3 from the node kind, the same split aggregate_stats
  /// uses) and wires it into the cache.  `insight` must outlive the
  /// hierarchy; call once per MultiLevelCache.
  void attach_insight(obs::HierarchyInsight& insight);

  const topology::HierarchyTree& tree() const { return tree_; }
  PlacementMode placement() const { return placement_; }
  std::uint64_t chunk_size_bytes() const { return chunk_size_; }

 private:
  /// Inserts into one cache, cascading dirty/eviction-based evictions to
  /// the nearest cached ancestor; counts write-backs that leave the tree.
  void fill(topology::NodeId node, ChunkId chunk, bool dirty,
            std::uint32_t& writebacks);

  const topology::HierarchyTree& tree_;
  std::uint64_t chunk_size_;
  PlacementMode placement_;
  bool write_back_ = false;
  bool cooperative_ = false;
  std::vector<std::unique_ptr<StorageCache>> caches_;  // by node id
  std::vector<char> failed_;                           // by node id
  std::vector<std::size_t> base_chunks_;               // healthy capacity
};

}  // namespace mlsc::cache
