// LRU and FIFO policy cores.  Both keep an intrusive recency list; FIFO
// simply never reorders on hit.
#include <list>
#include <unordered_map>

#include "cache/policy.h"
#include "support/check.h"

namespace mlsc::cache {
namespace {

class ListPolicy : public PolicyCore {
 public:
  ListPolicy(std::size_t capacity, bool move_on_hit, PolicyKind kind)
      : capacity_(capacity), move_on_hit_(move_on_hit), kind_(kind) {
    MLSC_CHECK(capacity_ > 0, "cache capacity must be positive");
  }

  bool contains(ChunkId id) const override { return index_.count(id) != 0; }

  bool touch(ChunkId id) override {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    if (move_on_hit_) {
      order_.splice(order_.begin(), order_, it->second);
    }
    return true;
  }

  std::optional<ChunkId> insert(ChunkId id) override {
    if (touch(id)) return std::nullopt;
    std::optional<ChunkId> evicted;
    if (order_.size() == capacity_) {
      evicted = order_.back();
      index_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(id);
    index_[id] = order_.begin();
    return evicted;
  }

  bool erase(ChunkId id) override {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  std::size_t size() const override { return order_.size(); }
  std::size_t capacity() const override { return capacity_; }
  PolicyKind kind() const override { return kind_; }

 private:
  std::size_t capacity_;
  bool move_on_hit_;
  PolicyKind kind_;
  std::list<ChunkId> order_;  // front = most recently inserted/used
  std::unordered_map<ChunkId, std::list<ChunkId>::iterator> index_;
};

}  // namespace

std::unique_ptr<PolicyCore> make_lru_policy(std::size_t capacity) {
  return std::make_unique<ListPolicy>(capacity, /*move_on_hit=*/true,
                                      PolicyKind::kLru);
}

std::unique_ptr<PolicyCore> make_fifo_policy(std::size_t capacity) {
  return std::make_unique<ListPolicy>(capacity, /*move_on_hit=*/false,
                                      PolicyKind::kFifo);
}

}  // namespace mlsc::cache
