#include "cache/storage_cache.h"

#include "obs/cache_insight.h"
#include "obs/metrics.h"

namespace mlsc::cache {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  accesses += other.accesses;
  hits += other.hits;
  misses += other.misses;
  insertions += other.insertions;
  evictions += other.evictions;
  dirty_evictions += other.dirty_evictions;
  bytes_served += other.bytes_served;
  bytes_filled += other.bytes_filled;
  return *this;
}

StorageCache::StorageCache(std::string name, std::size_t capacity_chunks,
                           PolicyKind policy,
                           std::uint64_t chunk_size_bytes)
    : name_(std::move(name)),
      chunk_size_bytes_(chunk_size_bytes),
      core_(make_policy(policy, capacity_chunks)) {}

void StorageCache::bind_metrics(const std::string& prefix) {
  if (!obs::metrics_enabled()) {
    metrics_ = BoundCounters{};
    return;
  }
  auto& registry = obs::Registry::global();
  metrics_.accesses = &registry.counter(prefix + ".accesses");
  metrics_.hits = &registry.counter(prefix + ".hits");
  metrics_.misses = &registry.counter(prefix + ".misses");
  metrics_.insertions = &registry.counter(prefix + ".insertions");
  metrics_.evictions = &registry.counter(prefix + ".evictions");
  metrics_.dirty_evictions = &registry.counter(prefix + ".dirty_evictions");
  metrics_.bytes_served = &registry.counter(prefix + ".bytes_served");
  metrics_.bytes_filled = &registry.counter(prefix + ".bytes_filled");
}

bool StorageCache::access(ChunkId id) {
  ++stats_.accesses;
  if (metrics_.accesses != nullptr) metrics_.accesses->inc();
  if (core_->touch(id)) {
    ++stats_.hits;
    stats_.bytes_served += chunk_size_bytes_;
    if (metrics_.hits != nullptr) metrics_.hits->inc();
    if (metrics_.bytes_served != nullptr) {
      metrics_.bytes_served->add(chunk_size_bytes_);
    }
    if (insight_ != nullptr) insight_->on_access(id, /*hit=*/true);
    return true;
  }
  ++stats_.misses;
  if (metrics_.misses != nullptr) metrics_.misses->inc();
  if (insight_ != nullptr) insight_->on_access(id, /*hit=*/false);
  return false;
}

std::optional<StorageCache::Evicted> StorageCache::insert(ChunkId id) {
  auto evicted = core_->insert(id);
  ++stats_.insertions;
  stats_.bytes_filled += chunk_size_bytes_;
  if (metrics_.insertions != nullptr) metrics_.insertions->inc();
  if (metrics_.bytes_filled != nullptr) {
    metrics_.bytes_filled->add(chunk_size_bytes_);
  }
  if (insight_ != nullptr) {
    insight_->on_fill(id);
    if (evicted.has_value()) insight_->on_evict(*evicted);
  }
  if (!evicted.has_value()) return std::nullopt;
  ++stats_.evictions;
  if (metrics_.evictions != nullptr) metrics_.evictions->inc();
  Evicted out{*evicted, dirty_.count(*evicted) != 0};
  if (out.dirty) {
    ++stats_.dirty_evictions;
    if (metrics_.dirty_evictions != nullptr) metrics_.dirty_evictions->inc();
    dirty_.erase(out.chunk);
  }
  return out;
}

void StorageCache::mark_dirty(ChunkId id) {
  if (core_->contains(id)) dirty_.insert(id);
}

bool StorageCache::erase(ChunkId id) {
  dirty_.erase(id);
  if (insight_ != nullptr) insight_->on_erase(id);
  return core_->erase(id);
}

void StorageCache::clear() { set_capacity(core_->capacity()); }

void StorageCache::set_capacity(std::size_t capacity_chunks) {
  // PolicyCore has no resize/clear; recreating it restarts the cache
  // cold, which is exactly the fail-stop / degraded-restart semantics.
  core_ = make_policy(core_->kind(), capacity_chunks);
  dirty_.clear();
  if (insight_ != nullptr) insight_->on_reset(capacity_chunks);
}

}  // namespace mlsc::cache
