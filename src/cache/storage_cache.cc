#include "cache/storage_cache.h"

namespace mlsc::cache {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  accesses += other.accesses;
  hits += other.hits;
  misses += other.misses;
  insertions += other.insertions;
  evictions += other.evictions;
  dirty_evictions += other.dirty_evictions;
  return *this;
}

StorageCache::StorageCache(std::string name, std::size_t capacity_chunks,
                           PolicyKind policy)
    : name_(std::move(name)), core_(make_policy(policy, capacity_chunks)) {}

bool StorageCache::access(ChunkId id) {
  ++stats_.accesses;
  if (core_->touch(id)) {
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

std::optional<StorageCache::Evicted> StorageCache::insert(ChunkId id) {
  auto evicted = core_->insert(id);
  ++stats_.insertions;
  if (!evicted.has_value()) return std::nullopt;
  ++stats_.evictions;
  Evicted out{*evicted, dirty_.count(*evicted) != 0};
  if (out.dirty) {
    ++stats_.dirty_evictions;
    dirty_.erase(out.chunk);
  }
  return out;
}

void StorageCache::mark_dirty(ChunkId id) {
  if (core_->contains(id)) dirty_.insert(id);
}

}  // namespace mlsc::cache
