// Multi-Queue (MQ) policy core, after Zhou, Philbin & Li (USENIX ATC'01),
// who designed it for exactly the second-level buffer caches this library
// simulates.  Blocks live in m LRU queues; queue index = floor(log2(freq))
// capped at m-1.  Blocks expire to the next lower queue after lifeTime
// accesses without a reference.  A ghost history (Qout) remembers the
// frequency of recently evicted blocks so they re-enter at full rank.
#include <cmath>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/policy.h"
#include "support/check.h"

namespace mlsc::cache {
namespace {

constexpr std::size_t kNumQueues = 8;

class MqPolicy : public PolicyCore {
 public:
  explicit MqPolicy(std::size_t capacity)
      : capacity_(capacity),
        // Zhou et al. recommend lifeTime on the order of the temporal
        // distance between correlated accesses; capacity is a serviceable
        // default for a trace-driven simulator.
        life_time_(std::max<std::uint64_t>(64, capacity)),
        queues_(kNumQueues) {
    MLSC_CHECK(capacity_ > 0, "cache capacity must be positive");
    ghost_capacity_ = std::max<std::size_t>(1, 4 * capacity_);
  }

  bool contains(ChunkId id) const override { return blocks_.count(id) != 0; }

  bool touch(ChunkId id) override {
    ++now_;
    check_expiration();
    auto it = blocks_.find(id);
    if (it == blocks_.end()) return false;
    Block& b = it->second;
    queues_[b.queue].erase(b.pos);
    ++b.freq;
    b.queue = queue_for(b.freq);
    b.expire = now_ + life_time_;
    queues_[b.queue].push_front(id);
    b.pos = queues_[b.queue].begin();
    return true;
  }

  std::optional<ChunkId> insert(ChunkId id) override {
    if (touch(id)) return std::nullopt;
    std::optional<ChunkId> evicted;
    if (blocks_.size() == capacity_) evicted = evict();

    std::uint64_t freq = 1;
    if (auto ghost_it = ghost_.find(id); ghost_it != ghost_.end()) {
      freq = ghost_it->second.freq + 1;
      ghost_order_.erase(ghost_it->second.pos);
      ghost_.erase(ghost_it);
    }
    Block b;
    b.freq = freq;
    b.queue = queue_for(freq);
    b.expire = now_ + life_time_;
    queues_[b.queue].push_front(id);
    b.pos = queues_[b.queue].begin();
    blocks_[id] = b;
    return evicted;
  }

  bool erase(ChunkId id) override {
    auto it = blocks_.find(id);
    if (it == blocks_.end()) return false;
    queues_[it->second.queue].erase(it->second.pos);
    blocks_.erase(it);
    return true;
  }

  std::size_t size() const override { return blocks_.size(); }
  std::size_t capacity() const override { return capacity_; }
  PolicyKind kind() const override { return PolicyKind::kMq; }

 private:
  struct Block {
    std::uint64_t freq = 0;
    std::size_t queue = 0;
    std::uint64_t expire = 0;
    std::list<ChunkId>::iterator pos;
  };
  struct GhostEntry {
    std::uint64_t freq = 0;
    std::list<ChunkId>::iterator pos;
  };

  static std::size_t queue_for(std::uint64_t freq) {
    std::size_t q = 0;
    while (freq > 1 && q + 1 < kNumQueues) {
      freq >>= 1;
      ++q;
    }
    return q;
  }

  /// Demotes the LRU block of each queue whose lifetime expired.
  void check_expiration() {
    for (std::size_t q = 1; q < kNumQueues; ++q) {
      if (queues_[q].empty()) continue;
      const ChunkId tail = queues_[q].back();
      Block& b = blocks_.at(tail);
      if (b.expire < now_) {
        queues_[q].pop_back();
        b.queue = q - 1;
        b.expire = now_ + life_time_;
        queues_[q - 1].push_front(tail);
        b.pos = queues_[q - 1].begin();
      }
    }
  }

  ChunkId evict() {
    for (auto& queue : queues_) {
      if (queue.empty()) continue;
      const ChunkId victim = queue.back();
      queue.pop_back();
      const std::uint64_t freq = blocks_.at(victim).freq;
      blocks_.erase(victim);
      remember_ghost(victim, freq);
      return victim;
    }
    MLSC_CHECK(false, "evict() called on an empty cache");
    return 0;  // unreachable
  }

  void remember_ghost(ChunkId id, std::uint64_t freq) {
    ghost_order_.push_front(id);
    ghost_[id] = GhostEntry{freq, ghost_order_.begin()};
    if (ghost_order_.size() > ghost_capacity_) {
      ghost_.erase(ghost_order_.back());
      ghost_order_.pop_back();
    }
  }

  std::size_t capacity_;
  std::size_t ghost_capacity_;
  std::uint64_t life_time_;
  std::uint64_t now_ = 0;
  std::vector<std::list<ChunkId>> queues_;  // front = MRU within queue
  std::unordered_map<ChunkId, Block> blocks_;
  std::unordered_map<ChunkId, GhostEntry> ghost_;
  std::list<ChunkId> ghost_order_;
};

}  // namespace

std::unique_ptr<PolicyCore> make_mq_policy(std::size_t capacity) {
  return std::make_unique<MqPolicy>(capacity);
}

}  // namespace mlsc::cache
