#include "cache/policy.h"

#include "support/check.h"

namespace mlsc::cache {

// Factories defined in the per-policy translation units.
std::unique_ptr<PolicyCore> make_lru_policy(std::size_t capacity);
std::unique_ptr<PolicyCore> make_fifo_policy(std::size_t capacity);
std::unique_ptr<PolicyCore> make_clock_policy(std::size_t capacity);
std::unique_ptr<PolicyCore> make_lfu_policy(std::size_t capacity);
std::unique_ptr<PolicyCore> make_two_q_policy(std::size_t capacity);
std::unique_ptr<PolicyCore> make_mq_policy(std::size_t capacity);
std::unique_ptr<PolicyCore> make_arc_policy(std::size_t capacity);

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru:
      return "lru";
    case PolicyKind::kFifo:
      return "fifo";
    case PolicyKind::kClock:
      return "clock";
    case PolicyKind::kLfu:
      return "lfu";
    case PolicyKind::kTwoQ:
      return "2q";
    case PolicyKind::kMq:
      return "mq";
    case PolicyKind::kArc:
      return "arc";
  }
  return "?";
}

PolicyKind parse_policy_kind(const std::string& name) {
  if (name == "lru") return PolicyKind::kLru;
  if (name == "fifo") return PolicyKind::kFifo;
  if (name == "clock") return PolicyKind::kClock;
  if (name == "lfu") return PolicyKind::kLfu;
  if (name == "2q") return PolicyKind::kTwoQ;
  if (name == "mq") return PolicyKind::kMq;
  if (name == "arc") return PolicyKind::kArc;
  MLSC_CHECK(false, "unknown replacement policy: " << name);
  return PolicyKind::kLru;  // unreachable
}

std::unique_ptr<PolicyCore> make_policy(PolicyKind kind,
                                        std::size_t capacity_chunks) {
  MLSC_CHECK(capacity_chunks > 0, "cache capacity must be positive");
  switch (kind) {
    case PolicyKind::kLru:
      return make_lru_policy(capacity_chunks);
    case PolicyKind::kFifo:
      return make_fifo_policy(capacity_chunks);
    case PolicyKind::kClock:
      return make_clock_policy(capacity_chunks);
    case PolicyKind::kLfu:
      return make_lfu_policy(capacity_chunks);
    case PolicyKind::kTwoQ:
      return make_two_q_policy(capacity_chunks);
    case PolicyKind::kMq:
      return make_mq_policy(capacity_chunks);
    case PolicyKind::kArc:
      return make_arc_policy(capacity_chunks);
  }
  MLSC_CHECK(false, "bad policy kind");
  return nullptr;  // unreachable
}

}  // namespace mlsc::cache
