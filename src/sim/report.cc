#include "sim/report.h"

#include <ostream>

#include "support/check.h"
#include "support/string_util.h"

namespace mlsc::sim {
namespace {

std::string seconds(Nanoseconds ns) {
  return format_double(static_cast<double>(ns) / 1e9, 2) + " s";
}

double share(Nanoseconds part, Nanoseconds whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

void write_report(std::ostream& out, const ExperimentResult& result,
                  const MachineConfig& config) {
  out << "workload: " << result.workload << "\n"
      << "scheme:   " << result.scheme << "\n"
      << "machine:  " << config.to_string() << "\n\n";

  Table levels({"level", "accesses", "hits", "misses", "miss %"});
  const cache::CacheStats* stats[] = {&result.engine.l1, &result.engine.l2,
                                      &result.engine.l3};
  const char* names[] = {"L1 (compute)", "L2 (I/O)", "L3 (storage)"};
  for (int i = 0; i < 3; ++i) {
    levels.add_row({names[i], std::to_string(stats[i]->accesses),
                    std::to_string(stats[i]->hits),
                    std::to_string(stats[i]->misses),
                    format_double(stats[i]->miss_rate() * 100, 1)});
  }
  levels.print(out);

  const auto& e = result.engine;
  Table where({"I/O stall component", "time", "share %"});
  where.add_row({"client cache hits", seconds(e.time_client_cache),
                 format_double(share(e.time_client_cache, e.io_time_total),
                               1)});
  where.add_row({"shared cache hits", seconds(e.time_shared_cache),
                 format_double(share(e.time_shared_cache, e.io_time_total),
                               1)});
  if (e.peer_hits > 0) {
    where.add_row({"peer cache hits", seconds(e.time_peer_cache),
                   format_double(share(e.time_peer_cache, e.io_time_total),
                                 1)});
  }
  where.add_row({"disk service+queue", seconds(e.time_disk),
                 format_double(share(e.time_disk, e.io_time_total), 1)});
  where.add_row({"  of which queueing", seconds(e.time_disk_queue),
                 format_double(share(e.time_disk_queue, e.io_time_total),
                               1)});
  out << "\n";
  where.print(out);

  out << "\ndisk requests: " << e.disk_requests
      << ", write-backs: " << e.disk_writebacks
      << ", prefetches: " << e.prefetches << ", sync edges: "
      << result.sync_edges << " (wait " << seconds(e.sync_wait_total)
      << " total)\n"
      << "I/O latency (mean/client): " << seconds(result.io_latency)
      << ", execution time: " << seconds(result.exec_time) << "\n";
}

Table comparison_table(const std::vector<ExperimentResult>& results) {
  MLSC_CHECK(!results.empty(), "nothing to compare");
  for (const auto& r : results) {
    MLSC_CHECK(r.workload == results.front().workload,
               "comparison requires one workload");
  }
  Table table({"scheme", "L1 miss %", "L2 miss %", "L3 miss %", "disk reqs",
               "I/O latency", "exec time", "I/O (norm)", "exec (norm)"});
  const auto& base = results.front();
  for (const auto& r : results) {
    table.add_row(
        {r.scheme, format_double(r.l1_miss_rate * 100, 1),
         format_double(r.l2_miss_rate * 100, 1),
         format_double(r.l3_miss_rate * 100, 1),
         std::to_string(r.engine.disk_requests), seconds(r.io_latency),
         seconds(r.exec_time),
         format_double(static_cast<double>(r.io_latency) /
                           static_cast<double>(base.io_latency),
                       3),
         format_double(static_cast<double>(r.exec_time) /
                           static_cast<double>(base.exec_time),
                       3)});
  }
  return table;
}

void write_comparison_csv(std::ostream& out,
                          const std::vector<ExperimentResult>& results) {
  comparison_table(results).print_csv(out);
}

std::vector<ExperimentResult> run_all_schemes(
    const workloads::Workload& workload, const MachineConfig& config) {
  std::vector<ExperimentResult> results;
  results.push_back(run_experiment(workload, SchemeSpec::original(), config));
  results.push_back(run_experiment(workload, SchemeSpec::intra(), config));
  results.push_back(run_experiment(workload, SchemeSpec::inter(), config));
  results.push_back(
      run_experiment(workload, SchemeSpec::inter_scheduled(), config));
  return results;
}

}  // namespace mlsc::sim
