#include "sim/report.h"

#include <ostream>

#include "support/check.h"
#include "support/string_util.h"

namespace mlsc::sim {
namespace {

std::string seconds(Nanoseconds ns) {
  return format_double(static_cast<double>(ns) / 1e9, 2) + " s";
}

double share(Nanoseconds part, Nanoseconds whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

std::vector<std::pair<std::string, Table>> report_tables(
    const ExperimentResult& result) {
  std::vector<std::pair<std::string, Table>> tables;

  Table levels({"level", "accesses", "hits", "misses", "miss %"});
  const cache::CacheStats* stats[] = {&result.engine.l1, &result.engine.l2,
                                      &result.engine.l3};
  const char* names[] = {"L1 (compute)", "L2 (I/O)", "L3 (storage)"};
  for (int i = 0; i < 3; ++i) {
    levels.add_row({names[i], std::to_string(stats[i]->accesses),
                    std::to_string(stats[i]->hits),
                    std::to_string(stats[i]->misses),
                    format_double(stats[i]->miss_rate() * 100, 1)});
  }
  tables.emplace_back("cache levels", std::move(levels));

  const auto& e = result.engine;
  Table where({"I/O stall component", "time (s)", "share %"});
  auto stall_row = [&](const std::string& component, Nanoseconds time) {
    where.add_row({component,
                   format_double(static_cast<double>(time) / 1e9, 4),
                   format_double(share(time, e.io_time_total), 1)});
  };
  stall_row("client cache hits", e.time_client_cache);
  stall_row("shared cache hits", e.time_shared_cache);
  if (e.peer_hits > 0) stall_row("peer cache hits", e.time_peer_cache);
  stall_row("disk service+queue", e.time_disk);
  stall_row("  of which queueing", e.time_disk_queue);
  // Degraded-mode components appear only when faults produced them, so
  // healthy-run reports (and their committed baselines) are unchanged.
  if (e.time_retry > 0) stall_row("transient-error retries", e.time_retry);
  if (e.time_failover > 0) stall_row("failover detection", e.time_failover);
  tables.emplace_back("io stall breakdown", std::move(where));

  // Measured boundary traffic vs. the red-blue-pebble lower bound.
  // Column names are stable metric keys for the bench diff: the
  // headroom_pct column is guarded (drift hard-fails, DESIGN.md §16).
  if (!result.movement.empty()) {
    Table movement({"level", "bytes_moved", "io_lower_bound",
                    "headroom_pct"});
    for (const auto& row : result.movement) {
      movement.add_row({row.level, std::to_string(row.bytes_moved),
                        std::to_string(row.io_lower_bound),
                        format_double(row.headroom_pct, 2)});
    }
    tables.emplace_back("data movement", std::move(movement));
  }

  // Miss classification from the explanation observer (--explain,
  // DESIGN.md §18).  Column names are stable metric keys; everything in
  // this table is deterministic, and the "insight" title routes it into
  // the bench diff's guarded set (any drift hard-fails).
  if (!e.insight.empty()) {
    Table insight({"level", "misses", "compulsory", "capacity",
                   "interference", "interference_miss_pct"});
    for (const auto& level : e.insight.levels) {
      insight.add_row({level.level_name(), std::to_string(level.misses),
                       std::to_string(level.compulsory),
                       std::to_string(level.capacity),
                       std::to_string(level.interference),
                       format_double(level.interference_miss_pct(), 2)});
    }
    tables.emplace_back("insight", std::move(insight));
  }

  if (e.faults_applied > 0) {
    Table faults({"fault metric", "value"});
    faults.add_row({"schedule events applied",
                    std::to_string(e.faults_applied)});
    faults.add_row({"transient errors", std::to_string(e.transient_errors)});
    faults.add_row({"retries", std::to_string(e.retries)});
    faults.add_row({"retry timeouts", std::to_string(e.retry_timeouts)});
    faults.add_row({"failovers", std::to_string(e.failovers)});
    faults.add_row({"retry time (s)", seconds(e.time_retry)});
    faults.add_row({"failover time (s)", seconds(e.time_failover)});
    faults.add_row({"fault stall (s)", seconds(e.fault_stall_total)});
    faults.add_row({"remapped", result.remapped ? "yes" : "no"});
    if (result.remapped) {
      faults.add_row({"remap trigger", result.remap_reason});
      faults.add_row({"remap pause", format_time(result.remap_pause)});
    }
    tables.emplace_back("resilience", std::move(faults));
  }

  Table summary({"workload", "scheme", "io_latency_s", "exec_time_s",
                 "disk_requests", "disk_writebacks", "peer_hits",
                 "prefetches", "sync_edges"});
  summary.add_row(
      {result.workload, result.scheme,
       format_double(static_cast<double>(result.io_latency) / 1e9, 4),
       format_double(static_cast<double>(result.exec_time) / 1e9, 4),
       std::to_string(e.disk_requests), std::to_string(e.disk_writebacks),
       std::to_string(e.peer_hits), std::to_string(e.prefetches),
       std::to_string(result.sync_edges)});
  tables.emplace_back("summary", std::move(summary));
  return tables;
}

void write_report(std::ostream& out, const ExperimentResult& result,
                  const MachineConfig& config) {
  out << "workload: " << result.workload << "\n"
      << "scheme:   " << result.scheme << "\n"
      << "machine:  " << config.to_string() << "\n\n";

  if (!result.fault_summary.empty()) {
    out << "faults:   " << result.fault_summary << "\n";
  }

  const auto tables = report_tables(result);
  tables[0].second.print(out);  // cache levels
  out << "\n";
  tables[1].second.print(out);  // io stall breakdown
  for (const auto& [title, table] : tables) {
    if (title == "resilience" || title == "data movement" ||
        title == "insight") {
      out << "\n";
      table.print(out);
    }
  }

  const auto& e = result.engine;
  out << "\ndisk requests: " << e.disk_requests
      << ", write-backs: " << e.disk_writebacks
      << ", prefetches: " << e.prefetches << ", sync edges: "
      << result.sync_edges << " (wait " << seconds(e.sync_wait_total)
      << " total)\n"
      << "I/O latency (mean/client): " << seconds(result.io_latency)
      << ", execution time: " << seconds(result.exec_time) << "\n";
}

Table comparison_table(const std::vector<ExperimentResult>& results) {
  MLSC_CHECK(!results.empty(), "nothing to compare");
  for (const auto& r : results) {
    MLSC_CHECK(r.workload == results.front().workload,
               "comparison requires one workload");
  }
  Table table({"scheme", "L1 miss %", "L2 miss %", "L3 miss %", "disk reqs",
               "I/O latency", "exec time", "I/O (norm)", "exec (norm)"});
  const auto& base = results.front();
  for (const auto& r : results) {
    table.add_row(
        {r.scheme, format_double(r.l1_miss_rate * 100, 1),
         format_double(r.l2_miss_rate * 100, 1),
         format_double(r.l3_miss_rate * 100, 1),
         std::to_string(r.engine.disk_requests), seconds(r.io_latency),
         seconds(r.exec_time),
         format_double(static_cast<double>(r.io_latency) /
                           static_cast<double>(base.io_latency),
                       3),
         format_double(static_cast<double>(r.exec_time) /
                           static_cast<double>(base.exec_time),
                       3)});
  }
  return table;
}

void write_comparison_csv(std::ostream& out,
                          const std::vector<ExperimentResult>& results) {
  comparison_table(results).print_csv(out);
}

std::vector<ExperimentResult> run_all_schemes(
    const workloads::Workload& workload, const MachineConfig& config) {
  std::vector<ExperimentResult> results;
  results.push_back(run_experiment(workload, SchemeSpec::original(), config));
  results.push_back(run_experiment(workload, SchemeSpec::intra(), config));
  results.push_back(run_experiment(workload, SchemeSpec::inter(), config));
  results.push_back(
      run_experiment(workload, SchemeSpec::inter_scheduled(), config));
  return results;
}

}  // namespace mlsc::sim
