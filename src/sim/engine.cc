#include "sim/engine.h"

#include <cstdio>
#include <queue>
#include <vector>

#include "io/striping.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/fault.h"
#include "support/check.h"

namespace mlsc::sim {
namespace {

/// Per-client replay cursor.
struct ClientState {
  Nanoseconds clock = 0;
  std::size_t item = 0;       // index into trace items / work items
  std::uint64_t iter = 0;     // iterations completed within the item
  std::size_t access = 0;     // cursor into the access stream
  std::uint64_t iter_global = 0;  // cursor into accesses_per_iteration
  Nanoseconds io_time = 0;
  Nanoseconds compute_time = 0;
  Nanoseconds sync_wait = 0;
  bool done = false;
};

struct HeapEntry {
  Nanoseconds clock;
  std::size_t client;
  bool operator>(const HeapEntry& other) const {
    if (clock != other.clock) return clock > other.clock;
    return client > other.client;
  }
};

}  // namespace

EngineResult run_engine(const Trace& trace,
                        const core::MappingResult& mapping,
                        const MachineConfig& config,
                        const topology::HierarchyTree& tree,
                        resilience::FaultInjector* faults) {
  const std::size_t num_clients = trace.clients.size();
  MLSC_CHECK(num_clients == tree.num_clients(),
             "trace client count does not match the tree");

  cache::MultiLevelCache caches(tree, config.chunk_size_bytes, config.policy,
                                config.placement);
  caches.set_write_back(config.write_back);
  caches.set_cooperative(config.cooperative_caching);
  // The explanation observer (DESIGN.md §18): one per cache instance,
  // fed from the same serial replay loop that updates CacheStats, so its
  // output is deterministic at any thread count (threads only affect the
  // mapping stage; the mapping itself is bit-identical).
  std::unique_ptr<obs::HierarchyInsight> insight;
  if (config.explain) {
    insight = std::make_unique<obs::HierarchyInsight>(
        static_cast<std::uint32_t>(num_clients));
    caches.attach_insight(*insight);
  }
  const io::DiskModel disk(config.disk);
  const io::NetworkModel network(config.network);
  const io::StripingLayout striping(config.stripe_size_bytes,
                                    config.chunk_size_bytes,
                                    config.storage_nodes);

  const std::uint32_t client_level = tree.num_levels() - 1;
  // Level of the storage layer (disk hops target).
  std::uint32_t storage_level = 0;
  for (topology::NodeId id = 0; id < tree.num_nodes(); ++id) {
    if (tree.node(id).kind == topology::NodeKind::kStorage) {
      storage_level = tree.node(id).level;
      break;
    }
  }
  const std::uint32_t disk_hops = client_level - storage_level;

  // Cross-client sync: for each (client, item), the producers it waits on.
  std::vector<std::vector<std::vector<core::SyncEdge>>> waits(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    waits[c].resize(trace.clients[c].items.size());
  }
  for (const auto& edge : mapping.sync_edges) {
    MLSC_CHECK(edge.consumer_client < num_clients &&
                   edge.consumer_item < waits[edge.consumer_client].size(),
               "sync edge addresses a missing item");
    waits[edge.consumer_client][edge.consumer_item].push_back(edge);
  }
  std::vector<std::vector<Nanoseconds>> item_finish(num_clients);
  std::vector<std::vector<bool>> item_done(num_clients);
  // Clients blocked on an unfinished producer item register here and are
  // woken when it completes (no polling).
  std::vector<std::vector<std::vector<std::size_t>>> waiters(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    item_finish[c].assign(trace.clients[c].items.size(), 0);
    item_done[c].assign(trace.clients[c].items.size(), false);
    waiters[c].resize(trace.clients[c].items.size());
  }

  std::vector<ClientState> state(num_clients);
  std::vector<Nanoseconds> disk_busy(config.storage_nodes, 0);
  std::vector<core::ChunkId> disk_last_chunk(config.storage_nodes,
                                             UINT32_MAX);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>> heap;
  for (std::size_t c = 0; c < num_clients; ++c) {
    if (trace.clients[c].items.empty()) {
      state[c].done = true;
    } else {
      heap.push(HeapEntry{0, c});
    }
  }

  EngineResult result;
  result.client_demand_bytes.assign(num_clients, 0);
  const std::uint64_t chunk_bytes = config.chunk_size_bytes;

  // Per-client virtual timelines: one trace process per simulated client
  // (pid kClientPidBase + c), timestamped in simulated nanoseconds.  Each
  // client's emission stops after client_event_budget() events so the
  // trace file stays bounded on long replays.
  const bool tracing = obs::trace_enabled();
  std::vector<std::uint32_t> events_left;
  if (tracing) {
    events_left.assign(num_clients, obs::client_event_budget());
    for (std::size_t c = 0; c < num_clients; ++c) {
      const auto pid = obs::kClientPidBase + static_cast<std::int64_t>(c);
      obs::set_process_name(pid, "client " + std::to_string(c));
      obs::set_thread_name(pid, 0, "replay");
    }
  }
  auto emit_client = [&](std::size_t c, const char* name, Nanoseconds start,
                         Nanoseconds dur) {
    if (!tracing || dur == 0 || events_left[c] == 0) return;
    --events_left[c];
    obs::emit_complete(obs::kClientPidBase + static_cast<std::int64_t>(c), 0,
                       name, start, dur);
  };

  // Sampled counter timelines (ph "C") on one dedicated virtual-time
  // track (the faults track, when present, sits at +num_clients):
  // per-level miss totals, plus interference totals when the
  // explanation observer is attached.  One sample per 4096 accesses
  // keeps the trace bounded; sampling is driven by the deterministic
  // access count, so traces replay identically at any thread count.
  const auto counter_pid =
      obs::kClientPidBase + static_cast<std::int64_t>(num_clients) + 1;
  bool counter_track_named = false;
  auto emit_counter_samples = [&](Nanoseconds now) {
    if (!counter_track_named) {
      obs::set_process_name(counter_pid, "cache counters");
      counter_track_named = true;
    }
    const auto ts = static_cast<std::uint64_t>(now);
    obs::emit_counter(
        counter_pid, "cache.l1.misses", ts,
        caches.aggregate_stats(topology::NodeKind::kCompute).misses);
    obs::emit_counter(counter_pid, "cache.l2.misses", ts,
                      caches.aggregate_stats(topology::NodeKind::kIo).misses);
    obs::emit_counter(
        counter_pid, "cache.l3.misses", ts,
        caches.aggregate_stats(topology::NodeKind::kStorage).misses);
    if (insight != nullptr) {
      // The private L1 sees only its own client's stream, so its
      // interference is structurally zero — only the shared levels get
      // a timeline.
      obs::emit_counter(counter_pid, "insight.l2.interference", ts,
                        insight->level_interference(2));
      obs::emit_counter(counter_pid, "insight.l3.interference", ts,
                        insight->level_interference(3));
    }
  };

  obs::Histogram* latency_hist = nullptr;
  if (obs::metrics_enabled()) {
    latency_hist = &obs::Registry::global().histogram(
        "engine.access_latency_ns",
        {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9});
  }

  // Marks an item finished and wakes clients blocked on it.
  auto complete_item = [&](std::size_t c, std::size_t item,
                           Nanoseconds when) {
    item_finish[c][item] = when;
    item_done[c][item] = true;
    for (std::size_t waiter : waiters[c][item]) {
      ClientState& w = state[waiter];
      if (when > w.clock) {
        w.sync_wait += when - w.clock;
        emit_client(waiter, "sync wait", w.clock, when - w.clock);
        w.clock = when;
      }
      heap.push(HeapEntry{w.clock, waiter});
    }
    waiters[c][item].clear();
  };

  while (!heap.empty()) {
    const auto [clock_snapshot, c] = heap.top();
    heap.pop();
    ClientState& s = state[c];
    if (s.done) continue;
    const ClientTrace& ct = trace.clients[c];

    if (faults != nullptr) {
      // The globally earliest client crosses fault timestamps first, so
      // events fire exactly when virtual time reaches them.
      faults->advance_to(s.clock, &caches);
      // Global stall events (remap downtime) are charged lazily: each
      // client absorbs its uncharged share when it next runs, then goes
      // back on the heap so the earliest-first ordering stays exact.
      const Nanoseconds stall = faults->take_pending_stall(c);
      if (stall > 0) {
        emit_client(c, "fault stall", s.clock, stall);
        s.clock += stall;
        result.fault_stall_total += stall;
        heap.push(HeapEntry{s.clock, c});
        continue;
      }
    }

    // Skip exhausted items (possible when an item has zero iterations).
    while (s.item < ct.items.size() &&
           s.iter >= ct.items[s.item].iterations) {
      complete_item(c, s.item, s.clock);
      ++s.item;
      s.iter = 0;
    }
    if (s.item >= ct.items.size()) {
      s.done = true;
      continue;
    }

    // Item start: honor sync edges.  An unfinished producer parks this
    // client on its waiter list; complete_item() re-queues it.
    if (s.iter == 0 && !waits[c][s.item].empty()) {
      bool blocked = false;
      Nanoseconds ready = s.clock;
      for (const auto& edge : waits[c][s.item]) {
        if (item_done[edge.producer_client][edge.producer_item]) {
          ready = std::max(
              ready, item_finish[edge.producer_client][edge.producer_item]);
        } else {
          waiters[edge.producer_client][edge.producer_item].push_back(c);
          blocked = true;
          break;
        }
      }
      if (blocked) continue;  // woken by complete_item
      if (ready > s.clock) {
        s.sync_wait += ready - s.clock;
        emit_client(c, "sync wait", s.clock, ready - s.clock);
        s.clock = ready;
      }
    }

    // Execute one iteration: compute, then its accesses.
    const TraceItem& item = ct.items[s.item];
    emit_client(c, "compute", s.clock, item.compute_ns_per_iteration);
    s.clock += item.compute_ns_per_iteration;
    s.compute_time += item.compute_ns_per_iteration;

    const std::uint8_t count = ct.accesses_per_iteration[s.iter_global];
    const topology::NodeId client_node = tree.clients()[c];
    if (insight != nullptr) {
      insight->set_current_client(static_cast<std::uint32_t>(c));
    }

    // Charges an asynchronous disk operation (write-back flush or
    // prefetch): it occupies the spindle but does not stall the client.
    auto charge_disk_async = [&](core::ChunkId chunk,
                                 io::SeekClass seek) {
      const std::size_t sn = striping.storage_node_of_chunk(chunk);
      disk_busy[sn] = std::max(disk_busy[sn], s.clock) +
                      disk.service_time(config.chunk_size_bytes, seek);
      disk_last_chunk[sn] = chunk;
    };

    for (std::uint8_t a = 0; a < count; ++a) {
      const Access& access = ct.accesses[s.access++];
      // Identity of this operation for transient-error draws: the
      // client's position in its own access stream, which is invariant
      // under replay interleaving and thread count.
      const std::uint64_t op_id = s.access - 1;
      const auto hit =
          caches.access(client_node, access.chunk, access.is_write);
      for (std::uint32_t w = 0; w < hit.writebacks_to_disk; ++w) {
        charge_disk_async(access.chunk, io::SeekClass::kNear);
        ++result.disk_writebacks;
        result.bytes.writeback += chunk_bytes;
      }

      // Failed caches on the path each cost a failover-detection penalty
      // (probe, time out, redirect) before the access proceeds.
      Nanoseconds failover_ns = 0;
      if (faults != nullptr && hit.failed_probes > 0) {
        failover_ns = hit.failed_probes * faults->retry().failover_detect_ns;
        result.time_failover += failover_ns;
        result.failovers += hit.failed_probes;
      }

      Nanoseconds latency = 0;
      const char* stall = "disk";
      // Transient-error exposure of the serving path: disk errors for
      // misses, network errors for remote cache hits; a hit in the
      // client's own cache is local and cannot draw an error.
      double error_rate = 0.0;
      if (hit.peer_hit) {
        // Cooperative hit in a sibling's cache: two hops via the parent.
        latency = network.transfer_time(config.chunk_size_bytes, 2);
        if (faults != nullptr) {
          latency = static_cast<Nanoseconds>(
              static_cast<double>(latency) *
              faults->latency_factor(hit.hit_node));
          error_rate = faults->net_error_rate();
        }
        result.time_peer_cache += latency;
        ++result.peer_hits;
        result.bytes.from_peer += chunk_bytes;
        result.client_demand_bytes[c] += chunk_bytes;
        stall = "peer hit";
      } else if (!hit.from_disk()) {
        const std::uint32_t hops =
            client_level - tree.node(hit.hit_node).level;
        latency = network.transfer_time(config.chunk_size_bytes, hops);
        if (faults != nullptr) {
          // Degraded node: the whole service time stretches by its factor.
          latency = static_cast<Nanoseconds>(
              static_cast<double>(latency) *
              faults->latency_factor(hit.hit_node));
        }
        if (hit.hit_node == client_node) {
          result.time_client_cache += latency;
          result.bytes.from_l1 += chunk_bytes;
          stall = "l1 hit";
        } else {
          if (faults != nullptr) error_rate = faults->net_error_rate();
          result.time_shared_cache += latency;
          result.client_demand_bytes[c] += chunk_bytes;
          if (tree.node(hit.hit_node).kind == topology::NodeKind::kIo) {
            result.bytes.from_l2 += chunk_bytes;
            stall = "l2 hit";
          } else {
            result.bytes.from_l3 += chunk_bytes;
            stall = "l3 hit";
          }
        }
      } else {
        const std::size_t sn = striping.storage_node_of_chunk(access.chunk);
        const io::SeekClass seek =
            disk_last_chunk[sn] == UINT32_MAX
                ? io::SeekClass::kFar
                : disk.classify_seek(disk_last_chunk[sn], access.chunk);
        const Nanoseconds service =
            disk.service_time(config.chunk_size_bytes, seek);
        const Nanoseconds queue_delay =
            disk_busy[sn] > s.clock ? disk_busy[sn] - s.clock : 0;
        disk_busy[sn] = std::max(disk_busy[sn], s.clock) + service;
        disk_last_chunk[sn] = access.chunk;
        latency = network.transfer_time(config.chunk_size_bytes, disk_hops) +
                  queue_delay + service;
        if (faults != nullptr) error_rate = faults->disk_error_rate();
        result.time_disk += latency;
        result.time_disk_queue += queue_delay;
        ++result.disk_requests;
        result.bytes.from_disk += chunk_bytes;
        result.client_demand_bytes[c] += chunk_bytes;

        // Sequential readahead: pull the next chunks into the client's
        // path asynchronously.
        for (std::uint32_t r = 1; r <= config.readahead_chunks; ++r) {
          const std::uint64_t next =
              static_cast<std::uint64_t>(access.chunk) + r;
          if (next >= trace.num_data_chunks) break;
          const auto next_chunk = static_cast<core::ChunkId>(next);
          if (caches.resident_on_path(client_node, next_chunk)) continue;
          const std::uint32_t flushes =
              caches.install(client_node, next_chunk);
          for (std::uint32_t w = 0; w < flushes; ++w) {
            charge_disk_async(next_chunk, io::SeekClass::kNear);
            ++result.disk_writebacks;
            result.bytes.writeback += chunk_bytes;
          }
          charge_disk_async(next_chunk, io::SeekClass::kSequential);
          ++result.prefetches;
          result.bytes.prefetch += chunk_bytes;
        }
      }
      // Transient errors: each failed attempt wastes the service latency
      // plus a capped exponential backoff; the per-access timeout budget
      // bounds the total, charging exactly the remainder when it trips.
      Nanoseconds retry_ns = 0;
      if (faults != nullptr && error_rate > 0.0) {
        const resilience::RetryPolicy& rp = faults->retry();
        for (std::uint32_t attempt = 1; attempt < rp.max_attempts;
             ++attempt) {
          if (!faults->draw_error(c, op_id, attempt, error_rate)) break;
          ++result.transient_errors;
          Nanoseconds cost = latency + rp.backoff(attempt);
          if (retry_ns + cost >= rp.access_timeout_ns) {
            retry_ns = rp.access_timeout_ns;
            ++result.retry_timeouts;
            break;
          }
          retry_ns += cost;
          ++result.retries;
        }
        result.time_retry += retry_ns;
      }

      Nanoseconds t = s.clock;
      if (failover_ns > 0) {
        emit_client(c, "failover", t, failover_ns);
        t += failover_ns;
      }
      if (retry_ns > 0) {
        emit_client(c, "retry", t, retry_ns);
        t += retry_ns;
      }
      emit_client(c, stall, t, latency);
      const Nanoseconds total = failover_ns + retry_ns + latency;
      if (latency_hist != nullptr) {
        latency_hist->observe(static_cast<double>(total));
      }
      s.clock += total;
      s.io_time += total;
      ++result.accesses;
      if (tracing && (result.accesses & 4095) == 0) {
        emit_counter_samples(s.clock);
      }
    }

    ++s.iter;
    ++s.iter_global;
    if (s.iter >= item.iterations) {
      complete_item(c, s.item, s.clock);
      ++s.item;
      s.iter = 0;
    }
    if (s.item >= ct.items.size()) {
      s.done = true;
    } else {
      heap.push(HeapEntry{s.clock, c});
    }
  }

  for (std::size_t c = 0; c < num_clients; ++c) {
    MLSC_CHECK(state[c].done,
               "client " << c << " never finished — sync edges form a cycle");
    result.exec_time = std::max(result.exec_time, state[c].clock);
    result.io_time_total += state[c].io_time;
    result.io_time_max = std::max(result.io_time_max, state[c].io_time);
    result.compute_time_total += state[c].compute_time;
    result.sync_wait_total += state[c].sync_wait;
  }
  result.l1 = caches.aggregate_stats(topology::NodeKind::kCompute);
  result.l2 = caches.aggregate_stats(topology::NodeKind::kIo);
  result.l3 = caches.aggregate_stats(topology::NodeKind::kStorage);
  if (insight != nullptr) result.insight = insight->finalize();
  if (tracing && result.accesses > 0) {
    // Close every counter timeline with a final sample at the end of
    // the replay.
    emit_counter_samples(result.exec_time);
  }

  if (faults != nullptr) {
    result.faults_applied = faults->events_applied();
    if (tracing) {
      // A dedicated virtual-time track showing when each fault fired.
      const auto fault_pid =
          obs::kClientPidBase + static_cast<std::int64_t>(num_clients);
      obs::set_process_name(fault_pid, "faults");
      obs::set_thread_name(fault_pid, 0, "schedule");
      for (const auto& applied : faults->applied()) {
        obs::emit_complete(fault_pid, 0, applied.description, applied.at,
                           kMicrosecond);
      }
    }
    MLSC_COUNTER_ADD("engine.faults_applied", result.faults_applied);
    MLSC_COUNTER_ADD("engine.transient_errors", result.transient_errors);
    MLSC_COUNTER_ADD("engine.retries", result.retries);
    MLSC_COUNTER_ADD("engine.retry_timeouts", result.retry_timeouts);
    MLSC_COUNTER_ADD("engine.failovers", result.failovers);
    MLSC_COUNTER_ADD("engine.retry_ns", result.time_retry);
    MLSC_COUNTER_ADD("engine.failover_ns", result.time_failover);
    MLSC_COUNTER_ADD("engine.fault_stall_ns", result.fault_stall_total);
  }

  MLSC_COUNTER_ADD("engine.accesses", result.accesses);
  MLSC_COUNTER_ADD("engine.bytes_moved", result.bytes.below_l1());
  MLSC_COUNTER_ADD("engine.bytes_from_l1", result.bytes.from_l1);
  MLSC_COUNTER_ADD("engine.bytes_from_l2", result.bytes.from_l2);
  MLSC_COUNTER_ADD("engine.bytes_from_l3", result.bytes.from_l3);
  MLSC_COUNTER_ADD("engine.bytes_from_peer", result.bytes.from_peer);
  MLSC_COUNTER_ADD("engine.bytes_from_disk", result.bytes.from_disk);
  MLSC_COUNTER_ADD("engine.bytes_prefetch", result.bytes.prefetch);
  MLSC_COUNTER_ADD("engine.bytes_writeback", result.bytes.writeback);
  MLSC_COUNTER_ADD("engine.disk_requests", result.disk_requests);
  MLSC_COUNTER_ADD("engine.disk_writebacks", result.disk_writebacks);
  MLSC_COUNTER_ADD("engine.peer_hits", result.peer_hits);
  MLSC_COUNTER_ADD("engine.prefetches", result.prefetches);
  MLSC_COUNTER_ADD("engine.sync_wait_ns", result.sync_wait_total);
  MLSC_COUNTER_ADD("engine.io_ns", result.io_time_total);
  MLSC_COUNTER_ADD("engine.compute_ns", result.compute_time_total);
  MLSC_GAUGE_SET("engine.exec_time_ns", result.exec_time);
  return result;
}

}  // namespace mlsc::sim
