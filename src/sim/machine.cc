#include "sim/machine.h"

#include <sstream>

namespace mlsc::sim {

topology::HierarchyTree MachineConfig::build_tree() const {
  return topology::make_layered_hierarchy(clients, io_nodes, storage_nodes,
                                          client_cache_bytes, io_cache_bytes,
                                          storage_cache_bytes);
}

std::string MachineConfig::to_string() const {
  std::ostringstream out;
  out << "(" << clients << "," << io_nodes << "," << storage_nodes
      << ") caches (" << format_bytes(client_cache_bytes) << ","
      << format_bytes(io_cache_bytes) << ","
      << format_bytes(storage_cache_bytes) << ") chunk "
      << format_bytes(chunk_size_bytes) << " policy "
      << cache::policy_kind_name(policy) << " placement "
      << cache::placement_mode_name(placement);
  if (write_back) out << " write-back";
  if (cooperative_caching) out << " cooperative";
  if (readahead_chunks > 0) out << " readahead=" << readahead_chunks;
  return out.str();
}

}  // namespace mlsc::sim
