// Experiment reporting: render one experiment or a scheme comparison as
// aligned tables (or CSV) — what the examples and the CLI print, and a
// convenient API for downstream analysis scripts.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.h"
#include "support/table.h"

namespace mlsc::sim {

/// A full single-experiment report: miss rates per level, the I/O stall
/// breakdown (client cache / shared caches / peers / disk / queueing),
/// disk traffic, synchronization, and timing.
void write_report(std::ostream& out, const ExperimentResult& result,
                  const MachineConfig& config);

/// The report's tables as (title, table) pairs — "cache levels" (per-
/// level accesses/hits/misses/miss %), "io stall breakdown" (per-
/// component seconds and share), and a one-row "summary" (latency,
/// execution time, disk traffic, sync).  write_report prints these;
/// mlsc_map bundles them into its --json run record, where numeric
/// cells become diffable metrics and mlsc_report renders them.
std::vector<std::pair<std::string, Table>> report_tables(
    const ExperimentResult& result);

/// Side-by-side comparison of several results on one workload, with a
/// "normalized vs first" column block (the paper's presentation style).
/// All results must be for the same workload.
Table comparison_table(const std::vector<ExperimentResult>& results);

/// The comparison as CSV (same cells as comparison_table).
void write_comparison_csv(std::ostream& out,
                          const std::vector<ExperimentResult>& results);

/// Runs every scheme of the paper's evaluation on one workload and
/// returns the results in order: original, intra, inter, inter+sched.
std::vector<ExperimentResult> run_all_schemes(
    const workloads::Workload& workload, const MachineConfig& config);

}  // namespace mlsc::sim
