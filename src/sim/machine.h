// The simulated platform: Table 1's parameters, scaled per DESIGN.md §5.
//
// The paper's testbed: 64 client nodes, 32 I/O nodes, 16 storage nodes,
// 2 GB storage cache per node at every layer, 64 KB data chunks and
// stripes, 10k RPM disks, LRU everywhere.  We scale capacities and data
// sizes by 1/64 (keeping their ratio) so the simulation runs at
// workstation scale; node counts and chunk size stay at paper values.
#pragma once

#include <string>

#include "cache/multilevel.h"
#include "io/disk.h"
#include "io/network.h"
#include "topology/hierarchy.h"

namespace mlsc::sim {

struct MachineConfig {
  // Topology (Table 1 defaults).
  std::size_t clients = 64;
  std::size_t io_nodes = 32;
  std::size_t storage_nodes = 16;

  // Per-node storage cache capacities — paper 2 GB each, scaled 1/64.
  std::uint64_t client_cache_bytes = 32 * kMiB;
  std::uint64_t io_cache_bytes = 32 * kMiB;
  std::uint64_t storage_cache_bytes = 32 * kMiB;

  std::uint64_t chunk_size_bytes = 64 * kKiB;
  std::uint64_t stripe_size_bytes = 64 * kKiB;

  cache::PolicyKind policy = cache::PolicyKind::kLru;
  cache::PlacementMode placement = cache::PlacementMode::kAccessBased;

  /// Write-back mode: writes dirty their cached chunk and dirty data
  /// pushed out of the hierarchy is written to disk (charged to the
  /// spindle asynchronously).  Off by default, as in the paper.
  bool write_back = false;

  /// Cooperative caching (the paper's related work [14]): sibling client
  /// caches are probed after a private-cache miss.  Off by default.
  bool cooperative_caching = false;

  /// Sequential readahead depth at the disk level: a miss that reaches
  /// the disk also fetches the next N chunks into the client's path
  /// (asynchronously).  0 disables prefetching (the default).
  std::uint32_t readahead_chunks = 0;

  /// Cache-behavior explanation (DESIGN.md §18): attach the reuse-
  /// distance / miss-classification / interference-attribution observer
  /// to every cache and carry the result in EngineResult::insight.
  /// Off by default — replays cost one null test per cache event.
  bool explain = false;

  io::DiskParams disk;
  io::NetworkParams network;

  /// Matching workload size factor (1.0 = paper / 64); carried here so
  /// experiment headers can report both scales.
  double workload_size_factor = 1.0;

  /// The Table 1 machine.
  static MachineConfig paper_default() { return MachineConfig{}; }

  /// Builds the finalized storage cache hierarchy tree for this config.
  topology::HierarchyTree build_tree() const;

  /// One-line summary, e.g. "(64,32,16) caches (32MiB,32MiB,32MiB) ...".
  std::string to_string() const;
};

}  // namespace mlsc::sim
