#include "sim/trace.h"

#include <algorithm>
#include <map>

#include "poly/order.h"
#include "support/check.h"

namespace mlsc::sim {
namespace {

/// Per-item accumulation buffer.
struct ItemBuffer {
  std::vector<Access> accesses;
  std::vector<std::uint8_t> per_iteration;
  Nanoseconds compute_ns = 0;
};

/// Emits one iteration's accesses into `buffer`, suppressing references
/// whose chunk span did not change since the previous iteration.
class IterationEmitter {
 public:
  IterationEmitter(const poly::Program& program, const core::DataSpace& space,
                   const poly::LoopNest& nest, bool buffer_repeats)
      : program_(program),
        space_(space),
        nest_(nest),
        buffer_repeats_(buffer_repeats) {
    reset();
  }

  void reset() {
    last_spans_.assign(nest_.refs.size(),
                       core::DataSpace::ChunkSpan{UINT32_MAX, 0});
  }

  void emit(std::span<const std::int64_t> iter, ItemBuffer& buffer) {
    std::uint32_t count = 0;
    for (std::size_t r = 0; r < nest_.refs.size(); ++r) {
      const auto& ref = nest_.refs[r];
      const std::uint64_t flat = poly::resolve_element(program_, ref, iter);
      const auto span = space_.element_chunks(ref.array, flat);
      if (buffer_repeats_ && span.first == last_spans_[r].first &&
          span.last == last_spans_[r].last) {
        continue;  // element still buffered in application memory
      }
      last_spans_[r] = span;
      for (core::ChunkId c = span.first; c <= span.last; ++c) {
        buffer.accesses.push_back(Access{c, ref.is_write});
        ++count;
      }
    }
    MLSC_CHECK(count <= 255, "iteration touches more than 255 chunks");
    buffer.per_iteration.push_back(static_cast<std::uint8_t>(count));
  }

 private:
  const poly::Program& program_;
  const core::DataSpace& space_;
  const poly::LoopNest& nest_;
  bool buffer_repeats_ = false;
  std::vector<core::DataSpace::ChunkSpan> last_spans_;
};

}  // namespace

std::uint64_t Trace::total_accesses() const {
  std::uint64_t total = 0;
  for (const auto& c : clients) total += c.accesses.size();
  return total;
}

Trace generate_trace(const poly::Program& program,
                     const core::DataSpace& space,
                     const core::MappingResult& mapping,
                     const TraceOptions& options) {
  const std::size_t num_clients = mapping.num_clients();
  // buffers[client][item] mirrors mapping.client_work.
  std::vector<std::vector<ItemBuffer>> buffers(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    buffers[c].resize(mapping.client_work[c].size());
    for (std::size_t k = 0; k < buffers[c].size(); ++k) {
      buffers[c][k].compute_ns =
          program.nest(mapping.client_work[c][k].nest)
              .compute_ns_per_iteration;
    }
  }

  // Pass 1 — identity-order items: enumerate their rank ranges directly.
  // Pass 2 prep — group transformed-order items by nest for shared walks.
  struct PendingBlock {
    poly::LinearRange range;  // positions in transformed order
    std::size_t client = 0;
    std::size_t item = 0;
  };
  std::map<poly::NestId, std::pair<poly::IterationOrder,
                                   std::vector<PendingBlock>>> walks;

  for (std::size_t c = 0; c < num_clients; ++c) {
    for (std::size_t k = 0; k < mapping.client_work[c].size(); ++k) {
      const core::WorkItem& item = mapping.client_work[c][k];
      const poly::LoopNest& nest = program.nest(item.nest);
      if (item.order.is_identity()) {
        IterationEmitter emitter(program, space, nest,
                                 options.buffer_repeats);
        for (const auto& range : item.ranges) {
          poly::Iteration iter = nest.space.delinearize(range.begin);
          for (std::uint64_t rank = range.begin; rank < range.end; ++rank) {
            emitter.emit(iter, buffers[c][k]);
            if (rank + 1 < range.end) {
              MLSC_CHECK(nest.space.advance(iter), "walk ran off the space");
            }
          }
        }
      } else {
        auto& [order, blocks] = walks[item.nest];
        if (blocks.empty()) {
          order = item.order;
        } else {
          MLSC_CHECK(order.to_string() == item.order.to_string(),
                     "items of one nest must share a traversal order");
        }
        for (const auto& range : item.ranges) {
          blocks.push_back(PendingBlock{range, c, k});
        }
      }
    }
  }

  // Pass 2 — one walk per (nest, transformed order), routing positions to
  // their owning items.  Blocks are disjoint, sorted by position.
  for (auto& [nest_id, entry] : walks) {
    auto& [order, blocks] = entry;
    std::sort(blocks.begin(), blocks.end(),
              [](const PendingBlock& a, const PendingBlock& b) {
                return a.range.begin < b.range.begin;
              });
    const poly::LoopNest& nest = program.nest(nest_id);
    IterationEmitter emitter(program, space, nest, options.buffer_repeats);
    poly::OrderWalker walker(nest.space, order);
    std::size_t block = 0;
    std::size_t last_block = SIZE_MAX;
    while (!walker.done() && block < blocks.size()) {
      const std::uint64_t pos = walker.position();
      if (pos >= blocks[block].range.end) {
        ++block;
        continue;
      }
      if (pos >= blocks[block].range.begin) {
        if (block != last_block) {
          emitter.reset();  // new item: application buffer starts cold
          last_block = block;
        }
        emitter.emit(walker.current(),
                     buffers[blocks[block].client][blocks[block].item]);
      }
      walker.next();
    }
  }

  // Flatten per-item buffers into per-client traces, preserving the
  // work-item order (so SyncEdge item indices line up).
  Trace trace;
  trace.num_data_chunks = space.num_chunks();
  trace.clients.resize(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    ClientTrace& ct = trace.clients[c];
    for (std::size_t k = 0; k < buffers[c].size(); ++k) {
      ItemBuffer& buf = buffers[c][k];
      TraceItem item;
      item.first_iteration = ct.accesses_per_iteration.size();
      item.iterations = buf.per_iteration.size();
      item.compute_ns_per_iteration = buf.compute_ns;
      MLSC_CHECK(item.iterations == mapping.client_work[c][k].iterations,
                 "trace iteration count mismatch for client "
                     << c << " item " << k << ": " << item.iterations
                     << " vs " << mapping.client_work[c][k].iterations);
      ct.items.push_back(item);
      ct.accesses.insert(ct.accesses.end(), buf.accesses.begin(),
                         buf.accesses.end());
      ct.accesses_per_iteration.insert(ct.accesses_per_iteration.end(),
                                       buf.per_iteration.begin(),
                                       buf.per_iteration.end());
      buf = ItemBuffer{};  // release early
    }
  }
  return trace;
}

}  // namespace mlsc::sim
