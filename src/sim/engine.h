// The parallel execution engine: replays per-client traces against the
// multi-level cache hierarchy with timestamp-ordered interleaving.
//
// Each client advances one iteration at a time (compute cost, then its
// chunk accesses, each charged the service latency of the level that
// satisfied it); the globally earliest client always runs next, so
// contention on shared caches and per-storage-node disk queues emerges
// from the interleaving, as it does on the real platform.
#pragma once

#include "cache/storage_cache.h"
#include "core/mapping.h"
#include "obs/cache_insight.h"
#include "sim/machine.h"
#include "sim/trace.h"

namespace mlsc::resilience {
class FaultInjector;
}  // namespace mlsc::resilience

namespace mlsc::sim {

/// Exact bytes-moved accounting at chunk granularity: where each access
/// was served from, plus the asynchronous traffic (prefetch fills and
/// dirty write-backs).  The boundary helpers give the bytes that crossed
/// the boundary *below* each cache level — the quantity the per-level
/// I/O lower bound (obs/lower_bound.h) is compared against.  Peer (
/// cooperative sibling) transfers stay inside the L1 aggregate, so they
/// appear in `from_peer` but cross no boundary.
struct BytesMoved {
  std::uint64_t from_l1 = 0;    // served by the client's own cache
  std::uint64_t from_l2 = 0;    // served by an I/O-node cache
  std::uint64_t from_l3 = 0;    // served by a storage-node cache
  std::uint64_t from_peer = 0;  // served by a sibling client cache
  std::uint64_t from_disk = 0;  // demand misses serviced by disk
  std::uint64_t prefetch = 0;   // readahead chunks pulled from disk
  std::uint64_t writeback = 0;  // dirty chunks flushed to disk

  /// Bytes that crossed the boundary below the L1 (client-cache) layer.
  std::uint64_t below_l1() const {
    return from_l2 + from_l3 + from_disk + prefetch + writeback;
  }
  /// Below the L2 (I/O-node) layer.
  std::uint64_t below_l2() const {
    return from_l3 + from_disk + prefetch + writeback;
  }
  /// Below the L3 (storage-node) layer: disk traffic only.
  std::uint64_t below_l3() const {
    return from_disk + prefetch + writeback;
  }

  BytesMoved& operator+=(const BytesMoved& other) {
    from_l1 += other.from_l1;
    from_l2 += other.from_l2;
    from_l3 += other.from_l3;
    from_peer += other.from_peer;
    from_disk += other.from_disk;
    prefetch += other.prefetch;
    writeback += other.writeback;
    return *this;
  }
};

struct EngineResult {
  cache::CacheStats l1;  // compute-node caches, aggregated
  cache::CacheStats l2;  // I/O-node caches
  cache::CacheStats l3;  // storage-node caches

  Nanoseconds exec_time = 0;       // latest client finish time
  Nanoseconds io_time_total = 0;   // Σ per-client I/O stall (incl. cache
                                   // access cycles, as the paper counts)
  Nanoseconds io_time_max = 0;     // worst single client
  Nanoseconds compute_time_total = 0;
  Nanoseconds sync_wait_total = 0;  // waiting on cross-client sync edges

  // Where the I/O stall time went (sums to io_time_total).
  Nanoseconds time_client_cache = 0;  // hits in the private (L1) cache
  Nanoseconds time_shared_cache = 0;  // hits at I/O or storage caches
  Nanoseconds time_peer_cache = 0;    // cooperative sibling hits
  Nanoseconds time_disk = 0;          // misses serviced by disks
  Nanoseconds time_disk_queue = 0;    // of which: waiting in disk queues
  Nanoseconds time_retry = 0;         // transient-error attempts + backoff
  Nanoseconds time_failover = 0;      // detecting/skirting failed caches

  /// Aggregated data movement, plus each client's share of the demand
  /// traffic it pulled from beyond its private cache (peer + L2 + L3 +
  /// disk bytes; prefetch and write-back traffic is asynchronous and
  /// only appears in the aggregate).
  BytesMoved bytes;
  std::vector<std::uint64_t> client_demand_bytes;

  std::uint64_t accesses = 0;
  std::uint64_t disk_requests = 0;
  std::uint64_t disk_writebacks = 0;   // dirty chunks flushed (write-back)
  std::uint64_t peer_hits = 0;         // cooperative-caching sibling hits
  std::uint64_t prefetches = 0;        // readahead chunks fetched

  // Fault-injection activity (all zero on healthy runs).
  std::uint64_t faults_applied = 0;    // schedule events that took effect
  std::uint64_t transient_errors = 0;  // attempts that drew an I/O error
  std::uint64_t retries = 0;           // re-attempts after an error
  std::uint64_t retry_timeouts = 0;    // accesses whose retry budget ran out
  std::uint64_t failovers = 0;         // failed caches detected and skipped
  /// Global pause time from stall events (remap downtime).  Charged to
  /// every live client's clock — part of exec_time, not of the I/O total.
  Nanoseconds fault_stall_total = 0;

  /// Cache-behavior explanation (MachineConfig::explain): per-level
  /// reuse-distance curves, miss classes and the eviction-attribution
  /// matrix.  Empty unless the replay ran with explain on.
  obs::InsightResult insight;

  /// Average per-client I/O latency — the paper's "I/O latency" metric.
  Nanoseconds io_time_mean(std::size_t clients) const {
    return clients == 0 ? 0 : io_time_total / clients;
  }
};

/// Replays `trace` on the machine.  `mapping` supplies the sync edges;
/// the trace must have been generated from the same mapping.  `faults`
/// (optional) injects the fault schedule during the replay: failed
/// caches are skipped at a failover-detection cost, transient errors are
/// retried with capped exponential backoff under a per-access timeout
/// budget, and every penalty lands in the new retry/failover stall
/// components (the stall breakdown still sums to io_time_total).
EngineResult run_engine(const Trace& trace,
                        const core::MappingResult& mapping,
                        const MachineConfig& config,
                        const topology::HierarchyTree& tree,
                        resilience::FaultInjector* faults = nullptr);

}  // namespace mlsc::sim
