// The parallel execution engine: replays per-client traces against the
// multi-level cache hierarchy with timestamp-ordered interleaving.
//
// Each client advances one iteration at a time (compute cost, then its
// chunk accesses, each charged the service latency of the level that
// satisfied it); the globally earliest client always runs next, so
// contention on shared caches and per-storage-node disk queues emerges
// from the interleaving, as it does on the real platform.
#pragma once

#include "cache/storage_cache.h"
#include "core/mapping.h"
#include "sim/machine.h"
#include "sim/trace.h"

namespace mlsc::sim {

struct EngineResult {
  cache::CacheStats l1;  // compute-node caches, aggregated
  cache::CacheStats l2;  // I/O-node caches
  cache::CacheStats l3;  // storage-node caches

  Nanoseconds exec_time = 0;       // latest client finish time
  Nanoseconds io_time_total = 0;   // Σ per-client I/O stall (incl. cache
                                   // access cycles, as the paper counts)
  Nanoseconds io_time_max = 0;     // worst single client
  Nanoseconds compute_time_total = 0;
  Nanoseconds sync_wait_total = 0;  // waiting on cross-client sync edges

  // Where the I/O stall time went (sums to io_time_total).
  Nanoseconds time_client_cache = 0;  // hits in the private (L1) cache
  Nanoseconds time_shared_cache = 0;  // hits at I/O or storage caches
  Nanoseconds time_peer_cache = 0;    // cooperative sibling hits
  Nanoseconds time_disk = 0;          // misses serviced by disks
  Nanoseconds time_disk_queue = 0;    // of which: waiting in disk queues

  std::uint64_t accesses = 0;
  std::uint64_t disk_requests = 0;
  std::uint64_t disk_writebacks = 0;   // dirty chunks flushed (write-back)
  std::uint64_t peer_hits = 0;         // cooperative-caching sibling hits
  std::uint64_t prefetches = 0;        // readahead chunks fetched

  /// Average per-client I/O latency — the paper's "I/O latency" metric.
  Nanoseconds io_time_mean(std::size_t clients) const {
    return clients == 0 ? 0 : io_time_total / clients;
  }
};

/// Replays `trace` on the machine.  `mapping` supplies the sync edges;
/// the trace must have been generated from the same mapping.
EngineResult run_engine(const Trace& trace,
                        const core::MappingResult& mapping,
                        const MachineConfig& config,
                        const topology::HierarchyTree& tree);

}  // namespace mlsc::sim
