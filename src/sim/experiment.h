// End-to-end experiment runner: workload + scheme + machine -> metrics.
//
// This is what every benchmark binary calls: it builds the hierarchy
// tree and data space, runs the mapping pipeline for the requested
// scheme, expands the trace, replays it on the engine, and packages the
// three result families the paper reports (miss rates per cache level,
// I/O latency, total execution time).
#pragma once

#include <iosfwd>
#include <string>

#include "core/pipeline.h"
#include "obs/lower_bound.h"
#include "resilience/fault.h"
#include "resilience/remap.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace mlsc::sim {

/// Which of the paper's three versions to run (§5.1), plus the Fig. 15
/// scheduling switch for the enhanced inter-processor version.
struct SchemeSpec {
  core::MapperKind mapper = core::MapperKind::kInterProcessor;
  bool schedule = false;
  core::SchedulerOptions scheduler;
  double balance_threshold = 0.10;
  core::TaggingOptions tagging;
  core::DependenceStrategy dependences =
      core::DependenceStrategy::kSynchronize;

  /// Clustering kernel selection and candidate filters
  /// (core::PipelineOptions::clustering); the kAuto default keeps
  /// paper-scale workloads on the greedy oracle kernel.
  core::ClusterOptions clustering;

  /// Mapping-stage threads (core::PipelineOptions::num_threads): 1 =
  /// serial, 0 = hardware concurrency.  Mappings are bit-identical for
  /// every value; this only changes mapping wall-clock time.
  std::size_t num_threads = 1;

  static SchemeSpec original() {
    SchemeSpec s;
    s.mapper = core::MapperKind::kOriginal;
    return s;
  }
  static SchemeSpec intra() {
    SchemeSpec s;
    s.mapper = core::MapperKind::kIntraProcessor;
    return s;
  }
  static SchemeSpec inter() {
    SchemeSpec s;
    s.mapper = core::MapperKind::kInterProcessor;
    return s;
  }
  static SchemeSpec inter_scheduled(double alpha = 0.5, double beta = 0.5) {
    SchemeSpec s;
    s.mapper = core::MapperKind::kInterProcessor;
    s.schedule = true;
    s.scheduler = {alpha, beta};
    return s;
  }

  std::string name() const;
};

/// Degraded-mode replay: a fault schedule plus the retry and remap
/// policies governing how the run copes with it.
struct ResilienceSpec {
  resilience::FaultSchedule schedule;
  resilience::RetryPolicy retry;
  /// remap.remap_on_failure selects between plain degraded replay and
  /// remap-on-failure: when a fail-stop is scheduled, the mapping is
  /// recomputed over the surviving topology and the run is charged
  /// remap.remap_pause_ns of downtime at the trigger time.
  resilience::RemapPolicy remap{.remap_on_failure = false};
};

/// Measured traffic across the boundary below one cache level, next to
/// the red-blue-pebble lower bound for that boundary (obs/lower_bound.h)
/// and the ratio between them.  headroom_pct == 100 means the run moved
/// exactly the provably-minimal number of bytes; lower values mean the
/// mapping still moves more than it must.
struct LevelMovement {
  std::string level;                    // "l1", "l2", "l3"
  std::uint64_t fast_memory_bytes = 0;  // aggregate capacity at/above it
  std::uint64_t bytes_moved = 0;        // measured boundary traffic
  std::uint64_t io_lower_bound = 0;     // provable minimum traffic
  double headroom_pct = 0.0;            // 100 * bound / moved

  static double headroom(std::uint64_t bound, std::uint64_t moved) {
    if (moved == 0) return 100.0;  // nothing moved: trivially optimal
    return 100.0 * static_cast<double>(bound) / static_cast<double>(moved);
  }
};

struct ExperimentResult {
  std::string workload;
  std::string scheme;

  double l1_miss_rate = 0.0;
  double l2_miss_rate = 0.0;
  double l3_miss_rate = 0.0;

  Nanoseconds io_latency = 0;  // mean per-client I/O time
  Nanoseconds exec_time = 0;   // parallel completion time

  EngineResult engine;  // full counters for deeper analysis
  std::size_t sync_edges = 0;  // cross-client constraints in the mapping

  /// Per-level movement vs. the I/O lower bound (l1, l2, l3 order).
  std::vector<LevelMovement> movement;

  // Resilience outcome (defaults on healthy runs).
  std::string fault_summary;   // schedule actually replayed ("" = none)
  bool remapped = false;       // mapping recomputed over survivors
  std::string remap_reason;    // what triggered the remap
  Nanoseconds remap_pause = 0;  // downtime charged for the remap

  void report(std::ostream& out) const;
};

/// Runs one (workload, scheme, machine) experiment.  `resilience`
/// (optional) replays the run under its fault schedule; with
/// remap-on-failure enabled the mapping is recomputed over the surviving
/// topology and the remap's downtime is charged as a stall.
ExperimentResult run_experiment(const workloads::Workload& workload,
                                const SchemeSpec& scheme,
                                const MachineConfig& config,
                                const ResilienceSpec* resilience = nullptr);

/// Ratio helpers for the paper's normalized plots (original == 1.0).
double normalized(double value, double original);

/// The three cache boundaries of `config` for the I/O lower bound: the
/// fast memory above the boundary below level L is the aggregate
/// capacity of every cache at L and above (all client caches for l1,
/// plus all I/O-node caches for l2, plus all storage-node caches for
/// l3 — cooperative or not, the pebble game allows any of them to hold
/// data).
std::vector<obs::LevelSpec> machine_level_specs(const MachineConfig& config);

/// Per-level measured-vs-bound movement rows for a finished engine run.
std::vector<LevelMovement> movement_vs_bound(
    const workloads::Workload& workload, const MachineConfig& config,
    const EngineResult& engine);

}  // namespace mlsc::sim
