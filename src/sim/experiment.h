// End-to-end experiment runner: workload + scheme + machine -> metrics.
//
// This is what every benchmark binary calls: it builds the hierarchy
// tree and data space, runs the mapping pipeline for the requested
// scheme, expands the trace, replays it on the engine, and packages the
// three result families the paper reports (miss rates per cache level,
// I/O latency, total execution time).
#pragma once

#include <iosfwd>
#include <string>

#include "core/pipeline.h"
#include "resilience/fault.h"
#include "resilience/remap.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace mlsc::sim {

/// Which of the paper's three versions to run (§5.1), plus the Fig. 15
/// scheduling switch for the enhanced inter-processor version.
struct SchemeSpec {
  core::MapperKind mapper = core::MapperKind::kInterProcessor;
  bool schedule = false;
  core::SchedulerOptions scheduler;
  double balance_threshold = 0.10;
  core::TaggingOptions tagging;
  core::DependenceStrategy dependences =
      core::DependenceStrategy::kSynchronize;

  /// Clustering kernel selection and candidate filters
  /// (core::PipelineOptions::clustering); the kAuto default keeps
  /// paper-scale workloads on the greedy oracle kernel.
  core::ClusterOptions clustering;

  /// Mapping-stage threads (core::PipelineOptions::num_threads): 1 =
  /// serial, 0 = hardware concurrency.  Mappings are bit-identical for
  /// every value; this only changes mapping wall-clock time.
  std::size_t num_threads = 1;

  static SchemeSpec original() {
    SchemeSpec s;
    s.mapper = core::MapperKind::kOriginal;
    return s;
  }
  static SchemeSpec intra() {
    SchemeSpec s;
    s.mapper = core::MapperKind::kIntraProcessor;
    return s;
  }
  static SchemeSpec inter() {
    SchemeSpec s;
    s.mapper = core::MapperKind::kInterProcessor;
    return s;
  }
  static SchemeSpec inter_scheduled(double alpha = 0.5, double beta = 0.5) {
    SchemeSpec s;
    s.mapper = core::MapperKind::kInterProcessor;
    s.schedule = true;
    s.scheduler = {alpha, beta};
    return s;
  }

  std::string name() const;
};

/// Degraded-mode replay: a fault schedule plus the retry and remap
/// policies governing how the run copes with it.
struct ResilienceSpec {
  resilience::FaultSchedule schedule;
  resilience::RetryPolicy retry;
  /// remap.remap_on_failure selects between plain degraded replay and
  /// remap-on-failure: when a fail-stop is scheduled, the mapping is
  /// recomputed over the surviving topology and the run is charged
  /// remap.remap_pause_ns of downtime at the trigger time.
  resilience::RemapPolicy remap{.remap_on_failure = false};
};

struct ExperimentResult {
  std::string workload;
  std::string scheme;

  double l1_miss_rate = 0.0;
  double l2_miss_rate = 0.0;
  double l3_miss_rate = 0.0;

  Nanoseconds io_latency = 0;  // mean per-client I/O time
  Nanoseconds exec_time = 0;   // parallel completion time

  EngineResult engine;  // full counters for deeper analysis
  std::size_t sync_edges = 0;  // cross-client constraints in the mapping

  // Resilience outcome (defaults on healthy runs).
  std::string fault_summary;   // schedule actually replayed ("" = none)
  bool remapped = false;       // mapping recomputed over survivors
  std::string remap_reason;    // what triggered the remap
  Nanoseconds remap_pause = 0;  // downtime charged for the remap

  void report(std::ostream& out) const;
};

/// Runs one (workload, scheme, machine) experiment.  `resilience`
/// (optional) replays the run under its fault schedule; with
/// remap-on-failure enabled the mapping is recomputed over the surviving
/// topology and the remap's downtime is charged as a stall.
ExperimentResult run_experiment(const workloads::Workload& workload,
                                const SchemeSpec& scheme,
                                const MachineConfig& config,
                                const ResilienceSpec* resilience = nullptr);

/// Ratio helpers for the paper's normalized plots (original == 1.0).
double normalized(double value, double original);

}  // namespace mlsc::sim
