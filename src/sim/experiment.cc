#include "sim/experiment.h"

#include <optional>
#include <ostream>
#include <utility>

#include "obs/trace.h"
#include "support/check.h"

namespace mlsc::sim {

std::string SchemeSpec::name() const {
  std::string base = core::mapper_kind_name(mapper);
  if (schedule) base += "+sched";
  return base;
}

void ExperimentResult::report(std::ostream& out) const {
  out << workload << " / " << scheme << ": miss rates L1 "
      << l1_miss_rate * 100 << "% L2 " << l2_miss_rate * 100 << "% L3 "
      << l3_miss_rate * 100 << "%, I/O latency " << format_time(io_latency)
      << ", execution time " << format_time(exec_time) << "\n";
}

ExperimentResult run_experiment(const workloads::Workload& workload,
                                const SchemeSpec& scheme,
                                const MachineConfig& config,
                                const ResilienceSpec* resilience) {
  const auto tree = config.build_tree();
  const core::DataSpace space(workload.program, config.chunk_size_bytes);

  core::PipelineOptions options;
  options.mapper = scheme.mapper;
  options.balance_threshold = scheme.balance_threshold;
  options.schedule = scheme.schedule;
  options.scheduler = scheme.scheduler;
  options.tagging = scheme.tagging;
  options.dependences = scheme.dependences;
  options.clustering = scheme.clustering;
  options.num_threads = scheme.num_threads;
  options.intra.client_cache_bytes = config.client_cache_bytes;

  ExperimentResult result;
  core::MappingPipeline pipeline(tree, options);
  auto mapping = pipeline.run_all(workload.program, space);

  // Degraded replay: decide up front whether the schedule's failures
  // warrant a remap; the remap run replays the survivor-topology mapping
  // for the whole run (plus the remap's downtime as a stall), so the
  // no-remap and remap runs face the identical fault schedule.
  std::optional<resilience::FaultInjector> injector;
  if (resilience != nullptr && !resilience->schedule.empty()) {
    resilience::FaultSchedule schedule = resilience->schedule;
    const auto decision =
        resilience::decide_remap(resilience->remap, schedule);
    if (decision.triggered) {
      const auto surviving = resilience::surviving_topology(tree, schedule);
      mapping = resilience::remap_mapping(surviving, schedule, options,
                                          workload.program, space);
      resilience::FaultEvent pause;
      pause.kind = resilience::FaultKind::kStall;
      pause.at = decision.at;
      pause.duration = resilience->remap.remap_pause_ns;
      schedule.add(pause);
      result.remapped = true;
      result.remap_reason = decision.reason;
      result.remap_pause = pause.duration;
    }
    result.fault_summary = schedule.to_string();
    injector.emplace(std::move(schedule), resilience->retry, tree);
  }

  Trace trace;
  {
    obs::Span span("sim.generate_trace");
    trace = generate_trace(workload.program, space, mapping);
    span.arg("clients", static_cast<std::uint64_t>(trace.clients.size()));
  }
  EngineResult engine;
  {
    obs::Span span("sim.run_engine");
    engine = run_engine(trace, mapping, config, tree,
                        injector.has_value() ? &*injector : nullptr);
    span.arg("accesses", engine.accesses);
  }

  result.workload = workload.name;
  result.scheme = scheme.name();
  result.l1_miss_rate = engine.l1.miss_rate();
  result.l2_miss_rate = engine.l2.miss_rate();
  result.l3_miss_rate = engine.l3.miss_rate();
  result.io_latency = engine.io_time_mean(tree.num_clients());
  result.exec_time = engine.exec_time;
  result.engine = engine;
  result.sync_edges = mapping.sync_edges.size();
  result.movement = movement_vs_bound(workload, config, engine);
  return result;
}

std::vector<obs::LevelSpec> machine_level_specs(
    const MachineConfig& config) {
  const std::uint64_t l1_total = config.clients * config.client_cache_bytes;
  const std::uint64_t l2_total =
      l1_total + config.io_nodes * config.io_cache_bytes;
  const std::uint64_t l3_total =
      l2_total + config.storage_nodes * config.storage_cache_bytes;
  return {{"l1", l1_total}, {"l2", l2_total}, {"l3", l3_total}};
}

std::vector<LevelMovement> movement_vs_bound(
    const workloads::Workload& workload, const MachineConfig& config,
    const EngineResult& engine) {
  const auto specs = machine_level_specs(config);
  const auto bound = obs::compute_io_lower_bound(workload.program, specs);
  const std::uint64_t moved[3] = {engine.bytes.below_l1(),
                                  engine.bytes.below_l2(),
                                  engine.bytes.below_l3()};
  std::vector<LevelMovement> movement;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    LevelMovement row;
    row.level = specs[i].name;
    row.fast_memory_bytes = specs[i].fast_memory_bytes;
    row.bytes_moved = moved[i];
    row.io_lower_bound = bound.levels[i].bound_bytes;
    row.headroom_pct =
        LevelMovement::headroom(row.io_lower_bound, row.bytes_moved);
    movement.push_back(std::move(row));
  }
  return movement;
}

double normalized(double value, double original) {
  if (original == 0.0) return 0.0;
  return value / original;
}

}  // namespace mlsc::sim
