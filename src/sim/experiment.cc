#include "sim/experiment.h"

#include <ostream>

#include "obs/trace.h"
#include "support/check.h"

namespace mlsc::sim {

std::string SchemeSpec::name() const {
  std::string base = core::mapper_kind_name(mapper);
  if (schedule) base += "+sched";
  return base;
}

void ExperimentResult::report(std::ostream& out) const {
  out << workload << " / " << scheme << ": miss rates L1 "
      << l1_miss_rate * 100 << "% L2 " << l2_miss_rate * 100 << "% L3 "
      << l3_miss_rate * 100 << "%, I/O latency " << format_time(io_latency)
      << ", execution time " << format_time(exec_time) << "\n";
}

ExperimentResult run_experiment(const workloads::Workload& workload,
                                const SchemeSpec& scheme,
                                const MachineConfig& config) {
  const auto tree = config.build_tree();
  const core::DataSpace space(workload.program, config.chunk_size_bytes);

  core::PipelineOptions options;
  options.mapper = scheme.mapper;
  options.balance_threshold = scheme.balance_threshold;
  options.schedule = scheme.schedule;
  options.scheduler = scheme.scheduler;
  options.tagging = scheme.tagging;
  options.dependences = scheme.dependences;
  options.num_threads = scheme.num_threads;
  options.intra.client_cache_bytes = config.client_cache_bytes;

  core::MappingPipeline pipeline(tree, options);
  const auto mapping = pipeline.run_all(workload.program, space);
  Trace trace;
  {
    obs::Span span("sim.generate_trace");
    trace = generate_trace(workload.program, space, mapping);
    span.arg("clients", static_cast<std::uint64_t>(trace.clients.size()));
  }
  EngineResult engine;
  {
    obs::Span span("sim.run_engine");
    engine = run_engine(trace, mapping, config, tree);
    span.arg("accesses", engine.accesses);
  }

  ExperimentResult result;
  result.workload = workload.name;
  result.scheme = scheme.name();
  result.l1_miss_rate = engine.l1.miss_rate();
  result.l2_miss_rate = engine.l2.miss_rate();
  result.l3_miss_rate = engine.l3.miss_rate();
  result.io_latency = engine.io_time_mean(tree.num_clients());
  result.exec_time = engine.exec_time;
  result.engine = engine;
  result.sync_edges = mapping.sync_edges.size();
  return result;
}

double normalized(double value, double original) {
  if (original == 0.0) return 0.0;
  return value / original;
}

}  // namespace mlsc::sim
