// Trace generation: a MappingResult becomes per-client chunk-access
// streams the engine can replay.
//
// Every iteration emits one access per array reference per covered data
// chunk — the paper's platform issues one MPI-IO request per reference,
// and each request interrogates the storage cache hierarchy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/data_space.h"
#include "core/mapping.h"
#include "support/units.h"

namespace mlsc::sim {

struct Access {
  core::ChunkId chunk = 0;
  bool is_write = false;
};

/// One executed WorkItem: `iterations` consecutive entries of
/// `accesses_per_iteration`, each naming how many entries of `accesses`
/// that iteration consumes.
struct TraceItem {
  std::uint64_t first_iteration = 0;  // index into per-client iteration seq
  std::uint64_t iterations = 0;
  Nanoseconds compute_ns_per_iteration = 0;
};

struct ClientTrace {
  std::vector<Access> accesses;
  std::vector<std::uint8_t> accesses_per_iteration;
  /// Aligned with MappingResult::client_work items (same indices, so
  /// SyncEdges address into it directly).
  std::vector<TraceItem> items;

  std::uint64_t total_iterations() const {
    return accesses_per_iteration.size();
  }
};

struct Trace {
  std::vector<ClientTrace> clients;
  /// r, the data-space chunk count (bounds readahead prefetches).
  std::uint32_t num_data_chunks = 0;
  std::uint64_t total_accesses() const;
};

struct TraceOptions {
  /// When true, a reference whose chunk span is unchanged from the
  /// previous iteration of the same item is suppressed — modelling an
  /// application that buffers the current element in user memory.  The
  /// paper's platform issues one I/O request per reference (MPI-IO reads
  /// each element on use), so the default is false.
  bool buffer_repeats = false;
};

/// Expands a mapping into traces.  Identity-order items enumerate their
/// rank ranges directly; permuted/tiled items are produced by one shared
/// walk per (nest, order) so the cost stays linear in the nest size.
Trace generate_trace(const poly::Program& program,
                     const core::DataSpace& space,
                     const core::MappingResult& mapping,
                     const TraceOptions& options = {});

}  // namespace mlsc::sim
