#include "core/mapping.h"

#include <algorithm>
#include <map>

#include "poly/loop_nest.h"
#include "support/check.h"

namespace mlsc::core {

const char* mapper_kind_name(MapperKind kind) {
  switch (kind) {
    case MapperKind::kOriginal:
      return "original";
    case MapperKind::kIntraProcessor:
      return "intra-processor";
    case MapperKind::kInterProcessor:
      return "inter-processor";
  }
  return "?";
}

std::uint64_t MappingResult::total_iterations() const {
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < client_work.size(); ++c) {
    total += client_iterations(c);
  }
  return total;
}

std::uint64_t MappingResult::client_iterations(std::size_t client) const {
  MLSC_CHECK(client < client_work.size(), "client out of range");
  std::uint64_t total = 0;
  for (const auto& item : client_work[client]) total += item.iterations;
  return total;
}

double MappingResult::imbalance() const {
  if (client_work.empty()) return 0.0;
  const double mean = static_cast<double>(total_iterations()) /
                      static_cast<double>(client_work.size());
  if (mean == 0.0) return 0.0;
  double worst = 0.0;
  for (std::size_t c = 0; c < client_work.size(); ++c) {
    const double dev =
        std::abs(static_cast<double>(client_iterations(c)) - mean) / mean;
    worst = std::max(worst, dev);
  }
  return worst;
}

void MappingResult::validate_partition(const poly::Program& program) const {
  // Group position ranges by (nest, order-identity flag): all items of a
  // nest must agree on the traversal order for the partition to be
  // meaningful over positions.
  std::map<poly::NestId, std::vector<poly::LinearRange>> by_nest;
  std::map<poly::NestId, std::string> order_of;
  for (const auto& work : client_work) {
    for (const auto& item : work) {
      auto [it, inserted] =
          order_of.try_emplace(item.nest, item.order.to_string());
      MLSC_CHECK(it->second == item.order.to_string(),
                 "items of nest " << item.nest
                                  << " disagree on traversal order");
      auto& ranges = by_nest[item.nest];
      ranges.insert(ranges.end(), item.ranges.begin(), item.ranges.end());
      MLSC_CHECK(item.iterations == poly::total_range_size(item.ranges),
                 "work item iteration count out of sync with its ranges");
    }
  }
  for (auto& [nest_id, ranges] : by_nest) {
    const std::uint64_t expected = program.nest(nest_id).space.size();
    const std::uint64_t before = poly::total_range_size(ranges);
    MLSC_CHECK(before == expected, "nest " << nest_id << " covers " << before
                                           << " of " << expected
                                           << " iterations");
    const auto merged = poly::normalize_ranges(std::move(ranges));
    // If ranges overlapped, normalization would shrink the total.
    MLSC_CHECK(poly::total_range_size(merged) == expected,
               "nest " << nest_id << " has overlapping client ranges");
    MLSC_CHECK(merged.size() == 1 && merged.front().begin == 0 &&
                   merged.front().end == expected,
               "nest " << nest_id << " ranges leave gaps");
  }
}

}  // namespace mlsc::core
