#include "core/graph.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"
#include "support/dynamic_bitset.h"

namespace mlsc::core {

namespace {

/// One nonzero entry found by the sweep: (b, weight) with b > row.
struct RowHit {
  std::uint32_t b;
  std::uint64_t weight;
};

}  // namespace

ChunkGraph::ChunkGraph(const std::vector<IterationChunk>& chunks,
                       const GraphOptions& options)
    : num_nodes_(chunks.size()) {
  MLSC_CHECK(num_nodes_ <= options.max_nodes,
             "similarity graph limited to " << options.max_nodes
                                            << " nodes (got " << num_nodes_
                                            << ")");
  const std::uint32_t n = static_cast<std::uint32_t>(num_nodes_);
  if (n == 0) {
    row_offsets_.assign(1, 0);
    return;
  }

  // Width r = max set bit + 1; dense bitsets beat the sparse merge when
  // the width is modest, because and_count is an unrolled word loop.
  std::size_t width = 0;
  for (const auto& chunk : chunks) {
    if (!chunk.tag.bits().empty()) {
      width = std::max<std::size_t>(width, chunk.tag.bits().back() + 1);
    }
  }
  const bool use_bitsets = width > 0 && width <= options.bitset_width_limit;
  std::vector<DynamicBitset> dense;
  if (use_bitsets) {
    dense.resize(n);
    auto build = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t v = lo; v < hi; ++v) {
        dense[v] = chunks[v].tag.to_bitset(width);
      }
    };
    if (options.pool != nullptr) {
      options.pool->parallel_for(0, n, options.pool->default_grain(n), build);
    } else {
      build(0, n);
    }
  }

  // Pairwise sweep, row-partitioned over the upper triangle.  Rows are
  // independent and their outputs land in per-row slots, so the parallel
  // and serial sweeps produce identical structure.
  std::vector<std::vector<RowHit>> rows(n);
  auto sweep_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t a = lo; a < hi; ++a) {
      auto& row = rows[a];
      for (std::uint32_t b = static_cast<std::uint32_t>(a) + 1; b < n; ++b) {
        const std::uint64_t w =
            use_bitsets ? dense[a].and_count(dense[b])
                        : chunks[a].tag.common_bits(chunks[b].tag);
        if (w > 0) row.push_back(RowHit{b, w});
      }
    }
  };
  if (options.pool != nullptr && n >= 64) {
    // Small grain: row a costs O(n - a), so late chunks are cheap and
    // dynamic claiming evens the triangle out.
    const std::size_t grain =
        std::max<std::size_t>(1, n / (options.pool->num_threads() * 8));
    options.pool->parallel_for(0, n, grain, sweep_rows);
  } else {
    sweep_rows(0, n);
  }

  // Freeze into edges_ ((a < b) lexicographic) and the symmetric CSR.
  std::vector<std::size_t> degree(n, 0);
  std::size_t num_edges = 0;
  for (std::uint32_t a = 0; a < n; ++a) {
    degree[a] += rows[a].size();
    for (const RowHit& hit : rows[a]) ++degree[hit.b];
    num_edges += rows[a].size();
  }
  MLSC_CHECK(num_edges <= std::numeric_limits<std::uint32_t>::max(),
             "similarity graph exceeds 2^32 edges");
  edges_.reserve(num_edges);
  row_offsets_.assign(n + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    row_offsets_[v + 1] = row_offsets_[v] + degree[v];
  }
  col_.resize(2 * num_edges);
  weight_.resize(2 * num_edges);
  edge_id_.resize(2 * num_edges);

  std::vector<std::size_t> cursor(row_offsets_.begin(),
                                  row_offsets_.end() - 1);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (const RowHit& hit : rows[a]) {
      const auto id = static_cast<std::uint32_t>(edges_.size());
      edges_.push_back(GraphEdge{a, hit.b, hit.weight});
      // Visiting edges in (a, b) lexicographic order fills every CSR row
      // in ascending neighbor order: row v first receives its partners
      // < v (while they are the row), then its partners > v (when v is).
      std::size_t slot = cursor[a]++;
      col_[slot] = hit.b;
      weight_[slot] = hit.weight;
      edge_id_[slot] = id;
      slot = cursor[hit.b]++;
      col_[slot] = a;
      weight_[slot] = hit.weight;
      edge_id_[slot] = id;
    }
  }
}

std::size_t ChunkGraph::csr_find(std::uint32_t a, std::uint32_t b) const {
  MLSC_DCHECK(a < num_nodes_ && b < num_nodes_, "graph node out of range");
  const auto begin = col_.begin() + row_offsets_[a];
  const auto end = col_.begin() + row_offsets_[a + 1];
  const auto it = std::lower_bound(begin, end, b);
  if (it == end || *it != b) return SIZE_MAX;
  return static_cast<std::size_t>(it - col_.begin());
}

std::uint64_t ChunkGraph::weight(std::uint32_t a, std::uint32_t b) const {
  if (a == b) return 0;
  const std::size_t slot = csr_find(a, b);
  if (slot != SIZE_MAX) return weight_[slot];
  if (!extra_edge_id_.empty()) {
    const auto it = extra_edge_id_.find(pair_key(a, b));
    if (it != extra_edge_id_.end()) return edges_[it->second].weight;
  }
  return 0;
}

std::span<const std::uint32_t> ChunkGraph::neighbors(
    std::uint32_t node) const {
  MLSC_DCHECK(node < num_nodes_, "graph node out of range");
  if (!patched_rows_.empty()) {
    const auto it = patched_rows_.find(node);
    if (it != patched_rows_.end()) {
      return {it->second.data(), it->second.size()};
    }
  }
  return {col_.data() + row_offsets_[node],
          row_offsets_[node + 1] - row_offsets_[node]};
}

void ChunkGraph::set_infinite(std::uint32_t a, std::uint32_t b) {
  MLSC_CHECK(a != b, "cannot set a self edge");
  MLSC_CHECK(a < num_nodes_ && b < num_nodes_, "graph node out of range");
  const std::size_t slot_ab = csr_find(a, b);
  if (slot_ab != SIZE_MAX) {
    const std::size_t slot_ba = csr_find(b, a);
    weight_[slot_ab] = GraphEdge::kInfiniteWeight;
    weight_[slot_ba] = GraphEdge::kInfiniteWeight;
    edges_[edge_id_[slot_ab]].weight = GraphEdge::kInfiniteWeight;
    return;
  }

  const std::uint64_t key = pair_key(a, b);
  const auto existing = extra_edge_id_.find(key);
  if (existing != extra_edge_id_.end()) {
    edges_[existing->second].weight = GraphEdge::kInfiniteWeight;
    return;
  }

  // Brand-new edge on a zero-weight pair: record it and patch both rows.
  extra_edge_id_.emplace(
      key, static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(GraphEdge{std::min(a, b), std::max(a, b),
                             GraphEdge::kInfiniteWeight});
  for (const auto& [node, other] : {std::pair{a, b}, std::pair{b, a}}) {
    auto& row = patched_rows_[node];
    if (row.empty()) {
      const auto span = std::span<const std::uint32_t>(
          col_.data() + row_offsets_[node],
          row_offsets_[node + 1] - row_offsets_[node]);
      row.assign(span.begin(), span.end());
    }
    row.insert(std::lower_bound(row.begin(), row.end(), other), other);
  }
}

std::string ChunkGraph::to_dot(const std::vector<IterationChunk>& chunks,
                               std::size_t tag_width) const {
  std::ostringstream out;
  out << "graph iteration_chunks {\n";
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    out << "  g" << n << " [label=\"γ" << n << "\\n"
        << chunks[n].tag.to_string(tag_width) << "\"];\n";
  }
  for (const auto& e : edges_) {
    out << "  g" << e.a << " -- g" << e.b << " [label=\"";
    if (e.weight == GraphEdge::kInfiniteWeight) {
      out << "inf";
    } else {
      out << e.weight;
    }
    out << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace mlsc::core
