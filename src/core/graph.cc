#include "core/graph.h"

#include <sstream>

#include "support/check.h"

namespace mlsc::core {

ChunkGraph::ChunkGraph(const std::vector<IterationChunk>& chunks)
    : num_nodes_(chunks.size()) {
  MLSC_CHECK(num_nodes_ <= 8192,
             "similarity graph limited to 8192 nodes (got " << num_nodes_
                                                            << ")");
  weights_.assign(num_nodes_ * (num_nodes_ + 1) / 2, 0);
  for (std::uint32_t a = 0; a < num_nodes_; ++a) {
    for (std::uint32_t b = a + 1; b < num_nodes_; ++b) {
      const std::uint64_t w = chunks[a].tag.common_bits(chunks[b].tag);
      weights_[edge_index(a, b)] = w;
      if (w > 0) edges_.push_back(GraphEdge{a, b, w});
    }
  }
}

std::size_t ChunkGraph::edge_index(std::uint32_t a, std::uint32_t b) const {
  MLSC_DCHECK(a < num_nodes_ && b < num_nodes_, "graph node out of range");
  if (a > b) std::swap(a, b);
  // Upper-triangle row-major: row a starts after a full rows.
  return static_cast<std::size_t>(a) * num_nodes_ -
         static_cast<std::size_t>(a) * (a + 1) / 2 + b;
}

std::uint64_t ChunkGraph::weight(std::uint32_t a, std::uint32_t b) const {
  if (a == b) return 0;
  return weights_[edge_index(a, b)];
}

std::vector<std::uint32_t> ChunkGraph::neighbors(std::uint32_t node) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t other = 0; other < num_nodes_; ++other) {
    if (other != node && weight(node, other) > 0) out.push_back(other);
  }
  return out;
}

void ChunkGraph::set_infinite(std::uint32_t a, std::uint32_t b) {
  MLSC_CHECK(a != b, "cannot set a self edge");
  auto& w = weights_[edge_index(a, b)];
  const bool was_zero = (w == 0);
  w = GraphEdge::kInfiniteWeight;
  if (was_zero) {
    edges_.push_back(GraphEdge{std::min(a, b), std::max(a, b), w});
  } else {
    for (auto& e : edges_) {
      if (e.a == std::min(a, b) && e.b == std::max(a, b)) {
        e.weight = GraphEdge::kInfiniteWeight;
        break;
      }
    }
  }
}

std::string ChunkGraph::to_dot(const std::vector<IterationChunk>& chunks,
                               std::size_t tag_width) const {
  std::ostringstream out;
  out << "graph iteration_chunks {\n";
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    out << "  g" << n << " [label=\"γ" << n << "\\n"
        << chunks[n].tag.to_string(tag_width) << "\"];\n";
  }
  for (const auto& e : edges_) {
    out << "  g" << e.a << " -- g" << e.b << " [label=\"";
    if (e.weight == GraphEdge::kInfiniteWeight) {
      out << "inf";
    } else {
      out << e.weight;
    }
    out << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace mlsc::core
