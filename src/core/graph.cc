#include "core/graph.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"
#include "support/dynamic_bitset.h"

namespace mlsc::core {

namespace {

/// One nonzero entry found by the sweep: (b, weight) with b > row.
struct RowHit {
  std::uint32_t b;
  std::uint64_t weight;
};

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Runs body(lo, hi) over [0, n) — on the pool when one is given and the
/// range is worth fanning out, inline otherwise.  Row outputs land in
/// per-row slots, so both paths produce identical structure.
void for_rows(ThreadPool* pool, std::size_t n,
              const std::function<void(std::size_t, std::size_t)>& body) {
  if (pool != nullptr && n >= 64) {
    // Small grain: row cost is skewed (early rows see more partners), so
    // dynamic claiming of many small chunks evens the load out.
    const std::size_t grain =
        std::max<std::size_t>(1, n / (pool->num_threads() * 8));
    pool->parallel_for(0, n, grain, body);
  } else {
    body(0, n);
  }
}

}  // namespace

ChunkGraph::ChunkGraph(const std::vector<IterationChunk>& chunks,
                       const GraphOptions& options)
    : num_nodes_(chunks.size()) {
  MLSC_CHECK(num_nodes_ <= options.max_nodes,
             "similarity graph limited to " << options.max_nodes
                                            << " nodes (got " << num_nodes_
                                            << ")");
  const std::uint32_t n = static_cast<std::uint32_t>(num_nodes_);
  stats_.exact = options.exact;
  stats_.total_pairs =
      n == 0 ? 0 : static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (n == 0) {
    row_offsets_.assign(1, 0);
    return;
  }

  // Width r = max set bit + 1; dense bitsets beat the sparse merge when
  // the tags are dense enough that the word loop touches fewer words
  // than the merge touches entries.
  std::size_t width = 0;
  std::uint64_t total_bits = 0;
  for (const auto& chunk : chunks) {
    if (!chunk.tag.bits().empty()) {
      width = std::max<std::size_t>(width, chunk.tag.bits().back() + 1);
    }
    total_bits += chunk.tag.bits().size();
  }
  const std::uint64_t avg_popcount = total_bits / n;
  const bool use_bitsets =
      width > 0 && width <= options.bitset_width_limit &&
      (options.exact || width <= 256 * std::max<std::uint64_t>(avg_popcount, 1));
  std::vector<DynamicBitset> dense;
  if (use_bitsets) {
    dense.resize(n);
    for_rows(options.pool, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t v = lo; v < hi; ++v) {
        dense[v] = chunks[v].tag.to_bitset(width);
      }
    });
  }
  const auto score_pair = [&](std::uint32_t a, std::uint32_t b) {
    return use_bitsets ? dense[a].and_count(dense[b])
                       : chunks[a].tag.common_bits(chunks[b].tag);
  };

  std::vector<std::vector<RowHit>> rows(n);
  if (options.exact) {
    // Reference oracle: exhaustive pairwise sweep, row-partitioned over
    // the upper triangle.
    stats_.scored_pairs = stats_.total_pairs;
    for_rows(options.pool, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t a = lo; a < hi; ++a) {
        auto& row = rows[a];
        for (std::uint32_t b = static_cast<std::uint32_t>(a) + 1; b < n;
             ++b) {
          const std::uint64_t w = score_pair(static_cast<std::uint32_t>(a), b);
          if (w > 0) row.push_back(RowHit{b, w});
        }
      }
    });
  } else {
    // Stage 1: candidate generation.  Build the data-chunk inverted
    // index (posting lists of chunk ids, ascending by construction) and
    // read candidate pairs off it: chunk b is a candidate partner of a
    // iff some uncapped posting list contains both.  Banding then prunes
    // candidates that agree on no minhash band.
    const auto generate_start = std::chrono::steady_clock::now();
    obs::Span gen_span("pipeline.candidate_gen");
    gen_span.arg("chunks", static_cast<std::uint64_t>(n));

    std::vector<std::vector<std::uint32_t>> postings(width);
    for (std::uint32_t a = 0; a < n; ++a) {
      for (const std::uint32_t bit : chunks[a].tag.bits()) {
        postings[bit].push_back(a);
      }
    }
    std::uint64_t hot_skipped = 0;
    if (options.hot_posting_cap > 0) {
      for (auto& list : postings) {
        if (list.size() > options.hot_posting_cap) {
          list.clear();  // skip the whole posting: too hot to enumerate
          ++hot_skipped;
        }
      }
    }
    stats_.hot_postings_skipped = hot_skipped;

    std::vector<std::uint64_t> band_keys;
    if (options.banding.enabled()) {
      band_keys.resize(static_cast<std::size_t>(n) * options.banding.bands);
      for_rows(options.pool, n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) {
          minhash_band_keys(chunks[v].tag.bits(), options.banding,
                            band_keys.data() + v * options.banding.bands);
        }
      });
    }

    std::vector<std::vector<std::uint32_t>> candidates(n);
    std::atomic<std::uint64_t> pruned{0};
    std::atomic<std::uint64_t> scored{0};
    for_rows(options.pool, n, [&](std::size_t lo, std::size_t hi) {
      std::vector<std::uint32_t> scratch;
      std::uint64_t local_pruned = 0;
      std::uint64_t local_kept = 0;
      for (std::size_t a = lo; a < hi; ++a) {
        scratch.clear();
        for (const std::uint32_t bit : chunks[a].tag.bits()) {
          const auto& list = postings[bit];
          // Only partners above a: the pair (a, b) is generated once,
          // when a is the smaller id.
          auto it = std::upper_bound(list.begin(), list.end(),
                                     static_cast<std::uint32_t>(a));
          scratch.insert(scratch.end(), it, list.end());
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        if (options.banding.enabled()) {
          const std::uint64_t* keys_a =
              band_keys.data() + a * options.banding.bands;
          auto& out = candidates[a];
          out.reserve(scratch.size());
          for (const std::uint32_t b : scratch) {
            if (minhash_shares_band(
                    keys_a, band_keys.data() + b * options.banding.bands,
                    options.banding)) {
              out.push_back(b);
            } else {
              ++local_pruned;
            }
          }
          local_kept += out.size();
        } else {
          candidates[a] = scratch;
          local_kept += scratch.size();
        }
      }
      pruned.fetch_add(local_pruned, std::memory_order_relaxed);
      scored.fetch_add(local_kept, std::memory_order_relaxed);
    });
    stats_.banding_pruned = pruned.load();
    stats_.scored_pairs = scored.load();
    stats_.generate_ms = elapsed_ms(generate_start);
    gen_span.arg("candidate_pairs", stats_.scored_pairs);
    gen_span.arg("pairs_pruned", stats_.banding_pruned);
    gen_span.end();
    MLSC_COUNTER_ADD("graph.candidate_pairs", stats_.scored_pairs);
    MLSC_COUNTER_ADD("graph.pairs_pruned", stats_.banding_pruned);
    MLSC_COUNTER_ADD("graph.hot_postings_skipped", hot_skipped);

    // Stage 2: score the survivors with the exact tag intersection.
    // Every candidate shares at least one uncapped data chunk, so all
    // weights are nonzero; the weights themselves are exact (capping
    // and banding decide *which* pairs are scored, never the score).
    const auto score_start = std::chrono::steady_clock::now();
    obs::Span score_span("pipeline.pair_scoring");
    score_span.arg("pairs", stats_.scored_pairs);
    for_rows(options.pool, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t a = lo; a < hi; ++a) {
        auto& row = rows[a];
        row.reserve(candidates[a].size());
        for (const std::uint32_t b : candidates[a]) {
          const std::uint64_t w = score_pair(static_cast<std::uint32_t>(a), b);
          if (w > 0) row.push_back(RowHit{b, w});
        }
      }
    });
    stats_.score_ms = elapsed_ms(score_start);
    score_span.end();
  }

  // Freeze into edges_ ((a < b) lexicographic) and the symmetric CSR.
  std::vector<std::size_t> degree(n, 0);
  std::size_t num_edges = 0;
  for (std::uint32_t a = 0; a < n; ++a) {
    degree[a] += rows[a].size();
    for (const RowHit& hit : rows[a]) ++degree[hit.b];
    num_edges += rows[a].size();
  }
  MLSC_CHECK(num_edges <= std::numeric_limits<std::uint32_t>::max(),
             "similarity graph exceeds 2^32 edges");
  edges_.reserve(num_edges);
  row_offsets_.assign(n + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    row_offsets_[v + 1] = row_offsets_[v] + degree[v];
  }
  col_.resize(2 * num_edges);
  weight_.resize(2 * num_edges);
  edge_id_.resize(2 * num_edges);

  std::vector<std::size_t> cursor(row_offsets_.begin(),
                                  row_offsets_.end() - 1);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (const RowHit& hit : rows[a]) {
      const auto id = static_cast<std::uint32_t>(edges_.size());
      edges_.push_back(GraphEdge{a, hit.b, hit.weight});
      // Visiting edges in (a, b) lexicographic order fills every CSR row
      // in ascending neighbor order: row v first receives its partners
      // < v (while they are the row), then its partners > v (when v is).
      std::size_t slot = cursor[a]++;
      col_[slot] = hit.b;
      weight_[slot] = hit.weight;
      edge_id_[slot] = id;
      slot = cursor[hit.b]++;
      col_[slot] = a;
      weight_[slot] = hit.weight;
      edge_id_[slot] = id;
    }
  }
}

std::size_t ChunkGraph::csr_find(std::uint32_t a, std::uint32_t b) const {
  MLSC_DCHECK(a < num_nodes_ && b < num_nodes_, "graph node out of range");
  const auto begin = col_.begin() + row_offsets_[a];
  const auto end = col_.begin() + row_offsets_[a + 1];
  const auto it = std::lower_bound(begin, end, b);
  if (it == end || *it != b) return SIZE_MAX;
  return static_cast<std::size_t>(it - col_.begin());
}

std::uint64_t ChunkGraph::weight(std::uint32_t a, std::uint32_t b) const {
  if (a == b) return 0;
  const std::size_t slot = csr_find(a, b);
  if (slot != SIZE_MAX) return weight_[slot];
  if (!extra_edge_id_.empty()) {
    const auto it = extra_edge_id_.find(pair_key(a, b));
    if (it != extra_edge_id_.end()) return edges_[it->second].weight;
  }
  return 0;
}

std::span<const std::uint32_t> ChunkGraph::neighbors(
    std::uint32_t node) const {
  MLSC_DCHECK(node < num_nodes_, "graph node out of range");
  if (!patched_rows_.empty()) {
    const auto it = patched_rows_.find(node);
    if (it != patched_rows_.end()) {
      return {it->second.data(), it->second.size()};
    }
  }
  return {col_.data() + row_offsets_[node],
          row_offsets_[node + 1] - row_offsets_[node]};
}

void ChunkGraph::set_infinite(std::uint32_t a, std::uint32_t b) {
  MLSC_CHECK(a != b, "cannot set a self edge");
  MLSC_CHECK(a < num_nodes_ && b < num_nodes_, "graph node out of range");
  const std::size_t slot_ab = csr_find(a, b);
  if (slot_ab != SIZE_MAX) {
    const std::size_t slot_ba = csr_find(b, a);
    weight_[slot_ab] = GraphEdge::kInfiniteWeight;
    weight_[slot_ba] = GraphEdge::kInfiniteWeight;
    edges_[edge_id_[slot_ab]].weight = GraphEdge::kInfiniteWeight;
    return;
  }

  const std::uint64_t key = pair_key(a, b);
  const auto existing = extra_edge_id_.find(key);
  if (existing != extra_edge_id_.end()) {
    edges_[existing->second].weight = GraphEdge::kInfiniteWeight;
    return;
  }

  // Brand-new edge on a zero-weight pair: record it and patch both rows.
  extra_edge_id_.emplace(
      key, static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(GraphEdge{std::min(a, b), std::max(a, b),
                             GraphEdge::kInfiniteWeight});
  for (const auto& [node, other] : {std::pair{a, b}, std::pair{b, a}}) {
    auto& row = patched_rows_[node];
    if (row.empty()) {
      const auto span = std::span<const std::uint32_t>(
          col_.data() + row_offsets_[node],
          row_offsets_[node + 1] - row_offsets_[node]);
      row.assign(span.begin(), span.end());
    }
    row.insert(std::lower_bound(row.begin(), row.end(), other), other);
  }
}

std::string ChunkGraph::to_dot(const std::vector<IterationChunk>& chunks,
                               std::size_t tag_width) const {
  std::ostringstream out;
  out << "graph iteration_chunks {\n";
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    out << "  g" << n << " [label=\"γ" << n << "\\n"
        << chunks[n].tag.to_string(tag_width) << "\"];\n";
  }
  for (const auto& e : edges_) {
    out << "  g" << e.a << " -- g" << e.b << " [label=\"";
    if (e.weight == GraphEdge::kInfiniteWeight) {
      out << "inf";
    } else {
      out << e.weight;
    }
    out << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace mlsc::core
