// Iteration-chunk tags and cluster tags (paper §4.2 and Fig. 5).
//
// A ChunkTag is the r-bit tag Λ = λ0 λ1 ... λr-1 describing which data
// chunks an iteration (chunk) accesses.  Tags are stored sparsely — a
// sorted vector of set-bit positions — because each iteration touches a
// handful of the 10^4..10^5 data chunks.
//
// A ClusterTag is the "bitwise sum" of member tags: a per-data-chunk
// access count vector.  The dot product of two cluster tags quantifies
// the degree of data chunk sharing between two clusters and drives the
// greedy merge in the clustering stage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/dynamic_bitset.h"

namespace mlsc::core {

class ClusterTag;

class ChunkTag {
 public:
  ChunkTag() = default;

  /// Takes a list of set-bit positions; sorted and deduplicated here.
  static ChunkTag from_bits(std::vector<std::uint32_t> bits);

  const std::vector<std::uint32_t>& bits() const { return bits_; }

  /// Number of 1 bits (data chunks accessed).
  std::size_t popcount() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  bool test(std::uint32_t pos) const;

  /// Number of common 1 bits, popcount(Λa ∧ Λb) — the similarity-graph
  /// edge weight and (since tags are 0/1 vectors) also the tag dot
  /// product used by the scheduler.
  std::size_t common_bits(const ChunkTag& other) const;

  /// Number of differing positions.  Zero shared bits means the chunks
  /// share no data; small Hamming distance means similar access patterns.
  std::size_t hamming_distance(const ChunkTag& other) const;

  /// Union of the two tags (used when coarsening the chunk table).
  ChunkTag merged_with(const ChunkTag& other) const;

  bool operator==(const ChunkTag& other) const = default;
  std::size_t hash() const;

  /// Dense rendering "1010..." of width r, matching Fig. 8's notation.
  std::string to_string(std::size_t r) const;
  DynamicBitset to_bitset(std::size_t r) const;

 private:
  std::vector<std::uint32_t> bits_;  // sorted, unique
};

struct ChunkTagHash {
  std::size_t operator()(const ChunkTag& tag) const { return tag.hash(); }
};

class ClusterTag {
 public:
  struct Entry {
    std::uint32_t pos;
    std::uint32_t count;
  };

  ClusterTag() = default;

  void add(const ChunkTag& tag);
  void add(const ClusterTag& other);
  /// Removes a member tag's contribution; counts must not go negative.
  void remove(const ChunkTag& tag);

  /// Σ_k count_a[k] * count_b[k] — the clustering merge criterion.
  std::uint64_t dot(const ClusterTag& other) const;

  /// Σ_{k ∈ tag} count[k] — affinity of a chunk with a cluster, used by
  /// the load balancer's eviction choice.
  std::uint64_t dot(const ChunkTag& tag) const;

  bool empty() const { return entries_.empty(); }
  std::size_t distinct_chunks() const { return entries_.size(); }
  std::uint64_t count_at(std::uint32_t pos) const;

  /// The distinct data chunks this cluster touches, in increasing order.
  std::vector<std::uint32_t> positions() const;

  /// (pos, count) pairs sorted by pos.
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;  // sorted by pos
};

}  // namespace mlsc::core
