// The local scheduling enhancement (paper §5.4, Fig. 15).
//
// After the distribution algorithm assigns iteration chunks to clients,
// this pass orders each client's chunks to maximize chunk-level data
// reuse in two dimensions: vertically, with the chunk previously
// scheduled on the same client (weight β, client-cache reuse), and
// horizontally, with the chunk scheduled in the same round on the
// previous client of the same I/O group (weight α, shared-cache reuse).
// Scheduling proceeds round-robin over the clients sharing each I/O
// cache, keeping iteration counts balanced circularly.
#pragma once

#include "core/mapping.h"
#include "topology/hierarchy.h"

namespace mlsc::core {

struct SchedulerOptions {
  double alpha = 0.5;  // I/O-level (horizontal) cache reuse factor
  double beta = 0.5;   // client-level (vertical) cache reuse factor
};

/// Reorders each client's work items in place per the Fig. 15 algorithm.
/// The mapping must come from the inter-processor mapper (items carry
/// iteration-chunk tags).  Marks the result as scheduled.
void schedule_mapping(MappingResult& mapping,
                      const topology::HierarchyTree& tree,
                      const SchedulerOptions& options = {});

}  // namespace mlsc::core
