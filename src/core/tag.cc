#include "core/tag.h"

#include <algorithm>

#include "support/check.h"

namespace mlsc::core {

ChunkTag ChunkTag::from_bits(std::vector<std::uint32_t> bits) {
  std::sort(bits.begin(), bits.end());
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
  ChunkTag tag;
  tag.bits_ = std::move(bits);
  return tag;
}

bool ChunkTag::test(std::uint32_t pos) const {
  return std::binary_search(bits_.begin(), bits_.end(), pos);
}

std::size_t ChunkTag::common_bits(const ChunkTag& other) const {
  // Skewed sizes: galloping search of the small side into the large one,
  // O(|small| log |large|) instead of O(|small| + |large|).  The dense
  // word-level path lives in DynamicBitset::and_count; the similarity
  // graph densifies tags and uses it when the tag width is modest.
  const std::vector<std::uint32_t>* small = &bits_;
  const std::vector<std::uint32_t>* large = &other.bits_;
  if (small->size() > large->size()) std::swap(small, large);
  if (small->empty()) return 0;
  if (large->size() / small->size() >= 8) {
    std::size_t count = 0;
    auto from = large->begin();
    for (std::uint32_t bit : *small) {
      from = std::lower_bound(from, large->end(), bit);
      if (from == large->end()) break;
      if (*from == bit) {
        ++count;
        ++from;
      }
    }
    return count;
  }

  std::size_t count = 0;
  auto a = bits_.begin();
  auto b = other.bits_.begin();
  while (a != bits_.end() && b != other.bits_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

std::size_t ChunkTag::hamming_distance(const ChunkTag& other) const {
  const std::size_t common = common_bits(other);
  return (bits_.size() - common) + (other.bits_.size() - common);
}

ChunkTag ChunkTag::merged_with(const ChunkTag& other) const {
  std::vector<std::uint32_t> merged;
  merged.reserve(bits_.size() + other.bits_.size());
  std::merge(bits_.begin(), bits_.end(), other.bits_.begin(),
             other.bits_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  ChunkTag tag;
  tag.bits_ = std::move(merged);
  return tag;
}

std::size_t ChunkTag::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint32_t b : bits_) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

std::string ChunkTag::to_string(std::size_t r) const {
  std::string out(r, '0');
  for (std::uint32_t b : bits_) {
    MLSC_CHECK(b < r, "tag bit " << b << " outside width " << r);
    out[b] = '1';
  }
  return out;
}

DynamicBitset ChunkTag::to_bitset(std::size_t r) const {
  DynamicBitset set(r);
  for (std::uint32_t b : bits_) set.set(b);
  return set;
}

void ClusterTag::add(const ChunkTag& tag) {
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + tag.bits().size());
  auto e = entries_.begin();
  auto b = tag.bits().begin();
  while (e != entries_.end() || b != tag.bits().end()) {
    if (b == tag.bits().end() || (e != entries_.end() && e->pos < *b)) {
      merged.push_back(*e++);
    } else if (e == entries_.end() || *b < e->pos) {
      merged.push_back(Entry{*b++, 1});
    } else {
      merged.push_back(Entry{e->pos, e->count + 1});
      ++e;
      ++b;
    }
  }
  entries_ = std::move(merged);
}

void ClusterTag::add(const ClusterTag& other) {
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() || b != other.entries_.end()) {
    if (b == other.entries_.end() ||
        (a != entries_.end() && a->pos < b->pos)) {
      merged.push_back(*a++);
    } else if (a == entries_.end() || b->pos < a->pos) {
      merged.push_back(*b++);
    } else {
      merged.push_back(Entry{a->pos, a->count + b->count});
      ++a;
      ++b;
    }
  }
  entries_ = std::move(merged);
}

void ClusterTag::remove(const ChunkTag& tag) {
  auto e = entries_.begin();
  for (std::uint32_t b : tag.bits()) {
    while (e != entries_.end() && e->pos < b) ++e;
    MLSC_CHECK(e != entries_.end() && e->pos == b && e->count > 0,
               "removing tag bit " << b << " not present in cluster tag");
    --e->count;
  }
  std::erase_if(entries_, [](const Entry& entry) { return entry.count == 0; });
}

std::uint64_t ClusterTag::dot(const ClusterTag& other) const {
  std::uint64_t total = 0;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->pos < b->pos) {
      ++a;
    } else if (b->pos < a->pos) {
      ++b;
    } else {
      total += static_cast<std::uint64_t>(a->count) * b->count;
      ++a;
      ++b;
    }
  }
  return total;
}

std::uint64_t ClusterTag::dot(const ChunkTag& tag) const {
  // This is the load balancer's candidate-scoring inner loop.  A big
  // cluster tag probed by a narrow chunk tag is the common case, so
  // gallop (binary search per probe bit) when the sizes are skewed.
  if (!tag.bits().empty() && entries_.size() / tag.bits().size() >= 8) {
    std::uint64_t total = 0;
    auto from = entries_.begin();
    for (std::uint32_t b : tag.bits()) {
      from = std::lower_bound(
          from, entries_.end(), b,
          [](const Entry& e, std::uint32_t p) { return e.pos < p; });
      if (from == entries_.end()) break;
      if (from->pos == b) total += (from++)->count;
    }
    return total;
  }

  std::uint64_t total = 0;
  auto e = entries_.begin();
  for (std::uint32_t b : tag.bits()) {
    while (e != entries_.end() && e->pos < b) ++e;
    if (e == entries_.end()) break;
    if (e->pos == b) total += e->count;
  }
  return total;
}

std::vector<std::uint32_t> ClusterTag::positions() const {
  std::vector<std::uint32_t> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.pos);
  return out;
}

std::uint64_t ClusterTag::count_at(std::uint32_t pos) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), pos,
      [](const Entry& e, std::uint32_t p) { return e.pos < p; });
  if (it == entries_.end() || it->pos != pos) return 0;
  return it->count;
}

}  // namespace mlsc::core
