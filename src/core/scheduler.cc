#include "core/scheduler.h"

#include <algorithm>

#include "obs/trace.h"
#include "support/check.h"

namespace mlsc::core {
namespace {

/// Remaining (unscheduled) chunks of one client.
struct ClientState {
  std::vector<std::uint32_t> remaining;  // indices into client_work items
  std::vector<std::uint32_t> scheduled;  // in final execution order
  std::uint64_t scheduled_iterations = 0;
};

class GroupScheduler {
 public:
  GroupScheduler(MappingResult& mapping, std::vector<std::size_t> group,
                 const SchedulerOptions& options)
      : mapping_(mapping), group_(std::move(group)), options_(options) {
    states_.resize(group_.size());
    for (std::size_t i = 0; i < group_.size(); ++i) {
      auto& items = mapping_.client_work[group_[i]];
      states_[i].remaining.resize(items.size());
      for (std::uint32_t k = 0; k < items.size(); ++k) {
        states_[i].remaining[k] = k;
      }
    }
  }

  void run() {
    while (any_remaining()) {
      bool progress = false;
      for (std::size_t i = 0; i < group_.size(); ++i) {
        progress |= step_client(i);
      }
      if (!progress) force_one();
    }
    for (std::size_t i = 0; i < group_.size(); ++i) {
      apply_order(i);
    }
  }

 private:
  const ChunkTag& tag_of(std::size_t i, std::uint32_t item_index) const {
    const WorkItem& item = mapping_.client_work[group_[i]][item_index];
    MLSC_CHECK(item.chunk >= 0, "scheduler requires inter-processor items");
    return mapping_.chunk_table[static_cast<std::size_t>(item.chunk)].tag;
  }

  std::uint64_t iterations_of(std::size_t i, std::uint32_t item_index) const {
    return mapping_.client_work[group_[i]][item_index].iterations;
  }

  bool any_remaining() const {
    return std::any_of(states_.begin(), states_.end(), [](const auto& s) {
      return !s.remaining.empty();
    });
  }

  /// The last chunk scheduled on client i, if any.
  const ChunkTag* last_scheduled_tag(std::size_t i) const {
    if (states_[i].scheduled.empty()) return nullptr;
    return &tag_of(i, states_[i].scheduled.back());
  }

  void take(std::size_t i, std::size_t position_in_remaining) {
    auto& state = states_[i];
    const std::uint32_t item = state.remaining[position_in_remaining];
    state.remaining.erase(state.remaining.begin() +
                          static_cast<std::ptrdiff_t>(position_in_remaining));
    state.scheduled.push_back(item);
    state.scheduled_iterations += iterations_of(i, item);
  }

  /// Picks argmax of `score` over remaining chunks of client i, breaking
  /// ties toward the smaller item index, and schedules it.
  template <typename ScoreFn>
  void take_best(std::size_t i, ScoreFn&& score) {
    const auto& remaining = states_[i].remaining;
    MLSC_DCHECK(!remaining.empty(), "take_best on exhausted client");
    std::size_t best = 0;
    double best_score = score(remaining[0]);
    for (std::size_t k = 1; k < remaining.size(); ++k) {
      const double s = score(remaining[k]);
      if (s > best_score) {
        best_score = s;
        best = k;
      }
    }
    take(i, best);
  }

  void take_fewest_bits(std::size_t i) {
    take_best(i, [&](std::uint32_t item) {
      return -static_cast<double>(tag_of(i, item).popcount());
    });
  }

  /// One pass of the Fig. 15 inner loop for client i; returns true when
  /// at least one chunk was scheduled.
  bool step_client(std::size_t i) {
    auto& state = states_[i];
    if (state.remaining.empty()) return false;

    const bool first_client = (i == 0);
    if (state.scheduled.empty()) {
      if (first_client) {
        // The iteration chunk that accesses the least number of data
        // chunks starts the schedule.
        take_fewest_bits(i);
      } else {
        // Minimal Hamming distance to (max dot product with) the last
        // chunk scheduled on the previous client.
        const ChunkTag* left = last_scheduled_tag(i - 1);
        if (left == nullptr) {
          take_fewest_bits(i);
        } else {
          take_best(i, [&](std::uint32_t item) {
            return options_.alpha *
                   static_cast<double>(tag_of(i, item).common_bits(*left));
          });
        }
      }
      return true;
    }

    // Later rounds: keep scheduling while behind the balance reference —
    // the previous client, or (for the first client, circularly) the last
    // client of the group.
    const std::size_t reference = first_client ? group_.size() - 1 : i - 1;
    bool advanced = false;
    while (!state.remaining.empty() &&
           state.scheduled_iterations <
               states_[reference].scheduled_iterations) {
      const ChunkTag* up = last_scheduled_tag(i);  // own previous chunk
      if (first_client) {
        take_best(i, [&](std::uint32_t item) {
          return options_.beta *
                 static_cast<double>(tag_of(i, item).common_bits(*up));
        });
      } else {
        const ChunkTag* left = last_scheduled_tag(i - 1);
        take_best(i, [&](std::uint32_t item) {
          const auto& tag = tag_of(i, item);
          double s = options_.beta *
                     static_cast<double>(tag.common_bits(*up));
          if (left != nullptr) {
            s += options_.alpha *
                 static_cast<double>(tag.common_bits(*left));
          }
          return s;
        });
      }
      advanced = true;
    }
    return advanced;
  }

  /// Deadlock breaker: when every client is at or ahead of its balance
  /// reference, force one chunk onto the first client that has work.
  void force_one() {
    for (std::size_t i = 0; i < group_.size(); ++i) {
      if (states_[i].remaining.empty()) continue;
      const ChunkTag* up = last_scheduled_tag(i);
      if (up == nullptr) {
        take_fewest_bits(i);
      } else {
        take_best(i, [&](std::uint32_t item) {
          return options_.beta *
                 static_cast<double>(tag_of(i, item).common_bits(*up));
        });
      }
      return;
    }
    MLSC_CHECK(false, "force_one called with no remaining work");
  }

  void apply_order(std::size_t i) {
    auto& items = mapping_.client_work[group_[i]];
    std::vector<WorkItem> ordered;
    ordered.reserve(items.size());
    for (std::uint32_t item : states_[i].scheduled) {
      ordered.push_back(std::move(items[item]));
    }
    MLSC_CHECK(ordered.size() == items.size(),
               "scheduler dropped work items");
    items = std::move(ordered);
  }

  MappingResult& mapping_;
  std::vector<std::size_t> group_;  // client ranks, left to right
  SchedulerOptions options_;
  std::vector<ClientState> states_;
};

}  // namespace

void schedule_mapping(MappingResult& mapping,
                      const topology::HierarchyTree& tree,
                      const SchedulerOptions& options) {
  MLSC_CHECK(mapping.kind == MapperKind::kInterProcessor,
             "scheduling applies to the inter-processor mapping");
  MLSC_CHECK(mapping.num_clients() == tree.num_clients(),
             "mapping client count does not match the tree");

  obs::Span span("pipeline.scheduling");
  span.arg("clients", static_cast<std::uint64_t>(mapping.num_clients()));

  // Group clients by their parent (I/O-level) node, in leaf order.
  const std::uint32_t leaf_level = tree.num_levels() - 1;
  MLSC_CHECK(leaf_level >= 1, "tree must have an I/O level above clients");
  for (topology::NodeId parent : tree.level_nodes(leaf_level - 1)) {
    std::vector<std::size_t> group;
    for (topology::NodeId child : tree.node(parent).children) {
      group.push_back(tree.client_rank(child));
    }
    if (group.empty()) continue;
    GroupScheduler(mapping, std::move(group), options).run();
  }
  mapping.scheduled = true;
}

}  // namespace mlsc::core
