#include "core/clustering.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"
#include "support/log.h"

namespace mlsc::core {

std::uint64_t Cluster::make_order_key(const IterationChunk& chunk) {
  // (nest, first rank) packed so nests sort before ranks; ranks stay
  // below 2^48 for any tractable nest.
  return (static_cast<std::uint64_t>(chunk.nest) << 48) |
         (chunk.first_rank() & ((std::uint64_t{1} << 48) - 1));
}

Cluster Cluster::singleton(std::uint32_t chunk_index,
                           const IterationChunk& chunk) {
  Cluster c;
  c.add_member(chunk_index, chunk);
  return c;
}

void Cluster::absorb(Cluster&& other) {
  members.insert(members.end(), other.members.begin(), other.members.end());
  tag.add(other.tag);
  iterations += other.iterations;
  order_key = std::min(order_key, other.order_key);
  other = Cluster{};
}

void Cluster::add_member(std::uint32_t chunk_index,
                         const IterationChunk& chunk) {
  members.push_back(chunk_index);
  tag.add(chunk.tag);
  iterations += chunk.iterations;
  order_key = std::min(order_key, make_order_key(chunk));
}

void Cluster::remove_member(std::uint32_t chunk_index,
                            const IterationChunk& chunk) {
  auto it = std::find(members.begin(), members.end(), chunk_index);
  MLSC_CHECK(it != members.end(),
             "chunk " << chunk_index << " is not a member of this cluster");
  members.erase(it);
  tag.remove(chunk.tag);
  MLSC_CHECK(iterations >= chunk.iterations, "cluster size underflow");
  iterations -= chunk.iterations;
}

std::vector<Cluster> make_singletons(
    const std::vector<std::uint32_t>& indices,
    const std::vector<IterationChunk>& chunks) {
  std::vector<Cluster> out;
  out.reserve(indices.size());
  for (std::uint32_t idx : indices) {
    MLSC_CHECK(idx < chunks.size(), "chunk index out of range");
    out.push_back(Cluster::singleton(idx, chunks[idx]));
  }
  return out;
}

namespace {

/// One candidate merge, with the versions of both clusters at the time
/// the score was computed (lazy invalidation).
///
/// The score is the cluster-tag dot product normalized by the member
/// counts (average linkage).  The raw bitwise-sum dot grows linearly
/// with cluster size, so once any data chunk is shared universally (a
/// Fock matrix, a catalog) the largest cluster out-bids every genuinely
/// similar pair and the greedy snowballs into one blob.  Normalizing by
/// |a|*|b| measures per-member similarity; on the paper's worked example
/// (Fig. 8) it is what reproduces the Fig. 9 clusters.
struct MergeCandidate {
  double score = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t version_a = 0;
  std::uint32_t version_b = 0;

  /// Max-heap by score; deterministic tie-break toward smaller indices.
  bool operator<(const MergeCandidate& other) const {
    if (score != other.score) return score < other.score;
    if (a != other.a) return a > other.a;
    return b > other.b;
  }
};

void merge_to_count(std::vector<Cluster>& clusters, std::size_t target,
                    ThreadPool* pool) {
  const std::size_t n = clusters.size();
  std::vector<bool> alive(n, true);
  std::vector<std::uint32_t> version(n, 0);
  std::priority_queue<MergeCandidate> heap;

  // Inverted index: data chunk -> (cluster, per-chunk count, version).
  // Only cluster pairs sharing a data chunk have a nonzero dot product,
  // so candidate generation walks the index instead of the O(V^2) pair
  // space, and the dot products of one cluster against every candidate
  // accumulate in a single pass (dot(a,c) = sum over shared chunks of
  // count_a * count_c).  Entries go stale when their cluster merges (its
  // version bumps) and are compacted away on the next scan.
  struct IndexEntry {
    std::uint32_t cluster;
    std::uint32_t count;
    std::uint32_t version;
  };
  std::unordered_map<std::uint32_t, std::vector<IndexEntry>> bit_index;
  auto index_cluster = [&](std::uint32_t id) {
    for (const auto& entry : clusters[id].tag.entries()) {
      bit_index[entry.pos].push_back(
          IndexEntry{id, entry.count, version[id]});
    }
  };

  std::vector<std::uint64_t> acc(n, 0);
  std::vector<std::uint32_t> touched;
  auto push_candidates = [&](std::uint32_t a) {
    touched.clear();
    for (const auto& tag_entry : clusters[a].tag.entries()) {
      auto it = bit_index.find(tag_entry.pos);
      if (it == bit_index.end()) continue;
      const std::uint64_t ca = tag_entry.count;
      // Compact stale entries while scanning.
      auto& list = it->second;
      std::size_t w = 0;
      for (std::size_t r = 0; r < list.size(); ++r) {
        const IndexEntry& e = list[r];
        if (!alive[e.cluster] || version[e.cluster] != e.version) continue;
        list[w++] = e;
        if (e.cluster == a) continue;
        if (acc[e.cluster] == 0) touched.push_back(e.cluster);
        acc[e.cluster] += ca * e.count;
      }
      list.resize(w);
    }
    for (std::uint32_t b : touched) {
      const std::uint32_t lo = std::min(a, b);
      const std::uint32_t hi = std::max(a, b);
      const double denom = static_cast<double>(clusters[a].members.size()) *
                           static_cast<double>(clusters[b].members.size());
      heap.push(MergeCandidate{static_cast<double>(acc[b]) / denom, lo, hi,
                               version[lo], version[hi]});
      acc[b] = 0;
    }
  };
  obs::Span sweep_span("pipeline.similarity_sweep");
  sweep_span.arg("clusters", static_cast<std::uint64_t>(n));
  if (pool != nullptr && pool->num_threads() > 1 && n >= 256) {
    // Parallel initial scoring: index every cluster first (read-only
    // thereafter), then score each cluster a against the indexed b < a
    // concurrently.  The candidates per a land in per-a slots and are
    // pushed in a order, so the heap receives exactly the multiset the
    // serial interleaved loop builds — and the candidate comparator is a
    // total order, so the merge sequence is bit-identical.
    for (std::uint32_t a = 0; a < n; ++a) index_cluster(a);
    std::vector<std::vector<MergeCandidate>> initial(n);
    pool->parallel_for(
        0, n, pool->default_grain(n), [&](std::size_t lo, std::size_t hi) {
          thread_local std::vector<std::uint64_t> local_acc;
          thread_local std::vector<std::uint32_t> local_touched;
          if (local_acc.size() < n) local_acc.resize(n, 0);
          for (std::size_t a = lo; a < hi; ++a) {
            local_touched.clear();
            for (const auto& tag_entry : clusters[a].tag.entries()) {
              const auto it = bit_index.find(tag_entry.pos);
              if (it == bit_index.end()) continue;
              const std::uint64_t ca = tag_entry.count;
              for (const IndexEntry& e : it->second) {
                if (e.cluster >= a) break;  // entries are id-ascending
                if (local_acc[e.cluster] == 0) {
                  local_touched.push_back(e.cluster);
                }
                local_acc[e.cluster] += ca * e.count;
              }
            }
            for (std::uint32_t b : local_touched) {
              const double denom =
                  static_cast<double>(clusters[a].members.size()) *
                  static_cast<double>(clusters[b].members.size());
              initial[a].push_back(MergeCandidate{
                  static_cast<double>(local_acc[b]) / denom, b,
                  static_cast<std::uint32_t>(a), 0, 0});
              local_acc[b] = 0;  // keep the scratch all-zero between rows
            }
          }
        });
    for (auto& list : initial) {
      for (const MergeCandidate& c : list) heap.push(c);
    }
  } else {
    for (std::uint32_t a = 0; a < n; ++a) {
      push_candidates(a);
      index_cluster(a);
    }
  }
  sweep_span.arg("candidates", static_cast<std::uint64_t>(heap.size()));
  sweep_span.end();
  MLSC_COUNTER_ADD("pipeline.sweep_candidates", heap.size());

  // Zero-sharing fallback order, built lazily the first time the heap
  // runs dry.  Every alive pair with a nonzero dot always has a valid
  // heap entry (init scores all pairs; each merge re-scores the merged
  // cluster), so an empty heap means *no* alive pair shares data — and
  // since dots are bilinear, merging zero-dot clusters keeps every dot
  // zero.  The fallback list can therefore be maintained incrementally
  // instead of re-sorted per merge: it stays sorted by order_key because
  // the merged cluster keeps the smaller key of the adjacent pair.
  std::vector<std::uint32_t> fallback_ids;

  std::size_t alive_count = n;
  while (alive_count > target) {
    MergeCandidate best;
    bool found = false;
    while (!heap.empty()) {
      best = heap.top();
      heap.pop();
      if (alive[best.a] && alive[best.b] &&
          version[best.a] == best.version_a &&
          version[best.b] == best.version_b) {
        found = true;
        break;
      }
    }
    std::size_t fallback_pos = 0;
    if (!found) {
      // All remaining pairs share no data.  With zero sharing, cache
      // behaviour is indifferent to the grouping, but disk behaviour is
      // not: merge the rank-adjacent pair with the smallest combined
      // size, which keeps the mapping close to the sequential order
      // (sequential on disk) and balanced.
      if (fallback_ids.empty()) {
        for (std::uint32_t i = 0; i < n; ++i) {
          if (alive[i]) fallback_ids.push_back(i);
        }
        std::sort(fallback_ids.begin(), fallback_ids.end(),
                  [&](std::uint32_t x, std::uint32_t y) {
                    return clusters[x].order_key < clusters[y].order_key;
                  });
      }
      MLSC_CHECK(fallback_ids.size() >= 2, "fewer than two clusters alive");
      std::uint64_t best_size = UINT64_MAX;
      for (std::size_t p = 0; p + 1 < fallback_ids.size(); ++p) {
        const std::uint64_t combined =
            clusters[fallback_ids[p]].iterations +
            clusters[fallback_ids[p + 1]].iterations;
        if (combined < best_size) {
          best_size = combined;
          fallback_pos = p;
        }
      }
      best.a = std::min(fallback_ids[fallback_pos],
                        fallback_ids[fallback_pos + 1]);
      best.b = std::max(fallback_ids[fallback_pos],
                        fallback_ids[fallback_pos + 1]);
    }

    MLSC_DEBUG("cluster merge: "
               << best.b << " -> " << best.a
               << (found ? " (shared-data score " : " (zero-sharing fallback")
               << (found ? std::to_string(best.score) : std::string())
               << "), " << clusters[best.a].members.size() << "+"
               << clusters[best.b].members.size() << " members, "
               << alive_count - 1 << " clusters left");
    clusters[best.a].absorb(std::move(clusters[best.b]));
    alive[best.b] = false;
    ++version[best.a];  // invalidates a's and the pair's old index entries
    --alive_count;

    if (alive_count <= target) break;
    if (!found) {
      // The merged cluster takes the pair's slot (its order_key is the
      // pair's minimum, i.e. the key already at fallback_pos).  No
      // re-scoring: the heap is permanently dry in fallback mode.
      fallback_ids[fallback_pos] = best.a;
      fallback_ids.erase(fallback_ids.begin() + fallback_pos + 1);
      continue;
    }
    push_candidates(best.a);  // uses the merged tag's counts
    index_cluster(best.a);    // re-index under the new version
  }

  std::vector<Cluster> survivors;
  survivors.reserve(target);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (alive[i]) survivors.push_back(std::move(clusters[i]));
  }
  clusters = std::move(survivors);
}

// ---------------------------------------------------------------------------
// Affinity-forest kernel (DESIGN.md §15): the scalable replacement for
// the greedy merge heap.  Candidate edges between clusters come from the
// data-chunk inverted index (only pairs sharing a data chunk can have a
// nonzero dot product); a Borůvka-style maximum-spanning-forest build
// hooks every component to its best-scoring neighbor per round; the
// forest is then cut to `target` components by replaying its edges in
// score order (single-linkage semantics).  Components the forest leaves
// disconnected fall back to the same rank-adjacent smallest-pair merge
// the greedy kernel uses for zero-sharing inputs.

/// One scored candidate edge, u < v (original cluster ids).  (score, u,
/// v) is a strict total order over distinct edges — the tie-break makes
/// every parallel max-reduction deterministic.
struct ForestEdge {
  double score = 0;
  std::uint32_t u = 0;
  std::uint32_t v = 0;
};

bool edge_better(const ForestEdge& x, const ForestEdge& y) {
  if (x.score != y.score) return x.score > y.score;
  if (x.u != y.u) return x.u < y.u;
  return x.v < y.v;
}

/// Union-find with path compression; unions attach the larger root under
/// the smaller, so a component's root is always its smallest member id.
std::uint32_t uf_find(std::vector<std::uint32_t>& parent, std::uint32_t x) {
  std::uint32_t root = x;
  while (parent[root] != root) root = parent[root];
  while (parent[x] != root) {
    const std::uint32_t next = parent[x];
    parent[x] = root;
    x = next;
  }
  return root;
}

bool uf_union(std::vector<std::uint32_t>& parent, std::uint32_t a,
              std::uint32_t b) {
  const std::uint32_t ra = uf_find(parent, a);
  const std::uint32_t rb = uf_find(parent, b);
  if (ra == rb) return false;
  parent[std::max(ra, rb)] = std::min(ra, rb);
  return true;
}

/// Scores every cluster pair that shares at least one data chunk, via
/// the inverted index, in parallel over `pool`.  Edges come out grouped
/// by the larger endpoint ascending — a deterministic order.
std::vector<ForestEdge> forest_candidate_edges(
    const std::vector<Cluster>& clusters, ThreadPool* pool,
    const ClusterOptions& options) {
  const std::size_t n = clusters.size();
  obs::Span span("pipeline.candidate_gen");
  span.arg("clusters", static_cast<std::uint64_t>(n));

  struct IndexEntry {
    std::uint32_t cluster;
    std::uint32_t count;
  };
  std::unordered_map<std::uint32_t, std::vector<IndexEntry>> bit_index;
  for (std::uint32_t a = 0; a < n; ++a) {
    for (const auto& entry : clusters[a].tag.entries()) {
      bit_index[entry.pos].push_back(IndexEntry{a, entry.count});
    }
  }
  std::uint64_t hot_skipped = 0;
  if (options.hot_posting_cap > 0) {
    for (auto& [pos, list] : bit_index) {
      if (list.size() > options.hot_posting_cap) {
        list.clear();
        ++hot_skipped;
      }
    }
  }

  std::vector<std::uint64_t> band_keys;
  const MinhashParams& banding = options.banding;
  if (banding.enabled()) {
    band_keys.resize(n * banding.bands);
    std::vector<std::uint32_t> positions;
    for (std::size_t a = 0; a < n; ++a) {
      positions.clear();
      for (const auto& entry : clusters[a].tag.entries()) {
        positions.push_back(entry.pos);
      }
      minhash_band_keys(positions, banding, band_keys.data() + a * banding.bands);
    }
  }

  // Per-a slots keep the parallel fill deterministic; entries in every
  // posting list are id-ascending, so scoring a against b < a stops at
  // the first entry >= a.
  std::vector<std::vector<ForestEdge>> per_row(n);
  std::atomic<std::uint64_t> pruned{0};
  auto score_rows = [&](std::size_t lo, std::size_t hi) {
    thread_local std::vector<std::uint64_t> acc;
    thread_local std::vector<std::uint32_t> touched;
    if (acc.size() < n) acc.resize(n, 0);
    std::uint64_t local_pruned = 0;
    for (std::size_t a = lo; a < hi; ++a) {
      touched.clear();
      for (const auto& tag_entry : clusters[a].tag.entries()) {
        const auto it = bit_index.find(tag_entry.pos);
        if (it == bit_index.end()) continue;
        const std::uint64_t ca = tag_entry.count;
        for (const IndexEntry& e : it->second) {
          if (e.cluster >= a) break;
          if (acc[e.cluster] == 0) touched.push_back(e.cluster);
          acc[e.cluster] += ca * e.count;
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& out = per_row[a];
      out.reserve(touched.size());
      for (const std::uint32_t b : touched) {
        const std::uint64_t dot = acc[b];
        acc[b] = 0;  // keep the scratch all-zero between rows
        if (banding.enabled() &&
            !minhash_shares_band(band_keys.data() + b * banding.bands,
                                 band_keys.data() + a * banding.bands,
                                 banding)) {
          ++local_pruned;
          continue;
        }
        const double denom = static_cast<double>(clusters[a].members.size()) *
                             static_cast<double>(clusters[b].members.size());
        out.push_back(ForestEdge{static_cast<double>(dot) / denom, b,
                                 static_cast<std::uint32_t>(a)});
      }
    }
    pruned.fetch_add(local_pruned, std::memory_order_relaxed);
  };
  if (pool != nullptr && pool->num_threads() > 1 && n >= 256) {
    pool->parallel_for(0, n, pool->default_grain(n), score_rows);
  } else {
    score_rows(0, n);
  }

  std::size_t total = 0;
  for (const auto& row : per_row) total += row.size();
  std::vector<ForestEdge> edges;
  edges.reserve(total);
  for (auto& row : per_row) {
    edges.insert(edges.end(), row.begin(), row.end());
    row.clear();
    row.shrink_to_fit();
  }
  span.arg("candidate_pairs", static_cast<std::uint64_t>(edges.size()));
  span.arg("pairs_pruned", pruned.load());
  span.end();
  MLSC_COUNTER_ADD("graph.candidate_pairs", edges.size());
  MLSC_COUNTER_ADD("graph.pairs_pruned", pruned.load());
  MLSC_COUNTER_ADD("graph.hot_postings_skipped", hot_skipped);
  return edges;
}

void forest_to_count(std::vector<Cluster>& clusters, std::size_t target,
                     ThreadPool* pool, const ClusterOptions& options) {
  const std::size_t n = clusters.size();
  obs::Span span("pipeline.affinity_forest");
  span.arg("clusters", static_cast<std::uint64_t>(n));
  span.arg("target", static_cast<std::uint64_t>(target));

  std::vector<ForestEdge> work = forest_candidate_edges(clusters, pool, options);

  // Borůvka rounds: every component picks its best incident edge (a
  // parallel max-reduction over the strict total order, so the pick is
  // independent of edge visit order), the picks are hooked through the
  // union-find in ascending component order, and intra-component edges
  // are compacted away.  Components at least halve per round.
  std::vector<std::uint32_t> parent(n);
  for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  std::vector<std::uint32_t> comp(n);
  std::vector<ForestEdge> forest;
  forest.reserve(n > 0 ? n - 1 : 0);
  std::vector<std::atomic<std::uint32_t>> best(n);
  constexpr std::uint32_t kNone = UINT32_MAX;
  std::size_t rounds = 0;

  while (!work.empty()) {
    ++rounds;
    for (std::uint32_t i = 0; i < n; ++i) comp[i] = uf_find(parent, i);
    for (auto& b : best) b.store(kNone, std::memory_order_relaxed);

    auto consider = [&](std::uint32_t c, std::uint32_t idx) {
      std::uint32_t cur = best[c].load(std::memory_order_relaxed);
      while (cur == kNone || edge_better(work[idx], work[cur])) {
        if (best[c].compare_exchange_weak(cur, idx,
                                          std::memory_order_relaxed)) {
          break;
        }
      }
    };
    auto pick_best = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t e = lo; e < hi; ++e) {
        const std::uint32_t cu = comp[work[e].u];
        const std::uint32_t cv = comp[work[e].v];
        consider(cu, static_cast<std::uint32_t>(e));
        consider(cv, static_cast<std::uint32_t>(e));
      }
    };
    if (pool != nullptr && pool->num_threads() > 1 && work.size() >= 4096) {
      pool->parallel_for(0, work.size(), pool->default_grain(work.size()),
                         pick_best);
    } else {
      pick_best(0, work.size());
    }

    bool hooked = false;
    for (std::uint32_t c = 0; c < n; ++c) {
      const std::uint32_t idx = best[c].load(std::memory_order_relaxed);
      if (idx == kNone) continue;
      const ForestEdge& e = work[idx];
      if (uf_union(parent, e.u, e.v)) {
        forest.push_back(e);
        hooked = true;
      }
    }
    if (!hooked) break;  // every remaining edge is intra-component

    for (std::uint32_t i = 0; i < n; ++i) comp[i] = uf_find(parent, i);
    work.erase(std::remove_if(work.begin(), work.end(),
                              [&](const ForestEdge& e) {
                                return comp[e.u] == comp[e.v];
                              }),
               work.end());
  }

  // Cut the forest to `target` components: replay its edges best-first.
  // The forest is acyclic, so every replayed edge merges two distinct
  // components.  The cut is balance-aware (cut_balance_slack): merges
  // that would grow a component past (1 + slack) x the ideal share are
  // skipped — single-linkage chains would otherwise concentrate nearly
  // everything into one component and leave the downstream load
  // balancer a quadratic pile of one-member moves.  Skipping keeps the
  // union acyclic, so every replayed edge still joins distinct roots.
  std::sort(forest.begin(), forest.end(), edge_better);
  for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  std::uint64_t total_iterations = 0;
  std::vector<std::uint64_t> comp_iterations(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    comp_iterations[i] = clusters[i].iterations;
    total_iterations += clusters[i].iterations;
  }
  const bool capped = options.cut_balance_slack >= 0.0;
  const auto cap = static_cast<std::uint64_t>(
      static_cast<double>(total_iterations) /
      static_cast<double>(target) * (1.0 + options.cut_balance_slack));
  std::size_t components = n;
  std::uint64_t cut_skipped = 0;
  for (const ForestEdge& e : forest) {
    if (components <= target) break;
    const std::uint32_t ru = uf_find(parent, e.u);
    const std::uint32_t rv = uf_find(parent, e.v);
    MLSC_CHECK(ru != rv, "forest edge formed a cycle");
    if (capped && comp_iterations[ru] + comp_iterations[rv] > cap) {
      ++cut_skipped;
      continue;
    }
    const std::uint64_t merged_iters =
        comp_iterations[ru] + comp_iterations[rv];
    uf_union(parent, ru, rv);
    comp_iterations[std::min(ru, rv)] = merged_iters;
    --components;
  }
  span.arg("rounds", static_cast<std::uint64_t>(rounds));
  span.arg("forest_edges", static_cast<std::uint64_t>(forest.size()));
  span.arg("cut_skipped", cut_skipped);

  // Leftovers — components the cap stopped or that share no data: merge
  // rank-adjacent (by order_key), smallest combined size first, the same
  // fallback the greedy kernel uses.  Smallest-first evens the sizes, so
  // the load balancer has little left to fix.
  if (components > target) {
    struct Comp {
      std::uint32_t root;
      std::uint64_t order_key;
      std::uint64_t iterations;
    };
    std::unordered_map<std::uint32_t, std::size_t> slot;
    std::vector<Comp> comps;
    comps.reserve(components);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t root = uf_find(parent, i);
      const auto it = slot.find(root);
      if (it == slot.end()) {
        slot.emplace(root, comps.size());
        comps.push_back(Comp{root, clusters[i].order_key,
                             clusters[i].iterations});
      } else {
        Comp& c = comps[it->second];
        c.order_key = std::min(c.order_key, clusters[i].order_key);
        c.iterations += clusters[i].iterations;
      }
    }
    std::sort(comps.begin(), comps.end(), [](const Comp& x, const Comp& y) {
      if (x.order_key != y.order_key) return x.order_key < y.order_key;
      return x.root < y.root;
    });
    while (comps.size() > target) {
      std::size_t pos = 0;
      std::uint64_t best_size = UINT64_MAX;
      for (std::size_t p = 0; p + 1 < comps.size(); ++p) {
        const std::uint64_t combined =
            comps[p].iterations + comps[p + 1].iterations;
        if (combined < best_size) {
          best_size = combined;
          pos = p;
        }
      }
      uf_union(parent, comps[pos].root, comps[pos + 1].root);
      comps[pos].root = std::min(comps[pos].root, comps[pos + 1].root);
      comps[pos].iterations += comps[pos + 1].iterations;
      comps.erase(comps.begin() + pos + 1);
    }
  }

  // Materialize: members grouped by component, components emitted in
  // ascending root (== smallest member) order — the same deterministic
  // shape the greedy kernel produces.
  std::vector<std::vector<std::uint32_t>> groups(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    groups[uf_find(parent, i)].push_back(i);
  }
  std::vector<Cluster> result;
  result.reserve(target);
  for (std::uint32_t root = 0; root < n; ++root) {
    if (groups[root].empty()) continue;
    Cluster merged = std::move(clusters[groups[root].front()]);
    for (std::size_t m = 1; m < groups[root].size(); ++m) {
      merged.absorb(std::move(clusters[groups[root][m]]));
    }
    result.push_back(std::move(merged));
  }
  MLSC_CHECK(result.size() == target,
             "affinity forest produced " << result.size()
                                         << " clusters, wanted " << target);
  clusters = std::move(result);
}

/// Splits one cluster into two of roughly equal iteration counts.  A
/// multi-member cluster is split by members (greedy first-fit descending,
/// keeping shared-data members together is secondary to balance here,
/// mirroring Fig. 5 which only splits for count, not affinity).  A
/// single-member cluster splits its iteration chunk in half, growing the
/// chunk table.
std::pair<Cluster, Cluster> split_cluster(Cluster cluster,
                                          std::vector<IterationChunk>& chunks) {
  Cluster left;
  Cluster right;
  if (cluster.members.size() == 1) {
    const std::uint32_t original = cluster.members.front();
    MLSC_CHECK(chunks[original].iterations >= 2,
               "cannot split a single-iteration chunk");
    auto [head, tail] =
        split_chunk(chunks[original], chunks[original].iterations / 2);
    chunks[original] = std::move(head);
    chunks.push_back(std::move(tail));
    left.add_member(original, chunks[original]);
    right.add_member(static_cast<std::uint32_t>(chunks.size() - 1),
                     chunks.back());
    return {std::move(left), std::move(right)};
  }

  std::sort(cluster.members.begin(), cluster.members.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              if (chunks[x].iterations != chunks[y].iterations) {
                return chunks[x].iterations > chunks[y].iterations;
              }
              return x < y;
            });
  for (std::uint32_t member : cluster.members) {
    Cluster& smaller = left.iterations <= right.iterations ? left : right;
    smaller.add_member(member, chunks[member]);
  }
  return {std::move(left), std::move(right)};
}

}  // namespace

void cluster_to_count(std::vector<Cluster>& clusters, std::size_t target,
                      std::vector<IterationChunk>& chunks,
                      ThreadPool* pool, const ClusterOptions& options) {
  MLSC_CHECK(target >= 1, "target cluster count must be at least 1");
  MLSC_CHECK(!clusters.empty(), "cannot cluster an empty set");

  obs::Span span("pipeline.clustering");
  span.arg("input_clusters", static_cast<std::uint64_t>(clusters.size()));
  span.arg("target", static_cast<std::uint64_t>(target));
  MLSC_COUNTER_INC("pipeline.clustering_calls");

  if (clusters.size() > target) {
    const bool use_forest =
        options.algorithm == ClusterOptions::Algorithm::kForest ||
        (options.algorithm == ClusterOptions::Algorithm::kAuto &&
         clusters.size() >= options.forest_threshold);
    if (use_forest) {
      forest_to_count(clusters, target, pool, options);
    } else {
      merge_to_count(clusters, target, pool);
    }
  }
  while (clusters.size() < target) {
    // Select the largest cluster (by iterations) and break it in two.
    std::size_t largest = 0;
    for (std::size_t i = 1; i < clusters.size(); ++i) {
      if (clusters[i].iterations > clusters[largest].iterations) largest = i;
    }
    MLSC_CHECK(clusters[largest].iterations >= 2,
               "not enough iterations to form " << target << " clusters");
    auto [left, right] = split_cluster(std::move(clusters[largest]), chunks);
    clusters[largest] = std::move(left);
    clusters.push_back(std::move(right));
  }
}

}  // namespace mlsc::core
