#include "core/clustering.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"
#include "support/log.h"

namespace mlsc::core {

std::uint64_t Cluster::make_order_key(const IterationChunk& chunk) {
  // (nest, first rank) packed so nests sort before ranks; ranks stay
  // below 2^48 for any tractable nest.
  return (static_cast<std::uint64_t>(chunk.nest) << 48) |
         (chunk.first_rank() & ((std::uint64_t{1} << 48) - 1));
}

Cluster Cluster::singleton(std::uint32_t chunk_index,
                           const IterationChunk& chunk) {
  Cluster c;
  c.add_member(chunk_index, chunk);
  return c;
}

void Cluster::absorb(Cluster&& other) {
  members.insert(members.end(), other.members.begin(), other.members.end());
  tag.add(other.tag);
  iterations += other.iterations;
  order_key = std::min(order_key, other.order_key);
  other = Cluster{};
}

void Cluster::add_member(std::uint32_t chunk_index,
                         const IterationChunk& chunk) {
  members.push_back(chunk_index);
  tag.add(chunk.tag);
  iterations += chunk.iterations;
  order_key = std::min(order_key, make_order_key(chunk));
}

void Cluster::remove_member(std::uint32_t chunk_index,
                            const IterationChunk& chunk) {
  auto it = std::find(members.begin(), members.end(), chunk_index);
  MLSC_CHECK(it != members.end(),
             "chunk " << chunk_index << " is not a member of this cluster");
  members.erase(it);
  tag.remove(chunk.tag);
  MLSC_CHECK(iterations >= chunk.iterations, "cluster size underflow");
  iterations -= chunk.iterations;
}

std::vector<Cluster> make_singletons(
    const std::vector<std::uint32_t>& indices,
    const std::vector<IterationChunk>& chunks) {
  std::vector<Cluster> out;
  out.reserve(indices.size());
  for (std::uint32_t idx : indices) {
    MLSC_CHECK(idx < chunks.size(), "chunk index out of range");
    out.push_back(Cluster::singleton(idx, chunks[idx]));
  }
  return out;
}

namespace {

/// One candidate merge, with the versions of both clusters at the time
/// the score was computed (lazy invalidation).
///
/// The score is the cluster-tag dot product normalized by the member
/// counts (average linkage).  The raw bitwise-sum dot grows linearly
/// with cluster size, so once any data chunk is shared universally (a
/// Fock matrix, a catalog) the largest cluster out-bids every genuinely
/// similar pair and the greedy snowballs into one blob.  Normalizing by
/// |a|*|b| measures per-member similarity; on the paper's worked example
/// (Fig. 8) it is what reproduces the Fig. 9 clusters.
struct MergeCandidate {
  double score = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t version_a = 0;
  std::uint32_t version_b = 0;

  /// Max-heap by score; deterministic tie-break toward smaller indices.
  bool operator<(const MergeCandidate& other) const {
    if (score != other.score) return score < other.score;
    if (a != other.a) return a > other.a;
    return b > other.b;
  }
};

void merge_to_count(std::vector<Cluster>& clusters, std::size_t target,
                    ThreadPool* pool) {
  const std::size_t n = clusters.size();
  std::vector<bool> alive(n, true);
  std::vector<std::uint32_t> version(n, 0);
  std::priority_queue<MergeCandidate> heap;

  // Inverted index: data chunk -> (cluster, per-chunk count, version).
  // Only cluster pairs sharing a data chunk have a nonzero dot product,
  // so candidate generation walks the index instead of the O(V^2) pair
  // space, and the dot products of one cluster against every candidate
  // accumulate in a single pass (dot(a,c) = sum over shared chunks of
  // count_a * count_c).  Entries go stale when their cluster merges (its
  // version bumps) and are compacted away on the next scan.
  struct IndexEntry {
    std::uint32_t cluster;
    std::uint32_t count;
    std::uint32_t version;
  };
  std::unordered_map<std::uint32_t, std::vector<IndexEntry>> bit_index;
  auto index_cluster = [&](std::uint32_t id) {
    for (const auto& entry : clusters[id].tag.entries()) {
      bit_index[entry.pos].push_back(
          IndexEntry{id, entry.count, version[id]});
    }
  };

  std::vector<std::uint64_t> acc(n, 0);
  std::vector<std::uint32_t> touched;
  auto push_candidates = [&](std::uint32_t a) {
    touched.clear();
    for (const auto& tag_entry : clusters[a].tag.entries()) {
      auto it = bit_index.find(tag_entry.pos);
      if (it == bit_index.end()) continue;
      const std::uint64_t ca = tag_entry.count;
      // Compact stale entries while scanning.
      auto& list = it->second;
      std::size_t w = 0;
      for (std::size_t r = 0; r < list.size(); ++r) {
        const IndexEntry& e = list[r];
        if (!alive[e.cluster] || version[e.cluster] != e.version) continue;
        list[w++] = e;
        if (e.cluster == a) continue;
        if (acc[e.cluster] == 0) touched.push_back(e.cluster);
        acc[e.cluster] += ca * e.count;
      }
      list.resize(w);
    }
    for (std::uint32_t b : touched) {
      const std::uint32_t lo = std::min(a, b);
      const std::uint32_t hi = std::max(a, b);
      const double denom = static_cast<double>(clusters[a].members.size()) *
                           static_cast<double>(clusters[b].members.size());
      heap.push(MergeCandidate{static_cast<double>(acc[b]) / denom, lo, hi,
                               version[lo], version[hi]});
      acc[b] = 0;
    }
  };
  obs::Span sweep_span("pipeline.similarity_sweep");
  sweep_span.arg("clusters", static_cast<std::uint64_t>(n));
  if (pool != nullptr && pool->num_threads() > 1 && n >= 256) {
    // Parallel initial scoring: index every cluster first (read-only
    // thereafter), then score each cluster a against the indexed b < a
    // concurrently.  The candidates per a land in per-a slots and are
    // pushed in a order, so the heap receives exactly the multiset the
    // serial interleaved loop builds — and the candidate comparator is a
    // total order, so the merge sequence is bit-identical.
    for (std::uint32_t a = 0; a < n; ++a) index_cluster(a);
    std::vector<std::vector<MergeCandidate>> initial(n);
    pool->parallel_for(
        0, n, pool->default_grain(n), [&](std::size_t lo, std::size_t hi) {
          thread_local std::vector<std::uint64_t> local_acc;
          thread_local std::vector<std::uint32_t> local_touched;
          if (local_acc.size() < n) local_acc.resize(n, 0);
          for (std::size_t a = lo; a < hi; ++a) {
            local_touched.clear();
            for (const auto& tag_entry : clusters[a].tag.entries()) {
              const auto it = bit_index.find(tag_entry.pos);
              if (it == bit_index.end()) continue;
              const std::uint64_t ca = tag_entry.count;
              for (const IndexEntry& e : it->second) {
                if (e.cluster >= a) break;  // entries are id-ascending
                if (local_acc[e.cluster] == 0) {
                  local_touched.push_back(e.cluster);
                }
                local_acc[e.cluster] += ca * e.count;
              }
            }
            for (std::uint32_t b : local_touched) {
              const double denom =
                  static_cast<double>(clusters[a].members.size()) *
                  static_cast<double>(clusters[b].members.size());
              initial[a].push_back(MergeCandidate{
                  static_cast<double>(local_acc[b]) / denom, b,
                  static_cast<std::uint32_t>(a), 0, 0});
              local_acc[b] = 0;  // keep the scratch all-zero between rows
            }
          }
        });
    for (auto& list : initial) {
      for (const MergeCandidate& c : list) heap.push(c);
    }
  } else {
    for (std::uint32_t a = 0; a < n; ++a) {
      push_candidates(a);
      index_cluster(a);
    }
  }
  sweep_span.arg("candidates", static_cast<std::uint64_t>(heap.size()));
  sweep_span.end();
  MLSC_COUNTER_ADD("pipeline.sweep_candidates", heap.size());

  // Zero-sharing fallback order, built lazily the first time the heap
  // runs dry.  Every alive pair with a nonzero dot always has a valid
  // heap entry (init scores all pairs; each merge re-scores the merged
  // cluster), so an empty heap means *no* alive pair shares data — and
  // since dots are bilinear, merging zero-dot clusters keeps every dot
  // zero.  The fallback list can therefore be maintained incrementally
  // instead of re-sorted per merge: it stays sorted by order_key because
  // the merged cluster keeps the smaller key of the adjacent pair.
  std::vector<std::uint32_t> fallback_ids;

  std::size_t alive_count = n;
  while (alive_count > target) {
    MergeCandidate best;
    bool found = false;
    while (!heap.empty()) {
      best = heap.top();
      heap.pop();
      if (alive[best.a] && alive[best.b] &&
          version[best.a] == best.version_a &&
          version[best.b] == best.version_b) {
        found = true;
        break;
      }
    }
    std::size_t fallback_pos = 0;
    if (!found) {
      // All remaining pairs share no data.  With zero sharing, cache
      // behaviour is indifferent to the grouping, but disk behaviour is
      // not: merge the rank-adjacent pair with the smallest combined
      // size, which keeps the mapping close to the sequential order
      // (sequential on disk) and balanced.
      if (fallback_ids.empty()) {
        for (std::uint32_t i = 0; i < n; ++i) {
          if (alive[i]) fallback_ids.push_back(i);
        }
        std::sort(fallback_ids.begin(), fallback_ids.end(),
                  [&](std::uint32_t x, std::uint32_t y) {
                    return clusters[x].order_key < clusters[y].order_key;
                  });
      }
      MLSC_CHECK(fallback_ids.size() >= 2, "fewer than two clusters alive");
      std::uint64_t best_size = UINT64_MAX;
      for (std::size_t p = 0; p + 1 < fallback_ids.size(); ++p) {
        const std::uint64_t combined =
            clusters[fallback_ids[p]].iterations +
            clusters[fallback_ids[p + 1]].iterations;
        if (combined < best_size) {
          best_size = combined;
          fallback_pos = p;
        }
      }
      best.a = std::min(fallback_ids[fallback_pos],
                        fallback_ids[fallback_pos + 1]);
      best.b = std::max(fallback_ids[fallback_pos],
                        fallback_ids[fallback_pos + 1]);
    }

    MLSC_DEBUG("cluster merge: "
               << best.b << " -> " << best.a
               << (found ? " (shared-data score " : " (zero-sharing fallback")
               << (found ? std::to_string(best.score) : std::string())
               << "), " << clusters[best.a].members.size() << "+"
               << clusters[best.b].members.size() << " members, "
               << alive_count - 1 << " clusters left");
    clusters[best.a].absorb(std::move(clusters[best.b]));
    alive[best.b] = false;
    ++version[best.a];  // invalidates a's and the pair's old index entries
    --alive_count;

    if (alive_count <= target) break;
    if (!found) {
      // The merged cluster takes the pair's slot (its order_key is the
      // pair's minimum, i.e. the key already at fallback_pos).  No
      // re-scoring: the heap is permanently dry in fallback mode.
      fallback_ids[fallback_pos] = best.a;
      fallback_ids.erase(fallback_ids.begin() + fallback_pos + 1);
      continue;
    }
    push_candidates(best.a);  // uses the merged tag's counts
    index_cluster(best.a);    // re-index under the new version
  }

  std::vector<Cluster> survivors;
  survivors.reserve(target);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (alive[i]) survivors.push_back(std::move(clusters[i]));
  }
  clusters = std::move(survivors);
}

/// Splits one cluster into two of roughly equal iteration counts.  A
/// multi-member cluster is split by members (greedy first-fit descending,
/// keeping shared-data members together is secondary to balance here,
/// mirroring Fig. 5 which only splits for count, not affinity).  A
/// single-member cluster splits its iteration chunk in half, growing the
/// chunk table.
std::pair<Cluster, Cluster> split_cluster(Cluster cluster,
                                          std::vector<IterationChunk>& chunks) {
  Cluster left;
  Cluster right;
  if (cluster.members.size() == 1) {
    const std::uint32_t original = cluster.members.front();
    MLSC_CHECK(chunks[original].iterations >= 2,
               "cannot split a single-iteration chunk");
    auto [head, tail] =
        split_chunk(chunks[original], chunks[original].iterations / 2);
    chunks[original] = std::move(head);
    chunks.push_back(std::move(tail));
    left.add_member(original, chunks[original]);
    right.add_member(static_cast<std::uint32_t>(chunks.size() - 1),
                     chunks.back());
    return {std::move(left), std::move(right)};
  }

  std::sort(cluster.members.begin(), cluster.members.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              if (chunks[x].iterations != chunks[y].iterations) {
                return chunks[x].iterations > chunks[y].iterations;
              }
              return x < y;
            });
  for (std::uint32_t member : cluster.members) {
    Cluster& smaller = left.iterations <= right.iterations ? left : right;
    smaller.add_member(member, chunks[member]);
  }
  return {std::move(left), std::move(right)};
}

}  // namespace

void cluster_to_count(std::vector<Cluster>& clusters, std::size_t target,
                      std::vector<IterationChunk>& chunks,
                      ThreadPool* pool) {
  MLSC_CHECK(target >= 1, "target cluster count must be at least 1");
  MLSC_CHECK(!clusters.empty(), "cannot cluster an empty set");

  obs::Span span("pipeline.clustering");
  span.arg("input_clusters", static_cast<std::uint64_t>(clusters.size()));
  span.arg("target", static_cast<std::uint64_t>(target));
  MLSC_COUNTER_INC("pipeline.clustering_calls");

  if (clusters.size() > target) {
    merge_to_count(clusters, target, pool);
  }
  while (clusters.size() < target) {
    // Select the largest cluster (by iterations) and break it in two.
    std::size_t largest = 0;
    for (std::size_t i = 1; i < clusters.size(); ++i) {
      if (clusters[i].iterations > clusters[largest].iterations) largest = i;
    }
    MLSC_CHECK(clusters[largest].iterations >= 2,
               "not enough iterations to form " << target << " clusters");
    auto [left, right] = split_cluster(std::move(clusters[largest]), chunks);
    clusters[largest] = std::move(left);
    clusters.push_back(std::move(right));
  }
}

}  // namespace mlsc::core
