// Stage 2 of the hierarchical distribution algorithm (Fig. 5): greedy
// load balancing of a cluster set against the balance threshold BThres.
//
// Iteration chunks are evicted progressively from over-full clusters to
// under-full ones; each eviction picks the chunk whose tag has maximal
// dot product with the recipient's cluster tag, and a chunk is split (as
// per the paper) when no whole chunk fits the limits.
#pragma once

#include <cstdint>
#include <vector>

#include "core/clustering.h"
#include "support/thread_pool.h"

namespace mlsc::core {

struct BalanceOptions {
  /// Maximum tolerable relative imbalance: limits are
  /// ideal*(1 ± threshold) where ideal = total/N.  The paper's default
  /// experiments use 10%.
  double threshold = 0.10;
};

struct BalanceLimits {
  std::uint64_t lower = 0;
  std::uint64_t upper = 0;
};

/// The [LLim, ULim] window for a cluster set with `total` iterations and
/// `count` clusters.  The window always admits a perfectly balanced
/// partition (lower <= floor(ideal), upper >= ceil(ideal)).
BalanceLimits balance_limits(std::uint64_t total, std::size_t count,
                             double threshold);

/// Balances `clusters` in place.  Returns the number of chunk moves
/// (splits count as one move).  Postcondition: every cluster's iteration
/// count is within [LLim, ULim].
///
/// When `explicit_limits` is provided it overrides the locally computed
/// window.  The hierarchical mapper passes limits derived from the
/// *global* per-client ideal so that per-level tolerances do not
/// compound: BThres bounds the imbalance "across the iteration counts of
/// any two client nodes" (§4.3), not per tree level.
///
/// When `pool` is non-null, each eviction's candidate scoring (the dot of
/// every donor member against the recipient's cluster tag) fans out over
/// the pool with a reduction in block order, so the chosen member — and
/// the final balance — is bit-identical to the serial scan.
std::size_t balance_clusters(std::vector<Cluster>& clusters,
                             std::vector<IterationChunk>& chunks,
                             const BalanceOptions& options,
                             const BalanceLimits* explicit_limits = nullptr,
                             ThreadPool* pool = nullptr);

/// True when every cluster is within the limits implied by `options`.
bool is_balanced(const std::vector<Cluster>& clusters,
                 const BalanceOptions& options);

}  // namespace mlsc::core
