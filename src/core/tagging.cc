#include "core/tagging.h"

#include <algorithm>
#include <unordered_map>

#include "support/check.h"

namespace mlsc::core {
namespace {

/// Coarsens the chunk table by repeatedly merging rank-adjacent chunk
/// pairs (within the same nest) until at most `bound` chunks remain.
/// Adjacent-in-rank chunks are the most likely to share data, so the
/// union tags stay tight.
std::vector<IterationChunk> coarsen(std::vector<IterationChunk> chunks,
                                    std::uint32_t bound) {
  while (chunks.size() > bound) {
    std::sort(chunks.begin(), chunks.end(),
              [](const IterationChunk& a, const IterationChunk& b) {
                if (a.nest != b.nest) return a.nest < b.nest;
                return a.first_rank() < b.first_rank();
              });
    std::vector<IterationChunk> next;
    next.reserve(chunks.size() / 2 + 1);
    std::size_t i = 0;
    while (i < chunks.size()) {
      // Stop merging once the projected final count is within the bound.
      const std::size_t projected = next.size() + (chunks.size() - i);
      if (projected > bound && i + 1 < chunks.size() &&
          chunks[i].nest == chunks[i + 1].nest) {
        next.push_back(merge_chunks(chunks[i], chunks[i + 1]));
        i += 2;
      } else {
        next.push_back(std::move(chunks[i]));
        i += 1;
      }
    }
    if (next.size() == chunks.size()) break;  // nothing mergeable
    chunks = std::move(next);
  }
  return chunks;
}

}  // namespace

void iteration_footprint(const poly::Program& program,
                         const poly::LoopNest& nest, const DataSpace& space,
                         std::span<const std::int64_t> iter,
                         std::vector<std::uint32_t>& out) {
  out.clear();
  for (const auto& ref : nest.refs) {
    const std::uint64_t flat = poly::resolve_element(program, ref, iter);
    const auto span = space.element_chunks(ref.array, flat);
    for (ChunkId c = span.first; c <= span.last; ++c) out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

TaggingResult compute_iteration_chunks(const poly::Program& program,
                                       const DataSpace& space,
                                       std::span<const poly::NestId> nests,
                                       const TaggingOptions& options) {
  TaggingResult result;
  result.num_data_chunks = space.num_chunks();

  std::unordered_map<ChunkTag, std::size_t, ChunkTagHash> tag_index;
  std::vector<IterationChunk> chunks;

  std::vector<std::uint32_t> footprint;

  for (poly::NestId nest_id : nests) {
    const poly::LoopNest& nest = program.nest(nest_id);
    if (nest.space.empty()) continue;

    poly::Iteration iter = nest.space.first();
    std::uint64_t rank = 0;

    ChunkTag run_tag;        // tag of the open run
    std::uint64_t run_begin = 0;
    bool run_open = false;

    auto flush_run = [&](std::uint64_t end_rank) {
      if (!run_open) return;
      auto [it, inserted] = tag_index.try_emplace(run_tag, chunks.size());
      if (inserted) {
        IterationChunk chunk;
        chunk.nest = nest_id;
        chunk.tag = run_tag;
        chunks.push_back(std::move(chunk));
      }
      IterationChunk& chunk = chunks[it->second];
      MLSC_CHECK(chunk.nest == nest_id,
                 "tag shared across nests must not be hash-consed together");
      chunk.ranges.push_back(poly::LinearRange{run_begin, end_rank});
      chunk.iterations += end_rank - run_begin;
    };

    bool more = true;
    while (more) {
      iteration_footprint(program, nest, space, iter, footprint);
      ChunkTag tag = ChunkTag::from_bits(footprint);

      if (!run_open) {
        run_tag = std::move(tag);
        run_begin = rank;
        run_open = true;
      } else if (!(tag == run_tag)) {
        flush_run(rank);
        run_tag = std::move(tag);
        run_begin = rank;
      }

      more = nest.space.advance(iter);
      ++rank;
    }
    flush_run(rank);
    // Reset the hash-cons table across nests: chunks never span nests.
    tag_index.clear();
    result.total_iterations += nest.space.size();
  }

  // Normalize ranges (they were appended in rank order per nest, so this
  // mostly merges adjacent re-runs of the same tag).
  for (auto& chunk : chunks) {
    chunk.ranges = poly::normalize_ranges(std::move(chunk.ranges));
    chunk.iterations = poly::total_range_size(chunk.ranges);
  }

  if (chunks.size() > options.max_iteration_chunks) {
    chunks = coarsen(std::move(chunks), options.max_iteration_chunks);
    result.coarsened = true;
  }
  result.chunks = std::move(chunks);

  std::uint64_t covered = 0;
  for (const auto& chunk : result.chunks) covered += chunk.iterations;
  MLSC_CHECK(covered == result.total_iterations,
             "iteration chunks do not partition the iteration set: "
                 << covered << " vs " << result.total_iterations);
  return result;
}

}  // namespace mlsc::core
