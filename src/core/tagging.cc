#include "core/tagging.h"

#include <algorithm>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"

namespace mlsc::core {
namespace {

/// Coarsens the chunk table by repeatedly merging rank-adjacent chunk
/// pairs (within the same nest) until at most `bound` chunks remain.
/// Adjacent-in-rank chunks are the most likely to share data, so the
/// union tags stay tight.
std::vector<IterationChunk> coarsen(std::vector<IterationChunk> chunks,
                                    std::uint32_t bound) {
  while (chunks.size() > bound) {
    std::sort(chunks.begin(), chunks.end(),
              [](const IterationChunk& a, const IterationChunk& b) {
                if (a.nest != b.nest) return a.nest < b.nest;
                return a.first_rank() < b.first_rank();
              });
    std::vector<IterationChunk> next;
    next.reserve(chunks.size() / 2 + 1);
    std::size_t i = 0;
    while (i < chunks.size()) {
      // Stop merging once the projected final count is within the bound.
      const std::size_t projected = next.size() + (chunks.size() - i);
      if (projected > bound && i + 1 < chunks.size() &&
          chunks[i].nest == chunks[i + 1].nest) {
        next.push_back(merge_chunks(chunks[i], chunks[i + 1]));
        i += 2;
      } else {
        next.push_back(std::move(chunks[i]));
        i += 1;
      }
    }
    if (next.size() == chunks.size()) break;  // nothing mergeable
    chunks = std::move(next);
  }
  return chunks;
}

/// A maximal range of consecutive ranks with one tag — the run-length
/// encoding of the per-iteration tag sequence.  RLE is canonical, so any
/// block decomposition that merges equal tags across block boundaries
/// reconstructs exactly the runs a serial walk would produce; this is
/// what makes the parallel tagging bit-identical to the serial one.
struct TagRun {
  ChunkTag tag;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Tags ranks [lo, hi) of `nest` and appends their (locally merged) runs.
void compute_block_runs(const poly::Program& program,
                        const poly::LoopNest& nest, const DataSpace& space,
                        std::uint64_t lo, std::uint64_t hi,
                        std::vector<TagRun>& out) {
  poly::Iteration iter = nest.space.delinearize(lo);
  std::vector<std::uint32_t> footprint;
  for (std::uint64_t rank = lo; rank < hi; ++rank) {
    iteration_footprint(program, nest, space, iter, footprint);
    ChunkTag tag = ChunkTag::from_bits(footprint);
    if (!out.empty() && out.back().end == rank && out.back().tag == tag) {
      out.back().end = rank + 1;
    } else {
      out.push_back(TagRun{std::move(tag), rank, rank + 1});
    }
    nest.space.advance(iter);
  }
}

/// The full run list of a nest: serial single pass, or block-parallel
/// with boundary stitching when a pool is available and the nest is big
/// enough to amortize the fan-out.
std::vector<TagRun> compute_nest_runs(const poly::Program& program,
                                      const poly::LoopNest& nest,
                                      const DataSpace& space,
                                      ThreadPool* pool) {
  const std::uint64_t total = nest.space.size();
  std::vector<TagRun> runs;
  if (pool == nullptr || pool->num_threads() <= 1 || total < 2048) {
    compute_block_runs(program, nest, space, 0, total, runs);
    return runs;
  }

  const auto size = static_cast<std::size_t>(total);
  const std::size_t grain = pool->default_grain(size);
  std::vector<std::vector<TagRun>> blocks(
      ThreadPool::chunk_count(0, size, grain));
  pool->parallel_chunks(0, size, grain,
                        [&](std::size_t block, std::size_t lo,
                            std::size_t hi) {
                          compute_block_runs(program, nest, space, lo, hi,
                                             blocks[block]);
                        });

  for (auto& block : blocks) {
    for (auto& run : block) {
      if (!runs.empty() && runs.back().end == run.begin &&
          runs.back().tag == run.tag) {
        runs.back().end = run.end;
      } else {
        runs.push_back(std::move(run));
      }
    }
  }
  return runs;
}

}  // namespace

void iteration_footprint(const poly::Program& program,
                         const poly::LoopNest& nest, const DataSpace& space,
                         std::span<const std::int64_t> iter,
                         std::vector<std::uint32_t>& out) {
  out.clear();
  for (const auto& ref : nest.refs) {
    const std::uint64_t flat = poly::resolve_element(program, ref, iter);
    const auto span = space.element_chunks(ref.array, flat);
    for (ChunkId c = span.first; c <= span.last; ++c) out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

TaggingResult compute_iteration_chunks(const poly::Program& program,
                                       const DataSpace& space,
                                       std::span<const poly::NestId> nests,
                                       const TaggingOptions& options,
                                       ThreadPool* pool) {
  obs::Span span("pipeline.tagging");
  TaggingResult result;
  result.num_data_chunks = space.num_chunks();

  std::unordered_map<ChunkTag, std::size_t, ChunkTagHash> tag_index;
  std::vector<IterationChunk> chunks;

  for (poly::NestId nest_id : nests) {
    const poly::LoopNest& nest = program.nest(nest_id);
    if (nest.space.empty()) continue;

    // Hash-cons the runs into iteration chunks, in rank order: recurring
    // tags fold into one chunk with several ranges, exactly the paper's
    // definition (an iteration chunk is the set of *all* iterations with
    // one tag).  Chunk creation order is first-occurrence order, so the
    // table is identical however the runs were computed.
    for (TagRun& run : compute_nest_runs(program, nest, space, pool)) {
      auto [it, inserted] = tag_index.try_emplace(run.tag, chunks.size());
      if (inserted) {
        IterationChunk chunk;
        chunk.nest = nest_id;
        chunk.tag = std::move(run.tag);
        chunks.push_back(std::move(chunk));
      }
      IterationChunk& chunk = chunks[it->second];
      MLSC_CHECK(chunk.nest == nest_id,
                 "tag shared across nests must not be hash-consed together");
      chunk.ranges.push_back(poly::LinearRange{run.begin, run.end});
      chunk.iterations += run.end - run.begin;
    }
    // Reset the hash-cons table across nests: chunks never span nests.
    tag_index.clear();
    result.total_iterations += nest.space.size();
  }

  // Normalize ranges (they were appended in rank order per nest, so this
  // mostly merges adjacent re-runs of the same tag).
  for (auto& chunk : chunks) {
    chunk.ranges = poly::normalize_ranges(std::move(chunk.ranges));
    chunk.iterations = poly::total_range_size(chunk.ranges);
  }

  if (chunks.size() > options.max_iteration_chunks) {
    chunks = coarsen(std::move(chunks), options.max_iteration_chunks);
    result.coarsened = true;
  }
  result.chunks = std::move(chunks);

  std::uint64_t covered = 0;
  for (const auto& chunk : result.chunks) covered += chunk.iterations;
  MLSC_CHECK(covered == result.total_iterations,
             "iteration chunks do not partition the iteration set: "
                 << covered << " vs " << result.total_iterations);
  span.arg("chunks", static_cast<std::uint64_t>(result.chunks.size()));
  span.arg("iterations", result.total_iterations);
  span.arg("coarsened", std::uint64_t{result.coarsened ? 1u : 0u});
  MLSC_GAUGE_SET("pipeline.iteration_chunks",
                 static_cast<double>(result.chunks.size()));
  return result;
}

}  // namespace mlsc::core
