// Stage 1 of the hierarchical distribution algorithm (Fig. 5):
// clustering of iteration chunks by cluster-tag dot product, plus the
// split path when a cluster set has fewer clusters than the level's
// fan-out requires.
//
// Two merge kernels are available (DESIGN.md §15):
//   - kGreedy: the paper-faithful greedy agglomerative merge (max-heap of
//     average-linkage candidates with lazy invalidation).  Quality
//     reference, O(k^2 log k)-ish; the oracle for equivalence tests.
//   - kForest: the scalable similarity-weighted affinity forest —
//     candidate edges from the data-chunk inverted index, a
//     Borůvka-style best-neighbor-hooking maximum-spanning-forest build
//     (parallel over the thread pool), and a cut of the forest to the
//     level's fan-out (single-linkage semantics).  Deterministic at any
//     thread count.
// kAuto (the default) uses the greedy kernel below forest_threshold
// input clusters and the forest at or above it, so paper-scale inputs
// keep the oracle's bit-exact mappings while large sweeps get the
// sub-quadratic path.
#pragma once

#include <cstdint>
#include <vector>

#include "core/iteration_chunk.h"
#include "core/minhash.h"
#include "core/tag.h"
#include "support/thread_pool.h"

namespace mlsc::core {

/// A cluster of iteration chunks.  `members` index into the shared chunk
/// table; `tag` is the bitwise sum of member tags; `iterations` is
/// S(cα), the total iteration count.
struct Cluster {
  std::vector<std::uint32_t> members;
  ClusterTag tag;
  std::uint64_t iterations = 0;

  /// Minimum (nest, first-rank) key over the members — used to prefer
  /// rank-adjacent merges when clusters share no data, which keeps the
  /// mapping close to the sequential order (and hence disk-sequential)
  /// in sharing-free regions.
  std::uint64_t order_key = UINT64_MAX;

  static std::uint64_t make_order_key(const IterationChunk& chunk);

  static Cluster singleton(std::uint32_t chunk_index,
                           const IterationChunk& chunk);
  void absorb(Cluster&& other);
  void add_member(std::uint32_t chunk_index, const IterationChunk& chunk);
  void remove_member(std::uint32_t chunk_index, const IterationChunk& chunk);
};

/// Wraps each chunk of `indices` in a singleton cluster.
std::vector<Cluster> make_singletons(
    const std::vector<std::uint32_t>& indices,
    const std::vector<IterationChunk>& chunks);

struct ClusterOptions {
  enum class Algorithm {
    /// Greedy below forest_threshold inputs, affinity forest at or
    /// above.  The default: paper-scale cluster sets keep the greedy
    /// oracle's exact result, large sets get the scalable kernel.
    kAuto,
    /// Always the greedy agglomerative merge (the reference oracle).
    kGreedy,
    /// Always the parallel affinity-forest kernel.
    kForest,
  };
  Algorithm algorithm = Algorithm::kAuto;

  /// kAuto switches from greedy to the affinity forest at this many
  /// input clusters.  The default sits above the pipeline's 4096-chunk
  /// coarsening cap so every registry workload — at any size factor —
  /// keeps the greedy oracle's bit-exact mapping; only direct map_chunks
  /// callers with larger tables (benches, library users) cross over.
  std::size_t forest_threshold = 8192;

  /// Balance-aware forest cut: a merge that would push a component's
  /// iteration total above (1 + slack) * (total / target) is skipped,
  /// so the cut cannot produce the giant single-linkage chain that the
  /// downstream load balancer would have to disassemble one member at a
  /// time.  Matches the paper's BThres default; negative disables the
  /// cap (pure best-score cut).
  double cut_balance_slack = 0.10;

  /// Forest candidate generation: posting lists (clusters per data
  /// chunk) longer than this are skipped (0 = no cap); see
  /// GraphOptions::hot_posting_cap.
  std::size_t hot_posting_cap = 0;

  /// Forest candidate generation: minhash banding over cluster tag
  /// positions; bands == 0 (default) disables pruning.
  MinhashParams banding;
};

/// Reduces or expands `clusters` to exactly `target` clusters:
///   - while |clusters| > target, merge by data-sharing affinity — the
///     greedy max-dot-product merge or the affinity-forest cut,
///     per `options` (ties broken deterministically by smaller indices);
///   - while |clusters| < target, split the largest cluster in two —
///     by members when it has several, by splitting the underlying
///     iteration chunk (appending to `chunks`) when it has one.
/// `chunks` may grow; all member indices remain valid.
///
/// Greedy kernel: cluster tags and pairwise dot products are maintained
/// incrementally across merges (inverted data-chunk index + max-heap
/// with lazy invalidation), so the merge costs O(k^2 log k) word-ops
/// rather than rescoring every pair per merge.  Forest kernel: candidate
/// edges come from the same inverted index, Borůvka rounds hook each
/// component to its best-scoring neighbor, and the resulting maximum
/// spanning forest is cut to `target` components in score order.
///
/// Both kernels fan the scoring work out over `pool` when one is given;
/// every parallel reduction is over a total order, so the result is
/// bit-identical to the serial run at any thread count.
void cluster_to_count(std::vector<Cluster>& clusters, std::size_t target,
                      std::vector<IterationChunk>& chunks,
                      ThreadPool* pool = nullptr,
                      const ClusterOptions& options = {});

}  // namespace mlsc::core
