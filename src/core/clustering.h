// Stage 1 of the hierarchical distribution algorithm (Fig. 5): greedy
// agglomerative clustering of iteration chunks by cluster-tag dot
// product, plus the split path when a cluster set has fewer clusters
// than the level's fan-out requires.
#pragma once

#include <cstdint>
#include <vector>

#include "core/iteration_chunk.h"
#include "core/tag.h"
#include "support/thread_pool.h"

namespace mlsc::core {

/// A cluster of iteration chunks.  `members` index into the shared chunk
/// table; `tag` is the bitwise sum of member tags; `iterations` is
/// S(cα), the total iteration count.
struct Cluster {
  std::vector<std::uint32_t> members;
  ClusterTag tag;
  std::uint64_t iterations = 0;

  /// Minimum (nest, first-rank) key over the members — used to prefer
  /// rank-adjacent merges when clusters share no data, which keeps the
  /// mapping close to the sequential order (and hence disk-sequential)
  /// in sharing-free regions.
  std::uint64_t order_key = UINT64_MAX;

  static std::uint64_t make_order_key(const IterationChunk& chunk);

  static Cluster singleton(std::uint32_t chunk_index,
                           const IterationChunk& chunk);
  void absorb(Cluster&& other);
  void add_member(std::uint32_t chunk_index, const IterationChunk& chunk);
  void remove_member(std::uint32_t chunk_index, const IterationChunk& chunk);
};

/// Wraps each chunk of `indices` in a singleton cluster.
std::vector<Cluster> make_singletons(
    const std::vector<std::uint32_t>& indices,
    const std::vector<IterationChunk>& chunks);

/// Reduces or expands `clusters` to exactly `target` clusters:
///   - while |clusters| > target, merge the pair with maximal tag dot
///     product (ties broken deterministically by smaller indices);
///   - while |clusters| < target, split the largest cluster in two —
///     by members when it has several, by splitting the underlying
///     iteration chunk (appending to `chunks`) when it has one.
/// `chunks` may grow; all member indices remain valid.
///
/// Cluster tags and pairwise dot products are maintained incrementally
/// across merges (inverted data-chunk index + max-heap with lazy
/// invalidation), so the greedy merge costs O(k^2 log k) word-ops rather
/// than rescoring every pair per merge.  When `pool` is non-null the
/// initial O(k^2)-pair scoring fans out across threads; the candidate
/// ordering is a total order, so the merge sequence — and hence the
/// result — is bit-identical to the serial run.
void cluster_to_count(std::vector<Cluster>& clusters, std::size_t target,
                      std::vector<IterationChunk>& chunks,
                      ThreadPool* pool = nullptr);

}  // namespace mlsc::core
