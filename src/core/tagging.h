// Tag computation: iterations -> iteration chunks (paper §4.2).
//
// Walks each nest in lexicographic order, computes the set of data
// chunks every iteration touches, and groups iterations by identical
// tag.  Consecutive equal-tag iterations extend the current rank range;
// recurring tags are hash-consed into one iteration chunk with several
// ranges, exactly matching the paper's definition (an iteration chunk is
// the set of *all* iterations with one tag).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/data_space.h"
#include "core/iteration_chunk.h"
#include "poly/loop_nest.h"
#include "support/thread_pool.h"

namespace mlsc::core {

struct TaggingOptions {
  /// Upper bound on the number of iteration chunks.  The exact chunking
  /// can produce one chunk per iteration for patterns with no adjacent
  /// tag equality; beyond this bound, chunks adjacent in rank order are
  /// merged pairwise (tags unioned) until within it.  This is the one
  /// approximation over the paper's formulation; set it high (or to the
  /// iteration count) for exact behaviour on small problems.
  std::uint32_t max_iteration_chunks = 4096;
};

struct TaggingResult {
  std::vector<IterationChunk> chunks;
  std::uint64_t total_iterations = 0;
  std::uint32_t num_data_chunks = 0;  // r, the tag width
  bool coarsened = false;             // true when the bound forced merges
};

/// Sorted, deduplicated data-chunk footprint of one iteration.
/// `out` is cleared and reused to avoid per-iteration allocation.
void iteration_footprint(const poly::Program& program,
                         const poly::LoopNest& nest, const DataSpace& space,
                         std::span<const std::int64_t> iter,
                         std::vector<std::uint32_t>& out);

/// Computes the iteration chunks of the given nests (multi-nest handling,
/// §5.4: the iteration sets of all listed nests are simply combined; the
/// returned chunks carry their owning nest id).
///
/// When `pool` is non-null each nest's rank space is tagged in parallel
/// blocks whose run-length encodings are stitched back together; the RLE
/// of a tag sequence is canonical, so the resulting chunk table is
/// bit-identical to the serial walk for any thread count.
TaggingResult compute_iteration_chunks(const poly::Program& program,
                                       const DataSpace& space,
                                       std::span<const poly::NestId> nests,
                                       const TaggingOptions& options = {},
                                       ThreadPool* pool = nullptr);

}  // namespace mlsc::core
