#include "core/pipeline.h"

#include <numeric>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"

namespace mlsc::core {

MappingPipeline::MappingPipeline(const topology::HierarchyTree& tree,
                                 PipelineOptions options)
    : tree_(tree), options_(options) {
  MLSC_CHECK(tree_.finalized(), "hierarchy tree must be finalized");
}

MappingResult MappingPipeline::run(const poly::Program& program,
                                   const DataSpace& space,
                                   std::span<const poly::NestId> nests) const {
  MLSC_CHECK(!nests.empty(), "no nests to map");

  switch (options_.mapper) {
    case MapperKind::kOriginal:
      return map_original(program, nests, tree_.num_clients());
    case MapperKind::kIntraProcessor:
      return map_intra_processor(program, space, nests, tree_.num_clients(),
                                 options_.intra);
    case MapperKind::kInterProcessor:
      break;
  }

  obs::Span pipeline_span("pipeline.run");
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (resolve_num_threads(options_.num_threads) > 1) {
    pool_storage.emplace(options_.num_threads);
    pool = &*pool_storage;
  }
  auto tagging =
      compute_iteration_chunks(program, space, nests, options_.tagging, pool);
  auto chunks = std::move(tagging.chunks);
  pipeline_span.arg("nests", static_cast<std::uint64_t>(nests.size()));
  pipeline_span.arg("iterations", tagging.total_iterations);

  // Dependence handling, strategy 1: pre-merge dependent chunks so the
  // clustering can never separate them.
  std::vector<ChunkDependence> all_deps;
  {
    obs::Span span("pipeline.dependences");
    for (poly::NestId nest_id : nests) {
      auto deps = find_chunk_dependences(program, nest_id, chunks);
      all_deps.insert(all_deps.end(), deps.begin(), deps.end());
    }
    span.arg("edges", static_cast<std::uint64_t>(all_deps.size()));
  }
  if (options_.dependences == DependenceStrategy::kMergeClusters &&
      !all_deps.empty()) {
    chunks = merge_dependent_chunks(std::move(chunks), all_deps);
    all_deps.clear();
  }

  HierarchicalMapperOptions mapper_options;
  mapper_options.balance_threshold = options_.balance_threshold;
  mapper_options.tagging = options_.tagging;
  mapper_options.clustering = options_.clustering;
  mapper_options.num_threads = options_.num_threads;
  HierarchicalMapper mapper(tree_, mapper_options);
  auto mapping = mapper.map_chunks(std::move(chunks));

  if (options_.schedule) {
    schedule_mapping(mapping, tree_, options_.scheduler);
  }

  // Dependence handling, strategy 2: chunk indices may have been split by
  // the balancer, but splits keep both halves' indices valid and the
  // dependences were computed pre-split on the same table prefix; any
  // residual pairs resolve against the final placement here.
  if (options_.dependences == DependenceStrategy::kSynchronize) {
    std::vector<ChunkDependence> final_deps;
    for (poly::NestId nest_id : nests) {
      auto deps = find_chunk_dependences(program, nest_id,
                                         mapping.chunk_table);
      final_deps.insert(final_deps.end(), deps.begin(), deps.end());
    }
    insert_sync_edges(mapping, final_deps, &program);
  }
  return mapping;
}

MappingResult MappingPipeline::run_all(const poly::Program& program,
                                       const DataSpace& space) const {
  std::vector<poly::NestId> nests(program.nests.size());
  std::iota(nests.begin(), nests.end(), 0u);
  return run(program, space, nests);
}

}  // namespace mlsc::core
