// Handling loops with data dependences (paper §5.4).
//
// Two strategies are implemented, exactly as the paper describes:
//   kMergeClusters — dependent iteration chunks are clustered together
//     (an "infinite edge weight"), so no inter-processor synchronization
//     is ever needed; may cost parallelism.
//   kSynchronize — dependences are treated as ordinary data sharing
//     during clustering, and cross-client ordering constraints (sync
//     edges) are inserted after scheduling.  This is the strategy the
//     paper's implementation employs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/iteration_chunk.h"
#include "core/mapping.h"
#include "poly/dependence.h"

namespace mlsc::core {

enum class DependenceStrategy { kMergeClusters, kSynchronize };

const char* dependence_strategy_name(DependenceStrategy strategy);

/// A dependence between two iteration chunks of the same nest: every
/// iteration of `dst` that matches the distance must run after the
/// corresponding iteration of `src`.
struct ChunkDependence {
  std::uint32_t src = 0;  // chunk-table index
  std::uint32_t dst = 0;
};

/// Finds chunk-level dependences for a nest's chunks.  Uniform
/// dependences with constant distance map to a constant lexicographic
/// rank shift; ranges are intersected after shifting.  Dependences with
/// unknown ("*") components conservatively relate all chunk pairs whose
/// tags share data of the written array.
std::vector<ChunkDependence> find_chunk_dependences(
    const poly::Program& program, poly::NestId nest_id,
    std::span<const IterationChunk> chunks);

/// Strategy 1: merges the connected components induced by the chunk
/// dependences; returns the (smaller) chunk table.  Chunk indices are
/// remapped, so run this before mapping.
std::vector<IterationChunk> merge_dependent_chunks(
    std::vector<IterationChunk> chunks,
    const std::vector<ChunkDependence>& deps);

/// Strategy 2: after mapping (and optional scheduling), converts chunk
/// dependences whose endpoints landed on different clients into
/// SyncEdges on the mapping.  Same-client dependences are honored by
/// reordering violations away: if a consumer precedes its producer on
/// the same client, their items are swapped.
///
/// The local scheduler's order may be infeasible under the dependences
/// (clients could wait on each other cyclically).  When `program` is
/// given, the first fallback is a *wavefront* order — items sorted by
/// their position within the outermost loop's iteration, so a client
/// revisits the same region across outer iterations back to back while
/// cross-client halo waits pipeline — and the final fallback is plain
/// rank (sequential) order, which is always feasible.
void insert_sync_edges(MappingResult& mapping,
                       const std::vector<ChunkDependence>& deps,
                       const poly::Program* program = nullptr);

}  // namespace mlsc::core
