#include "core/iteration_chunk.h"

#include "support/check.h"

namespace mlsc::core {

std::uint64_t IterationChunk::first_rank() const {
  MLSC_CHECK(!ranges.empty(), "first_rank() of an empty iteration chunk");
  return ranges.front().begin;
}

std::pair<IterationChunk, IterationChunk> split_chunk(
    const IterationChunk& chunk, std::uint64_t head_iterations) {
  MLSC_CHECK(head_iterations > 0 && head_iterations < chunk.iterations,
             "split size " << head_iterations << " not inside (0, "
                           << chunk.iterations << ")");
  IterationChunk head;
  IterationChunk tail;
  head.nest = tail.nest = chunk.nest;
  head.tag = tail.tag = chunk.tag;

  std::uint64_t remaining = head_iterations;
  for (const auto& range : chunk.ranges) {
    if (remaining == 0) {
      tail.ranges.push_back(range);
      continue;
    }
    if (range.size() <= remaining) {
      head.ranges.push_back(range);
      remaining -= range.size();
    } else {
      const std::uint64_t cut = range.begin + remaining;
      head.ranges.push_back(poly::LinearRange{range.begin, cut});
      tail.ranges.push_back(poly::LinearRange{cut, range.end});
      remaining = 0;
    }
  }
  head.iterations = head_iterations;
  tail.iterations = chunk.iterations - head_iterations;
  MLSC_CHECK(poly::total_range_size(head.ranges) == head.iterations &&
                 poly::total_range_size(tail.ranges) == tail.iterations,
             "split lost iterations");
  return {std::move(head), std::move(tail)};
}

IterationChunk merge_chunks(const IterationChunk& a, const IterationChunk& b) {
  MLSC_CHECK(a.nest == b.nest, "cannot merge chunks from different nests");
  IterationChunk merged;
  merged.nest = a.nest;
  merged.tag = a.tag.merged_with(b.tag);
  merged.ranges = a.ranges;
  merged.ranges.insert(merged.ranges.end(), b.ranges.begin(), b.ranges.end());
  merged.ranges = poly::normalize_ranges(std::move(merged.ranges));
  merged.iterations = poly::total_range_size(merged.ranges);
  MLSC_CHECK(merged.iterations == a.iterations + b.iterations,
             "merged chunks overlapped");
  return merged;
}

}  // namespace mlsc::core
