// MappingPipeline: the library's top-level entry point.
//
// Mirrors what the paper's Phoenix-based implementation does at compile
// time: take a (parallelized) program, a storage cache hierarchy
// description and a chunked data space, and produce the
// iteration-to-processor mapping — original, intra-processor, or the
// paper's inter-processor scheme, optionally with the Fig. 15 scheduling
// enhancement and §5.4 dependence handling.
#pragma once

#include <optional>
#include <span>

#include "core/baselines.h"
#include "core/data_space.h"
#include "core/dependences.h"
#include "core/mapper.h"
#include "core/mapping.h"
#include "core/scheduler.h"
#include "topology/hierarchy.h"

namespace mlsc::core {

struct PipelineOptions {
  MapperKind mapper = MapperKind::kInterProcessor;

  /// BThres (§4.3); the paper's experiments use 10%.
  double balance_threshold = 0.10;

  /// Applies the Fig. 15 local scheduling pass (inter-processor only).
  bool schedule = false;
  SchedulerOptions scheduler;

  /// §5.4 dependence handling; kSynchronize is the paper's choice.
  DependenceStrategy dependences = DependenceStrategy::kSynchronize;

  TaggingOptions tagging;
  IntraProcessorOptions intra;

  /// Clustering kernel selection (greedy oracle vs affinity forest) and
  /// the forest's candidate filters; see ClusterOptions.
  ClusterOptions clustering;

  /// Threads for the mapping stages (tagging, clustering, balancing):
  /// 1 = serial (default), 0 = hardware concurrency, N = exactly N.  The
  /// mapping produced is bit-identical for every value — parallel stages
  /// reduce in a fixed order — so this is purely a wall-clock knob.
  std::size_t num_threads = 1;
};

class MappingPipeline {
 public:
  MappingPipeline(const topology::HierarchyTree& tree,
                  PipelineOptions options = {});

  /// Maps the given nests of the program onto the tree's clients.
  /// Multi-nest handling (§5.4) is automatic when several nests are
  /// passed: their iteration chunks are clustered together.
  MappingResult run(const poly::Program& program, const DataSpace& space,
                    std::span<const poly::NestId> nests) const;

  /// Convenience: maps every nest of the program.
  MappingResult run_all(const poly::Program& program,
                        const DataSpace& space) const;

  const PipelineOptions& options() const { return options_; }

 private:
  const topology::HierarchyTree& tree_;
  PipelineOptions options_;
};

}  // namespace mlsc::core
