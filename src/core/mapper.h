// The cache-hierarchy-conscious loop iteration distribution algorithm
// (paper Fig. 5): hierarchical clustering of iteration chunks over the
// storage cache hierarchy tree, with per-level load balancing.
#pragma once

#include <span>
#include <vector>

#include "core/clustering.h"
#include "core/data_space.h"
#include "core/load_balance.h"
#include "core/mapping.h"
#include "core/tagging.h"
#include "support/thread_pool.h"
#include "topology/hierarchy.h"

namespace mlsc::core {

struct HierarchicalMapperOptions {
  /// BThres, the maximum tolerable relative imbalance (default 10%, the
  /// value used in the paper's experiments, §5.2).
  double balance_threshold = 0.10;
  TaggingOptions tagging;

  /// Clustering kernel selection (greedy oracle vs affinity forest) and
  /// the forest's candidate filters; see ClusterOptions.
  ClusterOptions clustering;

  /// Threads for tagging, clustering and balancing: 1 = serial (the
  /// default), 0 = hardware concurrency, N = exactly N.  Every parallel
  /// stage reduces in a fixed order, so the produced mapping is
  /// bit-identical for every thread count.
  std::size_t num_threads = 1;
};

class HierarchicalMapper {
 public:
  HierarchicalMapper(const topology::HierarchyTree& tree,
                     HierarchicalMapperOptions options = {});

  /// Runs initialization (tagging), hierarchical clustering and load
  /// balancing; returns one iteration-chunk list per client, in tree
  /// leaf order.  `nests` may name several nests (multi-nest mode).
  MappingResult map(const poly::Program& program, const DataSpace& space,
                    std::span<const poly::NestId> nests) const;

  /// Same, but starting from an existing chunk table (used by the
  /// dependence extension, which pre-merges dependent chunks).
  MappingResult map_chunks(std::vector<IterationChunk> chunks) const;

  const topology::HierarchyTree& tree() const { return tree_; }
  const HierarchicalMapperOptions& options() const { return options_; }

 private:
  MappingResult map_chunks_with_pool(std::vector<IterationChunk> chunks,
                                     ThreadPool* pool) const;

  const topology::HierarchyTree& tree_;
  HierarchicalMapperOptions options_;
};

}  // namespace mlsc::core
