// Per-client code generation: renders the loops each client executes
// under a mapping, the way the paper uses Omega's codegen(.) to emit the
// per-client loop nests for the iteration chunks scheduled on it (§4.2).
#pragma once

#include <string>

#include "core/mapping.h"
#include "poly/loop_nest.h"

namespace mlsc::core {

/// C-like source for everything `client` executes, in schedule order.
/// Baseline block items render with a note about their traversal order;
/// iteration-chunk items render as exact loop nests over their ranges.
std::string emit_client_source(const poly::Program& program,
                               const MappingResult& mapping,
                               std::size_t client);

/// Source for all clients, separated by headers.
std::string emit_all_clients_source(const poly::Program& program,
                                    const MappingResult& mapping);

}  // namespace mlsc::core
