// The iteration-chunk similarity graph (paper §4.3, initialization step).
//
// Nodes are iteration chunks; the weight of edge (γΛi, γΛj) is the number
// of common "1" bits in Λi ∧ Λj — the amount of data the two chunks
// share at chunk granularity.  Zero-weight pairs get no edge (Fig. 8
// omits them too).  The clustering stage computes dot products directly
// on cluster tags for efficiency, so this graph mainly serves analysis,
// visualization, the worked-example tests, and the dependence extension
// (which adds infinite-weight edges).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/iteration_chunk.h"

namespace mlsc::core {

struct GraphEdge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t weight = 0;

  static constexpr std::uint64_t kInfiniteWeight =
      std::numeric_limits<std::uint64_t>::max();
};

class ChunkGraph {
 public:
  /// Builds the complete similarity structure over the chunk table;
  /// O(V^2) pairings, so callers should bound the table size first.
  explicit ChunkGraph(const std::vector<IterationChunk>& chunks);

  std::size_t num_nodes() const { return num_nodes_; }
  const std::vector<GraphEdge>& edges() const { return edges_; }

  /// Weight between two nodes; 0 when there is no edge.
  std::uint64_t weight(std::uint32_t a, std::uint32_t b) const;

  /// Neighbors of a node with nonzero weight.
  std::vector<std::uint32_t> neighbors(std::uint32_t node) const;

  /// Marks two chunks as inseparable (dependence extension §5.4,
  /// strategy 1): the edge weight becomes infinite.
  void set_infinite(std::uint32_t a, std::uint32_t b);

  /// Graphviz dot rendering (used by the examples).
  std::string to_dot(const std::vector<IterationChunk>& chunks,
                     std::size_t tag_width) const;

 private:
  std::size_t edge_index(std::uint32_t a, std::uint32_t b) const;

  std::size_t num_nodes_ = 0;
  std::vector<std::uint64_t> weights_;  // dense upper triangle
  std::vector<GraphEdge> edges_;        // nonzero edges only
  bool edges_dirty_ = false;
};

}  // namespace mlsc::core
