// The iteration-chunk similarity graph (paper §4.3, initialization step).
//
// Nodes are iteration chunks; the weight of edge (γΛi, γΛj) is the number
// of common "1" bits in Λi ∧ Λj — the amount of data the two chunks
// share at chunk granularity.  Zero-weight pairs get no edge (Fig. 8
// omits them too).
//
// Construction is a three-stage kernel (DESIGN.md §15):
//   1. candidate generation — similarity is nonzero only for chunks that
//      share at least one data chunk, so candidate pairs are read off a
//      data-chunk inverted index (posting lists of chunk ids per data
//      chunk) instead of enumerating all O(V^2) pairs.  A hot-posting cap
//      can skip pathologically shared data chunks, and optional
//      minhash/LSH banding (core/minhash.h) prunes near-zero-similarity
//      candidates before they are scored.  Both filters only *remove*
//      pairs: the filtered graph is always a subgraph of the exact one,
//      and with both disabled (the default) the graph is identical to
//      the exhaustive sweep's.
//   2. scoring — surviving pairs are scored with the exact tag
//      intersection (DynamicBitset::and_count on densified tags, or the
//      sparse merge when tags are sparse relative to the width).
//   3. freeze — the nonzero structure is frozen into a symmetric CSR
//      adjacency: row offsets plus sorted neighbor / weight / edge-id
//      arrays.  weight() is a binary search in a row (O(log degree)),
//      neighbors() is a zero-copy span over a row, and set_infinite()
//      updates the two directed entries plus the edge record in
//      O(log degree).  Dependence pinning of a pair with *zero* shared
//      data inserts a new edge after the freeze; such rows are patched
//      into small side tables so every accessor stays consistent.
//
// The pre-existing exhaustive O(V^2) sweep is kept behind
// GraphOptions::exact as the reference oracle for equivalence tests and
// the quality bench.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/iteration_chunk.h"
#include "core/minhash.h"
#include "support/thread_pool.h"

namespace mlsc::core {

struct GraphEdge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t weight = 0;

  static constexpr std::uint64_t kInfiniteWeight =
      std::numeric_limits<std::uint64_t>::max();
};

struct GraphOptions {
  /// Upper bound on the node count.  Candidate generation is output-
  /// sensitive and the CSR is O(V + E); the default admits a million
  /// chunks while still catching accidental explosion.
  std::size_t max_nodes = 1u << 20;

  /// Tags whose width (max set bit + 1) is at most this many bits are
  /// densified into DynamicBitsets so scoring runs on the SIMD/unrolled
  /// word-level and_count instead of the sparse merge.  Candidate
  /// scoring additionally requires the tags to be dense enough for the
  /// word loop to beat the sparse merge (see graph.cc).
  std::size_t bitset_width_limit = 1u << 15;

  /// Pool for candidate generation and scoring; null (or a 1-thread
  /// pool) runs serially.  Either way the result is identical — rows are
  /// independent.
  ThreadPool* pool = nullptr;

  /// Run the exhaustive O(V^2) pairwise sweep instead of inverted-index
  /// candidate generation.  The reference oracle: slower, but immune to
  /// the hot-posting cap and banding filters below.
  bool exact = false;

  /// Posting lists longer than this many chunks are skipped during
  /// candidate generation (0 = no cap).  A data chunk shared by
  /// thousands of iteration chunks (a universally-read table) generates
  /// near-uniform similarity and a quadratic blowup of candidates;
  /// capping it prunes those pairs.  Pairs that share *only* capped data
  /// chunks are lost (subgraph), all other weights stay exact.
  std::size_t hot_posting_cap = 0;

  /// Minhash/LSH banding of the tag bitsets; banding.bands == 0 (the
  /// default) disables it.  When enabled, candidates that agree on no
  /// band are pruned before scoring.
  MinhashParams banding;
};

/// Construction statistics, for benchmarks and the candidate-pair
/// reduction gate in CI.
struct GraphStats {
  /// All unordered pairs, n*(n-1)/2 — what the exact sweep scores.
  std::uint64_t total_pairs = 0;
  /// Pairs actually scored (candidate pairs surviving every filter; for
  /// the exact sweep this equals total_pairs).
  std::uint64_t scored_pairs = 0;
  /// Candidates pruned by minhash banding before scoring.
  std::uint64_t banding_pruned = 0;
  /// Posting lists skipped by the hot-posting cap.
  std::uint64_t hot_postings_skipped = 0;
  /// Wall clock of the generate and score stages (candidate path only).
  double generate_ms = 0.0;
  double score_ms = 0.0;
  bool exact = false;

  /// scored / total — the candidate-pair reduction the inverted index
  /// bought (1.0 for the exact sweep; lower is better).
  double reduction_ratio() const {
    return total_pairs == 0
               ? 0.0
               : static_cast<double>(scored_pairs) /
                     static_cast<double>(total_pairs);
  }
};

class ChunkGraph {
 public:
  /// Builds the complete similarity structure over the chunk table —
  /// candidate generation + scoring by default, the exhaustive sweep
  /// with options.exact — then freezes it into CSR form.
  explicit ChunkGraph(const std::vector<IterationChunk>& chunks,
                      const GraphOptions& options = {});

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<GraphEdge>& edges() const { return edges_; }
  const GraphStats& stats() const { return stats_; }

  /// Weight between two nodes; 0 when there is no edge.  O(log degree).
  std::uint64_t weight(std::uint32_t a, std::uint32_t b) const;

  /// Neighbors of a node with nonzero weight, ascending, as a view over
  /// the CSR row (no allocation).  Valid until the graph is destroyed;
  /// set_infinite() on a previously-zero pair repoints the affected rows
  /// but never invalidates spans of untouched nodes.
  std::span<const std::uint32_t> neighbors(std::uint32_t node) const;

  std::size_t degree(std::uint32_t node) const {
    return neighbors(node).size();
  }

  /// Marks two chunks as inseparable (dependence extension §5.4,
  /// strategy 1): the edge weight becomes infinite.  O(log degree) when
  /// the pair already shares data; inserting a brand-new edge costs
  /// O(degree) for the two patched rows.
  void set_infinite(std::uint32_t a, std::uint32_t b);

  /// Graphviz dot rendering (used by the examples).
  std::string to_dot(const std::vector<IterationChunk>& chunks,
                     std::size_t tag_width) const;

 private:
  static std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  /// Index into col_/weight_ of `b` within `a`'s CSR row, or SIZE_MAX.
  std::size_t csr_find(std::uint32_t a, std::uint32_t b) const;

  std::size_t num_nodes_ = 0;
  GraphStats stats_;

  // Symmetric CSR adjacency: row v is
  // col_[row_offsets_[v] .. row_offsets_[v+1]), sorted ascending, with
  // parallel weight_ and edge_id_ (index into edges_) arrays.
  std::vector<std::size_t> row_offsets_;
  std::vector<std::uint32_t> col_;
  std::vector<std::uint64_t> weight_;
  std::vector<std::uint32_t> edge_id_;

  std::vector<GraphEdge> edges_;  // nonzero edges, (a < b) lexicographic

  // Post-freeze dependence pins on zero-weight pairs: the new edge's
  // weight keyed by packed pair, and for each affected node a rebuilt
  // sorted row that neighbors() serves instead of the CSR row.
  std::unordered_map<std::uint64_t, std::uint32_t> extra_edge_id_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> patched_rows_;
};

}  // namespace mlsc::core
