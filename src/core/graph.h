// The iteration-chunk similarity graph (paper §4.3, initialization step).
//
// Nodes are iteration chunks; the weight of edge (γΛi, γΛj) is the number
// of common "1" bits in Λi ∧ Λj — the amount of data the two chunks
// share at chunk granularity.  Zero-weight pairs get no edge (Fig. 8
// omits them too).  The clustering stage computes dot products directly
// on cluster tags for efficiency, so this graph mainly serves analysis,
// visualization, the worked-example tests, and the dependence extension
// (which adds infinite-weight edges).
//
// Representation: the O(V^2) pairwise common-bits sweep runs once at
// construction (row-partitioned over the upper triangle and optionally
// parallelized over a ThreadPool), then the nonzero structure is frozen
// into a symmetric CSR adjacency — row offsets plus sorted neighbor /
// weight / edge-id arrays.  weight() is a binary search in a row
// (O(log degree)), neighbors() is a zero-copy span over a row, and
// set_infinite() updates the two directed entries plus the edge record
// in O(log degree).  Dependence pinning of a pair with *zero* shared
// data inserts a new edge after the freeze; such rows are patched into
// small side tables so every accessor stays consistent.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/iteration_chunk.h"
#include "support/thread_pool.h"

namespace mlsc::core {

struct GraphEdge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t weight = 0;

  static constexpr std::uint64_t kInfiniteWeight =
      std::numeric_limits<std::uint64_t>::max();
};

struct GraphOptions {
  /// Upper bound on the node count.  The sweep is O(V^2) pairings and the
  /// CSR is O(V + E); the default admits a million chunks, far above the
  /// old hard-wired 8192 cap, while still catching accidental explosion.
  std::size_t max_nodes = 1u << 20;

  /// Tags whose width (max set bit + 1) is at most this many bits are
  /// densified into DynamicBitsets so the sweep runs on the unrolled
  /// word-level and_count instead of the sparse merge.
  std::size_t bitset_width_limit = 1u << 15;

  /// Pool for the pairwise sweep; null (or a 1-thread pool) runs serially.
  /// Either way the result is identical — rows are independent.
  ThreadPool* pool = nullptr;
};

class ChunkGraph {
 public:
  /// Builds the complete similarity structure over the chunk table with
  /// an O(V^2) pairwise sweep, then freezes it into CSR form.
  explicit ChunkGraph(const std::vector<IterationChunk>& chunks,
                      const GraphOptions& options = {});

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<GraphEdge>& edges() const { return edges_; }

  /// Weight between two nodes; 0 when there is no edge.  O(log degree).
  std::uint64_t weight(std::uint32_t a, std::uint32_t b) const;

  /// Neighbors of a node with nonzero weight, ascending, as a view over
  /// the CSR row (no allocation).  Valid until the graph is destroyed;
  /// set_infinite() on a previously-zero pair repoints the affected rows
  /// but never invalidates spans of untouched nodes.
  std::span<const std::uint32_t> neighbors(std::uint32_t node) const;

  std::size_t degree(std::uint32_t node) const {
    return neighbors(node).size();
  }

  /// Marks two chunks as inseparable (dependence extension §5.4,
  /// strategy 1): the edge weight becomes infinite.  O(log degree) when
  /// the pair already shares data; inserting a brand-new edge costs
  /// O(degree) for the two patched rows.
  void set_infinite(std::uint32_t a, std::uint32_t b);

  /// Graphviz dot rendering (used by the examples).
  std::string to_dot(const std::vector<IterationChunk>& chunks,
                     std::size_t tag_width) const;

 private:
  static std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  /// Index into col_/weight_ of `b` within `a`'s CSR row, or SIZE_MAX.
  std::size_t csr_find(std::uint32_t a, std::uint32_t b) const;

  std::size_t num_nodes_ = 0;

  // Symmetric CSR adjacency: row v is
  // col_[row_offsets_[v] .. row_offsets_[v+1]), sorted ascending, with
  // parallel weight_ and edge_id_ (index into edges_) arrays.
  std::vector<std::size_t> row_offsets_;
  std::vector<std::uint32_t> col_;
  std::vector<std::uint64_t> weight_;
  std::vector<std::uint32_t> edge_id_;

  std::vector<GraphEdge> edges_;  // nonzero edges, (a < b) lexicographic

  // Post-freeze dependence pins on zero-weight pairs: the new edge's
  // weight keyed by packed pair, and for each affected node a rebuilt
  // sorted row that neighbors() serves instead of the CSR row.
  std::unordered_map<std::uint64_t, std::uint32_t> extra_edge_id_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> patched_rows_;
};

}  // namespace mlsc::core
