#include "core/client_codegen.h"

#include <sstream>

#include "poly/codegen.h"
#include "support/check.h"

namespace mlsc::core {

std::string emit_client_source(const poly::Program& program,
                               const MappingResult& mapping,
                               std::size_t client) {
  MLSC_CHECK(client < mapping.num_clients(), "client out of range");
  std::ostringstream out;
  out << "// client " << client << " — " << mapping.mapper_name << "\n";
  for (const auto& item : mapping.client_work[client]) {
    const auto& nest = program.nest(item.nest);
    if (item.chunk >= 0) {
      out << "// iteration chunk " << item.chunk << " of nest " << nest.name
          << " (" << item.iterations << " iterations)\n";
      std::ostringstream body;
      body << "body_" << nest.name << "(";
      for (std::size_t k = 0; k < nest.depth(); ++k) {
        if (k != 0) body << ", ";
        body << "i" << k;
      }
      body << ");";
      out << poly::emit_range_loops(nest.space, item.ranges, body.str());
    } else {
      out << "// block of nest " << nest.name << " in order "
          << item.order.to_string() << ": positions ";
      for (std::size_t r = 0; r < item.ranges.size(); ++r) {
        if (r != 0) out << ", ";
        out << "[" << item.ranges[r].begin << ", " << item.ranges[r].end
            << ")";
      }
      out << "\n";
    }
  }
  for (const auto& edge : mapping.sync_edges) {
    if (edge.consumer_client == client) {
      out << "// sync: wait for client " << edge.producer_client << " item "
          << edge.producer_item << " before item " << edge.consumer_item
          << "\n";
    }
  }
  return out.str();
}

std::string emit_all_clients_source(const poly::Program& program,
                                    const MappingResult& mapping) {
  std::ostringstream out;
  for (std::size_t c = 0; c < mapping.num_clients(); ++c) {
    out << emit_client_source(program, mapping, c) << "\n";
  }
  return out.str();
}

}  // namespace mlsc::core
