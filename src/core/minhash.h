// Minhash/LSH banding of sparse tag bitsets (similarity-graph candidate
// pruning, DESIGN.md §15).
//
// Each tag (a sorted set of data-chunk positions) gets `bands` band keys;
// band k hashes the `rows` minhashes h_{k*rows}..h_{k*rows+rows-1}, where
// h_i(tag) = min over positions p of a SplitMix64-style mix of (seed, i,
// p).  Two tags sharing a band key are Jaccard-similar with probability
// 1 - (1 - J^rows)^bands, so pairs that agree on *no* band are very
// likely near-zero-similarity and can be pruned before scoring.  Banding
// is strictly a filter: enabling it can only remove candidate pairs, so
// the banded similarity graph is a subgraph of the exact one.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace mlsc::core {

struct MinhashParams {
  /// Number of LSH bands; 0 disables banding entirely.
  std::size_t bands = 0;
  /// Minhashes hashed together per band.  More rows make a band match
  /// stricter (higher precision, lower recall for weakly-similar pairs).
  std::size_t rows = 2;
  /// Seed mixed into every hash so sketches are reproducible.
  std::uint64_t seed = 0x6d6c7363u;  // "mlsc"

  bool enabled() const { return bands > 0; }
};

namespace detail {

/// SplitMix64 finalizer — the same mix rng.h uses to expand seeds.
inline std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace detail

/// The `bands` band keys of one tag.  An empty tag gets a per-call
/// sentinel that never matches another tag's keys (empty tags share no
/// data with anything).
inline void minhash_band_keys(std::span<const std::uint32_t> positions,
                              const MinhashParams& params,
                              std::uint64_t* out) {
  constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;
  if (positions.empty()) {
    for (std::size_t k = 0; k < params.bands; ++k) {
      out[k] = std::numeric_limits<std::uint64_t>::max();
    }
    return;
  }
  for (std::size_t k = 0; k < params.bands; ++k) {
    std::uint64_t key = 1469598103934665603ull;  // FNV offset basis
    for (std::size_t j = 0; j < params.rows; ++j) {
      const std::uint64_t fn = params.seed + (k * params.rows + j + 1) * kGolden;
      std::uint64_t mh = std::numeric_limits<std::uint64_t>::max();
      for (const std::uint32_t pos : positions) {
        const std::uint64_t h = detail::mix64(fn ^ (pos * kGolden));
        if (h < mh) mh = h;
      }
      key = (key ^ mh) * 1099511628211ull;  // FNV prime
    }
    // Keep 0 and ~0 free for "never matches" sentinels.
    out[k] = key == 0 || key == std::numeric_limits<std::uint64_t>::max()
                 ? 1
                 : key;
  }
}

/// True when the two tags agree on at least one band (or banding is off,
/// in which case nothing is ever pruned).  `a` and `b` point at
/// params.bands keys each; the ~0 sentinel (empty tag) never matches.
inline bool minhash_shares_band(const std::uint64_t* a, const std::uint64_t* b,
                                const MinhashParams& params) {
  if (!params.enabled()) return true;
  for (std::size_t k = 0; k < params.bands; ++k) {
    if (a[k] == b[k] &&
        a[k] != std::numeric_limits<std::uint64_t>::max()) {
      return true;
    }
  }
  return false;
}

}  // namespace mlsc::core
