#include "core/dependences.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "support/check.h"

namespace mlsc::core {
namespace {

/// Lexicographic-rank shift of a constant distance vector: moving an
/// iteration by d moves its rank by sum(d_k * stride_k), modulo bound
/// effects at the edges of the space (the approximation is conservative
/// for dependence purposes when ranges are intersected afterwards).
std::int64_t rank_shift(const poly::IterationSpace& space,
                        const poly::Distance& distance) {
  std::int64_t shift = 0;
  std::int64_t stride = 1;
  for (std::size_t k = space.depth(); k-- > 0;) {
    shift += *distance[k] * stride;
    stride *= space.loop(k).extent();
  }
  return shift;
}

/// True when any range of `a`, shifted by `delta`, overlaps a range of
/// `b`.  Both lists are sorted and disjoint.
bool shifted_ranges_overlap(const std::vector<poly::LinearRange>& a,
                            std::int64_t delta,
                            const std::vector<poly::LinearRange>& b) {
  auto ita = a.begin();
  auto itb = b.begin();
  while (ita != a.end() && itb != b.end()) {
    const std::int64_t a_begin = static_cast<std::int64_t>(ita->begin) + delta;
    const std::int64_t a_end = static_cast<std::int64_t>(ita->end) + delta;
    const auto b_begin = static_cast<std::int64_t>(itb->begin);
    const auto b_end = static_cast<std::int64_t>(itb->end);
    if (a_end <= b_begin) {
      ++ita;
    } else if (b_end <= a_begin) {
      ++itb;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* dependence_strategy_name(DependenceStrategy strategy) {
  switch (strategy) {
    case DependenceStrategy::kMergeClusters:
      return "merge-clusters";
    case DependenceStrategy::kSynchronize:
      return "synchronize";
  }
  return "?";
}

std::vector<ChunkDependence> find_chunk_dependences(
    const poly::Program& program, poly::NestId nest_id,
    std::span<const IterationChunk> chunks) {
  const poly::LoopNest& nest = program.nest(nest_id);
  const auto deps = poly::find_dependences(nest);
  if (deps.empty()) return {};

  // Indices of chunks belonging to this nest, in first-rank order.
  std::vector<std::uint32_t> nest_chunks;
  for (std::uint32_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i].nest == nest_id && !chunks[i].ranges.empty()) {
      nest_chunks.push_back(i);
    }
  }

  // The chunks partition the nest's rank space, so an interval index
  // (sorted range starts -> owning chunk) answers "which chunks overlap
  // [lo, hi)" in O(log + answer).
  struct Interval {
    std::uint64_t begin;
    std::uint64_t end;
    std::uint32_t chunk;
  };
  std::vector<Interval> intervals;
  for (std::uint32_t id : nest_chunks) {
    for (const auto& r : chunks[id].ranges) {
      intervals.push_back(Interval{r.begin, r.end, id});
    }
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });

  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  auto emit = [&](std::uint32_t a, std::uint32_t b) {
    if (a == b) return;
    // Orient producer -> consumer along sequential (rank) order, which
    // is always a legal execution and hence acyclic.
    const bool forward = chunks[a].first_rank() < chunks[b].first_rank();
    pairs.emplace(forward ? a : b, forward ? b : a);
  };

  bool any_unknown = false;
  for (const auto& dep : deps) {
    const bool constant = std::all_of(
        dep.distance.begin(), dep.distance.end(),
        [](const auto& d) { return d.has_value(); });
    if (!constant) {
      any_unknown = true;
      continue;
    }
    const std::int64_t delta = rank_shift(nest.space, dep.distance);
    if (delta == 0) continue;  // loop-independent: stays within a chunk
    for (std::uint32_t a : nest_chunks) {
      for (const auto& r : chunks[a].ranges) {
        const std::int64_t lo = static_cast<std::int64_t>(r.begin) + delta;
        const std::int64_t hi = static_cast<std::int64_t>(r.end) + delta;
        if (hi <= 0) continue;
        const auto ulo = static_cast<std::uint64_t>(std::max<std::int64_t>(
            lo, 0));
        const auto uhi = static_cast<std::uint64_t>(hi);
        // First interval whose end may exceed ulo: binary search on
        // begin, then step back one (intervals are disjoint and sorted).
        auto it = std::upper_bound(
            intervals.begin(), intervals.end(), ulo,
            [](std::uint64_t v, const Interval& iv) { return v < iv.begin; });
        if (it != intervals.begin()) --it;
        for (; it != intervals.end() && it->begin < uhi; ++it) {
          if (it->end > ulo) emit(a, it->chunk);
        }
      }
    }
  }

  if (any_unknown) {
    // Unknown distance: conservatively relate every data-sharing chunk
    // pair of this nest, found via an inverted data-chunk index.
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_bit;
    for (std::uint32_t id : nest_chunks) {
      for (std::uint32_t bit : chunks[id].tag.bits()) {
        by_bit[bit].push_back(id);
      }
    }
    for (auto& [bit, owners] : by_bit) {
      for (std::size_t x = 0; x < owners.size(); ++x) {
        for (std::size_t y = x + 1; y < owners.size(); ++y) {
          emit(owners[x], owners[y]);
        }
      }
    }
  }

  std::vector<ChunkDependence> out;
  out.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) out.push_back(ChunkDependence{src, dst});
  return out;
}

std::vector<IterationChunk> merge_dependent_chunks(
    std::vector<IterationChunk> chunks,
    const std::vector<ChunkDependence>& deps) {
  // Union-find over chunk indices.
  std::vector<std::uint32_t> parent(chunks.size());
  for (std::uint32_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& dep : deps) {
    const std::uint32_t a = find(dep.src);
    const std::uint32_t b = find(dep.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }

  std::vector<IterationChunk> merged;
  std::vector<std::int32_t> slot(chunks.size(), -1);
  for (std::uint32_t i = 0; i < chunks.size(); ++i) {
    const std::uint32_t root = find(i);
    if (slot[root] < 0) {
      slot[root] = static_cast<std::int32_t>(merged.size());
      merged.push_back(std::move(chunks[i]));
    } else {
      merged[static_cast<std::size_t>(slot[root])] =
          merge_chunks(merged[static_cast<std::size_t>(slot[root])],
                       chunks[i]);
    }
  }
  return merged;
}

namespace {

struct Location {
  std::uint32_t client = 0;
  std::uint32_t item = 0;
  bool known = false;
};

std::vector<Location> locate_chunks(const MappingResult& mapping) {
  std::vector<Location> where(mapping.chunk_table.size());
  for (std::uint32_t c = 0; c < mapping.client_work.size(); ++c) {
    const auto& items = mapping.client_work[c];
    for (std::uint32_t k = 0; k < items.size(); ++k) {
      if (items[k].chunk >= 0) {
        where[static_cast<std::size_t>(items[k].chunk)] =
            Location{c, k, true};
      }
    }
  }
  return where;
}

/// Simulates per-client sequential execution under the given cross-client
/// edges; true when every item can eventually run (no wait-for cycle).
bool schedule_is_feasible(const MappingResult& mapping,
                          const std::vector<SyncEdge>& edges) {
  const std::size_t n = mapping.client_work.size();
  std::vector<std::size_t> ptr(n, 0);
  std::vector<std::vector<std::vector<const SyncEdge*>>> incoming(n);
  for (std::size_t c = 0; c < n; ++c) {
    incoming[c].resize(mapping.client_work[c].size());
  }
  for (const auto& e : edges) {
    incoming[e.consumer_client][e.consumer_item].push_back(&e);
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t c = 0; c < n; ++c) {
      while (ptr[c] < mapping.client_work[c].size()) {
        const auto& blockers = incoming[c][ptr[c]];
        const bool ready = std::all_of(
            blockers.begin(), blockers.end(), [&](const SyncEdge* e) {
              return ptr[e->producer_client] > e->producer_item;
            });
        if (!ready) break;
        ++ptr[c];
        progress = true;
      }
    }
  }
  for (std::size_t c = 0; c < n; ++c) {
    if (ptr[c] < mapping.client_work[c].size()) return false;
  }
  return true;
}

std::vector<SyncEdge> cross_client_edges(
    const std::vector<ChunkDependence>& deps,
    const std::vector<Location>& where) {
  std::vector<SyncEdge> edges;
  for (const auto& dep : deps) {
    const auto& src = where[dep.src];
    const auto& dst = where[dep.dst];
    if (!src.known || !dst.known) continue;
    if (src.client == dst.client) continue;
    edges.push_back(SyncEdge{src.client, src.item, dst.client, dst.item});
  }
  return edges;
}

/// Stable-sorts every client's items into rank order (nest, then first
/// rank).  Dependences are oriented along rank order, so this order is
/// always cross-client feasible and free of same-client violations.
void sort_items_by_rank(MappingResult& mapping) {
  for (auto& items : mapping.client_work) {
    std::stable_sort(items.begin(), items.end(),
                     [](const WorkItem& a, const WorkItem& b) {
                       if (a.nest != b.nest) return a.nest < b.nest;
                       return a.ranges.front().begin < b.ranges.front().begin;
                     });
  }
}

/// Stable-sorts every client's items into wavefront order: by the
/// position *within* the outermost loop iteration first, then by the
/// outer iteration.  A client owning the same region across outer
/// (time/sweep) iterations then executes it back to back — the reuse
/// pattern the clustering created — while cross-client halo dependences
/// pipeline like a classic wavefront.
void sort_items_wavefront(MappingResult& mapping,
                          const poly::Program& program) {
  for (auto& items : mapping.client_work) {
    std::stable_sort(
        items.begin(), items.end(),
        [&](const WorkItem& a, const WorkItem& b) {
          if (a.nest != b.nest) return a.nest < b.nest;
          const auto& space = program.nest(a.nest).space;
          const std::uint64_t stride =
              space.depth() <= 1
                  ? 1
                  : space.size() /
                        static_cast<std::uint64_t>(space.loop(0).extent());
          const std::uint64_t ra = a.ranges.front().begin;
          const std::uint64_t rb = b.ranges.front().begin;
          if (ra % stride != rb % stride) return ra % stride < rb % stride;
          return ra < rb;
        });
  }
}

/// Fixes same-client producer-after-consumer violations in place with a
/// bounded bubble pass; `where` is updated to the final positions.
void fix_same_client_violations(MappingResult& mapping,
                                const std::vector<ChunkDependence>& deps,
                                std::vector<Location>& where) {
  for (std::uint32_t c = 0; c < mapping.client_work.size(); ++c) {
    auto& items = mapping.client_work[c];
    bool changed = true;
    std::size_t guard = 0;
    while (changed && guard++ < items.size() * items.size() + 1) {
      changed = false;
      for (const auto& dep : deps) {
        const auto& src = where[dep.src];
        const auto& dst = where[dep.dst];
        if (!src.known || !dst.known) continue;
        if (src.client != c || dst.client != c) continue;
        if (src.item > dst.item) {
          std::swap(items[src.item], items[dst.item]);
          std::swap(where[dep.src].item, where[dep.dst].item);
          changed = true;
        }
      }
    }
  }
}

}  // namespace

void insert_sync_edges(MappingResult& mapping,
                       const std::vector<ChunkDependence>& deps,
                       const poly::Program* program) {
  if (deps.empty()) return;
  MLSC_CHECK(mapping.kind == MapperKind::kInterProcessor,
             "sync insertion requires the inter-processor mapping");

  auto where = locate_chunks(mapping);
  fix_same_client_violations(mapping, deps, where);
  auto edges = cross_client_edges(deps, where);
  if (schedule_is_feasible(mapping, edges)) {
    mapping.sync_edges = std::move(edges);
    return;
  }

  // The scheduler's order deadlocks under the dependences.  Try the
  // wavefront order first (keeps the cross-outer-iteration reuse), then
  // the sequential rank order, which is always feasible.
  if (program != nullptr) {
    sort_items_wavefront(mapping, *program);
    where = locate_chunks(mapping);
    fix_same_client_violations(mapping, deps, where);
    edges = cross_client_edges(deps, where);
    if (schedule_is_feasible(mapping, edges)) {
      mapping.sync_edges = std::move(edges);
      return;
    }
  }

  sort_items_by_rank(mapping);
  where = locate_chunks(mapping);
  edges = cross_client_edges(deps, where);
  MLSC_CHECK(schedule_is_feasible(mapping, edges),
             "rank order must always be feasible");
  mapping.sync_edges = std::move(edges);
}

}  // namespace mlsc::core
