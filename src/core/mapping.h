// The result of iteration-to-processor mapping: per-client ordered work.
//
// All three schemes of the paper's evaluation (original, intra-processor,
// inter-processor) produce a MappingResult; the simulator consumes it
// uniformly.  A WorkItem is a set of iteration positions of one nest
// under one traversal order:
//   - for the original / intra-processor schemes, positions are indices
//     into the (possibly permuted/tiled) traversal sequence and each
//     client gets one contiguous block per nest;
//   - for the inter-processor scheme, each WorkItem is an iteration
//     chunk and positions are lexicographic ranks (identity order).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/iteration_chunk.h"
#include "poly/order.h"

namespace mlsc::core {

enum class MapperKind { kOriginal, kIntraProcessor, kInterProcessor };

const char* mapper_kind_name(MapperKind kind);

struct WorkItem {
  poly::NestId nest = 0;
  poly::IterationOrder order;             // traversal order of positions
  std::vector<poly::LinearRange> ranges;  // positions in that order
  std::uint64_t iterations = 0;

  /// Index into MappingResult::chunk_table for inter-processor items;
  /// -1 for baseline block items.
  std::int32_t chunk = -1;
};

/// A cross-client ordering constraint from a data dependence (§5.4):
/// the consumer item must not start before the producer item completes.
struct SyncEdge {
  std::uint32_t producer_client = 0;
  std::uint32_t producer_item = 0;
  std::uint32_t consumer_client = 0;
  std::uint32_t consumer_item = 0;
};

struct MappingResult {
  MapperKind kind = MapperKind::kOriginal;
  std::string mapper_name;

  /// Iteration chunk table (inter-processor scheme only; empty for the
  /// baselines).  WorkItem::chunk indexes into it.
  std::vector<IterationChunk> chunk_table;

  /// client_work[c] is the ordered list of work client c executes.
  std::vector<std::vector<WorkItem>> client_work;

  /// Synchronization constraints inserted by the dependence extension.
  std::vector<SyncEdge> sync_edges;

  /// True when the local scheduling enhancement (Fig. 15) ordered the
  /// items; false means assignment order (the paper's baseline executes
  /// chunks in unspecified order).
  bool scheduled = false;

  std::size_t num_clients() const { return client_work.size(); }
  std::uint64_t total_iterations() const;
  std::uint64_t client_iterations(std::size_t client) const;

  /// Maximum relative deviation of any client's iteration count from the
  /// mean (0 = perfectly balanced).
  double imbalance() const;

  /// Throws unless, for every (nest, order) pair, the union of all
  /// clients' position ranges is an exact partition of [0, nest size).
  void validate_partition(const poly::Program& program) const;
};

}  // namespace mlsc::core
