// Iteration chunks: the unit of distribution (paper §4.2).
//
// An iteration chunk γΛ is the set of iterations sharing tag Λ.  The set
// is stored as ranges of lexicographic ranks within the owning nest, so a
// chunk can be non-contiguous (the same access pattern recurring) and can
// be split exactly during load balancing.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tag.h"
#include "poly/iteration_space.h"
#include "poly/loop_nest.h"

namespace mlsc::core {

struct IterationChunk {
  poly::NestId nest = 0;
  ChunkTag tag;
  std::vector<poly::LinearRange> ranges;  // normalized, disjoint
  std::uint64_t iterations = 0;           // == total_range_size(ranges)

  /// First rank owned by this chunk (ranges are sorted); used for
  /// deterministic ordering.  Chunk must be non-empty.
  std::uint64_t first_rank() const;
};

/// Splits `chunk` into (head, tail) where head holds exactly
/// `head_iterations` iterations taken from the front ranges.  Both halves
/// keep the original tag (an approximation the paper also makes: the tag
/// describes chunk-level access, and splitting is a balancing measure).
/// head_iterations must be in (0, chunk.iterations).
std::pair<IterationChunk, IterationChunk> split_chunk(
    const IterationChunk& chunk, std::uint64_t head_iterations);

/// Merges b into a (tags unioned, ranges normalized); nests must match.
IterationChunk merge_chunks(const IterationChunk& a, const IterationChunk& b);

}  // namespace mlsc::core
