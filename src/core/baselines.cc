#include "core/baselines.h"

#include <algorithm>

#include "cache/policy.h"
#include "poly/dependence.h"
#include "support/check.h"

namespace mlsc::core {
namespace {

/// True when the permuted distance vector is lexicographically positive
/// (or all-zero), i.e. the permutation preserves the dependence.  A "*"
/// component is an unknown sign: legal only if an earlier permuted loop
/// already carries the dependence strictly.
bool permutation_preserves(const poly::Distance& distance,
                           const std::vector<std::size_t>& perm) {
  for (std::size_t k : perm) {
    const auto& d = distance[k];
    if (!d.has_value()) return false;  // unknown sign first: unsafe
    if (*d > 0) return true;
    if (*d < 0) return false;
  }
  return true;  // loop-independent
}

/// Rectangular tiling hoists every tile loop outermost, which reorders
/// iterations across all loops; it is safe when every dependence has
/// only non-negative, known components (then each traversal coordinate
/// is non-decreasing along the dependence).
bool tiling_is_legal(const std::vector<poly::Dependence>& deps) {
  for (const auto& dep : deps) {
    for (const auto& d : dep.distance) {
      if (!d.has_value() || *d < 0) return false;
    }
  }
  return true;
}

/// Divides positions [0, size) into `clients` contiguous blocks and
/// appends one WorkItem per non-empty block.
void append_blocks(std::vector<std::vector<WorkItem>>& client_work,
                   poly::NestId nest_id, const poly::IterationOrder& order,
                   std::uint64_t size, std::size_t clients) {
  for (std::size_t c = 0; c < clients; ++c) {
    const std::uint64_t begin = size * c / clients;
    const std::uint64_t end = size * (c + 1) / clients;
    if (begin == end) continue;
    WorkItem item;
    item.nest = nest_id;
    item.order = order;
    item.ranges = {poly::LinearRange{begin, end}};
    item.iterations = end - begin;
    client_work[c].push_back(std::move(item));
  }
}

/// Bounded-prefix sample size for the locality model.
constexpr std::uint64_t kCostSampleIterations = 16384;

}  // namespace

MappingResult map_original(const poly::Program& program,
                           std::span<const poly::NestId> nests,
                           std::size_t num_clients) {
  MLSC_CHECK(num_clients > 0, "need at least one client");
  MappingResult result;
  result.kind = MapperKind::kOriginal;
  result.mapper_name = "original";
  result.client_work.resize(num_clients);
  for (poly::NestId nest_id : nests) {
    const auto& nest = program.nest(nest_id);
    append_blocks(result.client_work, nest_id,
                  poly::IterationOrder::identity(nest.depth()),
                  nest.space.size(), num_clients);
  }
  return result;
}

double chunk_locality_cost(const poly::Program& program,
                           const DataSpace& space, const poly::LoopNest& nest,
                           const poly::IterationOrder& order,
                           std::size_t cache_chunks) {
  // "We experimented with different tile sizes and selected the one that
  // performs the best" — the selection metric is an LRU simulation of
  // the client-local storage cache over a traversal prefix, counting
  // misses per iteration.
  MLSC_CHECK(cache_chunks > 0, "locality model needs a cache size");
  auto lru = cache::make_policy(cache::PolicyKind::kLru, cache_chunks);

  poly::OrderWalker walker(nest.space, order);
  std::uint64_t misses = 0;
  std::uint64_t steps = 0;
  while (!walker.done() && steps < kCostSampleIterations) {
    const auto& iter = walker.current();
    for (const auto& ref : nest.refs) {
      const std::uint64_t flat = poly::resolve_element(program, ref, iter);
      const auto span = space.element_chunks(ref.array, flat);
      for (ChunkId c = span.first; c <= span.last; ++c) {
        if (!lru->touch(c)) {
          ++misses;
          lru->insert(c);
        }
      }
    }
    ++steps;
    walker.next();
  }
  if (steps == 0) return 0.0;
  return static_cast<double>(misses) / static_cast<double>(steps);
}

poly::IterationOrder choose_locality_order(
    const poly::Program& program, const DataSpace& space,
    const poly::LoopNest& nest, const IntraProcessorOptions& options) {
  const std::size_t depth = nest.depth();
  MLSC_CHECK(depth >= 1, "nest must have at least one loop");
  MLSC_CHECK(depth <= 6, "permutation search limited to 6-deep nests");

  const std::uint64_t cache_bytes = options.client_cache_bytes > 0
                                        ? options.client_cache_bytes
                                        : 32 * kMiB;
  const std::size_t cache_chunks = std::max<std::size_t>(
      1, static_cast<std::size_t>(cache_bytes / space.chunk_size_bytes()));

  std::vector<std::size_t> perm(depth);
  for (std::size_t k = 0; k < depth; ++k) perm[k] = k;

  // Legality: only dependence-preserving transformations are candidates.
  const auto deps = poly::find_dependences(nest);
  const bool may_tile = tiling_is_legal(deps);

  poly::IterationOrder best = poly::IterationOrder::identity(depth);
  double best_cost =
      chunk_locality_cost(program, space, nest, best, cache_chunks);

  auto consider = [&](const poly::IterationOrder& candidate) {
    const double cost =
        chunk_locality_cost(program, space, nest, candidate, cache_chunks);
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
    }
  };

  std::sort(perm.begin(), perm.end());
  do {
    const bool legal = std::all_of(
        deps.begin(), deps.end(), [&](const poly::Dependence& dep) {
          return permutation_preserves(dep.distance, perm);
        });
    if (!legal) continue;
    poly::IterationOrder candidate;
    candidate.permutation = perm;
    candidate.tile_sizes.assign(depth, 1);
    consider(candidate);
    // Tile the two innermost permuted loops ("blocking to improve
    // temporal reuse in outer loop positions") with each candidate size.
    if (depth >= 2 && may_tile) {
      for (std::int64_t tile : options.tile_candidates) {
        poly::IterationOrder tiled = candidate;
        const std::size_t inner1 = perm[depth - 1];
        const std::size_t inner2 = perm[depth - 2];
        if (nest.space.loop(inner1).extent() > tile) {
          tiled.tile_sizes[inner1] = tile;
        }
        if (nest.space.loop(inner2).extent() > tile) {
          tiled.tile_sizes[inner2] = tile;
        }
        if (!tiled.is_identity()) consider(tiled);
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  return best;
}

MappingResult map_intra_processor(const poly::Program& program,
                                  const DataSpace& space,
                                  std::span<const poly::NestId> nests,
                                  std::size_t num_clients,
                                  const IntraProcessorOptions& options) {
  MLSC_CHECK(num_clients > 0, "need at least one client");
  MappingResult result;
  result.kind = MapperKind::kIntraProcessor;
  result.mapper_name = "intra-processor";
  result.client_work.resize(num_clients);
  for (poly::NestId nest_id : nests) {
    const auto& nest = program.nest(nest_id);
    const auto order =
        choose_locality_order(program, space, nest, options);
    append_blocks(result.client_work, nest_id, order, nest.space.size(),
                  num_clients);
  }
  return result;
}

}  // namespace mlsc::core
