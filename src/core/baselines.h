// The two comparison schemes of the paper's evaluation (§5.1).
//
// original:        iterations ordered lexicographically (the sequential
//                  order) and divided into K contiguous clusters, one per
//                  client node.
//
// intra-processor: state-of-the-art single-node data locality pass —
//                  loop permutation plus iteration-space tiling with the
//                  best-performing tile size from a candidate search —
//                  followed by the same contiguous division.  It
//                  optimizes each client in isolation and is storage
//                  cache hierarchy agnostic.
#pragma once

#include <span>

#include "core/data_space.h"
#include "core/mapping.h"

namespace mlsc::core {

/// The original scheme: lexicographic order, K equal contiguous blocks.
MappingResult map_original(const poly::Program& program,
                           std::span<const poly::NestId> nests,
                           std::size_t num_clients);

struct IntraProcessorOptions {
  /// Cache budget the tiling heuristic targets (the paper tunes tile
  /// sizes for the client-local storage cache).
  std::uint64_t client_cache_bytes = 0;  // 0 = choose tiles by search set
  /// Candidate tile sizes tried per tiled loop.
  std::vector<std::int64_t> tile_candidates{8, 16, 32, 64, 128};
};

/// The intra-processor scheme: per-nest permutation + tiling chosen by an
/// analytic chunk-locality model, then K equal contiguous blocks of the
/// transformed traversal.
MappingResult map_intra_processor(const poly::Program& program,
                                  const DataSpace& space,
                                  std::span<const poly::NestId> nests,
                                  std::size_t num_clients,
                                  const IntraProcessorOptions& options = {});

/// The selection model the intra-processor pass uses: misses per
/// iteration of an LRU client-cache simulation over a traversal prefix
/// (lower is better locality).  Exposed for tests and the ablation
/// bench.  cache_chunks is the simulated client cache size in chunks.
double chunk_locality_cost(const poly::Program& program,
                           const DataSpace& space, const poly::LoopNest& nest,
                           const poly::IterationOrder& order,
                           std::size_t cache_chunks = 512);

/// The order the intra-processor pass would choose for one nest.
poly::IterationOrder choose_locality_order(
    const poly::Program& program, const DataSpace& space,
    const poly::LoopNest& nest, const IntraProcessorOptions& options);

}  // namespace mlsc::core
