#include "core/load_balance.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"
#include "support/log.h"

namespace mlsc::core {

BalanceLimits balance_limits(std::uint64_t total, std::size_t count,
                             double threshold) {
  MLSC_CHECK(count > 0, "limits need at least one cluster");
  MLSC_CHECK(threshold >= 0.0, "negative balance threshold");
  const double ideal = static_cast<double>(total) / static_cast<double>(count);
  BalanceLimits limits;
  // Clamp so that a perfectly balanced partition is always admissible:
  // floor(ideal) and ceil(ideal) must be inside the window.
  limits.lower = std::min(static_cast<std::uint64_t>(std::floor(ideal)),
                          static_cast<std::uint64_t>(ideal * (1.0 - threshold)));
  limits.upper = std::max(static_cast<std::uint64_t>(std::ceil(ideal)),
                          static_cast<std::uint64_t>(ideal * (1.0 + threshold)));
  return limits;
}

namespace {

std::uint64_t total_iterations(const std::vector<Cluster>& clusters) {
  std::uint64_t total = 0;
  for (const auto& c : clusters) total += c.iterations;
  return total;
}

/// Result of scoring a donor's members against a recipient: the
/// best-affinity member that fits whole under `move_max`, and the
/// best-affinity member overall (split when nothing fits).
struct MemberChoice {
  std::uint32_t best_fit = UINT32_MAX;
  std::uint64_t best_fit_dot = 0;
  std::uint32_t best_any = UINT32_MAX;
  std::uint64_t best_any_dot = 0;
};

/// Folds one member into the running choice with the same strict-
/// improvement rules the original serial scan used, so any in-order
/// partition of the member list reduces to the identical winner.
void fold_member(MemberChoice& choice, std::uint32_t member, std::uint64_t d,
                 std::uint64_t move_max,
                 const std::vector<IterationChunk>& chunks) {
  if (chunks[member].iterations <= move_max &&
      (choice.best_fit == UINT32_MAX || d > choice.best_fit_dot ||
       (d == choice.best_fit_dot &&
        chunks[member].iterations > chunks[choice.best_fit].iterations))) {
    choice.best_fit = member;
    choice.best_fit_dot = d;
  }
  if (choice.best_any == UINT32_MAX || d > choice.best_any_dot) {
    choice.best_any = member;
    choice.best_any_dot = d;
  }
}

/// Incrementally maintained affinity scores for the balance loop's
/// current (donor, recipient) pair.  The loop typically keeps the same
/// pair for many consecutive moves, and rescoring every donor member
/// with a galloped tag dot per move made balancing
/// O(moves x members x log) — the dominant cost at bench scale.  The
/// cache fills the dots once per pair and updates them in O(shared
/// positions) per move: when the recipient absorbs a tag, a donor
/// member's dot grows by exactly the number of positions the two tags
/// share, which the bit -> members posting index enumerates directly.
/// All updates are exact integer deltas, so the scan that consumes the
/// cache picks the same member, bit for bit, as a fresh rescan.
class AffinityCache {
 public:
  bool active_for(std::size_t donor, std::size_t recipient) const {
    return donor == donor_ && recipient == recipient_;
  }

  void activate(std::size_t donor, std::size_t recipient,
                const std::vector<Cluster>& clusters,
                const std::vector<IterationChunk>& chunks, ThreadPool* pool) {
    if (active_for(donor, recipient)) return;
    donor_ = donor;
    recipient_ = recipient;
    ++rebuilds_;
    postings_.clear();
    dots_.assign(chunks.size(), 0);
    const auto& members = clusters[donor].members;
    const ClusterTag& target = clusters[recipient].tag;
    if (pool != nullptr && pool->num_threads() > 1 && members.size() >= 512) {
      // Disjoint writes by member id: deterministic regardless of the
      // block schedule.
      const std::size_t grain = pool->default_grain(members.size());
      pool->parallel_chunks(0, members.size(), grain,
                            [&](std::size_t, std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i) {
                                dots_[members[i]] =
                                    target.dot(chunks[members[i]].tag);
                              }
                            });
    } else {
      for (std::uint32_t member : members) {
        dots_[member] = target.dot(chunks[member].tag);
      }
    }
    for (std::uint32_t member : members) {
      for (std::uint32_t b : chunks[member].tag.bits()) {
        postings_[b].push_back(member);
      }
    }
  }

  std::uint64_t dot(std::uint32_t member) const { return dots_[member]; }

  /// The cluster at `recipient` absorbed `arriving` (a whole member's
  /// tag or a split head): every cached dot grows by its overlap with
  /// the arriving tag.  Members that already left the donor pick up
  /// stale increments, but the scan never reads them again.
  void recipient_absorbed(std::size_t recipient, const ChunkTag& arriving) {
    if (recipient != recipient_) return;
    for (std::uint32_t b : arriving.bits()) {
      const auto it = postings_.find(b);
      if (it == postings_.end()) continue;
      for (std::uint32_t member : it->second) ++dots_[member];
    }
  }

  /// The cluster at `donor` gained a freshly split tail chunk: score it
  /// against the cached recipient's current tag and index its bits.
  void donor_gained(std::size_t donor, std::uint32_t member,
                    const std::vector<Cluster>& clusters,
                    const IterationChunk& chunk) {
    if (donor != donor_) return;
    if (dots_.size() <= member) dots_.resize(member + 1, 0);
    dots_[member] = clusters[recipient_].tag.dot(chunk.tag);
    for (std::uint32_t b : chunk.tag.bits()) postings_[b].push_back(member);
  }

  std::size_t rebuilds() const { return rebuilds_; }

 private:
  std::size_t donor_ = SIZE_MAX;
  std::size_t recipient_ = SIZE_MAX;
  std::vector<std::uint64_t> dots_;   // by chunk id, donor members valid
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> postings_;
  std::size_t rebuilds_ = 0;
};

/// Scores the donor against the recipient through the cache: identical
/// winner to dotting every member afresh, O(members) comparisons.
MemberChoice score_members(AffinityCache& cache, std::size_t donor,
                           std::size_t recipient,
                           const std::vector<Cluster>& clusters,
                           const std::vector<IterationChunk>& chunks,
                           std::uint64_t move_max, ThreadPool* pool) {
  cache.activate(donor, recipient, clusters, chunks, pool);
  MemberChoice choice;
  for (std::uint32_t member : clusters[donor].members) {
    fold_member(choice, member, cache.dot(member), move_max, chunks);
  }
  return choice;
}

}  // namespace

bool is_balanced(const std::vector<Cluster>& clusters,
                 const BalanceOptions& options) {
  const auto limits = balance_limits(total_iterations(clusters),
                                     clusters.size(), options.threshold);
  for (const auto& c : clusters) {
    if (c.iterations < limits.lower || c.iterations > limits.upper) {
      return false;
    }
  }
  return true;
}

std::size_t balance_clusters(std::vector<Cluster>& clusters,
                             std::vector<IterationChunk>& chunks,
                             const BalanceOptions& options,
                             const BalanceLimits* explicit_limits,
                             ThreadPool* pool) {
  MLSC_CHECK(!clusters.empty(), "cannot balance an empty cluster set");
  obs::Span span("pipeline.load_balance");
  span.arg("clusters", static_cast<std::uint64_t>(clusters.size()));
  const std::uint64_t total = total_iterations(clusters);
  auto limits = balance_limits(total, clusters.size(), options.threshold);
  if (explicit_limits != nullptr) {
    limits = *explicit_limits;
    // Widen just enough that a partition of this set's actual total is
    // admissible (floor/ceil of the local ideal must be inside).
    limits.lower = std::min(limits.lower, total / clusters.size());
    limits.upper = std::max(
        limits.upper, (total + clusters.size() - 1) / clusters.size());
  }
  std::size_t moves = 0;
  AffinityCache cache;

  for (;;) {
    // Donor: the largest cluster above the upper limit.
    std::size_t donor = clusters.size();
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].iterations > limits.upper &&
          (donor == clusters.size() ||
           clusters[i].iterations > clusters[donor].iterations)) {
        donor = i;
      }
    }
    if (donor == clusters.size()) break;  // everyone within the limits

    // Recipient: the smallest cluster (the paper prefers those below the
    // lower limit; the smallest is always a valid such choice when one
    // exists and degrades gracefully when none does).
    std::size_t recipient = donor == 0 ? 1 : 0;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (i != donor &&
          clusters[i].iterations < clusters[recipient].iterations) {
        recipient = i;
      }
    }

    const std::uint64_t allow_out = clusters[donor].iterations - limits.lower;
    const std::uint64_t allow_in =
        limits.upper - clusters[recipient].iterations;
    const std::uint64_t move_max = std::min(allow_out, allow_in);
    MLSC_CHECK(move_max >= 1,
               "balance cannot make progress (limits "
                   << limits.lower << ".." << limits.upper << ")");

    // Pick the donor member with maximal affinity to the recipient among
    // those that fit whole; otherwise take the best-affinity member and
    // split it so exactly move_max iterations move.
    const MemberChoice choice = score_members(cache, donor, recipient,
                                              clusters, chunks, move_max, pool);

    if (choice.best_fit != UINT32_MAX) {
      const std::uint32_t best_fit = choice.best_fit;
      MLSC_DEBUG("balance evict: member " << best_fit << " ("
                 << chunks[best_fit].iterations << " iters) whole, cluster "
                 << donor << " -> " << recipient);
      clusters[donor].remove_member(best_fit, chunks[best_fit]);
      clusters[recipient].add_member(best_fit, chunks[best_fit]);
      cache.recipient_absorbed(recipient, chunks[best_fit].tag);
    } else {
      const std::uint32_t best_any = choice.best_any;
      MLSC_CHECK(best_any != UINT32_MAX, "donor cluster has no members");
      MLSC_DEBUG("balance evict: member " << best_any << " split, "
                 << move_max << " iters move, cluster " << donor << " -> "
                 << recipient);
      // Split best_any into (move_max, rest): the head moves.
      auto [head, tail] = split_chunk(chunks[best_any], move_max);
      clusters[donor].remove_member(best_any, chunks[best_any]);
      chunks[best_any] = std::move(head);
      chunks.push_back(std::move(tail));
      const auto tail_index = static_cast<std::uint32_t>(chunks.size() - 1);
      clusters[recipient].add_member(best_any, chunks[best_any]);
      clusters[donor].add_member(tail_index, chunks[tail_index]);
      cache.recipient_absorbed(recipient, chunks[best_any].tag);
      cache.donor_gained(donor, tail_index, clusters, chunks[tail_index]);
    }
    ++moves;
    MLSC_CHECK(moves < 100000, "balance loop did not converge");
  }

  // Symmetric pass: pull up clusters below the lower limit.  (The limits
  // are tight around the ideal, so under-full clusters can coexist with
  // donors sitting exactly at the upper limit — the first pass alone
  // leaves them starved.)
  for (;;) {
    std::size_t recipient = clusters.size();
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].iterations < limits.lower &&
          (recipient == clusters.size() ||
           clusters[i].iterations < clusters[recipient].iterations)) {
        recipient = i;
      }
    }
    if (recipient == clusters.size()) break;

    std::size_t donor = recipient == 0 ? 1 : 0;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (i != recipient &&
          clusters[i].iterations > clusters[donor].iterations) {
        donor = i;
      }
    }
    const std::uint64_t need = limits.lower - clusters[recipient].iterations;
    MLSC_CHECK(clusters[donor].iterations > limits.lower,
               "balance lower pass cannot make progress");
    const std::uint64_t move_max =
        std::min(need, clusters[donor].iterations - limits.lower);

    const MemberChoice choice = score_members(cache, donor, recipient,
                                              clusters, chunks, move_max, pool);
    if (choice.best_fit != UINT32_MAX) {
      const std::uint32_t best_fit = choice.best_fit;
      MLSC_DEBUG("balance pull-up: member " << best_fit << " ("
                 << chunks[best_fit].iterations << " iters) whole, cluster "
                 << donor << " -> " << recipient);
      clusters[donor].remove_member(best_fit, chunks[best_fit]);
      clusters[recipient].add_member(best_fit, chunks[best_fit]);
      cache.recipient_absorbed(recipient, chunks[best_fit].tag);
    } else {
      const std::uint32_t best_any = choice.best_any;
      MLSC_CHECK(best_any != UINT32_MAX, "donor cluster has no members");
      MLSC_DEBUG("balance pull-up: member " << best_any << " split, "
                 << move_max << " iters move, cluster " << donor << " -> "
                 << recipient);
      auto [head, tail] = split_chunk(chunks[best_any], move_max);
      clusters[donor].remove_member(best_any, chunks[best_any]);
      chunks[best_any] = std::move(head);
      chunks.push_back(std::move(tail));
      const auto tail_index = static_cast<std::uint32_t>(chunks.size() - 1);
      clusters[recipient].add_member(best_any, chunks[best_any]);
      clusters[donor].add_member(tail_index, chunks[tail_index]);
      cache.recipient_absorbed(recipient, chunks[best_any].tag);
      cache.donor_gained(donor, tail_index, clusters, chunks[tail_index]);
    }
    ++moves;
    MLSC_CHECK(moves < 200000, "balance lower pass did not converge");
  }
  span.arg("moves", static_cast<std::uint64_t>(moves));
  span.arg("affinity_rebuilds", static_cast<std::uint64_t>(cache.rebuilds()));
  MLSC_COUNTER_ADD("pipeline.balance_moves", moves);
  MLSC_COUNTER_ADD("pipeline.balance_affinity_rebuilds", cache.rebuilds());
  return moves;
}

}  // namespace mlsc::core
