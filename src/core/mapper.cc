#include "core/mapper.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "support/check.h"

namespace mlsc::core {

namespace {

/// Materializes the options' thread knob: a live pool when more than one
/// thread is requested, nullptr (serial) otherwise.  The pool lives in
/// `storage` so it tears down when the mapping call returns.
ThreadPool* acquire_pool(std::size_t num_threads,
                         std::optional<ThreadPool>& storage) {
  if (resolve_num_threads(num_threads) <= 1) return nullptr;
  storage.emplace(num_threads);
  return &*storage;
}

}  // namespace

HierarchicalMapper::HierarchicalMapper(const topology::HierarchyTree& tree,
                                       HierarchicalMapperOptions options)
    : tree_(tree), options_(options) {
  MLSC_CHECK(tree_.finalized(), "hierarchy tree must be finalized");
}

MappingResult HierarchicalMapper::map(const poly::Program& program,
                                      const DataSpace& space,
                                      std::span<const poly::NestId> nests) const {
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = acquire_pool(options_.num_threads, pool_storage);
  auto tagging = compute_iteration_chunks(program, space, nests,
                                          options_.tagging, pool);
  return map_chunks_with_pool(std::move(tagging.chunks), pool);
}

MappingResult HierarchicalMapper::map_chunks(
    std::vector<IterationChunk> chunks) const {
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = acquire_pool(options_.num_threads, pool_storage);
  return map_chunks_with_pool(std::move(chunks), pool);
}

MappingResult HierarchicalMapper::map_chunks_with_pool(
    std::vector<IterationChunk> chunks, ThreadPool* pool) const {
  MLSC_CHECK(!chunks.empty(), "no iteration chunks to map");

  // Hierarchical iteration distribution: each tree node owns the set of
  // chunk indices routed to it; the root owns everything.  Walking the
  // levels from the root, every interior node's set is clustered into
  // degree-many clusters and balanced, and each cluster flows to one
  // child ("NC = NC + {{γ} ∀γ ∈ cαp}" — clusters dissolve back to
  // singletons for the next level).
  std::vector<std::vector<std::uint32_t>> owned(tree_.num_nodes());
  owned[tree_.root()].resize(chunks.size());
  std::iota(owned[tree_.root()].begin(), owned[tree_.root()].end(), 0u);

  const BalanceOptions balance{options_.balance_threshold};

  // BThres bounds the imbalance between any two *client nodes* (§4.3), so
  // every level balances against the same global per-client ideal scaled
  // by the number of leaves under each child — per-level tolerances would
  // otherwise compound down the tree.
  std::uint64_t total_iterations = 0;
  for (const auto& chunk : chunks) total_iterations += chunk.iterations;
  std::vector<std::size_t> leaves_under(tree_.num_nodes(), 0);
  for (topology::NodeId client : tree_.clients()) leaves_under[client] = 1;
  for (std::uint32_t level = tree_.num_levels(); level-- > 0;) {
    for (topology::NodeId node : tree_.level_nodes(level)) {
      for (topology::NodeId child : tree_.node(node).children) {
        leaves_under[node] += leaves_under[child];
      }
    }
  }
  const auto global = balance_limits(total_iterations, tree_.num_clients(),
                                     options_.balance_threshold);

  for (std::uint32_t level = 0; level + 1 < tree_.num_levels(); ++level) {
    for (topology::NodeId node : tree_.level_nodes(level)) {
      const auto& children = tree_.node(node).children;
      if (children.empty()) continue;
      auto& set = owned[node];
      if (set.empty()) continue;

      auto clusters = make_singletons(set, chunks);
      cluster_to_count(clusters, children.size(), chunks, pool,
                       options_.clustering);
      // All children of a layered tree have equal leaf counts; scale the
      // global per-client window by that count.
      const auto leaves =
          static_cast<std::uint64_t>(leaves_under[children.front()]);
      const BalanceLimits limits{global.lower * leaves,
                                 global.upper * leaves};
      balance_clusters(clusters, chunks, balance, &limits, pool);

      MLSC_CHECK(clusters.size() == children.size(),
                 "cluster count does not match fan-out");
      for (std::size_t j = 0; j < children.size(); ++j) {
        owned[children[j]] = std::move(clusters[j].members);
      }
      set.clear();
    }
  }

  MappingResult result;
  result.kind = MapperKind::kInterProcessor;
  result.mapper_name = "inter-processor";
  result.client_work.resize(tree_.num_clients());

  for (std::size_t rank = 0; rank < tree_.num_clients(); ++rank) {
    const topology::NodeId client = tree_.clients()[rank];
    auto chunk_ids = owned[client];
    // Deterministic baseline order: by first rank within nest.  The
    // scheduling enhancement (Fig. 15) reorders this.
    std::sort(chunk_ids.begin(), chunk_ids.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (chunks[a].nest != chunks[b].nest) {
                  return chunks[a].nest < chunks[b].nest;
                }
                return chunks[a].first_rank() < chunks[b].first_rank();
              });
    for (std::uint32_t id : chunk_ids) {
      WorkItem item;
      item.nest = chunks[id].nest;
      item.order = poly::IterationOrder::identity(0);  // fixed up below
      item.ranges = chunks[id].ranges;
      item.iterations = chunks[id].iterations;
      item.chunk = static_cast<std::int32_t>(id);
      result.client_work[rank].push_back(std::move(item));
    }
  }

  result.chunk_table = std::move(chunks);
  return result;
}

}  // namespace mlsc::core
