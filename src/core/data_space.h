// The data space and its division into equal-sized data chunks (Fig. 4).
//
// All disk-resident arrays are concatenated into one chunk numbering:
// each array is partitioned separately into chunk_size-byte chunks (no
// chunk spans two arrays), and numbering continues from the last chunk of
// array t to the first chunk of array t+1.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/policy.h"
#include "poly/loop_nest.h"

namespace mlsc::core {

using cache::ChunkId;

class DataSpace {
 public:
  DataSpace(const poly::Program& program, std::uint64_t chunk_size_bytes);

  std::uint64_t chunk_size_bytes() const { return chunk_size_; }

  /// r, the total number of data chunks (tag width).
  std::uint32_t num_chunks() const { return num_chunks_; }

  /// First chunk of a given array in the global numbering.
  ChunkId array_first_chunk(poly::ArrayId array) const;

  /// Number of chunks an array occupies.
  std::uint32_t array_num_chunks(poly::ArrayId array) const;

  /// Inclusive chunk range covered by one array element (an element can
  /// straddle a chunk boundary when its byte range does).
  struct ChunkSpan {
    ChunkId first = 0;
    ChunkId last = 0;
  };
  ChunkSpan element_chunks(poly::ArrayId array,
                           std::uint64_t flat_element) const;

  /// The array that owns a chunk (reverse lookup; linear in array count).
  poly::ArrayId array_of_chunk(ChunkId chunk) const;

 private:
  std::uint64_t chunk_size_;
  std::uint32_t num_chunks_ = 0;
  struct ArrayInfo {
    ChunkId first_chunk = 0;
    std::uint32_t num_chunks = 0;
    std::uint64_t element_size = 0;
  };
  std::vector<ArrayInfo> arrays_;
};

}  // namespace mlsc::core
