#include "core/data_space.h"

#include "support/check.h"

namespace mlsc::core {

DataSpace::DataSpace(const poly::Program& program,
                     std::uint64_t chunk_size_bytes)
    : chunk_size_(chunk_size_bytes) {
  MLSC_CHECK(chunk_size_ > 0, "chunk size must be positive");
  arrays_.reserve(program.arrays.size());
  std::uint64_t next_chunk = 0;
  for (const auto& array : program.arrays) {
    ArrayInfo info;
    info.first_chunk = static_cast<ChunkId>(next_chunk);
    const std::uint64_t bytes = array.size_bytes();
    MLSC_CHECK(bytes > 0, "array " << array.name << " has zero size");
    info.num_chunks =
        static_cast<std::uint32_t>((bytes + chunk_size_ - 1) / chunk_size_);
    info.element_size = array.element_size_bytes;
    next_chunk += info.num_chunks;
    MLSC_CHECK(next_chunk <= static_cast<std::uint64_t>(UINT32_MAX),
               "data space exceeds 2^32 chunks; use a larger chunk size");
    arrays_.push_back(info);
  }
  num_chunks_ = static_cast<std::uint32_t>(next_chunk);
}

ChunkId DataSpace::array_first_chunk(poly::ArrayId array) const {
  MLSC_CHECK(array < arrays_.size(), "unknown array " << array);
  return arrays_[array].first_chunk;
}

std::uint32_t DataSpace::array_num_chunks(poly::ArrayId array) const {
  MLSC_CHECK(array < arrays_.size(), "unknown array " << array);
  return arrays_[array].num_chunks;
}

DataSpace::ChunkSpan DataSpace::element_chunks(
    poly::ArrayId array, std::uint64_t flat_element) const {
  MLSC_DCHECK(array < arrays_.size(), "unknown array " << array);
  const ArrayInfo& info = arrays_[array];
  const std::uint64_t byte_begin = flat_element * info.element_size;
  const std::uint64_t byte_last = byte_begin + info.element_size - 1;
  ChunkSpan span;
  span.first = info.first_chunk +
               static_cast<ChunkId>(byte_begin / chunk_size_);
  span.last =
      info.first_chunk + static_cast<ChunkId>(byte_last / chunk_size_);
  MLSC_DCHECK(span.last < info.first_chunk + info.num_chunks,
              "element beyond the array's chunk range");
  return span;
}

poly::ArrayId DataSpace::array_of_chunk(ChunkId chunk) const {
  for (poly::ArrayId a = 0; a < arrays_.size(); ++a) {
    if (chunk >= arrays_[a].first_chunk &&
        chunk < arrays_[a].first_chunk + arrays_[a].num_chunks) {
      return a;
    }
  }
  MLSC_CHECK(false, "chunk " << chunk << " outside the data space");
  return 0;  // unreachable
}

}  // namespace mlsc::core
