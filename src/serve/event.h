// The online mapping service's event model (DESIGN.md §17).
//
// A serve run consumes a stream of workload-lifecycle events — register,
// depart, scale, fault — each stamped with a virtual arrival time.  The
// wire format is JSON lines (`mlsc-serve-event-v1`): one object per
// line, a schema header line first.  The service journals every decision
// by re-emitting the event line with a "decision" object appended, and
// the parser ignores that decoration, so any journal replays as an event
// stream — same events, same seed, bit-identical end state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/units.h"

namespace mlsc {
class JsonValue;
}  // namespace mlsc

namespace mlsc::serve {

/// Schema tag of event streams and journals; bump on incompatible
/// changes.
inline constexpr const char* kServeEventSchema = "mlsc-serve-event-v1";

enum class EventKind { kRegister, kDepart, kScale, kFault };

const char* event_kind_name(EventKind kind);

struct ServeEvent {
  Nanoseconds at = 0;  // virtual arrival time
  EventKind kind = EventKind::kRegister;

  /// Workload-instance id (register/depart/scale).  Unique among live
  /// instances; register picks it, depart/scale address it.
  std::string id;
  /// Registry workload name, or "irregular" (register only).
  std::string workload;
  double size_factor = 1.0;     // register only
  std::uint32_t clients = 0;    // requested client slices (register/scale)

  /// Compact fault spec (resilience::parse_fault_spec grammar) whose
  /// event times are absolute virtual times (fault only).
  std::string fault_spec;
};

/// Parses one event line's JSON object.  A "decision" member (journal
/// decoration) is ignored.  Throws Error on unknown event types, missing
/// or mistyped fields, non-integral / negative / zero client counts,
/// non-positive size factors, and malformed fault specs.
ServeEvent parse_serve_event(const JsonValue& doc);

/// Parses a JSON-lines event stream: blank lines are skipped, a leading
/// {"schema": ...} header is validated, every other line goes through
/// parse_serve_event, then stream-level rules are enforced — events
/// sorted by `at`, register ids unique among live instances, depart and
/// scale only address live ids.  Errors name the offending line.
std::vector<ServeEvent> parse_event_stream(std::string_view text);

/// Reads and parses an event-stream (or journal) file.  Throws Error
/// when the file cannot be read or fails validation.
std::vector<ServeEvent> load_event_stream(const std::string& path);

/// One JSON event line (no trailing newline, no decision decoration).
std::string event_to_json(const ServeEvent& event);

/// The stream's schema header line (no trailing newline).
std::string stream_header_json(std::uint64_t seed, const std::string& machine);

}  // namespace mlsc::serve
