#include "serve/state.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <sstream>

#include "core/clustering.h"
#include "core/data_space.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"
#include "workloads/registry.h"

namespace mlsc::serve {

bool edge_better(const ForestEdge& x, const ForestEdge& y) {
  if (x.score != y.score) return x.score > y.score;
  if (x.u != y.u) return x.u < y.u;
  return x.v < y.v;
}

namespace {

/// Union-find with path compression; unions attach the larger root under
/// the smaller, so a component's root is always its smallest member id
/// (the invariant the patch builder and fingerprint rely on).
std::uint32_t uf_find(std::vector<std::uint32_t>& parent, std::uint32_t x) {
  std::uint32_t root = x;
  while (parent[root] != root) root = parent[root];
  while (parent[x] != root) {
    const std::uint32_t next = parent[x];
    parent[x] = root;
    x = next;
  }
  return root;
}

bool uf_union(std::vector<std::uint32_t>& parent, std::uint32_t a,
              std::uint32_t b) {
  const std::uint32_t ra = uf_find(parent, a);
  const std::uint32_t rb = uf_find(parent, b);
  if (ra == rb) return false;
  parent[std::max(ra, rb)] = std::min(ra, rb);
  return true;
}

std::string make_data_key(const std::string& name, double size_factor) {
  std::ostringstream out;
  out.precision(17);
  out << name << '@' << size_factor;
  return out.str();
}

/// Erases one id from a sorted posting list.
void posting_erase(std::vector<std::uint32_t>& list, std::uint32_t id) {
  const auto it = std::lower_bound(list.begin(), list.end(), id);
  MLSC_CHECK(it != list.end() && *it == id,
             "posting list missing chunk " << id);
  list.erase(it);
}

}  // namespace

MappingState::MappingState(const sim::MachineConfig& machine,
                           ServeStateOptions options)
    : machine_(machine), tree_(machine.build_tree()), options_(options) {
  load_.assign(tree_.num_clients(), 0);
  client_alive_.assign(tree_.num_clients(), true);
}

std::uint64_t MappingState::chunk_order_key(std::uint32_t chunk) const {
  return core::Cluster::make_order_key(chunks_[chunk]);
}

bool MappingState::chunk_live(std::uint32_t chunk) const {
  return entries_[chunk_owner_[chunk]].live;
}

std::size_t MappingState::find_live(const std::string& id) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].live && entries_[i].id == id) return i;
  }
  return static_cast<std::size_t>(-1);
}

std::size_t MappingState::num_live_workloads() const {
  std::size_t n = 0;
  for (const WorkloadEntry& e : entries_) n += e.live ? 1 : 0;
  return n;
}

std::size_t MappingState::num_alive_clients() const {
  std::size_t n = 0;
  for (bool a : client_alive_) n += a ? 1 : 0;
  return n;
}

std::size_t MappingState::standing_chunks() const {
  std::size_t n = 0;
  for (const WorkloadEntry& e : entries_) {
    if (e.live) n += e.num_chunks;
  }
  return n;
}

std::uint64_t MappingState::total_load() const {
  std::uint64_t total = 0;
  for (std::uint64_t l : load_) total += l;
  return total;
}

std::size_t MappingState::cut_target() const {
  const std::size_t live = standing_chunks();
  if (live == 0) return 1;
  std::size_t requested = 0;
  for (const WorkloadEntry& e : entries_) {
    if (e.live) requested += e.requested_clients;
  }
  return std::clamp<std::size_t>(requested, 1, live);
}

double MappingState::imbalance() const {
  std::uint64_t total = 0;
  std::size_t alive = 0;
  for (std::size_t r = 0; r < load_.size(); ++r) {
    if (!client_alive_[r]) continue;
    total += load_[r];
    ++alive;
  }
  if (alive == 0 || total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(alive);
  double worst = 0.0;
  for (std::size_t r = 0; r < load_.size(); ++r) {
    if (!client_alive_[r]) continue;
    worst = std::max(worst,
                     std::abs(static_cast<double>(load_[r]) - mean) / mean);
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Registration

std::size_t MappingState::register_workload(const std::string& id,
                                            const std::string& name,
                                            double size_factor,
                                            std::uint32_t clients,
                                            ThreadPool* pool,
                                            DeltaStats* stats) {
  MLSC_CHECK(clients >= 1, "register needs at least one client");
  MLSC_CHECK(find_live(id) == static_cast<std::size_t>(-1),
             "workload id '" << id << "' is already live");

  obs::Span span("pipeline.serve_register");
  span.arg("standing_chunks", static_cast<std::uint64_t>(standing_chunks()));

  WorkloadEntry entry;
  entry.id = id;
  entry.name = name;
  entry.size_factor = size_factor;
  entry.requested_clients = clients;
  entry.live = true;
  entry.workload = workloads::make_workload(name, size_factor);

  // Tag — or copy a live sibling's chunk table when the data key is
  // already standing (tagging is deterministic, so the copy is exactly
  // what a recompute would produce).
  const std::string key = make_data_key(name, size_factor);
  std::vector<core::IterationChunk> tagged;
  std::uint32_t num_data_chunks = 0;
  std::size_t sibling = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].live && entries_[i].name == name &&
        entries_[i].size_factor == size_factor) {
      sibling = i;
      break;
    }
  }
  if (sibling != static_cast<std::size_t>(-1)) {
    const WorkloadEntry& sib = entries_[sibling];
    tagged.assign(chunks_.begin() + sib.first_chunk,
                  chunks_.begin() + sib.first_chunk + sib.num_chunks);
    num_data_chunks = sib.num_data_chunks;
    entry.total_iterations = sib.total_iterations;
  } else {
    const core::DataSpace space(entry.workload.program,
                                machine_.chunk_size_bytes);
    std::vector<poly::NestId> nests(entry.workload.program.nests.size());
    std::iota(nests.begin(), nests.end(), 0u);
    core::TaggingResult result = core::compute_iteration_chunks(
        entry.workload.program, space, nests, options_.tagging, pool);
    tagged = std::move(result.chunks);
    num_data_chunks = result.num_data_chunks;
    entry.total_iterations = result.total_iterations;
  }

  auto [it, inserted] =
      data_keys_.try_emplace(key, DataKey{next_tag_offset_, num_data_chunks, 0});
  if (inserted) {
    next_tag_offset_ += num_data_chunks;
  } else {
    MLSC_CHECK(it->second.num_data_chunks == num_data_chunks,
               "data key '" << key << "' changed tag width");
  }
  it->second.live_instances += 1;
  entry.tag_offset = it->second.tag_offset;
  entry.num_data_chunks = num_data_chunks;

  entry.first_chunk = static_cast<std::uint32_t>(chunks_.size());
  entry.num_chunks = static_cast<std::uint32_t>(tagged.size());
  const std::uint32_t widx = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(std::move(entry));
  const WorkloadEntry& e = entries_.back();

  chunks_.insert(chunks_.end(), tagged.begin(), tagged.end());
  chunk_owner_.resize(chunks_.size(), widx);
  cluster_of_chunk_.resize(chunks_.size(), kUnplaced);
  parent_.reserve(chunks_.size());
  for (std::uint32_t g = e.first_chunk; g < chunks_.size(); ++g) {
    parent_.push_back(g);
  }

  // Post the new chunks.  Global ids grow monotonically, so push_back
  // keeps every list ascending.
  std::vector<std::uint32_t> rows;
  rows.reserve(e.num_chunks);
  for (std::uint32_t g = e.first_chunk; g < chunks_.size(); ++g) {
    rows.push_back(g);
    for (std::uint32_t bit : chunks_[g].tag.bits()) {
      postings_[e.tag_offset + bit].push_back(g);
    }
  }

  // Score only the arrival's rows and hook them into the standing
  // forest — the delta path's work is proportional to the arrival.
  std::uint64_t scored = 0;
  std::vector<ForestEdge> edges = score_rows(rows, pool, &scored);
  if (stats != nullptr) stats->scored_pairs += scored;
  hook_edges(std::move(edges), stats);

  span.arg("new_chunks", static_cast<std::uint64_t>(e.num_chunks));
  span.arg("scored_pairs", scored);
  span.end();
  MLSC_COUNTER_ADD("pipeline.serve_scored_pairs", scored);
  return widx;
}

std::vector<ForestEdge> MappingState::score_rows(
    const std::vector<std::uint32_t>& rows, ThreadPool* pool,
    std::uint64_t* scored) const {
  const std::size_t n = chunks_.size();
  std::vector<std::vector<ForestEdge>> per_row(rows.size());
  auto score_range = [&](std::size_t lo, std::size_t hi) {
    thread_local std::vector<std::uint64_t> acc;
    thread_local std::vector<std::uint32_t> touched;
    if (acc.size() < n) acc.resize(n, 0);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t a = rows[i];
      const std::uint64_t offset = entries_[chunk_owner_[a]].tag_offset;
      touched.clear();
      for (std::uint32_t bit : chunks_[a].tag.bits()) {
        const auto it = postings_.find(offset + bit);
        if (it == postings_.end()) continue;
        for (const std::uint32_t b : it->second) {
          if (b >= a) break;  // posting lists are id-ascending
          if (acc[b] == 0) touched.push_back(b);
          acc[b] += 1;
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& out = per_row[i];
      out.reserve(touched.size());
      for (const std::uint32_t b : touched) {
        out.push_back(ForestEdge{static_cast<double>(acc[b]), b, a});
        acc[b] = 0;  // keep the scratch all-zero between rows
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && rows.size() >= 64) {
    pool->parallel_for(0, rows.size(), pool->default_grain(rows.size()),
                       score_range);
  } else {
    score_range(0, rows.size());
  }

  std::size_t total = 0;
  for (const auto& row : per_row) total += row.size();
  if (scored != nullptr) *scored += total;
  std::vector<ForestEdge> edges;
  edges.reserve(total);
  for (auto& row : per_row) {
    edges.insert(edges.end(), row.begin(), row.end());
  }
  return edges;
}

void MappingState::hook_edges(std::vector<ForestEdge> edges,
                              DeltaStats* stats) {
  // Borůvka rounds against the *standing* union-find: every component
  // incident to a candidate edge picks its best edge under the strict
  // (score, u, v) order, picks are hooked in ascending component order,
  // intra-component edges are compacted away.
  while (!edges.empty()) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [&](const ForestEdge& e) {
                                 return uf_find(parent_, e.u) ==
                                        uf_find(parent_, e.v);
                               }),
                edges.end());
    if (edges.empty()) break;
    if (stats != nullptr) stats->rounds += 1;

    std::unordered_map<std::uint32_t, std::size_t> best;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      for (const std::uint32_t end : {edges[i].u, edges[i].v}) {
        const std::uint32_t root = uf_find(parent_, end);
        const auto it = best.find(root);
        if (it == best.end()) {
          best.emplace(root, i);
        } else if (edge_better(edges[i], edges[it->second])) {
          it->second = i;
        }
      }
    }
    std::vector<std::uint32_t> comps;
    comps.reserve(best.size());
    for (const auto& [root, idx] : best) comps.push_back(root);
    std::sort(comps.begin(), comps.end());

    bool hooked = false;
    for (const std::uint32_t root : comps) {
      const ForestEdge& e = edges[best[root]];
      if (uf_union(parent_, e.u, e.v)) {
        forest_.push_back(e);
        hooked = true;
        if (stats != nullptr) stats->forest_hooks += 1;
      }
    }
    if (!hooked) break;
  }
  MLSC_COUNTER_ADD("pipeline.serve_forest_edges", forest_.size());
}

// ---------------------------------------------------------------------------
// Departure / scaling

void MappingState::depart_workload(std::size_t widx) {
  WorkloadEntry& e = entries_[widx];
  MLSC_CHECK(e.live, "depart of a non-live workload entry");
  e.live = false;

  const auto key_it = data_keys_.find(make_data_key(e.name, e.size_factor));
  MLSC_CHECK(key_it != data_keys_.end() && key_it->second.live_instances > 0,
             "data key bookkeeping out of sync");
  key_it->second.live_instances -= 1;

  const std::uint32_t lo = e.first_chunk;
  const std::uint32_t hi = e.first_chunk + e.num_chunks;

  for (std::uint32_t g = lo; g < hi; ++g) {
    for (std::uint32_t bit : chunks_[g].tag.bits()) {
      const std::uint64_t k = e.tag_offset + bit;
      const auto it = postings_.find(k);
      MLSC_CHECK(it != postings_.end(), "posting key missing on depart");
      posting_erase(it->second, g);
      if (it->second.empty()) postings_.erase(it);
    }
  }

  forest_.erase(std::remove_if(forest_.begin(), forest_.end(),
                               [&](const ForestEdge& edge) {
                                 return (edge.u >= lo && edge.u < hi) ||
                                        (edge.v >= lo && edge.v < hi);
                               }),
                forest_.end());
  rebuild_parent_from_forest();

  // Strip the departing chunks out of the standing clusters; placements
  // of survivors stay (the cheap path — callers escalate per policy).
  for (auto& cluster : clusters_) {
    std::uint64_t removed = 0;
    for (const std::uint32_t m : cluster.members) {
      if (m >= lo && m < hi) removed += chunks_[m].iterations;
    }
    if (removed == 0) continue;
    cluster.members.erase(
        std::remove_if(cluster.members.begin(), cluster.members.end(),
                       [&](std::uint32_t m) { return m >= lo && m < hi; }),
        cluster.members.end());
    MLSC_CHECK(cluster.iterations >= removed, "cluster size underflow");
    cluster.iterations -= removed;
    if (cluster.client != kUnplaced) {
      MLSC_CHECK(load_[cluster.client] >= removed, "client load underflow");
      load_[cluster.client] -= removed;
    }
  }
  clusters_.erase(std::remove_if(clusters_.begin(), clusters_.end(),
                                 [](const ServeCluster& c) {
                                   return c.members.empty();
                                 }),
                  clusters_.end());
  std::fill(cluster_of_chunk_.begin(), cluster_of_chunk_.end(), kUnplaced);
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (const std::uint32_t m : clusters_[c].members) {
      cluster_of_chunk_[m] = static_cast<std::uint32_t>(c);
    }
  }
}

void MappingState::set_requested_clients(std::size_t widx,
                                         std::uint32_t clients) {
  MLSC_CHECK(clients >= 1, "scale needs at least one client");
  MLSC_CHECK(entries_[widx].live, "scale of a non-live workload entry");
  entries_[widx].requested_clients = clients;
}

void MappingState::set_baseline(std::size_t widx,
                                const cache::CacheStats& l2) {
  entries_[widx].baseline_l2 = l2;
  entries_[widx].has_baseline = true;
}

void MappingState::rebuild_parent_from_forest() {
  for (std::uint32_t i = 0; i < parent_.size(); ++i) parent_[i] = i;
  for (const ForestEdge& e : forest_) uf_union(parent_, e.u, e.v);
}

// ---------------------------------------------------------------------------
// Patch path

PatchPlan MappingState::build_patch(std::size_t widx) const {
  const WorkloadEntry& e = entries_[widx];
  MLSC_CHECK(e.live, "patch for a non-live workload entry");
  const std::uint32_t lo = e.first_chunk;
  const std::uint32_t hi = e.first_chunk + e.num_chunks;

  PatchPlan plan;
  std::unordered_map<std::uint32_t, std::size_t> new_slot;   // root -> idx
  std::unordered_map<std::uint32_t, std::size_t> append_slot;  // cluster
  for (std::uint32_t g = lo; g < hi; ++g) {
    const std::uint32_t root = uf_find(parent_, g);
    if (root < lo) {
      // Hooked onto a standing component: append to the cluster holding
      // the component's root (its smallest member — deterministic when
      // the cut split the component across several clusters).
      const std::uint32_t cluster = cluster_of_chunk_[root];
      MLSC_CHECK(cluster != kUnplaced, "standing chunk without a cluster");
      const auto it = append_slot.find(cluster);
      std::size_t idx;
      if (it == append_slot.end()) {
        idx = plan.appends.size();
        append_slot.emplace(cluster, idx);
        plan.appends.push_back(PatchPlan::Append{cluster, {}, 0});
      } else {
        idx = it->second;
      }
      plan.appends[idx].members.push_back(g);
      plan.appends[idx].iterations += chunks_[g].iterations;
    } else {
      const auto it = new_slot.find(root);
      std::size_t idx;
      if (it == new_slot.end()) {
        idx = plan.new_clusters.size();
        new_slot.emplace(root, idx);
        plan.new_clusters.push_back(ServeCluster{});
      } else {
        idx = it->second;
      }
      plan.new_clusters[idx].members.push_back(g);
      plan.new_clusters[idx].iterations += chunks_[g].iterations;
    }
  }
  std::sort(plan.appends.begin(), plan.appends.end(),
            [](const PatchPlan::Append& x, const PatchPlan::Append& y) {
              return x.cluster < y.cluster;
            });
  std::sort(plan.new_clusters.begin(), plan.new_clusters.end(),
            [](const ServeCluster& x, const ServeCluster& y) {
              return x.members.front() < y.members.front();
            });

  // More purely-new components than the instance asked clients for:
  // merge rank-adjacent (order_key) smallest-combined-first, the offline
  // cut's leftover rule.
  if (plan.new_clusters.size() > e.requested_clients) {
    struct Slot {
      std::uint64_t order_key;
      std::size_t idx;  // into plan.new_clusters
    };
    std::vector<Slot> slots;
    slots.reserve(plan.new_clusters.size());
    for (std::size_t i = 0; i < plan.new_clusters.size(); ++i) {
      std::uint64_t key = UINT64_MAX;
      for (const std::uint32_t m : plan.new_clusters[i].members) {
        key = std::min(key, chunk_order_key(m));
      }
      slots.push_back(Slot{key, i});
    }
    std::sort(slots.begin(), slots.end(), [&](const Slot& x, const Slot& y) {
      if (x.order_key != y.order_key) return x.order_key < y.order_key;
      return plan.new_clusters[x.idx].members.front() <
             plan.new_clusters[y.idx].members.front();
    });
    while (slots.size() > e.requested_clients) {
      std::size_t pos = 0;
      std::uint64_t best_size = UINT64_MAX;
      for (std::size_t p = 0; p + 1 < slots.size(); ++p) {
        const std::uint64_t combined =
            plan.new_clusters[slots[p].idx].iterations +
            plan.new_clusters[slots[p + 1].idx].iterations;
        if (combined < best_size) {
          best_size = combined;
          pos = p;
        }
      }
      ServeCluster& into = plan.new_clusters[slots[pos].idx];
      ServeCluster& from = plan.new_clusters[slots[pos + 1].idx];
      std::vector<std::uint32_t> merged;
      merged.reserve(into.members.size() + from.members.size());
      std::merge(into.members.begin(), into.members.end(),
                 from.members.begin(), from.members.end(),
                 std::back_inserter(merged));
      into.members = std::move(merged);
      into.iterations += from.iterations;
      from.members.clear();
      from.iterations = 0;
      slots.erase(slots.begin() + pos + 1);
    }
    plan.new_clusters.erase(
        std::remove_if(plan.new_clusters.begin(), plan.new_clusters.end(),
                       [](const ServeCluster& c) {
                         return c.members.empty();
                       }),
        plan.new_clusters.end());
  }
  return plan;
}

void MappingState::place_cluster(std::uint32_t cluster_index) {
  MLSC_CHECK(num_alive_clients() > 0, "no alive clients to place on");
  std::size_t pick = static_cast<std::size_t>(-1);
  for (std::size_t r = 0; r < load_.size(); ++r) {
    if (!client_alive_[r]) continue;
    if (pick == static_cast<std::size_t>(-1) || load_[r] < load_[pick]) {
      pick = r;
    }
  }
  ServeCluster& c = clusters_[cluster_index];
  c.client = static_cast<std::uint32_t>(pick);
  load_[pick] += c.iterations;
}

void MappingState::apply_patch(const PatchPlan& plan) {
  for (const PatchPlan::Append& ap : plan.appends) {
    ServeCluster& c = clusters_[ap.cluster];
    const std::size_t mid = c.members.size();
    c.members.insert(c.members.end(), ap.members.begin(), ap.members.end());
    std::inplace_merge(c.members.begin(), c.members.begin() + mid,
                       c.members.end());
    c.iterations += ap.iterations;
    if (c.client != kUnplaced) load_[c.client] += ap.iterations;
    for (const std::uint32_t m : ap.members) {
      cluster_of_chunk_[m] = ap.cluster;
    }
  }
  // New clusters go in heaviest-first, each onto the least-loaded alive
  // client (ties to the smaller rank).
  std::vector<std::size_t> order(plan.new_clusters.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (plan.new_clusters[x].iterations != plan.new_clusters[y].iterations) {
      return plan.new_clusters[x].iterations > plan.new_clusters[y].iterations;
    }
    return x < y;
  });
  for (const std::size_t i : order) {
    clusters_.push_back(plan.new_clusters[i]);
    const auto ci = static_cast<std::uint32_t>(clusters_.size() - 1);
    clusters_.back().client = kUnplaced;
    for (const std::uint32_t m : clusters_.back().members) {
      cluster_of_chunk_[m] = ci;
    }
    place_cluster(ci);
  }
}

double MappingState::simulate_patch(const PatchPlan& plan) const {
  std::vector<std::uint64_t> loads = load_;
  for (const PatchPlan::Append& ap : plan.appends) {
    const ServeCluster& c = clusters_[ap.cluster];
    if (c.client != kUnplaced) loads[c.client] += ap.iterations;
  }
  std::vector<std::size_t> order(plan.new_clusters.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (plan.new_clusters[x].iterations != plan.new_clusters[y].iterations) {
      return plan.new_clusters[x].iterations > plan.new_clusters[y].iterations;
    }
    return x < y;
  });
  for (const std::size_t i : order) {
    std::size_t pick = static_cast<std::size_t>(-1);
    for (std::size_t r = 0; r < loads.size(); ++r) {
      if (!client_alive_[r]) continue;
      if (pick == static_cast<std::size_t>(-1) || loads[r] < loads[pick]) {
        pick = r;
      }
    }
    if (pick == static_cast<std::size_t>(-1)) break;
    loads[pick] += plan.new_clusters[i].iterations;
  }

  std::uint64_t total = 0;
  std::size_t alive = 0;
  for (std::size_t r = 0; r < loads.size(); ++r) {
    if (!client_alive_[r]) continue;
    total += loads[r];
    ++alive;
  }
  if (alive == 0 || total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(alive);
  double worst = 0.0;
  for (std::size_t r = 0; r < loads.size(); ++r) {
    if (!client_alive_[r]) continue;
    worst = std::max(worst,
                     std::abs(static_cast<double>(loads[r]) - mean) / mean);
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Partial / full remap

void MappingState::recut_all() {
  obs::Span span("pipeline.serve_recut");
  const std::size_t target = cut_target();
  span.arg("target", static_cast<std::uint64_t>(target));

  std::vector<std::uint32_t> alive_chunks;
  std::uint64_t total_iterations = 0;
  for (std::uint32_t g = 0; g < chunks_.size(); ++g) {
    if (!chunk_live(g)) continue;
    alive_chunks.push_back(g);
    total_iterations += chunks_[g].iterations;
  }
  clusters_.clear();
  std::fill(cluster_of_chunk_.begin(), cluster_of_chunk_.end(), kUnplaced);
  load_.assign(tree_.num_clients(), 0);
  if (alive_chunks.empty()) {
    span.end();
    return;
  }

  // Replay the standing forest's edges best-first into a scratch
  // union-find, balance-capped — the offline cut, verbatim semantics.
  std::vector<ForestEdge> edges = forest_;
  std::sort(edges.begin(), edges.end(), edge_better);
  std::vector<std::uint32_t> parent(chunks_.size());
  std::iota(parent.begin(), parent.end(), 0u);
  std::vector<std::uint64_t> comp_iterations(chunks_.size(), 0);
  for (const std::uint32_t g : alive_chunks) {
    comp_iterations[g] = chunks_[g].iterations;
  }
  const bool capped = options_.cut_balance_slack >= 0.0;
  const auto cap = static_cast<std::uint64_t>(
      static_cast<double>(total_iterations) / static_cast<double>(target) *
      (1.0 + options_.cut_balance_slack));
  std::size_t components = alive_chunks.size();
  for (const ForestEdge& e : edges) {
    if (components <= target) break;
    const std::uint32_t ru = uf_find(parent, e.u);
    const std::uint32_t rv = uf_find(parent, e.v);
    MLSC_CHECK(ru != rv, "standing forest edge formed a cycle");
    if (capped && comp_iterations[ru] + comp_iterations[rv] > cap) continue;
    const std::uint64_t merged = comp_iterations[ru] + comp_iterations[rv];
    uf_union(parent, ru, rv);
    comp_iterations[std::min(ru, rv)] = merged;
    --components;
  }

  // Leftovers: merge rank-adjacent (order_key) smallest-combined-first.
  if (components > target) {
    struct Comp {
      std::uint32_t root;
      std::uint64_t order_key;
      std::uint64_t iterations;
    };
    std::unordered_map<std::uint32_t, std::size_t> slot;
    std::vector<Comp> comps;
    comps.reserve(components);
    for (const std::uint32_t g : alive_chunks) {
      const std::uint32_t root = uf_find(parent, g);
      const auto it = slot.find(root);
      if (it == slot.end()) {
        slot.emplace(root, comps.size());
        comps.push_back(Comp{root, chunk_order_key(g), chunks_[g].iterations});
      } else {
        Comp& c = comps[it->second];
        c.order_key = std::min(c.order_key, chunk_order_key(g));
        c.iterations += chunks_[g].iterations;
      }
    }
    std::sort(comps.begin(), comps.end(), [](const Comp& x, const Comp& y) {
      if (x.order_key != y.order_key) return x.order_key < y.order_key;
      return x.root < y.root;
    });
    while (comps.size() > target) {
      std::size_t pos = 0;
      std::uint64_t best_size = UINT64_MAX;
      for (std::size_t p = 0; p + 1 < comps.size(); ++p) {
        const std::uint64_t combined =
            comps[p].iterations + comps[p + 1].iterations;
        if (combined < best_size) {
          best_size = combined;
          pos = p;
        }
      }
      uf_union(parent, comps[pos].root, comps[pos + 1].root);
      comps[pos].root = std::min(comps[pos].root, comps[pos + 1].root);
      comps[pos].iterations += comps[pos + 1].iterations;
      comps.erase(comps.begin() + pos + 1);
    }
  }

  // Materialize ascending by root (== smallest member), members
  // ascending, then place every cluster heaviest-first least-loaded.
  std::unordered_map<std::uint32_t, std::size_t> group;
  for (const std::uint32_t g : alive_chunks) {
    const std::uint32_t root = uf_find(parent, g);
    const auto it = group.find(root);
    std::size_t idx;
    if (it == group.end()) {
      // alive_chunks ascends and the root is the component's smallest
      // member, so first sight of a root is the root itself — clusters
      // come out ascending by root.
      idx = clusters_.size();
      group.emplace(root, idx);
      clusters_.push_back(ServeCluster{});
    } else {
      idx = it->second;
    }
    clusters_[idx].members.push_back(g);
    clusters_[idx].iterations += chunks_[g].iterations;
    cluster_of_chunk_[g] = static_cast<std::uint32_t>(idx);
  }
  MLSC_CHECK(clusters_.size() == target,
             "recut produced " << clusters_.size() << " clusters, wanted "
                               << target);

  std::vector<std::size_t> order(clusters_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (clusters_[x].iterations != clusters_[y].iterations) {
      return clusters_[x].iterations > clusters_[y].iterations;
    }
    return x < y;
  });
  for (const std::size_t i : order) {
    place_cluster(static_cast<std::uint32_t>(i));
  }
  span.arg("clusters", static_cast<std::uint64_t>(clusters_.size()));
  span.end();
}

void MappingState::rebuild_all(ThreadPool* pool, DeltaStats* stats) {
  obs::Span span("pipeline.serve_rebuild");
  for (std::uint32_t i = 0; i < parent_.size(); ++i) parent_[i] = i;
  forest_.clear();

  std::vector<std::uint32_t> rows;
  for (std::uint32_t g = 0; g < chunks_.size(); ++g) {
    if (chunk_live(g)) rows.push_back(g);
  }
  std::uint64_t scored = 0;
  std::vector<ForestEdge> edges = score_rows(rows, pool, &scored);
  if (stats != nullptr) stats->scored_pairs += scored;
  hook_edges(std::move(edges), stats);
  span.arg("rows", static_cast<std::uint64_t>(rows.size()));
  span.arg("scored_pairs", scored);
  span.end();
  MLSC_COUNTER_ADD("pipeline.serve_scored_pairs", scored);
  recut_all();
}

// ---------------------------------------------------------------------------
// Faults

void MappingState::apply_faults(const resilience::FaultSchedule& schedule) {
  for (const resilience::FaultEvent& ev : schedule.events) faults_.add(ev);
  if (schedule.seed != 0) faults_.seed = schedule.seed;

  std::vector<bool> alive(tree_.num_clients(), true);
  for (const resilience::FaultEvent& ev : faults_.unrecovered_fail_stops()) {
    if (ev.level != 1) continue;  // only compute-level kills a client
    for (const topology::NodeId node : resolve_fault_targets(tree_, ev)) {
      alive[tree_.client_rank(node)] = false;
    }
  }
  client_alive_ = alive;
}

std::size_t MappingState::replace_orphans() {
  std::vector<std::uint32_t> orphans;
  for (std::uint32_t c = 0; c < clusters_.size(); ++c) {
    const std::uint32_t client = clusters_[c].client;
    if (client != kUnplaced && !client_alive_[client]) {
      MLSC_CHECK(load_[client] >= clusters_[c].iterations,
                 "client load underflow");
      load_[client] -= clusters_[c].iterations;
      clusters_[c].client = kUnplaced;
      orphans.push_back(c);
    }
  }
  std::sort(orphans.begin(), orphans.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              if (clusters_[x].iterations != clusters_[y].iterations) {
                return clusters_[x].iterations > clusters_[y].iterations;
              }
              return x < y;
            });
  for (const std::uint32_t c : orphans) place_cluster(c);
  return orphans.size();
}

resilience::FaultSchedule MappingState::effective_faults() const {
  // Squash the cumulative history to what is in effect *now*: per-target
  // last state wins, surviving events re-stamped at t=0 so a drift
  // replay starts under today's conditions.
  struct TargetState {
    int mode = 0;  // 0 healthy, 1 failed, 2 degraded
    double latency_factor = 1.0;
    double capacity_divisor = 1.0;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, TargetState> targets;
  double disk_rate = 0.0;
  double net_rate = 0.0;
  const auto level_width = [&](std::uint32_t level) -> std::uint32_t {
    switch (level) {
      case 1:
        return static_cast<std::uint32_t>(machine_.clients);
      case 2:
        return static_cast<std::uint32_t>(machine_.io_nodes);
      case 3:
        return static_cast<std::uint32_t>(machine_.storage_nodes);
      default:
        return 0;
    }
  };
  for (const resilience::FaultEvent& ev : faults_.events) {
    switch (ev.kind) {
      case resilience::FaultKind::kFailStop:
      case resilience::FaultKind::kDegrade:
      case resilience::FaultKind::kRecover: {
        const std::uint32_t width = level_width(ev.level);
        const std::uint32_t first =
            ev.node_index < 0 ? 0 : static_cast<std::uint32_t>(ev.node_index);
        const std::uint32_t last =
            ev.node_index < 0 ? width : first + 1;
        for (std::uint32_t idx = first; idx < last && idx < width; ++idx) {
          TargetState& st = targets[{ev.level, idx}];
          if (ev.kind == resilience::FaultKind::kFailStop) {
            st = TargetState{1, 1.0, 1.0};
          } else if (ev.kind == resilience::FaultKind::kRecover) {
            st = TargetState{0, 1.0, 1.0};
          } else {
            st = TargetState{2, ev.latency_factor, ev.capacity_divisor};
          }
        }
        break;
      }
      case resilience::FaultKind::kTransient:
        disk_rate = ev.disk_error_rate;
        net_rate = ev.net_error_rate;
        break;
      case resilience::FaultKind::kStall:
        break;  // stalls are instantaneous; nothing stays in effect
    }
  }

  resilience::FaultSchedule out;
  out.seed = faults_.seed;
  for (const auto& [key, st] : targets) {
    if (st.mode == 0) continue;
    resilience::FaultEvent ev;
    ev.at = 0;
    ev.level = key.first;
    ev.node_index = static_cast<std::int32_t>(key.second);
    if (st.mode == 1) {
      ev.kind = resilience::FaultKind::kFailStop;
    } else {
      ev.kind = resilience::FaultKind::kDegrade;
      ev.latency_factor = st.latency_factor;
      ev.capacity_divisor = st.capacity_divisor;
    }
    out.add(ev);
  }
  if (disk_rate > 0.0 || net_rate > 0.0) {
    resilience::FaultEvent ev;
    ev.at = 0;
    ev.kind = resilience::FaultKind::kTransient;
    ev.disk_error_rate = disk_rate;
    ev.net_error_rate = net_rate;
    out.add(ev);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Drift-replay mapping

core::MappingResult MappingState::entry_mapping(
    std::size_t widx, std::size_t sample_clients) const {
  const WorkloadEntry& e = entries_[widx];
  MLSC_CHECK(e.live, "mapping of a non-live workload entry");

  core::MappingResult result;
  result.kind = core::MapperKind::kInterProcessor;
  result.mapper_name = "serve-solo";
  result.client_work.resize(tree_.num_clients());
  result.chunk_table.assign(chunks_.begin() + e.first_chunk,
                            chunks_.begin() + e.first_chunk + e.num_chunks);

  // Group this entry's chunks by the client their standing cluster sits
  // on, in the mapper's deterministic (nest, first_rank) item order.
  std::vector<std::uint32_t> locals(e.num_chunks);
  std::iota(locals.begin(), locals.end(), 0u);
  std::sort(locals.begin(), locals.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const core::IterationChunk& ca = result.chunk_table[a];
              const core::IterationChunk& cb = result.chunk_table[b];
              if (ca.nest != cb.nest) return ca.nest < cb.nest;
              return ca.first_rank() < cb.first_rank();
            });
  std::vector<std::uint64_t> entry_load(tree_.num_clients(), 0);
  for (const std::uint32_t local : locals) {
    const std::uint32_t g = e.first_chunk + local;
    const std::uint32_t cluster = cluster_of_chunk_[g];
    MLSC_CHECK(cluster != kUnplaced, "chunk without a cluster");
    const std::uint32_t client = clusters_[cluster].client;
    MLSC_CHECK(client != kUnplaced, "cluster without a placement");
    core::WorkItem item;
    item.nest = result.chunk_table[local].nest;
    item.order = poly::IterationOrder::identity(0);
    item.ranges = result.chunk_table[local].ranges;
    item.iterations = result.chunk_table[local].iterations;
    item.chunk = static_cast<std::int32_t>(local);
    result.client_work[client].push_back(std::move(item));
    entry_load[client] += result.chunk_table[local].iterations;
  }

  if (sample_clients > 0 && sample_clients < tree_.num_clients()) {
    // Keep only the K busiest clients (by this entry's load; ties to the
    // smaller rank) — a drift replay samples instead of running all 64.
    std::vector<std::size_t> ranks(tree_.num_clients());
    std::iota(ranks.begin(), ranks.end(), std::size_t{0});
    std::sort(ranks.begin(), ranks.end(), [&](std::size_t x, std::size_t y) {
      if (entry_load[x] != entry_load[y]) return entry_load[x] > entry_load[y];
      return x < y;
    });
    for (std::size_t i = sample_clients; i < ranks.size(); ++i) {
      result.client_work[ranks[i]].clear();
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Invariants / fingerprint

void MappingState::check_invariants() const {
  const std::size_t n = chunks_.size();
  MLSC_CHECK(chunk_owner_.size() == n && cluster_of_chunk_.size() == n &&
                 parent_.size() == n,
             "chunk table sizes out of sync");
  MLSC_CHECK(load_.size() == tree_.num_clients() &&
                 client_alive_.size() == tree_.num_clients(),
             "client table sizes out of sync");

  // Every live chunk in exactly one cluster; members ascending and live;
  // cluster iteration totals exact; per-client loads exact.
  std::vector<std::uint32_t> seen(n, kUnplaced);
  std::vector<std::uint64_t> loads(tree_.num_clients(), 0);
  for (std::uint32_t c = 0; c < clusters_.size(); ++c) {
    const ServeCluster& cluster = clusters_[c];
    MLSC_CHECK(!cluster.members.empty(), "empty cluster survived");
    std::uint64_t iters = 0;
    std::uint32_t prev = 0;
    for (std::size_t m = 0; m < cluster.members.size(); ++m) {
      const std::uint32_t g = cluster.members[m];
      MLSC_CHECK(g < n, "cluster member out of range");
      MLSC_CHECK(m == 0 || g > prev, "cluster members not ascending");
      prev = g;
      MLSC_CHECK(chunk_live(g), "dead chunk in a cluster");
      MLSC_CHECK(seen[g] == kUnplaced, "chunk in two clusters");
      seen[g] = c;
      MLSC_CHECK(cluster_of_chunk_[g] == c, "cluster_of_chunk out of sync");
      iters += chunks_[g].iterations;
    }
    MLSC_CHECK(iters == cluster.iterations, "cluster iteration total drifted");
    if (cluster.client != kUnplaced) {
      MLSC_CHECK(cluster.client < loads.size(), "placement out of range");
      loads[cluster.client] += cluster.iterations;
    }
  }
  for (std::uint32_t g = 0; g < n; ++g) {
    if (chunk_live(g)) {
      MLSC_CHECK(seen[g] != kUnplaced, "live chunk not in any cluster");
    } else {
      MLSC_CHECK(cluster_of_chunk_[g] == kUnplaced,
                 "dead chunk still mapped to a cluster");
    }
  }
  for (std::size_t r = 0; r < loads.size(); ++r) {
    MLSC_CHECK(loads[r] == load_[r],
               "client " << r << " load drifted: tracked " << load_[r]
                         << ", actual " << loads[r]);
  }

  // Postings are exactly the live chunks' tag bits, ascending.
  std::size_t posted = 0;
  for (const auto& [key, list] : postings_) {
    MLSC_CHECK(!list.empty(), "empty posting list survived");
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      MLSC_CHECK(i == 0 || list[i] > prev, "posting list not ascending");
      prev = list[i];
      MLSC_CHECK(chunk_live(list[i]), "dead chunk still posted");
    }
    posted += list.size();
  }
  std::size_t expected = 0;
  for (std::uint32_t g = 0; g < n; ++g) {
    if (!chunk_live(g)) continue;
    const std::uint64_t offset = entries_[chunk_owner_[g]].tag_offset;
    for (std::uint32_t bit : chunks_[g].tag.bits()) {
      const auto it = postings_.find(offset + bit);
      MLSC_CHECK(it != postings_.end() &&
                     std::binary_search(it->second.begin(), it->second.end(),
                                        g),
                 "live chunk bit not posted");
      ++expected;
    }
  }
  MLSC_CHECK(posted == expected, "posting index carries stale entries");

  // Forest edges alive and acyclic; parent_ matches the forest exactly.
  std::vector<std::uint32_t> scratch(n);
  std::iota(scratch.begin(), scratch.end(), 0u);
  for (const ForestEdge& e : forest_) {
    MLSC_CHECK(e.u < e.v && e.v < n, "malformed forest edge");
    MLSC_CHECK(chunk_live(e.u) && chunk_live(e.v), "dead forest endpoint");
    MLSC_CHECK(uf_union(scratch, e.u, e.v), "forest edge formed a cycle");
  }
  for (std::uint32_t g = 0; g < n; ++g) {
    MLSC_CHECK(uf_find(scratch, g) == uf_find(parent_, g),
               "standing union-find out of sync with the forest");
  }
}

std::string MappingState::fingerprint() const {
  // Chunks are named (instance id, local index): comparable across
  // histories that assigned different global ids, as long as the live
  // instances arrived in the same relative order.
  std::ostringstream out;
  out.precision(17);
  for (const WorkloadEntry& e : entries_) {
    if (!e.live) continue;
    out << "workload " << e.id << " name=" << e.name
        << " size_factor=" << e.size_factor
        << " clients=" << e.requested_clients << " chunks=" << e.num_chunks
        << " iterations=" << e.total_iterations << "\n";
  }
  for (const ServeCluster& cluster : clusters_) {
    out << "cluster client=";
    if (cluster.client == kUnplaced) {
      out << "-";
    } else {
      out << cluster.client;
    }
    out << " iterations=" << cluster.iterations << " members=";
    for (std::size_t m = 0; m < cluster.members.size(); ++m) {
      const std::uint32_t g = cluster.members[m];
      const WorkloadEntry& owner = entries_[chunk_owner_[g]];
      if (m != 0) out << ",";
      out << owner.id << ":" << (g - owner.first_chunk);
    }
    out << "\n";
  }
  for (std::size_t r = 0; r < load_.size(); ++r) {
    out << "client " << r << " load=" << load_[r]
        << " alive=" << (client_alive_[r] ? 1 : 0) << "\n";
  }
  return out.str();
}

}  // namespace mlsc::serve
