#include "serve/service.h"

#include <cstdio>
#include <sstream>

#include "core/data_space.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/retry.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "support/check.h"
#include "support/log.h"
#include "support/string_util.h"

namespace mlsc::serve {

namespace {

std::uint64_t live_iterations(const MappingState& state) {
  std::uint64_t total = 0;
  for (const WorkloadEntry& e : state.entries()) {
    if (e.live) total += e.total_iterations;
  }
  return total;
}

}  // namespace

MappingService::MappingService(ServiceOptions options)
    : options_(std::move(options)),
      pool_(resolve_num_threads(options_.num_threads)),
      state_(options_.machine, options_.state) {
  if (!options_.journal_path.empty()) {
    journal_.open(options_.journal_path, std::ios::binary | std::ios::trunc);
    MLSC_CHECK(journal_.good(),
               "cannot write journal '" << options_.journal_path << "'");
    journal_ << stream_header_json(options_.seed,
                                   options_.machine.to_string())
             << "\n";
    journal_.flush();
  }
}

MappingService::~MappingService() = default;

ServeDecision MappingService::process(const ServeEvent& event) {
  obs::Span span("serve.event");
  span.arg("kind", event_kind_name(event.kind));
  now_ = std::max(now_, event.at);

  ServeDecision decision;
  decision.event = event;
  decision.imbalance_before = state_.imbalance();

  switch (event.kind) {
    case EventKind::kRegister: {
      const std::size_t widx = state_.register_workload(
          event.id, event.workload, event.size_factor, event.clients, &pool_,
          &decision.delta);
      const PatchPlan plan = state_.build_patch(widx);
      settle(decision, state_.simulate_patch(plan), &plan, widx);
      if (options_.drift_sample > 0) capture_baseline(widx);
      break;
    }
    case EventKind::kDepart: {
      const std::size_t widx = state_.find_live(event.id);
      MLSC_CHECK(widx != static_cast<std::size_t>(-1),
                 "depart of unknown workload id '" << event.id << "'");
      state_.depart_workload(widx);
      settle(decision, state_.imbalance(), nullptr,
             static_cast<std::size_t>(-1));
      break;
    }
    case EventKind::kScale: {
      const std::size_t widx = state_.find_live(event.id);
      MLSC_CHECK(widx != static_cast<std::size_t>(-1),
                 "scale of unknown workload id '" << event.id << "'");
      state_.set_requested_clients(widx, event.clients);
      // The cut target changed; only a recut can honor it, so the
      // automatic policy goes straight to partial (full adds nothing —
      // the forest did not change).
      if (options_.policy.force == ServePolicy::Force::kAuto) {
        decision.scope = RemapScope::kPartial;
        decision.reason = "cut target changed";
        state_.recut_all();
      } else {
        settle(decision, state_.imbalance(), nullptr,
               static_cast<std::size_t>(-1));
      }
      break;
    }
    case EventKind::kFault: {
      const resilience::FaultSchedule schedule =
          resilience::parse_fault_spec(event.fault_spec);
      const std::size_t alive_before = state_.num_alive_clients();
      state_.apply_faults(schedule);
      decision.clusters_moved = state_.replace_orphans();
      decision.drift = probe_drift();
      const bool clients_died = state_.num_alive_clients() < alive_before;
      if (options_.policy.force == ServePolicy::Force::kAuto &&
          clients_died && options_.policy.remap.remap_on_failure) {
        // Remap-on-failure: losing a client invalidates the standing
        // cut's balance assumptions — at least a partial remap.
        decision.scope = RemapScope::kPartial;
        decision.reason = "remap on failure";
        state_.recut_all();
      } else {
        settle(decision, state_.imbalance(), nullptr,
               static_cast<std::size_t>(-1));
      }
      break;
    }
  }

  decision.pause = scope_pause(options_.policy, decision.scope);
  total_pause_ += decision.pause;
  decision.imbalance_after = state_.imbalance();
  decisions_.push_back(decision);
  after_event(decisions_.back());
  span.arg("scope", remap_scope_name(decision.scope));
  span.end();
  return decisions_.back();
}

void MappingService::settle(ServeDecision& decision,
                            double imbalance_after_patch,
                            const PatchPlan* plan, std::size_t widx) {
  PolicyInputs inputs;
  inputs.imbalance_after_patch = imbalance_after_patch;
  inputs.total_iterations = live_iterations(state_);
  inputs.now = now_;
  inputs.last_full_at = last_full_at_;
  inputs.any_full_yet = any_full_yet_;
  inputs.drift_exceeded = decision.drift;
  const PolicyVerdict verdict = decide_scope(options_.policy, inputs);
  decision.scope = verdict.scope;
  decision.reason = verdict.reason;

  switch (verdict.scope) {
    case RemapScope::kNone:
      break;
    case RemapScope::kPatch:
      if (plan != nullptr) state_.apply_patch(*plan);
      break;
    case RemapScope::kPartial:
      // The forest already carries the event (hooked on register, edges
      // dropped on depart): recut + re-place over it.
      state_.recut_all();
      break;
    case RemapScope::kFull:
      state_.rebuild_all(&pool_, &decision.delta);
      last_full_at_ = now_;
      any_full_yet_ = true;
      break;
  }
  (void)widx;
}

void MappingService::capture_baseline(std::size_t widx) {
  const WorkloadEntry& e = state_.entries()[widx];
  const core::MappingResult mapping =
      state_.entry_mapping(widx, options_.drift_sample);
  const core::DataSpace space(e.workload.program,
                              options_.machine.chunk_size_bytes);
  const sim::Trace trace =
      sim::generate_trace(e.workload.program, space, mapping);
  const sim::EngineResult result = sim::run_engine(
      trace, mapping, options_.machine, state_.tree(), nullptr);
  state_.set_baseline(widx, result.l2);
}

bool MappingService::probe_drift() {
  if (options_.drift_sample == 0) return false;
  const resilience::FaultSchedule effective = state_.effective_faults();
  if (effective.empty()) return false;
  for (std::size_t widx = 0; widx < state_.entries().size(); ++widx) {
    const WorkloadEntry& e = state_.entries()[widx];
    if (!e.live || !e.has_baseline) continue;
    const core::MappingResult mapping =
        state_.entry_mapping(widx, options_.drift_sample);
    const core::DataSpace space(e.workload.program,
                                options_.machine.chunk_size_bytes);
    const sim::Trace trace =
        sim::generate_trace(e.workload.program, space, mapping);
    resilience::FaultInjector injector(effective, resilience::RetryPolicy{},
                                       state_.tree());
    const sim::EngineResult result = sim::run_engine(
        trace, mapping, options_.machine, state_.tree(), &injector);
    if (resilience::drift_exceeded(options_.policy.remap, e.baseline_l2,
                                   result.l2)) {
      MLSC_DEBUG("drift probe fired for " << e.id << ": baseline miss "
                                          << e.baseline_l2.miss_rate()
                                          << " observed "
                                          << result.l2.miss_rate());
      return true;
    }
  }
  return false;
}

void MappingService::after_event(ServeDecision& decision) {
  MLSC_COUNTER_INC("serve.events");
  switch (decision.scope) {
    case RemapScope::kNone:
      break;
    case RemapScope::kPatch:
      MLSC_COUNTER_INC("serve.decision_patch");
      break;
    case RemapScope::kPartial:
      MLSC_COUNTER_INC("serve.decision_partial");
      break;
    case RemapScope::kFull:
      MLSC_COUNTER_INC("serve.decision_full");
      break;
  }
  MLSC_COUNTER_ADD("serve.pause_ns", decision.pause);
  MLSC_COUNTER_ADD("serve.orphans_moved", decision.clusters_moved);
  MLSC_COUNTER_ADD("serve.scored_pairs", decision.delta.scored_pairs);
  MLSC_COUNTER_ADD("serve.forest_hooks", decision.delta.forest_hooks);
  MLSC_GAUGE_SET("serve.live_workloads", state_.num_live_workloads());
  MLSC_GAUGE_SET("serve.standing_chunks", state_.standing_chunks());
  MLSC_GAUGE_SET("serve.clusters", state_.clusters().size());
  MLSC_GAUGE_SET("serve.alive_clients", state_.num_alive_clients());
  MLSC_GAUGE_SET("serve.imbalance", state_.imbalance());

  if (journal_.is_open()) {
    journal_ << decision_json(decision) << "\n";
    journal_.flush();
  }
  if (!options_.prom_path.empty()) write_prom();
  if (options_.snapshot_every > 0 && !options_.snapshot_path.empty()) {
    if (++events_since_snapshot_ >= options_.snapshot_every) {
      events_since_snapshot_ = 0;
      snapshot().write_file(options_.snapshot_path);
    }
  }
  if (options_.check_invariants) state_.check_invariants();
}

void MappingService::write_prom() const {
  const std::string tmp = options_.prom_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      MLSC_WARN("cannot write prometheus file '" << tmp << "'");
      return;
    }
    obs::Registry::global().dump_prometheus(out);
  }
  if (std::rename(tmp.c_str(), options_.prom_path.c_str()) != 0) {
    MLSC_WARN("cannot rename '" << tmp << "' to '" << options_.prom_path
                                << "'");
  }
}

std::string MappingService::decision_json(
    const ServeDecision& decision) const {
  std::string line = event_to_json(decision.event);
  MLSC_CHECK(!line.empty() && line.back() == '}', "malformed event json");
  line.pop_back();
  std::ostringstream out;
  out << line << ",\"decision\":{\"scope\":"
      << json_quote(remap_scope_name(decision.scope))
      << ",\"reason\":" << json_quote(decision.reason)
      << ",\"imbalance_before\":" << json_number(decision.imbalance_before)
      << ",\"imbalance_after\":" << json_number(decision.imbalance_after)
      << ",\"pause_ns\":" << decision.pause
      << ",\"scored_pairs\":" << decision.delta.scored_pairs
      << ",\"forest_hooks\":" << decision.delta.forest_hooks
      << ",\"rounds\":" << decision.delta.rounds
      << ",\"clusters_moved\":" << decision.clusters_moved
      << ",\"drift\":" << (decision.drift ? "true" : "false") << "}}";
  return out.str();
}

obs::RunRecord MappingService::snapshot() const {
  obs::RunRecord record;
  record.binary = "mlsc_serve";
  record.machine = options_.machine.to_string();
  record.seed = options_.seed;
  record.has_seed = true;
  record.include_metrics = obs::metrics_enabled();

  Table workloads({"workload", "name", "clients", "chunks", "iterations"});
  for (const WorkloadEntry& e : state_.entries()) {
    if (!e.live) continue;
    workloads.add_row({e.id, e.name, std::to_string(e.requested_clients),
                       std::to_string(e.num_chunks),
                       std::to_string(e.total_iterations)});
  }
  record.tables.emplace_back("serve_workloads", std::move(workloads));

  Table clients({"client", "load", "alive"});
  for (std::size_t r = 0; r < state_.client_load().size(); ++r) {
    clients.add_row({std::to_string(r),
                     std::to_string(state_.client_load()[r]),
                     state_.client_alive()[r] ? "1" : "0"});
  }
  record.tables.emplace_back("serve_clients", std::move(clients));

  std::uint64_t counts[4] = {0, 0, 0, 0};
  std::uint64_t scored = 0;
  std::uint64_t hooks = 0;
  std::uint64_t moved = 0;
  for (const ServeDecision& d : decisions_) {
    counts[static_cast<int>(d.scope)] += 1;
    scored += d.delta.scored_pairs;
    hooks += d.delta.forest_hooks;
    moved += d.clusters_moved;
  }
  Table dec({"scope", "count"});
  dec.add_row({"patch", std::to_string(counts[1])});
  dec.add_row({"partial", std::to_string(counts[2])});
  dec.add_row({"full", std::to_string(counts[3])});
  record.tables.emplace_back("serve_decisions", std::move(dec));

  Table totals({"metric", "value"});
  totals.add_row({"events", std::to_string(decisions_.size())});
  totals.add_row(
      {"live_workloads", std::to_string(state_.num_live_workloads())});
  totals.add_row(
      {"standing_chunks", std::to_string(state_.standing_chunks())});
  totals.add_row({"clusters", std::to_string(state_.clusters().size())});
  totals.add_row(
      {"alive_clients", std::to_string(state_.num_alive_clients())});
  {
    std::ostringstream imb;
    imb.precision(17);
    imb << state_.imbalance();
    totals.add_row({"imbalance", imb.str()});
  }
  totals.add_row({"total_pause_ns", std::to_string(total_pause_)});
  totals.add_row({"scored_pairs", std::to_string(scored)});
  totals.add_row({"forest_hooks", std::to_string(hooks)});
  totals.add_row({"orphans_moved", std::to_string(moved)});
  record.tables.emplace_back("serve_totals", std::move(totals));
  return record;
}

void MappingService::run(const std::vector<ServeEvent>& events) {
  for (const ServeEvent& event : events) process(event);
  if (!options_.snapshot_path.empty()) {
    snapshot().write_file(options_.snapshot_path);
  }
  if (!options_.prom_path.empty()) write_prom();
}

}  // namespace mlsc::serve
