#include "serve/event.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "resilience/fault.h"
#include "support/check.h"
#include "support/json.h"
#include "support/string_util.h"

namespace mlsc::serve {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRegister:
      return "register";
    case EventKind::kDepart:
      return "depart";
    case EventKind::kScale:
      return "scale";
    case EventKind::kFault:
      return "fault";
  }
  return "?";
}

namespace {

std::string require_string(const JsonValue& doc, const char* key,
                           const char* kind) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr || !v->is_string() || v->as_string().empty()) {
    throw Error(std::string(kind) + " event needs a non-empty string '" +
                key + "'");
  }
  return v->as_string();
}

std::uint32_t require_clients(const JsonValue& doc, const char* kind) {
  const JsonValue* v = doc.find("clients");
  if (v == nullptr || !v->is_number()) {
    throw Error(std::string(kind) + " event needs a numeric 'clients'");
  }
  const double c = v->as_number();
  if (!(c >= 1.0) || c != std::floor(c) || c > 1e9) {
    throw Error(std::string(kind) + " event: 'clients' must be a positive "
                "integer, got " + json_number(c));
  }
  return static_cast<std::uint32_t>(c);
}

}  // namespace

ServeEvent parse_serve_event(const JsonValue& doc) {
  if (!doc.is_object()) throw Error("serve event must be a JSON object");
  ServeEvent event;

  const JsonValue* kind = doc.find("event");
  if (kind == nullptr || !kind->is_string()) {
    throw Error("serve event needs a string 'event' field");
  }
  const std::string& name = kind->as_string();
  if (name == "register") {
    event.kind = EventKind::kRegister;
  } else if (name == "depart") {
    event.kind = EventKind::kDepart;
  } else if (name == "scale") {
    event.kind = EventKind::kScale;
  } else if (name == "fault") {
    event.kind = EventKind::kFault;
  } else {
    throw Error("unknown serve event type '" + name + "'");
  }

  if (const JsonValue* at = doc.find("at_ms"); at != nullptr) {
    if (!at->is_number() || !(at->as_number() >= 0.0)) {
      throw Error("serve event: 'at_ms' must be a non-negative number");
    }
    event.at = static_cast<Nanoseconds>(
        at->as_number() * static_cast<double>(kMillisecond) + 0.5);
  }

  switch (event.kind) {
    case EventKind::kRegister:
      event.id = require_string(doc, "id", "register");
      event.workload = require_string(doc, "workload", "register");
      event.clients = require_clients(doc, "register");
      if (const JsonValue* sf = doc.find("size_factor"); sf != nullptr) {
        if (!sf->is_number() || !(sf->as_number() > 0.0) ||
            !std::isfinite(sf->as_number())) {
          throw Error("register event: 'size_factor' must be positive");
        }
        event.size_factor = sf->as_number();
      }
      break;
    case EventKind::kDepart:
      event.id = require_string(doc, "id", "depart");
      break;
    case EventKind::kScale:
      event.id = require_string(doc, "id", "scale");
      event.clients = require_clients(doc, "scale");
      break;
    case EventKind::kFault:
      event.fault_spec = require_string(doc, "spec", "fault");
      // Validate eagerly: a journal must never carry a spec the replay
      // cannot parse.
      resilience::parse_fault_spec(event.fault_spec);
      break;
  }
  return event;
}

std::vector<ServeEvent> parse_event_stream(std::string_view text) {
  std::vector<ServeEvent> events;
  std::unordered_set<std::string> live;
  Nanoseconds last_at = 0;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  bool saw_any = false;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    // Skip blank lines (and a trailing newline's empty remainder).
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (blank) continue;
    try {
      const JsonValue doc = parse_json(line);
      if (doc.is_object() && doc.find("schema") != nullptr) {
        const std::string schema = doc.find("schema")->string_or("");
        if (schema != kServeEventSchema) {
          throw Error("unsupported event-stream schema '" + schema +
                      "' (want " + kServeEventSchema + ")");
        }
        continue;  // header line
      }
      ServeEvent event = parse_serve_event(doc);
      if (saw_any && event.at < last_at) {
        throw Error("events must be sorted by at_ms");
      }
      last_at = event.at;
      saw_any = true;
      switch (event.kind) {
        case EventKind::kRegister:
          if (!live.insert(event.id).second) {
            throw Error("duplicate workload id '" + event.id + "'");
          }
          break;
        case EventKind::kDepart:
          if (live.erase(event.id) == 0) {
            throw Error("depart of unknown workload id '" + event.id + "'");
          }
          break;
        case EventKind::kScale:
          if (live.find(event.id) == live.end()) {
            throw Error("scale of unknown workload id '" + event.id + "'");
          }
          break;
        case EventKind::kFault:
          break;
      }
      events.push_back(std::move(event));
    } catch (const Error& e) {
      throw Error("event stream line " + std::to_string(line_no) + ": " +
                  e.what());
    }
  }
  return events;
}

std::vector<ServeEvent> load_event_stream(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read event stream '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_event_stream(buffer.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

std::string event_to_json(const ServeEvent& event) {
  std::ostringstream out;
  out << "{\"at_ms\":"
      << json_number(static_cast<double>(event.at) /
                     static_cast<double>(kMillisecond))
      << ",\"event\":" << json_quote(event_kind_name(event.kind));
  switch (event.kind) {
    case EventKind::kRegister:
      out << ",\"id\":" << json_quote(event.id)
          << ",\"workload\":" << json_quote(event.workload)
          << ",\"clients\":" << event.clients
          << ",\"size_factor\":" << json_number(event.size_factor);
      break;
    case EventKind::kDepart:
      out << ",\"id\":" << json_quote(event.id);
      break;
    case EventKind::kScale:
      out << ",\"id\":" << json_quote(event.id)
          << ",\"clients\":" << event.clients;
      break;
    case EventKind::kFault:
      out << ",\"spec\":" << json_quote(event.fault_spec);
      break;
  }
  out << "}";
  return out.str();
}

std::string stream_header_json(std::uint64_t seed,
                               const std::string& machine) {
  std::ostringstream out;
  out << "{\"schema\":" << json_quote(kServeEventSchema)
      << ",\"seed\":" << seed << ",\"machine\":" << json_quote(machine)
      << "}";
  return out.str();
}

}  // namespace mlsc::serve
