// The online mapping service (DESIGN.md §17): event loop around a live
// MappingState.
//
// MappingService::process() applies one churn event, runs the remap
// cost/benefit policy (patch / partial remap / full recompute), commits
// the chosen scope, and journals the decision as an `mlsc-serve-event-v1`
// JSON line — the journal replays as an event stream, so the same events
// and seed reproduce a bit-identical end state at any thread count.
// Optional side channels: a Prometheus textfile refreshed atomically
// after every event, and periodic run-record snapshots that plug into
// mlsc_bench_diff / mlsc_report unchanged.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/run_record.h"
#include "serve/event.h"
#include "serve/policy.h"
#include "serve/state.h"
#include "support/thread_pool.h"

namespace mlsc::serve {

struct ServiceOptions {
  sim::MachineConfig machine;
  std::size_t num_threads = 1;  // pass through resolve_num_threads first
  std::uint64_t seed = 0;

  ServeStateOptions state;
  ServePolicy policy;

  /// Drift estimation: each register captures a healthy solo-replay
  /// baseline over this many sampled clients, and each fault event
  /// re-replays live instances under the effective fault state to test
  /// resilience::RemapPolicy::miss_rate_drift.  0 disables the probes.
  std::size_t drift_sample = 0;

  std::string journal_path;    // decision journal (JSON lines)
  std::string prom_path;       // Prometheus textfile, tmp+rename per event
  std::string snapshot_path;   // run-record snapshot destination
  std::size_t snapshot_every = 0;  // events between snapshots (0 = end only)

  /// Run MappingState::check_invariants() after every event (soak/debug).
  bool check_invariants = false;
};

/// What the service decided (and did) for one event.
struct ServeDecision {
  ServeEvent event;
  RemapScope scope = RemapScope::kNone;
  std::string reason;
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
  Nanoseconds pause = 0;      // modelled install downtime of the scope
  DeltaStats delta;           // mapping work the event cost
  std::size_t clusters_moved = 0;  // orphans re-placed (fault events)
  bool drift = false;         // a drift probe fired
};

class MappingService {
 public:
  explicit MappingService(ServiceOptions options);
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Applies one event end-to-end; throws Error on invalid events
  /// (unknown depart/scale ids, malformed fault specs).
  ServeDecision process(const ServeEvent& event);

  /// Processes every event, then writes the final snapshot and
  /// Prometheus dump.
  void run(const std::vector<ServeEvent>& events);

  const MappingState& state() const { return state_; }
  const std::vector<ServeDecision>& decisions() const { return decisions_; }
  Nanoseconds total_pause() const { return total_pause_; }

  /// The journal line for a decision: the event object with a
  /// "decision" member appended (the stream parser ignores it).
  std::string decision_json(const ServeDecision& decision) const;

  /// Run-record snapshot of the live state (+ decision counters).
  obs::RunRecord snapshot() const;

 private:
  void settle(ServeDecision& decision, double imbalance_after_patch,
              const PatchPlan* plan, std::size_t widx);
  bool probe_drift();
  void capture_baseline(std::size_t widx);
  void after_event(ServeDecision& decision);
  void write_prom() const;

  ServiceOptions options_;
  ThreadPool pool_;
  MappingState state_;
  std::vector<ServeDecision> decisions_;
  std::ofstream journal_;
  Nanoseconds now_ = 0;
  Nanoseconds last_full_at_ = 0;
  bool any_full_yet_ = false;
  Nanoseconds total_pause_ = 0;
  std::size_t events_since_snapshot_ = 0;
};

}  // namespace mlsc::serve
