// The serve remap cost/benefit policy (DESIGN.md §17).
//
// Every churn event ends with one of three remap scopes:
//   - patch:   place only what the event added, onto the standing cut
//              (cheapest; imbalance may accumulate),
//   - partial: keep the standing forest, redo the cut + placement
//              (mid-cost; fixes imbalance, keeps clustering quality as
//              good as the forest),
//   - full:    rebuild the forest from the posting index and recut
//              (most expensive; the canonical from-scratch mapping).
// The policy picks the cheapest scope whose projected stall savings
// beat its estimated pause, with hysteresis so borderline drift cannot
// thrash full recomputes, reusing resilience::RemapPolicy for the
// miss-rate-drift threshold and the modelled remap pause.
#pragma once

#include <string>

#include "resilience/remap.h"
#include "support/units.h"

namespace mlsc::serve {

enum class RemapScope { kNone, kPatch, kPartial, kFull };

const char* remap_scope_name(RemapScope scope);

struct ServePolicy {
  /// Force one scope for every decision (testing / oracle runs);
  /// kAuto applies the cost/benefit rules.
  enum class Force { kAuto, kPatch, kPartial, kFull };
  Force force = Force::kAuto;

  /// Patch is good enough while the post-patch imbalance stays under
  /// this; beyond it the policy weighs a wider remap.
  double patch_imbalance_limit = 0.25;

  /// Imbalance a full recut is assumed to restore (the balance-aware
  /// cut's slack); the projected saving is the excess over this.
  double full_target_imbalance = 0.10;

  /// Virtual run-length one iteration stands for when projecting stall
  /// savings from imbalance.
  Nanoseconds est_iteration_ns = 1;

  /// Shared with the offline remap-on-failure machinery: miss-rate
  /// drift threshold and the modelled pause of a full remap.  Partial
  /// remaps are modelled at 1/4 of the pause, patches at 1/16.
  resilience::RemapPolicy remap;

  /// A full recompute is not repeated within this window unless forced
  /// (drift hysteresis).
  Nanoseconds hysteresis_ns = 10 * kMillisecond;
};

/// The modelled install pause of a scope under `policy`.
Nanoseconds scope_pause(const ServePolicy& policy, RemapScope scope);

struct PolicyInputs {
  /// Imbalance if the event were settled with the cheapest scope
  /// (post-patch for registrations, current for departs/faults).
  double imbalance_after_patch = 0.0;
  /// Standing iteration total — converts imbalance into projected time.
  std::uint64_t total_iterations = 0;
  /// Virtual time of the event and of the last full recompute.
  Nanoseconds now = 0;
  Nanoseconds last_full_at = 0;
  bool any_full_yet = false;
  /// A drift probe exceeded resilience::RemapPolicy::miss_rate_drift.
  bool drift_exceeded = false;
};

struct PolicyVerdict {
  RemapScope scope = RemapScope::kPatch;
  std::string reason;
};

/// Picks the remap scope.  Forced policies short-circuit; otherwise
/// patch wins while imbalance stays within patch_imbalance_limit and no
/// drift fired, and the escalation to full requires projected savings
/// above the full pause plus the hysteresis window since the last full.
PolicyVerdict decide_scope(const ServePolicy& policy,
                           const PolicyInputs& inputs);

}  // namespace mlsc::serve
