// The live mapping state the online service owns (DESIGN.md §17).
//
// MappingState holds, across workload churn:
//   - the global iteration-chunk table (each registered instance's
//     chunks, tags kept in the instance's own data space),
//   - the global data-chunk posting index (instances of the same
//     workload name + size factor share one tag-bit range, so tenants
//     over the same data can cluster together; distinct data keys get
//     disjoint bit ranges and never interact),
//   - the standing affinity forest (a maximum-spanning-forest over
//     chunk-similarity edges under the same strict (score, u, v) total
//     order as core::clustering's kForest kernel) and its union-find,
//   - the standing cut (clusters of chunks, possibly spanning
//     instances) with per-cluster client placement and per-client load.
//
// Registration is incremental: only the new instance's chunks are tagged
// and scored (cost proportional to the arrival, not to the standing
// table), and its edges are hooked into the standing forest by Borůvka
// rounds against the existing components.  A full recompute rebuilds the
// forest from the posting index from scratch — deterministically
// identical to registering the same live set into a fresh state, which
// is the oracle the tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/storage_cache.h"
#include "core/iteration_chunk.h"
#include "core/mapping.h"
#include "core/tagging.h"
#include "resilience/fault.h"
#include "sim/machine.h"
#include "support/thread_pool.h"
#include "topology/hierarchy.h"
#include "workloads/workload.h"

namespace mlsc::serve {

inline constexpr std::uint32_t kUnplaced = UINT32_MAX;

struct ServeStateOptions {
  core::TaggingOptions tagging;
  /// Balance-aware cut slack, as core::ClusterOptions::cut_balance_slack.
  double cut_balance_slack = 0.10;
};

/// One similarity edge of the standing forest; u < v are global chunk
/// ids.  (score, u, v) is the strict total order shared with the
/// offline forest kernel.
struct ForestEdge {
  double score = 0;
  std::uint32_t u = 0;
  std::uint32_t v = 0;
};

bool edge_better(const ForestEdge& x, const ForestEdge& y);

/// Mapping-work accounting for one operation, mirrored into the
/// pipeline.* counters: candidate pairs scored and forest hooks made.
struct DeltaStats {
  std::uint64_t scored_pairs = 0;
  std::uint64_t forest_hooks = 0;
  std::uint64_t rounds = 0;

  DeltaStats& operator+=(const DeltaStats& other) {
    scored_pairs += other.scored_pairs;
    forest_hooks += other.forest_hooks;
    rounds += other.rounds;
    return *this;
  }
};

/// One registered workload instance.
struct WorkloadEntry {
  std::string id;
  std::string name;          // registry name or "irregular"
  double size_factor = 1.0;
  std::uint32_t requested_clients = 0;
  bool live = false;

  workloads::Workload workload;

  /// Tag-bit base shared by every live instance with the same
  /// (name, size_factor) data key; bit b of a chunk tag posts under
  /// global key tag_offset + b.
  std::uint64_t tag_offset = 0;
  std::uint32_t num_data_chunks = 0;  // r, the tag width
  std::uint64_t total_iterations = 0;

  /// Global chunk ids [first_chunk, first_chunk + num_chunks).
  std::uint32_t first_chunk = 0;
  std::uint32_t num_chunks = 0;

  /// Drift baseline: shared (L2) cache stats of a solo engine replay
  /// captured right after registration (service-level, optional).
  cache::CacheStats baseline_l2;
  bool has_baseline = false;
};

/// One standing cluster: chunk members (global ids, ascending, possibly
/// from several instances), their iteration total, and the client the
/// cluster is placed on.
struct ServeCluster {
  std::vector<std::uint32_t> members;
  std::uint64_t iterations = 0;
  std::uint32_t client = kUnplaced;
};

/// A simulatable patch for one registration: brand-new clusters (from
/// forest components containing only new chunks) plus appends of new
/// chunks onto the standing clusters their components hooked into.
struct PatchPlan {
  struct Append {
    std::uint32_t cluster = 0;
    std::vector<std::uint32_t> members;
    std::uint64_t iterations = 0;
  };
  std::vector<ServeCluster> new_clusters;  // unplaced
  std::vector<Append> appends;
};

class MappingState {
 public:
  MappingState(const sim::MachineConfig& machine,
               ServeStateOptions options = {});

  // --- workload lifecycle -------------------------------------------------
  /// Tags the instance (reusing a live sibling's chunk table when the
  /// data key already exists), appends its chunks and postings, scores
  /// candidate edges against the posting index (new chunks only), and
  /// hooks them into the standing forest.  Clusters are untouched; call
  /// build_patch/apply_patch or recut_all next.  Returns the entry index.
  std::size_t register_workload(const std::string& id, const std::string& name,
                                double size_factor, std::uint32_t clients,
                                ThreadPool* pool, DeltaStats* stats);

  /// Removes the instance: postings, forest edges, cluster members and
  /// load contributions.  Empty clusters vanish; placements of surviving
  /// clusters stay (the patch path), so imbalance may grow — callers
  /// escalate per policy.
  void depart_workload(std::size_t widx);

  /// Updates the requested client count (changes the global cut target).
  void set_requested_clients(std::size_t widx, std::uint32_t clients);

  /// Records the drift baseline of an instance (its healthy solo-replay
  /// shared-cache stats).
  void set_baseline(std::size_t widx, const cache::CacheStats& l2);

  /// The patch for the newest registration of `widx`: new clusters for
  /// purely-new forest components, appends for components hooked onto
  /// standing clusters.
  PatchPlan build_patch(std::size_t widx) const;
  /// Commits the plan: appends update placed loads in place; new
  /// clusters are placed least-loaded-first.
  void apply_patch(const PatchPlan& plan);
  /// Imbalance after the plan would be applied (nothing committed).
  double simulate_patch(const PatchPlan& plan) const;

  /// Re-cuts the whole standing forest to the current target and
  /// re-places every cluster least-loaded-first (the partial-remap
  /// path: forest kept, cut + placement redone).
  void recut_all();

  /// Rebuilds the standing forest from the posting index from scratch
  /// (every live chunk re-scored), then recut_all().  The full-recompute
  /// path; bit-identical to a fresh state over the same live set.
  void rebuild_all(ThreadPool* pool, DeltaStats* stats);

  // --- faults -------------------------------------------------------------
  /// Merges `schedule` into the cumulative fault history and updates
  /// client liveness (an unrecovered compute-level fail-stop kills the
  /// client).
  void apply_faults(const resilience::FaultSchedule& schedule);
  /// Re-places clusters stranded on dead clients, least-loaded-first;
  /// returns how many moved.
  std::size_t replace_orphans();
  /// The cumulative fault history, squashed to what is in effect now
  /// (every surviving event re-stamped at t=0) — the injector state a
  /// drift-estimation replay should run under.
  resilience::FaultSchedule effective_faults() const;

  // --- queries ------------------------------------------------------------
  const sim::MachineConfig& machine() const { return machine_; }
  const topology::HierarchyTree& tree() const { return tree_; }
  const std::vector<WorkloadEntry>& entries() const { return entries_; }
  const std::vector<ServeCluster>& clusters() const { return clusters_; }
  const std::vector<std::uint64_t>& client_load() const { return load_; }
  const std::vector<bool>& client_alive() const { return client_alive_; }
  const std::vector<core::IterationChunk>& chunks() const { return chunks_; }

  std::size_t find_live(const std::string& id) const;  // npos when absent
  std::size_t num_live_workloads() const;
  std::size_t num_alive_clients() const;
  /// Live chunks in the standing table.
  std::size_t standing_chunks() const;
  std::uint64_t total_load() const;
  /// Global cut target: sum of live instances' requested clients,
  /// clamped to [1, live chunks].
  std::size_t cut_target() const;
  /// Max relative deviation of alive clients' loads from their mean.
  double imbalance() const;

  /// Engine-replayable solo mapping of one live instance: its chunks as
  /// WorkItems on the clients the standing placement assigns them,
  /// optionally restricted to the `sample_clients` busiest clients (0 =
  /// all).  Used for drift estimation and end-state cost accounting.
  core::MappingResult entry_mapping(std::size_t widx,
                                    std::size_t sample_clients = 0) const;

  /// Structural invariants: every live chunk in exactly one cluster,
  /// cluster iteration totals and per-client loads consistent, postings
  /// exactly the live chunks' bits, forest edges alive and acyclic.
  void check_invariants() const;

  /// Deterministic end-state serialization.  Chunks are named
  /// (instance id, local index) so the fingerprint is comparable across
  /// histories that assign different global ids.
  std::string fingerprint() const;

 private:
  struct DataKey {
    std::uint64_t tag_offset = 0;
    std::uint32_t num_data_chunks = 0;
    std::uint32_t live_instances = 0;
  };

  std::uint64_t chunk_order_key(std::uint32_t chunk) const;
  /// Scores each listed chunk row against the posting index (candidates
  /// strictly below the row id, same slot scheme as the offline kernel).
  std::vector<ForestEdge> score_rows(const std::vector<std::uint32_t>& rows,
                                     ThreadPool* pool,
                                     std::uint64_t* scored) const;
  void hook_edges(std::vector<ForestEdge> edges, DeltaStats* stats);
  void place_cluster(std::uint32_t cluster_index);
  bool chunk_live(std::uint32_t chunk) const;
  void rebuild_parent_from_forest();

  sim::MachineConfig machine_;
  topology::HierarchyTree tree_;
  ServeStateOptions options_;

  std::vector<WorkloadEntry> entries_;
  std::unordered_map<std::string, DataKey> data_keys_;
  std::uint64_t next_tag_offset_ = 0;

  std::vector<core::IterationChunk> chunks_;  // global, tags data-key-local
  std::vector<std::uint32_t> chunk_owner_;    // entry index per chunk

  /// Posting index: global bit key -> live chunk ids, ascending.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> postings_;

  /// Union-find over forest components; mutable so const queries can
  /// path-compress (semantically pure).
  mutable std::vector<std::uint32_t> parent_;
  std::vector<ForestEdge> forest_;        // hooked edges, append order

  std::vector<ServeCluster> clusters_;
  std::vector<std::uint32_t> cluster_of_chunk_;  // kUnplaced when none
  std::vector<std::uint64_t> load_;              // per client rank
  std::vector<bool> client_alive_;

  resilience::FaultSchedule faults_;  // cumulative history
};

}  // namespace mlsc::serve
