#include "serve/policy.h"

#include <sstream>

namespace mlsc::serve {

const char* remap_scope_name(RemapScope scope) {
  switch (scope) {
    case RemapScope::kNone:
      return "none";
    case RemapScope::kPatch:
      return "patch";
    case RemapScope::kPartial:
      return "partial";
    case RemapScope::kFull:
      return "full";
  }
  return "?";
}

Nanoseconds scope_pause(const ServePolicy& policy, RemapScope scope) {
  switch (scope) {
    case RemapScope::kNone:
      return 0;
    case RemapScope::kPatch:
      return policy.remap.remap_pause_ns / 16;
    case RemapScope::kPartial:
      return policy.remap.remap_pause_ns / 4;
    case RemapScope::kFull:
      return policy.remap.remap_pause_ns;
  }
  return 0;
}

PolicyVerdict decide_scope(const ServePolicy& policy,
                           const PolicyInputs& inputs) {
  PolicyVerdict verdict;
  switch (policy.force) {
    case ServePolicy::Force::kPatch:
      return {RemapScope::kPatch, "forced patch"};
    case ServePolicy::Force::kPartial:
      return {RemapScope::kPartial, "forced partial"};
    case ServePolicy::Force::kFull:
      return {RemapScope::kFull, "forced full"};
    case ServePolicy::Force::kAuto:
      break;
  }

  std::ostringstream reason;
  const double imbalance = inputs.imbalance_after_patch;
  if (!inputs.drift_exceeded && imbalance <= policy.patch_imbalance_limit) {
    reason << "imbalance " << imbalance << " within "
           << policy.patch_imbalance_limit;
    return {RemapScope::kPatch, reason.str()};
  }

  // Projected stall saving of restoring balance: the load excess over
  // the post-remap target, converted via the per-iteration estimate.
  const double excess =
      imbalance > policy.full_target_imbalance
          ? imbalance - policy.full_target_imbalance
          : 0.0;
  const auto savings = static_cast<Nanoseconds>(
      excess * static_cast<double>(inputs.total_iterations) *
      static_cast<double>(policy.est_iteration_ns));

  const bool hysteresis_open =
      !inputs.any_full_yet ||
      inputs.now >= inputs.last_full_at + policy.hysteresis_ns;
  if (savings > scope_pause(policy, RemapScope::kFull) && hysteresis_open) {
    reason << (inputs.drift_exceeded ? "drift + " : "")
           << "projected saving " << savings << "ns beats full pause "
           << scope_pause(policy, RemapScope::kFull) << "ns";
    return {RemapScope::kFull, reason.str()};
  }

  reason << (inputs.drift_exceeded ? "drift, " : "")
         << "imbalance " << imbalance << " over "
         << policy.patch_imbalance_limit
         << (hysteresis_open ? "" : " (full in hysteresis)");
  return {RemapScope::kPartial, reason.str()};
}

}  // namespace mlsc::serve
