// Minimal leveled logging.  Off by default so library users and tests run
// quietly; benchmarks can raise the level to trace mapping decisions.
#pragma once

#include <sstream>
#include <string>

namespace mlsc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" | "info" | "warn" | "error" | "off" (what
/// --log-level= accepts on mlsc_map and the bench binaries).  Returns
/// false and leaves `out` alone on anything else.
bool parse_log_level(const std::string& name, LogLevel* out);

namespace detail {
void log_message(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace mlsc

#define MLSC_LOG(level, ...)                                              \
  do {                                                                    \
    if (static_cast<int>(level) >= static_cast<int>(::mlsc::log_level())) \
      ::mlsc::detail::log_message(                                        \
          level, (::std::ostringstream{} << __VA_ARGS__).str());          \
  } while (false)

#define MLSC_DEBUG(...) MLSC_LOG(::mlsc::LogLevel::kDebug, __VA_ARGS__)
#define MLSC_INFO(...) MLSC_LOG(::mlsc::LogLevel::kInfo, __VA_ARGS__)
#define MLSC_WARN(...) MLSC_LOG(::mlsc::LogLevel::kWarn, __VA_ARGS__)
#define MLSC_ERROR(...) MLSC_LOG(::mlsc::LogLevel::kError, __VA_ARGS__)
