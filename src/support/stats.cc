#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace mlsc {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geomean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    MLSC_CHECK(v > 0.0, "geomean requires positive values, got " << v);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

QuantileRank quantile_rank(std::size_t count, double p) {
  MLSC_CHECK(count > 0, "quantile rank of an empty population");
  MLSC_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range: " << p);
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  QuantileRank out;
  out.index = std::min(static_cast<std::size_t>(rank), count - 1);
  out.fraction = rank - static_cast<double>(out.index);
  return out;
}

double lerp(double lo, double hi, double frac) {
  return lo * (1.0 - frac) + hi * frac;
}

double percentile_of(std::vector<double> values, double p) {
  MLSC_CHECK(!values.empty(), "percentile of empty vector");
  std::sort(values.begin(), values.end());
  const QuantileRank r = quantile_rank(values.size(), p);
  const std::size_t hi = std::min(r.index + 1, values.size() - 1);
  return lerp(values[r.index], values[hi], r.fraction);
}

double percent_improvement(double a, double b) {
  if (a == 0.0) return 0.0;
  return 100.0 * (a - b) / a;
}

}  // namespace mlsc
