#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace mlsc {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geomean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    MLSC_CHECK(v > 0.0, "geomean requires positive values, got " << v);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentile_of(std::vector<double> values, double p) {
  MLSC_CHECK(!values.empty(), "percentile of empty vector");
  MLSC_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range: " << p);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double percent_improvement(double a, double b) {
  if (a == 0.0) return 0.0;
  return 100.0 * (a - b) / a;
}

}  // namespace mlsc
