// A small fixed-size thread pool with a chunked parallel_for.
//
// The mapping pipeline's super-linear kernels (tagging, the pairwise
// similarity sweep, candidate scoring in clustering/balancing) are all
// data-parallel over an index range.  This pool runs such ranges as a
// fixed set of contiguous chunks: the chunk decomposition depends only on
// (begin, end, grain), never on scheduling, so callers that store
// per-chunk partial results and reduce them in chunk order get results
// that are bit-identical to a serial run regardless of thread count or
// timing.  There is no work stealing and no task graph — just fan-out,
// dynamic chunk claiming via one atomic counter, and a join.
//
// The calling thread participates in the work, so ThreadPool(n) uses n
// threads total (n-1 workers + the caller).  A pool of size <= 1 runs
// everything inline on the caller, making `ThreadPool*` + nullptr checks
// unnecessary for the serial path: pass a null pool or a 1-thread pool
// and the behaviour (and result) is the same.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlsc {

class ThreadPool {
 public:
  /// Creates a pool that runs jobs on `num_threads` threads total
  /// (including the caller).  0 means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Number of chunks parallel_chunks will create for a range — fixed by
  /// the arguments alone so reductions over per-chunk slots are
  /// deterministic.
  static std::size_t chunk_count(std::size_t begin, std::size_t end,
                                 std::size_t grain);

  /// Runs body(chunk, lo, hi) for every chunk of [begin, end), where
  /// chunk c covers [begin + c*grain, min(begin + (c+1)*grain, end)).
  /// Blocks until all chunks finish.  The first exception thrown by any
  /// chunk is rethrown on the calling thread (remaining chunks still
  /// run to completion or are drained).
  void parallel_chunks(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t chunk, std::size_t lo,
                               std::size_t hi)>& body);

  /// Convenience when the caller does not need chunk identity.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t lo,
                                             std::size_t hi)>& body) {
    parallel_chunks(begin, end, grain,
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      body(lo, hi);
                    });
  }

  /// A sensible grain for `range` items over this pool: a few chunks per
  /// thread for dynamic balancing without per-chunk overhead dominating.
  std::size_t default_grain(std::size_t range) const;

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body =
        nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t num_chunks = 0;
  };

  void worker_loop(std::size_t thread_index);
  void run_chunks(const Job& job, std::size_t thread_index);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  Job job_;
  std::uint64_t job_generation_ = 0;  // bumped per parallel_chunks call
  std::size_t workers_active_ = 0;
  bool shutting_down_ = false;

  std::atomic<std::size_t> next_chunk_{0};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

/// Resolves a user-facing thread-count knob: 0 = hardware concurrency,
/// otherwise the value itself (minimum 1).
std::size_t resolve_num_threads(std::size_t requested);

}  // namespace mlsc
