#include "support/obs_hook.h"

namespace mlsc::detail {

namespace {
std::atomic<const PoolObserver*> g_pool_observer{nullptr};
}  // namespace

const PoolObserver* pool_observer() {
  return g_pool_observer.load(std::memory_order_acquire);
}

void set_pool_observer(const PoolObserver* observer) {
  g_pool_observer.store(observer, std::memory_order_release);
}

}  // namespace mlsc::detail
