// Observer seam between the support layer and the obs library.
//
// The thread pool lives in mlsc_support, below mlsc_obs in the link
// order, so it cannot call the tracer/metrics registry directly.  The
// obs library installs callbacks here instead; the pool's hot path pays
// one relaxed pointer load when nobody is watching.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace mlsc::detail {

/// Callbacks the obs layer installs to watch pool execution.  Both take
/// absolute steady-clock nanosecond timestamps and the pool-local thread
/// index (workers are 0..n-2, the participating caller thread is n-1).
struct PoolObserver {
  /// A claimed chunk of a parallel_chunks job finished executing.
  void (*chunk_done)(std::size_t thread_index, std::uint64_t start_ns,
                     std::uint64_t end_ns) = nullptr;
  /// A worker woke up for a job after waiting idle since start_ns.
  void (*idle_done)(std::size_t thread_index, std::uint64_t start_ns,
                    std::uint64_t end_ns) = nullptr;
};

/// The installed observer, or nullptr (the common case).
const PoolObserver* pool_observer();

/// Installs `observer` process-wide.  Pass an object with static storage
/// duration; there is no uninstall — the obs layer gates each callback on
/// its own enabled flags instead.
void set_pool_observer(const PoolObserver* observer);

/// Absolute steady-clock timestamp in nanoseconds (the time base every
/// observer callback uses).
inline std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace mlsc::detail
