#include "support/dynamic_bitset.h"

#include <bit>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MLSC_BITSET_X86_DISPATCH 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define MLSC_BITSET_NEON 1
#include <arm_neon.h>
#endif

namespace mlsc {

namespace {

/// Portable fallback: four-wide unrolled popcount accumulation.
/// Independent accumulators break the loop-carried dependence so wide
/// cores can retire several popcounts per cycle.
std::size_t and_count_portable(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  std::size_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    t0 += std::popcount(a[i] & b[i]);
    t1 += std::popcount(a[i + 1] & b[i + 1]);
    t2 += std::popcount(a[i + 2] & b[i + 2]);
    t3 += std::popcount(a[i + 3] & b[i + 3]);
  }
  for (; i < n; ++i) t0 += std::popcount(a[i] & b[i]);
  return t0 + t1 + t2 + t3;
}

#if defined(MLSC_BITSET_X86_DISPATCH)
/// AVX2 AND + nibble-LUT popcount (Mula's pshufb method): each 256-bit
/// AND is popcounted via two 4-bit table lookups and horizontally summed
/// with SAD against zero — no cross-word dependence, ~4 words per step.
/// Compiled with a target attribute and dispatched at runtime, so the
/// binary stays runnable on pre-AVX2 machines.
__attribute__((target("avx2"))) std::size_t and_count_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                           _mm256_shuffle_epi8(lookup, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts,
                                                _mm256_setzero_si256()));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}
#endif  // MLSC_BITSET_X86_DISPATCH

#if defined(MLSC_BITSET_NEON)
/// NEON AND + per-byte popcount (vcnt) with horizontal byte sums; NEON
/// is baseline on aarch64, no dispatch needed.
std::size_t and_count_neon(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t v = vreinterpretq_u8_u64(
        vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    total += vaddvq_u8(vcntq_u8(v));  // <= 128, fits the u8 reduction
  }
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}
#endif  // MLSC_BITSET_NEON

}  // namespace

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

const char* DynamicBitset::simd_dispatch_level() {
#if defined(MLSC_BITSET_X86_DISPATCH)
  return cpu_has_avx2() ? "avx2" : "portable";
#elif defined(MLSC_BITSET_NEON)
  return "neon";
#else
  return "portable";
#endif
}

std::size_t DynamicBitset::and_count(const DynamicBitset& other) const {
  check_same_size(other);
  // This is the inner loop of similarity scoring (candidate pairs,
  // clustering, scheduling), so it gets the SIMD treatment: AVX2 when
  // the CPU has it, NEON on aarch64, the unrolled scalar loop otherwise.
  // All paths compute the same exact count.
  const std::uint64_t* a = words_.data();
  const std::uint64_t* b = other.words_.data();
  const std::size_t n = words_.size();
#if defined(MLSC_BITSET_X86_DISPATCH)
  if (n >= 8 && cpu_has_avx2()) return and_count_avx2(a, b, n);
#elif defined(MLSC_BITSET_NEON)
  if (n >= 4) return and_count_neon(a, b, n);
#endif
  return and_count_portable(a, b, n);
}

std::size_t DynamicBitset::hamming_distance(const DynamicBitset& other) const {
  check_same_size(other);
  const std::uint64_t* a = words_.data();
  const std::uint64_t* b = other.words_.data();
  const std::size_t n = words_.size();
  std::size_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    t0 += std::popcount(a[i] ^ b[i]);
    t1 += std::popcount(a[i + 1] ^ b[i + 1]);
    t2 += std::popcount(a[i + 2] ^ b[i + 2]);
    t3 += std::popcount(a[i + 3] ^ b[i + 3]);
  }
  for (; i < n; ++i) t0 += std::popcount(a[i] ^ b[i]);
  return t0 + t1 + t2 + t3;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

std::vector<std::uint32_t> DynamicBitset::set_bits() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<std::uint32_t>(wi * kWordBits + bit));
      w &= w - 1;
    }
  }
  return out;
}

std::string DynamicBitset::to_string() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (test(i)) out[i] = '1';
  }
  return out;
}

std::size_t DynamicBitset::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= size_;
  h *= 1099511628211ull;
  return static_cast<std::size_t>(h);
}

}  // namespace mlsc
