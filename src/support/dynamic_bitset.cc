#include "support/dynamic_bitset.h"

#include <bit>

namespace mlsc {

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

std::size_t DynamicBitset::and_count(const DynamicBitset& other) const {
  check_same_size(other);
  // Four-wide unrolled popcount accumulation: independent accumulators
  // break the loop-carried dependence so wide cores can retire several
  // popcounts per cycle.  This is the inner loop of the O(n^2) similarity
  // sweep, so it matters at scale.
  const std::uint64_t* a = words_.data();
  const std::uint64_t* b = other.words_.data();
  const std::size_t n = words_.size();
  std::size_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    t0 += std::popcount(a[i] & b[i]);
    t1 += std::popcount(a[i + 1] & b[i + 1]);
    t2 += std::popcount(a[i + 2] & b[i + 2]);
    t3 += std::popcount(a[i + 3] & b[i + 3]);
  }
  for (; i < n; ++i) t0 += std::popcount(a[i] & b[i]);
  return t0 + t1 + t2 + t3;
}

std::size_t DynamicBitset::hamming_distance(const DynamicBitset& other) const {
  check_same_size(other);
  const std::uint64_t* a = words_.data();
  const std::uint64_t* b = other.words_.data();
  const std::size_t n = words_.size();
  std::size_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    t0 += std::popcount(a[i] ^ b[i]);
    t1 += std::popcount(a[i + 1] ^ b[i + 1]);
    t2 += std::popcount(a[i + 2] ^ b[i + 2]);
    t3 += std::popcount(a[i + 3] ^ b[i + 3]);
  }
  for (; i < n; ++i) t0 += std::popcount(a[i] ^ b[i]);
  return t0 + t1 + t2 + t3;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

std::vector<std::uint32_t> DynamicBitset::set_bits() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<std::uint32_t>(wi * kWordBits + bit));
      w &= w - 1;
    }
  }
  return out;
}

std::string DynamicBitset::to_string() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (test(i)) out[i] = '1';
  }
  return out;
}

std::size_t DynamicBitset::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= size_;
  h *= 1099511628211ull;
  return static_cast<std::size_t>(h);
}

}  // namespace mlsc
