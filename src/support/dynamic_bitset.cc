#include "support/dynamic_bitset.h"

#include <bit>

namespace mlsc {

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

std::size_t DynamicBitset::and_count(const DynamicBitset& other) const {
  check_same_size(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & other.words_[i]);
  }
  return total;
}

std::size_t DynamicBitset::hamming_distance(const DynamicBitset& other) const {
  check_same_size(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] ^ other.words_[i]);
  }
  return total;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

std::vector<std::uint32_t> DynamicBitset::set_bits() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<std::uint32_t>(wi * kWordBits + bit));
      w &= w - 1;
    }
  }
  return out;
}

std::string DynamicBitset::to_string() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (test(i)) out[i] = '1';
  }
  return out;
}

std::size_t DynamicBitset::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= size_;
  h *= 1099511628211ull;
  return static_cast<std::size_t>(h);
}

}  // namespace mlsc
