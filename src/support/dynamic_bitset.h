// A compact, fixed-width-at-construction bitset with the bitwise
// operations the mapping algorithms need (popcount, AND-popcount,
// Hamming distance).  std::vector<bool> lacks word-level access and
// std::bitset is compile-time sized, hence this class.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.h"

namespace mlsc {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset with `size` bits, all cleared.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + kWordBits - 1) / kWordBits, 0) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(std::size_t pos) const {
    MLSC_DCHECK(pos < size_, "bit " << pos << " out of range " << size_);
    return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1u;
  }

  void set(std::size_t pos, bool value = true) {
    MLSC_DCHECK(pos < size_, "bit " << pos << " out of range " << size_);
    const std::uint64_t mask = std::uint64_t{1} << (pos % kWordBits);
    if (value) {
      words_[pos / kWordBits] |= mask;
    } else {
      words_[pos / kWordBits] &= ~mask;
    }
  }

  void reset() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t count() const;

  /// Number of positions where both bitsets have a 1 (popcount(a & b)).
  /// This is the paper's edge weight between two iteration-chunk tags.
  std::size_t and_count(const DynamicBitset& other) const;

  /// The SIMD kernel and_count dispatches to on this machine: "avx2",
  /// "neon" or "portable".  Stamped into run-record metadata so
  /// baselines recorded on different hardware are distinguishable.
  static const char* simd_dispatch_level();

  /// Number of positions where the bitsets differ (Hamming distance).
  std::size_t hamming_distance(const DynamicBitset& other) const;

  /// True if no position has a 1 in both bitsets (zero shared data).
  bool disjoint(const DynamicBitset& other) const {
    return and_count(other) == 0;
  }

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator^(DynamicBitset a, const DynamicBitset& b) {
    a ^= b;
    return a;
  }

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Indices of set bits in increasing order.
  std::vector<std::uint32_t> set_bits() const;

  /// Renders as a 0/1 string, most significant position last — matching
  /// the paper's tag notation λ0 λ1 ... λr-1 left to right.
  std::string to_string() const;

  /// FNV-1a hash over the words; suitable for hash-consing tags.
  std::size_t hash() const;

 private:
  static constexpr std::size_t kWordBits = 64;
  void check_same_size(const DynamicBitset& other) const {
    MLSC_CHECK(size_ == other.size_, "bitset size mismatch: " << size_
                                                              << " vs "
                                                              << other.size_);
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mlsc
