// Error handling primitives for the mlsc library.
//
// The library reports contract violations and invalid user input by
// throwing mlsc::Error.  MLSC_CHECK is always on; MLSC_DCHECK compiles
// away in NDEBUG builds and is reserved for internal invariants that are
// too hot to verify in release mode.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mlsc {

/// Exception type thrown on contract violations and invalid configuration.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& message);

/// Stream-style message builder used by the CHECK macros.
class CheckMessage {
 public:
  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace mlsc

/// Always-on invariant check; throws mlsc::Error on failure.
#define MLSC_CHECK(cond, ...)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::mlsc::detail::check_failed(                                       \
          __FILE__, __LINE__, #cond,                                      \
          (::mlsc::detail::CheckMessage{} << __VA_ARGS__).str());         \
    }                                                                     \
  } while (false)

/// Debug-only invariant check; removed when NDEBUG is defined.
#ifdef NDEBUG
#define MLSC_DCHECK(cond, ...) \
  do {                         \
  } while (false)
#else
#define MLSC_DCHECK(cond, ...) MLSC_CHECK(cond, __VA_ARGS__)
#endif
