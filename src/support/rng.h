// Deterministic random number generation.
//
// All stochastic pieces of the simulator (workload jitter, property-test
// inputs) draw from this generator so runs are reproducible from a seed.
#pragma once

#include <cstdint>

namespace mlsc {

/// xoshiro256** — small, fast, and high quality; seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the four lanes of state.
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      lane = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace mlsc
