// Small statistics helpers used by the metrics and benchmark layers.
#pragma once

#include <cstddef>
#include <vector>

namespace mlsc {

/// Streaming accumulator for count/mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Arithmetic mean of a vector; 0 for an empty vector.
double mean_of(const std::vector<double>& values);

/// Geometric mean; all values must be positive.
double geomean_of(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0, 100].
double percentile_of(std::vector<double> values, double p);

/// The fractional rank a percentile lands on in an ordered population of
/// `count` samples: rank = p/100 * (count - 1), split into the integer
/// index and the interpolation fraction toward index + 1.  The shared
/// definition behind percentile_of and obs::Histogram::quantile.
struct QuantileRank {
  std::size_t index = 0;
  double fraction = 0.0;

  double rank() const { return static_cast<double>(index) + fraction; }
};
QuantileRank quantile_rank(std::size_t count, double p);

/// Linear interpolation between lo and hi; frac in [0, 1].
double lerp(double lo, double hi, double frac);

/// Ratio of populations expressed as "percent improvement of b over a":
/// 100 * (a - b) / a.  Returns 0 when a == 0.
double percent_improvement(double a, double b);

}  // namespace mlsc
