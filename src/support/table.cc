#include "support/table.h"

#include <algorithm>
#include <ostream>

#include "support/check.h"
#include "support/string_util.h"

namespace mlsc {

namespace {

/// Visible width of a cell: ANSI SGR escape sequences (ESC [ ... m) take
/// no columns, so colorized cells (mlsc_bench_diff verdicts) still align.
std::size_t display_width(const std::string& s) {
  std::size_t width = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\x1b' && i + 1 < s.size() && s[i + 1] == '[') {
      i += 2;
      while (i < s.size() && s[i] != 'm') ++i;
      continue;
    }
    ++width;
  }
  return width;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MLSC_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  MLSC_CHECK(row.size() == header_.size(),
             "row arity " << row.size() << " != header arity "
                          << header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = display_width(header_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], display_width(row[c]));
    }
  }

  auto print_rule = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t visible = display_width(cells[c]);
      const std::size_t pad =
          widths[c] > visible ? widths[c] - visible : 0;
      out << ' ' << cells[c] << std::string(pad, ' ') << " |";
    }
    out << '\n';
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) print_cells(row);
  print_rule();
}

void Table::print_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      const bool needs_quotes =
          cells[c].find_first_of(",\"\n") != std::string::npos;
      if (needs_quotes) {
        out << '"';
        for (char ch : cells[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cells[c];
      }
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

namespace {

void emit_json_cells(std::ostream& out, const std::vector<std::string>& cells) {
  out << '[';
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c != 0) out << ", ";
    write_json_string(out, cells[c]);
  }
  out << ']';
}

}  // namespace

void Table::print_json(std::ostream& out, const std::string& title) const {
  out << "{\"title\": ";
  write_json_string(out, title);
  out << ", \"header\": ";
  emit_json_cells(out, header_);
  out << ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r != 0) out << ", ";
    out << "\n    ";
    emit_json_cells(out, rows_[r]);
  }
  out << "]}";
}

}  // namespace mlsc
