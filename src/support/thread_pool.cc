#include "support/thread_pool.h"

#include <algorithm>

#include "support/check.h"
#include "support/obs_hook.h"

namespace mlsc {

std::size_t resolve_num_threads(std::size_t requested) {
  if (requested != 0) return std::max<std::size_t>(1, requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t total = resolve_num_threads(num_threads);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  job_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::chunk_count(std::size_t begin, std::size_t end,
                                    std::size_t grain) {
  if (end <= begin) return 0;
  const std::size_t range = end - begin;
  const std::size_t g = std::max<std::size_t>(1, grain);
  return (range + g - 1) / g;
}

std::size_t ThreadPool::default_grain(std::size_t range) const {
  // Aim for ~4 chunks per thread so dynamic claiming can balance uneven
  // chunk costs (e.g. triangular sweeps) without excessive dispatch.
  const std::size_t target_chunks = num_threads() * 4;
  return std::max<std::size_t>(1, (range + target_chunks - 1) / target_chunks);
}

void ThreadPool::run_chunks(const Job& job, std::size_t thread_index) {
  for (;;) {
    const std::size_t chunk = next_chunk_.fetch_add(1);
    if (chunk >= job.num_chunks) break;
    const std::size_t lo = job.begin + chunk * job.grain;
    const std::size_t hi = std::min(job.end, lo + job.grain);
    const detail::PoolObserver* obs = detail::pool_observer();
    const std::uint64_t start_ns =
        obs != nullptr && obs->chunk_done != nullptr ? detail::steady_now_ns()
                                                     : 0;
    try {
      (*job.body)(chunk, lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (start_ns != 0) {
      obs->chunk_done(thread_index, start_ns, detail::steady_now_ns());
    }
  }
}

void ThreadPool::worker_loop(std::size_t thread_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job job;
    const std::uint64_t wait_start_ns = detail::steady_now_ns();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [&] {
        return shutting_down_ || job_generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = job_generation_;
      job = job_;
    }
    if (const detail::PoolObserver* obs = detail::pool_observer();
        obs != nullptr && obs->idle_done != nullptr) {
      obs->idle_done(thread_index, wait_start_ns, detail::steady_now_ns());
    }
    run_chunks(job, thread_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_active_;
    }
    job_done_.notify_one();
  }
}

void ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t chunks = chunk_count(begin, end, g);
  if (chunks == 0) return;

  if (workers_.empty() || chunks == 1) {
    // Inline serial path: same chunk decomposition, caller's thread only.
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * g;
      body(c, lo, std::min(end, lo + g));
    }
    return;
  }

  Job job;
  job.body = &body;
  job.begin = begin;
  job.end = end;
  job.grain = g;
  job.num_chunks = chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MLSC_CHECK(workers_active_ == 0,
               "ThreadPool::parallel_chunks is not reentrant");
    first_error_ = nullptr;
    next_chunk_.store(0);
    job_ = job;
    ++job_generation_;
    workers_active_ = workers_.size();
  }
  job_ready_.notify_all();

  run_chunks(job, workers_.size());  // the caller is a worker too

  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] { return workers_active_ == 0; });
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace mlsc
