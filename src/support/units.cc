#include "support/units.h"

#include <array>
#include <cstdio>

namespace mlsc {
namespace {

std::string format_scaled(double value, const char* unit) {
  std::array<char, 64> buf{};
  if (value == static_cast<std::uint64_t>(value) && value < 10000.0) {
    std::snprintf(buf.data(), buf.size(), "%llu %s",
                  static_cast<unsigned long long>(value), unit);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.2f %s", value, unit);
  }
  return buf.data();
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= kGiB) return format_scaled(static_cast<double>(bytes) / kGiB, "GiB");
  if (bytes >= kMiB) return format_scaled(static_cast<double>(bytes) / kMiB, "MiB");
  if (bytes >= kKiB) return format_scaled(static_cast<double>(bytes) / kKiB, "KiB");
  return format_scaled(static_cast<double>(bytes), "B");
}

std::string format_time(Nanoseconds ns) {
  if (ns >= kSecond) return format_scaled(static_cast<double>(ns) / kSecond, "s");
  if (ns >= kMillisecond)
    return format_scaled(static_cast<double>(ns) / kMillisecond, "ms");
  if (ns >= kMicrosecond)
    return format_scaled(static_cast<double>(ns) / kMicrosecond, "us");
  return format_scaled(static_cast<double>(ns), "ns");
}

}  // namespace mlsc
