// Byte-size and time units used throughout the simulator.
#pragma once

#include <cstdint>
#include <string>

namespace mlsc {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Simulated time is tracked in nanoseconds as a 64-bit count.
using Nanoseconds = std::uint64_t;

inline constexpr Nanoseconds kMicrosecond = 1000;
inline constexpr Nanoseconds kMillisecond = 1000 * kMicrosecond;
inline constexpr Nanoseconds kSecond = 1000 * kMillisecond;

/// Renders a byte count as a human readable string, e.g. "64 KiB", "2 GiB".
std::string format_bytes(std::uint64_t bytes);

/// Renders a nanosecond count as a human readable string, e.g. "1.25 ms".
std::string format_time(Nanoseconds ns);

}  // namespace mlsc
