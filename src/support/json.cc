#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/check.h"

namespace mlsc {

bool JsonValue::as_bool() const {
  MLSC_CHECK(is_bool(), "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  MLSC_CHECK(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  MLSC_CHECK(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  MLSC_CHECK(is_array(), "JSON value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  MLSC_CHECK(is_object(), "JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(double fallback) const {
  return is_number() ? number_ : fallback;
}

std::string JsonValue::string_or(std::string fallback) const {
  return is_string() ? string_ : fallback;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  /// Nesting depth where parsing stops: malicious or corrupt input must
  /// not be able to overflow the parser's recursion stack.
  static constexpr int kMaxDepth = 128;

  struct DepthGuard {
    explicit DepthGuard(Parser* parser) : parser(parser) {
      if (++parser->depth_ > kMaxDepth) {
        parser->fail("nesting deeper than " + std::to_string(kMaxDepth) +
                     " levels");
      }
    }
    ~DepthGuard() { --parser->depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser* parser;
  };

  [[noreturn]] void fail(const std::string& what) const {
    // Report 1-based line/column so editors can jump to the fault; the
    // byte offset stays for binary-ish inputs.
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw Error("JSON parse error at line " + std::to_string(line) +
                ", column " + std::to_string(column) + " (byte " +
                std::to_string(pos_) + "): " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    const DepthGuard guard(this);
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      for (const auto& [existing, value] : members) {
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') break;
      if (next != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    const DepthGuard guard(this);
    std::vector<JsonValue> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') break;
      if (next != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // The emitters only \u-escape the control range; encode the
          // general case as UTF-8 anyway (no surrogate-pair support).
          if (value < 0x80) {
            out.push_back(static_cast<char>(value));
          } else if (value < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (value >> 6)));
            out.push_back(static_cast<char>(0x80 | (value & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (value >> 12)));
            out.push_back(static_cast<char>(0x80 | ((value >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (value & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!digits()) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("bad fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) fail("bad exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

}  // namespace mlsc
