#include "support/log.h"

#include <atomic>
#include <iostream>

namespace mlsc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

bool parse_log_level(const std::string& name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warn") {
    *out = LogLevel::kWarn;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else if (name == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

namespace detail {
void log_message(LogLevel level, const std::string& message) {
  std::cerr << "[mlsc:" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace mlsc
