#include "support/string_util.h"

#include <array>
#include <cstdio>
#include <sstream>

namespace mlsc {

std::string join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::stringstream stream(s);
  std::string item;
  while (std::getline(stream, item, delim)) {
    out.push_back(item);
  }
  return out;
}

std::string format_double(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return buf.data();
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace mlsc
