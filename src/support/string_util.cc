#include "support/string_util.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace mlsc {

std::string join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::stringstream stream(s);
  std::string item;
  while (std::getline(stream, item, delim)) {
    out.push_back(item);
  }
  return out;
}

std::string format_double(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return buf.data();
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 when the
/// bytes there are not well-formed UTF-8 (overlong encodings, surrogate
/// code points, out-of-range leads and truncated tails all count as
/// invalid).
std::size_t utf8_sequence_length(std::string_view s, std::size_t i) {
  const auto lead = static_cast<unsigned char>(s[i]);
  std::size_t len = 0;
  if (lead >= 0xC2 && lead <= 0xDF) {
    len = 2;
  } else if ((lead & 0xF0) == 0xE0) {
    len = 3;
  } else if (lead >= 0xF0 && lead <= 0xF4) {
    len = 4;
  } else {
    return 0;
  }
  if (i + len > s.size()) return 0;
  for (std::size_t k = 1; k < len; ++k) {
    if ((static_cast<unsigned char>(s[i + k]) & 0xC0) != 0x80) return 0;
  }
  const auto second = static_cast<unsigned char>(s[i + 1]);
  if (lead == 0xE0 && second < 0xA0) return 0;  // overlong 3-byte form
  if (lead == 0xED && second > 0x9F) return 0;  // UTF-16 surrogate range
  if (lead == 0xF0 && second < 0x90) return 0;  // overlong 4-byte form
  if (lead == 0xF4 && second > 0x8F) return 0;  // beyond U+10FFFF
  return len;
}

}  // namespace

void write_json_string(std::ostream& out, std::string_view s) {
  constexpr const char* kHex = "0123456789abcdef";
  out << '"';
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto ch = static_cast<unsigned char>(s[i]);
    switch (ch) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\b':
        out << "\\b";
        break;
      case '\f':
        out << "\\f";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (ch < 0x20) {
          out << "\\u00" << kHex[(ch >> 4) & 0xF] << kHex[ch & 0xF];
        } else if (ch < 0x80) {
          out << s[i];
        } else if (const std::size_t len = utf8_sequence_length(s, i);
                   len > 0) {
          out << s.substr(i, len);
          i += len - 1;
        } else {
          // Invalid UTF-8 byte: substitute U+FFFD so the document stays
          // well-formed JSON instead of propagating the bad byte.
          out << "\\ufffd";
        }
    }
  }
  out << '"';
}

std::string json_quote(std::string_view s) {
  std::ostringstream out;
  write_json_string(out, s);
  return out.str();
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest form that round-trips a double (C++17 guarantees 17
  // significant decimal digits suffice); trailing zeros are harmless.
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", value);
  return buf.data();
}

std::string json_unquote(std::string_view literal) {
  MLSC_CHECK(literal.size() >= 2 && literal.front() == '"' &&
                 literal.back() == '"',
             "JSON string literal must be quoted");
  std::string out;
  out.reserve(literal.size() - 2);
  for (std::size_t i = 1; i + 1 < literal.size(); ++i) {
    const char c = literal[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    MLSC_CHECK(i + 2 < literal.size(), "dangling escape in JSON string");
    const char esc = literal[++i];
    switch (esc) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case '/':
        out += '/';
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        MLSC_CHECK(i + 4 + 1 < literal.size(), "truncated \\u escape");
        unsigned code = 0;
        for (int d = 0; d < 4; ++d) {
          const char h = literal[++i];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            MLSC_CHECK(false, "bad hex digit in \\u escape");
          }
        }
        MLSC_CHECK(code <= 0x7F, "json_unquote only decodes ASCII \\u escapes");
        out += static_cast<char>(code);
        break;
      }
      default:
        MLSC_CHECK(false, "unknown JSON escape \\" << esc);
    }
  }
  return out;
}

}  // namespace mlsc
