// Plain-text and CSV table rendering for benchmark output.
//
// Every bench binary prints the same rows/series the paper's tables and
// figures report; this class keeps that output aligned and consistent.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mlsc {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Aligned, boxed plain-text rendering.
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV rendering (quotes fields containing commas).
  void print_csv(std::ostream& out) const;

  /// One JSON object {"title", "header", "rows"} — the unit of the shared
  /// machine-readable bench format (bench --json=<path>).
  void print_json(std::ostream& out, const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mlsc
