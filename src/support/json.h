// Minimal JSON document model and recursive-descent parser.
//
// The observability layer writes several JSON documents (bench run
// records, metric registry dumps, Chrome trace files); the analysis
// tools (`mlsc_bench_diff`, `mlsc_report`) read them back.  This parser
// covers exactly the JSON those emitters produce — objects, arrays,
// strings with the escapes write_json_string emits, numbers, booleans
// and null — and rejects anything else with a position-stamped Error.
//
// Objects preserve insertion order (the emitters write sorted maps, and
// the report renders sections in file order).  Numbers are doubles;
// `null` parses to a NaN-valued number when read via number_or so the
// non-finite round-trip (json_number renders NaN/Inf as null) degrades
// gracefully instead of throwing.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mlsc {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; MLSC_CHECK-fail on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Forgiving accessors for optional fields: the fallback when this is
  /// absent-kinded (null) or the wrong kind.  number_or also maps null
  /// to the fallback, which is how emitted non-finite doubles read back.
  double number_or(double fallback) const;
  std::string string_or(std::string fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).  Malformed input throws Error with 1-based
/// line/column plus the byte offset.  Hardened against hostile input:
/// nesting beyond 128 levels and duplicate object keys are rejected
/// rather than silently accepted.
JsonValue parse_json(std::string_view text);

/// Reads and parses a JSON file.  Throws Error when the file cannot be
/// read or does not parse.
JsonValue parse_json_file(const std::string& path);

}  // namespace mlsc
