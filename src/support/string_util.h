// Small string helpers shared by the table printer and benchmarks.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mlsc {

/// Joins items with a separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& items,
                 const std::string& sep);

/// Splits on a single-character delimiter; no empty-trailing trimming.
std::vector<std::string> split(const std::string& s, char delim);

/// printf-style float formatting, e.g. format_double(0.12345, 3) == "0.123".
std::string format_double(double value, int precision);

/// Left-pads / right-pads to a width with spaces.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

/// Writes `s` as a JSON string literal: quoted, with quotes, backslashes
/// and all control characters (U+0000..U+001F) escaped.  The shared
/// emitter behind Table::print_json, the bench JSON documents and the
/// obs metrics/trace dumps.
void write_json_string(std::ostream& out, std::string_view s);

/// write_json_string into a returned string.
std::string json_quote(std::string_view s);

/// Formats a double as a JSON number token.  JSON has no NaN/Infinity,
/// so non-finite values render as `null`.
std::string json_number(double value);

/// Decodes a JSON string literal produced by write_json_string (used by
/// the round-trip tests; handles \uXXXX only for the control-character
/// range the emitter produces).  Throws Error on malformed input.
std::string json_unquote(std::string_view literal);

}  // namespace mlsc
