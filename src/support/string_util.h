// Small string helpers shared by the table printer and benchmarks.
#pragma once

#include <string>
#include <vector>

namespace mlsc {

/// Joins items with a separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& items,
                 const std::string& sep);

/// Splits on a single-character delimiter; no empty-trailing trimming.
std::vector<std::string> split(const std::string& s, char delim);

/// printf-style float formatting, e.g. format_double(0.12345, 3) == "0.123".
std::string format_double(double value, int precision);

/// Left-pads / right-pads to a width with spaces.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace mlsc
