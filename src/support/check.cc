#include "support/check.h"

#include <sstream>

namespace mlsc::detail {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::ostringstream out;
  out << "MLSC_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw Error(out.str());
}

}  // namespace mlsc::detail
