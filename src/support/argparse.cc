#include "support/argparse.h"

#include <cerrno>
#include <charconv>
#include <cstdlib>

#include "support/log.h"

namespace mlsc {

bool ArgParser::value_flag(const char* name) {
  const std::string prefix = std::string(name) + "=";
  if (arg_.rfind(prefix, 0) == 0) {
    flag_name_ = name;
    value_ = arg_.substr(prefix.size());
    return true;
  }
  if (arg_ == name) {
    if (i_ + 1 >= argc_) {
      throw UsageError(std::string("missing value for ") + name);
    }
    flag_name_ = name;
    value_ = argv_[++i_];
    return true;
  }
  return false;
}

std::uint64_t ArgParser::value_u64() const {
  std::uint64_t out = 0;
  const char* begin = value_.c_str();
  const char* end = begin + value_.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end || value_.empty()) {
    throw UsageError(flag_name_ + ": expected a non-negative integer, got '" +
                     value_ + "'");
  }
  return out;
}

double ArgParser::value_double() const {
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(value_.c_str(), &end);
  if (end == value_.c_str() || *end != '\0' || errno == ERANGE) {
    throw UsageError(flag_name_ + ": expected a number, got '" + value_ +
                     "'");
  }
  return out;
}

bool CommonToolOptions::match(ArgParser& args) {
  if (args.value_flag("--trace")) {
    trace_path = args.value();
  } else if (args.value_flag("--metrics")) {
    metrics_path = args.value();
  } else if (args.value_flag("--json")) {
    json_path = args.value();
  } else if (args.value_flag("--log-level")) {
    LogLevel level;
    if (!parse_log_level(args.value(), &level)) {
      throw UsageError("--log-level: unknown level '" + args.value() + "'");
    }
    set_log_level(level);
  } else if (accept_reps && args.value_flag("--reps")) {
    repetitions = args.value_u64();
    if (repetitions < 1) {
      throw UsageError("--reps: expected a positive count");
    }
  } else if (accept_explain && args.flag("--explain")) {
    explain = true;
  } else {
    return false;
  }
  return true;
}

std::string CommonToolOptions::usage(bool with_reps, bool with_explain) {
  std::string out =
      "  --trace PATH        write a Chrome trace_event JSON timeline\n"
      "  --metrics PATH      write the metrics registry as JSON on exit\n"
      "  --json PATH         write an mlsc-run-record-v1 run record for\n"
      "                      mlsc_bench_diff / mlsc_report\n"
      "  --log-level L       debug|info|warn|error|off (default warn)\n";
  if (with_reps) {
    out += "  --reps N            timing repetitions (default 1)\n";
  }
  if (with_explain) {
    out +=
        "  --explain           classify misses (compulsory/capacity/\n"
        "                      interference) and record reuse-distance\n"
        "                      curves per cache level (DESIGN.md \xC2\xA7"
        "18)\n";
  }
  return out;
}

}  // namespace mlsc
