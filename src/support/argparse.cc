#include "support/argparse.h"

#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace mlsc {

bool ArgParser::value_flag(const char* name) {
  const std::string prefix = std::string(name) + "=";
  if (arg_.rfind(prefix, 0) == 0) {
    flag_name_ = name;
    value_ = arg_.substr(prefix.size());
    return true;
  }
  if (arg_ == name) {
    if (i_ + 1 >= argc_) {
      throw UsageError(std::string("missing value for ") + name);
    }
    flag_name_ = name;
    value_ = argv_[++i_];
    return true;
  }
  return false;
}

std::uint64_t ArgParser::value_u64() const {
  std::uint64_t out = 0;
  const char* begin = value_.c_str();
  const char* end = begin + value_.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end || value_.empty()) {
    throw UsageError(flag_name_ + ": expected a non-negative integer, got '" +
                     value_ + "'");
  }
  return out;
}

double ArgParser::value_double() const {
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(value_.c_str(), &end);
  if (end == value_.c_str() || *end != '\0' || errno == ERANGE) {
    throw UsageError(flag_name_ + ": expected a number, got '" + value_ +
                     "'");
  }
  return out;
}

}  // namespace mlsc
