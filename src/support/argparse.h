// Minimal command-line parsing shared by the mlsc_* tools.
//
// The tools keep their own explicit flag lists (each one documents its
// surface in usage()); this helper standardizes the mechanics every list
// needs: "--flag value" and "--flag=value" both work, numeric values are
// parsed strictly (trailing garbage rejected), and every misuse throws
// UsageError so main() can print the usage text and exit with the shared
// usage exit code instead of crashing or dying on an uncaught exception.
#pragma once

#include <cstdint>
#include <string>

#include "support/check.h"

namespace mlsc {

/// CLI misuse: unknown flag, missing or malformed value.  Tools catch
/// this at top level, print the message and usage, and exit
/// kUsageExitCode.
class UsageError : public Error {
 public:
  using Error::Error;
};

/// Exit status for CLI misuse (distinct from 1 = runtime failure).
inline constexpr int kUsageExitCode = 3;

class ArgParser {
 public:
  ArgParser(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// Index of the current argument within argv (0 before the first
  /// next()).  Lets scanners that only consume a subset of the flags
  /// step over a value argument another pass will read.
  int index() const { return i_; }

  /// Advances to the next argument; false when exhausted.
  bool next() {
    if (i_ + 1 >= argc_) return false;
    arg_ = argv_[++i_];
    return true;
  }

  /// The current raw argument.
  const std::string& arg() const { return arg_; }

  /// True when the current argument is exactly `name` (boolean flag).
  bool flag(const char* name) const { return arg_ == name; }

  /// True when the current argument is `name=V` or `name` followed by a
  /// value argument; value() then returns V.  Throws UsageError when the
  /// value is missing.
  bool value_flag(const char* name);

  /// The value captured by the last matching value_flag().
  const std::string& value() const { return value_; }

  /// Typed conversions of value(); throw UsageError naming the flag on
  /// malformed input (partial parses and trailing garbage rejected).
  std::uint64_t value_u64() const;
  double value_double() const;

  /// Fails the current argument as unknown.
  [[noreturn]] void unknown() const {
    throw UsageError("unknown or misplaced argument '" + arg_ + "'");
  }

 private:
  int argc_;
  char** argv_;
  int i_ = 0;
  std::string arg_;
  std::string value_;
  std::string flag_name_;  // last value_flag match, for error messages
};

/// The output/observability flags every mlsc tool accepts —
/// --trace/--metrics/--json/--log-level, plus --reps for the binaries
/// that time repetitions.  One match() call per argument folds them into
/// any tool's parse loop; obs::ObsScope turns the captured paths into a
/// live trace/metrics session (tools own the run-record handling since
/// each stamps different tables).
struct CommonToolOptions {
  std::string trace_path;
  std::string metrics_path;
  std::string json_path;
  std::size_t repetitions = 1;
  /// Benches accept --reps; one-shot tools leave it unknown.
  bool accept_reps = false;
  /// --explain: attach the cache-insight profiler (DESIGN.md §18) to
  /// every simulated run.  Off by default — replay pays one null check
  /// per access when disabled.  Only matched when accept_explain is set.
  bool explain = false;
  bool accept_explain = false;

  /// Consumes the current argument when it is one of the shared flags
  /// (both "--flag value" and "--flag=value" forms); --log-level is
  /// applied immediately.  Returns false on any other argument.
  bool match(ArgParser& args);

  /// Usage text for the shared flags (one indented line each, trailing
  /// newline included).
  static std::string usage(bool with_reps = false,
                           bool with_explain = false);
};

}  // namespace mlsc
