// Code generation: turning iteration-rank ranges back into loop nests.
//
// The paper uses the Omega library's codegen(.) to emit loops that
// enumerate the iterations of each iteration chunk assigned to a client
// (§4.2).  Here a union of lexicographic rank ranges is decomposed into
// maximal boxes (hyper-rectangles), each of which prints as a perfect
// loop nest.
#pragma once

#include <string>
#include <vector>

#include "poly/iteration_space.h"
#include "poly/loop_nest.h"

namespace mlsc::poly {

/// A hyper-rectangular sub-space: inclusive bounds per loop.
using Box = std::vector<LoopBounds>;

/// Decomposes a set of lexicographic rank ranges into disjoint boxes
/// covering exactly the same iterations.  Ranges are normalized first.
/// Each range yields at most 2*depth+1 boxes.
std::vector<Box> ranges_to_boxes(const IterationSpace& space,
                                 std::vector<LinearRange> ranges);

/// Total number of iterations covered by a box list.
std::uint64_t boxes_size(const std::vector<Box>& boxes);

/// Emits C-like source that enumerates the given ranges as loop nests,
/// one per box, invoking `body` (e.g. "visit(i0, i1);") innermost.
std::string emit_range_loops(const IterationSpace& space,
                             const std::vector<LinearRange>& ranges,
                             const std::string& body);

/// Pretty-prints a whole loop nest (bounds plus references) as C-like
/// source, for diagnostics and examples.
std::string emit_nest_source(const Program& program, const LoopNest& nest);

}  // namespace mlsc::poly
