// Iteration orders: lexicographic, permuted, and tiled traversals.
//
// The intra-processor baseline (paper §5.1) applies loop permutation and
// iteration-space tiling before block-partitioning iterations across
// clients.  An IterationOrder captures those transformations and
// OrderWalker enumerates the space in the transformed order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "poly/iteration_space.h"

namespace mlsc::poly {

/// A legal reordering of a nest's traversal: a loop permutation (outer to
/// inner, entries are original loop indices) plus a tile size per
/// original loop (1 = untiled).  Tiling produces the classic structure:
/// tile loops over all permuted axes first, then point loops within the
/// current tile in the same permuted order.
struct IterationOrder {
  std::vector<std::size_t> permutation;
  std::vector<std::int64_t> tile_sizes;

  /// Identity order of the given depth (plain lexicographic traversal).
  static IterationOrder identity(std::size_t depth);

  bool is_identity() const;
  std::size_t depth() const { return permutation.size(); }

  /// Throws unless the permutation is a bijection and tile sizes are >= 1.
  void validate(const IterationSpace& space) const;

  std::string to_string() const;
};

/// Enumerates an iteration space in a transformed order.  Visits every
/// iteration exactly once; `current()` is always expressed in original
/// loop-index order so array maps apply unchanged.
class OrderWalker {
 public:
  OrderWalker(const IterationSpace& space, IterationOrder order);

  bool done() const { return done_; }
  const Iteration& current() const { return current_; }

  /// Advances to the next iteration in transformed order.
  void next();

  /// Position in the transformed sequence, starting at 0.
  std::uint64_t position() const { return position_; }

 private:
  void recompute_point_extents();
  void materialize_current();

  const IterationSpace& space_;
  IterationOrder order_;
  std::size_t depth_;
  bool done_ = false;
  std::uint64_t position_ = 0;

  // Virtual loop counters: tiles (outer), then points within the tile.
  std::vector<std::int64_t> tile_counts_;   // per permuted axis
  std::vector<std::int64_t> tile_index_;    // current tile per permuted axis
  std::vector<std::int64_t> point_extent_;  // extent of the current tile
  std::vector<std::int64_t> point_index_;   // offset inside current tile
  Iteration current_;
};

}  // namespace mlsc::poly
