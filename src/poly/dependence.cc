#include "poly/dependence.h"

#include <numeric>
#include <sstream>

#include "support/check.h"

namespace mlsc::poly {
namespace {

/// Tests one dimension of a reference pair with the GCD test:
/// sum(a_k * x_k) = c has integer solutions iff gcd(a_k) divides c.
/// Returns false when the dimension proves independence.
bool gcd_dim_may_depend(const AffineExpr& src, const AffineExpr& dst) {
  // src(sigma1) == dst(sigma2): treat sigma1 and sigma2 as independent
  // unknowns: sum(src.coeff * s_k) - sum(dst.coeff * t_k) = dst.c - src.c.
  std::int64_t g = 0;
  for (std::size_t k = 0; k < src.depth(); ++k) {
    g = std::gcd(g, src.coeff(k));
    g = std::gcd(g, dst.coeff(k));
  }
  const std::int64_t c = dst.constant_term() - src.constant_term();
  if (g == 0) return c == 0;
  return c % g == 0;
}

/// Computes a constant distance vector for a uniform pair (same linear
/// part).  Returns nullopt when the offsets are inconsistent (no
/// dependence) and marks loops whose distance is undetermined with "*".
std::optional<Distance> uniform_distance(const LoopNest& nest,
                                         const AccessMap& src,
                                         const AccessMap& dst) {
  const std::size_t depth = nest.depth();
  Distance dist(depth, std::nullopt);
  std::vector<bool> determined(depth, false);

  for (std::size_t d = 0; d < src.rank(); ++d) {
    const AffineExpr& e = src.expr(d);
    const std::int64_t delta =
        e.constant_term() - dst.expr(d).constant_term();
    if (e.is_constant()) {
      if (delta != 0) return std::nullopt;  // e.g. A[3] vs A[4]
      continue;
    }
    // Count the iterators this subscript couples.
    std::size_t nonzero = 0;
    std::size_t k = 0;
    for (std::size_t j = 0; j < depth; ++j) {
      if (e.coeff(j) != 0) {
        ++nonzero;
        k = j;
      }
    }
    if (nonzero == 1) {
      // c*(t_k - s_k) = src.c - dst.c  (solve for sink minus source);
      // a remainder means the strided accesses can never meet.
      const std::int64_t c = e.coeff(k);
      if (delta % c != 0) return std::nullopt;
      const std::int64_t value = delta / c;
      if (determined[k] && dist[k] != std::optional<std::int64_t>{value}) {
        return std::nullopt;  // inconsistent system
      }
      dist[k] = value;
      determined[k] = true;
      continue;
    }
    // Coupled subscript: fall back to "unknown" for its iterators.
    for (std::size_t j = 0; j < depth; ++j) {
      if (e.coeff(j) != 0 && !determined[j]) dist[j] = std::nullopt;
    }
  }

  // Loops not constrained by any subscript can take any distance; within
  // the same nest instance the canonical representative is 0 only if the
  // loop indexes nothing — conservatively leave them "*".  A distance
  // that is all-zero-or-star with at least one star still blocks
  // parallelization of the starred loops, which is the safe answer.
  return dist;
}

}  // namespace

std::optional<std::size_t> Dependence::carried_level() const {
  for (std::size_t k = 0; k < distance.size(); ++k) {
    if (!distance[k].has_value() || *distance[k] != 0) return k;
  }
  return std::nullopt;
}

std::string Dependence::to_string() const {
  std::ostringstream out;
  out << "ref" << src_ref << " -> ref" << dst_ref << " (";
  for (std::size_t k = 0; k < distance.size(); ++k) {
    if (k != 0) out << ", ";
    if (distance[k].has_value()) {
      out << *distance[k];
    } else {
      out << "*";
    }
  }
  out << ")";
  return out.str();
}

std::vector<Dependence> find_dependences(const LoopNest& nest) {
  std::vector<Dependence> deps;
  for (std::size_t a = 0; a < nest.refs.size(); ++a) {
    for (std::size_t b = 0; b < nest.refs.size(); ++b) {
      const ArrayRef& src = nest.refs[a];
      const ArrayRef& dst = nest.refs[b];
      if (src.array != dst.array) continue;
      if (!src.is_write && !dst.is_write) continue;
      if (a == b && !src.is_write) continue;

      // Indirect (gather/scatter) references have runtime-dependent
      // targets: any pair with a write is a conservative "*" dependence.
      if (src.is_indirect() || dst.is_indirect()) {
        if (a == b) continue;
        deps.push_back(
            Dependence{a, b, Distance(nest.depth(), std::nullopt)});
        continue;
      }

      if (src.map.same_linear_part(dst.map)) {
        if (a == b) continue;  // identical access: no cross-iteration dep
        auto dist = uniform_distance(nest, src.map, dst.map);
        if (!dist.has_value()) continue;
        // Skip the all-zero self-style distance for identical maps.
        bool all_zero = true;
        for (const auto& d : *dist) {
          if (!d.has_value() || *d != 0) {
            all_zero = false;
            break;
          }
        }
        if (all_zero && src.map == dst.map) continue;
        deps.push_back(Dependence{a, b, std::move(*dist)});
        continue;
      }

      // Non-uniform pair: GCD screen each dimension, then report an
      // all-unknown distance if the screen cannot disprove it.
      bool may_depend = true;
      for (std::size_t d = 0; d < src.map.rank() && may_depend; ++d) {
        may_depend = gcd_dim_may_depend(src.map.expr(d), dst.map.expr(d));
      }
      if (may_depend) {
        deps.push_back(
            Dependence{a, b, Distance(nest.depth(), std::nullopt)});
      }
    }
  }
  return deps;
}

bool is_parallel_loop(const std::vector<Dependence>& deps, std::size_t level) {
  for (const auto& dep : deps) {
    MLSC_CHECK(level < dep.distance.size(), "loop level out of range");
    const auto& d = dep.distance[level];
    if (!d.has_value() || *d != 0) {
      // This loop carries the dependence unless an outer loop already
      // carries it (then iterations of this loop within one outer
      // iteration are independent for this dependence).
      const auto carried = dep.carried_level();
      if (carried.has_value() && *carried == level) return false;
    }
  }
  return true;
}

std::optional<std::size_t> default_parallel_loop(
    const LoopNest& nest, const std::vector<Dependence>& deps) {
  for (std::size_t level = 0; level < nest.depth(); ++level) {
    if (is_parallel_loop(deps, level)) return level;
  }
  return std::nullopt;
}

std::vector<std::size_t> dependence_sinking_permutation(
    const LoopNest& nest, const std::vector<Dependence>& deps) {
  std::vector<bool> carries(nest.depth(), false);
  for (const auto& dep : deps) {
    const auto level = dep.carried_level();
    if (level.has_value()) carries[*level] = true;
  }
  std::vector<std::size_t> perm;
  perm.reserve(nest.depth());
  for (std::size_t k = 0; k < nest.depth(); ++k) {
    if (!carries[k]) perm.push_back(k);
  }
  for (std::size_t k = 0; k < nest.depth(); ++k) {
    if (carries[k]) perm.push_back(k);
  }
  return perm;
}

}  // namespace mlsc::poly
