// Constraint-based integer sets — the Omega-style polyhedral sets of the
// paper's §4.1 (G, H and the reference relation L) and §4.2 (the γΛ
// iteration-chunk expression).
//
// A set is a conjunction of affine inequalities  expr(i) >= 0  over the
// iterators of an n-deep nest, intersected with the nest's rectangular
// bounds.  The operations the mapping machinery needs are implemented
// exactly:
//   - membership, intersection, bounding box,
//   - emptiness via Fourier-Motzkin elimination (exact for the rational
//     relaxation; a final integer witness search over the eliminated box
//     makes the answer exact for the bounded sets used here),
//   - enumeration of members in lexicographic order,
//   - the preimage of a data chunk under an affine reference — the
//     building block of the paper's γΛ formula.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "poly/iteration_space.h"
#include "poly/loop_nest.h"

namespace mlsc::poly {

/// A conjunction of affine constraints `expr >= 0` over an iteration
/// space's iterators (the space's bounds are implicit constraints).
class IntegerSet {
 public:
  /// The universe set: all iterations of `space`.
  explicit IntegerSet(IterationSpace space);

  const IterationSpace& space() const { return space_; }
  const std::vector<AffineExpr>& constraints() const { return constraints_; }

  /// Adds the constraint `expr >= 0`; returns *this for chaining.
  IntegerSet& add_constraint(AffineExpr expr);

  /// Adds `lower <= expr <= upper`.
  IntegerSet& add_bounds(const AffineExpr& expr, std::int64_t lower,
                         std::int64_t upper);

  /// True when the point satisfies the space bounds and every constraint.
  bool contains(std::span<const std::int64_t> iter) const;

  /// Intersection; both sets must share the same iteration space.
  IntegerSet intersect(const IntegerSet& other) const;

  /// True when no integer point satisfies the constraints.  Decided by
  /// Fourier-Motzkin elimination; exact for these bounded sets.
  bool is_empty() const;

  /// The lexicographically enumerated members (intended for tests and
  /// codegen of small sets; cost is O(|space|) in the worst case).
  std::vector<Iteration> enumerate() const;

  /// Number of integer points (same cost caveat as enumerate()).
  std::uint64_t cardinality() const;

  /// Per-iterator bounds implied by the constraints (the rational
  /// bounding box intersected with the space, rounded inward).  nullopt
  /// when the set is empty.
  std::optional<std::vector<LoopBounds>> bounding_box() const;

  std::string to_string() const;

 private:
  IterationSpace space_;
  std::vector<AffineExpr> constraints_;
};

/// The set of iterations of `nest` whose reference `ref` touches any
/// byte of global data chunk `chunk` (paper §4.2: the per-chunk memberhip
/// test underlying γΛ).  Only direct (affine) references are supported;
/// the row-major flattening of an affine index vector is itself affine,
/// so the preimage is exact.  `chunk_size` and `first_chunk` describe the
/// array's chunking (from core::DataSpace).
IntegerSet chunk_preimage(const Program& program, const LoopNest& nest,
                          const ArrayRef& ref, std::uint64_t chunk_size_bytes,
                          std::uint64_t array_first_byte_of_chunk,
                          std::uint64_t array_last_byte_of_chunk);

/// Convenience: the flat byte-offset expression of a direct reference —
/// element_size * sum(index_d * stride_d), an affine form over iterators.
AffineExpr byte_offset_expr(const Program& program, const ArrayRef& ref);

}  // namespace mlsc::poly
