// Rectangular iteration spaces with lexicographic linearization.
//
// The paper's polyhedral set G = {(i1..in) | Lk <= ik <= Uk} (§4.1).
// Iteration chunks are stored as ranges of the lexicographic
// linearization of this space, so the space provides linearize /
// delinearize and sequential walking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "poly/affine.h"

namespace mlsc::poly {

/// One loop's inclusive bounds [lower, upper], unit stride.
struct LoopBounds {
  std::int64_t lower = 0;
  std::int64_t upper = -1;  // empty by default

  std::int64_t extent() const {
    return upper >= lower ? upper - lower + 1 : 0;
  }
  bool operator==(const LoopBounds&) const = default;
};

class IterationSpace {
 public:
  IterationSpace() = default;
  explicit IterationSpace(std::vector<LoopBounds> bounds);

  /// Convenience: bounds [0, extent_k) for each loop.
  static IterationSpace from_extents(
      const std::vector<std::int64_t>& extents);

  std::size_t depth() const { return bounds_.size(); }
  const LoopBounds& loop(std::size_t k) const { return bounds_[k]; }

  /// Total number of iterations (product of extents).
  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(std::span<const std::int64_t> iter) const;

  /// Lexicographic rank of an iteration: outermost loop most significant.
  std::uint64_t linearize(std::span<const std::int64_t> iter) const;

  /// Inverse of linearize.
  Iteration delinearize(std::uint64_t rank) const;

  /// Advances `iter` to the lexicographic successor in place; returns
  /// false when `iter` was the last iteration.  Cheaper than repeated
  /// delinearize when walking ranges.
  bool advance(Iteration& iter) const;

  /// The first iteration (all lower bounds); space must be non-empty.
  Iteration first() const;

  std::string to_string() const;
  bool operator==(const IterationSpace&) const = default;

 private:
  std::vector<LoopBounds> bounds_;
  std::uint64_t size_ = 0;
};

/// Half-open range [begin, end) of lexicographic ranks — the unit in
/// which iteration chunks own iterations.
struct LinearRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end > begin ? end - begin : 0; }
  bool empty() const { return size() == 0; }
  bool operator==(const LinearRange&) const = default;
};

/// Normalizes a range list: sorts, drops empties, merges adjacent and
/// overlapping ranges.  Total size is preserved for disjoint inputs.
std::vector<LinearRange> normalize_ranges(std::vector<LinearRange> ranges);

/// Sum of range sizes.
std::uint64_t total_range_size(const std::vector<LinearRange>& ranges);

}  // namespace mlsc::poly
