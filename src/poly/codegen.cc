#include "poly/codegen.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"

namespace mlsc::poly {
namespace {

/// Row-major strides: stride[k] = product of extents of loops k+1..n-1.
std::vector<std::uint64_t> strides_of(const IterationSpace& space) {
  const std::size_t depth = space.depth();
  std::vector<std::uint64_t> strides(depth, 1);
  for (std::size_t k = depth - 1; k-- > 0;) {
    strides[k] =
        strides[k + 1] * static_cast<std::uint64_t>(space.loop(k + 1).extent());
  }
  return strides;
}

void append_boxes_for_range(const IterationSpace& space,
                            const std::vector<std::uint64_t>& strides,
                            LinearRange range, std::vector<Box>& out) {
  const std::size_t depth = space.depth();
  std::uint64_t pos = range.begin;
  while (pos < range.end) {
    // Deepest level k whose stride divides pos and fits in the remainder;
    // searching from the outermost (largest stride) gives maximal boxes.
    std::size_t level = depth - 1;
    for (std::size_t k = 0; k < depth; ++k) {
      if (pos % strides[k] == 0 && pos + strides[k] <= range.end) {
        level = k;
        break;
      }
    }
    const Iteration at = space.delinearize(pos);
    // Number of whole level-sized blocks we can take without wrapping the
    // level coordinate past its extent.
    const std::uint64_t want = (range.end - pos) / strides[level];
    const auto coord =
        static_cast<std::uint64_t>(at[level] - space.loop(level).lower);
    const auto room =
        static_cast<std::uint64_t>(space.loop(level).extent()) - coord;
    const std::uint64_t take = std::max<std::uint64_t>(
        1, std::min(want, room));

    Box box(depth);
    for (std::size_t k = 0; k < depth; ++k) {
      if (k < level) {
        box[k] = LoopBounds{at[k], at[k]};
      } else if (k == level) {
        box[k] = LoopBounds{at[k],
                            at[k] + static_cast<std::int64_t>(take) - 1};
      } else {
        box[k] = space.loop(k);
      }
    }
    out.push_back(std::move(box));
    pos += take * strides[level];
  }
}

std::uint64_t box_size(const Box& box) {
  std::uint64_t n = 1;
  for (const auto& b : box) n *= static_cast<std::uint64_t>(b.extent());
  return n;
}

}  // namespace

std::vector<Box> ranges_to_boxes(const IterationSpace& space,
                                 std::vector<LinearRange> ranges) {
  MLSC_CHECK(space.depth() > 0, "codegen needs a non-empty space");
  ranges = normalize_ranges(std::move(ranges));
  const auto strides = strides_of(space);
  std::vector<Box> boxes;
  for (const auto& range : ranges) {
    MLSC_CHECK(range.end <= space.size(),
               "range end " << range.end << " beyond space size "
                            << space.size());
    append_boxes_for_range(space, strides, range, boxes);
  }
  return boxes;
}

std::uint64_t boxes_size(const std::vector<Box>& boxes) {
  std::uint64_t total = 0;
  for (const auto& b : boxes) total += box_size(b);
  return total;
}

std::string emit_range_loops(const IterationSpace& space,
                             const std::vector<LinearRange>& ranges,
                             const std::string& body) {
  const auto boxes = ranges_to_boxes(space, ranges);
  std::ostringstream out;
  for (const auto& box : boxes) {
    std::string indent;
    for (std::size_t k = 0; k < box.size(); ++k) {
      if (box[k].lower == box[k].upper) {
        out << indent << "{ const long i" << k << " = " << box[k].lower
            << ";\n";
      } else {
        out << indent << "for (long i" << k << " = " << box[k].lower
            << "; i" << k << " <= " << box[k].upper << "; ++i" << k
            << ") {\n";
      }
      indent += "  ";
    }
    out << indent << body << "\n";
    for (std::size_t k = box.size(); k-- > 0;) {
      indent.resize(indent.size() - 2);
      out << indent << "}\n";
    }
  }
  return out.str();
}

std::string emit_nest_source(const Program& program, const LoopNest& nest) {
  std::ostringstream out;
  out << "// nest " << nest.name << "\n";
  std::string indent;
  for (std::size_t k = 0; k < nest.depth(); ++k) {
    const auto& b = nest.space.loop(k);
    out << indent << "for (long i" << k << " = " << b.lower << "; i" << k
        << " <= " << b.upper << "; ++i" << k << ") {\n";
    indent += "  ";
  }
  for (const auto& ref : nest.refs) {
    out << indent << (ref.is_write ? "write " : "read  ")
        << program.array(ref.array).name << ref.map.to_string() << ";\n";
  }
  for (std::size_t k = nest.depth(); k-- > 0;) {
    indent.resize(indent.size() - 2);
    out << indent << "}\n";
  }
  return out.str();
}

}  // namespace mlsc::poly
