// The loop-nest IR the mapping pass consumes.
//
// This plays the role of the Phoenix compiler IR in the paper: workload
// programs are written as Programs of LoopNests over disk-resident
// ArrayDecls, and every pass (tagging, mapping, scheduling, codegen)
// operates on this representation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "poly/affine.h"
#include "poly/iteration_space.h"
#include "support/units.h"

namespace mlsc::poly {

using ArrayId = std::uint32_t;
using NestId = std::uint32_t;

/// A disk-resident array: logical dimensions in elements plus the size of
/// one element in bytes.  Out-of-core codes use coarse elements (records,
/// tiles); the element size expresses that granularity.
struct ArrayDecl {
  std::string name;
  std::vector<std::int64_t> dims;  // extent per dimension, elements
  std::uint64_t element_size_bytes = 8;

  std::uint64_t num_elements() const {
    std::uint64_t n = 1;
    for (std::int64_t d : dims) n *= static_cast<std::uint64_t>(d);
    return n;
  }
  std::uint64_t size_bytes() const {
    return num_elements() * element_size_bytes;
  }

  /// Row-major flattening of an index vector to an element offset.
  std::uint64_t flatten(std::span<const std::int64_t> index) const;

  /// True when the index vector is inside the array bounds.
  bool in_bounds(std::span<const std::int64_t> index) const;
};

/// A materialized index array for irregular (gather/scatter) references:
/// a 1-D table of flat element indices into some target array.  The
/// paper lists irregular access patterns as future work (§7); this is
/// the extension that supports them.
struct IndexTable {
  std::string name;
  std::vector<std::int64_t> values;  // flat element indices, 1-D
};

using IndexTableId = std::int32_t;
inline constexpr IndexTableId kNoIndexTable = -1;

/// One array reference in a loop body: which array, the affine map from
/// iterations to indices, and whether it writes.
///
/// Direct reference  (index_table < 0):  element = map(iter), row-major.
/// Indirect reference (index_table set): map must be rank 1; the accessed
/// flat element is table.values[map(iter)] — e.g. nodes[edge_src[e]].
struct ArrayRef {
  ArrayId array = 0;
  AccessMap map;
  bool is_write = false;
  IndexTableId index_table = kNoIndexTable;

  bool is_indirect() const { return index_table != kNoIndexTable; }
};

/// A (possibly parallelized) loop nest over disk-resident arrays.
struct LoopNest {
  std::string name;
  IterationSpace space;
  std::vector<ArrayRef> refs;

  /// Simulated compute cost of one iteration, excluding I/O stalls.
  Nanoseconds compute_ns_per_iteration = 100;

  std::size_t depth() const { return space.depth(); }
};

/// A whole application: its disk-resident arrays plus its loop nests.
struct Program {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<LoopNest> nests;
  std::vector<IndexTable> index_tables;

  ArrayId add_array(ArrayDecl decl);
  NestId add_nest(LoopNest nest);
  IndexTableId add_index_table(IndexTable table);

  const ArrayDecl& array(ArrayId id) const;
  const LoopNest& nest(NestId id) const;
  const IndexTable& index_table(IndexTableId id) const;

  /// Total bytes across all disk-resident arrays.
  std::uint64_t total_data_bytes() const;

  /// Total iterations across all nests.
  std::uint64_t total_iterations() const;

  /// Validates that every reference stays in bounds on the corner points
  /// of its iteration space (cheap smoke check used by workload ctors),
  /// and that every index table entry is a valid element of every array
  /// accessed through it.
  void validate() const;
};

/// The flat element index `ref` accesses at `iter` — the one place that
/// understands both direct (row-major affine) and indirect (index-table)
/// references.  Used by tagging, trace generation and the locality model.
std::uint64_t resolve_element(const Program& program, const ArrayRef& ref,
                              std::span<const std::int64_t> iter);

}  // namespace mlsc::poly
