#include "poly/iteration_space.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"

namespace mlsc::poly {

IterationSpace::IterationSpace(std::vector<LoopBounds> bounds)
    : bounds_(std::move(bounds)) {
  size_ = bounds_.empty() ? 0 : 1;
  for (const auto& b : bounds_) {
    size_ *= static_cast<std::uint64_t>(b.extent());
  }
}

IterationSpace IterationSpace::from_extents(
    const std::vector<std::int64_t>& extents) {
  std::vector<LoopBounds> bounds;
  bounds.reserve(extents.size());
  for (std::int64_t e : extents) {
    MLSC_CHECK(e >= 0, "negative loop extent " << e);
    bounds.push_back(LoopBounds{0, e - 1});
  }
  return IterationSpace(std::move(bounds));
}

bool IterationSpace::contains(std::span<const std::int64_t> iter) const {
  if (iter.size() != bounds_.size()) return false;
  for (std::size_t k = 0; k < bounds_.size(); ++k) {
    if (iter[k] < bounds_[k].lower || iter[k] > bounds_[k].upper) return false;
  }
  return true;
}

std::uint64_t IterationSpace::linearize(
    std::span<const std::int64_t> iter) const {
  MLSC_DCHECK(contains(iter), "iteration outside space");
  std::uint64_t rank = 0;
  for (std::size_t k = 0; k < bounds_.size(); ++k) {
    rank = rank * static_cast<std::uint64_t>(bounds_[k].extent()) +
           static_cast<std::uint64_t>(iter[k] - bounds_[k].lower);
  }
  return rank;
}

Iteration IterationSpace::delinearize(std::uint64_t rank) const {
  MLSC_DCHECK(rank < size_, "rank " << rank << " out of " << size_);
  Iteration iter(bounds_.size());
  for (std::size_t k = bounds_.size(); k-- > 0;) {
    const auto extent = static_cast<std::uint64_t>(bounds_[k].extent());
    iter[k] = bounds_[k].lower + static_cast<std::int64_t>(rank % extent);
    rank /= extent;
  }
  return iter;
}

bool IterationSpace::advance(Iteration& iter) const {
  MLSC_DCHECK(iter.size() == bounds_.size(), "iteration arity mismatch");
  for (std::size_t k = bounds_.size(); k-- > 0;) {
    if (iter[k] < bounds_[k].upper) {
      ++iter[k];
      for (std::size_t j = k + 1; j < bounds_.size(); ++j) {
        iter[j] = bounds_[j].lower;
      }
      return true;
    }
  }
  return false;
}

Iteration IterationSpace::first() const {
  MLSC_CHECK(!empty(), "first() on empty iteration space");
  Iteration iter(bounds_.size());
  for (std::size_t k = 0; k < bounds_.size(); ++k) iter[k] = bounds_[k].lower;
  return iter;
}

std::string IterationSpace::to_string() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t k = 0; k < bounds_.size(); ++k) {
    if (k != 0) out << " && ";
    out << bounds_[k].lower << " <= i" << k << " <= " << bounds_[k].upper;
  }
  out << "}";
  return out.str();
}

std::vector<LinearRange> normalize_ranges(std::vector<LinearRange> ranges) {
  std::erase_if(ranges, [](const LinearRange& r) { return r.empty(); });
  std::sort(ranges.begin(), ranges.end(),
            [](const LinearRange& a, const LinearRange& b) {
              return a.begin < b.begin;
            });
  std::vector<LinearRange> out;
  for (const auto& r : ranges) {
    if (!out.empty() && r.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, r.end);
    } else {
      out.push_back(r);
    }
  }
  return out;
}

std::uint64_t total_range_size(const std::vector<LinearRange>& ranges) {
  std::uint64_t total = 0;
  for (const auto& r : ranges) total += r.size();
  return total;
}

}  // namespace mlsc::poly
