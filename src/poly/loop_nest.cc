#include "poly/loop_nest.h"

#include "support/check.h"

namespace mlsc::poly {

std::uint64_t ArrayDecl::flatten(std::span<const std::int64_t> index) const {
  MLSC_DCHECK(index.size() == dims.size(),
              "index arity " << index.size() << " != rank " << dims.size());
  std::uint64_t offset = 0;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    MLSC_DCHECK(index[d] >= 0 && index[d] < dims[d],
                "array " << name << " index " << index[d]
                         << " out of bounds in dim " << d);
    offset = offset * static_cast<std::uint64_t>(dims[d]) +
             static_cast<std::uint64_t>(index[d]);
  }
  return offset;
}

bool ArrayDecl::in_bounds(std::span<const std::int64_t> index) const {
  if (index.size() != dims.size()) return false;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (index[d] < 0 || index[d] >= dims[d]) return false;
  }
  return true;
}

ArrayId Program::add_array(ArrayDecl decl) {
  arrays.push_back(std::move(decl));
  return static_cast<ArrayId>(arrays.size() - 1);
}

NestId Program::add_nest(LoopNest nest) {
  nests.push_back(std::move(nest));
  return static_cast<NestId>(nests.size() - 1);
}

IndexTableId Program::add_index_table(IndexTable table) {
  index_tables.push_back(std::move(table));
  return static_cast<IndexTableId>(index_tables.size() - 1);
}

const ArrayDecl& Program::array(ArrayId id) const {
  MLSC_CHECK(id < arrays.size(), "array id " << id << " out of range");
  return arrays[id];
}

const IndexTable& Program::index_table(IndexTableId id) const {
  MLSC_CHECK(id >= 0 && static_cast<std::size_t>(id) < index_tables.size(),
             "index table " << id << " out of range");
  return index_tables[static_cast<std::size_t>(id)];
}

std::uint64_t resolve_element(const Program& program, const ArrayRef& ref,
                              std::span<const std::int64_t> iter) {
  if (!ref.is_indirect()) {
    thread_local std::vector<std::int64_t> index;
    index.clear();
    for (std::size_t d = 0; d < ref.map.rank(); ++d) {
      index.push_back(ref.map.apply_dim(d, iter));
    }
    return program.array(ref.array).flatten(index);
  }
  MLSC_DCHECK(ref.map.rank() == 1, "indirect references use a rank-1 map");
  const IndexTable& table = program.index_table(ref.index_table);
  const std::int64_t pos = ref.map.apply_dim(0, iter);
  MLSC_DCHECK(pos >= 0 &&
                  pos < static_cast<std::int64_t>(table.values.size()),
              "index table position out of range");
  const std::int64_t element = table.values[static_cast<std::size_t>(pos)];
  MLSC_DCHECK(element >= 0 &&
                  static_cast<std::uint64_t>(element) <
                      program.array(ref.array).num_elements(),
              "index table entry outside the target array");
  return static_cast<std::uint64_t>(element);
}

const LoopNest& Program::nest(NestId id) const {
  MLSC_CHECK(id < nests.size(), "nest id " << id << " out of range");
  return nests[id];
}

std::uint64_t Program::total_data_bytes() const {
  std::uint64_t total = 0;
  for (const auto& a : arrays) total += a.size_bytes();
  return total;
}

std::uint64_t Program::total_iterations() const {
  std::uint64_t total = 0;
  for (const auto& n : nests) total += n.space.size();
  return total;
}

void Program::validate() const {
  for (const auto& nest : nests) {
    MLSC_CHECK(!nest.space.empty(), "nest " << nest.name << " is empty");
    // Check every reference on every corner of the iteration space: for
    // affine maps over a box, extrema occur at corners, so in-bounds
    // corners imply in-bounds everywhere.
    const std::size_t depth = nest.depth();
    MLSC_CHECK(depth <= 20, "nest too deep for corner enumeration");
    for (std::uint64_t corner = 0; corner < (std::uint64_t{1} << depth);
         ++corner) {
      Iteration iter(depth);
      for (std::size_t k = 0; k < depth; ++k) {
        const auto& b = nest.space.loop(k);
        iter[k] = (corner >> k) & 1 ? b.upper : b.lower;
      }
      for (const auto& ref : nest.refs) {
        MLSC_CHECK(ref.array < arrays.size(),
                   "nest " << nest.name << " references unknown array");
        if (ref.is_indirect()) {
          MLSC_CHECK(ref.map.rank() == 1,
                     "indirect reference in " << nest.name
                                              << " must use a rank-1 map");
          const auto& table = index_table(ref.index_table);
          const std::int64_t pos = ref.map.apply_dim(0, iter);
          MLSC_CHECK(pos >= 0 && pos < static_cast<std::int64_t>(
                                           table.values.size()),
                     "nest " << nest.name
                             << " indexes past table " << table.name);
          continue;
        }
        const auto index = ref.map.apply(iter);
        MLSC_CHECK(arrays[ref.array].in_bounds(index),
                   "nest " << nest.name << " ref " << ref.map.to_string()
                           << " out of bounds of array "
                           << arrays[ref.array].name);
      }
    }
    // Every index table used by this nest must only hold valid elements
    // of the arrays accessed through it.
    for (const auto& ref : nest.refs) {
      if (!ref.is_indirect()) continue;
      const auto& table = index_table(ref.index_table);
      const std::uint64_t limit = arrays[ref.array].num_elements();
      for (std::int64_t v : table.values) {
        MLSC_CHECK(v >= 0 && static_cast<std::uint64_t>(v) < limit,
                   "table " << table.name << " entry " << v
                            << " outside array " << arrays[ref.array].name);
      }
    }
  }
}

}  // namespace mlsc::poly
