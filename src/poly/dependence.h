// Data dependence analysis over the loop-nest IR.
//
// Used in two places (paper §3 and §5.4): the default parallelization
// strategy ("place all data dependences into inner loop positions, then
// parallelize the outermost dependence-free loop"), and the dependence-
// aware mapping extension (dependences become sharing edges; correctness
// is restored with synchronization at schedule time).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "poly/loop_nest.h"

namespace mlsc::poly {

/// A per-loop dependence distance.  nullopt means the distance is not a
/// compile-time constant in that loop ("*" direction, treated
/// conservatively as carried).
using Distance = std::vector<std::optional<std::int64_t>>;

struct Dependence {
  std::size_t src_ref = 0;  // index into LoopNest::refs (the source access)
  std::size_t dst_ref = 0;  // index into LoopNest::refs (the sink access)
  Distance distance;        // sink iteration minus source iteration

  /// Index of the outermost loop with a non-zero (or unknown) distance,
  /// or nullopt for a loop-independent dependence (all-zero distance).
  std::optional<std::size_t> carried_level() const;

  std::string to_string() const;
};

/// All flow/anti/output dependences between reference pairs of a nest
/// (pairs touching the same array where at least one access writes).
/// Uniform pairs (same access matrix) yield constant distances; other
/// pairs are screened with a per-dimension GCD test and reported with
/// unknown ("*") distances when the test cannot disprove them.
std::vector<Dependence> find_dependences(const LoopNest& nest);

/// True when loop `level` carries none of the dependences.
bool is_parallel_loop(const std::vector<Dependence>& deps, std::size_t level);

/// The paper's default parallelization: the outermost loop that carries
/// no dependence, or nullopt when every loop carries one.
std::optional<std::size_t> default_parallel_loop(
    const LoopNest& nest, const std::vector<Dependence>& deps);

/// A permutation (outer to inner, in original loop indices) that sinks
/// all dependence-carrying loops to the innermost positions, preserving
/// the original relative order within each class.
std::vector<std::size_t> dependence_sinking_permutation(
    const LoopNest& nest, const std::vector<Dependence>& deps);

}  // namespace mlsc::poly
