#include "poly/order.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/check.h"

namespace mlsc::poly {

IterationOrder IterationOrder::identity(std::size_t depth) {
  IterationOrder order;
  order.permutation.resize(depth);
  std::iota(order.permutation.begin(), order.permutation.end(), 0);
  order.tile_sizes.assign(depth, 1);
  return order;
}

bool IterationOrder::is_identity() const {
  for (std::size_t k = 0; k < permutation.size(); ++k) {
    if (permutation[k] != k) return false;
  }
  for (std::int64_t t : tile_sizes) {
    if (t != 1) return false;
  }
  return true;
}

void IterationOrder::validate(const IterationSpace& space) const {
  MLSC_CHECK(permutation.size() == space.depth(),
             "permutation arity " << permutation.size() << " != depth "
                                  << space.depth());
  MLSC_CHECK(tile_sizes.size() == space.depth(),
             "tile-size arity " << tile_sizes.size() << " != depth "
                                << space.depth());
  std::vector<bool> seen(space.depth(), false);
  for (std::size_t p : permutation) {
    MLSC_CHECK(p < space.depth(), "permutation entry " << p << " out of range");
    MLSC_CHECK(!seen[p], "permutation repeats loop " << p);
    seen[p] = true;
  }
  for (std::int64_t t : tile_sizes) {
    MLSC_CHECK(t >= 1, "tile size must be >= 1, got " << t);
  }
}

std::string IterationOrder::to_string() const {
  std::ostringstream out;
  out << "perm(";
  for (std::size_t k = 0; k < permutation.size(); ++k) {
    if (k != 0) out << ",";
    out << "i" << permutation[k];
  }
  out << ") tiles(";
  for (std::size_t k = 0; k < tile_sizes.size(); ++k) {
    if (k != 0) out << ",";
    out << tile_sizes[k];
  }
  out << ")";
  return out.str();
}

OrderWalker::OrderWalker(const IterationSpace& space, IterationOrder order)
    : space_(space), order_(std::move(order)), depth_(space.depth()) {
  order_.validate(space_);
  done_ = space_.empty();
  tile_counts_.resize(depth_);
  tile_index_.assign(depth_, 0);
  point_extent_.resize(depth_);
  point_index_.assign(depth_, 0);
  current_.resize(depth_);
  for (std::size_t j = 0; j < depth_; ++j) {
    const std::size_t axis = order_.permutation[j];
    const std::int64_t extent = space_.loop(axis).extent();
    const std::int64_t tile = order_.tile_sizes[axis];
    tile_counts_[j] = (extent + tile - 1) / tile;
  }
  if (!done_) {
    recompute_point_extents();
    materialize_current();
  }
}

void OrderWalker::recompute_point_extents() {
  for (std::size_t j = 0; j < depth_; ++j) {
    const std::size_t axis = order_.permutation[j];
    const std::int64_t extent = space_.loop(axis).extent();
    const std::int64_t tile = order_.tile_sizes[axis];
    const std::int64_t start = tile_index_[j] * tile;
    point_extent_[j] = std::min(tile, extent - start);
  }
}

void OrderWalker::materialize_current() {
  for (std::size_t j = 0; j < depth_; ++j) {
    const std::size_t axis = order_.permutation[j];
    const std::int64_t tile = order_.tile_sizes[axis];
    current_[axis] =
        space_.loop(axis).lower + tile_index_[j] * tile + point_index_[j];
  }
}

void OrderWalker::next() {
  MLSC_DCHECK(!done_, "next() past the end");
  ++position_;
  // Advance point loops, innermost (last permuted axis) first.
  for (std::size_t j = depth_; j-- > 0;) {
    if (point_index_[j] + 1 < point_extent_[j]) {
      ++point_index_[j];
      for (std::size_t r = j + 1; r < depth_; ++r) point_index_[r] = 0;
      materialize_current();
      return;
    }
  }
  // Point loops exhausted: advance tile loops, innermost first.
  for (std::size_t j = depth_; j-- > 0;) {
    if (tile_index_[j] + 1 < tile_counts_[j]) {
      ++tile_index_[j];
      for (std::size_t r = j + 1; r < depth_; ++r) tile_index_[r] = 0;
      std::fill(point_index_.begin(), point_index_.end(), 0);
      recompute_point_extents();
      materialize_current();
      return;
    }
  }
  done_ = true;
}

}  // namespace mlsc::poly
