// Affine expressions and maps over loop iterators.
//
// An array reference R(i) = Q*i + q (paper §2) is modelled as an
// AccessMap: one AffineExpr per array dimension.  This is the part of the
// Omega library's functionality the mapping algorithm actually needs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mlsc::poly {

/// A loop iteration: the value of each iterator, outermost first.
using Iteration = std::vector<std::int64_t>;

/// c0 + c1*i1 + c2*i2 + ... over the iterators of an n-deep nest.
class AffineExpr {
 public:
  AffineExpr() = default;

  /// coeffs[k] multiplies iterator k (outermost first).
  AffineExpr(std::vector<std::int64_t> coeffs, std::int64_t constant);

  /// The expression `constant` over a nest of `depth` iterators.
  static AffineExpr constant(std::size_t depth, std::int64_t value);

  /// The expression `i_k + offset` over a nest of `depth` iterators.
  static AffineExpr iterator(std::size_t depth, std::size_t k,
                             std::int64_t offset = 0);

  std::size_t depth() const { return coeffs_.size(); }
  std::int64_t coeff(std::size_t k) const { return coeffs_[k]; }
  std::int64_t constant_term() const { return constant_; }

  std::int64_t evaluate(std::span<const std::int64_t> iter) const;

  /// True when the expression ignores all iterators.
  bool is_constant() const;

  /// True when exactly one coefficient is 1 and the rest are 0.
  bool is_single_iterator() const;

  /// Index of the unique non-zero coefficient; requires one to exist.
  std::size_t single_iterator_index() const;

  AffineExpr operator+(const AffineExpr& other) const;
  AffineExpr operator-(const AffineExpr& other) const;
  bool operator==(const AffineExpr& other) const = default;

  /// Human-readable rendering, e.g. "i0 + 2*i2 - 1".
  std::string to_string() const;

 private:
  std::vector<std::int64_t> coeffs_;
  std::int64_t constant_ = 0;
};

/// R(i) = Q*i + q: one affine expression per target (array) dimension.
class AccessMap {
 public:
  AccessMap() = default;
  explicit AccessMap(std::vector<AffineExpr> exprs);

  /// Builds from explicit access matrix Q (rows x depth) and offset q.
  static AccessMap from_matrix(
      const std::vector<std::vector<std::int64_t>>& access_matrix,
      const std::vector<std::int64_t>& offset);

  /// Identity map of the given rank with per-dimension offsets,
  /// e.g. A[i1+3, i2-1] (the paper's §2 example).
  static AccessMap identity(std::size_t depth,
                            std::vector<std::int64_t> offsets);

  std::size_t rank() const { return exprs_.size(); }
  std::size_t depth() const {
    return exprs_.empty() ? 0 : exprs_[0].depth();
  }
  const AffineExpr& expr(std::size_t d) const { return exprs_[d]; }

  /// Maps an iteration to an array index vector.
  std::vector<std::int64_t> apply(std::span<const std::int64_t> iter) const;

  /// Evaluates only dimension `d` of the map.
  std::int64_t apply_dim(std::size_t d,
                         std::span<const std::int64_t> iter) const;

  bool operator==(const AccessMap& other) const = default;

  /// True when both maps have identical access matrices (same Q); such
  /// pairs produce uniform dependences with a constant distance vector.
  bool same_linear_part(const AccessMap& other) const;

  std::string to_string() const;

 private:
  std::vector<AffineExpr> exprs_;
};

}  // namespace mlsc::poly
