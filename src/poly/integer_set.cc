#include "poly/integer_set.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/check.h"

namespace mlsc::poly {
namespace {

/// Internal constraint form with wide coefficients: sum(c_k x_k) + c0 >= 0.
/// Fourier-Motzkin combinations multiply coefficients, so they are kept
/// as 128-bit and renormalized by their gcd after every combination.
struct Row {
  std::vector<__int128> coeffs;
  __int128 constant = 0;
};

__int128 abs128(__int128 v) { return v < 0 ? -v : v; }

__int128 gcd128(__int128 a, __int128 b) {
  a = abs128(a);
  b = abs128(b);
  while (b != 0) {
    const __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

void normalize(Row& row) {
  __int128 g = abs128(row.constant);
  for (const __int128 c : row.coeffs) g = gcd128(g, c);
  if (g > 1) {
    for (auto& c : row.coeffs) c /= g;
    row.constant /= g;
  }
}

Row row_from_expr(const AffineExpr& expr) {
  Row row;
  row.coeffs.reserve(expr.depth());
  for (std::size_t k = 0; k < expr.depth(); ++k) {
    row.coeffs.push_back(expr.coeff(k));
  }
  row.constant = expr.constant_term();
  return row;
}

/// All constraints of a set, including the space's box bounds.
std::vector<Row> all_rows(const IterationSpace& space,
                          const std::vector<AffineExpr>& constraints) {
  std::vector<Row> rows;
  const std::size_t depth = space.depth();
  for (std::size_t k = 0; k < depth; ++k) {
    Row lower;  // x_k - L >= 0
    lower.coeffs.assign(depth, 0);
    lower.coeffs[k] = 1;
    lower.constant = -space.loop(k).lower;
    rows.push_back(std::move(lower));
    Row upper;  // U - x_k >= 0
    upper.coeffs.assign(depth, 0);
    upper.coeffs[k] = -1;
    upper.constant = space.loop(k).upper;
    rows.push_back(std::move(upper));
  }
  for (const auto& c : constraints) rows.push_back(row_from_expr(c));
  return rows;
}

constexpr std::size_t kMaxRows = 20000;

/// Eliminates variable `var` from `rows` (Fourier-Motzkin step).
std::vector<Row> eliminate(const std::vector<Row>& rows, std::size_t var) {
  std::vector<const Row*> pos;
  std::vector<const Row*> neg;
  std::vector<Row> out;
  for (const auto& row : rows) {
    if (row.coeffs[var] > 0) {
      pos.push_back(&row);
    } else if (row.coeffs[var] < 0) {
      neg.push_back(&row);
    } else {
      out.push_back(row);
    }
  }
  for (const Row* p : pos) {
    for (const Row* n : neg) {
      // p: a x + rest_p >= 0 (a>0);  n: -b x + rest_n >= 0 (b>0)
      // combine: b*rest_p + a*rest_n >= 0
      const __int128 a = p->coeffs[var];
      const __int128 b = -n->coeffs[var];
      Row combined;
      combined.coeffs.resize(p->coeffs.size());
      for (std::size_t k = 0; k < combined.coeffs.size(); ++k) {
        combined.coeffs[k] = b * p->coeffs[k] + a * n->coeffs[k];
      }
      combined.constant = b * p->constant + a * n->constant;
      normalize(combined);
      out.push_back(std::move(combined));
      MLSC_CHECK(out.size() <= kMaxRows,
                 "Fourier-Motzkin elimination exceeded " << kMaxRows
                                                         << " constraints");
    }
  }
  // Drop duplicate rows (FM produces many).
  std::sort(out.begin(), out.end(), [](const Row& x, const Row& y) {
    if (x.constant != y.constant) return x.constant < y.constant;
    return x.coeffs < y.coeffs;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Row& x, const Row& y) {
                          return x.constant == y.constant &&
                                 x.coeffs == y.coeffs;
                        }),
            out.end());
  return out;
}

/// True when the variable-free rows admit a solution (constants >= 0).
bool constants_feasible(const std::vector<Row>& rows) {
  for (const auto& row : rows) {
    bool has_var = false;
    for (const __int128 c : row.coeffs) has_var |= (c != 0);
    if (!has_var && row.constant < 0) return false;
  }
  return true;
}

/// Integer bounds on variable `var` implied by rows in which every other
/// variable is already substituted/eliminated.  Returns false when the
/// interval is empty.
bool var_interval(const std::vector<Row>& rows, std::size_t var,
                  std::int64_t& lo, std::int64_t& hi) {
  __int128 lo128 = std::numeric_limits<std::int64_t>::min();
  __int128 hi128 = std::numeric_limits<std::int64_t>::max();
  for (const auto& row : rows) {
    const __int128 a = row.coeffs[var];
    if (a == 0) {
      if (row.constant < 0) return false;
      continue;
    }
    if (a > 0) {
      // a x + c >= 0  ->  x >= ceil(-c / a)
      const __int128 num = -row.constant;
      __int128 bound = num / a;
      if (num > 0 && num % a != 0) bound += 1;
      lo128 = std::max(lo128, bound);
    } else {
      // a x + c >= 0, a < 0  ->  x <= floor(c / -a)
      const __int128 b = -a;
      __int128 bound = row.constant / b;
      if (row.constant < 0 && row.constant % b != 0) bound -= 1;
      hi128 = std::min(hi128, bound);
    }
  }
  if (lo128 > hi128) return false;
  lo = static_cast<std::int64_t>(lo128);
  hi = static_cast<std::int64_t>(hi128);
  return true;
}

/// Substitutes x_var = value into the rows.
std::vector<Row> substitute(const std::vector<Row>& rows, std::size_t var,
                            std::int64_t value) {
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    Row r = row;
    r.constant += r.coeffs[var] * value;
    r.coeffs[var] = 0;
    out.push_back(std::move(r));
  }
  return out;
}

/// Backtracking integer witness search over the FM projections.
/// projections[k] holds constraints over variables 0..k-1 only, with the
/// already-chosen variables substituted in; level var's candidate range
/// comes from projections[var + 1], whose only live variable is x_var.
bool find_integer_point(std::vector<std::vector<Row>> projections,
                        std::size_t var, std::size_t depth,
                        std::size_t& budget) {
  if (var == depth) return constants_feasible(projections[depth]);
  std::int64_t lo = 0;
  std::int64_t hi = -1;
  if (!var_interval(projections[var + 1], var, lo, hi)) return false;
  for (std::int64_t v = lo; v <= hi; ++v) {
    MLSC_CHECK(budget-- != 0, "integer witness search budget exhausted");
    auto next = projections;
    for (std::size_t k = var + 1; k <= depth; ++k) {
      next[k] = substitute(next[k], var, v);
    }
    // Prune: this choice must keep every projection level feasible.
    bool feasible = true;
    for (std::size_t k = var + 1; k <= depth && feasible; ++k) {
      feasible = constants_feasible(next[k]);
    }
    if (!feasible) continue;
    if (find_integer_point(std::move(next), var + 1, depth, budget)) {
      return true;
    }
  }
  return false;
}

}  // namespace

IntegerSet::IntegerSet(IterationSpace space) : space_(std::move(space)) {}

IntegerSet& IntegerSet::add_constraint(AffineExpr expr) {
  MLSC_CHECK(expr.depth() == space_.depth(),
             "constraint depth " << expr.depth() << " != space depth "
                                 << space_.depth());
  constraints_.push_back(std::move(expr));
  return *this;
}

IntegerSet& IntegerSet::add_bounds(const AffineExpr& expr, std::int64_t lower,
                                   std::int64_t upper) {
  // expr - lower >= 0 and upper - expr >= 0.
  add_constraint(expr - AffineExpr::constant(expr.depth(), lower));
  add_constraint(AffineExpr::constant(expr.depth(), upper) - expr);
  return *this;
}

bool IntegerSet::contains(std::span<const std::int64_t> iter) const {
  if (!space_.contains(iter)) return false;
  for (const auto& c : constraints_) {
    if (c.evaluate(iter) < 0) return false;
  }
  return true;
}

IntegerSet IntegerSet::intersect(const IntegerSet& other) const {
  MLSC_CHECK(space_ == other.space_,
             "intersection requires a common iteration space");
  IntegerSet out = *this;
  for (const auto& c : other.constraints_) out.add_constraint(c);
  return out;
}

bool IntegerSet::is_empty() const {
  if (space_.empty()) return true;
  const std::size_t depth = space_.depth();
  auto rows = all_rows(space_, constraints_);

  // Project away variables from the innermost outward, keeping each
  // level for the witness search.
  std::vector<std::vector<Row>> projections(depth + 1);
  projections[depth] = rows;
  for (std::size_t k = depth; k-- > 0;) {
    projections[k] = eliminate(projections[k + 1], k);
  }
  if (!constants_feasible(projections[0])) return true;  // exact: empty

  // The rational relaxation is feasible; confirm with an integer point.
  std::size_t budget = 1 << 20;
  return !find_integer_point(projections, 0, depth, budget);
}

std::vector<Iteration> IntegerSet::enumerate() const {
  std::vector<Iteration> out;
  const auto box = bounding_box();
  if (!box.has_value()) return out;
  IterationSpace narrowed(*box);
  if (narrowed.empty()) return out;
  Iteration iter = narrowed.first();
  do {
    if (contains(iter)) out.push_back(iter);
  } while (narrowed.advance(iter));
  return out;
}

std::uint64_t IntegerSet::cardinality() const {
  std::uint64_t count = 0;
  const auto box = bounding_box();
  if (!box.has_value()) return 0;
  IterationSpace narrowed(*box);
  if (narrowed.empty()) return 0;
  Iteration iter = narrowed.first();
  do {
    if (contains(iter)) ++count;
  } while (narrowed.advance(iter));
  return count;
}

std::optional<std::vector<LoopBounds>> IntegerSet::bounding_box() const {
  const std::size_t depth = space_.depth();
  auto rows = all_rows(space_, constraints_);
  std::vector<LoopBounds> box(depth);
  for (std::size_t target = 0; target < depth; ++target) {
    // Eliminate every variable except `target`.
    auto projected = rows;
    for (std::size_t k = 0; k < depth; ++k) {
      if (k != target) projected = eliminate(projected, k);
    }
    if (!constants_feasible(projected)) return std::nullopt;
    std::int64_t lo = 0;
    std::int64_t hi = -1;
    if (!var_interval(projected, target, lo, hi)) return std::nullopt;
    box[target] = LoopBounds{std::max(lo, space_.loop(target).lower),
                             std::min(hi, space_.loop(target).upper)};
    if (box[target].extent() <= 0) return std::nullopt;
  }
  return box;
}

std::string IntegerSet::to_string() const {
  std::ostringstream out;
  out << space_.to_string();
  for (const auto& c : constraints_) {
    out << " && " << c.to_string() << " >= 0";
  }
  return out.str();
}

AffineExpr byte_offset_expr(const Program& program, const ArrayRef& ref) {
  MLSC_CHECK(!ref.is_indirect(),
             "byte offsets of indirect references are not affine");
  const ArrayDecl& array = program.array(ref.array);
  const std::size_t rank = ref.map.rank();
  MLSC_CHECK(rank == array.dims.size(),
             "reference rank does not match array rank");
  // Row-major strides in elements.
  std::vector<std::int64_t> strides(rank, 1);
  for (std::size_t d = rank - 1; d-- > 0;) {
    strides[d] = strides[d + 1] * array.dims[d + 1];
  }
  AffineExpr offset = AffineExpr::constant(ref.map.depth(), 0);
  for (std::size_t d = 0; d < rank; ++d) {
    // offset += expr_d * stride_d (scale the expression's coefficients).
    const AffineExpr& e = ref.map.expr(d);
    std::vector<std::int64_t> coeffs(e.depth());
    for (std::size_t k = 0; k < e.depth(); ++k) {
      coeffs[k] = e.coeff(k) * strides[d];
    }
    offset = offset + AffineExpr(std::move(coeffs),
                                 e.constant_term() * strides[d]);
  }
  // Scale elements to bytes.
  std::vector<std::int64_t> coeffs(offset.depth());
  for (std::size_t k = 0; k < offset.depth(); ++k) {
    coeffs[k] = offset.coeff(k) *
                static_cast<std::int64_t>(array.element_size_bytes);
  }
  return AffineExpr(std::move(coeffs),
                    offset.constant_term() *
                        static_cast<std::int64_t>(array.element_size_bytes));
}

IntegerSet chunk_preimage(const Program& program, const LoopNest& nest,
                          const ArrayRef& ref, std::uint64_t chunk_size_bytes,
                          std::uint64_t array_first_byte_of_chunk,
                          std::uint64_t array_last_byte_of_chunk) {
  MLSC_CHECK(chunk_size_bytes > 0, "chunk size must be positive");
  IntegerSet set(nest.space);
  const AffineExpr offset = byte_offset_expr(program, ref);
  const auto esize =
      static_cast<std::int64_t>(program.array(ref.array).element_size_bytes);
  // The element's byte range [off, off + esize) intersects the chunk's
  // [first, last] iff off <= last and off >= first - esize + 1.
  set.add_bounds(offset,
                 static_cast<std::int64_t>(array_first_byte_of_chunk) -
                     esize + 1,
                 static_cast<std::int64_t>(array_last_byte_of_chunk));
  return set;
}

}  // namespace mlsc::poly
