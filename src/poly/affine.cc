#include "poly/affine.h"

#include <sstream>

#include "support/check.h"

namespace mlsc::poly {

AffineExpr::AffineExpr(std::vector<std::int64_t> coeffs, std::int64_t constant)
    : coeffs_(std::move(coeffs)), constant_(constant) {}

AffineExpr AffineExpr::constant(std::size_t depth, std::int64_t value) {
  return AffineExpr(std::vector<std::int64_t>(depth, 0), value);
}

AffineExpr AffineExpr::iterator(std::size_t depth, std::size_t k,
                                std::int64_t offset) {
  MLSC_CHECK(k < depth, "iterator index " << k << " out of depth " << depth);
  std::vector<std::int64_t> coeffs(depth, 0);
  coeffs[k] = 1;
  return AffineExpr(std::move(coeffs), offset);
}

std::int64_t AffineExpr::evaluate(std::span<const std::int64_t> iter) const {
  MLSC_DCHECK(iter.size() == coeffs_.size(),
              "iteration arity " << iter.size() << " != depth "
                                 << coeffs_.size());
  std::int64_t value = constant_;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    value += coeffs_[k] * iter[k];
  }
  return value;
}

bool AffineExpr::is_constant() const {
  for (std::int64_t c : coeffs_) {
    if (c != 0) return false;
  }
  return true;
}

bool AffineExpr::is_single_iterator() const {
  int nonzero = 0;
  for (std::int64_t c : coeffs_) {
    if (c == 1) {
      ++nonzero;
    } else if (c != 0) {
      return false;
    }
  }
  return nonzero == 1;
}

std::size_t AffineExpr::single_iterator_index() const {
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    if (coeffs_[k] != 0) return k;
  }
  MLSC_CHECK(false, "expression has no iterator term: " << to_string());
  return 0;  // unreachable
}

AffineExpr AffineExpr::operator+(const AffineExpr& other) const {
  MLSC_CHECK(depth() == other.depth(), "depth mismatch in affine addition");
  std::vector<std::int64_t> coeffs(coeffs_);
  for (std::size_t k = 0; k < coeffs.size(); ++k) coeffs[k] += other.coeffs_[k];
  return AffineExpr(std::move(coeffs), constant_ + other.constant_);
}

AffineExpr AffineExpr::operator-(const AffineExpr& other) const {
  MLSC_CHECK(depth() == other.depth(), "depth mismatch in affine subtraction");
  std::vector<std::int64_t> coeffs(coeffs_);
  for (std::size_t k = 0; k < coeffs.size(); ++k) coeffs[k] -= other.coeffs_[k];
  return AffineExpr(std::move(coeffs), constant_ - other.constant_);
}

std::string AffineExpr::to_string() const {
  std::ostringstream out;
  bool first = true;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    const std::int64_t c = coeffs_[k];
    if (c == 0) continue;
    if (!first) out << (c > 0 ? " + " : " - ");
    if (first && c < 0) out << "-";
    const std::int64_t mag = c < 0 ? -c : c;
    if (mag != 1) out << mag << "*";
    out << "i" << k;
    first = false;
  }
  if (first) {
    out << constant_;
  } else if (constant_ > 0) {
    out << " + " << constant_;
  } else if (constant_ < 0) {
    out << " - " << -constant_;
  }
  return out.str();
}

AccessMap::AccessMap(std::vector<AffineExpr> exprs) : exprs_(std::move(exprs)) {
  for (const auto& e : exprs_) {
    MLSC_CHECK(e.depth() == exprs_[0].depth(),
               "all access-map rows must share the nest depth");
  }
}

AccessMap AccessMap::from_matrix(
    const std::vector<std::vector<std::int64_t>>& access_matrix,
    const std::vector<std::int64_t>& offset) {
  MLSC_CHECK(access_matrix.size() == offset.size(),
             "access matrix rows " << access_matrix.size()
                                   << " != offset arity " << offset.size());
  std::vector<AffineExpr> exprs;
  exprs.reserve(access_matrix.size());
  for (std::size_t r = 0; r < access_matrix.size(); ++r) {
    exprs.emplace_back(access_matrix[r], offset[r]);
  }
  return AccessMap(std::move(exprs));
}

AccessMap AccessMap::identity(std::size_t depth,
                              std::vector<std::int64_t> offsets) {
  MLSC_CHECK(offsets.size() <= depth,
             "identity map rank exceeds nest depth");
  std::vector<AffineExpr> exprs;
  exprs.reserve(offsets.size());
  for (std::size_t d = 0; d < offsets.size(); ++d) {
    exprs.push_back(AffineExpr::iterator(depth, d, offsets[d]));
  }
  return AccessMap(std::move(exprs));
}

std::vector<std::int64_t> AccessMap::apply(
    std::span<const std::int64_t> iter) const {
  std::vector<std::int64_t> out;
  out.reserve(exprs_.size());
  for (const auto& e : exprs_) out.push_back(e.evaluate(iter));
  return out;
}

std::int64_t AccessMap::apply_dim(std::size_t d,
                                  std::span<const std::int64_t> iter) const {
  MLSC_DCHECK(d < exprs_.size(), "dimension out of range");
  return exprs_[d].evaluate(iter);
}

bool AccessMap::same_linear_part(const AccessMap& other) const {
  if (rank() != other.rank() || depth() != other.depth()) return false;
  for (std::size_t d = 0; d < rank(); ++d) {
    for (std::size_t k = 0; k < depth(); ++k) {
      if (exprs_[d].coeff(k) != other.exprs_[d].coeff(k)) return false;
    }
  }
  return true;
}

std::string AccessMap::to_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t d = 0; d < exprs_.size(); ++d) {
    if (d != 0) out << ", ";
    out << exprs_[d].to_string();
  }
  out << "]";
  return out.str();
}

}  // namespace mlsc::poly
