// The storage cache hierarchy tree (paper §4.3, Fig. 1 and Fig. 7).
//
// Leaves are compute (client) nodes; interior nodes are I/O and storage
// nodes; when a system has several storage nodes a dummy root stands for
// a hypothetical unified last level.  Every node can carry a storage
// cache.  The mapping algorithm walks this tree from root to leaves,
// splitting iteration clusters by node fan-out, and the simulator routes
// each client's accesses along its path to the root.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/units.h"

namespace mlsc::topology {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class NodeKind { kDummyRoot, kStorage, kIo, kCompute };

const char* node_kind_name(NodeKind kind);

struct TreeNode {
  NodeKind kind = NodeKind::kCompute;
  NodeId parent = kInvalidNode;
  std::vector<NodeId> children;
  std::uint32_t level = 0;  // root is level 0
  std::string name;

  /// Storage cache capacity at this node; 0 means no cache here (e.g. the
  /// dummy root).
  std::uint64_t cache_capacity_bytes = 0;
};

class HierarchyTree {
 public:
  /// Creates a tree containing only the root.
  HierarchyTree(NodeKind root_kind, std::uint64_t root_cache_bytes,
                std::string root_name);

  /// Adds a child under `parent`; returns the new node's id.
  NodeId add_child(NodeId parent, NodeKind kind, std::uint64_t cache_bytes,
                   std::string name);

  NodeId root() const { return 0; }
  std::size_t num_nodes() const { return nodes_.size(); }
  const TreeNode& node(NodeId id) const;

  /// Number of tree levels (root at level 0 counts as one).
  std::uint32_t num_levels() const { return num_levels_; }

  /// Node ids at a given level, left to right.
  const std::vector<NodeId>& level_nodes(std::uint32_t level) const;

  /// Compute (leaf) nodes, left to right; their order defines the client
  /// rank used by mappings (client 0 is the leftmost leaf).
  const std::vector<NodeId>& clients() const { return clients_; }
  std::size_t num_clients() const { return clients_.size(); }

  /// Rank of a compute node among clients (inverse of clients()[rank]).
  std::size_t client_rank(NodeId id) const;

  /// Node ids from a node up to and including the root.
  std::vector<NodeId> path_to_root(NodeId id) const;

  /// Deepest node (greatest level) that is an ancestor of both clients
  /// and carries a cache — the cache where the two clients have
  /// "affinity" in the paper's sense.  Returns kInvalidNode when no
  /// shared cache exists.
  NodeId deepest_shared_cache(NodeId client_a, NodeId client_b) const;

  /// True when the two clients have affinity at some storage cache.
  bool have_affinity(NodeId client_a, NodeId client_b) const {
    return deepest_shared_cache(client_a, client_b) != kInvalidNode;
  }

  /// Must be called after construction completes: orders clients, indexes
  /// levels, and checks that all leaves are compute nodes at equal depth.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Changes a node's cache capacity after finalization (fault injection:
  /// a fail-stopped node carries no cache in the surviving topology).
  /// The tree shape, client ranks and level indexes are untouched, so
  /// mappings stay addressable; affinity queries see the new capacity.
  void set_cache_capacity(NodeId id, std::uint64_t bytes);

  /// Multi-line rendering of the tree for diagnostics.
  std::string to_string() const;

 private:
  std::vector<TreeNode> nodes_;
  std::vector<std::vector<NodeId>> levels_;
  std::vector<NodeId> clients_;
  std::vector<std::size_t> client_rank_;  // by node id; npos if not client
  std::uint32_t num_levels_ = 1;
  bool finalized_ = false;
};

/// Builds the layered topology of the paper's experiments: `storage`
/// storage nodes, `io` I/O nodes and `clients` compute nodes, with each
/// layer's nodes divided evenly among the layer above (Fig. 7 / Table 1).
/// A dummy root is added when storage > 1.  Node counts must divide
/// evenly (io % storage == 0 and clients % io == 0).
HierarchyTree make_layered_hierarchy(std::size_t clients, std::size_t io,
                                     std::size_t storage,
                                     std::uint64_t client_cache_bytes,
                                     std::uint64_t io_cache_bytes,
                                     std::uint64_t storage_cache_bytes);

}  // namespace mlsc::topology
