#include "topology/hierarchy.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"

namespace mlsc::topology {

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDummyRoot:
      return "dummy-root";
    case NodeKind::kStorage:
      return "storage";
    case NodeKind::kIo:
      return "io";
    case NodeKind::kCompute:
      return "compute";
  }
  return "?";
}

HierarchyTree::HierarchyTree(NodeKind root_kind,
                             std::uint64_t root_cache_bytes,
                             std::string root_name) {
  TreeNode root;
  root.kind = root_kind;
  root.level = 0;
  root.cache_capacity_bytes = root_cache_bytes;
  root.name = std::move(root_name);
  nodes_.push_back(std::move(root));
}

NodeId HierarchyTree::add_child(NodeId parent, NodeKind kind,
                                std::uint64_t cache_bytes, std::string name) {
  MLSC_CHECK(!finalized_, "cannot add nodes after finalize()");
  MLSC_CHECK(parent < nodes_.size(), "unknown parent node " << parent);
  MLSC_CHECK(nodes_[parent].kind != NodeKind::kCompute,
             "compute nodes are leaves; cannot add a child to one");
  const auto id = static_cast<NodeId>(nodes_.size());
  TreeNode node;
  node.kind = kind;
  node.parent = parent;
  node.level = nodes_[parent].level + 1;
  node.cache_capacity_bytes = cache_bytes;
  node.name = std::move(name);
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  num_levels_ = std::max(num_levels_, nodes_[id].level + 1);
  return id;
}

const TreeNode& HierarchyTree::node(NodeId id) const {
  MLSC_CHECK(id < nodes_.size(), "unknown node " << id);
  return nodes_[id];
}

void HierarchyTree::set_cache_capacity(NodeId id, std::uint64_t bytes) {
  MLSC_CHECK(id < nodes_.size(), "unknown node " << id);
  nodes_[id].cache_capacity_bytes = bytes;
}

const std::vector<NodeId>& HierarchyTree::level_nodes(
    std::uint32_t level) const {
  MLSC_CHECK(finalized_, "finalize() the tree before level queries");
  MLSC_CHECK(level < levels_.size(), "level " << level << " out of range");
  return levels_[level];
}

std::size_t HierarchyTree::client_rank(NodeId id) const {
  MLSC_CHECK(finalized_, "finalize() the tree before rank queries");
  MLSC_CHECK(id < client_rank_.size() &&
                 client_rank_[id] != static_cast<std::size_t>(-1),
             "node " << id << " is not a compute node");
  return client_rank_[id];
}

std::vector<NodeId> HierarchyTree::path_to_root(NodeId id) const {
  std::vector<NodeId> path;
  NodeId cur = id;
  while (cur != kInvalidNode) {
    MLSC_CHECK(cur < nodes_.size(), "unknown node " << cur);
    path.push_back(cur);
    cur = nodes_[cur].parent;
  }
  return path;
}

NodeId HierarchyTree::deepest_shared_cache(NodeId client_a,
                                           NodeId client_b) const {
  MLSC_CHECK(client_a < nodes_.size() && client_b < nodes_.size(),
             "unknown client node");
  if (client_a == client_b) {
    // A client trivially shares every cache on its own path; report the
    // deepest one (its private cache if it has one).
    for (NodeId cur : path_to_root(client_a)) {
      if (nodes_[cur].cache_capacity_bytes > 0) return cur;
    }
    return kInvalidNode;
  }
  const auto path_a = path_to_root(client_a);
  const auto path_b = path_to_root(client_b);
  // Walk a's path leaf-to-root and find the first node on b's path too.
  for (NodeId candidate : path_a) {
    if (std::find(path_b.begin(), path_b.end(), candidate) != path_b.end()) {
      // candidate is the LCA; the deepest shared cache is the first
      // cached node from the LCA upward.
      NodeId cur = candidate;
      while (cur != kInvalidNode) {
        if (nodes_[cur].cache_capacity_bytes > 0) return cur;
        cur = nodes_[cur].parent;
      }
      return kInvalidNode;
    }
  }
  return kInvalidNode;
}

void HierarchyTree::finalize() {
  MLSC_CHECK(!finalized_, "tree already finalized");
  levels_.assign(num_levels_, {});
  clients_.clear();
  client_rank_.assign(nodes_.size(), static_cast<std::size_t>(-1));

  // Depth-first, children in insertion order, so that leaf order matches
  // the left-to-right drawing of the tree (Fig. 1).
  std::vector<NodeId> stack{root()};
  std::vector<NodeId> dfs_order;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    dfs_order.push_back(cur);
    const auto& children = nodes_[cur].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  std::uint32_t leaf_level = 0;
  for (NodeId id : dfs_order) {
    levels_[nodes_[id].level].push_back(id);
    if (nodes_[id].children.empty()) {
      MLSC_CHECK(nodes_[id].kind == NodeKind::kCompute,
                 "leaf node " << nodes_[id].name << " is not a compute node");
      if (clients_.empty()) {
        leaf_level = nodes_[id].level;
      } else {
        MLSC_CHECK(nodes_[id].level == leaf_level,
                   "all compute nodes must sit at the same depth");
      }
      client_rank_[id] = clients_.size();
      clients_.push_back(id);
    } else {
      MLSC_CHECK(nodes_[id].kind != NodeKind::kCompute,
                 "interior node " << nodes_[id].name
                                  << " must not be a compute node");
    }
  }
  MLSC_CHECK(!clients_.empty(), "hierarchy has no compute nodes");
  finalized_ = true;
}

std::string HierarchyTree::to_string() const {
  std::ostringstream out;
  std::vector<std::pair<NodeId, std::string>> stack{{root(), ""}};
  while (!stack.empty()) {
    auto [id, indent] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[id];
    out << indent << n.name << " [" << node_kind_name(n.kind);
    if (n.cache_capacity_bytes > 0) {
      out << ", cache " << format_bytes(n.cache_capacity_bytes);
    }
    out << "]\n";
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.emplace_back(*it, indent + "  ");
    }
  }
  return out.str();
}

HierarchyTree make_layered_hierarchy(std::size_t clients, std::size_t io,
                                     std::size_t storage,
                                     std::uint64_t client_cache_bytes,
                                     std::uint64_t io_cache_bytes,
                                     std::uint64_t storage_cache_bytes) {
  MLSC_CHECK(clients > 0 && io > 0 && storage > 0,
             "layer sizes must be positive");
  MLSC_CHECK(io % storage == 0, "io nodes (" << io
                                             << ") must divide evenly among "
                                             << storage << " storage nodes");
  MLSC_CHECK(clients % io == 0, "clients (" << clients
                                            << ") must divide evenly among "
                                            << io << " io nodes");

  const bool needs_dummy_root = storage > 1;
  HierarchyTree tree =
      needs_dummy_root
          ? HierarchyTree(NodeKind::kDummyRoot, 0, "unified-root")
          : HierarchyTree(NodeKind::kStorage, storage_cache_bytes, "SN0");

  std::vector<NodeId> storage_nodes;
  if (needs_dummy_root) {
    for (std::size_t s = 0; s < storage; ++s) {
      storage_nodes.push_back(tree.add_child(tree.root(), NodeKind::kStorage,
                                             storage_cache_bytes,
                                             "SN" + std::to_string(s)));
    }
  } else {
    storage_nodes.push_back(tree.root());
  }

  std::vector<NodeId> io_nodes;
  const std::size_t io_per_storage = io / storage;
  for (std::size_t i = 0; i < io; ++i) {
    io_nodes.push_back(tree.add_child(storage_nodes[i / io_per_storage],
                                      NodeKind::kIo, io_cache_bytes,
                                      "IO" + std::to_string(i)));
  }

  const std::size_t clients_per_io = clients / io;
  for (std::size_t c = 0; c < clients; ++c) {
    tree.add_child(io_nodes[c / clients_per_io], NodeKind::kCompute,
                   client_cache_bytes, "CN" + std::to_string(c));
  }

  tree.finalize();
  return tree;
}

}  // namespace mlsc::topology
