#include "io/network.h"

#include "support/check.h"

namespace mlsc::io {

NetworkModel::NetworkModel(NetworkParams params) : params_(params) {
  MLSC_CHECK(params_.bandwidth_bytes_per_s > 0,
             "network bandwidth must be positive");
  MLSC_CHECK(params_.memory_bandwidth_bytes_per_s > 0,
             "memory bandwidth must be positive");
}

Nanoseconds NetworkModel::local_copy_time(std::uint64_t bytes) const {
  const double copy =
      static_cast<double>(bytes) * 1e9 /
      static_cast<double>(params_.memory_bandwidth_bytes_per_s);
  return params_.memory_latency + static_cast<Nanoseconds>(copy);
}

Nanoseconds NetworkModel::transfer_time(std::uint64_t bytes,
                                        std::uint32_t hops) const {
  if (hops == 0) return local_copy_time(bytes);
  const double wire = static_cast<double>(bytes) * 1e9 /
                      static_cast<double>(params_.bandwidth_bytes_per_s);
  return static_cast<Nanoseconds>(hops) * params_.per_hop_latency +
         static_cast<Nanoseconds>(wire) + local_copy_time(bytes);
}

}  // namespace mlsc::io
