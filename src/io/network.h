// Network model for the links between compute, I/O and storage layers.
//
// The paper's platform connects I/O nodes to the file system servers over
// a 10GigE network; the model charges a per-hop latency plus a bandwidth
// term per transferred chunk.
#pragma once

#include <cstdint>

#include "support/units.h"

namespace mlsc::io {

struct NetworkParams {
  Nanoseconds per_hop_latency = 30 * kMicrosecond;
  std::uint64_t bandwidth_bytes_per_s = 1'250ull * kMiB;  // 10 GigE

  /// Memory-copy bandwidth for serving a chunk out of a local cache.
  std::uint64_t memory_bandwidth_bytes_per_s = 4ull * kGiB;
  Nanoseconds memory_latency = 2 * kMicrosecond;
};

class NetworkModel {
 public:
  explicit NetworkModel(NetworkParams params);

  /// Cost of copying a chunk out of a cache in local memory.
  Nanoseconds local_copy_time(std::uint64_t bytes) const;

  /// Cost of moving a chunk across `hops` network links (0 hops = local).
  Nanoseconds transfer_time(std::uint64_t bytes, std::uint32_t hops) const;

  const NetworkParams& params() const { return params_; }

 private:
  NetworkParams params_;
};

}  // namespace mlsc::io
