#include "io/disk.h"

#include "support/check.h"

namespace mlsc::io {

DiskModel::DiskModel(DiskParams params) : params_(params) {
  MLSC_CHECK(params_.rpm > 0, "disk rpm must be positive");
  MLSC_CHECK(params_.transfer_bandwidth_bytes_per_s > 0,
             "disk bandwidth must be positive");
  MLSC_CHECK(params_.sequential_discount >= 0.0 &&
                 params_.sequential_discount <= 1.0,
             "sequential discount must be in [0, 1]");
  // One revolution takes 60e9 / rpm nanoseconds; average rotational
  // latency is half of that.
  rotational_delay_ = static_cast<Nanoseconds>(
      60.0 * 1e9 / static_cast<double>(params_.rpm) / 2.0);
}

Nanoseconds DiskModel::service_time(std::uint64_t bytes,
                                    SeekClass seek) const {
  const double positioning =
      static_cast<double>(params_.average_seek + rotational_delay_);
  double fraction = 1.0;
  switch (seek) {
    case SeekClass::kSequential:
      fraction = params_.sequential_discount;
      break;
    case SeekClass::kNear:
      fraction = params_.near_discount;
      break;
    case SeekClass::kFar:
      fraction = 1.0;
      break;
  }
  const double transfer =
      static_cast<double>(bytes) * 1e9 /
      static_cast<double>(params_.transfer_bandwidth_bytes_per_s);
  return static_cast<Nanoseconds>(positioning * fraction + transfer) +
         params_.controller_overhead;
}

SeekClass DiskModel::classify_seek(std::uint64_t previous_chunk,
                                   std::uint64_t chunk) const {
  const std::uint64_t distance =
      chunk > previous_chunk ? chunk - previous_chunk
                             : previous_chunk - chunk;
  if (distance <= 1) return SeekClass::kSequential;
  if (distance <= params_.near_window_chunks) return SeekClass::kNear;
  return SeekClass::kFar;
}

}  // namespace mlsc::io
