// Disk service-time model for the storage nodes.
//
// Table 1 of the paper fixes 10,000 RPM disks; the model charges average
// seek + half-rotation + transfer + controller overhead per request, with
// a reduced positioning cost for sequential follow-on requests.
#pragma once

#include <cstdint>

#include "support/units.h"

namespace mlsc::io {

struct DiskParams {
  std::uint32_t rpm = 10'000;                      // Table 1
  Nanoseconds average_seek = 4'700 * kMicrosecond;  // typical 10k RPM drive
  std::uint64_t transfer_bandwidth_bytes_per_s = 120ull * kMiB;
  Nanoseconds controller_overhead = 200 * kMicrosecond;

  /// Fraction of the positioning cost charged when a request is
  /// sequential with (adjacent to) the previous one on the same disk.
  double sequential_discount = 0.15;

  /// Fraction charged for a short elevator hop: the server's request
  /// scheduler and track buffer make nearby blocks much cheaper than a
  /// full stroke even when they are not strictly in order.
  double near_discount = 0.4;

  /// Distance (in chunks on the same disk) still considered "near".
  std::uint64_t near_window_chunks = 128;
};

/// How far a request lands from the previous one on the same spindle.
enum class SeekClass { kSequential, kNear, kFar };

class DiskModel {
 public:
  explicit DiskModel(DiskParams params);

  /// Average rotational delay: half a revolution.
  Nanoseconds rotational_delay() const { return rotational_delay_; }

  /// Service time of one request of `bytes`, excluding queueing.
  Nanoseconds service_time(std::uint64_t bytes, SeekClass seek) const;

  /// Classifies a request by chunk distance from the previous request.
  SeekClass classify_seek(std::uint64_t previous_chunk,
                          std::uint64_t chunk) const;

  const DiskParams& params() const { return params_; }

 private:
  DiskParams params_;
  Nanoseconds rotational_delay_;
};

}  // namespace mlsc::io
