// PVFS-style file striping: the data space's byte stream is striped round
// robin across the storage nodes ("Data Striping: uses all 16 storage
// nodes, Stripe Size 64KB" — Table 1).  The layout decides which storage
// node's disk services a chunk miss.
#pragma once

#include <cstdint>

#include "support/check.h"

namespace mlsc::io {

class StripingLayout {
 public:
  StripingLayout(std::uint64_t stripe_size_bytes,
                 std::uint64_t chunk_size_bytes, std::size_t storage_nodes)
      : stripe_size_(stripe_size_bytes),
        chunk_size_(chunk_size_bytes),
        storage_nodes_(storage_nodes) {
    MLSC_CHECK(stripe_size_ > 0, "stripe size must be positive");
    MLSC_CHECK(chunk_size_ > 0, "chunk size must be positive");
    MLSC_CHECK(storage_nodes_ > 0, "need at least one storage node");
  }

  std::uint64_t stripe_size_bytes() const { return stripe_size_; }
  std::size_t num_storage_nodes() const { return storage_nodes_; }

  /// Index (0-based) of the storage node holding a given chunk.
  std::size_t storage_node_of_chunk(std::uint64_t chunk_id) const {
    const std::uint64_t byte_offset = chunk_id * chunk_size_;
    return static_cast<std::size_t>((byte_offset / stripe_size_) %
                                    storage_nodes_);
  }

  /// True when two chunks are adjacent within the same stripe — their
  /// disk requests are sequential on the same spindle.
  bool sequential_on_disk(std::uint64_t chunk_a, std::uint64_t chunk_b) const {
    if (storage_node_of_chunk(chunk_a) != storage_node_of_chunk(chunk_b)) {
      return false;
    }
    const std::uint64_t lo = chunk_a < chunk_b ? chunk_a : chunk_b;
    const std::uint64_t hi = chunk_a < chunk_b ? chunk_b : chunk_a;
    return hi - lo <= 1 || (hi * chunk_size_) / stripe_size_ ==
                               (lo * chunk_size_) / stripe_size_;
  }

 private:
  std::uint64_t stripe_size_;
  std::uint64_t chunk_size_;
  std::size_t storage_nodes_;
};

}  // namespace mlsc::io
