// Remap-on-failure: re-running the mapping over surviving topology.
//
// When a cache level fail-stops (or miss rates drift past a threshold),
// the clients that were mapped for affinity at the dead node lose their
// locality: their accesses fall through to deeper levels at failover
// cost.  RemapPolicy decides when that is worth a re-map; the remap
// itself re-runs the ordinary mapping pipeline — tagging, clustering,
// load balancing, scheduling — over a copy of the hierarchy whose failed
// nodes carry no cache, so the mapper routes affinity around them.  The
// remap's cost is modelled as a global stall (every client pauses while
// the new mapping is installed) and its benefit shows up as recovered
// throughput; bench_degraded reports both sides.
#pragma once

#include <string>
#include <vector>

#include "cache/storage_cache.h"
#include "core/pipeline.h"
#include "resilience/fault.h"
#include "support/units.h"
#include "topology/hierarchy.h"

namespace mlsc::resilience {

struct RemapPolicy {
  /// Re-map as soon as the schedule fail-stops a cache level.
  bool remap_on_failure = true;

  /// Re-map when a shared level's observed miss rate exceeds the healthy
  /// baseline by this much (absolute).  Checked via drift_exceeded().
  double miss_rate_drift = 0.15;

  /// Downtime charged to every client while the new mapping is
  /// installed, injected as a stall event at the trigger time.
  Nanoseconds remap_pause_ns = 500 * kMicrosecond;
};

/// Why (and when) a remap fired.
struct RemapDecision {
  bool triggered = false;
  Nanoseconds at = 0;
  std::string reason;
};

/// Evaluates the policy against a fault schedule: the earliest fail-stop
/// of a cache-carrying node triggers the remap.  (Drift-based triggers
/// are evaluated separately against observed stats.)
RemapDecision decide_remap(const RemapPolicy& policy,
                           const FaultSchedule& schedule);

/// Miss-rate drift trigger: true when `observed`'s miss rate exceeds
/// `baseline`'s by more than the policy threshold (absolute).
bool drift_exceeded(const RemapPolicy& policy,
                    const cache::CacheStats& baseline,
                    const cache::CacheStats& observed);

/// A copy of `tree` on which every node fail-stopped (and not later
/// recovered) by the schedule carries no cache, so the mapping pipeline
/// places affinity only at surviving caches.  Node ids, client ranks and
/// the tree shape are unchanged — mappings computed on the copy replay
/// directly against the original machine.
topology::HierarchyTree surviving_topology(
    const topology::HierarchyTree& tree, const FaultSchedule& schedule);

/// Re-runs the full mapping pipeline over the surviving topology, then
/// moves the work of every client whose root path crosses an unrecovered
/// fail-stop onto the healthy clients (least-loaded first, ties by rank,
/// deterministically), so no work is left paying failover detection on
/// every access.  When every client is affected (a whole-level
/// fail-stop) the mapping is returned unredistributed.  `surviving` must
/// outlive the returned mapping's use (the pipeline holds a reference
/// during the run only).
core::MappingResult remap_mapping(const topology::HierarchyTree& surviving,
                                  const FaultSchedule& schedule,
                                  const core::PipelineOptions& options,
                                  const poly::Program& program,
                                  const core::DataSpace& space);

}  // namespace mlsc::resilience
