#include "resilience/fault.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "support/check.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace mlsc::resilience {
namespace {

using topology::NodeId;
using topology::NodeKind;

/// Cache level numbering used by schedules: 1 = compute, 2 = I/O,
/// 3 = storage (matches the paper's L1/L2/L3).
NodeKind level_kind(std::uint32_t level) {
  switch (level) {
    case 1:
      return NodeKind::kCompute;
    case 2:
      return NodeKind::kIo;
    case 3:
      return NodeKind::kStorage;
    default:
      throw Error("fault schedule: cache level must be 1 (compute), "
                  "2 (io) or 3 (storage), got " +
                  std::to_string(level));
  }
}

bool is_targeted(FaultKind kind) {
  return kind == FaultKind::kFailStop || kind == FaultKind::kDegrade ||
         kind == FaultKind::kRecover;
}

FaultKind kind_from_name(std::string_view name) {
  if (name == "fail" || name == "fail-stop") return FaultKind::kFailStop;
  if (name == "degrade") return FaultKind::kDegrade;
  if (name == "transient") return FaultKind::kTransient;
  if (name == "recover") return FaultKind::kRecover;
  if (name == "stall") return FaultKind::kStall;
  throw Error("fault schedule: unknown event kind '" + std::string(name) +
              "' (expected fail-stop, degrade, transient, recover or stall)");
}

double parse_spec_number(std::string_view text, const char* what) {
  const std::string s(text);
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || !std::isfinite(value)) {
    throw Error(std::string("fault spec: malformed ") + what + " '" + s + "'");
  }
  return value;
}

/// "5ms" / "100us" / "1.5s" / bare nanoseconds.
Nanoseconds parse_spec_time(std::string_view text, const char* what) {
  const std::string s(text);
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || value < 0 || !std::isfinite(value)) {
    throw Error(std::string("fault spec: malformed ") + what + " '" + s + "'");
  }
  const std::string_view suffix(end);
  double scale = 1.0;
  if (suffix.empty() || suffix == "ns") {
    scale = 1.0;
  } else if (suffix == "us") {
    scale = 1e3;
  } else if (suffix == "ms") {
    scale = 1e6;
  } else if (suffix == "s") {
    scale = 1e9;
  } else {
    throw Error(std::string("fault spec: bad time suffix on ") + what + " '" +
                s + "' (use ns, us, ms or s)");
  }
  return static_cast<Nanoseconds>(std::llround(value * scale));
}

/// "l2" (all nodes of the level) or "l2.0" (node 0 of the level).
void parse_spec_target(std::string_view text, FaultEvent& event) {
  if (text.size() < 2 || text[0] != 'l') {
    throw Error("fault spec: malformed target '" + std::string(text) +
                "' (expected lLEVEL or lLEVEL.NODE)");
  }
  const std::size_t dot = text.find('.');
  const std::string_view level_part = text.substr(1, dot - 1);
  event.level = static_cast<std::uint32_t>(
      parse_spec_number(level_part, "target level"));
  level_kind(event.level);  // validates the range
  if (dot == std::string_view::npos) {
    event.node_index = -1;
  } else {
    event.node_index = static_cast<std::int32_t>(
        parse_spec_number(text.substr(dot + 1), "target node index"));
    if (event.node_index < 0) {
      throw Error("fault spec: negative node index in target '" +
                  std::string(text) + "'");
    }
  }
}

/// Applies "key=value,key=value" option lists for degrade/transient.
void parse_spec_options(std::string_view text, FaultEvent& event) {
  for (const std::string& item : split(std::string(text), ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw Error("fault spec: malformed option '" + item +
                  "' (expected key=value)");
    }
    const std::string key = item.substr(0, eq);
    const std::string_view value = std::string_view(item).substr(eq + 1);
    if (key == "lat") {
      event.latency_factor = parse_spec_number(value, "lat");
    } else if (key == "cap") {
      event.capacity_divisor = parse_spec_number(value, "cap");
    } else if (key == "disk") {
      event.disk_error_rate = parse_spec_number(value, "disk");
    } else if (key == "net") {
      event.net_error_rate = parse_spec_number(value, "net");
    } else {
      throw Error("fault spec: unknown option '" + key + "'");
    }
  }
}

void validate_event(const FaultEvent& event) {
  if (is_targeted(event.kind)) level_kind(event.level);
  if (event.kind == FaultKind::kDegrade) {
    if (event.latency_factor < 1.0) {
      throw Error("fault schedule: degrade latency_factor must be >= 1");
    }
    if (event.capacity_divisor < 1.0) {
      throw Error("fault schedule: degrade capacity_divisor must be >= 1");
    }
  }
  if (event.kind == FaultKind::kTransient) {
    for (const double rate : {event.disk_error_rate, event.net_error_rate}) {
      if (rate < 0.0 || rate > 1.0) {
        throw Error("fault schedule: transient error rates must be in [0, 1]");
      }
    }
  }
}

/// `rand@SEED:n=N:horizon=T` — N deterministic events from Rng(SEED):
/// a fail-stop/recover pair on one I/O or storage node plus degradations,
/// transient rates and stalls spread over the horizon.
void generate_random_events(std::uint64_t seed, std::uint64_t count,
                            Nanoseconds horizon, FaultSchedule& schedule) {
  MLSC_CHECK(horizon > 0, "fault spec: rand horizon must be positive");
  Rng rng(seed);
  schedule.seed = seed;
  for (std::uint64_t i = 0; i < count; ++i) {
    FaultEvent event;
    event.at = rng.next_below(horizon);
    switch (rng.next_below(4)) {
      case 0:
        event.kind = FaultKind::kFailStop;
        event.level = 2 + static_cast<std::uint32_t>(rng.next_below(2));
        event.node_index = rng.next_below(2) == 0 ? -1 : 0;
        // Pair every fail-stop with a later recovery so long random
        // schedules do not drive the hierarchy to a dead end.
        {
          FaultEvent recover = event;
          recover.kind = FaultKind::kRecover;
          recover.at = event.at + 1 + rng.next_below(horizon);
          schedule.add(recover);
        }
        break;
      case 1:
        event.kind = FaultKind::kDegrade;
        event.level = 2 + static_cast<std::uint32_t>(rng.next_below(2));
        event.node_index = rng.next_below(2) == 0 ? -1 : 0;
        event.latency_factor = 2.0 + static_cast<double>(rng.next_below(7));
        event.capacity_divisor = 1.0 + static_cast<double>(rng.next_below(4));
        break;
      case 2:
        event.kind = FaultKind::kTransient;
        event.disk_error_rate = rng.next_double() * 0.05;
        event.net_error_rate = rng.next_double() * 0.02;
        break;
      default:
        event.kind = FaultKind::kStall;
        event.duration = 10 * kMicrosecond + rng.next_below(kMillisecond);
        break;
    }
    schedule.add(event);
  }
}

std::string event_to_string(const FaultEvent& event) {
  std::ostringstream out;
  out << fault_kind_name(event.kind) << '@' << format_time(event.at);
  if (is_targeted(event.kind)) {
    out << " l" << event.level << '[';
    if (event.node_index < 0) {
      out << '*';
    } else {
      out << event.node_index;
    }
    out << ']';
  }
  if (event.kind == FaultKind::kDegrade) {
    out << " lat=" << format_double(event.latency_factor, 2)
        << " cap=" << format_double(event.capacity_divisor, 2);
  }
  if (event.kind == FaultKind::kTransient) {
    out << " disk=" << format_double(event.disk_error_rate, 4)
        << " net=" << format_double(event.net_error_rate, 4);
  }
  if (event.kind == FaultKind::kStall) {
    out << ' ' << format_time(event.duration);
  }
  return out.str();
}

/// SplitMix64 finalizer — the per-draw hash behind draw_error.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailStop:
      return "fail-stop";
    case FaultKind::kDegrade:
      return "degrade";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kStall:
      return "stall";
  }
  return "unknown";
}

void FaultSchedule::add(FaultEvent event) {
  validate_event(event);
  auto pos = std::upper_bound(
      events.begin(), events.end(), event.at,
      [](Nanoseconds at, const FaultEvent& e) { return at < e.at; });
  events.insert(pos, event);
}

std::vector<FaultEvent> FaultSchedule::unrecovered_fail_stops() const {
  std::vector<FaultEvent> active;
  for (const FaultEvent& event : events) {
    if (event.kind == FaultKind::kFailStop) {
      active.push_back(event);
    } else if (event.kind == FaultKind::kRecover) {
      // A recover heals fail-stops of the same level when either side
      // targets the whole level or the node indices match.
      std::erase_if(active, [&](const FaultEvent& failed) {
        return failed.level == event.level &&
               (event.node_index < 0 || failed.node_index < 0 ||
                failed.node_index == event.node_index);
      });
    }
  }
  return active;
}

std::string FaultSchedule::to_string() const {
  if (events.empty()) return "none";
  std::vector<std::string> parts;
  parts.reserve(events.size());
  for (const FaultEvent& event : events) {
    parts.push_back(event_to_string(event));
  }
  return join(parts, "; ") + " (seed " + std::to_string(seed) + ")";
}

FaultSchedule parse_fault_schedule_json(const JsonValue& doc) {
  if (!doc.is_object()) {
    throw Error("fault schedule: top-level JSON value must be an object");
  }
  FaultSchedule schedule;
  if (const JsonValue* seed = doc.find("seed")) {
    if (!seed->is_number()) {
      throw Error("fault schedule: \"seed\" must be a number");
    }
    schedule.seed = static_cast<std::uint64_t>(seed->as_number());
  }
  const JsonValue* events = doc.find("events");
  if (events == nullptr || !events->is_array()) {
    throw Error("fault schedule: missing \"events\" array");
  }
  for (const JsonValue& item : events->as_array()) {
    if (!item.is_object()) {
      throw Error("fault schedule: every event must be a JSON object");
    }
    FaultEvent event;
    const JsonValue* kind = item.find("kind");
    if (kind == nullptr || !kind->is_string()) {
      throw Error("fault schedule: event missing string \"kind\"");
    }
    event.kind = kind_from_name(kind->as_string());
    if (const JsonValue* at = item.find("at_ns")) {
      event.at = static_cast<Nanoseconds>(at->number_or(0));
    } else if (const JsonValue* at_ms = item.find("at_ms")) {
      event.at = static_cast<Nanoseconds>(
          std::llround(at_ms->number_or(0) * static_cast<double>(kMillisecond)));
    } else {
      throw Error("fault schedule: event missing \"at_ns\" or \"at_ms\"");
    }
    if (is_targeted(event.kind)) {
      const JsonValue* level = item.find("level");
      if (level == nullptr || !level->is_number()) {
        throw Error(std::string("fault schedule: ") +
                    fault_kind_name(event.kind) +
                    " event missing numeric \"level\"");
      }
      event.level = static_cast<std::uint32_t>(level->as_number());
      event.node_index =
          static_cast<std::int32_t>(item.find("node") != nullptr
                                        ? item.find("node")->number_or(-1)
                                        : -1);
    }
    event.latency_factor = item.find("latency_factor") != nullptr
                               ? item.find("latency_factor")->number_or(1.0)
                               : 1.0;
    event.capacity_divisor = item.find("capacity_divisor") != nullptr
                                 ? item.find("capacity_divisor")->number_or(1.0)
                                 : 1.0;
    event.disk_error_rate = item.find("disk_error_rate") != nullptr
                                ? item.find("disk_error_rate")->number_or(0.0)
                                : 0.0;
    event.net_error_rate = item.find("net_error_rate") != nullptr
                               ? item.find("net_error_rate")->number_or(0.0)
                               : 0.0;
    if (const JsonValue* duration = item.find("duration_ns")) {
      event.duration = static_cast<Nanoseconds>(duration->number_or(0));
    } else if (const JsonValue* duration_ms = item.find("duration_ms")) {
      event.duration = static_cast<Nanoseconds>(std::llround(
          duration_ms->number_or(0) * static_cast<double>(kMillisecond)));
    }
    schedule.add(event);
  }
  return schedule;
}

FaultSchedule parse_fault_spec(std::string_view spec) {
  FaultSchedule schedule;
  for (const std::string& raw : split(std::string(spec), ';')) {
    // Trim surrounding spaces so "a; b" parses like "a;b".
    const std::size_t begin = raw.find_first_not_of(' ');
    if (begin == std::string::npos) continue;
    const std::string token = raw.substr(begin, raw.find_last_not_of(' ') -
                                                    begin + 1);
    if (token.rfind("seed=", 0) == 0) {
      schedule.seed = static_cast<std::uint64_t>(
          parse_spec_number(std::string_view(token).substr(5), "seed"));
      continue;
    }
    const std::vector<std::string> parts = split(token, ':');
    const std::string& head = parts[0];
    const std::size_t at = head.find('@');
    if (at == std::string::npos) {
      throw Error("fault spec: malformed event '" + token +
                  "' (expected kind@time[:target][:options] or seed=N)");
    }
    const std::string kind_name = head.substr(0, at);
    const std::string_view time_part = std::string_view(head).substr(at + 1);
    if (kind_name == "rand") {
      const std::uint64_t seed = static_cast<std::uint64_t>(
          parse_spec_number(time_part, "rand seed"));
      std::uint64_t count = 4;
      Nanoseconds horizon = 50 * kMillisecond;
      for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string& option = parts[i];
        if (option.rfind("n=", 0) == 0) {
          count = static_cast<std::uint64_t>(
              parse_spec_number(std::string_view(option).substr(2), "rand n"));
        } else if (option.rfind("horizon=", 0) == 0) {
          horizon = parse_spec_time(std::string_view(option).substr(8),
                                    "rand horizon");
        } else {
          throw Error("fault spec: unknown rand option '" + option + "'");
        }
      }
      generate_random_events(seed, count, horizon, schedule);
      continue;
    }
    FaultEvent event;
    event.kind = kind_from_name(kind_name);
    event.at = parse_spec_time(time_part, "event time");
    std::size_t next = 1;
    if (is_targeted(event.kind)) {
      if (parts.size() < 2) {
        throw Error("fault spec: '" + token + "' needs a target (e.g. l2.0)");
      }
      parse_spec_target(parts[next++], event);
    }
    if (event.kind == FaultKind::kStall) {
      if (parts.size() < 2) {
        throw Error("fault spec: '" + token + "' needs a duration");
      }
      event.duration = parse_spec_time(parts[next++], "stall duration");
    }
    for (; next < parts.size(); ++next) {
      parse_spec_options(parts[next], event);
    }
    schedule.add(event);
  }
  return schedule;
}

FaultSchedule load_fault_schedule(const std::string& arg) {
  if (std::ifstream probe(arg); probe.good()) {
    try {
      return parse_fault_schedule_json(parse_json_file(arg));
    } catch (const Error& e) {
      throw Error("fault schedule file '" + arg + "': " + e.what());
    }
  }
  try {
    return parse_fault_spec(arg);
  } catch (const Error& e) {
    throw Error("fault spec '" + arg + "': " + std::string(e.what()) +
                " (not an existing file, so parsed as a spec string)");
  }
}

FaultInjector::FaultInjector(FaultSchedule schedule, RetryPolicy retry,
                             const topology::HierarchyTree& tree)
    : schedule_(std::move(schedule)),
      retry_(retry),
      tree_(tree),
      latency_factor_(tree.num_nodes(), 1.0),
      stall_charged_(tree.num_clients(), 0) {
  MLSC_CHECK(tree_.finalized(), "FaultInjector needs a finalized tree");
  std::stable_sort(
      schedule_.events.begin(), schedule_.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  // Resolve every event's targets now so malformed schedules fail before
  // the replay starts rather than mid-run.
  for (const FaultEvent& event : schedule_.events) {
    validate_event(event);
    if (is_targeted(event.kind)) targets(event);
  }
}

std::vector<NodeId> resolve_fault_targets(
    const topology::HierarchyTree& tree, const FaultEvent& event) {
  const NodeKind kind = level_kind(event.level);
  std::vector<NodeId> nodes;
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    if (tree.node(id).kind == kind) nodes.push_back(id);
  }
  if (nodes.empty()) {
    throw Error(std::string("fault schedule: topology has no level-") +
                std::to_string(event.level) + " nodes");
  }
  if (event.node_index < 0) return nodes;
  if (static_cast<std::size_t>(event.node_index) >= nodes.size()) {
    throw Error("fault schedule: node index " +
                std::to_string(event.node_index) + " out of range for level " +
                std::to_string(event.level) + " (" +
                std::to_string(nodes.size()) + " nodes)");
  }
  return {nodes[static_cast<std::size_t>(event.node_index)]};
}

std::vector<NodeId> FaultInjector::targets(const FaultEvent& event) const {
  return resolve_fault_targets(tree_, event);
}

void FaultInjector::advance_to(Nanoseconds now,
                               cache::MultiLevelCache* cache) {
  while (next_event_ < schedule_.events.size() &&
         schedule_.events[next_event_].at <= now) {
    apply(schedule_.events[next_event_], cache);
    ++next_event_;
  }
}

void FaultInjector::apply(const FaultEvent& event,
                          cache::MultiLevelCache* cache) {
  std::ostringstream description;
  description << fault_kind_name(event.kind);
  switch (event.kind) {
    case FaultKind::kFailStop:
      for (const NodeId id : targets(event)) {
        latency_factor_[id] = 1.0;
        if (cache != nullptr) cache->set_node_failed(id, true);
        description << ' ' << tree_.node(id).name;
      }
      break;
    case FaultKind::kDegrade:
      for (const NodeId id : targets(event)) {
        latency_factor_[id] = event.latency_factor;
        if (cache != nullptr) {
          cache->set_node_capacity_divisor(id, event.capacity_divisor);
        }
        description << ' ' << tree_.node(id).name;
      }
      description << " lat=" << format_double(event.latency_factor, 2)
                  << " cap=" << format_double(event.capacity_divisor, 2);
      break;
    case FaultKind::kRecover:
      for (const NodeId id : targets(event)) {
        latency_factor_[id] = 1.0;
        if (cache != nullptr) {
          cache->set_node_failed(id, false);
          cache->set_node_capacity_divisor(id, 1.0);
        }
        description << ' ' << tree_.node(id).name;
      }
      break;
    case FaultKind::kTransient:
      disk_error_rate_ = event.disk_error_rate;
      net_error_rate_ = event.net_error_rate;
      description << " disk=" << format_double(event.disk_error_rate, 4)
                  << " net=" << format_double(event.net_error_rate, 4);
      break;
    case FaultKind::kStall:
      total_stall_ += event.duration;
      description << ' ' << format_time(event.duration);
      break;
  }
  applied_.push_back(AppliedFault{event.at, description.str()});
}

Nanoseconds FaultInjector::take_pending_stall(std::size_t client) {
  MLSC_CHECK(client < stall_charged_.size(), "client out of range");
  const Nanoseconds pending = total_stall_ - stall_charged_[client];
  stall_charged_[client] = total_stall_;
  return pending;
}

bool FaultInjector::draw_error(std::uint64_t client, std::uint64_t op,
                               std::uint32_t attempt, double rate) const {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Chained SplitMix64 over (seed, client, op, attempt): the verdict for
  // a given attempt is a pure function of its identity, independent of
  // the interleaving the replay happens to use.
  std::uint64_t h = mix64(schedule_.seed ^ 0xA5A5A5A5A5A5A5A5ull);
  h = mix64(h ^ client);
  h = mix64(h ^ op);
  h = mix64(h ^ attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

}  // namespace mlsc::resilience
