// Deterministic fault injection for the multi-level cache hierarchy.
//
// A FaultSchedule is a seeded list of events at virtual timestamps:
// cache-level fail-stop (a node drops out, contents lost), degradation
// (service latency xk, capacity /k), transient disk/network error rates,
// recovery, and a global stall (the virtual downtime a remap charges).
// Schedules come from JSON files, from a compact spec string on the
// command line, or are generated from an RNG spec — all three are
// deterministic, so the same seed + schedule replays bit-identically.
//
// A FaultInjector is the runtime: the engine advances it along the
// virtual clock and it flips node state on the MultiLevelCache, answers
// per-node latency factors and error rates, and draws transient errors
// from an order-independent hash of (seed, client, op, attempt) so the
// outcome never depends on replay interleaving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/multilevel.h"
#include "resilience/retry.h"
#include "support/units.h"
#include "topology/hierarchy.h"

namespace mlsc {
class JsonValue;
}  // namespace mlsc

namespace mlsc::resilience {

enum class FaultKind {
  kFailStop,   // node's cache drops out; contents lost
  kDegrade,    // node's cache slows down and/or shrinks
  kTransient,  // disk/network ops start failing at a given rate
  kRecover,    // node returns (cold) at full capacity and speed
  kStall,      // global pause (models remap/reconfiguration downtime)
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  Nanoseconds at = 0;  // virtual time the event takes effect
  FaultKind kind = FaultKind::kFailStop;

  /// Target cache level for fail-stop/degrade/recover: 1 = compute (L1),
  /// 2 = I/O (L2), 3 = storage (L3).  0 for transient/stall events.
  std::uint32_t level = 0;
  /// Index of the node within its level's left-to-right node list;
  /// -1 targets every node of the level.
  std::int32_t node_index = -1;

  /// kDegrade: cache service latency multiplier (>= 1).
  double latency_factor = 1.0;
  /// kDegrade: capacity divisor (>= 1); the cache restarts cold at
  /// base_capacity / capacity_divisor chunks.
  double capacity_divisor = 1.0;

  /// kTransient: per-attempt error probabilities (replace, not add).
  double disk_error_rate = 0.0;
  double net_error_rate = 0.0;

  /// kStall: pause length charged to every client's clock.
  Nanoseconds duration = 0;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;  // sorted by `at` (stable)
  std::uint64_t seed = 0;          // drives transient-error draws

  bool empty() const { return events.empty(); }

  /// Events of `kind` that are still in effect at the end of the
  /// schedule (e.g. fail-stops without a later recover of the same
  /// target).
  std::vector<FaultEvent> unrecovered_fail_stops() const;

  /// Appends an event keeping the sort order.
  void add(FaultEvent event);

  /// One-line summary for headers and run-record metadata.
  std::string to_string() const;
};

/// Parses the JSON schedule document:
///   {"seed": 42, "events": [
///     {"at_ms": 5, "kind": "fail-stop", "level": 2, "node": 0},
///     {"at_ms": 8, "kind": "degrade", "level": 3, "node": -1,
///      "latency_factor": 4, "capacity_divisor": 2},
///     {"at_ms": 0, "kind": "transient", "disk_error_rate": 0.01,
///      "net_error_rate": 0.001},
///     {"at_ms": 20, "kind": "recover", "level": 2, "node": 0},
///     {"at_ms": 10, "kind": "stall", "duration_ms": 2}]}
/// Unknown kinds, bad levels, and non-object events throw Error.
FaultSchedule parse_fault_schedule_json(const JsonValue& doc);

/// Parses the compact command-line grammar: ';'-separated events
///   fail@5ms:l2.0        degrade@8ms:l3:lat=4,cap=2
///   transient@0:disk=0.01,net=0.001
///   recover@20ms:l2.0    stall@10ms:2ms     seed=42
/// plus random generation `rand@SEED:n=N:horizon=50ms` (N events drawn
/// deterministically from Rng(SEED)).  Times accept ns/us/ms/s suffixes
/// (bare numbers are nanoseconds).  Throws Error on malformed specs.
FaultSchedule parse_fault_spec(std::string_view spec);

/// Loads a schedule from `arg`: an existing file is parsed as JSON,
/// anything else as a spec string.  Throws Error with context.
FaultSchedule load_fault_schedule(const std::string& arg);

/// Resolves a targeted event (fail-stop/degrade/recover) to node ids:
/// the event's level selects a node kind (1 = compute, 2 = I/O,
/// 3 = storage) and node_index picks within that kind's nodes in id
/// order (-1 = all).  Throws Error for bad levels or out-of-range
/// indices.
std::vector<topology::NodeId> resolve_fault_targets(
    const topology::HierarchyTree& tree, const FaultEvent& event);

/// One applied event, kept for trace emission and diagnostics.
struct AppliedFault {
  Nanoseconds at = 0;
  std::string description;  // e.g. "fail-stop io[0]"
};

/// Replay-time fault state.  The engine calls advance_to() with the
/// globally earliest client clock before executing an iteration; events
/// whose timestamp has passed flip node state on the cache hierarchy.
class FaultInjector {
 public:
  FaultInjector(FaultSchedule schedule, RetryPolicy retry,
                const topology::HierarchyTree& tree);

  /// Applies every event with `at <= now` to `cache` (may be null in
  /// unit tests; node bookkeeping still updates).
  void advance_to(Nanoseconds now, cache::MultiLevelCache* cache);

  /// Lazily consumed per-client share of global stall events: the total
  /// stall duration that became due and was not yet charged to `client`.
  Nanoseconds take_pending_stall(std::size_t client);

  /// Service-latency multiplier for a cache hit at `node` (1.0 when
  /// healthy).
  double latency_factor(topology::NodeId node) const {
    return latency_factor_[node];
  }

  double disk_error_rate() const { return disk_error_rate_; }
  double net_error_rate() const { return net_error_rate_; }

  /// Order-independent transient-error draw for attempt `attempt` of
  /// operation `op` by `client`: hashes (seed, client, op, attempt) so
  /// the verdict does not depend on replay interleaving.
  bool draw_error(std::uint64_t client, std::uint64_t op,
                  std::uint32_t attempt, double rate) const;

  const RetryPolicy& retry() const { return retry_; }

  std::uint64_t events_applied() const { return applied_.size(); }
  /// Applied-event log in application order (for trace emission).
  const std::vector<AppliedFault>& applied() const { return applied_; }

 private:
  void apply(const FaultEvent& event, cache::MultiLevelCache* cache);
  std::vector<topology::NodeId> targets(const FaultEvent& event) const;

  FaultSchedule schedule_;
  RetryPolicy retry_;
  const topology::HierarchyTree& tree_;
  std::size_t next_event_ = 0;

  std::vector<double> latency_factor_;  // by node id
  double disk_error_rate_ = 0.0;
  double net_error_rate_ = 0.0;

  Nanoseconds total_stall_ = 0;
  std::vector<Nanoseconds> stall_charged_;  // per client

  std::vector<AppliedFault> applied_;
};

}  // namespace mlsc::resilience
