// Retry policy for transient I/O errors in degraded-mode replay.
//
// A transient disk or network error costs the wasted attempt plus a
// capped exponential backoff before the next try; a per-access timeout
// budget bounds how long one access may spend retrying before the engine
// declares a timeout and serves the access through the fallback path.
// All values are virtual nanoseconds — the engine charges them to the
// simulated clock, never to wall time.
#pragma once

#include <cstdint>

#include "support/units.h"

namespace mlsc::resilience {

struct RetryPolicy {
  /// Total tries per operation, including the first.  After
  /// `max_attempts - 1` consecutive errors the final attempt is served
  /// unconditionally (the storage stack escalates past the flaky path).
  std::uint32_t max_attempts = 4;

  /// Backoff charged before retry n (1-based) is
  /// initial_backoff_ns * multiplier^(n-1), capped at max_backoff_ns.
  Nanoseconds initial_backoff_ns = 50 * kMicrosecond;
  double multiplier = 2.0;
  Nanoseconds max_backoff_ns = 2 * kMillisecond;

  /// Per-access retry budget: once the time spent on failed attempts and
  /// backoffs reaches this, the access times out — the engine charges
  /// exactly the budget remainder and counts a retry timeout.
  Nanoseconds access_timeout_ns = 20 * kMillisecond;

  /// Cost of probing a failed cache node before falling through to the
  /// next level or a healthy peer (connection timeout + redirect).
  Nanoseconds failover_detect_ns = 100 * kMicrosecond;

  /// Backoff before retry `retry_number` (1-based): capped exponential.
  Nanoseconds backoff(std::uint32_t retry_number) const;
};

}  // namespace mlsc::resilience
