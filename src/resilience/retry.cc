#include "resilience/retry.h"

#include <cmath>

namespace mlsc::resilience {

Nanoseconds RetryPolicy::backoff(std::uint32_t retry_number) const {
  if (retry_number == 0) return 0;
  double delay = static_cast<double>(initial_backoff_ns);
  const double cap = static_cast<double>(max_backoff_ns);
  for (std::uint32_t i = 1; i < retry_number && delay < cap; ++i) {
    delay *= multiplier;
  }
  if (delay > cap) delay = cap;
  return static_cast<Nanoseconds>(delay);
}

}  // namespace mlsc::resilience
