#include "resilience/remap.h"

#include <map>
#include <sstream>
#include <utility>

#include "obs/trace.h"

namespace mlsc::resilience {

RemapDecision decide_remap(const RemapPolicy& policy,
                           const FaultSchedule& schedule) {
  RemapDecision decision;
  if (!policy.remap_on_failure) return decision;
  for (const FaultEvent& event : schedule.events) {
    if (event.kind != FaultKind::kFailStop) continue;
    decision.triggered = true;
    decision.at = event.at;
    std::ostringstream reason;
    reason << "fail-stop of level " << event.level << " node ";
    if (event.node_index < 0) {
      reason << '*';
    } else {
      reason << event.node_index;
    }
    reason << " at " << format_time(event.at);
    decision.reason = reason.str();
    return decision;  // earliest fail-stop wins (events are sorted)
  }
  return decision;
}

bool drift_exceeded(const RemapPolicy& policy,
                    const cache::CacheStats& baseline,
                    const cache::CacheStats& observed) {
  return observed.miss_rate() - baseline.miss_rate() > policy.miss_rate_drift;
}

topology::HierarchyTree surviving_topology(
    const topology::HierarchyTree& tree, const FaultSchedule& schedule) {
  topology::HierarchyTree surviving = tree;
  for (const FaultEvent& failed : schedule.unrecovered_fail_stops()) {
    for (const topology::NodeId id : resolve_fault_targets(tree, failed)) {
      surviving.set_cache_capacity(id, 0);
    }
  }
  return surviving;
}

namespace {

/// Client ranks whose path to the root crosses a node the schedule
/// fail-stops and never recovers: every access they make pays failover
/// detection and loses the dead cache's locality, so the remap moves
/// their work to clients whose paths are fully healthy.
std::vector<bool> affected_clients(const topology::HierarchyTree& tree,
                                   const FaultSchedule& schedule) {
  std::vector<char> failed(tree.num_nodes(), 0);
  for (const FaultEvent& event : schedule.unrecovered_fail_stops()) {
    for (const topology::NodeId id : resolve_fault_targets(tree, event)) {
      failed[id] = 1;
    }
  }
  std::vector<bool> affected(tree.num_clients(), false);
  for (std::size_t rank = 0; rank < tree.num_clients(); ++rank) {
    for (const topology::NodeId node :
         tree.path_to_root(tree.clients()[rank])) {
      if (failed[node] != 0) {
        affected[rank] = true;
        break;
      }
    }
  }
  return affected;
}

/// Moves every affected client's work items onto healthy clients,
/// greedily appending each item to the currently least-loaded survivor
/// (ties broken by rank) so the redistribution stays balanced and
/// deterministic.  Sync edges follow their items; surviving clients'
/// existing items keep their indices (moved items are appended).
void redistribute_work(core::MappingResult& mapping,
                       const std::vector<bool>& affected) {
  std::vector<std::uint32_t> survivors;
  for (std::uint32_t c = 0; c < mapping.client_work.size(); ++c) {
    if (!affected[c]) survivors.push_back(c);
  }
  // Nothing to move, or nowhere to move it (every client affected — e.g.
  // a whole-level fail-stop): keep the mapping as computed.
  if (survivors.empty() || survivors.size() == mapping.client_work.size()) {
    return;
  }

  std::vector<std::uint64_t> load(mapping.client_work.size(), 0);
  for (std::uint32_t c = 0; c < mapping.client_work.size(); ++c) {
    load[c] = mapping.client_iterations(c);
  }

  const auto item_key = [](std::uint32_t client, std::uint32_t item) {
    return (static_cast<std::uint64_t>(client) << 32) | item;
  };
  std::map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>> moved;

  for (std::uint32_t c = 0; c < mapping.client_work.size(); ++c) {
    if (!affected[c]) continue;
    auto& items = mapping.client_work[c];
    for (std::uint32_t i = 0; i < items.size(); ++i) {
      std::uint32_t best = survivors.front();
      for (const std::uint32_t s : survivors) {
        if (load[s] < load[best]) best = s;
      }
      auto& dst = mapping.client_work[best];
      moved[item_key(c, i)] = {best,
                               static_cast<std::uint32_t>(dst.size())};
      load[best] += items[i].iterations;
      dst.push_back(std::move(items[i]));
    }
    items.clear();
    load[c] = 0;
  }

  for (core::SyncEdge& edge : mapping.sync_edges) {
    const auto p = moved.find(item_key(edge.producer_client,
                                       edge.producer_item));
    if (p != moved.end()) {
      edge.producer_client = p->second.first;
      edge.producer_item = p->second.second;
    }
    const auto q = moved.find(item_key(edge.consumer_client,
                                       edge.consumer_item));
    if (q != moved.end()) {
      edge.consumer_client = q->second.first;
      edge.consumer_item = q->second.second;
    }
  }
}

}  // namespace

core::MappingResult remap_mapping(const topology::HierarchyTree& surviving,
                                  const FaultSchedule& schedule,
                                  const core::PipelineOptions& options,
                                  const poly::Program& program,
                                  const core::DataSpace& space) {
  obs::Span span("resilience.remap");
  const core::MappingPipeline pipeline(surviving, options);
  core::MappingResult mapping = pipeline.run_all(program, space);
  redistribute_work(mapping, affected_clients(surviving, schedule));
  return mapping;
}

}  // namespace mlsc::resilience
