// contour — contour displaying (Table 2).
//
// Contour display extracts several isolines from the same disk-resident
// scalar field: an outer isovalue loop re-sweeps the field with a 2x2
// marching-squares window and writes one segment set per level.  The
// field slice a client needs exceeds its private cache, so the original
// (level-major) order re-streams it from disk at every level; iterations
// of different levels share every field chunk, which a hierarchy-aware
// mapping clusters together and the local scheduler then executes
// region-major, converting the re-reads into cache hits.
#include "workloads/detail.h"
#include "workloads/workload.h"

namespace mlsc::workloads {

Workload make_contour(double size_factor) {
  constexpr std::int64_t kLevels = 4;   // isovalues displayed
  constexpr std::int64_t kGrid = 208;   // field tiles per dimension

  Workload w;
  w.name = "contour";
  w.description = "Contour Displaying";
  w.paper_data_bytes = 339ull * kGiB;

  const std::uint64_t field_elem =
      detail::scaled_element(96 * kKiB, size_factor);
  const std::uint64_t seg_elem = detail::scaled_element(8 * kKiB, size_factor);

  poly::Program& p = w.program;
  p.name = w.name;
  const auto field = p.add_array({"field", {kGrid, kGrid}, field_elem});
  const auto segments =
      p.add_array({"segs", {kLevels, kGrid - 1, kGrid - 1}, seg_elem});

  poly::LoopNest nest;
  nest.name = "marching_squares";
  nest.space =
      poly::IterationSpace::from_extents({kLevels, kGrid - 1, kGrid - 1});
  nest.refs = {
      {field, poly::AccessMap::from_matrix({{0, 1, 0}, {0, 0, 1}}, {0, 0}),
       false},
      {field, poly::AccessMap::from_matrix({{0, 1, 0}, {0, 0, 1}}, {1, 0}),
       false},
      {field, poly::AccessMap::from_matrix({{0, 1, 0}, {0, 0, 1}}, {0, 1}),
       false},
      {field, poly::AccessMap::from_matrix({{0, 1, 0}, {0, 0, 1}}, {1, 1}),
       false},
      {segments, poly::AccessMap::identity(3, {0, 0, 0}), /*is_write=*/true},
  };
  nest.compute_ns_per_iteration = 110 * kMicrosecond;
  p.add_nest(std::move(nest));

  p.validate();
  return w;
}

}  // namespace mlsc::workloads
