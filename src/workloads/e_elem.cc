// e_elem — finite element electromagnetic modeling (Table 2).
//
// An iterative field solver: sweep s reads the previous sweep's solution
// at the element and its neighbours (flow dependence across the sweep
// loop), together with the per-element stiffness data and shared corner
// nodes, and writes sweep s's solution.  The sweep loop is sequential
// for a classical locality pass, but region clustering across sweeps
// plus §5.4 synchronization recovers the reuse.
#include "workloads/detail.h"
#include "workloads/workload.h"

namespace mlsc::workloads {

Workload make_e_elem(double size_factor) {
  constexpr std::int64_t kSweeps = 4;   // solver iterations (s = 1..4)
  constexpr std::int64_t kElems = 256;  // elements per mesh dimension

  Workload w;
  w.name = "e_elem";
  w.description = "Finite Element Electromagnetic Modeling";
  w.paper_data_bytes = 202ull * kGiB;

  const std::uint64_t mesh_elem =
      detail::scaled_element(16 * kKiB, size_factor);
  const std::uint64_t node_elem =
      detail::scaled_element(12 * kKiB, size_factor);
  const std::uint64_t sol_elem = detail::scaled_element(4 * kKiB, size_factor);

  poly::Program& p = w.program;
  p.name = w.name;
  const auto mesh = p.add_array({"mesh", {kElems, kElems}, mesh_elem});
  const auto nodes =
      p.add_array({"nodes", {kElems + 1, kElems + 1}, node_elem});
  const auto solution =
      p.add_array({"sol", {kSweeps + 1, kElems, kElems}, sol_elem});

  poly::LoopNest nest;
  nest.name = "assemble";
  nest.space = poly::IterationSpace(std::vector<poly::LoopBounds>{
      {1, kSweeps}, {1, kElems - 2}, {1, kElems - 2}});
  const auto grid_at = [](std::int64_t di, std::int64_t dj) {
    return poly::AccessMap::from_matrix({{0, 1, 0}, {0, 0, 1}}, {di, dj});
  };
  const auto sol_at = [](std::int64_t ds, std::int64_t di, std::int64_t dj) {
    return poly::AccessMap::identity(3, {ds, di, dj});
  };
  nest.refs = {
      {mesh, grid_at(0, 0), false},
      {nodes, grid_at(0, 0), false},
      {nodes, grid_at(1, 0), false},
      {nodes, grid_at(0, 1), false},
      {nodes, grid_at(1, 1), false},
      {solution, sol_at(-1, 0, 0), false},
      {solution, sol_at(-1, -1, 0), false},
      {solution, sol_at(-1, 1, 0), false},
      {solution, sol_at(-1, 0, -1), false},
      {solution, sol_at(-1, 0, 1), false},
      {solution, sol_at(0, 0, 0), /*is_write=*/true},
  };
  nest.compute_ns_per_iteration = 170 * kMicrosecond;
  p.add_nest(std::move(nest));

  p.validate();
  return w;
}

}  // namespace mlsc::workloads
