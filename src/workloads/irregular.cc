// irregular — unstructured-mesh flux sweep (the paper's §7 future-work
// case: loops with irregular data access patterns).
//
// An edge-based CFD-style kernel: for every mesh edge, gather the two
// endpoint node records through index arrays and write the edge flux.
// The mesh is a 2D grid whose edge list is partially shuffled, so access
// is neither affine nor fully random — the regime where chunk-level
// tagging still finds structure a static compiler cannot.
#include "workloads/detail.h"
#include "workloads/irregular.h"

#include "support/rng.h"

namespace mlsc::workloads {

Workload make_irregular(double size_factor, double shuffle_fraction,
                        std::uint64_t seed) {
  constexpr std::int64_t kSide = 104;  // nodes per grid side
  const std::int64_t nodes_count = kSide * kSide;

  Workload w;
  w.name = "irregular";
  w.description = "Unstructured-mesh edge flux sweep (future-work case)";

  const std::uint64_t node_elem =
      detail::scaled_element(192 * kKiB, size_factor);
  const std::uint64_t flux_elem =
      detail::scaled_element(48 * kKiB, size_factor);

  poly::Program& p = w.program;
  p.name = w.name;
  const auto nodes = p.add_array({"nodes", {nodes_count}, node_elem});

  // Edge list: right neighbours then down neighbours, row-major, with a
  // fraction of entries shuffled to break the regular order.
  std::vector<std::int64_t> src;
  std::vector<std::int64_t> dst;
  for (std::int64_t y = 0; y < kSide; ++y) {
    for (std::int64_t x = 0; x < kSide; ++x) {
      const std::int64_t n = y * kSide + x;
      if (x + 1 < kSide) {
        src.push_back(n);
        dst.push_back(n + 1);
      }
      if (y + 1 < kSide) {
        src.push_back(n);
        dst.push_back(n + kSide);
      }
    }
  }
  Rng rng(seed);
  const auto swaps =
      static_cast<std::size_t>(shuffle_fraction * static_cast<double>(
                                   src.size()));
  for (std::size_t s = 0; s < swaps; ++s) {
    const std::size_t i = rng.next_below(src.size());
    const std::size_t j = rng.next_below(src.size());
    std::swap(src[i], src[j]);
    std::swap(dst[i], dst[j]);
  }
  const auto num_edges = static_cast<std::int64_t>(src.size());
  const auto flux = p.add_array({"flux", {num_edges}, flux_elem});
  const auto src_table = p.add_index_table({"edge_src", std::move(src)});
  const auto dst_table = p.add_index_table({"edge_dst", std::move(dst)});

  poly::LoopNest nest;
  nest.name = "edge_flux";
  nest.space = poly::IterationSpace({{0, num_edges - 1}});
  poly::ArrayRef src_ref;
  src_ref.array = nodes;
  src_ref.map = poly::AccessMap::identity(1, {0});
  src_ref.index_table = src_table;
  poly::ArrayRef dst_ref = src_ref;
  dst_ref.index_table = dst_table;
  nest.refs = {
      src_ref,
      dst_ref,
      {flux, poly::AccessMap::identity(1, {0}), /*is_write=*/true},
  };
  nest.compute_ns_per_iteration = 250 * kMicrosecond;
  p.add_nest(std::move(nest));

  p.validate();
  return w;
}

}  // namespace mlsc::workloads
