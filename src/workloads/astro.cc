// astro — analysis of astronomical data (Table 2).
//
// A survey pipeline scans a long time series of sky frames against a
// reference catalog: frames stream from disk once, the catalog is
// re-read for every frame.  The catalog reuse across the time loop is
// exactly the cross-client sharing a hierarchy-aware mapping can convert
// into shared-cache hits (and the original mapping destroys — the paper
// reports astro's worst-in-suite 76.4% L3 miss rate).
#include "workloads/detail.h"
#include "workloads/workload.h"

namespace mlsc::workloads {

Workload make_astro(double size_factor) {
  constexpr std::int64_t kFrames = 96;   // time steps
  constexpr std::int64_t kPatches = 2048;  // sky patches per frame

  Workload w;
  w.name = "astro";
  w.description = "Analysis of astronomical data";
  w.paper_data_bytes = 260ull * kGiB;

  const std::uint64_t frame_elem =
      detail::scaled_element(20 * kKiB, size_factor);
  const std::uint64_t catalog_elem =
      detail::scaled_element(20 * kKiB, size_factor);
  const std::uint64_t out_elem = detail::scaled_element(2 * kKiB, size_factor);

  poly::Program& p = w.program;
  p.name = w.name;
  const auto frames = p.add_array({"frames", {kFrames, kPatches}, frame_elem});
  const auto catalog = p.add_array({"catalog", {kPatches}, catalog_elem});
  const auto detections =
      p.add_array({"detect", {kFrames, kPatches}, out_elem});

  poly::LoopNest nest;
  nest.name = "match_catalog";
  nest.space = poly::IterationSpace::from_extents({kFrames, kPatches});
  nest.refs = {
      {frames, poly::AccessMap::identity(2, {0, 0}), false},
      {catalog,
       poly::AccessMap::from_matrix({{0, 1}}, {0}), false},
      {detections, poly::AccessMap::identity(2, {0, 0}), /*is_write=*/true},
  };
  nest.compute_ns_per_iteration = 200 * kMicrosecond;
  p.add_nest(std::move(nest));

  p.validate();
  return w;
}

}  // namespace mlsc::workloads
