// sar — synthetic aperture radar kernel (Table 2).
//
// SAR image formation makes two passes over the scene: range compression
// walks the raw data row-wise, azimuth compression walks it column-wise.
// The transposed second pass is the classic storage-locality stress: the
// lexicographic original order thrashes every cache level, loop
// permutation (intra-processor) fixes the private cache, and only
// sharing-aware mapping fixes the shared levels.  Two nests, so sar also
// exercises the multi-nest path (§5.4).
#include "workloads/detail.h"
#include "workloads/workload.h"

namespace mlsc::workloads {

Workload make_sar(double size_factor) {
  constexpr std::int64_t kSize = 320;  // scene tiles per dimension

  Workload w;
  w.name = "sar";
  w.description = "Synthetic Aperture Radar kernel";
  w.paper_data_bytes = static_cast<std::uint64_t>(189.6 * kGiB);

  const std::uint64_t element = detail::scaled_element(10 * kKiB, size_factor);

  poly::Program& p = w.program;
  p.name = w.name;
  const auto raw = p.add_array({"raw", {kSize, kSize}, element});
  const auto range = p.add_array({"rng", {kSize, kSize}, element});
  const auto image = p.add_array({"img", {kSize, kSize}, element});

  // Pass 1 — range compression, row-major over the raw scene.
  poly::LoopNest pass1;
  pass1.name = "range_compress";
  pass1.space = poly::IterationSpace::from_extents({kSize, kSize});
  pass1.refs = {
      {raw, poly::AccessMap::identity(2, {0, 0}), false},
      {range, poly::AccessMap::identity(2, {0, 0}), /*is_write=*/true},
  };
  pass1.compute_ns_per_iteration = 120 * kMicrosecond;
  p.add_nest(std::move(pass1));

  // Pass 2 — azimuth compression: reads the intermediate transposed.
  poly::LoopNest pass2;
  pass2.name = "azimuth_compress";
  pass2.space = poly::IterationSpace::from_extents({kSize, kSize});
  pass2.refs = {
      {range, poly::AccessMap::from_matrix({{0, 1}, {1, 0}}, {0, 0}), false},
      {image, poly::AccessMap::identity(2, {0, 0}), /*is_write=*/true},
  };
  pass2.compute_ns_per_iteration = 150 * kMicrosecond;
  p.add_nest(std::move(pass2));

  p.validate();
  return w;
}

}  // namespace mlsc::workloads
