// Shared helpers for the workload generators.
#pragma once

#include <algorithm>
#include <cstdint>

#include "support/check.h"
#include "support/units.h"

namespace mlsc::workloads::detail {

/// Scales an element size by the workload size factor, keeping it a
/// multiple of 1 KiB and at least 1 KiB so chunk math stays meaningful.
inline std::uint64_t scaled_element(std::uint64_t bytes, double factor) {
  MLSC_CHECK(factor > 0.0, "size factor must be positive");
  const double scaled = static_cast<double>(bytes) * factor;
  const auto kib = static_cast<std::uint64_t>(scaled / 1024.0);
  return std::max<std::uint64_t>(1, kib) * 1024;
}

}  // namespace mlsc::workloads::detail
