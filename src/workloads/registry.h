// Name-indexed access to the application suite.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace mlsc::workloads {

struct RegistryEntry {
  std::string name;
  std::string description;
  std::function<Workload(double)> factory;
};

/// The eight applications of Table 2, in the paper's order.
const std::vector<RegistryEntry>& registry();

/// Creates a workload by Table 2 name ("hf", "sar", ...); throws on
/// unknown names.
Workload make_workload(const std::string& name, double size_factor = 1.0);

/// The eight names in Table 2 order.
std::vector<std::string> workload_names();

}  // namespace mlsc::workloads
