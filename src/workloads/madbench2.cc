// madbench2 — cosmic microwave background radiation calculation
// (Table 2; derived from the MADCAP CMB analysis package).
//
// MADbench's dSdC phase derives one signal-correlation matrix per
// spectral bin from the same disk-resident pixel-pixel template:
// S_b[i,j] = f(b, T[i,j]).  The template is re-read once per bin, so
// iterations of different bins share every template chunk — exactly the
// replication scenario of the paper's Fig. 2(b): the original mapping
// streams four copies of T through disjoint cache subtrees, while a
// hierarchy-aware mapping lets one fetch serve all bins.
#include "workloads/detail.h"
#include "workloads/workload.h"

namespace mlsc::workloads {

Workload make_madbench2(double size_factor) {
  constexpr std::int64_t kBins = 4;     // spectral bins
  constexpr std::int64_t kPix = 256;    // pixel blocks per matrix side

  Workload w;
  w.name = "madbench2";
  w.description = "Cosmic Microwave Background Radiation Calculation";
  w.paper_data_bytes = 240ull * kGiB;

  const std::uint64_t element = detail::scaled_element(12 * kKiB, size_factor);

  poly::Program& p = w.program;
  p.name = w.name;
  const auto tmpl = p.add_array({"T", {kPix, kPix}, element});
  const auto signal = p.add_array({"S", {kBins, kPix, kPix}, element});

  poly::LoopNest nest;
  nest.name = "dsdc";
  nest.space = poly::IterationSpace::from_extents({kBins, kPix, kPix});
  nest.refs = {
      {tmpl, poly::AccessMap::from_matrix({{0, 1, 0}, {0, 0, 1}}, {0, 0}),
       false},
      {signal, poly::AccessMap::identity(3, {0, 0, 0}), /*is_write=*/true},
  };
  nest.compute_ns_per_iteration = 130 * kMicrosecond;
  p.add_nest(std::move(nest));

  p.validate();
  return w;
}

}  // namespace mlsc::workloads
