// wupwise — physics / quantum chromodynamics (Table 2; out-of-core
// version of the SPEC application, the suite's largest data set at
// 422.7 GB).
//
// Lattice QCD's hopping-matrix multiply: for every 4D lattice site, read
// the local spinor, its eight axis neighbours' spinors (±t, ±x, ±y, ±z)
// and the gauge-link block, write the result spinor.  The 4D wrap-around
// of the lexicographic order makes the original mapping's footprint
// wide, which is why the deeper cache levels suffer (52.8% L3 misses in
// the paper).
#include "workloads/detail.h"
#include "workloads/workload.h"

namespace mlsc::workloads {

Workload make_wupwise(double size_factor) {
  constexpr std::int64_t kT = 16;
  constexpr std::int64_t kX = 24;
  constexpr std::int64_t kY = 24;
  constexpr std::int64_t kZ = 24;

  Workload w;
  w.name = "wupwise";
  w.description = "Physics/Quantum Chromodynamics";
  w.paper_data_bytes = static_cast<std::uint64_t>(422.7 * kGiB);

  const std::uint64_t spinor_elem =
      detail::scaled_element(8 * kKiB, size_factor);
  const std::uint64_t gauge_elem =
      detail::scaled_element(16 * kKiB, size_factor);

  poly::Program& p = w.program;
  p.name = w.name;
  const auto psi = p.add_array({"psi", {kT, kX, kY, kZ}, spinor_elem});
  const auto gauge = p.add_array({"U", {kT, kX, kY, kZ}, gauge_elem});
  const auto result = p.add_array({"res", {kT, kX, kY, kZ}, spinor_elem});

  poly::LoopNest nest;
  nest.name = "hopping_matrix";
  nest.space = poly::IterationSpace(std::vector<poly::LoopBounds>{
      {1, kT - 2}, {1, kX - 2}, {1, kY - 2}, {1, kZ - 2}});
  nest.refs = {
      {psi, poly::AccessMap::identity(4, {0, 0, 0, 0}), false},
      {psi, poly::AccessMap::identity(4, {-1, 0, 0, 0}), false},
      {psi, poly::AccessMap::identity(4, {1, 0, 0, 0}), false},
      {psi, poly::AccessMap::identity(4, {0, -1, 0, 0}), false},
      {psi, poly::AccessMap::identity(4, {0, 1, 0, 0}), false},
      {psi, poly::AccessMap::identity(4, {0, 0, -1, 0}), false},
      {psi, poly::AccessMap::identity(4, {0, 0, 1, 0}), false},
      {psi, poly::AccessMap::identity(4, {0, 0, 0, -1}), false},
      {psi, poly::AccessMap::identity(4, {0, 0, 0, 1}), false},
      {gauge, poly::AccessMap::identity(4, {0, 0, 0, 0}), false},
      {result, poly::AccessMap::identity(4, {0, 0, 0, 0}), /*is_write=*/true},
  };
  nest.compute_ns_per_iteration = 180 * kMicrosecond;
  p.add_nest(std::move(nest));

  p.validate();
  return w;
}

}  // namespace mlsc::workloads
