// The irregular (indirect-access) workload — exercises the §7
// future-work extension.  Not part of the Table 2 suite/registry.
#pragma once

#include <cstdint>

#include "workloads/workload.h"

namespace mlsc::workloads {

/// An unstructured-mesh edge sweep whose node accesses go through index
/// tables.  `shuffle_fraction` of the edge list is randomly permuted
/// (0 = grid order, 1 = fully shuffled); `seed` fixes the permutation.
Workload make_irregular(double size_factor = 1.0,
                        double shuffle_fraction = 0.2,
                        std::uint64_t seed = 42);

}  // namespace mlsc::workloads
