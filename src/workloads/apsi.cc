// apsi — pollutant distribution modeling (Table 2; out-of-core version
// of the SPEC application).
//
// Time-stepped 3D advection: step t reads the concentration planes of
// step t-1 with a 7-point stencil (a true flow dependence across the
// time loop) plus the wind fields, and writes step t's concentration.
// The dependence makes the time loop non-permutable for a classical
// locality pass, while the mapping approach still clusters the same grid
// region across timesteps and restores correctness with inter-processor
// synchronization (paper §5.4).
#include "workloads/detail.h"
#include "workloads/workload.h"

namespace mlsc::workloads {

Workload make_apsi(double size_factor) {
  constexpr std::int64_t kSteps = 3;   // timesteps computed (t = 1..3)
  constexpr std::int64_t kGrid = 40;   // grid cells per dimension

  Workload w;
  w.name = "apsi";
  w.description = "Pollutant Distribution Modeling";
  w.paper_data_bytes = 334ull * kGiB;

  const std::uint64_t element = detail::scaled_element(12 * kKiB, size_factor);

  poly::Program& p = w.program;
  p.name = w.name;
  const auto u = p.add_array({"u", {kGrid, kGrid, kGrid}, element});
  const auto v = p.add_array({"v", {kGrid, kGrid, kGrid}, element});
  const auto ww = p.add_array({"w", {kGrid, kGrid, kGrid}, element});
  const auto conc =
      p.add_array({"c", {kSteps + 1, kGrid, kGrid, kGrid}, element});

  poly::LoopNest nest;
  nest.name = "advect";
  nest.space = poly::IterationSpace(std::vector<poly::LoopBounds>{
      {1, kSteps}, {1, kGrid - 2}, {1, kGrid - 2}, {1, kGrid - 2}});
  const auto field_at = [](std::int64_t dx, std::int64_t dy,
                           std::int64_t dz) {
    return poly::AccessMap::from_matrix(
        {{0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}}, {dx, dy, dz});
  };
  const auto conc_at = [](std::int64_t dt, std::int64_t dx, std::int64_t dy,
                          std::int64_t dz) {
    return poly::AccessMap::identity(4, {dt, dx, dy, dz});
  };
  nest.refs = {
      {u, field_at(0, 0, 0), false},
      {v, field_at(0, 0, 0), false},
      {ww, field_at(0, 0, 0), false},
      {conc, conc_at(-1, 0, 0, 0), false},
      {conc, conc_at(-1, -1, 0, 0), false},
      {conc, conc_at(-1, 1, 0, 0), false},
      {conc, conc_at(-1, 0, -1, 0), false},
      {conc, conc_at(-1, 0, 1, 0), false},
      {conc, conc_at(-1, 0, 0, -1), false},
      {conc, conc_at(-1, 0, 0, 1), false},
      {conc, conc_at(0, 0, 0, 0), /*is_write=*/true},
  };
  nest.compute_ns_per_iteration = 90 * kMicrosecond;
  p.add_nest(std::move(nest));

  p.validate();
  return w;
}

}  // namespace mlsc::workloads
