#include "workloads/registry.h"

#include "support/check.h"

namespace mlsc::workloads {

const std::vector<RegistryEntry>& registry() {
  static const std::vector<RegistryEntry> entries = {
      {"hf", "Hartree-Fock Method", make_hf},
      {"sar", "Synthetic Aperture Radar Kernel", make_sar},
      {"contour", "Contour Displaying", make_contour},
      {"astro", "Analysis of Astronomical Data", make_astro},
      {"e_elem", "Finite Element Electromagnetic Modeling", make_e_elem},
      {"apsi", "Pollutant Distribution Modeling", make_apsi},
      {"madbench2", "Cosmic Microwave Background Radiation Calculation",
       make_madbench2},
      {"wupwise", "Physics/Quantum Chromodynamics", make_wupwise},
  };
  return entries;
}

Workload make_workload(const std::string& name, double size_factor) {
  for (const auto& entry : registry()) {
    if (entry.name == name) return entry.factory(size_factor);
  }
  MLSC_CHECK(false, "unknown workload: " << name);
  return {};  // unreachable
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& entry : registry()) names.push_back(entry.name);
  return names;
}

}  // namespace mlsc::workloads
