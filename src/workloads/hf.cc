// hf — Hartree-Fock method (Table 2).
//
// The I/O-heavy phase of out-of-core Hartree-Fock streams the huge
// two-electron integral file exactly once while repeatedly reading the
// (much smaller, but cache-exceeding) density and screening-bound
// arrays: F[i] += ERI[i,j] * D[j] * Q[j].  Every client needs all of D
// and Q — the broadcast reuse a hierarchy-aware mapping can pin per
// client, and the original mapping re-streams past every cache level.
#include "workloads/detail.h"
#include "workloads/workload.h"

namespace mlsc::workloads {

Workload make_hf(double size_factor) {
  constexpr std::int64_t kFockBlocks = 128;    // i: Fock/occupied blocks
  constexpr std::int64_t kShellBlocks = 1536;  // j: shell-pair blocks

  Workload w;
  w.name = "hf";
  w.description = "Hartree-Fock method";
  w.paper_data_bytes = 194ull * kGiB;

  const std::uint64_t eri_elem = detail::scaled_element(16 * kKiB, size_factor);
  const std::uint64_t vec_elem = detail::scaled_element(24 * kKiB, size_factor);

  poly::Program& p = w.program;
  p.name = w.name;
  const auto eri =
      p.add_array({"ERI", {kFockBlocks, kShellBlocks}, eri_elem});
  const auto density = p.add_array({"D", {kShellBlocks}, vec_elem});
  const auto screen = p.add_array({"Q", {kShellBlocks}, vec_elem});
  const auto fock = p.add_array({"F", {kFockBlocks}, vec_elem});

  poly::LoopNest nest;
  nest.name = "fock_build";
  nest.space =
      poly::IterationSpace::from_extents({kFockBlocks, kShellBlocks});
  nest.refs = {
      {eri, poly::AccessMap::identity(2, {0, 0}), false},
      {density, poly::AccessMap::from_matrix({{0, 1}}, {0}), false},
      {screen, poly::AccessMap::from_matrix({{0, 1}}, {0}), false},
      {fock, poly::AccessMap::from_matrix({{1, 0}}, {0}), /*is_write=*/true},
  };
  nest.compute_ns_per_iteration = 150 * kMicrosecond;
  p.add_nest(std::move(nest));

  p.validate();
  return w;
}

}  // namespace mlsc::workloads
