// The paper's application suite (Table 2), rebuilt as synthetic loop-nest
// programs over disk-resident arrays.
//
// The original eight applications are proprietary / out-of-core codes we
// cannot run; each generator reproduces the *access-pattern structure*
// the application class is known for (dense contractions, row/column
// passes, stencils, time-series sweeps, 4D lattice relaxation), since
// storage-cache behaviour depends on footprint and reuse structure, not
// on the physics.  Data sizes follow the paper's 189.6–422.7 GB range
// scaled by 1/64 (DESIGN.md §5), keeping the paper's data-to-cache ratio.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "poly/loop_nest.h"

namespace mlsc::workloads {

struct Workload {
  std::string name;
  std::string description;

  /// Data-set size the paper's version manipulates (our arrays total
  /// roughly this divided by the 64x scale).
  std::uint64_t paper_data_bytes = 0;

  poly::Program program;

  std::uint64_t simulated_data_bytes() const {
    return program.total_data_bytes();
  }
};

/// size_factor scales element sizes (hence data volume) linearly;
/// 1.0 is the standard simulated size (paper / 64).  Iteration counts are
/// unaffected, so tests can run tiny data cheaply with small factors.
Workload make_hf(double size_factor = 1.0);
Workload make_sar(double size_factor = 1.0);
Workload make_contour(double size_factor = 1.0);
Workload make_astro(double size_factor = 1.0);
Workload make_e_elem(double size_factor = 1.0);
Workload make_apsi(double size_factor = 1.0);
Workload make_madbench2(double size_factor = 1.0);
Workload make_wupwise(double size_factor = 1.0);

}  // namespace mlsc::workloads
