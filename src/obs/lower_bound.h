// Red-blue-pebble I/O lower bounds for rectangular affine loop nests.
//
// Answers "how many bytes *must* cross the boundary below each cache
// level, no matter how the computation is mapped?" so measured traffic
// can be reported as % of optimal instead of % better than a baseline
// (ROADMAP "I/O lower-bound harness"; the derivation follows the
// segment/S-partition argument of Hong & Kung as generalized in *On
// Characterizing the Data Access Complexity of Programs*, PAPERS.md).
//
// Two terms per level, both computed from the poly IR alone:
//
//  * compulsory: every distinct byte a program touches starts on disk
//    and must cross every boundary at least once.  The footprint is
//    lower-bounded per reference from the access-map structure (product
//    over independent dimension groups of the largest iterator extent).
//
//  * capacity (Hong-Kung): split any execution into segments that move
//    exactly M bytes across the boundary (M = aggregate fast-memory
//    bytes at or above the level).  A segment has at most 2M bytes of
//    distinct data available, so per reference r at most 2M/e_r distinct
//    elements; a fractional cover {x_r} of the loops by the references
//    bounds the iterations a segment can execute by
//    H(2M) = Prod_r (2M/e_r)^{x_r}, giving  Q >= M * (T / H(2M) - 1).
//    The cover is found by enumerating reference subsets with uniform
//    weights 1/c (c = the subset's minimum per-loop cover count) and
//    keeping the subset that minimizes H — any feasible cover gives a
//    valid (possibly loose) bound, so the enumeration never overstates.
//
// The reported bound per level is max(compulsory, capacity).  Loops no
// direct reference indexes (pure temporal reuse) multiply H instead of
// tightening it, and indirect (index-table) references are skipped
// entirely — both keep the bound conservative (see DESIGN.md §16 for
// where that looseness shows up).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "poly/loop_nest.h"

namespace mlsc::obs {

/// One cache boundary: the level's name and the *aggregate* fast-memory
/// capacity sitting at or above it (e.g. for the paper's machine, l2 =
/// 64 client caches + 32 I/O-node caches).
struct LevelSpec {
  std::string name;
  std::uint64_t fast_memory_bytes = 0;
};

/// The bound at one boundary, with both terms kept visible so reports
/// can say which one is binding.
struct LevelBound {
  std::string level;
  std::uint64_t fast_memory_bytes = 0;
  std::uint64_t compulsory_bytes = 0;  // distinct-footprint term
  std::uint64_t capacity_bytes = 0;    // Hong-Kung segment term
  std::uint64_t bound_bytes = 0;       // max of the two
};

/// Per-nest diagnostics: which cover the enumeration picked (exponent
/// s = sum of the winning subset's weights; 0 when the nest has no
/// direct references and contributes only to the compulsory term).
struct NestCover {
  std::string nest;
  std::uint64_t iterations = 0;
  double cover_exponent = 0.0;
};

struct IoLowerBound {
  /// Lower bound on the program's distinct footprint in bytes (the
  /// compulsory term, identical at every level).
  std::uint64_t footprint_bytes = 0;
  std::vector<LevelBound> levels;   // one per input LevelSpec, same order
  std::vector<NestCover> nests;     // one per program nest
};

/// Computes the per-level I/O lower bound for `program`.  `levels` must
/// be ordered outermost-fastest first (l1, l2, l3) but the math treats
/// each independently; a level with zero fast-memory bytes yields the
/// trivial compulsory bound.
IoLowerBound compute_io_lower_bound(const poly::Program& program,
                                    const std::vector<LevelSpec>& levels);

}  // namespace mlsc::obs
